// Fully-associative LRU cache simulator.
//
// The paper's theory is stated for fully-associative LRU (§VIII); this is
// the reference cache used to validate the HOTL miss-ratio estimate, the
// natural-partition assumption, and the Fig. 1 example.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "trace/trace.hpp"

namespace ocps {

/// Fully-associative LRU cache over block ids.
class LruCache {
 public:
  /// capacity == 0 means every access misses.
  explicit LruCache(std::size_t capacity);

  /// Touches a block; returns true on hit. On miss, inserts the block and
  /// evicts the least-recently-used one if the cache is full.
  bool access(Block b);

  /// True iff the block is currently resident (no LRU update).
  bool contains(Block b) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return map_.size(); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  double miss_ratio() const;

  /// Clears contents and statistics.
  void reset();

  /// Changes the capacity in place; shrinking evicts LRU blocks until the
  /// contents fit. Used by dynamic (epoch-based) repartitioning.
  void set_capacity(std::size_t capacity);

  /// Identity of the block that the most recent miss evicted, when any.
  /// Used by owner-tagged shared simulation to maintain occupancies.
  bool last_eviction(Block* out) const;

 private:
  std::size_t capacity_;
  std::list<Block> lru_;  // front = most recently used
  std::unordered_map<Block, std::list<Block>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  bool evicted_valid_ = false;
  Block evicted_{};
};

}  // namespace ocps
