#include "cachesim/policies.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ocps {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kFifo: return "FIFO";
    case Policy::kRandom: return "Random";
    case Policy::kClock: return "CLOCK";
  }
  return "?";
}

PolicyCache::PolicyCache(Policy policy, std::size_t capacity,
                         std::uint64_t seed)
    : policy_(policy), capacity_(capacity), rng_(seed) {
  slots_.reserve(capacity);
  referenced_.reserve(capacity);
  where_.reserve(capacity * 2 + 16);
}

std::size_t PolicyCache::pick_victim() {
  switch (policy_) {
    case Policy::kFifo: {
      // The hand rotates over slots in insertion order: slot contents are
      // replaced in place, so the hand's order is FIFO.
      std::size_t victim = hand_;
      hand_ = (hand_ + 1) % capacity_;
      return victim;
    }
    case Policy::kRandom:
      return static_cast<std::size_t>(rng_.below(slots_.size()));
    case Policy::kClock: {
      // Second-chance: skip (and clear) referenced slots.
      for (;;) {
        if (!referenced_[hand_]) {
          std::size_t victim = hand_;
          hand_ = (hand_ + 1) % capacity_;
          return victim;
        }
        referenced_[hand_] = 0;
        hand_ = (hand_ + 1) % capacity_;
      }
    }
  }
  OCPS_CHECK(false, "unknown policy");
  return 0;
}

bool PolicyCache::access(Block b) {
  OCPS_OBS_COUNT("sim.policy.accesses", 1);
  auto it = where_.find(b);
  if (it != where_.end()) {
    ++hits_;
    OCPS_OBS_COUNT("sim.policy.hits", 1);
    if (policy_ == Policy::kClock) referenced_[it->second] = 1;
    return true;
  }
  ++misses_;
  if (capacity_ == 0) return false;
  if (slots_.size() < capacity_) {
    slots_.push_back(b);
    referenced_.push_back(1);
    where_.emplace(b, slots_.size() - 1);
    return false;
  }
  OCPS_OBS_COUNT("sim.policy.evictions", 1);
  std::size_t victim = pick_victim();
  where_.erase(slots_[victim]);
  slots_[victim] = b;
  referenced_[victim] = 1;
  where_.emplace(b, victim);
  return false;
}

double PolicyCache::miss_ratio() const {
  std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(misses_) /
                          static_cast<double>(total);
}

void PolicyCache::reset() {
  slots_.clear();
  referenced_.clear();
  where_.clear();
  hand_ = 0;
  hits_ = misses_ = 0;
}

double policy_miss_ratio(Policy policy, const Trace& trace,
                         std::size_t capacity, std::uint64_t seed) {
  PolicyCache cache(policy, capacity, seed);
  for (Block b : trace.accesses) cache.access(b);
  return cache.miss_ratio();
}

}  // namespace ocps
