// Blocking client for the partition-service daemon.
//
// One connection, synchronous request/response: call() writes a single
// request line and blocks until the matching response line arrives (the
// daemon may answer a batch out of order across *connections*, but each
// call here waits for exactly one line, and the Request helpers stamp an
// id so callers can still sanity-check the echo). This is deliberately
// the simplest correct client — it backs the `ocps query` subcommand,
// the integration tests, and bench_serve's closed-loop workers; anything
// fancier (pipelining, multiplexing) belongs to callers speaking the
// protocol directly.
#pragma once

#include <chrono>
#include <string>

#include "serve/protocol.hpp"
#include "util/result.hpp"

namespace ocps::serve {

class Client {
 public:
  /// Connects to the daemon's Unix socket. kIoError when the socket is
  /// missing or nothing is listening.
  static Result<Client> connect(const std::string& socket_path);

  Client() = default;  ///< disconnected; call() fails with kIoError
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  /// Sends one raw request line (no trailing newline) and blocks until
  /// one response line arrives or `timeout` passes (kIoError). The
  /// response is decoded but NOT interpreted: a shed/deadline/error
  /// reply is an ok() Result whose Response has ok == false.
  Result<Response> call(const std::string& request_line,
                        std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(30000));

  /// Serializes and sends a request object.
  Result<Response> call(const json::Value& request,
                        std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(30000));

  /// Literal overload: without it a `call("{...}")` would be ambiguous
  /// between the string and json::Value overloads (Value converts from
  /// const char*).
  Result<Response> call(const char* request_line,
                        std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(30000)) {
    return call(std::string(request_line), timeout);
  }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace ocps::serve
