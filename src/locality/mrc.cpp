#include "locality/mrc.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ocps {

MissRatioCurve::MissRatioCurve(std::vector<double> ratios,
                               std::uint64_t accesses)
    : ratios_(std::move(ratios)), accesses_(accesses) {
  OCPS_CHECK(!ratios_.empty(), "miss-ratio curve needs at least size 0");
  for (std::size_t c = 0; c < ratios_.size(); ++c) {
    OCPS_CHECK(ratios_[c] >= -1e-9 && ratios_[c] <= 1.0 + 1e-9,
               "miss ratio out of [0,1] at c=" << c << ": " << ratios_[c]);
    ratios_[c] = std::clamp(ratios_[c], 0.0, 1.0);
  }
}

double MissRatioCurve::ratio(std::size_t c) const {
  OCPS_CHECK(!ratios_.empty(), "empty curve");
  if (c >= ratios_.size()) return ratios_.back();
  return ratios_[c];
}

double MissRatioCurve::ratio_at(double c) const {
  OCPS_CHECK(!ratios_.empty(), "empty curve");
  if (c <= 0.0) return ratios_.front();
  if (c >= static_cast<double>(ratios_.size() - 1)) return ratios_.back();
  std::size_t lo = static_cast<std::size_t>(c);
  double t = c - static_cast<double>(lo);
  return ratios_[lo] + t * (ratios_[lo + 1] - ratios_[lo]);
}

double MissRatioCurve::miss_count(std::size_t c) const {
  return ratio(c) * static_cast<double>(accesses_);
}

bool MissRatioCurve::is_non_increasing(double eps) const {
  for (std::size_t c = 1; c < ratios_.size(); ++c)
    if (ratios_[c] > ratios_[c - 1] + eps) return false;
  return true;
}

bool MissRatioCurve::is_convex(double eps) const {
  // Discrete convexity: second difference >= -eps everywhere.
  for (std::size_t c = 2; c < ratios_.size(); ++c) {
    double second = ratios_[c] - 2.0 * ratios_[c - 1] + ratios_[c - 2];
    if (second < -eps) return false;
  }
  return true;
}

MissRatioCurve MissRatioCurve::monotone_repaired() const {
  std::vector<double> out(ratios_);
  for (std::size_t c = 1; c < out.size(); ++c)
    out[c] = std::min(out[c], out[c - 1]);
  return MissRatioCurve(std::move(out), accesses_);
}

MissRatioCurve MissRatioCurve::convex_minorant() const {
  // Lower convex hull over the points (c, ratio(c)) via monotone-chain,
  // then linear interpolation between hull vertices.
  const std::size_t n = ratios_.size();
  OCPS_CHECK(n >= 1, "empty curve");
  if (n <= 2) return *this;
  std::vector<std::size_t> hull;
  for (std::size_t c = 0; c < n; ++c) {
    while (hull.size() >= 2) {
      std::size_t a = hull[hull.size() - 2];
      std::size_t b = hull[hull.size() - 1];
      // Pop b if it lies on or above segment (a, c): cross product test.
      double lhs = (ratios_[b] - ratios_[a]) * static_cast<double>(c - a);
      double rhs = (ratios_[c] - ratios_[a]) * static_cast<double>(b - a);
      if (lhs >= rhs) {
        hull.pop_back();
      } else {
        break;
      }
    }
    hull.push_back(c);
  }
  std::vector<double> out(n);
  for (std::size_t seg = 0; seg + 1 < hull.size(); ++seg) {
    std::size_t a = hull[seg], b = hull[seg + 1];
    for (std::size_t c = a; c <= b; ++c) {
      double t = (b == a) ? 0.0
                          : static_cast<double>(c - a) /
                                static_cast<double>(b - a);
      out[c] = ratios_[a] + t * (ratios_[b] - ratios_[a]);
    }
  }
  if (hull.size() == 1) out[hull[0]] = ratios_[hull[0]];
  return MissRatioCurve(std::move(out), accesses_);
}

std::size_t MissRatioCurve::min_size_for_ratio(double target,
                                               double eps) const {
  for (std::size_t c = 0; c < ratios_.size(); ++c)
    if (ratios_[c] <= target + eps) return c;
  return capacity();
}

}  // namespace ocps
