// Router implementation. Threading model:
//
//   accept thread --> one reader thread per client connection
//                       (parses, routes, forwards synchronously)
//   health thread --> scrapes every backend's `metrics` op on a fixed
//                     interval, feeding the circuit breakers + fleet
//                     gauges
//
// Forwarding is synchronous on the reader thread: one client connection
// is one lane, and a slow backend delays only the clients routed to it.
// Each connection owns its backend Client set, so no connection state is
// shared across reader threads; the shared state (breakers, counters,
// fleet gauges) is mutex- or atomic-guarded.

#include "serve/router.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "runtime/fault_injection.hpp"
#include "serve/socket_util.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ocps::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kMaxLineBytes = 1 << 20;
constexpr int kPollMs = 50;

double ms_since(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

std::chrono::milliseconds clamp_left(Clock::time_point deadline,
                                     Clock::time_point now) {
  auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
  return std::max(std::chrono::milliseconds(1), left);
}

}  // namespace

// ---------------------------------------------------------------------------
// Consistent-hash ring.

std::uint64_t HashRing::hash_key(const std::string& key) {
  // FNV-1a 64: deterministic across builds (unlike std::hash), cheap,
  // and well-spread enough once each point also goes through splitmix.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

HashRing::HashRing(std::size_t backends, std::size_t vnodes)
    : backends_(backends) {
  OCPS_CHECK(backends > 0, "ring needs at least one backend");
  OCPS_CHECK(vnodes > 0, "ring needs at least one vnode per backend");
  ring_.reserve(backends * vnodes);
  for (std::size_t b = 0; b < backends; ++b)
    for (std::size_t v = 0; v < vnodes; ++v) {
      std::uint64_t state =
          (static_cast<std::uint64_t>(b) << 32) ^ static_cast<std::uint64_t>(v);
      std::uint64_t h = splitmix64(state);
      ring_.push_back({h, static_cast<std::uint32_t>(b)});
    }
  std::sort(ring_.begin(), ring_.end(),
            [](const Point& a, const Point& b) { return a.hash < b.hash; });
}

std::size_t HashRing::primary_for(const std::string& key) const {
  return order_for(key).front();
}

std::vector<std::size_t> HashRing::order_for(const std::string& key) const {
  std::uint64_t h = hash_key(key);
  std::size_t start = std::lower_bound(ring_.begin(), ring_.end(), h,
                                       [](const Point& p, std::uint64_t v) {
                                         return p.hash < v;
                                       }) -
                      ring_.begin();
  std::vector<std::size_t> order;
  order.reserve(backends_);
  std::vector<bool> seen(backends_, false);
  for (std::size_t i = 0; i < ring_.size() && order.size() < backends_; ++i) {
    const Point& p = ring_[(start + i) % ring_.size()];
    if (!seen[p.backend]) {
      seen[p.backend] = true;
      order.push_back(p.backend);
    }
  }
  return order;
}

// ---------------------------------------------------------------------------
// Circuit breaker.

CircuitBreaker::CircuitBreaker(const CircuitBreakerConfig& config)
    : config_(config) {
  OCPS_CHECK(config.failure_threshold > 0,
             "breaker failure_threshold must be positive");
  OCPS_CHECK(config.cooldown.count() >= 0, "breaker cooldown must be >= 0");
  OCPS_CHECK(config.probe_successes > 0,
             "breaker probe_successes must be positive");
}

bool CircuitBreaker::allow(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ < config_.cooldown) return false;
      // Cooldown over: this caller becomes the half-open probe.
      state_ = State::kHalfOpen;
      half_open_successes_ = 0;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;  // unreachable
}

void CircuitBreaker::record_success(TimePoint) {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen) {
    probe_in_flight_ = false;
    if (++half_open_successes_ >= config_.probe_successes) {
      state_ = State::kClosed;
      half_open_successes_ = 0;
    }
  }
}

void CircuitBreaker::record_failure(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        state_ = State::kOpen;
        opened_at_ = now;
      }
      break;
    case State::kHalfOpen:
      // The probe failed: back to a full cooldown.
      state_ = State::kOpen;
      opened_at_ = now;
      probe_in_flight_ = false;
      half_open_successes_ = 0;
      break;
    case State::kOpen:
      break;  // already open; keep the original cooldown clock
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

const char* CircuitBreaker::state_name(State s) {
  switch (s) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half_open";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Router plumbing types.

struct Router::AtomicCounters {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> forwarded{0};
  std::atomic<std::uint64_t> failovers{0};
  std::atomic<std::uint64_t> relayed_errors{0};
  std::atomic<std::uint64_t> no_backend{0};
  std::atomic<std::uint64_t> all_open{0};
  std::atomic<std::uint64_t> malformed{0};
  std::atomic<std::uint64_t> reloads{0};
  std::atomic<std::uint64_t> deadline_exceeded{0};
  std::atomic<std::uint64_t> health_probes{0};
  std::atomic<std::uint64_t> health_failures{0};
};

struct Router::Backend {
  std::string endpoint;
  CircuitBreaker breaker;
  std::atomic<bool> up{false};  ///< last health-probe outcome

  Client probe_client;  ///< health thread's private connection

  /// Forward-attempt latency over the last 30 s, feeding the
  /// serve.router.backend_latency.<i>.window.p99 gauge.
  obs::WindowedHistogram latency_window;

  /// Last ingested backend counters (health thread writes, gauge
  /// refresh reads).
  std::mutex fleet_mu;
  double fleet_requests = 0.0;
  double fleet_answered = 0.0;
  double fleet_shed = 0.0;
  double fleet_deadline = 0.0;

  Backend(std::string ep, const CircuitBreakerConfig& cfg)
      : endpoint(std::move(ep)), breaker(cfg) {}
};

struct Router::Connection {
  int fd = -1;
  std::mutex write_mutex;
  std::chrono::milliseconds io_timeout{5000};
  std::atomic<bool> broken{false};
  /// Per-connection backend clients: one lane per client connection, so
  /// reader threads never share a backend socket.
  std::vector<Client> backends;

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  bool send_line(std::string line) {
    line.push_back('\n');
    std::lock_guard<std::mutex> guard(write_mutex);
    if (broken.load(std::memory_order_relaxed)) return false;
    if (!send_all(fd, line.data(), line.size(), io_timeout)) {
      broken.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// Lifecycle.

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      counters_(std::make_unique<AtomicCounters>()) {
  OCPS_CHECK(!config_.backends.empty(),
             "router: at least one backend endpoint is required");
  OCPS_CHECK(!config_.socket_path.empty() || !config_.listen_address.empty(),
             "router: a front listener (socket path or listen address) is "
             "required");
  OCPS_CHECK(config_.vnodes > 0, "router: vnodes must be positive");
  OCPS_CHECK(config_.connect_timeout.count() > 0,
             "router: connect_timeout must be positive");
  OCPS_CHECK(config_.io_timeout.count() > 0,
             "router: io_timeout must be positive");
  OCPS_CHECK(config_.health_interval.count() > 0,
             "router: health_interval must be positive");
  OCPS_CHECK(config_.max_connections > 0,
             "router: max_connections must be positive");
  OCPS_CHECK(config_.metrics_port >= -1 && config_.metrics_port <= 65535,
             "router: metrics_port must be in [-1, 65535]");
  OCPS_CHECK(config_.slo_p99_ms >= 0.0 && std::isfinite(config_.slo_p99_ms),
             "router: slo_p99_ms must be finite and >= 0");
  OCPS_CHECK(config_.slo_availability >= 0.0 &&
                 config_.slo_availability < 1.0,
             "router: slo_availability must be in [0, 1)");
  ring_ = std::make_unique<HashRing>(config_.backends.size(), config_.vnodes);
  backends_.reserve(config_.backends.size());
  for (const std::string& ep : config_.backends)
    backends_.push_back(std::make_unique<Backend>(ep, config_.breaker));
  obs::SloConfig slo_config;
  slo_config.p99_ms = config_.slo_p99_ms;
  slo_config.availability = config_.slo_availability;
  slo_ = std::make_unique<obs::SloTracker>(slo_config);
  trace_seed_ = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

Router::~Router() { stop(); }

Result<bool> Router::start() {
  OCPS_CHECK(!started_.exchange(true), "Router::start called twice");

  auto teardown = [&] {
    if (http_fd_ >= 0) {
      ::close(http_fd_);
      http_fd_ = -1;
    }
    if (tcp_fd_ >= 0) {
      ::close(tcp_fd_);
      tcp_fd_ = -1;
    }
    UnixListener claimed{listen_fd_, lock_fd_};
    release_unix_socket(claimed, config_.socket_path);
    listen_fd_ = -1;
    lock_fd_ = -1;
  };

  if (!config_.socket_path.empty()) {
    Result<UnixListener> claimed =
        claim_unix_socket(config_.socket_path, 64);
    if (!claimed.ok()) return claimed.error();
    listen_fd_ = claimed.value().fd;
    lock_fd_ = claimed.value().lock_fd;
  }

  if (!config_.listen_address.empty()) {
    Result<Endpoint> ep = parse_endpoint(config_.listen_address);
    if (!ep.ok()) {
      teardown();
      return ep.error();
    }
    if (!ep.value().is_tcp()) {
      teardown();
      return Err(ErrorCode::kInvalidArgument,
                 "--listen must be host:port, got: " +
                     config_.listen_address);
    }
    Result<int> fd = listen_tcp(ep.value().host, ep.value().port, 64);
    if (!fd.ok()) {
      teardown();
      return fd.error();
    }
    tcp_fd_ = fd.value();
    Result<std::uint16_t> port = bound_tcp_port(tcp_fd_);
    if (!port.ok()) {
      teardown();
      return port.error();
    }
    tcp_port_.store(port.value());
  }

  if (config_.metrics_port != 0) {
    std::uint16_t want = config_.metrics_port > 0
                             ? static_cast<std::uint16_t>(config_.metrics_port)
                             : 0;
    Result<int> fd = listen_tcp("127.0.0.1", want, 16);
    if (!fd.ok()) {
      teardown();
      return fd.error();
    }
    http_fd_ = fd.value();
    Result<std::uint16_t> port = bound_tcp_port(http_fd_);
    if (!port.ok()) {
      teardown();
      return port.error();
    }
    http_port_.store(port.value());
  }

  // Eager metric registration (the obs.spans_dropped precedent): the
  // first Prometheus scrape must expose the complete serve.router.*
  // series, zero-valued, before any traffic or fault has occurred —
  // dashboards and alert rules need the series to exist to match on it.
  if (obs::enabled()) {
    static const char* kCounters[] = {
        "serve.router.requests",        "serve.router.forwarded",
        "serve.router.failovers",       "serve.router.relayed_errors",
        "serve.router.no_backend",      "serve.router.all_open",
        "serve.router.malformed",       "serve.router.reloads",
        "serve.router.deadline_exceeded", "serve.router.health_probes",
        "serve.router.health_failures", "serve.router.conn_limit_rejected",
    };
    for (const char* name : kCounters) obs::counter(name);
    obs::gauge("serve.router.backends")
        .set(static_cast<double>(backends_.size()));
    obs::gauge("serve.router.backends_healthy").set(0.0);
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      obs::gauge("serve.router.backend_up." + std::to_string(i)).set(0.0);
      obs::histogram("serve.router.backend_latency." + std::to_string(i));
      obs::gauge("serve.router.backend_latency." + std::to_string(i) +
                 ".window.p99")
          .set(0.0);
    }
    static const char* kFleet[] = {
        "serve.fleet.requests", "serve.fleet.answered", "serve.fleet.shed",
        "serve.fleet.deadline_exceeded"};
    for (const char* name : kFleet) obs::gauge(name).set(0.0);
    if (slo_->configured()) refresh_gauges();
  }

  started_at_ = Clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
  health_thread_ = std::thread([this] { health_loop(); });
  if (http_fd_ >= 0) http_thread_ = std::thread([this] { http_loop(); });
  return Ok(true);
}

void Router::stop() {
  stopping_.store(true);
  if (!started_.load() || joined_.exchange(true)) return;

  if (accept_thread_.joinable()) accept_thread_.join();
  if (http_thread_.joinable()) http_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  if (http_fd_ >= 0) {
    ::close(http_fd_);
    http_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  UnixListener claimed{listen_fd_, lock_fd_};
  release_unix_socket(claimed, config_.socket_path);
  listen_fd_ = -1;
  lock_fd_ = -1;

  // Reader threads finish the request they are forwarding (bounded by
  // io_timeout) and exit on the next poll tick.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> guard(conns_mutex_);
    readers.swap(reader_threads_);
  }
  for (std::thread& t : readers)
    if (t.joinable()) t.join();

  std::lock_guard<std::mutex> guard(conns_mutex_);
  conns_.clear();
}

void Router::wait_until_stop_requested() const {
  while (!stopping_.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
}

CircuitBreaker::State Router::breaker_state(std::size_t i) const {
  OCPS_CHECK(i < backends_.size(), "breaker_state: backend out of range");
  return backends_[i]->breaker.state();
}

Router::Counters Router::counters() const {
  Counters c;
  c.requests = counters_->requests.load();
  c.forwarded = counters_->forwarded.load();
  c.failovers = counters_->failovers.load();
  c.relayed_errors = counters_->relayed_errors.load();
  c.no_backend = counters_->no_backend.load();
  c.all_open = counters_->all_open.load();
  c.malformed = counters_->malformed.load();
  c.reloads = counters_->reloads.load();
  c.deadline_exceeded = counters_->deadline_exceeded.load();
  c.health_probes = counters_->health_probes.load();
  c.health_failures = counters_->health_failures.load();
  return c;
}

// ---------------------------------------------------------------------------
// Front listeners.

void Router::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfds[2];
    nfds_t nfds = 0;
    if (listen_fd_ >= 0) pfds[nfds++] = {listen_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) pfds[nfds++] = {tcp_fd_, POLLIN, 0};
    int ready = ::poll(pfds, nfds, kPollMs);
    if (ready <= 0) continue;
    for (nfds_t i = 0; i < nfds; ++i) {
      if (!(pfds[i].revents & POLLIN)) continue;
      int fd = ::accept4(pfds[i].fd, nullptr, nullptr,
                         SOCK_CLOEXEC | SOCK_NONBLOCK);
      if (fd < 0) continue;
      if (config_.net_faults && config_.net_faults->fail_accept()) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conn->io_timeout = config_.io_timeout;
      conn->backends.resize(backends_.size());
      std::lock_guard<std::mutex> guard(conns_mutex_);
      if (stopping_.load()) continue;
      if (conns_.size() >= config_.max_connections) {
        OCPS_OBS_COUNT("serve.router.conn_limit_rejected", 1);
        conn->send_line(error_response(
            0, kCodeShuttingDown,
            "connection limit reached (" +
                std::to_string(config_.max_connections) + ")"));
        continue;
      }
      conns_.push_back(conn);
      reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
    }
  }
}

void Router::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  Clock::time_point last_progress = Clock::now();
  while (!stopping_.load()) {
    if (conn->broken.load(std::memory_order_relaxed)) break;
    if (!buffer.empty() &&
        Clock::now() - last_progress > config_.io_timeout) {
      counters_->malformed.fetch_add(1);
      OCPS_OBS_COUNT("serve.router.malformed", 1);
      conn->send_line(error_response(0, kCodeBadRequest,
                                     "request line stalled mid-frame"));
      break;
    }
    pollfd pfd{conn->fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;
    char chunk[4096];
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    last_progress = Clock::now();
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(conn, line);
    }
    if (buffer.size() > kMaxLineBytes) {
      counters_->malformed.fetch_add(1);
      OCPS_OBS_COUNT("serve.router.malformed", 1);
      conn->send_line(
          error_response(0, kCodeBadRequest, "request line too long"));
      break;
    }
  }
  std::lock_guard<std::mutex> guard(conns_mutex_);
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
               conns_.end());
}

void Router::http_loop() {
  while (!stopping_.load()) {
    pollfd pfd{http_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;
    int fd = ::accept4(http_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    handle_metrics_http_client(
        fd, [this] { return stopping_.load(); },
        [this] { refresh_gauges(); });
    ::close(fd);
  }
}

// ---------------------------------------------------------------------------
// Request handling.

std::string Router::route_key(const Request& req) {
  if (!req.programs.empty()) {
    // The profile-set id: the sorted member list, so {"a","b"} and
    // {"b","a"} land on the same backend and keep its DP state warm.
    std::vector<std::string> names = req.programs;
    std::sort(names.begin(), names.end());
    std::string key;
    for (const std::string& n : names) {
      key += n;
      key += ',';
    }
    return key;
  }
  // No named tenants (sweep-all, slowlog): spread by op + shape.
  return std::string("op:") + op_name(req.op) + ":" +
         std::to_string(req.group_size) + ":" + std::to_string(req.capacity);
}

void Router::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  counters_->requests.fetch_add(1);
  OCPS_OBS_COUNT("serve.router.requests", 1);

  Result<Request> parsed = parse_request(line);
  if (!parsed.ok()) {
    counters_->malformed.fetch_add(1);
    OCPS_OBS_COUNT("serve.router.malformed", 1);
    conn->send_line(
        error_response(0, kCodeBadRequest, parsed.error().message));
    return;
  }
  Request req = std::move(parsed.value());

  switch (req.op) {
    case Op::kHealth:
      handle_health_local(conn, req);
      return;
    case Op::kMetrics:
      handle_metrics_local(conn, req);
      return;
    case Op::kReload:
      fan_out_reload(conn, req, line);
      return;
    case Op::kTrace:
      handle_trace_local(conn, req);
      return;
    case Op::kSlo:
      handle_slo_local(conn, req);
      return;
    case Op::kDecisions:
      handle_decisions_local(conn, req);
      return;
    case Op::kReconcile:
      handle_reconcile_local(conn, req);
      return;
    case Op::kPartition:
    case Op::kSweep:
    case Op::kSlowlog:
      break;
  }

  if (stopping_.load()) {
    conn->send_line(
        error_response(req.id, kCodeShuttingDown, "router is draining"));
    return;
  }
  forward(conn, req);
}

std::uint64_t Router::next_trace_nonce() {
  std::uint64_t state =
      trace_seed_ + trace_counter_.fetch_add(1, std::memory_order_relaxed);
  return splitmix64(state) | 1ULL;
}

void Router::record_backend_latency(std::size_t idx, double ms) {
  if (!obs::enabled()) return;
  backends_[idx]->latency_window.observe(ms);
  obs::histogram("serve.router.backend_latency." + std::to_string(idx))
      .observe(ms);
}

void Router::forward(const std::shared_ptr<Connection>& conn,
                     const Request& req) {
  const Clock::time_point fwd_start = Clock::now();

  // Trace context: adopt the client's trace_id (minting one when absent)
  // and stamp this tier onto the forwarded line — parent_span is this
  // forward's nonce, hop is incremented — so backend spans link back to
  // the router span below. The response is still relayed verbatim.
  const std::uint64_t trace_id =
      req.trace_id != 0 ? req.trace_id : next_trace_nonce();
  const std::uint64_t span_nonce = next_trace_nonce();
  Request fwd_req = req;
  fwd_req.trace_id = trace_id;
  fwd_req.parent_span = span_nonce;
  fwd_req.hop = req.hop + 1;
  const std::string fwd_line = encode_request(fwd_req);

  obs::ScopedSpan span("serve.router.forward", "router");
  span.set_trace_id(trace_id);
  span.set_arg("span_nonce", span_nonce);

  // The router's own SLO is judged on what the client experienced:
  // whole-walk latency, success = a definitive ok answer.
  auto finish = [&](bool ok) {
    slo_->record(ms_since(fwd_start, Clock::now()), ok,
                 obs::SloTracker::steady_now_ns());
  };

  const std::vector<std::size_t> order = ring_->order_for(route_key(req));
  obs::instant_event("serve.router.placement", "router", "primary",
                     static_cast<std::uint64_t>(order.front()), trace_id);

  // The request deadline is the failover budget; without one, io_timeout
  // bounds the whole walk so a dead fleet cannot wedge the lane.
  double budget_ms =
      req.deadline_ms > 0.0 ? req.deadline_ms : config_.default_deadline_ms;
  const Clock::time_point deadline =
      budget_ms > 0.0
          ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   budget_ms))
          : Clock::now() + config_.io_timeout;

  bool any_allowed = false;
  bool have_relay = false;
  Response relay;

  for (std::size_t idx : order) {
    Clock::time_point now = Clock::now();
    if (now >= deadline) {
      counters_->deadline_exceeded.fetch_add(1);
      OCPS_OBS_COUNT("serve.router.deadline_exceeded", 1);
      conn->send_line(error_response(req.id, kCodeDeadlineExceeded,
                                     "deadline exceeded while forwarding"));
      finish(false);
      return;
    }
    Backend& b = *backends_[idx];
    if (!b.breaker.allow(now)) {
      obs::instant_event("serve.router.breaker_skip", "router", "backend",
                         static_cast<std::uint64_t>(idx), trace_id);
      continue;
    }
    any_allowed = true;
    const std::chrono::milliseconds left = clamp_left(deadline, now);

    Client& c = conn->backends[idx];
    if (!c.connected()) {
      Result<Client> fresh = Client::connect(
          b.endpoint, std::min(config_.connect_timeout, left));
      if (!fresh.ok()) {
        b.breaker.record_failure(Clock::now());
        counters_->failovers.fetch_add(1);
        OCPS_OBS_COUNT("serve.router.failovers", 1);
        obs::instant_event("serve.router.failover", "router", "backend",
                           static_cast<std::uint64_t>(idx), trace_id);
        continue;
      }
      c = std::move(fresh.value());
    }

    const Clock::time_point attempt_start = Clock::now();
    Result<Response> r = c.call(fwd_line, left);
    record_backend_latency(idx, ms_since(attempt_start, Clock::now()));
    if (!r.ok()) {
      // Transport failure: the stream may hold a half-written response,
      // so drop the lane's connection and fail over.
      b.breaker.record_failure(Clock::now());
      c = Client();
      counters_->failovers.fetch_add(1);
      OCPS_OBS_COUNT("serve.router.failovers", 1);
      obs::instant_event("serve.router.failover", "router", "backend",
                         static_cast<std::uint64_t>(idx), trace_id);
      continue;
    }
    Response& resp = r.value();
    if (resp.ok || !retryable_code(resp.code)) {
      // Definitive: relay verbatim (the backend echoed the client's id).
      b.breaker.record_success(Clock::now());
      if (!resp.ok) {
        counters_->relayed_errors.fetch_add(1);
        OCPS_OBS_COUNT("serve.router.relayed_errors", 1);
      }
      counters_->forwarded.fetch_add(1);
      OCPS_OBS_COUNT("serve.router.forwarded", 1);
      conn->send_line(resp.body.dump());
      finish(resp.ok);
      return;
    }
    // Retryable status. 429 means alive-but-overloaded: that is load
    // information, not a health failure — shedding backends must not
    // trip breakers and amplify the overload. 503/504 count against it.
    if (resp.code == kCodeQueueFull)
      b.breaker.record_success(Clock::now());
    else
      b.breaker.record_failure(Clock::now());
    have_relay = true;
    relay = std::move(resp);
    counters_->failovers.fetch_add(1);
    OCPS_OBS_COUNT("serve.router.failovers", 1);
    obs::instant_event("serve.router.failover", "router", "backend",
                       static_cast<std::uint64_t>(idx), trace_id);
  }

  if (have_relay) {
    // Every replica answered with a retryable status (e.g. the whole
    // fleet is shedding): the last one is the truth — relay it so the
    // client sees an honest 429/503/504 it can back off on.
    counters_->relayed_errors.fetch_add(1);
    OCPS_OBS_COUNT("serve.router.relayed_errors", 1);
    conn->send_line(relay.body.dump());
    finish(false);
    return;
  }
  if (!any_allowed) {
    counters_->all_open.fetch_add(1);
    OCPS_OBS_COUNT("serve.router.all_open", 1);
    conn->send_line(error_response(
        req.id, kCodeShuttingDown,
        "no backend available (all circuit breakers open)"));
    finish(false);
    return;
  }
  counters_->no_backend.fetch_add(1);
  OCPS_OBS_COUNT("serve.router.no_backend", 1);
  conn->send_line(
      error_response(req.id, kCodeBadGateway, "no backend answered"));
  finish(false);
}

void Router::fan_out_reload(const std::shared_ptr<Connection>& conn,
                            const Request& req, const std::string& line) {
  // Reload reaches every backend, breaker or no breaker: a suspect
  // backend that is actually alive must not come back serving a stale
  // profile set. Never retried — a lost response may mean the swap
  // already happened on that backend.
  counters_->reloads.fetch_add(1);
  OCPS_OBS_COUNT("serve.router.reloads", 1);
  std::size_t ok_count = 0;
  std::string first_error;
  for (std::size_t idx = 0; idx < backends_.size(); ++idx) {
    Backend& b = *backends_[idx];
    Client& c = conn->backends[idx];
    if (!c.connected()) {
      Result<Client> fresh =
          Client::connect(b.endpoint, config_.connect_timeout);
      if (!fresh.ok()) {
        b.breaker.record_failure(Clock::now());
        if (first_error.empty())
          first_error = b.endpoint + ": " + fresh.error().message;
        continue;
      }
      c = std::move(fresh.value());
    }
    Result<Response> r = c.call(line, config_.io_timeout);
    if (!r.ok()) {
      b.breaker.record_failure(Clock::now());
      c = Client();
      if (first_error.empty())
        first_error = b.endpoint + ": " + r.error().message;
      continue;
    }
    b.breaker.record_success(Clock::now());
    if (r.value().ok) {
      ++ok_count;
    } else if (first_error.empty()) {
      first_error = b.endpoint + ": " + r.value().error;
    }
  }
  if (ok_count == backends_.size()) {
    json::Value body;
    body.set("backends", json::Value(static_cast<double>(ok_count)));
    conn->send_line(ok_response(req.id, std::move(body)));
    return;
  }
  conn->send_line(error_response(
      req.id, kCodeBadGateway,
      "reload failed on " +
          std::to_string(backends_.size() - ok_count) + "/" +
          std::to_string(backends_.size()) + " backends: " + first_error));
}

void Router::handle_health_local(const std::shared_ptr<Connection>& conn,
                                 const Request& req) {
  json::Value body;
  body.set("role", json::Value("router"));
  body.set("uptime_ms", json::Value(ms_since(started_at_, Clock::now())));
  body.set("draining", json::Value(stopping_.load()));
  json::Array rows;
  std::size_t healthy = 0;
  for (const auto& b : backends_) {
    json::Value row;
    row.set("endpoint", json::Value(b->endpoint));
    row.set("state", json::Value(CircuitBreaker::state_name(
                         b->breaker.state())));
    bool up = b->up.load();
    row.set("up", json::Value(up));
    if (up) ++healthy;
    rows.push_back(std::move(row));
  }
  body.set("backends", json::Value(std::move(rows)));
  body.set("healthy", json::Value(static_cast<double>(healthy)));
  Counters c = counters();
  json::Value cnt;
  cnt.set("requests", json::Value(static_cast<double>(c.requests)));
  cnt.set("forwarded", json::Value(static_cast<double>(c.forwarded)));
  cnt.set("failovers", json::Value(static_cast<double>(c.failovers)));
  cnt.set("relayed_errors",
          json::Value(static_cast<double>(c.relayed_errors)));
  cnt.set("no_backend", json::Value(static_cast<double>(c.no_backend)));
  cnt.set("all_open", json::Value(static_cast<double>(c.all_open)));
  cnt.set("malformed", json::Value(static_cast<double>(c.malformed)));
  cnt.set("reloads", json::Value(static_cast<double>(c.reloads)));
  cnt.set("deadline_exceeded",
          json::Value(static_cast<double>(c.deadline_exceeded)));
  cnt.set("health_probes",
          json::Value(static_cast<double>(c.health_probes)));
  cnt.set("health_failures",
          json::Value(static_cast<double>(c.health_failures)));
  body.set("counters", std::move(cnt));
  conn->send_line(ok_response(req.id, std::move(body)));
}

void Router::handle_metrics_local(const std::shared_ptr<Connection>& conn,
                                  const Request& req) {
  if (!obs::enabled()) {
    conn->send_line(error_response(
        req.id, kCodeObsDisabled,
        "observability disabled (compiled out or OCPS_OBS unset)"));
    return;
  }
  refresh_gauges();
  std::ostringstream prom;
  obs::write_metrics_prometheus(prom);
  std::ostringstream js;
  obs::write_metrics_json(js);
  Result<json::Value> metrics = json::parse(js.str());

  json::Value body;
  body.set("role", json::Value("router"));
  body.set("uptime_ms", json::Value(ms_since(started_at_, Clock::now())));
  if (metrics.ok()) body.set("metrics", std::move(metrics.value()));
  body.set("prometheus", json::Value(prom.str()));
  conn->send_line(ok_response(req.id, std::move(body)));
}

void Router::handle_trace_local(const std::shared_ptr<Connection>& conn,
                                const Request& req) {
  // Debug fan-out: gather every process's retained spans for this id.
  // Best effort and breaker-blind — tracing must work exactly when the
  // fleet is misbehaving, so open breakers are ignored, probe failures
  // leave breaker state untouched, and an unreachable backend simply
  // contributes no proc entry.
  json::Value body;
  body.set("trace_id", json::Value(static_cast<double>(req.trace_id)));
  json::Array procs;
  procs.push_back(trace_proc_json("router", req.trace_id));

  Request probe;
  probe.id = -1;
  probe.op = Op::kTrace;
  probe.trace_id = req.trace_id;
  const std::string probe_line = encode_request(probe);
  for (std::size_t idx = 0; idx < backends_.size(); ++idx) {
    Backend& b = *backends_[idx];
    Client& c = conn->backends[idx];
    if (!c.connected()) {
      Result<Client> fresh =
          Client::connect(b.endpoint, config_.connect_timeout);
      if (!fresh.ok()) continue;
      c = std::move(fresh.value());
    }
    Result<Response> r = c.call(probe_line, config_.io_timeout);
    if (!r.ok()) {
      c = Client();
      continue;
    }
    if (!r.value().ok) continue;  // e.g. 501: obs off on that backend
    const json::Value* backend_procs = r.value().body.find("procs");
    if (!backend_procs || !backend_procs->is_array()) continue;
    for (const json::Value& proc : backend_procs->as_array()) {
      json::Value row = proc;
      // Disambiguate replicas: "serve" becomes "serve.<backend slot>".
      const json::Value* label = row.find("proc");
      if (label && label->is_string())
        row.set("proc",
                json::Value(label->as_string() + "." + std::to_string(idx)));
      procs.push_back(std::move(row));
    }
  }
  body.set("procs", json::Value(std::move(procs)));
  conn->send_line(ok_response(req.id, std::move(body)));
}

void Router::handle_slo_local(const std::shared_ptr<Connection>& conn,
                              const Request& req) {
  // Same body shape as the daemon's `slo` handler, plus the router role
  // marker; answers even with obs compiled out (the tracker is
  // registry-independent).
  obs::SloTracker::Status slo =
      slo_->status(obs::SloTracker::steady_now_ns());
  json::Value body;
  body.set("role", json::Value("router"));
  body.set("configured", json::Value(slo_->configured()));
  json::Array objectives;
  for (const obs::SloTracker::Objective& o : slo.objectives) {
    json::Value row;
    row.set("name", json::Value(o.name));
    row.set("target", json::Value(o.target));
    row.set("budget", json::Value(o.budget));
    row.set("burn_5m", json::Value(o.burn_short));
    row.set("burn_1h", json::Value(o.burn_long));
    row.set("breaching", json::Value(o.breaching));
    objectives.push_back(std::move(row));
  }
  body.set("objectives", json::Value(std::move(objectives)));
  json::Array alerts;
  for (const obs::SloTracker::Alert& a : slo.alerts) {
    json::Value row;
    row.set("seq", json::Value(static_cast<double>(a.seq)));
    row.set("at_ns", json::Value(static_cast<double>(a.at_ns)));
    row.set("objective", json::Value(a.objective));
    row.set("burn_5m", json::Value(a.burn_short));
    row.set("burn_1h", json::Value(a.burn_long));
    alerts.push_back(std::move(row));
  }
  body.set("alerts", json::Value(std::move(alerts)));
  body.set("alerts_total",
           json::Value(static_cast<double>(slo.alerts_total)));
  conn->send_line(ok_response(req.id, std::move(body)));
}

void Router::handle_decisions_local(const std::shared_ptr<Connection>& conn,
                                    const Request& req) {
  // Audit fan-out: every backend keeps its own decision ring, so the
  // fleet view is the union. Breaker-blind for the same reason as
  // trace — the audit trail matters most while the fleet misbehaves —
  // and an unreachable backend simply contributes no entry.
  json::Value body;
  body.set("role", json::Value("router"));
  json::Array rows;

  Request probe;
  probe.id = -1;
  probe.op = Op::kDecisions;
  probe.decision_id = req.decision_id;
  probe.limit = req.limit;
  const std::string probe_line = encode_request(probe);
  for (std::size_t idx = 0; idx < backends_.size(); ++idx) {
    Backend& b = *backends_[idx];
    Client& c = conn->backends[idx];
    if (!c.connected()) {
      Result<Client> fresh =
          Client::connect(b.endpoint, config_.connect_timeout);
      if (!fresh.ok()) continue;
      c = std::move(fresh.value());
    }
    Result<Response> r = c.call(probe_line, config_.io_timeout);
    if (!r.ok()) {
      c = Client();
      continue;
    }
    if (!r.value().ok) continue;  // e.g. 404: id unknown on that backend
    json::Value row = r.value().body;
    row.set("backend", json::Value(static_cast<double>(idx)));
    row.set("endpoint", json::Value(b.endpoint));
    rows.push_back(std::move(row));
  }
  if (req.decision_id != 0 && rows.empty()) {
    conn->send_line(error_response(
        req.id, kCodeNotFound,
        "no backend knows decision id " + std::to_string(req.decision_id)));
    return;
  }
  body.set("backends", json::Value(std::move(rows)));
  conn->send_line(ok_response(req.id, std::move(body)));
}

void Router::handle_reconcile_local(const std::shared_ptr<Connection>& conn,
                                    const Request& req) {
  // Decision ids are per-daemon counters: only the backend that issued
  // the id accepts the reconcile (others answer 404), so walk the fleet
  // and relay the first acceptance. A definitive non-404 rejection
  // (422 size mismatch, 400) is relayed immediately — retrying it
  // elsewhere could double-apply on an id collision.
  Request fwd = req;
  const std::string fwd_line = encode_request(fwd);
  for (std::size_t idx = 0; idx < backends_.size(); ++idx) {
    Backend& b = *backends_[idx];
    Client& c = conn->backends[idx];
    if (!c.connected()) {
      Result<Client> fresh =
          Client::connect(b.endpoint, config_.connect_timeout);
      if (!fresh.ok()) continue;
      c = std::move(fresh.value());
    }
    Result<Response> r = c.call(fwd_line, config_.io_timeout);
    if (!r.ok()) {
      c = Client();
      continue;
    }
    Response& resp = r.value();
    if (!resp.ok && resp.code == kCodeNotFound) continue;
    json::Value body = resp.body;
    body.set("backend", json::Value(static_cast<double>(idx)));
    body.set("endpoint", json::Value(b.endpoint));
    if (resp.ok) {
      body.set("id", json::Value(static_cast<double>(req.id)));
      conn->send_line(body.dump());
    } else {
      conn->send_line(error_response(req.id, resp.code, resp.error));
    }
    return;
  }
  conn->send_line(error_response(
      req.id, kCodeNotFound,
      "no backend knows decision id " + std::to_string(req.decision_id)));
}

// ---------------------------------------------------------------------------
// Health probing + fleet aggregation.

void Router::health_loop() {
  Request probe;
  probe.id = -1;
  probe.op = Op::kMetrics;
  const std::string probe_line = encode_request(probe);

  while (!stopping_.load()) {
    for (std::size_t i = 0; i < backends_.size() && !stopping_.load();
         ++i) {
      Backend& b = *backends_[i];
      Clock::time_point now = Clock::now();
      // allow() doubles as the half-open probe token: when the breaker
      // is open and cooled down, this probe is exactly the canary the
      // state machine wants. While it is open and cooling, skip.
      if (!b.breaker.allow(now)) continue;
      counters_->health_probes.fetch_add(1);
      OCPS_OBS_COUNT("serve.router.health_probes", 1);

      bool okay = false;
      if (!b.probe_client.connected()) {
        Result<Client> fresh =
            Client::connect(b.endpoint, config_.connect_timeout);
        if (fresh.ok()) b.probe_client = std::move(fresh.value());
      }
      if (b.probe_client.connected()) {
        Result<Response> r =
            b.probe_client.call(probe_line, config_.io_timeout);
        if (r.ok() &&
            (r.value().ok || r.value().code == kCodeObsDisabled)) {
          // 501 = obs off on the backend: alive, just not scrapeable.
          okay = true;
          if (r.value().ok) {
            const json::Value* metrics = r.value().body.find("metrics");
            const json::Value* counters =
                metrics ? metrics->find("counters") : nullptr;
            if (counters) {
              auto pick = [&](const char* name) {
                const json::Value* v = counters->find(name);
                return v && v->is_number() ? v->as_number() : 0.0;
              };
              std::lock_guard<std::mutex> lock(b.fleet_mu);
              b.fleet_requests = pick("serve.requests");
              b.fleet_answered = pick("serve.answered");
              b.fleet_shed = pick("serve.shed");
              b.fleet_deadline = pick("serve.deadline_exceeded");
            }
          }
        } else if (!r.ok()) {
          b.probe_client = Client();  // reconnect next round
        }
      }
      if (okay) {
        b.breaker.record_success(Clock::now());
      } else {
        b.breaker.record_failure(Clock::now());
        counters_->health_failures.fetch_add(1);
        OCPS_OBS_COUNT("serve.router.health_failures", 1);
      }
      b.up.store(okay);
    }
    refresh_gauges();

    Clock::time_point wake = Clock::now() + config_.health_interval;
    while (!stopping_.load() && Clock::now() < wake)
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
  }
}

void Router::refresh_gauges() {
  if (!obs::enabled()) return;
  std::size_t healthy = 0;
  double requests = 0.0, answered = 0.0, shed = 0.0, deadline = 0.0;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    Backend& b = *backends_[i];
    bool up = b.up.load();
    if (up) ++healthy;
    obs::gauge("serve.router.backend_up." + std::to_string(i))
        .set(up ? 1.0 : 0.0);
    const std::string lat_base =
        "serve.router.backend_latency." + std::to_string(i);
    obs::gauge(lat_base + ".window.p99")
        .set(obs::histogram_quantile(
            b.latency_window.snapshot(lat_base + ".window"), 0.99));
    std::lock_guard<std::mutex> lock(b.fleet_mu);
    requests += b.fleet_requests;
    answered += b.fleet_answered;
    shed += b.fleet_shed;
    deadline += b.fleet_deadline;
  }
  obs::gauge("serve.router.backends")
      .set(static_cast<double>(backends_.size()));
  obs::gauge("serve.router.backends_healthy")
      .set(static_cast<double>(healthy));
  obs::gauge("serve.fleet.requests").set(requests);
  obs::gauge("serve.fleet.answered").set(answered);
  obs::gauge("serve.fleet.shed").set(shed);
  obs::gauge("serve.fleet.deadline_exceeded").set(deadline);

  // Router-level SLO burn rates, recomputed per scrape. The names match
  // the daemon's serve.slo.* series — each process exports its own view.
  if (slo_->configured()) {
    obs::SloTracker::Status slo =
        slo_->status(obs::SloTracker::steady_now_ns());
    for (const obs::SloTracker::Objective& o : slo.objectives) {
      std::string base = "serve.slo." + o.name;
      obs::gauge(base + ".target").set(o.target);
      obs::gauge(base + ".burn_5m").set(o.burn_short);
      obs::gauge(base + ".burn_1h").set(o.burn_long);
      obs::gauge(base + ".breaching").set(o.breaching ? 1.0 : 0.0);
    }
    obs::gauge("serve.slo.alerts_total")
        .set(static_cast<double>(slo.alerts_total));
  }
}

}  // namespace ocps::serve
