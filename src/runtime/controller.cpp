#include "runtime/controller.hpp"

#include <algorithm>

#include "cachesim/lru.hpp"
#include "core/baselines.hpp"
#include "core/dp_partition.hpp"
#include "locality/shards.hpp"
#include "util/check.hpp"

namespace ocps {

ControllerResult run_online_controller(const InterleavedTrace& trace,
                                       std::size_t num_programs,
                                       const ControllerConfig& config) {
  OCPS_CHECK(num_programs >= 1, "need at least one program");
  OCPS_CHECK(config.capacity >= num_programs,
             "capacity too small for one unit per program");
  OCPS_CHECK(config.epoch_length >= 1, "epoch must be non-empty");
  OCPS_CHECK(config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0,
             "ewma_alpha must be in (0, 1]");
  OCPS_CHECK(config.min_units * num_programs <= config.capacity,
             "per-program floors exceed capacity");
  for (auto o : trace.owners)
    OCPS_CHECK(o < num_programs, "owner id out of range");

  const std::size_t p = num_programs;

  // Start from the equal partition: the controller knows nothing yet.
  std::vector<std::size_t> alloc = equal_partition(p, config.capacity);
  std::vector<LruCache> partitions;
  partitions.reserve(p);
  for (std::size_t i = 0; i < p; ++i) partitions.emplace_back(alloc[i]);

  // One sampled profiler per program; reset every epoch so the estimate
  // tracks the current phase. The EWMA blends successive epoch estimates.
  std::vector<ShardsProfiler> profilers;
  profilers.reserve(p);
  for (std::size_t i = 0; i < p; ++i)
    profilers.emplace_back(config.sampling_rate,
                           config.sampling_seed + i * 1315423911ULL);

  std::vector<std::vector<double>> ewma_cost(
      p, std::vector<double>(config.capacity + 1, 0.0));
  bool have_estimate = false;

  ControllerResult out;
  out.sim.accesses.assign(p, 0);
  out.sim.misses.assign(p, 0);
  out.alloc_history.push_back(alloc);

  std::vector<std::uint64_t> epoch_accesses(p, 0);
  std::uint64_t sampled_total = 0;

  auto end_epoch = [&]() {
    ++out.epochs;
    // Fresh per-epoch cost curves: observed access count x estimated MRC.
    for (std::size_t i = 0; i < p; ++i) {
      MissRatioCurve mrc = profilers[i].estimate_mrc(config.capacity);
      double weight = static_cast<double>(epoch_accesses[i]);
      for (std::size_t c = 0; c <= config.capacity; ++c) {
        double fresh = weight * mrc.ratio(c);
        ewma_cost[i][c] = have_estimate
                              ? config.ewma_alpha * fresh +
                                    (1.0 - config.ewma_alpha) *
                                        ewma_cost[i][c]
                              : fresh;
      }
      sampled_total += profilers[i].sampled_accesses();
      profilers[i].reset();
      epoch_accesses[i] = 0;
    }
    have_estimate = true;

    DpOptions options;
    if (config.min_units > 0)
      options.min_alloc.assign(p, config.min_units);
    DpResult dp = optimize_partition(ewma_cost, config.capacity, options);
    OCPS_CHECK(dp.feasible, "controller DP must be feasible");
    alloc = dp.alloc;
    for (std::size_t i = 0; i < p; ++i)
      partitions[i].set_capacity(alloc[i]);
    out.alloc_history.push_back(alloc);
  };

  for (std::size_t t = 0; t < trace.length(); ++t) {
    if (t > 0 && (t % config.epoch_length) == 0) end_epoch();
    std::uint32_t who = trace.owners[t];
    Block b = trace.blocks[t];
    profilers[who].observe(b);
    ++epoch_accesses[who];
    bool hit = partitions[who].access(b);
    ++out.sim.accesses[who];
    if (!hit) ++out.sim.misses[who];
  }
  // Account for the (partial) final epoch's sampling too.
  for (const auto& profiler : profilers)
    sampled_total += profiler.sampled_accesses();
  out.sampled_fraction =
      trace.length() == 0
          ? 0.0
          : static_cast<double>(sampled_total) /
                static_cast<double>(trace.length());
  return out;
}

}  // namespace ocps
