#include "locality/reuse_distance.hpp"

#include <unordered_map>

#include "util/check.hpp"
#include "util/fenwick.hpp"

namespace ocps {

std::uint64_t StackDistanceHistogram::misses_at(std::size_t c) const {
  std::uint64_t misses = cold_misses;
  for (std::size_t d = c + 1; d < hist.size(); ++d) misses += hist[d];
  return misses;
}

StackDistanceHistogram stack_distances(const Trace& trace) {
  const std::size_t n = trace.length();
  StackDistanceHistogram out;
  out.trace_length = n;
  out.hist.assign(n + 1, 0);
  if (n == 0) return out;

  // marks[t] == 1 iff position t is the *most recent* access of its block.
  // The count of marks strictly between the previous access p and the
  // current access t is the number of distinct other blocks in between;
  // depth = that + 1.
  Fenwick marks(n);
  std::unordered_map<Block, std::size_t> last;  // block -> 0-indexed position
  last.reserve(n / 4 + 16);
  for (std::size_t t = 0; t < n; ++t) {
    Block b = trace.accesses[t];
    auto it = last.find(b);
    if (it == last.end()) {
      ++out.cold_misses;
      last.emplace(b, t);
    } else {
      std::size_t p = it->second;
      std::int64_t between = marks.range(p + 1, t == 0 ? 0 : t - 1);
      std::size_t depth = static_cast<std::size_t>(between) + 1;
      OCPS_CHECK(depth <= n, "impossible stack depth " << depth);
      ++out.hist[depth];
      marks.add(p, -1);
      it->second = t;
    }
    marks.add(t, +1);
  }
  return out;
}

MissRatioCurve exact_lru_mrc(const StackDistanceHistogram& hist,
                             std::size_t capacity) {
  OCPS_CHECK(hist.trace_length > 0, "empty trace");
  // Misses at size c = cold + Σ_{d > c} hist[d]: compute as a suffix sum
  // so the whole curve costs O(n + capacity).
  std::vector<double> ratios(capacity + 1, 0.0);
  const double n = static_cast<double>(hist.trace_length);

  std::uint64_t tail = 0;  // Σ_{d > capacity} hist[d]
  for (std::size_t d = capacity + 1; d < hist.hist.size(); ++d)
    tail += hist.hist[d];
  // Walk c from capacity down to 0, growing the suffix.
  std::uint64_t misses = hist.cold_misses + tail;
  for (std::size_t c = capacity + 1; c-- > 0;) {
    ratios[c] = static_cast<double>(misses) / n;
    if (c < hist.hist.size() && c >= 1) misses += hist.hist[c];
  }
  // c = 0: every access misses by definition.
  ratios[0] = 1.0;
  return MissRatioCurve(std::move(ratios), hist.trace_length);
}

MissRatioCurve exact_lru_mrc(const Trace& trace, std::size_t capacity) {
  return exact_lru_mrc(stack_distances(trace), capacity);
}

}  // namespace ocps
