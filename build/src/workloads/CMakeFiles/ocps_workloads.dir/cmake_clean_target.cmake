file(REMOVE_RECURSE
  "libocps_workloads.a"
)
