#include "core/phase_aware.hpp"

#include "core/dp_partition.hpp"
#include "locality/footprint.hpp"
#include "util/check.hpp"

namespace ocps {

EpochProfile profile_epochs(const std::vector<Trace>& traces,
                            const std::vector<double>& rates,
                            std::size_t epochs, std::size_t capacity) {
  OCPS_CHECK(!traces.empty(), "no traces");
  OCPS_CHECK(traces.size() == rates.size(), "rates must parallel traces");
  OCPS_CHECK(epochs >= 1, "need at least one epoch");
  const std::size_t n = traces[0].length();
  for (const auto& t : traces)
    OCPS_CHECK(t.length() == n, "traces must have equal length");
  OCPS_CHECK(n >= epochs, "more epochs than accesses");

  EpochProfile out;
  out.epoch_length = n / epochs;
  out.epoch_models.resize(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    out.epoch_models[e].reserve(traces.size());
    std::size_t lo = e * out.epoch_length;
    std::size_t hi = (e + 1 == epochs) ? n : lo + out.epoch_length;
    for (std::size_t p = 0; p < traces.size(); ++p) {
      Trace slice;
      slice.accesses.assign(
          traces[p].accesses.begin() + static_cast<long>(lo),
          traces[p].accesses.begin() + static_cast<long>(hi));
      out.epoch_models[e].push_back(make_program_model(
          "p" + std::to_string(p) + "@e" + std::to_string(e), rates[p],
          compute_footprint(slice), capacity));
    }
  }
  return out;
}

VariableEpochProfile profile_epochs_at(
    const std::vector<Trace>& traces, const std::vector<double>& rates,
    const std::vector<std::size_t>& boundaries, std::size_t capacity) {
  OCPS_CHECK(!traces.empty(), "no traces");
  OCPS_CHECK(traces.size() == rates.size(), "rates must parallel traces");
  const std::size_t n = traces[0].length();
  for (const auto& t : traces)
    OCPS_CHECK(t.length() == n, "traces must have equal length");

  // Normalize boundaries: strictly increasing, inside (0, n).
  std::vector<std::size_t> starts = {0};
  for (std::size_t b : boundaries) {
    OCPS_CHECK(b > starts.back(), "boundaries must be strictly increasing");
    OCPS_CHECK(b < n, "boundary beyond trace length");
    starts.push_back(b);
  }

  VariableEpochProfile out;
  out.epoch_starts = starts;
  out.epoch_models.resize(starts.size());
  for (std::size_t e = 0; e < starts.size(); ++e) {
    std::size_t lo = starts[e];
    std::size_t hi = (e + 1 < starts.size()) ? starts[e + 1] : n;
    for (std::size_t p = 0; p < traces.size(); ++p) {
      Trace slice;
      slice.accesses.assign(
          traces[p].accesses.begin() + static_cast<long>(lo),
          traces[p].accesses.begin() + static_cast<long>(hi));
      out.epoch_models[e].push_back(make_program_model(
          "p" + std::to_string(p) + "@e" + std::to_string(e), rates[p],
          compute_footprint(slice), capacity));
    }
  }
  return out;
}

VariablePhasePlan phase_aware_optimize_at(const VariableEpochProfile& profile,
                                          std::size_t capacity) {
  OCPS_CHECK(profile.num_epochs() >= 1, "empty profile");
  VariablePhasePlan plan;
  plan.epoch_starts = profile.epoch_starts;
  plan.alloc_per_epoch.resize(profile.num_epochs());
  for (std::size_t e = 0; e < profile.num_epochs(); ++e) {
    const auto& models = profile.epoch_models[e];
    CostMatrix cost(models.size(), capacity);
    for (std::size_t p = 0; p < models.size(); ++p) {
      double* row = cost.row(p);
      for (std::size_t c = 0; c <= capacity; ++c)
        row[c] = models[p].access_rate * models[p].mrc.ratio(c);
    }
    DpResult dp = optimize_partition(cost.view(), capacity);
    OCPS_CHECK(dp.feasible, "per-epoch DP must be feasible");
    plan.alloc_per_epoch[e] = dp.alloc;
  }
  return plan;
}

CoRunResult simulate_variable_partitioned(const InterleavedTrace& trace,
                                          const VariablePhasePlan& plan,
                                          std::size_t num_programs,
                                          const CoRunOptions& options) {
  OCPS_CHECK(!plan.alloc_per_epoch.empty(), "empty plan");
  OCPS_CHECK(plan.epoch_starts.size() == plan.alloc_per_epoch.size(),
             "plan starts must parallel allocations");
  const std::size_t p = num_programs;
  for (const auto& alloc : plan.alloc_per_epoch)
    OCPS_CHECK(alloc.size() == p, "ragged plan");

  // Switch points in interleaved positions: per-program epoch start times
  // scale by the number of interleaved programs.
  std::vector<std::size_t> switch_at;
  for (std::size_t e = 1; e < plan.epoch_starts.size(); ++e)
    switch_at.push_back(plan.epoch_starts[e] * p);

  std::vector<LruCache> partitions;
  partitions.reserve(p);
  for (std::size_t i = 0; i < p; ++i)
    partitions.emplace_back(plan.alloc_per_epoch[0][i]);

  CoRunResult out;
  out.accesses.assign(p, 0);
  out.misses.assign(p, 0);
  std::size_t epoch = 0;
  for (std::size_t t = 0; t < trace.length(); ++t) {
    while (epoch < switch_at.size() && t >= switch_at[epoch]) {
      ++epoch;
      for (std::size_t i = 0; i < p; ++i)
        partitions[i].set_capacity(plan.alloc_per_epoch[epoch][i]);
    }
    std::uint32_t who = trace.owners[t];
    OCPS_CHECK(who < p, "owner outside plan");
    bool hit = partitions[who].access(trace.blocks[t]);
    if (t >= options.warmup) {
      ++out.accesses[who];
      if (!hit) ++out.misses[who];
    }
  }
  return out;
}

PhaseAwarePlan phase_aware_optimize(const EpochProfile& profile,
                                    std::size_t capacity) {
  OCPS_CHECK(profile.num_epochs() >= 1, "empty profile");
  PhaseAwarePlan plan;
  plan.alloc_per_epoch.resize(profile.num_epochs());
  double mr_sum = 0.0;
  for (std::size_t e = 0; e < profile.num_epochs(); ++e) {
    const auto& models = profile.epoch_models[e];
    CostMatrix cost(models.size(), capacity);
    double rate_sum = 0.0;
    for (std::size_t p = 0; p < models.size(); ++p) {
      rate_sum += models[p].access_rate;
      double* row = cost.row(p);
      for (std::size_t c = 0; c <= capacity; ++c)
        row[c] = models[p].access_rate * models[p].mrc.ratio(c);
    }
    DpResult dp = optimize_partition(cost.view(), capacity);
    OCPS_CHECK(dp.feasible, "per-epoch DP must be feasible");
    plan.alloc_per_epoch[e] = dp.alloc;
    mr_sum += dp.objective_value / rate_sum;
  }
  plan.predicted_group_mr = mr_sum / static_cast<double>(profile.num_epochs());
  return plan;
}

CoRunResult simulate_dynamic_partitioned(const InterleavedTrace& trace,
                                         const PhaseAwarePlan& plan,
                                         const CoRunOptions& options) {
  OCPS_CHECK(!plan.alloc_per_epoch.empty(), "empty plan");
  const std::size_t epochs = plan.alloc_per_epoch.size();
  const std::size_t p = plan.alloc_per_epoch[0].size();
  for (const auto& alloc : plan.alloc_per_epoch)
    OCPS_CHECK(alloc.size() == p, "ragged plan");

  std::vector<LruCache> partitions;
  partitions.reserve(p);
  for (std::size_t i = 0; i < p; ++i)
    partitions.emplace_back(plan.alloc_per_epoch[0][i]);

  CoRunResult out;
  out.accesses.assign(p, 0);
  out.misses.assign(p, 0);

  const std::size_t n = trace.length();
  const std::size_t epoch_len = std::max<std::size_t>(1, n / epochs);
  std::size_t current_epoch = 0;
  for (std::size_t t = 0; t < n; ++t) {
    std::size_t epoch = std::min(epochs - 1, t / epoch_len);
    if (epoch != current_epoch) {
      current_epoch = epoch;
      for (std::size_t i = 0; i < p; ++i)
        partitions[i].set_capacity(plan.alloc_per_epoch[epoch][i]);
    }
    std::uint32_t who = trace.owners[t];
    OCPS_CHECK(who < p, "owner outside plan");
    bool hit = partitions[who].access(trace.blocks[t]);
    if (t >= options.warmup) {
      ++out.accesses[who];
      if (!hit) ++out.misses[who];
    }
  }
  return out;
}

}  // namespace ocps
