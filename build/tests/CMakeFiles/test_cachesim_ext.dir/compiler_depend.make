# Empty compiler generated dependencies file for test_cachesim_ext.
# This may be replaced when dependencies are built.
