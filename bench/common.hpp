// Shared plumbing for the bench harness binaries.
//
// Every table/figure binary needs the profiled 16-program suite and most
// need the full 1820-group six-method sweep. Both are cached on disk
// (directory OCPS_SUITE_CACHE, default ./ocps_cache) so that running all
// bench binaries back to back profiles and sweeps only once — mirroring
// the paper's persisted footprint files.
//
// Environment knobs:
//   OCPS_TRACE_LENGTH  accesses per program           (default 400000)
//   OCPS_CAPACITY      cache size in 8KB-like units   (default 1024)
//   OCPS_GROUP_LIMIT   cap on number of co-run groups (default all 1820)
//   OCPS_SUITE_CACHE   cache directory                (default ./ocps_cache)
//   OCPS_CSV_DIR       when set, figure series are also written as CSV
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "core/group_sweep.hpp"
#include "obs/obs.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace ocps::bench {

/// Steady-clock stopwatch for bench phase timing, wired into the
/// observability layer: every timed phase is a "bench" trace span and a
/// sample in histogram `bench.<name>_ns` when OCPS_OBS is on. All bench
/// wall-clock numbers come from this one timer so they share a clock
/// (std::chrono::steady_clock) and show up in trace exports.
class PhaseTimer {
 public:
  explicit PhaseTimer(const char* name);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Elapsed seconds so far (or the final time once stopped).
  double seconds() const;
  /// Stops the timer, records the span + histogram sample, and returns
  /// elapsed seconds. Idempotent; the destructor calls it.
  double stop();

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  std::optional<obs::ScopedSpan> span_;
  double stopped_seconds_ = -1.0;
};

/// When observability is on (OCPS_OBS=1), writes the metrics-registry
/// JSON snapshot to `OCPS_METRICS_OUT` (or stdout when unset). Runs
/// automatically at exit of every binary linking bench common; calling
/// it earlier is idempotent. A no-op when observability is off.
void emit_metrics_snapshot_if_enabled();

/// Suite + sweep bundle used by the Table I / Fig 5-7 binaries.
struct Evaluation {
  Suite suite;
  std::vector<std::vector<std::uint32_t>> groups;
  std::vector<GroupEvaluation> sweep;
  std::size_t capacity = 0;
};

/// Builds the suite from env options (with on-disk footprint cache).
Suite load_suite();

/// Builds the suite and runs (or loads from cache) the full group sweep.
Evaluation load_evaluation();

/// Writes a table to stdout, and to `<OCPS_CSV_DIR>/<name>.csv` when the
/// env var is set.
void emit_table(const TextTable& table, const std::string& name);

/// Writes a table only to `<OCPS_CSV_DIR>/<name>.csv` (no stdout); used for
/// full figure series too long to print.
void emit_csv_only(const TextTable& table, const std::string& name);

/// Serialization of sweeps (exposed for tests of the cache layer).
void save_sweep(const std::vector<GroupEvaluation>& sweep,
                const std::string& path);
std::vector<GroupEvaluation> load_sweep(const std::string& path);

}  // namespace ocps::bench
