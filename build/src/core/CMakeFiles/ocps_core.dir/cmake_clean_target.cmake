file(REMOVE_RECURSE
  "libocps_core.a"
)
