# Empty compiler generated dependencies file for ocps_runtime.
# This may be replaced when dependencies are built.
