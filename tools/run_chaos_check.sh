#!/usr/bin/env bash
# Network chaos harness: the CLI-level end-to-end check that the serving
# fleet survives real process churn and socket-layer faults.
#
# Topology: `ocps router` in front of 3 `ocps serve` backends on Unix
# sockets, every backend running with deterministic write-fault chaos
# armed (resets, trickles, stalls). Load: 4 shell workers issuing
# `ocps query` partition requests with retries through the router while
# the harness SIGKILLs one backend mid-load and restarts it on the same
# socket path (exercising the stale-socket reclaim).
#
# Pass criteria (non-zero exit on any violation):
#  * zero wrong answers: every ok response parses, echoes its id, and
#    carries an alloc of the right arity whose blocks fit the capacity;
#  * every failed request failed cleanly: exit code 1 with a classified
#    429/502/503/504 status — never a corrupt line or a hang;
#  * availability >= 95% across the whole run despite the kill;
#  * the restarted backend is readmitted: router health reports all
#    backends up with closed breakers at the end;
#  * the router's Prometheus exposition carries the serve.router.* and
#    serve.fleet.* series;
#  * everything drains cleanly on SIGTERM.
#
# Usage: tools/run_chaos_check.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
ocps="$build_dir/tools/ocps"

if [[ ! -x "$ocps" ]]; then
  echo "building ocps CLI into $build_dir ..."
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j "$(nproc)" --target ocps_cli
fi

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in ${pids[@]+"${pids[@]}"}; do
    kill "$pid" 2> /dev/null || true
  done
  wait 2> /dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# --- profile set -----------------------------------------------------------
awk 'BEGIN { for (i = 0; i < 8000; i++) printf "%d\n", (i % 120) * 64 }' \
  > "$workdir/a.txt"
awk 'BEGIN { for (i = 0; i < 8000; i++) printf "%d\n", (i % 450) * 64 }' \
  > "$workdir/b.txt"
awk 'BEGIN { for (i = 0; i < 8000; i++) printf "%d\n", (i % 260) * 64 }' \
  > "$workdir/c.txt"
"$ocps" profile "$workdir/a.txt" -o "$workdir/a.fp" --name alpha > /dev/null
"$ocps" profile "$workdir/b.txt" -o "$workdir/b.fp" --name beta > /dev/null
"$ocps" profile "$workdir/c.txt" -o "$workdir/c.fp" --name gamma > /dev/null
profiles=("$workdir/a.fp" "$workdir/b.fp" "$workdir/c.fp")

# --- fleet -----------------------------------------------------------------
start_backend() { # index
  local i="$1"
  "$ocps" serve "${profiles[@]}" \
    --socket "$workdir/b$i.sock" --capacity 256 \
    --chaos-reset 0.02 --chaos-trickle 0.05 --chaos-stall 0.05 \
    --chaos-stall-ms 5 --chaos-seed $((1000 + i)) \
    > "$workdir/backend$i.log" 2>&1 &
  echo $!
}

backend_pids=()
for i in 0 1 2; do
  backend_pids[$i]="$(start_backend "$i")"
  pids+=("${backend_pids[$i]}")
done

for i in 0 1 2; do
  for _ in $(seq 1 50); do
    [[ -S "$workdir/b$i.sock" ]] && break
    sleep 0.1
  done
  [[ -S "$workdir/b$i.sock" ]] || fail "backend $i never bound its socket"
done

"$ocps" router --socket "$workdir/router.sock" \
  --backends "$workdir/b0.sock,$workdir/b1.sock,$workdir/b2.sock" \
  --breaker-threshold 3 --breaker-cooldown-ms 300 \
  --health-interval-ms 100 --metrics-port -1 \
  > "$workdir/router.log" 2>&1 &
router_pid=$!
pids+=("$router_pid")
for _ in $(seq 1 50); do
  [[ -S "$workdir/router.sock" ]] && break
  sleep 0.1
done
[[ -S "$workdir/router.sock" ]] || fail "router never bound its socket"

# --- load ------------------------------------------------------------------
requests_per_worker="${OCPS_CHAOS_REQUESTS:-40}"
run_worker() { # worker-id
  local w="$1" out="$workdir/worker$1.out"
  local groups=("alpha,beta" "beta,gamma" "alpha,gamma" "alpha,beta,gamma")
  for ((r = 0; r < requests_per_worker; r++)); do
    local group="${groups[$(((w + r) % 4))]}"
    if "$ocps" query --socket "$workdir/router.sock" --op partition \
        --programs "$group" --capacity 256 --deadline-ms 5000 \
        --retries 4 >> "$out" 2>> "$workdir/worker$w.err"; then
      echo "OK $group" >> "$workdir/worker$w.status"
    else
      echo "ERR $group" >> "$workdir/worker$w.status"
    fi
  done
}

for w in 0 1 2 3; do
  run_worker "$w" &
  pids+=("$!")
  worker_pids[$w]=$!
done

# --- the outage ------------------------------------------------------------
sleep 2
victim=1
echo "killing backend $victim (SIGKILL) mid-load ..."
kill -9 "${backend_pids[$victim]}" 2> /dev/null || true
sleep 2
echo "restarting backend $victim on the same socket path ..."
backend_pids[$victim]="$(start_backend "$victim")"
pids+=("${backend_pids[$victim]}")

for w in 0 1 2 3; do
  wait "${worker_pids[$w]}" || true
done

# --- validation ------------------------------------------------------------
total=$(cat "$workdir"/worker*.status | wc -l)
ok=$(grep -c '^OK' "$workdir"/worker*.status | awk -F: '{s+=$2} END {print s}')
[[ "$total" -eq $((4 * requests_per_worker)) ]] \
  || fail "expected $((4 * requests_per_worker)) outcomes, saw $total"

if command -v python3 > /dev/null; then
  python3 - "$workdir" <<'EOF'
import glob, json, sys

workdir = sys.argv[1]
answers = 0
for path in glob.glob(workdir + "/worker*.out"):
    for line in open(path):
        line = line.strip()
        if not line:
            continue
        resp = json.loads(line)  # a corrupt line throws -> FAIL
        assert resp.get("ok") is True, f"non-ok line in stdout: {line}"
        alloc = resp["alloc"]
        programs = resp["programs"]
        assert len(alloc) == len(programs), f"alloc arity mismatch: {line}"
        assert sum(alloc) <= 256, f"alloc exceeds capacity: {line}"
        answers += 1
errors = 0
for path in glob.glob(workdir + "/worker*.err"):
    for line in open(path):
        if "daemon replied" in line:
            code = int(line.split("daemon replied ")[1].split(":")[0])
            assert code in (429, 502, 503, 504), f"unclean failure: {line}"
            errors += 1
print(f"validated {answers} ok answers, {errors} clean in-band errors")
EOF
else
  fail "python3 is required to validate responses"
fi

avail=$((ok * 100 / total))
echo "availability: $ok/$total (${avail}%)"
[[ "$avail" -ge 95 ]] || fail "availability ${avail}% < 95%"

# Restarted backend must be readmitted (breakers closed, all up).
readmitted=""
for _ in $(seq 1 50); do
  health="$("$ocps" query --socket "$workdir/router.sock" --op health)" || true
  if command -v python3 > /dev/null \
    && echo "$health" | python3 -c '
import json, sys
h = json.load(sys.stdin)
rows = h["backends"]
ok = len(rows) == 3 and all(b["up"] and b["state"] == "closed" for b in rows)
sys.exit(0 if ok else 1)
'; then
    readmitted=yes
    break
  fi
  sleep 0.2
done
[[ -n "$readmitted" ]] || fail "restarted backend was never readmitted"

# Fleet-wide Prometheus exposition from the router.
metrics_port="$(sed -n 's/.*http:\/\/127\.0\.0\.1:\([0-9]*\)\/metrics.*/\1/p' \
  "$workdir/router.log" | head -1)"
[[ -n "$metrics_port" ]] || fail "router never announced its metrics port"
scrape="$workdir/scrape.txt"
if command -v curl > /dev/null; then
  curl -sf "http://127.0.0.1:$metrics_port/metrics" > "$scrape" \
    || fail "metrics scrape failed"
else
  exec 3<> "/dev/tcp/127.0.0.1/$metrics_port" \
    || fail "metrics connect failed"
  printf 'GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n' >&3
  cat <&3 > "$scrape"
  exec 3<&- 3>&-
fi
for series in serve_router_requests serve_router_forwarded \
  serve_router_failovers serve_router_health_probes serve_fleet_requests; do
  grep -q "^$series" "$scrape" || fail "metrics missing series $series"
done

# --- drain -----------------------------------------------------------------
# The daemons are not direct children of this shell (started via command
# substitution), so `wait` cannot reap them — poll their logs for the
# drain banner instead.
wait_drained() { # logfile what
  for _ in $(seq 1 50); do
    grep -q "drained:" "$1" && return 0
    sleep 0.1
  done
  fail "$2 did not drain"
}
kill "$router_pid"
wait "$router_pid" 2> /dev/null || true
wait_drained "$workdir/router.log" "router"
for i in 0 1 2; do
  kill "${backend_pids[$i]}" 2> /dev/null || true
  wait_drained "$workdir/backend$i.log" "backend $i"
done

chaos_fired=$(sed -n 's/^chaos injected: //p' "$workdir"/backend*.log \
  | tr ', ' '\n' | grep -c '^[1-9]' || true)
echo "chaos summary: $(sed -n 's/^chaos injected: //p' \
  "$workdir"/backend*.log | tr '\n' '; ')"
[[ "$chaos_fired" -gt 0 ]] || fail "chaos injectors never fired"

echo "PASS: fleet survived chaos + kill/restart with ${avail}% availability"
