
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/ocps_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/ocps_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/composition.cpp" "src/core/CMakeFiles/ocps_core.dir/composition.cpp.o" "gcc" "src/core/CMakeFiles/ocps_core.dir/composition.cpp.o.d"
  "/root/repo/src/core/dp_partition.cpp" "src/core/CMakeFiles/ocps_core.dir/dp_partition.cpp.o" "gcc" "src/core/CMakeFiles/ocps_core.dir/dp_partition.cpp.o.d"
  "/root/repo/src/core/elastic.cpp" "src/core/CMakeFiles/ocps_core.dir/elastic.cpp.o" "gcc" "src/core/CMakeFiles/ocps_core.dir/elastic.cpp.o.d"
  "/root/repo/src/core/group_sweep.cpp" "src/core/CMakeFiles/ocps_core.dir/group_sweep.cpp.o" "gcc" "src/core/CMakeFiles/ocps_core.dir/group_sweep.cpp.o.d"
  "/root/repo/src/core/objectives.cpp" "src/core/CMakeFiles/ocps_core.dir/objectives.cpp.o" "gcc" "src/core/CMakeFiles/ocps_core.dir/objectives.cpp.o.d"
  "/root/repo/src/core/partition_sharing.cpp" "src/core/CMakeFiles/ocps_core.dir/partition_sharing.cpp.o" "gcc" "src/core/CMakeFiles/ocps_core.dir/partition_sharing.cpp.o.d"
  "/root/repo/src/core/performance.cpp" "src/core/CMakeFiles/ocps_core.dir/performance.cpp.o" "gcc" "src/core/CMakeFiles/ocps_core.dir/performance.cpp.o.d"
  "/root/repo/src/core/phase_aware.cpp" "src/core/CMakeFiles/ocps_core.dir/phase_aware.cpp.o" "gcc" "src/core/CMakeFiles/ocps_core.dir/phase_aware.cpp.o.d"
  "/root/repo/src/core/program_model.cpp" "src/core/CMakeFiles/ocps_core.dir/program_model.cpp.o" "gcc" "src/core/CMakeFiles/ocps_core.dir/program_model.cpp.o.d"
  "/root/repo/src/core/sttw.cpp" "src/core/CMakeFiles/ocps_core.dir/sttw.cpp.o" "gcc" "src/core/CMakeFiles/ocps_core.dir/sttw.cpp.o.d"
  "/root/repo/src/core/suh.cpp" "src/core/CMakeFiles/ocps_core.dir/suh.cpp.o" "gcc" "src/core/CMakeFiles/ocps_core.dir/suh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ocps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ocps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/locality/CMakeFiles/ocps_locality.dir/DependInfo.cmake"
  "/root/repo/build/src/combinatorics/CMakeFiles/ocps_comb.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/ocps_cachesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
