# Empty dependencies file for test_core_composition.
# This may be replaced when dependencies are built.
