// Reuse-time profiling (§III of the paper).
//
// A reuse pair is a pair of accesses to the same datum with no intervening
// access to it; the reuse time of the pair at positions i < j (1-indexed)
// is rt = j - i + 1 (paper Eq. 4). The reuse-time histogram freq(rt),
// together with each datum's first and last access positions, is a
// sufficient statistic for the average footprint function — that is the
// linear-time footprint formula of Xiang et al. implemented in
// footprint.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace ocps {

/// Reuse-time statistics of one trace. Positions are 1-indexed as in the
/// paper. All counts are exact (full-trace profiling, no sampling).
struct ReuseProfile {
  std::uint64_t trace_length = 0;   ///< n
  std::uint64_t distinct = 0;       ///< m
  /// freq[rt] = number of reuse pairs with reuse time rt; index 0 and 1
  /// are always zero (minimum reuse time is 2: adjacent accesses).
  std::vector<std::uint64_t> freq;
  /// first_count[x] = number of data whose first access is at position x.
  std::vector<std::uint64_t> first_count;
  /// last_count[x] = number of data whose last access is at position x.
  std::vector<std::uint64_t> last_count;

  /// Total number of reuse pairs (= n - m).
  std::uint64_t reuse_pairs() const { return trace_length - distinct; }
};

/// Profiles a trace in one O(n) pass.
ReuseProfile profile_reuse(const Trace& trace);

}  // namespace ocps
