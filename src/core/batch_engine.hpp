// Prefix-memoized DP for batched group evaluation (the engine behind
// sweep_groups).
//
// The Table I sweep solves the same partitioning DP for every co-run
// group drawn from one program table. The DP table is built one member
// layer at a time, and a layer depends only on the member prefix before
// it — so two groups that share a prefix share those layers exactly.
// Enumerated in lexicographic order, the C(13,4) = 715 four-member groups
// of a 13-program table touch only 13 + 78 + 286 = 377 distinct non-final
// layers instead of 715 × 3 = 2,145: adjacent groups usually differ only
// in the last member, and the last layer is never materialized anyway —
// the backtrack reads just its capacity column, so the solver computes
// that single state (O(C) instead of O(C²/2)).
//
// PrefixDpSolver keeps the layer stack from the previous solve and reuses
// the longest prefix whose (member, lower-bound) pairs match; everything
// is arena-allocated and reused, so steady-state solves do zero heap
// allocation. Results are bit-for-bit identical to per-group
// optimize_partition: both run the same dp_detail::forward_layer kernel.
//
// Incremental re-solve: each cached layer remembers a fingerprint of the
// cost row it was built from. When a profile changes between controller
// epochs or serve hot reloads, resolve_incremental() invalidates only the
// layers whose prefix includes the changed program — either named
// explicitly (resolve_incremental(changed_program)) or detected by
// fingerprint diff against a replacement cost table
// (resolve_incremental(new_costs)). The next solve() then rebuilds just
// the invalidated suffix: a one-program change costs O(suffix) layers,
// not a full reconfigure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cost_matrix.hpp"
#include "core/dp_partition.hpp"

namespace ocps {

/// Batched DP solver over groups drawn from one cost table. Not
/// thread-safe: use one per sweep thread (see parallel_for_with).
class PrefixDpSolver {
 public:
  /// Cumulative work counters (also mirrored to obs by the sweep).
  struct Stats {
    std::uint64_t solves = 0;
    std::uint64_t layers_computed = 0;  ///< forward layers actually built
    std::uint64_t layers_reused = 0;    ///< layers served from the stack
    std::uint64_t cells = 0;            ///< DP cells examined
    std::uint64_t layers_invalidated = 0;  ///< dropped by resolve_incremental
    std::uint64_t incremental_refreshes = 0;  ///< resolve_incremental calls
  };

  /// Binds the solver to a cost table (cost(i, c) for every program i in
  /// the table, c = 0..capacity) and an objective. Validates the table
  /// once (finite entries) so per-solve validation is free. Invalidates
  /// any cached layers.
  void configure(CostMatrixView all_costs, std::size_t capacity,
                 DpObjective objective);

  /// Solves the partitioning DP for the group `members[0..count)` (indices
  /// into the configured table) with optional per-position lower bounds
  /// `lo` (nullptr = all zero; upper bounds are the full capacity). Reuses
  /// `out.alloc` storage. Infeasible bounds yield out.feasible == false.
  void solve(const std::uint32_t* members, std::size_t count,
             const std::size_t* lo, DpResult& out);

  /// Notes that `changed_program`'s cost row changed in place (the view
  /// still points at the same table): drops every cached layer whose
  /// prefix includes that program — layers before its first appearance
  /// are unaffected, so the next solve() rebuilds only the suffix.
  /// Returns the number of layers invalidated (obs counter
  /// `dp.layers_invalidated`).
  std::size_t resolve_incremental(std::uint32_t changed_program);

  /// Rebinds the solver to a replacement cost table of the same shape
  /// (rows, cols) — a serve hot reload or a controller epoch's refreshed
  /// estimates — keeping every cached layer whose cost row is
  /// bit-identical to the one it was built from (per-layer fingerprint
  /// diff; in-place mutation of the old table is safe because the
  /// fingerprint was taken at build time). Layers from the first changed
  /// row onward are invalidated. Validates the new table like
  /// configure(). Returns the number of layers invalidated. Use
  /// configure() when capacity, objective, or table shape change.
  std::size_t resolve_incremental(CostMatrixView new_costs);

  const Stats& stats() const { return stats_; }

 private:
  // One cached DP layer: the table row after including `member` with lower
  // bound `lo` at this position. best/choice are sized capacity+1 and
  // reused across solves.
  struct Layer {
    std::uint32_t member = 0;
    std::size_t lo = 0;
    std::uint64_t fingerprint = 0;  ///< hash of the cost row at build time
    std::vector<double> best;
    std::vector<std::uint32_t> choice;
  };

  // Invalidation helper shared by the resolve_incremental overloads.
  std::size_t truncate_layers(std::size_t keep);

  CostMatrixView costs_;
  std::size_t capacity_ = 0;
  DpObjective objective_ = DpObjective::kSumCost;
  std::vector<Layer> layers_;
  std::size_t valid_layers_ = 0;  ///< prefix of layers_ that is current
  std::vector<double> final_best_;
  std::vector<std::uint32_t> final_choice_;
  Stats stats_;
};

}  // namespace ocps
