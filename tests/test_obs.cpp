// Tests for the observability layer: metrics registry (concurrent
// counters, histogram bucketing), trace ring buffers, and the Chrome
// trace_event JSON export (round-tripped through a minimal JSON parser).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "runtime/controller.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "util/json.hpp"

namespace ocps {
namespace {

#ifndef OCPS_OBS_DISABLED

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset_metrics();
    obs::clear_trace_events();
  }
  void TearDown() override { obs::set_enabled(false); }
};

// ---------------------------------------------------------------- metrics

TEST_F(ObsTest, CounterConcurrentIncrementsSumExactly) {
  obs::Counter& c = obs::counter("test.concurrent_counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(ObsTest, CounterMacroAccumulatesAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        OCPS_OBS_COUNT("test.macro_counter", 2);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(obs::counter("test.macro_counter").value(),
            2 * kThreads * kPerThread);
}

TEST_F(ObsTest, HistogramConcurrentObservationsSumExactly) {
  obs::Histogram& h = obs::histogram("test.concurrent_hist");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.observe(3.0);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), 3.0 * kThreads * kPerThread);
  // All 3.0s land in the [2, 4) bucket.
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_index(3.0)),
            kThreads * kPerThread);
}

TEST_F(ObsTest, HistogramBucketBoundariesAreExactPowersOfTwo) {
  using H = obs::Histogram;
  // Everything below 1 (and non-finite garbage) lands in bucket 0.
  EXPECT_EQ(H::bucket_index(0.0), 0u);
  EXPECT_EQ(H::bucket_index(0.5), 0u);
  EXPECT_EQ(H::bucket_index(0.999999), 0u);
  EXPECT_EQ(H::bucket_index(-7.0), 0u);
  EXPECT_EQ(H::bucket_index(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(H::bucket_index(std::numeric_limits<double>::infinity()), 0u);
  EXPECT_EQ(H::bucket_index(-std::numeric_limits<double>::infinity()), 0u);
  // Bucket i >= 1 covers [2^(i-1), 2^i): the boundary value 2^k belongs
  // to bucket k+1, and the value just below it to bucket k.
  EXPECT_EQ(H::bucket_index(1.0), 1u);
  EXPECT_EQ(H::bucket_index(1.999), 1u);
  EXPECT_EQ(H::bucket_index(2.0), 2u);
  EXPECT_EQ(H::bucket_index(3.999), 2u);
  EXPECT_EQ(H::bucket_index(4.0), 3u);
  for (std::size_t k = 0; k + 2 < obs::kHistogramBuckets; ++k) {
    double v = std::ldexp(1.0, static_cast<int>(k));  // 2^k
    EXPECT_EQ(H::bucket_index(v), k + 1) << "v = 2^" << k;
    EXPECT_EQ(H::bucket_index(std::nextafter(v, 0.0)), k == 0 ? 0u : k)
        << "v just below 2^" << k;
    EXPECT_DOUBLE_EQ(H::bucket_lower_bound(k + 1), v);
    EXPECT_DOUBLE_EQ(H::bucket_upper_bound(k + 1),
                     std::ldexp(1.0, static_cast<int>(k) + 1));
  }
  // The last bucket is open-ended.
  EXPECT_EQ(H::bucket_index(std::ldexp(1.0, 62)),
            obs::kHistogramBuckets - 1);
  EXPECT_EQ(H::bucket_index(std::numeric_limits<double>::max()),
            obs::kHistogramBuckets - 1);
  EXPECT_TRUE(std::isinf(
      H::bucket_upper_bound(obs::kHistogramBuckets - 1)));
}

TEST_F(ObsTest, HistogramObserveMatchesBucketIndex) {
  obs::Histogram& h = obs::histogram("test.boundary_hist");
  h.observe(1.0);    // bucket 1
  h.observe(2.0);    // bucket 2
  h.observe(1.999);  // bucket 1
  h.observe(0.25);   // bucket 0
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.count(), 4u);
}

TEST_F(ObsTest, ResetZeroesButKeepsAddresses) {
  obs::Counter& c = obs::counter("test.reset_counter");
  obs::Histogram& h = obs::histogram("test.reset_hist");
  c.add(41);
  h.observe(8.0);
  obs::reset_metrics();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&c, &obs::counter("test.reset_counter"));
  // The histogram must be zeroed in place: OCPS_OBS_HIST caches a
  // reference per call site, so the object may never be reallocated.
  EXPECT_EQ(&h, &obs::histogram("test.reset_hist"));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  c.add(1);
  h.observe(2.0);
  EXPECT_EQ(obs::counter("test.reset_counter").value(), 1u);
  EXPECT_EQ(obs::histogram("test.reset_hist").count(), 1u);
}

TEST_F(ObsTest, DisabledSitesRecordNothing) {
  obs::set_enabled(false);
  OCPS_OBS_COUNT("test.disabled_counter", 1);
  obs::ScopedSpan span("test.disabled_span", "test");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.elapsed_ns(), 0u);
  obs::set_enabled(true);
  EXPECT_EQ(obs::counter("test.disabled_counter").value(), 0u);
}

// ----------------------------------------------------------------- spans

TEST_F(ObsTest, RingOverwriteKeepsNewestEvents) {
  const std::uint64_t total = obs::kRingCapacity + 100;
  for (std::uint64_t i = 0; i < total; ++i)
    obs::instant_event("test.ring", "test", "i", i);
  std::vector<std::uint64_t> seen;
  for (const auto& e : obs::trace_events())
    if (std::string(e.name) == "test.ring") seen.push_back(e.arg);
  ASSERT_EQ(seen.size(), obs::kRingCapacity);
  // The oldest 100 events were overwritten; the newest survive, in order.
  std::uint64_t expect = 100;
  for (std::uint64_t v : seen) EXPECT_EQ(v, expect++);
}

TEST_F(ObsTest, SpansRecordDurationAndArgs) {
  {
    obs::ScopedSpan span("test.span", "test");
    span.set_arg("size", 17);
    EXPECT_TRUE(span.active());
  }
  bool found = false;
  for (const auto& e : obs::trace_events()) {
    if (std::string(e.name) != "test.span") continue;
    found = true;
    EXPECT_FALSE(e.instant);
    EXPECT_STREQ(e.cat, "test");
    EXPECT_STREQ(e.arg_name, "size");
    EXPECT_EQ(e.arg, 17u);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, EventsFromMultipleThreadsCarryDistinctTids) {
  std::thread other([] { obs::instant_event("test.tid", "test", "t", 2); });
  other.join();
  obs::instant_event("test.tid", "test", "t", 1);
  std::vector<std::uint32_t> tids;
  for (const auto& e : obs::trace_events())
    if (std::string(e.name) == "test.tid") tids.push_back(e.tid);
  ASSERT_EQ(tids.size(), 2u);
  EXPECT_NE(tids[0], tids[1]);
}

// ---------------------------------------------- minimal JSON round-trip

// Just enough of a JSON parser to validate the exported artifacts:
// objects, arrays, strings (no escapes beyond \"), numbers, null.
struct MiniJson {
  const std::string& s;
  std::size_t i = 0;
  bool ok = true;

  explicit MiniJson(const std::string& text) : s(text) {}

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r'))
      ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    ok = false;
    return false;
  }
  bool peek(char c) {
    ws();
    return i < s.size() && s[i] == c;
  }
  std::string string() {
    if (!eat('"')) return "";
    std::string out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      out.push_back(s[i++]);
    }
    eat('"');
    return out;
  }
  void number() {
    ws();
    if (i + 4 <= s.size() && s.compare(i, 4, "null") == 0) {
      i += 4;
      return;
    }
    // Strict JSON numbers only: bare inf/nan tokens must fail the parse.
    std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
            s[i] == '+' || s[i] == '.' || s[i] == 'e' || s[i] == 'E'))
      ++i;
    if (i == start) ok = false;
  }
  void value() {
    ws();
    if (peek('{')) {
      object(nullptr);
    } else if (peek('[')) {
      array(nullptr);
    } else if (peek('"')) {
      string();
    } else {
      number();
    }
  }
  /// Parses an object; when `keys` is non-null, collects the keys seen.
  void object(std::vector<std::string>* keys) {
    if (!eat('{')) return;
    if (peek('}')) {
      eat('}');
      return;
    }
    do {
      std::string k = string();
      if (keys) keys->push_back(k);
      if (!eat(':')) return;
      value();
    } while (ok && peek(',') && eat(','));
    eat('}');
  }
  /// Parses an array; returns the element count.
  std::size_t array(std::vector<std::vector<std::string>>* element_keys) {
    if (!eat('[')) return 0;
    if (peek(']')) {
      eat(']');
      return 0;
    }
    std::size_t n = 0;
    do {
      ws();
      if (peek('{') && element_keys) {
        element_keys->emplace_back();
        object(&element_keys->back());
      } else {
        value();
      }
      ++n;
    } while (ok && peek(',') && eat(','));
    eat(']');
    return n;
  }
};

TEST_F(ObsTest, ChromeTraceJsonRoundTrips) {
  {
    obs::ScopedSpan span("test.json_span", "test");
    span.set_arg("n", 5);
  }
  obs::instant_event("test.json_marker", "test");

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string text = os.str();

  MiniJson parser(text);
  std::vector<std::string> top_keys;
  // Parse the outer shell manually so we can inspect the array.
  ASSERT_TRUE(parser.eat('{'));
  EXPECT_EQ(parser.string(), "traceEvents");
  ASSERT_TRUE(parser.eat(':'));
  std::vector<std::vector<std::string>> events;
  std::size_t n = parser.array(&events);
  ASSERT_TRUE(parser.eat('}'));
  parser.ws();
  EXPECT_TRUE(parser.ok) << text;
  EXPECT_EQ(parser.i, text.size()) << "trailing garbage";

  EXPECT_EQ(n, obs::trace_events().size());
  ASSERT_GE(n, 2u);
  for (const auto& keys : events) {
    // Chrome requires name/ph/pid/tid/ts on every event.
    for (const char* required : {"name", "cat", "ph", "pid", "tid", "ts"})
      EXPECT_NE(std::find(keys.begin(), keys.end(), required), keys.end())
          << "missing key " << required;
  }
}

TEST_F(ObsTest, MetricsJsonRoundTrips) {
  obs::counter("test.json_counter").add(3);
  obs::histogram("test.json_hist").observe(100.0);
  obs::gauge("test.json_gauge").set(2.5);
  obs::gauge("test.json_inf_gauge").set(
      std::numeric_limits<double>::infinity());
  obs::gauge("test.json_nan_gauge").set(
      std::numeric_limits<double>::quiet_NaN());

  std::ostringstream os;
  obs::write_metrics_json(os);
  const std::string text = os.str();

  MiniJson parser(text);
  std::vector<std::string> top_keys;
  parser.object(&top_keys);
  parser.ws();
  EXPECT_TRUE(parser.ok) << text;
  EXPECT_EQ(parser.i, text.size()) << "trailing garbage";
  for (const char* required : {"counters", "gauges", "histograms"})
    EXPECT_NE(std::find(top_keys.begin(), top_keys.end(), required),
              top_keys.end());
  EXPECT_NE(text.find("\"test.json_counter\":3"), std::string::npos);
  EXPECT_NE(text.find("\"test.json_hist\""), std::string::npos);
  // Non-finite gauges must serialize as null, never as nan/inf tokens.
  EXPECT_NE(text.find("\"test.json_inf_gauge\":null"), std::string::npos);
  EXPECT_NE(text.find("\"test.json_nan_gauge\":null"), std::string::npos);
}

TEST_F(ObsTest, TextTimelineListsEvents) {
  { obs::ScopedSpan span("test.timeline_span", "test"); }
  std::ostringstream os;
  obs::write_text_timeline(os);
  EXPECT_NE(os.str().find("test/test.timeline_span"), std::string::npos);
}

// ------------------------------------------------- controller tracing

TEST_F(ObsTest, ControllerEmitsOneSpanPerEpochStage) {
  Trace a = make_cyclic(30000, 64);
  Trace b = make_sawtooth(30000, 128);
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 60000);
  ControllerConfig config;
  config.capacity = 256;
  config.epoch_length = 10000;
  run_online_controller(mix, 2, config, {});

  std::size_t epochs = 0, estimates = 0, sanitizes = 0, solves = 0,
              applies = 0;
  for (const auto& e : obs::trace_events()) {
    std::string name = e.name;
    if (name == "epoch") ++epochs;
    if (name == "estimate") ++estimates;
    if (name == "sanitize") ++sanitizes;
    if (name == "dp_solve") ++solves;
    if (name == "apply") ++applies;
  }
  EXPECT_EQ(epochs, 5u);  // 60000 accesses / 10000 per epoch - final partial
  EXPECT_EQ(estimates, epochs);
  EXPECT_EQ(sanitizes, epochs);
  EXPECT_EQ(solves, epochs);
  EXPECT_EQ(applies, epochs);
  EXPECT_EQ(obs::counter("controller.epochs").value(), epochs);
  EXPECT_GT(obs::histogram("dp.solve_ns").count(), 0u);
}

// ------------------------------------------- quantiles & exposition

TEST_F(ObsTest, HistogramQuantileInterpolatesWithinBuckets) {
  // 100 observations of 3.0 all land in bucket [2, 4): the median
  // interpolates to the bucket midpoint, p100 to the upper bound.
  obs::HistogramSnapshot h;
  h.count = 100;
  h.buckets = {{obs::Histogram::bucket_index(3.0), 100}};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 1.0), 4.0);

  // 50 in [1, 2) + 50 in [2, 4): the crossing walks the cumulative
  // counts and interpolates inside the crossing bucket only.
  obs::HistogramSnapshot two;
  two.count = 100;
  two.buckets = {{1, 50}, {2, 50}};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(two, 0.25), 1.5);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(two, 0.75), 3.0);

  // The log-bucket guarantee: the estimate is within a factor of 2 of
  // any true value inside the crossing bucket.
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    double est = obs::histogram_quantile(two, q);
    EXPECT_GE(est, 1.0);
    EXPECT_LE(est, 4.0);
  }
}

TEST_F(ObsTest, HistogramQuantileEdgeCases) {
  obs::HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(empty, 0.5), 0.0);

  // Bucket 0 holds v < 1; its lower bound is reported as 0 so sub-unit
  // latencies do not all flatten to 1.
  obs::HistogramSnapshot tiny;
  tiny.count = 10;
  tiny.buckets = {{0, 10}};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(tiny, 0.5), 0.5);

  // The last bucket is open-ended: clamp to its lower bound instead of
  // interpolating toward infinity.
  obs::HistogramSnapshot top;
  top.count = 4;
  top.buckets = {{obs::kHistogramBuckets - 1, 4}};
  EXPECT_DOUBLE_EQ(
      obs::histogram_quantile(top, 0.99),
      obs::Histogram::bucket_lower_bound(obs::kHistogramBuckets - 1));

  // Out-of-range q clamps rather than extrapolating.
  obs::HistogramSnapshot one;
  one.count = 1;
  one.buckets = {{1, 1}};
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(one, -3.0),
                   obs::histogram_quantile(one, 0.0));
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(one, 7.0),
                   obs::histogram_quantile(one, 1.0));
}

TEST_F(ObsTest, WindowedHistogramForgetsOldSeconds) {
  constexpr std::uint64_t kSec = 1000000000ULL;
  obs::WindowedHistogram w(/*window_seconds=*/3);
  EXPECT_EQ(w.window_seconds(), 3u);
  // One observation per second at seconds 0..5, values 10, 20, ..., 60.
  for (std::uint64_t s = 0; s < 6; ++s)
    w.observe_at(10.0 * static_cast<double>(s + 1), s * kSec);

  // At second 5 the window covers seconds 3..5: values 40, 50, 60.
  obs::HistogramSnapshot now = w.snapshot_at("w", 5 * kSec);
  EXPECT_EQ(now.count, 3u);
  EXPECT_DOUBLE_EQ(now.sum, 150.0);

  // A scrape with an older clock sees only what survives in the ring:
  // seconds 0 and 1 were recycled by 4 and 5 (4-slot ring), so the
  // window ending at second 2 holds just second 2 itself.
  obs::HistogramSnapshot past = w.snapshot_at("w", 2 * kSec);
  EXPECT_EQ(past.count, 1u);
  EXPECT_DOUBLE_EQ(past.sum, 30.0);

  // Far in the future every slot has aged out.
  obs::HistogramSnapshot later = w.snapshot_at("w", 100 * kSec);
  EXPECT_EQ(later.count, 0u);

  // A slot recycled by a new second drops its old contents exactly once:
  // second 6 hashes onto second 2's slot (ring of window+1 = 4 slots).
  w.observe_at(5.0, 6 * kSec);
  obs::HistogramSnapshot wrapped = w.snapshot_at("w", 6 * kSec);
  EXPECT_EQ(wrapped.count, 3u);  // seconds 4, 5, 6
  EXPECT_DOUBLE_EQ(wrapped.sum, 50.0 + 60.0 + 5.0);
}

TEST_F(ObsTest, PrometheusExpositionIsWellFormed) {
  obs::counter("test.prom.counter").add(7);
  obs::gauge("test.prom.gauge").set(2.5);
  obs::gauge("test.prom.nan_gauge").set(
      std::numeric_limits<double>::quiet_NaN());
  obs::Histogram& h = obs::histogram("test.prom.hist");
  h.observe(0.5);   // bucket 0
  h.observe(3.0);   // bucket [2, 4)
  h.observe(3.5);   // bucket [2, 4)
  h.observe(100.0);  // bucket [64, 128)

  std::ostringstream os;
  obs::write_metrics_prometheus(os);
  const std::string text = os.str();

  // Dots sanitize to underscores; every family gets a TYPE line.
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge 2.5"), std::string::npos);
  // Non-finite gauges use Prometheus spellings, not JSON null.
  EXPECT_NE(text.find("test_prom_nan_gauge NaN"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_hist histogram"),
            std::string::npos);

  // Histogram series: cumulative buckets, +Inf equals _count.
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"4\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"128\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 4"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_sum 107"), std::string::npos);

  // Raw dots must never leak into metric names.
  EXPECT_EQ(text.find("test.prom"), std::string::npos);
}

TEST_F(ObsTest, SpansDroppedCountsRingOverwrites) {
  // Fill this thread's ring exactly, then push 7 more: each overwrite
  // bumps obs.spans_dropped so truncated exports are detectable.
  for (std::uint64_t i = 0; i < obs::kRingCapacity; ++i)
    obs::instant_event("test.fill", "test", "i", i);
  EXPECT_EQ(obs::counter("obs.spans_dropped").value(), 0u);
  for (std::uint64_t i = 0; i < 7; ++i)
    obs::instant_event("test.overflow", "test", "i", i);
  EXPECT_EQ(obs::counter("obs.spans_dropped").value(), 7u);

  // The counter appears in the Prometheus scrape.
  std::ostringstream os;
  obs::write_metrics_prometheus(os);
  EXPECT_NE(os.str().find("obs_spans_dropped 7"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceParsesWithUtilJsonAfterWrap) {
  // Spans from two threads sharing one trace id, plus enough instant
  // events to wrap the main thread's ring — the export must stay valid
  // JSON with every span a complete X event carrying dur.
  {
    obs::ScopedSpan s("test.wrap_root", "test");
    s.set_trace_id(42);
    s.set_arg("id", 9);
  }
  std::thread worker([] {
    obs::ScopedSpan s("test.wrap_child", "test");
    s.set_trace_id(42);
  });
  worker.join();
  for (std::uint64_t i = 0; i < obs::kRingCapacity + 50; ++i)
    obs::instant_event("test.wrap_noise", "test", "i", i);

  std::ostringstream os;
  obs::write_chrome_trace(os);
  Result<json::Value> parsed = json::parse(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();

  const json::Value* events = parsed.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::size_t spans_with_id = 0;
  std::vector<double> tids;
  for (const json::Value& e : events->as_array()) {
    ASSERT_TRUE(e.is_object());
    std::string ph = e.get_string("ph", "");
    EXPECT_TRUE(ph == "X" || ph == "i") << ph;
    EXPECT_NE(e.find("name"), nullptr);
    EXPECT_NE(e.find("ts"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
    // Complete (X) events must carry a duration; instants must not.
    if (ph == "X") {
      const json::Value* dur = e.find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->as_number(), 0.0);
    } else {
      EXPECT_EQ(e.find("dur"), nullptr);
    }
    // Spans tagged with the request's trace id link via bind_id and echo
    // it in args for the viewer's detail pane.
    if (e.get_number("bind_id", 0.0) == 42.0) {
      ++spans_with_id;
      tids.push_back(e.get_number("tid", -1.0));
      const json::Value* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->get_number("trace_id", 0.0), 42.0);
    }
  }
  // The root span's ring wrapped, but the worker thread's ring kept its
  // span: at least one tagged event survives, and when both do they come
  // from distinct threads.
  ASSERT_GE(spans_with_id, 1u);
  if (spans_with_id >= 2) {
    EXPECT_NE(tids[0], tids[1]);
  }
}

TEST_F(ObsTest, WindowedHistogramRecyclesLazilyAcrossLongIdleGap) {
  constexpr std::uint64_t kSec = 1000000000ULL;
  obs::WindowedHistogram w(/*window_seconds=*/3);
  // Two live seconds, then a ~3-hour idle gap. Slots are recycled lazily
  // (on the next write that lands on them), so the stale slots survive in
  // the ring — the window filter alone must keep them out of snapshots.
  w.observe_at(10.0, 4 * kSec);  // slot 0 (ring of window+1 = 4)
  w.observe_at(20.0, 5 * kSec);  // slot 1

  // First scrape after the gap, before any new write: nothing in window.
  obs::HistogramSnapshot idle = w.snapshot_at("w", 10001 * kSec);
  EXPECT_EQ(idle.count, 0u);
  EXPECT_DOUBLE_EQ(idle.sum, 0.0);

  // Second 10001 aliases onto second 5's slot (10001 % 4 == 1): the
  // write recycles it, and only the fresh observation is visible.
  w.observe_at(7.0, 10001 * kSec);
  obs::HistogramSnapshot fresh = w.snapshot_at("w", 10001 * kSec);
  EXPECT_EQ(fresh.count, 1u);
  EXPECT_DOUBLE_EQ(fresh.sum, 7.0);

  // Second 4's slot was never written again, so it still holds the old
  // second — proving recycling is lazy — but a window ending inside the
  // gap cannot see it, while a window covering second 4 still can.
  obs::HistogramSnapshot gap = w.snapshot_at("w", 9000 * kSec);
  EXPECT_EQ(gap.count, 0u);
  obs::HistogramSnapshot old_window = w.snapshot_at("w", 6 * kSec);
  EXPECT_EQ(old_window.count, 1u);
  EXPECT_DOUBLE_EQ(old_window.sum, 10.0);
}

TEST_F(ObsTest, WindowedHistogramExpiredWindowGoesEmptyNotStale) {
  constexpr std::uint64_t kSec = 1000000000ULL;
  obs::WindowedHistogram w(/*window_seconds=*/3);
  for (std::uint64_t s = 0; s < 4; ++s) w.observe_at(12.0, s * kSec);
  ASSERT_GT(w.snapshot_at("w", 3 * kSec).count, 0u);

  // Once every slot has aged out, the snapshot — and therefore any gauge
  // derived from it — must report empty, not the last live quantiles.
  obs::HistogramSnapshot expired = w.snapshot_at("w", 500 * kSec);
  EXPECT_EQ(expired.count, 0u);
  EXPECT_DOUBLE_EQ(expired.sum, 0.0);
  EXPECT_TRUE(expired.buckets.empty());
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(expired, 0.50), 0.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(expired, 0.99), 0.0);
}

// -------------------------------------------------------------- exemplars

TEST_F(ObsTest, ExemplarStoreKeepsLatestPerBucket) {
  obs::note_exemplar("test.ex", 3.0, 42);
  obs::note_exemplar("test.ex", 3.5, 43);    // same [2,4) bucket: replaces
  obs::note_exemplar("test.ex", 100.0, 44);  // [64,128) bucket

  auto ex = obs::exemplars_for("test.ex");
  ASSERT_EQ(ex.size(), 2u);
  EXPECT_EQ(ex[0].first, obs::Histogram::bucket_index(3.5));
  EXPECT_EQ(ex[0].second.trace_id, 43u);
  EXPECT_DOUBLE_EQ(ex[0].second.value, 3.5);
  EXPECT_EQ(ex[1].first, obs::Histogram::bucket_index(100.0));
  EXPECT_EQ(ex[1].second.trace_id, 44u);

  // Unknown histograms have no exemplars, and reset_metrics clears all.
  EXPECT_TRUE(obs::exemplars_for("test.ex_other").empty());
  obs::reset_metrics();
  EXPECT_TRUE(obs::exemplars_for("test.ex").empty());
}

TEST_F(ObsTest, ExemplarIgnoresUntracedAndDisabledObservations) {
  // trace_id 0 means "no trace attached" — never an exemplar.
  obs::note_exemplar("test.ex_skip", 5.0, 0);
  EXPECT_TRUE(obs::exemplars_for("test.ex_skip").empty());

  // With observability off the store must not accumulate.
  obs::set_enabled(false);
  obs::note_exemplar("test.ex_skip", 5.0, 77);
  obs::set_enabled(true);
  EXPECT_TRUE(obs::exemplars_for("test.ex_skip").empty());
}

TEST_F(ObsTest, PrometheusBucketsCarryExemplarSuffix) {
  obs::Histogram& h = obs::histogram("test.exprom");
  h.observe(3.5);
  obs::note_exemplar("test.exprom", 3.5, 43);
  h.observe(1e20);  // folds into the +Inf bucket
  obs::note_exemplar("test.exprom", 1e20, 99);

  std::ostringstream os;
  obs::write_metrics_prometheus(os);
  const std::string text = os.str();

  // OpenMetrics-style suffix on the bucket the exemplar landed in…
  EXPECT_NE(
      text.find("test_exprom_bucket{le=\"4\"} 1 # {trace_id=\"43\"} 3.5"),
      std::string::npos);
  // …including buckets folded into +Inf.
  EXPECT_NE(text.find("test_exprom_bucket{le=\"+Inf\"} 2 "
                      "# {trace_id=\"99\"} 1e+20"),
            std::string::npos);
  // Buckets without exemplars stay bare (exactly one suffix emitted).
  std::size_t first = text.find("# {trace_id=\"43\"}");
  EXPECT_EQ(text.find("# {trace_id=\"43\"}", first + 1), std::string::npos);
}

TEST_F(ObsTest, MetricsJsonCarriesExemplars) {
  obs::histogram("test.exjson").observe(3.5);
  obs::note_exemplar("test.exjson", 3.5, 51);

  std::ostringstream os;
  obs::write_metrics_json(os);
  Result<json::Value> parsed = json::parse(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();

  const json::Value* hists = parsed.value().find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* h = hists->find("test.exjson");
  ASSERT_NE(h, nullptr);
  const json::Value* exemplars = h->find("exemplars");
  ASSERT_NE(exemplars, nullptr);
  ASSERT_TRUE(exemplars->is_array());
  ASSERT_EQ(exemplars->as_array().size(), 1u);
  const json::Value& e = exemplars->as_array()[0];
  EXPECT_EQ(e.get_number("trace_id", 0.0), 51.0);
  EXPECT_DOUBLE_EQ(e.get_number("value", 0.0), 3.5);
  EXPECT_DOUBLE_EQ(e.get_number("lo", -1.0),
                   obs::Histogram::bucket_lower_bound(
                       obs::Histogram::bucket_index(3.5)));
}

// --------------------------------------------------- trace event filtering

TEST_F(ObsTest, TraceEventsForReturnsOnlyTaggedEvents) {
  {
    obs::ScopedSpan s("test.tagged", "test");
    s.set_trace_id(314);
  }
  {
    obs::ScopedSpan s("test.untagged", "test");
  }
  obs::instant_event("test.tagged_instant", "test", "hop", 2, 314);

  std::vector<obs::TraceEvent> events = obs::trace_events_for(314);
  ASSERT_EQ(events.size(), 2u);
  for (const obs::TraceEvent& e : events) EXPECT_EQ(e.trace_id, 314u);
  EXPECT_TRUE(obs::trace_events_for(9999).empty());
}

#endif  // OCPS_OBS_DISABLED

// ------------------------------------------------------------ SLO tracker
//
// The SloTracker is deliberately independent of the OCPS_OBS_DISABLED
// switch (the `slo` op answers even in stripped builds), so these tests
// run in both configurations. All clocks are synthetic.

namespace slo_test {
constexpr std::uint64_t kSec = 1000000000ULL;
}  // namespace slo_test

TEST(SloTrackerTest, UnconfiguredTrackerReportsNothing) {
  obs::SloTracker slo{obs::SloConfig{}};
  EXPECT_FALSE(slo.configured());
  slo.record(1000.0, false, 0);  // dropped: nothing to judge against
  obs::SloTracker::Status st = slo.status(0);
  EXPECT_TRUE(st.objectives.empty());
  EXPECT_TRUE(st.alerts.empty());
  EXPECT_EQ(st.alerts_total, 0u);
}

TEST(SloTrackerTest, LatencyBurnRateMatchesBudgetMath) {
  using slo_test::kSec;
  obs::SloConfig cfg;
  cfg.p99_ms = 10.0;
  obs::SloTracker slo{cfg};
  ASSERT_TRUE(slo.configured());

  // 100 requests, 2 over target: 2% bad against a 1% budget = burn 2.0
  // in both windows (all traffic is recent).
  for (int i = 0; i < 98; ++i) slo.record(5.0, true, 10 * kSec);
  for (int i = 0; i < 2; ++i) slo.record(50.0, true, 10 * kSec);

  obs::SloTracker::Status st = slo.status(10 * kSec);
  ASSERT_EQ(st.objectives.size(), 1u);
  const obs::SloTracker::Objective& o = st.objectives[0];
  EXPECT_EQ(o.name, "latency");
  EXPECT_DOUBLE_EQ(o.target, 10.0);
  EXPECT_DOUBLE_EQ(o.budget, 0.01);
  EXPECT_DOUBLE_EQ(o.burn_short, 2.0);
  EXPECT_DOUBLE_EQ(o.burn_long, 2.0);
  EXPECT_TRUE(o.breaching);
  EXPECT_EQ(st.alerts_total, 1u);

  // Burning at half the budget rate is healthy, not a breach.
  obs::SloTracker calm{cfg};
  for (int i = 0; i < 199; ++i) calm.record(5.0, true, 10 * kSec);
  calm.record(50.0, true, 10 * kSec);
  obs::SloTracker::Status cst = calm.status(10 * kSec);
  ASSERT_EQ(cst.objectives.size(), 1u);
  EXPECT_DOUBLE_EQ(cst.objectives[0].burn_short, 0.5);
  EXPECT_FALSE(cst.objectives[0].breaching);
  EXPECT_EQ(cst.alerts_total, 0u);
}

TEST(SloTrackerTest, AvailabilityObjectiveCountsFailures) {
  using slo_test::kSec;
  obs::SloConfig cfg;
  cfg.p99_ms = 10.0;
  cfg.availability = 0.99;  // 1% error budget
  obs::SloTracker slo{cfg};

  // Fast but failing: latency healthy, availability burning at 4x.
  for (int i = 0; i < 96; ++i) slo.record(1.0, true, 5 * kSec);
  for (int i = 0; i < 4; ++i) slo.record(1.0, false, 5 * kSec);

  obs::SloTracker::Status st = slo.status(5 * kSec);
  ASSERT_EQ(st.objectives.size(), 2u);
  EXPECT_EQ(st.objectives[0].name, "latency");
  EXPECT_FALSE(st.objectives[0].breaching);
  EXPECT_EQ(st.objectives[1].name, "availability");
  EXPECT_DOUBLE_EQ(st.objectives[1].target, 0.99);
  // Budget is 1.0 - 0.99 in doubles, so the burn is 4.0 up to rounding.
  EXPECT_NEAR(st.objectives[1].burn_short, 4.0, 1e-9);
  EXPECT_TRUE(st.objectives[1].breaching);
  ASSERT_EQ(st.alerts.size(), 1u);
  EXPECT_EQ(st.alerts[0].objective, "availability");
}

TEST(SloTrackerTest, BreachRequiresBothWindowsBurning) {
  using slo_test::kSec;
  obs::SloConfig cfg;
  cfg.p99_ms = 10.0;
  obs::SloTracker slo{cfg};

  // An incident at t=0s: every request slow.
  for (int i = 0; i < 50; ++i) slo.record(100.0, true, 0);

  // 10 minutes later the 5m window holds only healthy traffic while the
  // 1h window still remembers the incident: burning long-only must NOT
  // page (that is the whole point of multi-window burn rates).
  for (int i = 0; i < 50; ++i) slo.record(1.0, true, 600 * kSec);
  obs::SloTracker::Status st = slo.status(600 * kSec);
  ASSERT_EQ(st.objectives.size(), 1u);
  EXPECT_DOUBLE_EQ(st.objectives[0].burn_short, 0.0);
  EXPECT_DOUBLE_EQ(st.objectives[0].burn_long, 50.0);
  EXPECT_FALSE(st.objectives[0].breaching);
  EXPECT_EQ(st.alerts_total, 0u);

  // Conversely a short spike with an empty long window does not page
  // either — both windows must agree.
  obs::SloTracker spike{cfg};
  obs::SloTracker::Status empty = spike.status(0);
  ASSERT_EQ(empty.objectives.size(), 1u);
  EXPECT_FALSE(empty.objectives[0].breaching);
}

TEST(SloTrackerTest, AlertsAreEdgeTriggeredAndBounded) {
  using slo_test::kSec;
  obs::SloConfig cfg;
  cfg.p99_ms = 10.0;
  cfg.alert_capacity = 2;
  obs::SloTracker slo{cfg};

  // Three breach episodes separated by > the long window, so each one
  // starts from clean windows. Every episode: slow traffic, then several
  // status() calls — the alert fires once per episode, not per call.
  std::uint64_t alerts_seen = 0;
  for (int episode = 0; episode < 3; ++episode) {
    std::uint64_t t = static_cast<std::uint64_t>(episode) * 10000 * kSec;
    for (int i = 0; i < 20; ++i) slo.record(100.0, true, t);
    obs::SloTracker::Status st = slo.status(t);
    ASSERT_EQ(st.objectives.size(), 1u);
    EXPECT_TRUE(st.objectives[0].breaching);
    EXPECT_EQ(st.alerts_total, alerts_seen + 1);
    obs::SloTracker::Status again = slo.status(t);
    EXPECT_EQ(again.alerts_total, alerts_seen + 1);  // latched, no re-fire
    alerts_seen = st.alerts_total;

    // Recovery: healthy traffic after the windows have fully drained.
    std::uint64_t calm = t + 5000 * kSec;
    for (int i = 0; i < 20; ++i) slo.record(1.0, true, calm);
    obs::SloTracker::Status rec = slo.status(calm);
    EXPECT_FALSE(rec.objectives[0].breaching);
  }

  // Three alerts fired, but the log is bounded at capacity 2 and keeps
  // the most recent ones (monotonic seq survives the trim).
  obs::SloTracker::Status final_st =
      slo.status(3 * 10000 * kSec);
  EXPECT_EQ(final_st.alerts_total, 3u);
  ASSERT_EQ(final_st.alerts.size(), 2u);
  EXPECT_EQ(final_st.alerts[0].seq, 2u);
  EXPECT_EQ(final_st.alerts[1].seq, 3u);
}

TEST(SloTrackerTest, SlotRecyclingSurvivesLongIdleGaps) {
  using slo_test::kSec;
  obs::SloConfig cfg;
  cfg.p99_ms = 10.0;
  obs::SloTracker slo{cfg};

  // Bad traffic, then a multi-day gap: the stale slots must not leak
  // into windows anchored at the new time.
  for (int i = 0; i < 30; ++i) slo.record(100.0, true, 0);
  std::uint64_t later = 400000 * kSec;
  for (int i = 0; i < 30; ++i) slo.record(1.0, true, later);
  obs::SloTracker::Status st = slo.status(later);
  ASSERT_EQ(st.objectives.size(), 1u);
  EXPECT_DOUBLE_EQ(st.objectives[0].burn_short, 0.0);
  EXPECT_DOUBLE_EQ(st.objectives[0].burn_long, 0.0);
  EXPECT_FALSE(st.objectives[0].breaching);
}

}  // namespace
}  // namespace ocps
