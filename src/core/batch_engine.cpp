#include "core/batch_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ocps {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// FNV-1a 64 over the raw bytes of a cost row: a bit-identity check, not
// a numeric one — any representational change (including -0.0 vs 0.0)
// counts as a profile change. Deterministic across builds, O(C) per row
// vs the O(C²) layer rebuild it saves.
std::uint64_t row_fingerprint(const double* row, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &row[i], sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace

void PrefixDpSolver::configure(CostMatrixView all_costs, std::size_t capacity,
                               DpObjective objective) {
  OCPS_CHECK(all_costs.cols() >= capacity + 1,
             "cost table shorter than capacity+1");
  for (std::size_t i = 0; i < all_costs.rows(); ++i) {
    const double* row = all_costs.row(i);
    for (std::size_t c = 0; c <= capacity; ++c)
      OCPS_CHECK(std::isfinite(row[c]),
                 "non-finite cost at program " << i << ", c=" << c);
  }
  costs_ = all_costs;
  capacity_ = capacity;
  objective_ = objective;
  valid_layers_ = 0;
  final_best_.resize(capacity + 1);
  final_choice_.resize(capacity + 1);
}

void PrefixDpSolver::solve(const std::uint32_t* members, std::size_t count,
                           const std::size_t* lo, DpResult& out) {
  OCPS_CHECK(count >= 1, "need at least one program");
  ++stats_.solves;
  if (dp_detail::active_kernel() == dp_detail::KernelKind::kAvx2)
    OCPS_OBS_COUNT("dp.kernel.avx2", 1);
  else
    OCPS_OBS_COUNT("dp.kernel.scalar", 1);
  out.feasible = false;
  out.objective_value = 0.0;
  out.alloc.clear();  // keeps capacity; refilled on success

  if (layers_.size() < count) layers_.resize(count);

  // Longest cached prefix whose (member, lo) pairs match this group. Only
  // non-final layers (positions 0..count-2) are ever cached.
  std::size_t reuse = 0;
  while (reuse < valid_layers_ && reuse + 1 < count &&
         layers_[reuse].member == members[reuse] &&
         layers_[reuse].lo == (lo ? lo[reuse] : 0)) {
    ++reuse;
  }
  valid_layers_ = reuse;
  stats_.layers_reused += reuse;

  // Build the missing non-final layers.
  for (std::size_t j = reuse; j + 1 < count; ++j) {
    const std::size_t lo_j = lo ? lo[j] : 0;
    OCPS_CHECK(members[j] < costs_.rows(),
               "program index out of range: " << members[j]);
    if (lo_j > capacity_) return;  // infeasible bounds
    Layer& layer = layers_[j];
    layer.member = members[j];
    layer.lo = lo_j;
    layer.fingerprint =
        row_fingerprint(costs_.row(members[j]), capacity_ + 1);
    layer.best.assign(capacity_ + 1, kInf);
    layer.choice.resize(capacity_ + 1);
    const double* prev = j == 0 ? nullptr : layers_[j - 1].best.data();
    stats_.cells += dp_detail::forward_layer(
        objective_, costs_.row(members[j]), lo_j, capacity_,
        /*k_begin=*/lo_j, /*k_end=*/capacity_, /*prev_is_base=*/j == 0,
        prev, layer.best.data(), layer.choice.data());
    ++stats_.layers_computed;
    valid_layers_ = j + 1;
  }

  // Final layer: the backtrack only reads its capacity column, so compute
  // that single state (never cached — the next group almost certainly ends
  // differently).
  const std::size_t last = count - 1;
  const std::size_t lo_last = lo ? lo[last] : 0;
  OCPS_CHECK(members[last] < costs_.rows(),
             "program index out of range: " << members[last]);
  if (lo_last > capacity_) return;  // infeasible bounds
  final_best_[capacity_] = kInf;
  stats_.cells += dp_detail::forward_layer(
      objective_, costs_.row(members[last]), lo_last, capacity_,
      /*k_begin=*/capacity_, /*k_end=*/capacity_,
      /*prev_is_base=*/count == 1,
      count == 1 ? nullptr : layers_[count - 2].best.data(),
      final_best_.data(), final_choice_.data());
  ++stats_.layers_computed;

  if (final_best_[capacity_] == kInf) return;  // infeasible

  out.feasible = true;
  out.objective_value = final_best_[capacity_];
  out.alloc.assign(count, 0);
  std::size_t k = capacity_;
  {
    std::size_t c = final_choice_[capacity_];
    out.alloc[last] = c;
    OCPS_CHECK(c <= k, "backtrack inconsistency");
    k -= c;
  }
  for (std::size_t j = last; j-- > 0;) {
    std::size_t c = layers_[j].choice[k];
    out.alloc[j] = c;
    OCPS_CHECK(c <= k, "backtrack inconsistency");
    k -= c;
  }
  OCPS_CHECK(k == 0, "allocation does not sum to capacity");
}

std::size_t PrefixDpSolver::truncate_layers(std::size_t keep) {
  const std::size_t invalidated = valid_layers_ - keep;
  valid_layers_ = keep;
  stats_.layers_invalidated += invalidated;
  ++stats_.incremental_refreshes;
  if (invalidated > 0) OCPS_OBS_COUNT("dp.layers_invalidated", invalidated);
  return invalidated;
}

std::size_t PrefixDpSolver::resolve_incremental(
    std::uint32_t changed_program) {
  std::size_t keep = 0;
  while (keep < valid_layers_ && layers_[keep].member != changed_program)
    ++keep;
  return truncate_layers(keep);
}

std::size_t PrefixDpSolver::resolve_incremental(CostMatrixView new_costs) {
  OCPS_CHECK(new_costs.rows() == costs_.rows() &&
                 new_costs.cols() == costs_.cols(),
             "resolve_incremental: table shape changed ("
                 << new_costs.rows() << "x" << new_costs.cols() << " vs "
                 << costs_.rows() << "x" << costs_.cols()
                 << "); use configure()");
  // Same validation configure() performs: a non-finite entry must fail
  // loudly here, never corrupt a min-reduction later.
  for (std::size_t i = 0; i < new_costs.rows(); ++i) {
    const double* row = new_costs.row(i);
    for (std::size_t c = 0; c <= capacity_; ++c)
      OCPS_CHECK(std::isfinite(row[c]),
                 "non-finite cost at program " << i << ", c=" << c);
  }
  costs_ = new_costs;
  std::size_t keep = 0;
  while (keep < valid_layers_ &&
         layers_[keep].fingerprint ==
             row_fingerprint(new_costs.row(layers_[keep].member),
                             capacity_ + 1))
    ++keep;
  return truncate_layers(keep);
}

}  // namespace ocps
