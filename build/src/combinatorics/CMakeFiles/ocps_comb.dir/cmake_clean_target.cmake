file(REMOVE_RECURSE
  "libocps_comb.a"
)
