#include "core/cost_matrix.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ocps {

CostMatrix CostMatrix::from_rows(
    const std::vector<std::vector<double>>& rows, std::size_t capacity) {
  CostMatrix m(rows.size(), capacity);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    OCPS_CHECK(rows[i].size() >= capacity + 1,
               "cost row " << i << " shorter than capacity+1");
    double* dst = m.row(i);
    for (std::size_t c = 0; c <= capacity; ++c) dst[c] = rows[i][c];
  }
  return m;
}

CostMatrix weighted_cost_matrix(
    const std::vector<const MissRatioCurve*>& mrcs,
    const std::vector<double>& weights, std::size_t capacity) {
  OCPS_CHECK(mrcs.size() == weights.size(), "weights must parallel curves");
  CostMatrix cost(mrcs.size(), capacity);
  for (std::size_t i = 0; i < mrcs.size(); ++i) {
    OCPS_CHECK(mrcs[i] != nullptr, "null curve at " << i);
    OCPS_CHECK(weights[i] >= 0.0, "negative weight at " << i);
    double* row = cost.row(i);
    for (std::size_t c = 0; c <= capacity; ++c)
      row[c] = weights[i] * mrcs[i]->ratio(c);
  }
  return cost;
}

}  // namespace ocps
