// Robustness bench: miss-ratio degradation of the hardened online
// controller vs a naive restart-on-error baseline under injected faults.
//
// Both controllers see *exactly* the same fault schedule (the injector is
// a pure function of seed/epoch/program) and the same interleaved trace.
// The hardened controller walks the degradation ladder (sanitize → hold
// last-good → equal-partition fallback); the baseline does what an
// unhardened controller wrapped in a supervisor would do: restart from
// the equal partition and discard everything it learned.
//
// Sanity anchors, checked at exit (non-zero exit on violation):
//  * fault rate 0: the hardened controller's allocations are bit-for-bit
//    identical to a run with no fault hooks installed at all;
//  * fault rate 10%: every run completes with no uncaught exception and
//    the hardened controller's final miss ratio beats the baseline's.
#include <iostream>
#include <vector>

#include "common.hpp"
#include "runtime/controller.hpp"
#include "runtime/fault_injection.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "util/table.hpp"

using namespace ocps;
using namespace ocps::bench;

namespace {

struct Run {
  ControllerResult result;
  std::size_t injected = 0;
};

InterleavedTrace make_workload(std::size_t n_each) {
  // A mix where the optimal split is strongly skewed: losing the learned
  // allocation (what the restart baseline keeps doing) is expensive.
  std::vector<Trace> traces = {
      make_cyclic(n_each, 300),
      make_zipf(n_each, 700, 0.9, 501),
      make_sawtooth(n_each, 60),
      make_hot_cold(n_each, 40, 900, 0.8, 502),
  };
  return interleave_proportional(traces, {1.0, 1.0, 1.0, 1.0},
                                 n_each * traces.size());
}

ControllerConfig make_config(FaultPolicy policy) {
  ControllerConfig config;
  config.capacity = 512;
  config.epoch_length = 20000;
  config.sampling_rate = 0.1;
  config.max_delta_units = 96;  // hysteresis: damp single-epoch thrash
  config.fault_policy = policy;
  return config;
}

Run run_with_faults(const InterleavedTrace& mix, FaultPolicy policy,
                    double rate, std::uint64_t seed) {
  FaultInjector injector(FaultInjectionConfig::uniform(rate, seed));
  ControllerHooks hooks = injector.hooks();
  Run r;
  r.result = run_online_controller(mix, 4, make_config(policy), hooks);
  r.injected = injector.injected_total();
  return r;
}

}  // namespace

int main() {
  const std::size_t n_each = 120000;
  const std::uint64_t fault_seed = 0xF417;
  InterleavedTrace mix = make_workload(n_each);

  std::cout << "=== Robustness: hardened controller vs restart-on-error "
               "baseline under injected faults ===\n"
               "(C=512, 4 programs, " << mix.length()
            << " accesses, identical fault schedules per row)\n\n";

  TextTable t({"fault rate", "injected", "hardened mr", "restart mr",
               "degraded epochs", "repairs", "fallbacks", "restarts"});

  bool ok = true;
  for (double rate : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    Run hardened = run_with_faults(mix, FaultPolicy::kGraceful, rate,
                                   fault_seed);
    Run baseline = run_with_faults(mix, FaultPolicy::kRestartOnError, rate,
                                   fault_seed);
    std::size_t restarts = 0;
    for (const auto& h : baseline.result.health)
      if (h.restarted) ++restarts;

    t.add_row({TextTable::pct(rate, 0), std::to_string(hardened.injected),
               TextTable::num(hardened.result.sim.group_miss_ratio(), 4),
               TextTable::num(baseline.result.sim.group_miss_ratio(), 4),
               std::to_string(hardened.result.epochs_degraded),
               std::to_string(hardened.result.repairs),
               std::to_string(hardened.result.fallbacks),
               std::to_string(restarts)});

    if (rate == 0.0) {
      // Inert injector == no hooks at all, bit for bit.
      ControllerResult clean =
          run_online_controller(mix, 4, make_config(FaultPolicy::kGraceful));
      if (clean.alloc_history != hardened.result.alloc_history) {
        std::cout << "FAIL: fault rate 0 changed the allocation decisions\n";
        ok = false;
      }
    }
    if (rate == 0.10 &&
        !(hardened.result.sim.group_miss_ratio() <
          baseline.result.sim.group_miss_ratio())) {
      std::cout << "FAIL: hardened controller not strictly better than the "
                   "restart baseline at 10% faults\n";
      ok = false;
    }
  }
  emit_table(t, "fault_tolerance");

  std::cout << "\nExpected: at 0% both columns match the fault-free "
               "controller; as the fault rate grows the baseline keeps "
               "resetting to the equal partition and its miss ratio "
               "climbs, while the hardened controller repairs or holds "
               "and degrades only mildly.\n";
  return ok ? 0 : 1;
}
