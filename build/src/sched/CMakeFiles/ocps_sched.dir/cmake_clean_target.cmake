file(REMOVE_RECURSE
  "libocps_sched.a"
)
