#include "sched/symbiosis.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/composition.hpp"
#include "core/dp_partition.hpp"
#include "util/check.hpp"

namespace ocps {

Schedule evaluate_schedule(const std::vector<const ProgramModel*>& programs,
                           const std::vector<std::uint32_t>& cache_of,
                           std::size_t num_caches, std::size_t capacity) {
  OCPS_CHECK(cache_of.size() == programs.size(),
             "assignment must cover every program");
  const std::size_t p = programs.size();
  Schedule out;
  out.cache_of = cache_of;
  out.per_program_mr.assign(p, 0.0);

  for (std::size_t cache = 0; cache < num_caches; ++cache) {
    std::vector<const ProgramModel*> residents;
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < p; ++i) {
      OCPS_CHECK(cache_of[i] < num_caches,
                 "program " << i << " assigned to missing cache");
      if (cache_of[i] == cache) {
        residents.push_back(programs[i]);
        indices.push_back(i);
      }
    }
    if (residents.empty()) continue;
    CoRunGroup group(std::move(residents));
    auto mrs =
        predict_shared_miss_ratios(group, static_cast<double>(capacity));
    for (std::size_t k = 0; k < indices.size(); ++k)
      out.per_program_mr[indices[k]] = mrs[k];
  }

  double rate_total = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    rate_total += programs[i]->access_rate;
    weighted += programs[i]->access_rate * out.per_program_mr[i];
  }
  out.overall_mr = rate_total > 0.0 ? weighted / rate_total : 0.0;
  return out;
}

Schedule best_schedule_exhaustive(
    const std::vector<const ProgramModel*>& programs, std::size_t num_caches,
    std::size_t capacity) {
  OCPS_CHECK(!programs.empty(), "no programs to schedule");
  OCPS_CHECK(num_caches >= 1, "need at least one cache");
  Schedule best;
  best.overall_mr = std::numeric_limits<double>::infinity();

  for_each_set_partition(
      static_cast<std::uint32_t>(programs.size()),
      static_cast<std::uint32_t>(num_caches),
      [&](const SetPartition& groups) {
        std::vector<std::uint32_t> cache_of(programs.size());
        for (std::size_t g = 0; g < groups.size(); ++g)
          for (std::uint32_t member : groups[g])
            cache_of[member] = static_cast<std::uint32_t>(g);
        Schedule s =
            evaluate_schedule(programs, cache_of, num_caches, capacity);
        if (s.overall_mr < best.overall_mr) best = std::move(s);
        return true;
      });
  OCPS_CHECK(best.overall_mr !=
                 std::numeric_limits<double>::infinity(),
             "no schedule examined");
  return best;
}

Schedule best_schedule_partitioned(
    const std::vector<const ProgramModel*>& programs, std::size_t num_caches,
    std::size_t capacity) {
  OCPS_CHECK(!programs.empty(), "no programs to schedule");
  OCPS_CHECK(num_caches >= 1, "need at least one cache");
  const std::size_t p = programs.size();

  Schedule best;
  best.overall_mr = std::numeric_limits<double>::infinity();

  for_each_set_partition(
      static_cast<std::uint32_t>(p), static_cast<std::uint32_t>(num_caches),
      [&](const SetPartition& groups) {
        Schedule s;
        s.cache_of.assign(p, 0);
        s.per_program_mr.assign(p, 0.0);
        double weighted = 0.0, rate_total = 0.0;
        for (std::size_t g = 0; g < groups.size(); ++g) {
          // Optimal intra-cache partition for this cache's residents.
          CostMatrix cost(groups[g].size(), capacity);
          for (std::size_t k = 0; k < groups[g].size(); ++k) {
            std::uint32_t member = groups[g][k];
            s.cache_of[member] = static_cast<std::uint32_t>(g);
            double* row = cost.row(k);
            for (std::size_t c = 0; c <= capacity; ++c)
              row[c] = programs[member]->access_rate *
                       programs[member]->mrc.ratio(c);
          }
          DpResult dp = optimize_partition(cost.view(), capacity);
          OCPS_CHECK(dp.feasible, "intra-cache DP must be feasible");
          for (std::size_t k = 0; k < groups[g].size(); ++k) {
            std::uint32_t member = groups[g][k];
            double mr = programs[member]->mrc.ratio(dp.alloc[k]);
            s.per_program_mr[member] = mr;
            weighted += programs[member]->access_rate * mr;
            rate_total += programs[member]->access_rate;
          }
        }
        s.overall_mr = rate_total > 0.0 ? weighted / rate_total : 0.0;
        if (s.overall_mr < best.overall_mr) best = std::move(s);
        return true;
      });
  OCPS_CHECK(best.overall_mr != std::numeric_limits<double>::infinity(),
             "no schedule examined");
  return best;
}

Schedule best_schedule_greedy(const std::vector<const ProgramModel*>& programs,
                              std::size_t num_caches, std::size_t capacity) {
  OCPS_CHECK(!programs.empty(), "no programs to schedule");
  OCPS_CHECK(num_caches >= 1, "need at least one cache");
  const std::size_t p = programs.size();

  // Place heavy-traffic programs first: they perturb peers the most, so
  // early placement gives later, lighter programs room to avoid them.
  std::vector<std::size_t> order(p);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return programs[a]->access_rate > programs[b]->access_rate;
  });

  constexpr std::uint32_t kUnassigned = ~0u;
  std::vector<std::uint32_t> cache_of(p, kUnassigned);
  for (std::size_t step = 0; step < p; ++step) {
    std::size_t i = order[step];
    double best_mr = std::numeric_limits<double>::infinity();
    std::uint32_t best_cache = 0;
    for (std::uint32_t cache = 0; cache < num_caches; ++cache) {
      // Evaluate the partial schedule with i tentatively on `cache`;
      // unassigned programs are excluded from the trial.
      std::vector<const ProgramModel*> placed;
      std::vector<std::uint32_t> placed_cache;
      for (std::size_t j = 0; j < p; ++j) {
        std::uint32_t cj = (j == i) ? cache : cache_of[j];
        if (cj == kUnassigned) continue;
        placed.push_back(programs[j]);
        placed_cache.push_back(cj);
      }
      Schedule trial =
          evaluate_schedule(placed, placed_cache, num_caches, capacity);
      if (trial.overall_mr < best_mr) {
        best_mr = trial.overall_mr;
        best_cache = cache;
      }
    }
    cache_of[i] = best_cache;
  }
  return evaluate_schedule(programs, cache_of, num_caches, capacity);
}

}  // namespace ocps
