#include "core/baselines.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ocps {

std::vector<std::size_t> equal_partition(std::size_t programs,
                                         std::size_t capacity) {
  OCPS_CHECK(programs >= 1, "need at least one program");
  std::vector<std::size_t> alloc(programs, capacity / programs);
  for (std::size_t i = 0; i < capacity % programs; ++i) ++alloc[i];
  return alloc;
}

std::vector<std::size_t> baseline_min_allocs(
    const CoRunGroup& group, const std::vector<double>& baseline_alloc) {
  OCPS_CHECK(baseline_alloc.size() == group.size(),
             "baseline must cover every member");
  std::vector<std::size_t> min_alloc(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    double baseline_mr = group[i].mrc.ratio_at(baseline_alloc[i]);
    // Smallest integer size at least as good as the (possibly fractional)
    // baseline. LRU inclusion (monotone MRC) makes this a threshold query;
    // the tolerance absorbs interpolation noise at fractional baselines.
    min_alloc[i] = group[i].mrc.min_size_for_ratio(baseline_mr, 1e-12);
    // A fractional baseline between c and c+1 may have a (slightly) lower
    // ratio than floor(c); never demand more than the ceiling of the
    // baseline itself, or feasibility (Σ min <= C) could break.
    std::size_t ceil_base =
        static_cast<std::size_t>(std::ceil(baseline_alloc[i] - 1e-9));
    min_alloc[i] = std::min(min_alloc[i], ceil_base);
  }
  return min_alloc;
}

namespace {

DpResult solve(CostMatrixView cost, std::size_t capacity,
               const DpOptions& options, DpScratch* scratch) {
  return scratch ? optimize_partition(cost, capacity, options, *scratch)
                 : optimize_partition(cost, capacity, options);
}

DpResult optimize_with_baseline(const CoRunGroup& group, CostMatrixView cost,
                                std::size_t capacity,
                                const std::vector<double>& baseline_alloc,
                                DpScratch* scratch) {
  DpOptions options;
  options.objective = DpObjective::kSumCost;
  options.min_alloc = baseline_min_allocs(group, baseline_alloc);
  DpResult result = solve(cost, capacity, options, scratch);
  OCPS_CHECK(result.feasible,
             "baseline-constrained DP infeasible; baseline sums beyond C?");
  return result;
}

}  // namespace

DpResult optimize_equal_baseline(const CoRunGroup& group, CostMatrixView cost,
                                 std::size_t capacity, DpScratch* scratch) {
  auto equal = equal_partition(group.size(), capacity);
  std::vector<double> baseline(equal.begin(), equal.end());
  return optimize_with_baseline(group, cost, capacity, baseline, scratch);
}

DpResult optimize_natural_baseline(const CoRunGroup& group,
                                   CostMatrixView cost, std::size_t capacity,
                                   DpScratch* scratch) {
  auto natural = natural_partition(group, static_cast<double>(capacity));
  // Constrain against the *fractional* shared-cache performance (the
  // paper's "no worse than free-for-all sharing"). The bounds can round up
  // across cliffs, so in rare cases they sum past C; fall back to the
  // integerized natural partition as the baseline then — a realizable
  // partition whose bounds are feasible by construction.
  DpOptions options;
  options.objective = DpObjective::kSumCost;
  options.min_alloc = baseline_min_allocs(group, natural);
  DpResult result = solve(cost, capacity, options, scratch);
  if (result.feasible) return result;
  auto integral = integerize_partition(natural, capacity);
  std::vector<double> baseline(integral.begin(), integral.end());
  return optimize_with_baseline(group, cost, capacity, baseline, scratch);
}

}  // namespace ocps
