// Alternative replacement policies: FIFO, Random, and CLOCK (one-bit
// approximate LRU).
//
// The paper's theory assumes fully-associative LRU and argues (§VIII,
// citing Smith and Sen & Wood) that associativity and realistic
// replacement policies track the LRU model statistically. These simulators
// let the bench quantify that claim on our workloads
// (bench_ablation_assumptions): how far do FIFO / Random / CLOCK miss
// ratios drift from the fully-associative LRU the optimizer models?
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace ocps {

/// Replacement policies available beyond LruCache.
enum class Policy { kFifo, kRandom, kClock };
const char* policy_name(Policy p);

/// Fully-associative cache with a pluggable replacement policy.
class PolicyCache {
 public:
  PolicyCache(Policy policy, std::size_t capacity,
              std::uint64_t seed = 0x5eed);

  /// Touches a block; returns true on hit.
  bool access(Block b);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return where_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double miss_ratio() const;
  void reset();

 private:
  std::size_t pick_victim();

  Policy policy_;
  std::size_t capacity_;
  Rng rng_;
  // Slot-array representation: blocks live in slots [0, size); FIFO uses a
  // rotating hand, CLOCK adds one reference bit per slot.
  std::vector<Block> slots_;
  std::vector<std::uint8_t> referenced_;
  std::unordered_map<Block, std::size_t> where_;
  std::size_t hand_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Miss ratio of a whole trace under the given policy and capacity.
double policy_miss_ratio(Policy policy, const Trace& trace,
                         std::size_t capacity, std::uint64_t seed = 0x5eed);

}  // namespace ocps
