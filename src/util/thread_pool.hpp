// Persistent work-stealing thread pool behind the parallel evaluation
// sweeps.
//
// The seed implementation spawned std::thread workers on every
// parallel_for call and dispatched each index through a type-erased
// std::function. Both costs are gone here:
//
//  * workers are spawned once (ThreadPool::global(), sized from
//    OCPS_THREADS / hardware_concurrency) and parked on a condition
//    variable between loops;
//  * jobs are plain {function pointer, context} pairs pushed into
//    per-worker deques — owners pop newest-first, idle workers steal
//    oldest-first from a random victim — and parallel loops are chunked:
//    the per-index callable is a template parameter invoked directly
//    inside the chunk loop, so tight bodies inline (no per-index
//    indirect call).
//
// Loops are cooperative: the calling thread claims chunks too, so a
// nested for_each from inside a worker always makes progress even when
// every other worker is busy (helper jobs that find no chunks left exit
// immediately; queued helpers are cancelled when the loop drains early).
// Exceptions thrown by the body are captured and the first one is
// rethrown on the calling thread after the loop quiesces, matching the
// old parallel_for contract.
//
// Observability (when OCPS_OBS=1): gauge `pool.threads`, counters
// `pool.jobs_executed`, `pool.jobs_stolen`, `pool.loops`, and gauge
// `pool.queue_depth` sampled at submission time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ocps {

/// Number of worker threads used for parallel loops: hardware_concurrency,
/// overridable with OCPS_THREADS. (Total loop width; the pool itself keeps
/// one fewer persistent worker because the caller participates.)
std::size_t parallel_thread_count();

class ThreadPool {
 public:
  /// A unit of pool work: `run(ctx)` — no allocation, no type erasure
  /// beyond the function pointer.
  struct Job {
    void (*run)(void*) noexcept = nullptr;
    void* ctx = nullptr;
  };

  /// Spawns `workers` persistent threads (0 is valid: every loop then runs
  /// entirely on the calling thread).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool, created on first use with
  /// max(parallel_thread_count() - 1, 0) workers. OCPS_THREADS is read at
  /// creation time for the pool size and per loop for the loop width.
  static ThreadPool& global();

  std::size_t workers() const { return threads_.size(); }

  /// Jobs queued but not yet claimed, summed across worker deques.
  std::size_t queue_depth() const;

  /// Runs fn(i) for every i in [begin, end) with dynamically claimed
  /// contiguous chunks. Blocks until every index ran; rethrows the first
  /// exception after the loop quiesces. `width` caps the number of
  /// participating threads (0 = auto: min(parallel_thread_count(),
  /// workers()+1)).
  template <typename Fn>
  void for_each(std::size_t begin, std::size_t end, Fn&& fn,
                std::size_t width = 0) {
    for_each_with(
        begin, end, [] { return char{0}; },
        [&fn](char&, std::size_t i) { fn(i); }, width);
  }

  /// for_each with per-thread state: each participating thread calls
  /// make() once, then fn(state, i) for every index it claims. Chunks are
  /// contiguous and claimed in ascending order, so state that caches
  /// recent work (e.g. DP prefix layers) sees long runs of adjacent
  /// indices.
  template <typename Make, typename Fn>
  void for_each_with(std::size_t begin, std::size_t end, Make&& make,
                     Fn&& fn, std::size_t width = 0);

  /// Enqueues one raw job (round-robin across worker deques). Returns
  /// false when the pool has no workers — the caller must run it inline.
  bool submit(Job job);

  /// Removes not-yet-claimed jobs whose ctx equals `ctx`; returns how many
  /// were removed. Used to retire helper jobs of a loop that drained
  /// before they started.
  std::size_t cancel(void* ctx);

 private:
  struct WorkerQueue {
    mutable std::mutex mutex;
    std::deque<Job> jobs;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, Job& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::size_t> pending_{0};
};

namespace detail {

/// Shared control block of one for_each loop, stack-allocated by the
/// caller. Helper jobs reference it; the caller cancels or joins every
/// helper before returning, so the block never dangles.
struct LoopControl {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> live_helpers{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;
  std::mutex error_mutex;

  /// Claims the next chunk; returns false when the range is exhausted.
  bool claim(std::size_t& lo, std::size_t& hi) {
    std::size_t got = next.fetch_add(chunk, std::memory_order_relaxed);
    if (got >= end) return false;
    lo = got;
    hi = got + chunk < end ? got + chunk : end;
    return true;
  }

  void record_error(std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = e;
    }
    // Stop handing out further chunks; in-flight chunks finish.
    next.store(end, std::memory_order_relaxed);
  }

  void helper_done() {
    std::lock_guard<std::mutex> lock(done_mutex);
    live_helpers.fetch_sub(1, std::memory_order_acq_rel);
    done_cv.notify_all();
  }
};

/// Typed loop body shared by the caller and helper jobs. Each thread
/// entering run() builds its own per-thread state via make().
template <typename Make, typename Fn>
struct LoopBody {
  LoopControl control;
  Make* make;
  Fn* fn;

  void run() noexcept {
    std::size_t lo = 0, hi = 0;
    if (!control.claim(lo, hi)) return;  // drained before we started
    try {
      auto state = (*make)();
      do {
        for (std::size_t i = lo; i < hi; ++i) (*fn)(state, i);
      } while (control.claim(lo, hi));
    } catch (...) {
      control.record_error(std::current_exception());
    }
  }

  static void run_job(void* ctx) noexcept {
    auto* body = static_cast<LoopBody*>(ctx);
    body->run();
    body->control.helper_done();
  }
};

}  // namespace detail

template <typename Make, typename Fn>
void ThreadPool::for_each_with(std::size_t begin, std::size_t end,
                               Make&& make, Fn&& fn, std::size_t width) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  std::size_t auto_width = parallel_thread_count();
  if (width == 0 || width > workers() + 1)
    width = std::min(width == 0 ? auto_width : width, workers() + 1);
  width = std::min(width, n);

  using Body = detail::LoopBody<std::decay_t<Make>, std::decay_t<Fn>>;
  auto make_copy = std::forward<Make>(make);
  auto fn_copy = std::forward<Fn>(fn);
  Body body{};
  body.make = &make_copy;
  body.fn = &fn_copy;
  body.control.next.store(begin, std::memory_order_relaxed);
  body.control.end = end;

  if (width <= 1) {
    // Serial: one state, plain loop, exceptions propagate directly.
    auto state = make_copy();
    for (std::size_t i = begin; i < end; ++i) fn_copy(state, i);
    return;
  }

  // Dynamic scheduling: contiguous chunks claimed from a shared cursor so
  // uneven per-index cost balances out, while each thread still sees long
  // ascending runs (good for prefix-cached state).
  body.control.chunk = std::max<std::size_t>(1, n / (width * 8));

  const std::size_t helpers = width - 1;
  body.control.live_helpers.store(helpers, std::memory_order_relaxed);
  for (std::size_t h = 0; h < helpers; ++h)
    submit(Job{&Body::run_job, &body});

  body.run();  // the caller participates

  // The range is drained (or an error stopped it): retire helpers that
  // never started, then wait for the ones that did.
  std::size_t cancelled = cancel(&body);
  if (cancelled > 0) {
    std::lock_guard<std::mutex> lock(body.control.done_mutex);
    body.control.live_helpers.fetch_sub(cancelled,
                                        std::memory_order_acq_rel);
  }
  {
    std::unique_lock<std::mutex> lock(body.control.done_mutex);
    body.control.done_cv.wait(lock, [&] {
      return body.control.live_helpers.load(std::memory_order_acquire) == 0;
    });
  }
  if (body.control.error) std::rethrow_exception(body.control.error);
}

/// Runs fn(i) for every i in [begin, end) on the global pool. Template
/// over the callable so per-index dispatch inlines (the seed version took
/// const std::function& — an indirect call per index).
template <typename Fn>
inline void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
  ThreadPool::global().for_each(begin, end, std::forward<Fn>(fn));
}

/// parallel_for with per-thread state (see ThreadPool::for_each_with).
template <typename Make, typename Fn>
inline void parallel_for_with(std::size_t begin, std::size_t end,
                              Make&& make, Fn&& fn,
                              std::size_t width = 0) {
  ThreadPool::global().for_each_with(begin, end, std::forward<Make>(make),
                                     std::forward<Fn>(fn), width);
}

}  // namespace ocps
