// Process-wide observability: metrics registry + structured trace events.
//
// The online controller, the DP solver, and the simulators are the hot
// paths of a would-be cache-management daemon; when an epoch degrades or
// a solve slows down, the operator needs to see *why* without attaching a
// debugger. This subsystem provides the two standard substrates:
//
//  * a metrics registry — named counters, gauges, and histograms with
//    fixed power-of-two log-bucketing. Counters are striped across
//    cache-line-padded shards updated with relaxed atomics, so the
//    parallel group sweep (util/parallel) never serializes on a metric;
//    shards are merged only on scrape.
//  * a trace-event layer — RAII spans with nanosecond steady_clock
//    timestamps, recorded into fixed-size per-thread ring buffers
//    (newest events win), exportable as Chrome `trace_event` JSON
//    (chrome://tracing, Perfetto) or a plain-text timeline.
//
// Cost model, in increasing order of off-ness:
//  * runtime off (default): every instrumentation site is a single
//    well-predicted branch on a latched flag. Nothing is allocated,
//    recorded, or printed; results are bit-for-bit those of an
//    uninstrumented build.
//  * runtime on: set OCPS_OBS=1 (or call set_enabled(true), which the
//    CLI does for `ocps stats` / `--trace-out` / `--metrics-out`).
//  * compile-time off: build with -DOCPS_OBS_DISABLED (cmake option
//    OCPS_OBS_DISABLED) and the whole API collapses to inline no-ops —
//    not even the branch remains.
//
// Usage:
//   OCPS_OBS_COUNT("sim.lru.hits", 1);
//   OCPS_OBS_HIST("dp.solve_ns", timer_ns);
//   obs::ScopedSpan span("dp_solve", "core");       // RAII span
//   obs::instant_event("degraded", "controller", "error_code", 3);
//
// See docs/observability.md for the full tour.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ocps::obs {

/// One exported trace event (a completed span or an instant marker).
/// `name`/`cat`/`arg_name` must be string literals (or otherwise outlive
/// the recording) — the ring buffer stores pointers, never copies.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t ts_ns = 0;   ///< start, ns since the process trace epoch
  std::uint64_t dur_ns = 0;  ///< 0 for instant events
  const char* arg_name = nullptr;  ///< optional numeric payload key
  std::uint64_t arg = 0;
  std::uint64_t trace_id = 0;  ///< request correlation id (0 = none)
  std::uint32_t tid = 0;  ///< dense per-thread id (assigned on first use)
  bool instant = false;
};

/// A recent observation remembered per histogram bucket: which request
/// (trace_id) last landed there and with what value. Lets an operator
/// jump from a suspicious bucket straight to the trace of a request that
/// hit it (OpenMetrics exemplars).
struct Exemplar {
  std::uint64_t trace_id = 0;  ///< 0 = empty slot
  double value = 0.0;
};

/// Static identity of the running binary, attached to every metrics
/// exposition (Prometheus `ocps_build_info` info-gauge, JSON
/// `build_info` object) so a scrape can always be tied back to the
/// exact build and code path that produced it.
struct BuildInfo {
  std::string git_sha;      ///< short commit hash, "unknown" outside git
  std::string compiler;     ///< e.g. "gcc 13.2.0"
  std::string simd_kernel;  ///< active DP kernel ("avx2", "scalar", ...)
};

/// Snapshot of the build identity. Available in every build mode
/// (including OCPS_OBS_DISABLED) — it describes the binary, not the
/// telemetry state.
BuildInfo build_info();

/// Registers the lazy provider for BuildInfo::simd_kernel. The DP
/// dispatcher (src/core) installs its kernel-name function at static
/// init; obs itself cannot link against core. Until a provider is set,
/// build_info() reports "unknown".
void set_simd_kernel_provider(const char* (*provider)());

/// Events each per-thread ring holds before overwriting the oldest.
inline constexpr std::size_t kRingCapacity = 4096;

/// Number of counter/histogram shards; threads hash onto them.
inline constexpr std::size_t kCounterShards = 16;

/// Histogram bucket count. Bucket 0 holds v < 1 (and non-finite values);
/// bucket i in [1, kHistogramBuckets-2] holds 2^(i-1) <= v < 2^i; the
/// last bucket holds everything at or above 2^(kHistogramBuckets-2).
inline constexpr std::size_t kHistogramBuckets = 64;

}  // namespace ocps::obs

#ifndef OCPS_OBS_DISABLED

#include <array>
#include <atomic>
#include <mutex>

namespace ocps::obs {

namespace detail {
std::atomic<bool>& enabled_flag();
}  // namespace detail

/// True when observability is recording. Latched from the OCPS_OBS
/// environment variable on first query; set_enabled() overrides.
inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

/// Runtime master switch (used by the CLI and tests).
inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Monotonic nanoseconds since the process trace epoch (steady_clock).
std::uint64_t now_ns();

/// Monotonically increasing counter, sharded to stay lock-free under the
/// parallel sweeps. Obtain via obs::counter(); objects live forever at a
/// stable address, so call sites may cache references.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept;
  std::uint64_t value() const noexcept;  ///< merges all shards
  void reset() noexcept;

  Counter() = default;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kCounterShards> shards_;
};

/// Last-write-wins floating-point value.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

  Gauge() = default;

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed log-bucketed histogram (power-of-two boundaries, see
/// kHistogramBuckets). Lock-free: buckets are relaxed atomics.
class Histogram {
 public:
  void observe(double v) noexcept;
  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  std::uint64_t bucket(std::size_t i) const noexcept;
  void reset() noexcept;  ///< zeroes buckets and sum in place

  /// Bucket that value v lands in. Exact at boundaries: v == 2^k goes to
  /// bucket k+1 (the bucket whose range starts at 2^k).
  static std::size_t bucket_index(double v) noexcept;
  /// Inclusive lower bound of bucket i (0 for bucket 0).
  static double bucket_lower_bound(std::size_t i) noexcept;
  /// Exclusive upper bound of bucket i (infinity for the last bucket).
  static double bucket_upper_bound(std::size_t i) noexcept;

  Histogram() = default;

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<double> sum_{0.0};
};

/// Plain-data snapshot of one histogram (for reporting).
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  /// Non-empty buckets only: {bucket index, count}.
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
};

/// Plain-data snapshot of the whole registry, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Estimates quantile q (in [0, 1]) from a log-bucketed snapshot by
/// locating the bucket where the cumulative count crosses q*count and
/// interpolating linearly inside it. With power-of-two buckets the
/// estimate is off by at most the bucket width, i.e. within a factor of
/// two of the true value (see docs/observability.md). Returns 0 for an
/// empty histogram; the open-ended last bucket reports its lower bound.
double histogram_quantile(const HistogramSnapshot& h, double q);

/// Log-bucketed histogram over a sliding time window: per-second slot
/// sub-histograms, expired slots dropped at observe/snapshot time, so a
/// snapshot reflects only the last `window_seconds`. Guarded by a mutex —
/// meant for request-rate paths (the serve daemon), not inner loops.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(unsigned window_seconds = 30);
  ~WindowedHistogram();
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void observe(double v) noexcept;  ///< stamps with now_ns()
  /// Merged snapshot of the in-window slots, stamped with now_ns().
  HistogramSnapshot snapshot(const std::string& name = "") const;
  unsigned window_seconds() const noexcept { return window_; }

  /// Deterministic variants for tests: the caller supplies the clock.
  void observe_at(double v, std::uint64_t now_ns) noexcept;
  HistogramSnapshot snapshot_at(const std::string& name,
                                std::uint64_t now_ns) const;

 private:
  struct Slot;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  unsigned window_;
};

/// Named metric lookup; creates on first use. Thread-safe. The returned
/// references stay valid for the life of the process (reset_metrics()
/// zeroes values but never destroys metrics).
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Scrapes every metric (merging counter shards).
MetricsSnapshot metrics_snapshot();

/// Zeroes every registered metric (the registry keeps its entries).
void reset_metrics();

/// Writes the snapshot as one JSON object:
/// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
///  buckets:[{lo,hi,count},...]}}}.
void write_metrics_json(std::ostream& os);

/// Human-readable snapshot; when `prefix` is non-empty only metrics whose
/// name starts with it are printed.
void write_metrics_text(std::ostream& os, const std::string& prefix = "");

/// Remembers {trace_id, value} as the most recent exemplar for the bucket
/// of histogram `name` that `value` lands in. No-op when observability is
/// off or trace_id is 0. The store is keyed by histogram name, so the
/// same exemplars annotate both the lifetime registry histogram and any
/// windowed variant sharing the name.
void note_exemplar(const std::string& name, double value,
                   std::uint64_t trace_id);

/// All non-empty exemplar slots for histogram `name` as {bucket index,
/// exemplar}, sorted by bucket index.
std::vector<std::pair<std::size_t, Exemplar>> exemplars_for(
    const std::string& name);

/// Prometheus text exposition format 0.0.4. Metric names are sanitized
/// (every character outside [a-zA-Z0-9_:] becomes '_', so `serve.shed`
/// exports as `serve_shed`); histograms map to cumulative
/// `_bucket{le="..."}` series (non-empty boundaries plus `+Inf`) with
/// `_sum` and `_count`. Buckets that have a recorded exemplar carry an
/// OpenMetrics exemplar suffix: `... # {trace_id="N"} <value>`.
void write_metrics_prometheus(std::ostream& os);

/// RAII span: records a TraceEvent into the calling thread's ring buffer
/// on destruction. Construction is a no-op when observability is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "ocps") noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric payload exported under args{} in Chrome JSON.
  void set_arg(const char* key, std::uint64_t value) noexcept;
  /// Tags the span with a request correlation id; Chrome export links all
  /// spans sharing a non-zero trace_id into one flow across threads.
  void set_trace_id(std::uint64_t id) noexcept;
  /// Nanoseconds since construction (0 when observability is off).
  std::uint64_t elapsed_ns() const noexcept;
  /// True when the span is recording (observability was on at entry).
  bool active() const noexcept { return active_; }

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// Records a zero-duration marker event. A non-zero `trace_id` tags the
/// marker into that request's trace (like ScopedSpan::set_trace_id).
void instant_event(const char* name, const char* cat = "ocps",
                   const char* arg_name = nullptr, std::uint64_t arg = 0,
                   std::uint64_t trace_id = 0) noexcept;

/// All buffered events from every thread, sorted by start timestamp.
std::vector<TraceEvent> trace_events();

/// Only the buffered events tagged with `trace_id` (non-zero), sorted by
/// start timestamp — the retained spans of one request, served by the
/// `trace` protocol op.
std::vector<TraceEvent> trace_events_for(std::uint64_t trace_id);

/// Drops all buffered events (rings stay registered).
void clear_trace_events();

/// Chrome trace_event JSON: {"traceEvents":[...]} — load in
/// chrome://tracing or https://ui.perfetto.dev.
void write_chrome_trace(std::ostream& os);

/// Plain-text timeline, one event per line, sorted by start time.
void write_text_timeline(std::ostream& os);

}  // namespace ocps::obs

/// Adds `n` to counter `name` when observability is on. The metric is
/// resolved once per call site and cached.
#define OCPS_OBS_COUNT(name, n)                                        \
  do {                                                                 \
    if (::ocps::obs::enabled()) {                                      \
      static ::ocps::obs::Counter& ocps_obs_counter_ =                 \
          ::ocps::obs::counter(name);                                  \
      ocps_obs_counter_.add(n);                                        \
    }                                                                  \
  } while (0)

/// Records `v` into histogram `name` when observability is on.
#define OCPS_OBS_HIST(name, v)                                         \
  do {                                                                 \
    if (::ocps::obs::enabled()) {                                      \
      static ::ocps::obs::Histogram& ocps_obs_hist_ =                  \
          ::ocps::obs::histogram(name);                                \
      ocps_obs_hist_.observe(static_cast<double>(v));                  \
    }                                                                  \
  } while (0)

/// Sets gauge `name` to `v` when observability is on.
#define OCPS_OBS_GAUGE(name, v)                                        \
  do {                                                                 \
    if (::ocps::obs::enabled()) {                                      \
      static ::ocps::obs::Gauge& ocps_obs_gauge_ =                     \
          ::ocps::obs::gauge(name);                                    \
      ocps_obs_gauge_.set(static_cast<double>(v));                     \
    }                                                                  \
  } while (0)

#else  // OCPS_OBS_DISABLED: the entire API collapses to inline no-ops.

namespace ocps::obs {

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline std::uint64_t now_ns() { return 0; }

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(double) noexcept {}
  double value() const noexcept { return 0.0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  void observe(double) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  double sum() const noexcept { return 0.0; }
  std::uint64_t bucket(std::size_t) const noexcept { return 0; }
  void reset() noexcept {}
  static std::size_t bucket_index(double) noexcept { return 0; }
  static double bucket_lower_bound(std::size_t) noexcept { return 0.0; }
  static double bucket_upper_bound(std::size_t) noexcept { return 0.0; }
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

Counter& counter(const std::string&);
Gauge& gauge(const std::string&);
Histogram& histogram(const std::string&);
inline MetricsSnapshot metrics_snapshot() { return {}; }
inline void reset_metrics() {}
inline void note_exemplar(const std::string&, double, std::uint64_t) {}
inline std::vector<std::pair<std::size_t, Exemplar>> exemplars_for(
    const std::string&) {
  return {};
}
void write_metrics_json(std::ostream& os);
void write_metrics_text(std::ostream& os, const std::string& prefix = "");
void write_metrics_prometheus(std::ostream& os);

inline double histogram_quantile(const HistogramSnapshot&, double) {
  return 0.0;
}

class WindowedHistogram {
 public:
  explicit WindowedHistogram(unsigned window_seconds = 30)
      : window_(window_seconds) {}
  void observe(double) noexcept {}
  HistogramSnapshot snapshot(const std::string& = "") const { return {}; }
  unsigned window_seconds() const noexcept { return window_; }
  void observe_at(double, std::uint64_t) noexcept {}
  HistogramSnapshot snapshot_at(const std::string&, std::uint64_t) const {
    return {};
  }

 private:
  unsigned window_;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*, const char* = "ocps") noexcept {}
  void set_arg(const char*, std::uint64_t) noexcept {}
  void set_trace_id(std::uint64_t) noexcept {}
  std::uint64_t elapsed_ns() const noexcept { return 0; }
  bool active() const noexcept { return false; }
};

inline void instant_event(const char*, const char* = "ocps",
                          const char* = nullptr, std::uint64_t = 0,
                          std::uint64_t = 0) noexcept {}
inline std::vector<TraceEvent> trace_events() { return {}; }
inline std::vector<TraceEvent> trace_events_for(std::uint64_t) { return {}; }
inline void clear_trace_events() {}
void write_chrome_trace(std::ostream& os);
void write_text_timeline(std::ostream& os);

}  // namespace ocps::obs

#define OCPS_OBS_COUNT(name, n) \
  do {                          \
  } while (0)
#define OCPS_OBS_HIST(name, v) \
  do {                         \
  } while (0)
#define OCPS_OBS_GAUGE(name, v) \
  do {                          \
  } while (0)

#endif  // OCPS_OBS_DISABLED
