#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.hpp"

namespace ocps {

Trace make_cyclic(std::size_t length, std::size_t wss) {
  OCPS_CHECK(wss >= 1, "cyclic scan needs a non-empty working set");
  Trace t;
  t.accesses.resize(length);
  for (std::size_t i = 0; i < length; ++i)
    t.accesses[i] = static_cast<Block>(i % wss);
  return t;
}

Trace make_stream(std::size_t length) {
  Trace t;
  t.accesses.resize(length);
  for (std::size_t i = 0; i < length; ++i)
    t.accesses[i] = static_cast<Block>(i);
  return t;
}

Trace make_sawtooth(std::size_t length, std::size_t wss) {
  OCPS_CHECK(wss >= 1, "sawtooth scan needs a non-empty working set");
  Trace t;
  t.accesses.resize(length);
  if (wss == 1) {
    std::fill(t.accesses.begin(), t.accesses.end(), Block{0});
    return t;
  }
  // Triangle wave with period 2*(wss-1): 0,1,..,wss-1,wss-2,..,1,0,1,...
  const std::size_t period = 2 * (wss - 1);
  for (std::size_t i = 0; i < length; ++i) {
    std::size_t p = i % period;
    t.accesses[i] = static_cast<Block>(p < wss ? p : period - p);
  }
  return t;
}

Trace make_zipf(std::size_t length, std::size_t blocks, double alpha,
                std::uint64_t seed) {
  OCPS_CHECK(blocks >= 1, "zipf needs at least one block");
  OCPS_CHECK(alpha > 0.0, "zipf exponent must be positive");
  // Precompute the CDF once; sampling is a binary search per access.
  std::vector<double> cdf(blocks);
  double sum = 0.0;
  for (std::size_t k = 0; k < blocks; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf[k] = sum;
  }
  Rng rng(seed);
  Trace t;
  t.accesses.resize(length);
  for (std::size_t i = 0; i < length; ++i) {
    double u = rng.uniform() * sum;
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    t.accesses[i] =
        static_cast<Block>(std::min<std::size_t>(
            static_cast<std::size_t>(it - cdf.begin()), blocks - 1));
  }
  return t;
}

Trace make_uniform(std::size_t length, std::size_t blocks,
                   std::uint64_t seed) {
  OCPS_CHECK(blocks >= 1, "uniform needs at least one block");
  Rng rng(seed);
  Trace t;
  t.accesses.resize(length);
  for (std::size_t i = 0; i < length; ++i)
    t.accesses[i] = static_cast<Block>(rng.below(blocks));
  return t;
}

Trace make_hot_cold(std::size_t length, std::size_t hot_blocks,
                    std::size_t cold_blocks, double hot_fraction,
                    std::uint64_t seed) {
  OCPS_CHECK(hot_blocks >= 1 && cold_blocks >= 1,
             "both regions need at least one block");
  OCPS_CHECK(hot_fraction >= 0.0 && hot_fraction <= 1.0,
             "hot_fraction must be a probability");
  Rng rng(seed);
  Trace t;
  t.accesses.resize(length);
  for (std::size_t i = 0; i < length; ++i) {
    if (rng.chance(hot_fraction)) {
      t.accesses[i] = static_cast<Block>(rng.below(hot_blocks));
    } else {
      t.accesses[i] =
          static_cast<Block>(hot_blocks + rng.below(cold_blocks));
    }
  }
  return t;
}

Trace make_scan_mix(std::size_t length, std::size_t hot_blocks, double alpha,
                    const std::vector<ScanComponent>& scans,
                    std::uint64_t seed) {
  OCPS_CHECK(hot_blocks >= 1, "scan mix needs a hot set");
  double scan_total = 0.0;
  for (const auto& s : scans) {
    OCPS_CHECK(s.wss >= 1, "scan region must be non-empty");
    OCPS_CHECK(s.fraction >= 0.0, "negative scan fraction");
    scan_total += s.fraction;
  }
  OCPS_CHECK(scan_total <= 1.0, "scan fractions exceed 1");

  // Hot-set CDF (uniform when alpha == 0).
  std::vector<double> hot_cdf(hot_blocks);
  double hot_sum = 0.0;
  for (std::size_t k = 0; k < hot_blocks; ++k) {
    hot_sum += (alpha > 0.0)
                   ? 1.0 / std::pow(static_cast<double>(k + 1), alpha)
                   : 1.0;
    hot_cdf[k] = hot_sum;
  }

  // Disjoint block regions: hot set first, then each scan.
  std::vector<Block> scan_base(scans.size());
  Block next_base = static_cast<Block>(hot_blocks);
  for (std::size_t s = 0; s < scans.size(); ++s) {
    scan_base[s] = next_base;
    next_base += static_cast<Block>(scans[s].wss);
  }

  Rng rng(seed);
  std::vector<std::size_t> cursor(scans.size(), 0);
  Trace t;
  t.accesses.resize(length);
  for (std::size_t i = 0; i < length; ++i) {
    double u = rng.uniform();
    double acc = 0.0;
    std::size_t chosen = scans.size();  // default: hot set
    for (std::size_t s = 0; s < scans.size(); ++s) {
      acc += scans[s].fraction;
      if (u < acc) {
        chosen = s;
        break;
      }
    }
    if (chosen < scans.size()) {
      t.accesses[i] =
          scan_base[chosen] + static_cast<Block>(cursor[chosen]);
      cursor[chosen] = (cursor[chosen] + 1) % scans[chosen].wss;
    } else {
      double v = rng.uniform() * hot_sum;
      auto it = std::lower_bound(hot_cdf.begin(), hot_cdf.end(), v);
      t.accesses[i] = static_cast<Block>(std::min<std::size_t>(
          static_cast<std::size_t>(it - hot_cdf.begin()), hot_blocks - 1));
    }
  }
  return t;
}

Trace make_phased(const std::vector<Phase>& phases, std::size_t repeats) {
  OCPS_CHECK(!phases.empty(), "phased workload needs at least one phase");
  Trace t;
  std::size_t per_rep = 0;
  for (const auto& p : phases) per_rep += p.length;
  t.accesses.reserve(per_rep * repeats);
  for (std::size_t r = 0; r < repeats; ++r) {
    for (const auto& p : phases) {
      OCPS_CHECK(p.wss >= 1, "phase working set must be non-empty");
      Trace sub = p.sawtooth ? make_sawtooth(p.length, p.wss)
                             : make_cyclic(p.length, p.wss);
      for (Block b : sub.accesses)
        t.accesses.push_back(b + p.block_offset);
    }
  }
  return t;
}

Trace make_sd_driven(std::size_t length,
                     const std::function<std::size_t(Rng&)>& depth_sampler,
                     std::uint64_t seed) {
  Rng rng(seed);
  Trace t;
  t.accesses.resize(length);
  // LRU stack as a bounded circular buffer: front = most recently used.
  // Push-front is O(1); move-to-front from depth d is O(d). Entries deeper
  // than the capacity are silently dropped — depths that large read as
  // "new block" anyway, which is the semantics we want for streams.
  constexpr std::size_t kCap = 1 << 16;  // far above any depth we sample
  constexpr std::size_t kMask = kCap - 1;
  std::vector<Block> buf(kCap, 0);
  std::size_t head = 0;   // physical index of the MRU element
  std::size_t depth_count = 0;  // logical stack size, <= kCap
  auto at = [&](std::size_t i) -> Block& { return buf[(head + i) & kMask]; };

  Block next_block = 0;
  for (std::size_t i = 0; i < length; ++i) {
    std::size_t d = depth_sampler(rng);
    OCPS_CHECK(d >= 1, "stack depth must be >= 1");
    Block b;
    if (d > depth_count) {
      b = next_block++;
      head = (head + kCap - 1) & kMask;
      buf[head] = b;
      depth_count = std::min(depth_count + 1, kCap);
    } else {
      b = at(d - 1);
      for (std::size_t j = d - 1; j >= 1; --j) at(j) = at(j - 1);
      at(0) = b;
    }
    t.accesses[i] = b;
  }
  return t;
}

Trace make_sd_mixture(std::size_t length,
                      const std::vector<std::size_t>& depths,
                      const std::vector<double>& weights,
                      std::uint64_t seed) {
  OCPS_CHECK(depths.size() == weights.size() && !depths.empty(),
             "mixture needs parallel non-empty depth/weight vectors");
  std::vector<double> cdf(weights.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    OCPS_CHECK(weights[i] >= 0.0, "negative mixture weight");
    sum += weights[i];
    cdf[i] = sum;
  }
  OCPS_CHECK(sum > 0.0, "mixture weights must not all be zero");
  auto sampler = [depths, cdf, sum](Rng& rng) -> std::size_t {
    double u = rng.uniform() * sum;
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    std::size_t idx = std::min<std::size_t>(
        static_cast<std::size_t>(it - cdf.begin()), cdf.size() - 1);
    std::size_t d = depths[idx];
    // SIZE_MAX encodes "new block": any depth beyond the stack works.
    return d == SIZE_MAX ? SIZE_MAX : d;
  };
  return make_sd_driven(length, sampler, seed);
}

}  // namespace ocps
