file(REMOVE_RECURSE
  "libocps_runtime.a"
)
