// Miss ratio -> execution time (§VIII "Locality-performance Correlation").
//
// Wang et al. measured a 0.938 linear correlation between the HOTL miss
// ratio and co-run execution time, which is what licenses optimizing the
// miss ratio as a proxy for performance. This module makes the proxy
// explicit with a simple latency model
//
//   cycles per access = hit_cost + mr * miss_penalty
//   time  = accesses / rate * cycles-per-access           (relative units)
//
// and derives the standard multiprogram metrics from it: per-program
// slowdown vs solo run with the full cache, average normalized turnaround
// time (ANTT, lower better) and system throughput (STP, higher better).
// These become alternative objectives for the DP (weighted-slowdown cost
// curves), demonstrating the paper's claim that the optimizer "can use
// any cost function".
#pragma once

#include <vector>

#include "core/composition.hpp"
#include "core/dp_partition.hpp"

namespace ocps {

/// Latency model parameters (relative units; defaults approximate an LLC:
/// a hit costs 1, a miss 20x more).
struct LatencyModel {
  double hit_cost = 1.0;
  double miss_penalty = 20.0;

  /// Cycles per access at a given miss ratio.
  double cpa(double miss_ratio) const {
    return hit_cost + miss_ratio * miss_penalty;
  }
};

/// Per-program and system metrics for one allocation outcome.
struct PerfMetrics {
  std::vector<double> slowdown;  ///< vs solo run with the whole cache
  double antt = 0.0;             ///< mean slowdown (lower is better)
  double stp = 0.0;              ///< Σ 1/slowdown (higher is better)
  double weighted_speedup = 0.0; ///< same as stp / P
};

/// Computes metrics from per-program miss ratios. The solo baseline gives
/// each program the entire cache to itself.
PerfMetrics performance_metrics(const CoRunGroup& group,
                                const std::vector<double>& per_program_mr,
                                std::size_t capacity,
                                const LatencyModel& model = {});

/// Cost curves whose sum is proportional to ANTT: cost_i(c) =
/// cpa(mr_i(c)) / cpa(mr_i(C)). Feed to optimize_partition to minimize
/// average slowdown instead of the group miss ratio.
std::vector<std::vector<double>> slowdown_cost_curves(
    const CoRunGroup& group, std::size_t capacity,
    const LatencyModel& model = {});

}  // namespace ocps
