# Empty dependencies file for bench_online_controller.
# This may be replaced when dependencies are built.
