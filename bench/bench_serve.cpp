// Serving-path bench: throughput and latency of the `ocps serve` daemon
// under closed-loop load at 1, 4, and 16 concurrent clients.
//
// An in-process Server is started on a private Unix socket with a
// synthetic 8-program profile set; each client thread owns one blocking
// Client connection and issues partition requests back to back (a closed
// loop — the next request leaves only after the previous answer lands),
// so the measured latency includes the daemon's coalescing linger. More
// clients means bigger coalesced batches, which is exactly the effect the
// batch engine exists to exploit: per-request latency should grow far
// more slowly than client count.
//
// Sanity anchors, checked at exit (non-zero exit on violation):
//  * every request is answered ok — no sheds, errors, or timeouts at any
//    concurrency level (queue_capacity comfortably exceeds 16);
//  * the daemon's answered counter matches the number of client calls.
//
// Environment knobs:
//   OCPS_SERVE_REQUESTS  total requests per concurrency level (default 600)
//   OCPS_THREADS         sweep/solver width inside the daemon
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common.hpp"
#include "core/program_model.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "trace/generators.hpp"
#include "util/table.hpp"

using namespace ocps;
using namespace ocps::bench;

namespace {

constexpr std::size_t kCapacity = 256;

std::vector<ProgramModel> make_models() {
  std::vector<ProgramModel> models;
  const std::size_t n = 60000;
  for (std::size_t i = 0; i < 8; ++i) {
    Trace t;
    switch (i % 4) {
      case 0: t = make_cyclic(n, 40 + 11 * i); break;
      case 1: t = make_zipf(n, 120 + 17 * i, 0.85, 300 + i); break;
      case 2: t = make_hot_cold(n, 6 + i, 90 + 13 * i, 0.8, 400 + i); break;
      default: t = make_sawtooth(n, 24 + 7 * i); break;
    }
    models.push_back(make_program_model("prog" + std::to_string(i),
                                        0.5 + 0.2 * i, compute_footprint(t),
                                        kCapacity));
  }
  return models;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

/// One client's closed loop: `count` partition requests over pairs/triples
/// drawn from a per-client LCG so every level exercises varied subsets
/// (and therefore varied DP prefixes) without shared client state.
struct WorkerResult {
  std::vector<double> latencies_ms;
  std::size_t failures = 0;
};

void run_worker(const std::string& socket_path, std::size_t worker,
                std::size_t count, WorkerResult* out) {
  Result<serve::Client> client = serve::Client::connect(socket_path);
  if (!client.ok()) {
    out->failures = count;
    return;
  }
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull * (worker + 1);
  auto next = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::size_t>(lcg >> 33);
  };
  out->latencies_ms.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t members = 2 + next() % 3;  // 2..4 programs
    std::size_t first = next() % 8;
    std::string line = R"({"op":"partition","programs":[)";
    for (std::size_t m = 0; m < members; ++m) {
      if (m > 0) line += ',';
      line += "\"prog" + std::to_string((first + m * 3) % 8) + "\"";
    }
    line += R"(],"capacity":)" + std::to_string(kCapacity) + "}";
    auto start = std::chrono::steady_clock::now();
    Result<serve::Response> r = client.value().call(line);
    auto elapsed = std::chrono::steady_clock::now() - start;
    if (!r.ok() || !r.value().ok) {
      ++out->failures;
      continue;
    }
    out->latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(elapsed).count());
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double idx = p * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

int main() {
  const std::size_t total_requests = env_size("OCPS_SERVE_REQUESTS", 600);
  std::vector<ProgramModel> models = make_models();

  TextTable table({"clients", "requests", "throughput req/s", "p50 ms",
                   "p95 ms", "p99 ms", "batches", "mean batch"});
  bool ok = true;

  for (std::size_t clients : {1u, 4u, 16u}) {
    serve::ServeConfig config;
    config.socket_path = "/tmp/ocps_bench_serve_" +
                         std::to_string(::getpid()) + "_" +
                         std::to_string(clients) + ".sock";
    config.capacity = kCapacity;
    config.queue_capacity = 1024;
    serve::Server server(config, models);
    Result<bool> started = server.start();
    if (!started.ok()) {
      std::cerr << "FAIL: server did not start: " << started.error().message
                << "\n";
      return 1;
    }

    const std::size_t per_client = std::max<std::size_t>(
        1, total_requests / clients);
    std::vector<WorkerResult> results(clients);
    std::vector<std::thread> workers;
    PhaseTimer timer("serve_closed_loop");
    for (std::size_t w = 0; w < clients; ++w)
      workers.emplace_back(run_worker, config.socket_path, w, per_client,
                           &results[w]);
    for (std::thread& t : workers) t.join();
    double seconds = timer.stop();

    std::vector<double> lat;
    std::size_t failures = 0;
    for (const WorkerResult& r : results) {
      lat.insert(lat.end(), r.latencies_ms.begin(), r.latencies_ms.end());
      failures += r.failures;
    }
    std::sort(lat.begin(), lat.end());

    server.request_stop();
    server.stop();
    serve::Server::Counters counters = server.counters();

    if (failures != 0 || counters.shed != 0 ||
        counters.answered != lat.size()) {
      std::cerr << "FAIL: clients=" << clients << " failures=" << failures
                << " shed=" << counters.shed
                << " answered=" << counters.answered
                << " expected=" << lat.size() << "\n";
      ok = false;
    }

    double mean_batch =
        counters.batches == 0
            ? 0.0
            : static_cast<double>(counters.answered) /
                  static_cast<double>(counters.batches);
    table.add_row({std::to_string(clients), std::to_string(lat.size()),
                   TextTable::num(static_cast<double>(lat.size()) / seconds, 1),
                   TextTable::num(percentile(lat, 0.50), 3),
                   TextTable::num(percentile(lat, 0.95), 3),
                   TextTable::num(percentile(lat, 0.99), 3),
                   std::to_string(counters.batches),
                   TextTable::num(mean_batch, 2)});
  }

  emit_table(table, "serve_throughput");
  if (!ok) {
    std::cerr << "FAIL: serving bench sanity anchors violated\n";
    return 1;
  }
  std::cout << "OK: all requests answered, zero shed, counters consistent\n";
  return 0;
}
