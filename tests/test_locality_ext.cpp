// Tests for the extended locality substrate: concurrent reuse distances
// (CRD) and bursty footprint sampling.
#include <gtest/gtest.h>

#include "cachesim/corun.hpp"
#include "core/composition.hpp"
#include "locality/crd.hpp"
#include "locality/hotl.hpp"
#include "locality/reuse_distance.hpp"
#include "locality/sampling.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

InterleavedTrace mix_two(std::size_t len = 30000) {
  Trace a = make_zipf(10000, 120, 0.9, 61);
  Trace b = make_cyclic(10000, 70);
  return interleave_proportional({a, b}, {2.0, 1.0}, len);
}

TEST(Crd, AccessCountsMatchInterleave) {
  InterleavedTrace mix = mix_two();
  CrdProfile crd = concurrent_reuse_distances(mix);
  ASSERT_EQ(crd.num_programs(), 2u);
  EXPECT_EQ(crd.accesses[0] + crd.accesses[1], mix.length());
  EXPECT_NEAR(static_cast<double>(crd.accesses[0]) /
                  static_cast<double>(mix.length()),
              2.0 / 3.0, 0.01);
}

TEST(Crd, MissesMatchSharedSimulatorAtEverySize) {
  // CRD is exact: per-program misses at any shared cache size must equal
  // the owner-tagged shared LRU simulator.
  InterleavedTrace mix = mix_two();
  CrdProfile crd = concurrent_reuse_distances(mix);
  for (std::size_t c : {8u, 32u, 64u, 128u, 200u}) {
    CoRunResult sim = simulate_shared(mix, c);
    for (std::size_t p = 0; p < 2; ++p)
      EXPECT_EQ(crd.misses_at(p, c), sim.misses[p])
          << "c=" << c << " p=" << p;
  }
}

TEST(Crd, SingleProgramReducesToSoloStackDistances) {
  Trace a = make_zipf(20000, 150, 1.0, 62);
  InterleavedTrace mix = interleave_proportional({a}, {1.0}, 20000);
  CrdProfile crd = concurrent_reuse_distances(mix);
  StackDistanceHistogram solo = stack_distances(a);
  for (std::size_t c : {5u, 20u, 80u, 149u})
    EXPECT_EQ(crd.misses_at(0, c), solo.misses_at(c)) << "c=" << c;
}

TEST(Crd, GroupMrcIsNonIncreasingAndBounded) {
  CrdProfile crd = concurrent_reuse_distances(mix_two());
  MissRatioCurve group = crd.group_mrc(256);
  EXPECT_TRUE(group.is_non_increasing(1e-12));
  EXPECT_DOUBLE_EQ(group.ratio(0), 1.0);
  MissRatioCurve p0 = crd.program_mrc(0, 256);
  EXPECT_TRUE(p0.is_non_increasing(1e-12));
}

TEST(Crd, AgreesWithCompositionOnStationaryWorkloads) {
  // The composition theory should approximate the exact CRD group curve
  // for random-access programs (this is the NPA again, CRD-flavoured).
  Trace a = make_zipf(60000, 200, 0.9, 63);
  Trace b = make_uniform(60000, 150, 64);
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 240000);
  CrdProfile crd = concurrent_reuse_distances(mix);

  ProgramModel ma =
      make_program_model("a", 1.0, compute_footprint(a), 300);
  ProgramModel mb =
      make_program_model("b", 1.0, compute_footprint(b), 300);
  CoRunGroup group({&ma, &mb});
  for (double c : {120.0, 200.0, 280.0}) {
    double predicted = group_miss_ratio(
        group, predict_shared_miss_ratios(group, c));
    double exact = crd.group_mrc(300).ratio_at(c);
    EXPECT_NEAR(predicted, exact, 0.03) << "C=" << c;
  }
}

TEST(Sampling, FullCoverageEqualsFullProfileOnBurstRange) {
  // burst = whole trace, no gaps: the sampled curve IS the full curve.
  Trace t = make_zipf(20000, 100, 1.0, 65);
  SamplingConfig config;
  config.burst_length = t.length();
  config.gap_length = 0;
  SampledFootprint s = sampled_footprint(t, config);
  EXPECT_EQ(s.bursts, 1u);
  EXPECT_DOUBLE_EQ(s.sampling_fraction, 1.0);
  FootprintCurve full = compute_footprint(t);
  EXPECT_LT(footprint_max_error(full, s.footprint), 1e-9);
}

TEST(Sampling, StationaryWorkloadSmallError) {
  Trace t = make_zipf(200000, 150, 0.9, 66);
  SamplingConfig config;
  config.burst_length = 10000;
  config.gap_length = 30000;
  SampledFootprint s = sampled_footprint(t, config);
  EXPECT_LT(s.sampling_fraction, 0.3);
  EXPECT_GT(s.bursts, 3u);
  FootprintCurve full = compute_footprint(t);
  // Error in blocks, relative to 150 distinct: a few blocks at most.
  EXPECT_LT(footprint_max_error(full, s.footprint), 6.0);
}

TEST(Sampling, SampledMrcTracksFullMrc) {
  Trace t = make_uniform(200000, 120, 67);
  SamplingConfig config;
  config.burst_length = 20000;
  config.gap_length = 20000;
  SampledFootprint s = sampled_footprint(t, config);
  MissRatioCurve full_mrc = hotl_mrc(compute_footprint(t), 150);
  MissRatioCurve sampled_mrc = hotl_mrc(s.footprint, 150);
  double worst = 0.0;
  for (std::size_t c = 4; c <= 150; ++c)
    worst = std::max(worst,
                     std::abs(full_mrc.ratio(c) - sampled_mrc.ratio(c)));
  EXPECT_LT(worst, 0.05);
}

TEST(Sampling, JitterChangesScheduleDeterministically) {
  Trace t = make_zipf(100000, 100, 1.0, 68);
  SamplingConfig a;
  a.burst_length = 5000;
  a.gap_length = 15000;
  a.jitter_seed = 7;
  SampledFootprint s1 = sampled_footprint(t, a);
  SampledFootprint s2 = sampled_footprint(t, a);
  EXPECT_EQ(s1.profiled_accesses, s2.profiled_accesses);
  EXPECT_EQ(s1.bursts, s2.bursts);
}

TEST(Sampling, MonotoneOutput) {
  Trace t = make_hot_cold(100000, 20, 200, 0.7, 69);
  SamplingConfig config;
  config.burst_length = 8000;
  config.gap_length = 12000;
  SampledFootprint s = sampled_footprint(t, config);
  for (std::size_t w = 1; w < s.footprint.fp.size(); ++w)
    ASSERT_GE(s.footprint.fp[w] + 1e-12, s.footprint.fp[w - 1]);
}

TEST(Sampling, RejectsDegenerateConfig) {
  Trace t = make_cyclic(100, 5);
  SamplingConfig bad;
  bad.burst_length = 1;
  EXPECT_THROW(sampled_footprint(t, bad), CheckError);
  EXPECT_THROW(sampled_footprint(Trace{}, SamplingConfig{}), CheckError);
}

}  // namespace
}  // namespace ocps
