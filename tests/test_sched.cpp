// Tests for co-run scheduling across multiple caches (§II scenario 1).
#include <gtest/gtest.h>

#include "core/program_model.hpp"
#include "locality/footprint.hpp"
#include "sched/symbiosis.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

ProgramModel model_of(const std::string& name, const Trace& trace,
                      double rate, std::size_t capacity) {
  return make_program_model(name, rate, compute_footprint(trace), capacity);
}

struct World {
  std::vector<ProgramModel> models;
  std::size_t capacity = 80;

  World() {
    // Two cache-hungry thrashers and two small programs: the optimal
    // 2-cache schedule separates the thrashers.
    models.push_back(model_of("thrash1", make_cyclic(20000, 70), 1.0, 160));
    models.push_back(model_of("thrash2", make_cyclic(20000, 70), 1.0, 160));
    models.push_back(model_of("small1", make_sawtooth(20000, 10), 1.0, 160));
    models.push_back(model_of("small2", make_sawtooth(20000, 12), 1.0, 160));
  }

  std::vector<const ProgramModel*> ptrs() const {
    std::vector<const ProgramModel*> p;
    for (const auto& m : models) p.push_back(&m);
    return p;
  }
};

TEST(Sched, EvaluateScheduleCoversPrograms) {
  World w;
  Schedule s = evaluate_schedule(w.ptrs(), {0, 1, 0, 1}, 2, w.capacity);
  EXPECT_EQ(s.per_program_mr.size(), 4u);
  EXPECT_GE(s.overall_mr, 0.0);
  EXPECT_LE(s.overall_mr, 1.0);
}

TEST(Sched, RejectsBadAssignment) {
  World w;
  EXPECT_THROW(evaluate_schedule(w.ptrs(), {0, 1, 0}, 2, w.capacity),
               CheckError);
  EXPECT_THROW(evaluate_schedule(w.ptrs(), {0, 5, 0, 1}, 2, w.capacity),
               CheckError);
}

TEST(Sched, ExhaustiveSeparatesThrashers) {
  World w;
  Schedule best = best_schedule_exhaustive(w.ptrs(), 2, w.capacity);
  // Each thrasher needs ~70 of the 80 units: pairing them together
  // thrashes one cache. The optimum puts them on different caches.
  EXPECT_NE(best.cache_of[0], best.cache_of[1]);
}

TEST(Sched, ExhaustiveBeatsOrMatchesAnyFixedAssignment) {
  World w;
  Schedule best = best_schedule_exhaustive(w.ptrs(), 2, w.capacity);
  for (std::uint32_t a = 0; a < 2; ++a)
    for (std::uint32_t b = 0; b < 2; ++b)
      for (std::uint32_t c = 0; c < 2; ++c) {
        Schedule s =
            evaluate_schedule(w.ptrs(), {0, a, b, c}, 2, w.capacity);
        EXPECT_LE(best.overall_mr, s.overall_mr + 1e-9);
      }
}

TEST(Sched, GreedyIsValidAndReasonable) {
  World w;
  Schedule greedy = best_schedule_greedy(w.ptrs(), 2, w.capacity);
  Schedule best = best_schedule_exhaustive(w.ptrs(), 2, w.capacity);
  EXPECT_EQ(greedy.cache_of.size(), 4u);
  for (auto c : greedy.cache_of) EXPECT_LT(c, 2u);
  EXPECT_LE(best.overall_mr, greedy.overall_mr + 1e-9);
  // On this easy instance the greedy should find the separation too.
  EXPECT_NE(greedy.cache_of[0], greedy.cache_of[1]);
}

TEST(Sched, SingleCacheDegeneratesToSharing) {
  World w;
  Schedule s = best_schedule_exhaustive(w.ptrs(), 1, w.capacity);
  for (auto c : s.cache_of) EXPECT_EQ(c, 0u);
}

TEST(Sched, MoreCachesNeverHurt) {
  World w;
  Schedule one = best_schedule_exhaustive(w.ptrs(), 1, w.capacity);
  Schedule two = best_schedule_exhaustive(w.ptrs(), 2, w.capacity);
  Schedule four = best_schedule_exhaustive(w.ptrs(), 4, w.capacity);
  EXPECT_LE(two.overall_mr, one.overall_mr + 1e-9);
  EXPECT_LE(four.overall_mr, two.overall_mr + 1e-9);
}

}  // namespace
}  // namespace ocps
