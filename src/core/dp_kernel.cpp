#include "core/dp_kernel.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "obs/obs.hpp"

namespace ocps::dp_detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

template <DpObjective Obj>
std::uint64_t forward_layer_impl(const double* cost_row, std::size_t lo,
                                 std::size_t hi, std::size_t k_begin,
                                 std::size_t k_end, bool prev_is_base,
                                 const double* prev, double* next,
                                 std::uint32_t* choice) {
  std::uint64_t cells = 0;
  if (prev_is_base) {
    // Base layer: prev[j] is finite only at j = 0, so the only candidate
    // for state k is c = k. Same arithmetic as the general loop (the
    // combine with prev[0] = 0.0 is kept), O(C) instead of O(C²).
    for (std::size_t k = std::max(lo, k_begin); k <= k_end && k <= hi;
         ++k) {
      next[k] = Obj == DpObjective::kSumCost ? 0.0 + cost_row[k]
                                             : std::max(0.0, cost_row[k]);
      choice[k] = static_cast<std::uint32_t>(k);
      ++cells;
    }
    return cells;
  }
  for (std::size_t k = k_begin; k <= k_end; ++k) {
    const std::size_t c_max = std::min(hi, k);
    double best_val = kInf;
    std::uint32_t best_c = 0;
    if (c_max >= lo) {
      cells += c_max - lo + 1;
      const double* prev_at_k = prev + k;
      for (std::size_t c = lo; c <= c_max; ++c) {
        double prev_v = prev_at_k[-static_cast<std::ptrdiff_t>(c)];
        if (prev_v == kInf) continue;
        double val = Obj == DpObjective::kSumCost
                         ? prev_v + cost_row[c]
                         : std::max(prev_v, cost_row[c]);
        if (val < best_val) {
          best_val = val;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
    }
    next[k] = best_val;
    choice[k] = best_c;
  }
  return cells;
}

// Dispatch cache: -1 = unresolved, otherwise a KernelKind. An explicit
// test override wins; otherwise the first dispatch resolves OCPS_SIMD +
// CPUID and the result sticks for the process (relaxed ordering is fine:
// every thread resolving concurrently computes the same value).
std::atomic<int> g_kernel{-1};

KernelKind resolve_kernel() {
  const char* env = std::getenv("OCPS_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0)
    return KernelKind::kScalar;
  if (env != nullptr && std::strcmp(env, "avx2") == 0) {
    if (cpu_supports_avx2()) return KernelKind::kAvx2;
    std::fprintf(stderr,
                 "ocps: OCPS_SIMD=avx2 but this CPU lacks AVX2; "
                 "falling back to the scalar DP kernel\n");
    return KernelKind::kScalar;
  }
  if (env != nullptr && std::strcmp(env, "auto") != 0 && env[0] != '\0')
    std::fprintf(stderr,
                 "ocps: unknown OCPS_SIMD value \"%s\" "
                 "(expected scalar|avx2|auto); using auto\n",
                 env);
  return cpu_supports_avx2() ? KernelKind::kAvx2 : KernelKind::kScalar;
}

}  // namespace

const char* kernel_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar: return "scalar";
    case KernelKind::kAvx2: return "avx2";
  }
  return "?";
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

KernelKind active_kernel() {
  int cached = g_kernel.load(std::memory_order_relaxed);
  if (cached < 0) {
    cached = static_cast<int>(resolve_kernel());
    g_kernel.store(cached, std::memory_order_relaxed);
  }
  return static_cast<KernelKind>(cached);
}

void set_kernel_for_testing(KernelKind kind) {
  if (kind == KernelKind::kAvx2 && !cpu_supports_avx2())
    kind = KernelKind::kScalar;
  g_kernel.store(static_cast<int>(kind), std::memory_order_relaxed);
}

void reset_kernel_for_testing() {
  g_kernel.store(-1, std::memory_order_relaxed);
}

std::uint64_t forward_layer_scalar(DpObjective objective,
                                   const double* cost_row, std::size_t lo,
                                   std::size_t hi, std::size_t k_begin,
                                   std::size_t k_end, bool prev_is_base,
                                   const double* prev, double* next,
                                   std::uint32_t* choice) {
  return objective == DpObjective::kSumCost
             ? forward_layer_impl<DpObjective::kSumCost>(
                   cost_row, lo, hi, k_begin, k_end, prev_is_base, prev,
                   next, choice)
             : forward_layer_impl<DpObjective::kMaxCost>(
                   cost_row, lo, hi, k_begin, k_end, prev_is_base, prev,
                   next, choice);
}

namespace {

// Feeds the dispatched kernel's name into obs::build_info(). Lazy: the
// provider runs at scrape time, after dispatch has resolved, so the
// reported kernel is the one solves actually use.
const bool g_build_info_registrar = [] {
  obs::set_simd_kernel_provider(
      +[]() -> const char* { return kernel_name(active_kernel()); });
  return true;
}();

}  // namespace

std::uint64_t forward_layer(DpObjective objective, const double* cost_row,
                            std::size_t lo, std::size_t hi,
                            std::size_t k_begin, std::size_t k_end,
                            bool prev_is_base, const double* prev,
                            double* next, std::uint32_t* choice) {
  // The base layer is O(C) with no inner reduction — the scalar closed
  // form is the kernel, so both dispatch targets share it.
  if (prev_is_base || active_kernel() == KernelKind::kScalar)
    return forward_layer_scalar(objective, cost_row, lo, hi, k_begin,
                                k_end, prev_is_base, prev, next, choice);
  return forward_layer_avx2(objective, cost_row, lo, hi, k_begin, k_end,
                            prev_is_base, prev, next, choice);
}

}  // namespace ocps::dp_detail
