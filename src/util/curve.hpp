// Piecewise-linear curves over a real domain.
//
// The footprint function fp(w), its inverse the fill time ft(c), and the
// miss-ratio curve mr(c) are all represented as sampled curves that are
// evaluated by linear interpolation. Knots must be strictly increasing in x.
// For monotone curves the inverse can be evaluated as well; this is how the
// HOTL conversion fp → mr locates the window length w with fp(w) = c.
#pragma once

#include <cstddef>
#include <vector>

namespace ocps {

/// Immutable piecewise-linear curve defined by (x, y) knots with strictly
/// increasing x. Evaluation clamps outside the knot range (constant
/// extrapolation), which matches the saturating behaviour of footprints
/// (fp(w) = m for w past the trace) and miss ratios (mr = cold ratio past
/// the total data size).
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// Builds from parallel knot vectors. Requires xs strictly increasing and
  /// xs.size() == ys.size() >= 1.
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  /// Builds from y sampled at x = 0, 1, 2, ..., ys.size()-1.
  static PiecewiseLinear from_dense(std::vector<double> ys);

  /// Linear interpolation at x, clamped to the knot range.
  double operator()(double x) const;

  /// For a non-decreasing curve: the smallest x with value(x) >= y
  /// (linearly interpolated). Clamps to the knot range. Requires the curve
  /// to be non-decreasing (checked on first use in debug paths).
  double inverse(double y) const;

  bool empty() const { return xs_.empty(); }
  std::size_t size() const { return xs_.size(); }
  double x_min() const;
  double x_max() const;
  double y_front() const;
  double y_back() const;
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

  /// True iff ys is non-decreasing (within tolerance eps).
  bool is_non_decreasing(double eps = 0.0) const;

  /// Downsamples to at most max_knots knots, always keeping the endpoints.
  /// Used to mimic the paper's compact per-program footprint files.
  PiecewiseLinear downsample(std::size_t max_knots) const;

  /// Douglas-Peucker simplification: drops knots whose removal changes the
  /// interpolated value by at most epsilon anywhere. Preserves cliffs that
  /// uniform downsampling would smear, so footprint files keep the
  /// non-convex structure their MRCs depend on.
  PiecewiseLinear simplify(double epsilon) const;

  /// simplify() with epsilon doubled until the result fits max_knots.
  PiecewiseLinear simplify_to(double epsilon, std::size_t max_knots) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace ocps
