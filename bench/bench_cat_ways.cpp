// Deployment bench: way-partitioning (Intel CAT). The paper's optimizer
// produces unit-grain allocations; hardware enforces partitions as way
// quotas of a set-associative cache (e.g. 16 ways). This bench takes the
// DP-optimal allocation for sampled co-run groups, rounds it to way
// quotas, and simulates: how much of the idealized benefit survives the
// 16-way granularity and set-associativity?
#include <iostream>

#include "cachesim/corun.hpp"
#include "cachesim/way_partitioned.hpp"
#include "combinatorics/enumerate.hpp"
#include "common.hpp"
#include "core/baselines.hpp"
#include "core/dp_partition.hpp"
#include "trace/interleave.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Suite suite = load_suite();
  const std::size_t capacity = suite.options.capacity;
  const std::size_t ways = 16;
  const std::size_t num_sets = capacity / ways;  // 64 sets x 16 ways = C
  const std::size_t mix_len = static_cast<std::size_t>(
      env_int("OCPS_SIM_LENGTH", 400000));

  CostMatrix unit_costs = precompute_unit_cost_matrix(suite.models, capacity);
  auto groups =
      all_subsets(static_cast<std::uint32_t>(suite.models.size()), 4);
  std::size_t count =
      static_cast<std::size_t>(env_int("OCPS_CAT_GROUPS", 10));
  std::size_t stride = std::max<std::size_t>(1, groups.size() / count);

  std::cout << "=== Deployment: unit-grain optimal partition -> " << ways
            << "-way CAT quotas (" << num_sets << " sets x " << ways
            << " ways) ===\n\n";
  TextTable t({"group", "shared (sim)", "equal ways (sim)",
               "optimal units (sim)", "optimal->rounded ways (sim)",
               "way-grain DP (sim)"});

  std::vector<double> losses;
  for (std::size_t gi = 0; gi < groups.size(); gi += stride) {
    const auto& members = groups[gi];
    std::vector<Trace> traces;
    std::vector<double> rates;
    std::vector<const double*> cost_rows;
    std::string label;
    for (auto m : members) {
      traces.push_back(suite_trace(suite, m));
      rates.push_back(suite.models[m].access_rate);
      if (!label.empty()) label += "+";
      label += suite.models[m].name;
    }
    CostMatrixView cost =
        unit_costs.gather(members.data(), members.size(), cost_rows);
    InterleavedTrace mix = interleave_proportional(traces, rates, mix_len);
    const std::size_t warmup = mix_len / 4;

    DpResult dp = optimize_partition(cost, capacity);
    auto quotas = ways_from_alloc(dp.alloc, capacity, ways);

    // The deployable optimum: run the DP directly at way granularity
    // (cost of w ways = miss ratio at w * blocks-per-way), instead of
    // rounding the unit-grain answer — rounding a cliff-sized allocation
    // down by half a way re-triggers the whole cliff.
    const std::size_t blocks_per_way = capacity / ways;
    CostMatrix way_cost(members.size(), ways);
    for (std::size_t k = 0; k < members.size(); ++k) {
      double* row = way_cost.row(k);
      for (std::size_t w = 0; w <= ways; ++w)
        row[w] = suite.models[members[k]].access_rate *
                 suite.models[members[k]].mrc.ratio(w * blocks_per_way);
    }
    DpResult way_dp = optimize_partition(way_cost.view(), ways);

    CoRunResult shared = simulate_shared(mix, capacity, {warmup, 0});
    CoRunResult unit_part =
        simulate_partitioned(mix, dp.alloc, {warmup, 0});
    auto equal_ways =
        ways_from_alloc(equal_partition(4, capacity), capacity, ways);
    WayPartitionResult equal_cat =
        simulate_way_partitioned(mix, num_sets, ways, equal_ways, warmup);
    WayPartitionResult opt_cat =
        simulate_way_partitioned(mix, num_sets, ways, quotas, warmup);
    WayPartitionResult waydp_cat = simulate_way_partitioned(
        mix, num_sets, ways, way_dp.alloc, warmup);

    double loss = waydp_cat.group_mr - unit_part.group_miss_ratio();
    losses.push_back(loss);
    t.add_row({label, TextTable::num(shared.group_miss_ratio(), 4),
               TextTable::num(equal_cat.group_mr, 4),
               TextTable::num(unit_part.group_miss_ratio(), 4),
               TextTable::num(opt_cat.group_mr, 4),
               TextTable::num(waydp_cat.group_mr, 4)});
  }
  emit_table(t, "cat_ways");

  Summary s = summarize(losses);
  std::cout << "\nfidelity loss (way-grain DP sim minus unit-grain sim): "
            << "mean " << TextTable::num(s.mean, 4) << ", max "
            << TextTable::num(s.max, 4) << "\n";
  std::cout << "\nReading: smooth-MRC groups (e.g. the last row) lose "
               "little. Cliff workloads sized near their working set are "
               "fragile under way partitioning for TWO reasons: (1) "
               "rounding an allocation half a way below the cliff "
               "re-triggers the whole scan, and (2) even with enough "
               "total lines, hashing a near-capacity scan across sets is "
               "imbalanced — overloaded sets thrash cyclically. Deploying "
               "the paper's partitions on CAT-class hardware therefore "
               "needs slack above each cliff (or victim/overflow "
               "structures), a set-associativity effect the theory "
               "abstracts away (§VIII) and this harness quantifies.\n";
  return 0;
}
