// Memory access traces.
//
// A trace is a sequence of block identifiers (one "datum" per cache block /
// allocation unit, matching the paper's unit system). Everything downstream
// — reuse times, footprints, miss-ratio curves, simulators — consumes this
// type.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ocps {

/// Identifier of a cache-block-sized datum.
using Block = std::uint64_t;

/// A memory access trace: the sequence of blocks touched by one program.
struct Trace {
  std::vector<Block> accesses;

  std::size_t length() const { return accesses.size(); }
  bool empty() const { return accesses.empty(); }

  /// Number of distinct blocks in the trace (the paper's m).
  std::size_t distinct_blocks() const;

  /// Remaps block ids to a dense range [base, base + distinct). Preserves
  /// first-appearance order. Used to give co-run programs disjoint address
  /// spaces before interleaving (the paper's programs share no data).
  Trace relabeled(Block base) const;

  /// Appends another trace's accesses (no relabeling).
  void append(const Trace& other);
};

/// Per-trace statistics useful in tests and reports.
struct TraceStats {
  std::size_t length = 0;
  std::size_t distinct = 0;
  Block min_block = 0;
  Block max_block = 0;
};

TraceStats compute_stats(const Trace& trace);

}  // namespace ocps
