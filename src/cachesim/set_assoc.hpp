// Set-associative LRU cache simulator.
//
// The paper's theory assumes full associativity and cites Smith's classic
// result that associativity effects can be estimated statistically (§VIII).
// This simulator lets tests quantify how close a realistic set-associative
// cache tracks the fully-associative model on our workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace ocps {

/// Set-associative cache with per-set LRU replacement.
class SetAssociativeCache {
 public:
  /// num_sets must be a power of two; ways >= 1. Total capacity =
  /// num_sets * ways blocks.
  SetAssociativeCache(std::size_t num_sets, std::size_t ways);

  bool access(Block b);

  std::size_t capacity() const { return sets_.size() * ways_; }
  std::size_t num_sets() const { return sets_.size(); }
  std::size_t ways() const { return ways_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double miss_ratio() const;
  void reset();

 private:
  struct Set {
    // Small per-set arrays: position 0 = MRU. Linear scan is faster than
    // pointer structures at realistic way counts (<= 32).
    std::vector<Block> lines;
  };

  std::size_t set_index(Block b) const;

  std::vector<Set> sets_;
  std::size_t ways_;
  std::size_t mask_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ocps
