// Online repartitioning controller.
//
// The paper assumes "the data can be collected in real time" (§VIII
// Practicality) but evaluates offline. This module closes the loop as a
// runtime system would: each program is watched by a cheap sampled
// profiler (SHARDS); at every epoch boundary the controller estimates
// fresh miss-ratio curves from the *last* epoch's observations, runs the
// DP, and resizes the per-program LRU partitions in place. The first
// epoch runs under an equal partition (nothing is known yet).
//
// The loop is fault-tolerant: every sampled estimate passes through the
// profile sanitizer (locality/sanitize.hpp) and the DP runs behind its
// guarded entry point, so a bad epoch degrades the allocation decision
// instead of aborting the run. The degradation ladder, worst case first:
//   1. sanitize  — repairable corruption (NaN, spikes, truncation) is
//                  fixed in place and counted;
//   2. hold      — a program whose estimate is unusable keeps its
//                  last-good cost curve; a failed DP keeps the last-good
//                  allocation;
//   3. equal     — with no usable estimate ever (first-epoch failure)
//                  the controller stays on the startup equal partition.
// An optional hysteresis cap bounds how many units one epoch may move,
// so a single noisy estimate cannot thrash the partitions.
//
// The bench (bench_online_controller) compares the controller against
// the offline-oracle static DP (whole-trace profiles), equal
// partitioning, and free-for-all sharing; bench_fault_tolerance measures
// the degradation ladder against a naive restart-on-error baseline under
// injected faults (runtime/fault_injection.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cachesim/corun.hpp"
#include "obs/decision_log.hpp"
#include "trace/interleave.hpp"

namespace ocps {

/// What the controller does with an epoch that failed (degenerate
/// estimate or DP error).
enum class FaultPolicy {
  /// Degrade gracefully: sanitize, hold last-good state, fall back to the
  /// equal partition only when nothing was ever learned.
  kGraceful,
  /// Naive baseline: restart the controller from scratch — equal
  /// partition, all learned estimates discarded. What an unhardened
  /// controller wrapped in a supervisor loop would do.
  kRestartOnError,
};

/// Controller knobs.
struct ControllerConfig {
  std::size_t capacity = 1024;       ///< total cache units
  std::size_t epoch_length = 50000;  ///< interleaved accesses per epoch
  double sampling_rate = 0.05;       ///< SHARDS rate per program
  std::uint64_t sampling_seed = 0x0C5;
  /// Blend factor for the MRC estimate: weight of the newest epoch vs the
  /// running estimate (1.0 = use only the latest epoch).
  double ewma_alpha = 0.6;
  /// Optional per-program floor (QoS units) enforced every epoch.
  std::size_t min_units = 0;
  /// Hysteresis: at most this many units may change hands per epoch
  /// (half the L1 distance between successive allocations). 0 = no cap.
  std::size_t max_delta_units = 0;
  /// Reaction to a failed epoch; see FaultPolicy.
  FaultPolicy fault_policy = FaultPolicy::kGraceful;
  /// Decision-quality plane (obs/decision_log.hpp): every epoch's
  /// partition decision is logged with its predicted miss ratios and
  /// reconciled against the realized ratios one epoch later. The audit
  /// trail always runs (it is independent of the metrics registry);
  /// drift *alerting* engages only when drift_threshold > 0.
  double drift_alpha = 0.25;       ///< EWMA weight of the newest error
  double drift_threshold = 0.0;    ///< |error| EWMA breach level, 0 = off
  std::size_t decision_log_capacity = 64;  ///< audit-ring size
};

/// Test/fault-injection seams. Default-constructed hooks are inert; the
/// controller's behaviour with empty hooks is bit-identical to a build
/// without them. See runtime/fault_injection.hpp for seeded injectors.
struct ControllerHooks {
  /// May mutate the raw sampled miss-ratio estimate (indexed by cache
  /// size) before sanitization — inject NaN, spikes, truncation.
  std::function<void(std::size_t epoch, std::size_t program,
                     std::vector<double>& ratios)>
      corrupt_mrc;
  /// Return true to drop the sampler output for (epoch, program),
  /// simulating a profiler that captured nothing.
  std::function<bool(std::size_t epoch, std::size_t program)> drop_estimate;
  /// Return true to fail the DP for this epoch.
  std::function<bool(std::size_t epoch)> fail_dp;
};

/// Per-epoch health record.
struct EpochHealth {
  std::size_t repairs = 0;            ///< sanitizer repairs this epoch
  std::size_t degraded_programs = 0;  ///< programs with unusable estimates
  bool dp_failed = false;             ///< DP returned an error
  bool held_allocation = false;       ///< kept previous allocation
  bool restarted = false;             ///< kRestartOnError reset to equal
};

/// Outcome of a controller run.
struct ControllerResult {
  CoRunResult sim;  ///< realized per-program accesses/misses
  std::vector<std::vector<std::size_t>> alloc_history;  ///< per epoch
  double sampled_fraction = 0.0;  ///< profiling cost proxy
  std::size_t epochs = 0;
  std::vector<EpochHealth> health;   ///< one record per completed epoch
  std::size_t epochs_degraded = 0;   ///< epochs with any estimate/DP fault
  std::size_t repairs = 0;           ///< total sanitizer repairs
  std::size_t fallbacks = 0;         ///< epochs that held/reset the alloc
  /// Audit trail of every partition decision (startup + one per epoch),
  /// each reconciled with the realized per-program miss ratios of the
  /// epoch it governed (the trailing segment reconciles as partial).
  /// Shared so the result stays copyable; never null.
  std::shared_ptr<obs::DecisionLog> decisions;
  obs::DriftStatus drift;                  ///< final drift-detector state
  std::vector<obs::DriftAlert> drift_alerts;  ///< edge-triggered breaches
};

/// Runs the closed loop over an interleaved trace with `num_programs`
/// programs. Throws CheckError only on malformed *configuration*; faults
/// in the data path degrade per the config's FaultPolicy instead.
ControllerResult run_online_controller(const InterleavedTrace& trace,
                                       std::size_t num_programs,
                                       const ControllerConfig& config,
                                       const ControllerHooks& hooks = {});

}  // namespace ocps
