// Performance-domain view of the evaluation (§VIII locality-performance
// correlation): applying the linear latency model to the six cache-sharing
// solutions gives per-method ANTT (average slowdown) and STP (system
// throughput), and optimizing the slowdown objective directly shows that
// the miss-ratio optimum and the performance optimum nearly coincide —
// the correlation the paper relies on.
#include <iostream>

#include "common.hpp"
#include "core/dp_partition.hpp"
#include "core/performance.hpp"
#include "util/stats.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Evaluation eval = load_evaluation();
  const auto& models = eval.suite.models;
  const std::size_t capacity = eval.capacity;
  LatencyModel latency;  // hit 1, miss 20

  const std::vector<Method> methods = {
      Method::kEqual, Method::kNatural, Method::kEqualBaseline,
      Method::kNaturalBaseline, Method::kOptimal, Method::kSttw};

  std::vector<std::vector<double>> antt(methods.size() + 1);
  std::vector<std::vector<double>> stp(methods.size() + 1);
  std::vector<double> mr_optimal, antt_optimal;

  std::size_t stride = std::max<std::size_t>(1, eval.sweep.size() / 300);
  for (std::size_t gi = 0; gi < eval.sweep.size(); gi += stride) {
    const auto& g = eval.sweep[gi];
    std::vector<const ProgramModel*> ptrs;
    for (auto m : g.members) ptrs.push_back(&models[m]);
    CoRunGroup group(ptrs);

    for (std::size_t mi = 0; mi < methods.size(); ++mi) {
      const auto& out = g.of(methods[mi]);
      PerfMetrics perf =
          performance_metrics(group, out.per_program_mr, capacity, latency);
      antt[mi].push_back(perf.antt);
      stp[mi].push_back(perf.stp);
      if (methods[mi] == Method::kOptimal) {
        mr_optimal.push_back(out.group_mr);
        antt_optimal.push_back(perf.antt);
      }
    }

    // Direct ANTT optimization via slowdown cost curves.
    auto cost = slowdown_cost_curves(group, capacity, latency);
    DpResult dp =
        optimize_partition(CostMatrix::from_rows(cost, capacity).view(),
                           capacity);
    std::vector<double> mr(ptrs.size());
    for (std::size_t k = 0; k < ptrs.size(); ++k)
      mr[k] = ptrs[k]->mrc.ratio(dp.alloc[k]);
    PerfMetrics perf = performance_metrics(group, mr, capacity, latency);
    antt.back().push_back(perf.antt);
    stp.back().push_back(perf.stp);
  }

  std::cout << "=== Performance metrics per method (latency model: hit 1, "
               "miss 20; "
            << antt[0].size() << " groups) ===\n\n";
  TextTable t({"method", "avg ANTT (lower better)", "avg STP (of 4)"});
  for (std::size_t mi = 0; mi < methods.size(); ++mi)
    t.add_row({method_name(methods[mi]),
               TextTable::num(mean_of(antt[mi]), 4),
               TextTable::num(mean_of(stp[mi]), 4)});
  t.add_row({"ANTT-optimal (slowdown DP)",
             TextTable::num(mean_of(antt.back()), 4),
             TextTable::num(mean_of(stp.back()), 4)});
  emit_table(t, "performance");

  std::cout << "\ncorrelation between Optimal's group miss ratio and its "
               "modeled ANTT across groups: "
            << TextTable::num(pearson(mr_optimal, antt_optimal), 4) << "\n";
  std::cout << "\nExpected (§VIII): the miss-ratio optimum is nearly "
               "ANTT-optimal (the dedicated slowdown DP recovers only a "
               "sliver more), and miss ratio correlates strongly with "
               "modeled time — the paper's 0.938 correlation argument.\n";
  return 0;
}
