#ifndef OCPS_OBS_DISABLED

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/obs.hpp"
#include "util/config.hpp"

namespace ocps::obs {

namespace detail {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_flag("OCPS_OBS", false)};
  return flag;
}

// Dense thread index used to pick a counter shard. Threads beyond
// kCounterShards wrap around; the stripes stay contention-light either
// way.
std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return id;
}

}  // namespace detail

void Counter::add(std::uint64_t n) noexcept {
  shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

std::size_t Histogram::bucket_index(double v) noexcept {
  // Negatives, sub-unit values, and non-finite values (NaN would pass
  // the comparison inverted; +inf would hand frexp an unspecified exp).
  if (!std::isfinite(v) || v < 1.0) return 0;
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp with m in [0.5, 1)
  // v >= 1 implies exp >= 1; v in [2^(exp-1), 2^exp) belongs to bucket
  // `exp` (whose range starts at 2^(exp-1)).
  std::size_t idx = static_cast<std::size_t>(exp);
  return idx < kHistogramBuckets ? idx : kHistogramBuckets - 1;
}

double Histogram::bucket_lower_bound(std::size_t i) noexcept {
  if (i == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(i) - 1);  // 2^(i-1)
}

double Histogram::bucket_upper_bound(std::size_t i) noexcept {
  if (i + 1 >= kHistogramBuckets)
    return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i));  // 2^i
}

void Histogram::observe(double v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(v)) {
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket(std::size_t i) const noexcept {
  return i < kHistogramBuckets ? buckets_[i].load(std::memory_order_relaxed)
                               : 0;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

namespace {

// The registry proper: name -> metric. The mutex guards only creation and
// iteration; updates go straight to the (stable-address) metric objects.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry();  // never destroyed: metrics outlive
  return *r;                            // static-destruction order issues
}

// Per-histogram exemplar slots: one {trace_id, value} per bucket,
// last-write-wins. Separate from the lock-free Histogram object so the
// hot observe path stays untouched; exemplar recording takes this mutex
// but only on request-rate paths (serve stages), never inner loops.
struct ExemplarStore {
  std::mutex mu;
  std::map<std::string, std::array<Exemplar, kHistogramBuckets>> slots;
};

ExemplarStore& exemplar_store() {
  static ExemplarStore* s = new ExemplarStore();  // never destroyed
  return *s;
}

template <typename T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>>& map,
                  const std::string& name) {
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(name, std::unique_ptr<T>(new T())).first;
  return *it->second;
}

// NaN/inf have no JSON spelling; emit null so the document stays valid.
void write_json_double(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

void write_json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) break;  // drop controls
        os << c;
    }
  }
}

}  // namespace

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_or_create(r.counters, name);
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_or_create(r.gauges, name);
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_or_create(r.histograms, name);
}

void note_exemplar(const std::string& name, double value,
                   std::uint64_t trace_id) {
  if (!enabled() || trace_id == 0) return;
  std::size_t i = Histogram::bucket_index(value);
  ExemplarStore& s = exemplar_store();
  std::lock_guard<std::mutex> lock(s.mu);
  s.slots[name][i] = Exemplar{trace_id, value};
}

std::vector<std::pair<std::size_t, Exemplar>> exemplars_for(
    const std::string& name) {
  std::vector<std::pair<std::size_t, Exemplar>> out;
  ExemplarStore& s = exemplar_store();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.slots.find(name);
  if (it == s.slots.end()) return out;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i)
    if (it->second[i].trace_id != 0) out.emplace_back(i, it->second[i]);
  return out;
}

MetricsSnapshot metrics_snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  MetricsSnapshot snap;
  for (const auto& [name, c] : r.counters)
    snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : r.gauges)
    snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : r.histograms) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      std::uint64_t n = h->bucket(i);
      if (n > 0) hs.buckets.emplace_back(i, n);
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  // In-place reset: cached references (OCPS_OBS_HIST) must stay valid.
  for (auto& [name, h] : r.histograms) h->reset();
  ExemplarStore& s = exemplar_store();
  std::lock_guard<std::mutex> elock(s.mu);
  s.slots.clear();
}

void write_metrics_json(std::ostream& os) {
  MetricsSnapshot snap = metrics_snapshot();
  const BuildInfo build = build_info();
  os << "{\"build_info\":{\"git_sha\":\"";
  write_json_escaped(os, build.git_sha);
  os << "\",\"compiler\":\"";
  write_json_escaped(os, build.compiler);
  os << "\",\"simd_kernel\":\"";
  write_json_escaped(os, build.simd_kernel);
  os << "\"},\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) os << ',';
    first = false;
    os << '"';
    write_json_escaped(os, name);
    os << "\":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) os << ',';
    first = false;
    os << '"';
    write_json_escaped(os, name);
    os << "\":";
    write_json_double(os, v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) os << ',';
    first = false;
    os << '"';
    write_json_escaped(os, h.name);
    os << "\":{\"count\":" << h.count << ",\"sum\":";
    write_json_double(os, h.sum);
    os << ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& [i, n] : h.buckets) {
      if (!bfirst) os << ',';
      bfirst = false;
      os << "{\"lo\":" << Histogram::bucket_lower_bound(i) << ",\"hi\":";
      write_json_double(os, Histogram::bucket_upper_bound(i));
      os << ",\"count\":" << n << '}';
    }
    os << "]";
    auto exemplars = exemplars_for(h.name);
    if (!exemplars.empty()) {
      os << ",\"exemplars\":[";
      bool efirst = true;
      for (const auto& [i, ex] : exemplars) {
        if (!efirst) os << ',';
        efirst = false;
        os << "{\"lo\":" << Histogram::bucket_lower_bound(i)
           << ",\"trace_id\":" << ex.trace_id << ",\"value\":";
        write_json_double(os, ex.value);
        os << '}';
      }
      os << "]";
    }
    os << "}";
  }
  os << "}}";
}

void write_metrics_text(std::ostream& os, const std::string& prefix) {
  MetricsSnapshot snap = metrics_snapshot();
  auto matches = [&](const std::string& name) {
    return prefix.empty() || name.rfind(prefix, 0) == 0;
  };
  for (const auto& [name, v] : snap.counters)
    if (matches(name)) os << name << " " << v << "\n";
  for (const auto& [name, v] : snap.gauges)
    if (matches(name)) os << name << " " << v << "\n";
  for (const auto& h : snap.histograms) {
    if (!matches(h.name)) continue;
    os << h.name << " count=" << h.count << " sum=" << h.sum;
    if (h.count > 0) os << " mean=" << h.sum / static_cast<double>(h.count);
    os << "\n";
    for (const auto& [i, n] : h.buckets) {
      os << "  [" << Histogram::bucket_lower_bound(i) << ", ";
      double hi = Histogram::bucket_upper_bound(i);
      if (std::isinf(hi)) {
        os << "inf";
      } else {
        os << hi;
      }
      os << ") " << n << "\n";
    }
  }
}

}  // namespace ocps::obs

#else  // OCPS_OBS_DISABLED

#include <ostream>

#include "obs/obs.hpp"

namespace ocps::obs {

// Dummy singletons so cached references at call sites stay valid even in
// a compiled-out build.
Counter& counter(const std::string&) {
  static Counter c;
  return c;
}
Gauge& gauge(const std::string&) {
  static Gauge g;
  return g;
}
Histogram& histogram(const std::string&) {
  static Histogram h;
  return h;
}

void write_metrics_json(std::ostream& os) {
  const BuildInfo build = build_info();
  auto escaped = [&os](const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
  };
  os << "{\"build_info\":{\"git_sha\":\"";
  escaped(build.git_sha);
  os << "\",\"compiler\":\"";
  escaped(build.compiler);
  os << "\",\"simd_kernel\":\"";
  escaped(build.simd_kernel);
  os << "\"},\"counters\":{},\"gauges\":{},\"histograms\":{}}";
}
void write_metrics_text(std::ostream&, const std::string&) {}

}  // namespace ocps::obs

#endif  // OCPS_OBS_DISABLED
