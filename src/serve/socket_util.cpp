#include "serve/socket_util.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <sstream>

#include "obs/obs.hpp"

namespace ocps::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kPollMs = 50;

int poll_fd(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  return ::poll(&pfd, 1, timeout_ms);
}

}  // namespace

std::string Endpoint::display() const {
  if (kind == Kind::kUnix) return path;
  return host + ":" + std::to_string(port);
}

Result<Endpoint> parse_endpoint(const std::string& spec) {
  if (spec.empty())
    return Err(ErrorCode::kInvalidArgument, "empty endpoint");
  Endpoint ep;
  std::size_t colon = spec.rfind(':');
  bool tcp = colon != std::string::npos && colon > 0 &&
             colon + 1 < spec.size();
  if (tcp)
    for (std::size_t i = colon + 1; i < spec.size(); ++i)
      if (!std::isdigit(static_cast<unsigned char>(spec[i]))) {
        tcp = false;
        break;
      }
  if (!tcp) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec;
    return Ok(std::move(ep));
  }
  ep.kind = Endpoint::Kind::kTcp;
  ep.host = spec.substr(0, colon);
  unsigned long port = std::strtoul(spec.c_str() + colon + 1, nullptr, 10);
  if (port > 65535)
    return Err(ErrorCode::kInvalidArgument,
               "port out of range in endpoint: " + spec);
  ep.port = static_cast<std::uint16_t>(port);
  in_addr probe{};
  std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  if (::inet_pton(AF_INET, host.c_str(), &probe) != 1)
    return Err(ErrorCode::kInvalidArgument,
               "endpoint host must be a numeric IPv4 address or "
               "\"localhost\": " +
                   spec);
  return Ok(std::move(ep));
}

namespace {

Result<sockaddr_in> tcp_sockaddr(const std::string& host,
                                 std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1)
    return Err(ErrorCode::kInvalidArgument,
               "cannot resolve host \"" + host +
                   "\" (numeric IPv4 or \"localhost\" only)");
  return Ok(std::move(addr));
}

}  // namespace

Result<int> listen_tcp(const std::string& host, std::uint16_t port,
                       int backlog) {
  Result<sockaddr_in> addr = tcp_sockaddr(host, port);
  if (!addr.ok()) return addr.error();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    return Err(ErrorCode::kIoError,
               std::string("socket(): ") + std::strerror(errno));
  // A killed-and-restarted daemon must be able to rebind its port while
  // the old connections sit in TIME_WAIT — that restart is exactly what
  // the chaos harness exercises.
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr.value()),
             sizeof(addr.value())) != 0) {
    int err = errno;
    ::close(fd);
    return Err(ErrorCode::kIoError,
               "bind(" + host + ":" + std::to_string(port) +
                   "): " + std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    int err = errno;
    ::close(fd);
    return Err(ErrorCode::kIoError,
               std::string("listen(): ") + std::strerror(err));
  }
  return Ok(std::move(fd));
}

Result<UnixListener> claim_unix_socket(const std::string& path,
                                       int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    return Err(ErrorCode::kInvalidArgument, "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  UnixListener out;
  std::string lock_path = path + ".lock";
  out.lock_fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0600);
  if (out.lock_fd < 0)
    return Err(ErrorCode::kIoError,
               "open(" + lock_path + "): " + std::strerror(errno));
  if (::flock(out.lock_fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(out.lock_fd);
    return Err(ErrorCode::kIoError,
               path + " is in use by a live daemon (lock file held)");
  }

  // Never unlink the live daemon's socket or the lock another process
  // may be about to inherit: only release what this claim created.
  auto fail = [&](const std::string& msg,
                  bool unlink_socket) -> Result<UnixListener> {
    if (out.fd >= 0) ::close(out.fd);
    if (unlink_socket) ::unlink(path.c_str());
    ::unlink(lock_path.c_str());
    ::close(out.lock_fd);
    return Err(ErrorCode::kIoError, msg);
  };

  out.fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (out.fd < 0)
    return fail(std::string("socket(): ") + std::strerror(errno), false);

  if (::bind(out.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EADDRINUSE)
      return fail("bind(" + path + "): " + std::strerror(errno), false);
    // The path exists and we hold the lock. A connectable socket means a
    // live daemon (possibly from before the lock file existed); refuse
    // to fight it. Connection-refused means a stale file from a crashed
    // daemon: remove it and claim the path — safe, since no other
    // starter holds the flock and can be mid-reclaim here.
    int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    bool live = probe >= 0 &&
                ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0;
    if (probe >= 0) ::close(probe);
    if (live) return fail("address in use by live daemon: " + path, false);
    ::unlink(path.c_str());
    if (::bind(out.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0)
      return fail("bind(" + path + "): " + std::strerror(errno), false);
  }

  if (::listen(out.fd, backlog) != 0)
    return fail(std::string("listen(): ") + std::strerror(errno), true);
  return Ok(std::move(out));
}

void release_unix_socket(UnixListener& listener, const std::string& path) {
  if (listener.fd >= 0) {
    ::close(listener.fd);
    listener.fd = -1;
    ::unlink(path.c_str());
  }
  if (listener.lock_fd >= 0) {
    ::unlink((path + ".lock").c_str());
    ::close(listener.lock_fd);  // close releases the flock
    listener.lock_fd = -1;
  }
}

Result<std::uint16_t> bound_tcp_port(int fd) {
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    return Err(ErrorCode::kIoError,
               std::string("getsockname(): ") + std::strerror(errno));
  return Ok(static_cast<std::uint16_t>(ntohs(bound.sin_port)));
}

Result<int> connect_endpoint(const Endpoint& ep,
                             std::chrono::milliseconds timeout) {
  int fd = -1;
  sockaddr_storage storage{};
  socklen_t addr_len = 0;
  if (ep.kind == Endpoint::Kind::kUnix) {
    auto* addr = reinterpret_cast<sockaddr_un*>(&storage);
    addr->sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr->sun_path))
      return Err(ErrorCode::kInvalidArgument,
                 "socket path too long: " + ep.path);
    std::memcpy(addr->sun_path, ep.path.c_str(), ep.path.size() + 1);
    addr_len = sizeof(sockaddr_un);
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  } else {
    Result<sockaddr_in> addr = tcp_sockaddr(ep.host, ep.port);
    if (!addr.ok()) return addr.error();
    std::memcpy(&storage, &addr.value(), sizeof(addr.value()));
    addr_len = sizeof(sockaddr_in);
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  }
  if (fd < 0)
    return Err(ErrorCode::kIoError,
               std::string("socket(): ") + std::strerror(errno));

  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&storage), addr_len);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    int err = errno;
    ::close(fd);
    return Err(ErrorCode::kIoError,
               "connect(" + ep.display() + "): " + std::strerror(err));
  }
  if (rc != 0) {
    // In-progress TCP connect: wait for writability, bounded.
    Clock::time_point deadline = Clock::now() + timeout;
    for (;;) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) {
        ::close(fd);
        return Err(ErrorCode::kIoError,
                   "connect(" + ep.display() + "): timed out");
      }
      int ready = poll_fd(
          fd, POLLOUT,
          static_cast<int>(std::min<long long>(left.count(), kPollMs)));
      if (ready < 0 && errno != EINTR) {
        int err = errno;
        ::close(fd);
        return Err(ErrorCode::kIoError,
                   std::string("poll(): ") + std::strerror(err));
      }
      if (ready > 0) break;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
        err != 0) {
      ::close(fd);
      return Err(ErrorCode::kIoError,
                 "connect(" + ep.display() +
                     "): " + std::strerror(err != 0 ? err : errno));
    }
  }
  return Ok(std::move(fd));
}

bool send_all(int fd, const char* data, std::size_t len,
              std::chrono::milliseconds timeout) {
  Clock::time_point deadline = Clock::now() + timeout;
  std::size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Short write against a slow peer: wait for the buffer to drain,
      // but never forever — a stalled reader must not wedge a writer.
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return false;
      int ready = poll_fd(
          fd, POLLOUT,
          static_cast<int>(std::min<long long>(left.count(), kPollMs)));
      if (ready < 0 && errno != EINTR) return false;
      continue;
    }
    return false;
  }
  return true;
}

void handle_metrics_http_client(int fd, const std::function<bool()>& stop,
                                const std::function<void()>& refresh) {
  // Read the request head; scrapers send tiny GETs, so bound everything.
  std::string head;
  Clock::time_point give_up = Clock::now() + std::chrono::seconds(2);
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    if (Clock::now() >= give_up || head.size() > 8192 || (stop && stop()))
      return;
    if (poll_fd(fd, POLLIN, kPollMs) <= 0) continue;
    char chunk[1024];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return;
    }
    head.append(chunk, static_cast<std::size_t>(n));
  }

  std::istringstream request(head);
  std::string method, path;
  request >> method >> path;

  auto reply = [&](const char* status, const char* content_type,
                   const std::string& body) {
    std::ostringstream os;
    os << "HTTP/1.1 " << status << "\r\nContent-Type: " << content_type
       << "\r\nContent-Length: " << body.size()
       << "\r\nConnection: close\r\n\r\n"
       << body;
    std::string data = os.str();
    (void)send_all(fd, data.data(), data.size(),
                   std::chrono::milliseconds(2000));
  };

  if (method != "GET") {
    reply("405 Method Not Allowed", "text/plain; charset=utf-8",
          "only GET is supported\n");
    return;
  }
  if (path != "/metrics" && path != "/") {
    reply("404 Not Found", "text/plain; charset=utf-8",
          "unknown path; scrape /metrics\n");
    return;
  }
  if (!obs::enabled()) {
    // Explicit status instead of an empty page: with obs off (or the
    // layer compiled out) there is nothing to expose, and a scraper
    // should see that as a config problem, not an idle daemon.
    reply("501 Not Implemented", "text/plain; charset=utf-8",
          "observability disabled (run ocps serve, or set OCPS_OBS=1)\n");
    return;
  }
  if (refresh) refresh();
  std::ostringstream text;
  obs::write_metrics_prometheus(text);
  reply("200 OK", "text/plain; version=0.0.4; charset=utf-8", text.str());
}

}  // namespace ocps::serve
