// Unit tests for src/util: checks, RNG, curves, stats, tables, config,
// parallel_for, Fenwick tree.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/check.hpp"
#include "util/config.hpp"
#include "util/curve.hpp"
#include "util/fenwick.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ocps {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    OCPS_CHECK(1 == 2, "custom detail " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(OCPS_CHECK(2 + 2 == 4, "never shown"));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t v = rng.below(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 7000; ++i) ++seen[rng.below(7)];
  for (int c : seen) EXPECT_GT(c, 700);  // ~1000 each, loose bound
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, BelowRejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), CheckError);
}

TEST(Curve, EvaluatesAndClamps) {
  PiecewiseLinear c({0.0, 10.0, 20.0}, {0.0, 5.0, 6.0});
  EXPECT_DOUBLE_EQ(c(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c(5.0), 2.5);
  EXPECT_DOUBLE_EQ(c(15.0), 5.5);
  EXPECT_DOUBLE_EQ(c(-3.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(c(99.0), 6.0);   // clamp right
}

TEST(Curve, InverseOfMonotone) {
  PiecewiseLinear c({0.0, 10.0, 20.0}, {0.0, 5.0, 6.0});
  EXPECT_DOUBLE_EQ(c.inverse(2.5), 5.0);
  EXPECT_DOUBLE_EQ(c.inverse(5.5), 15.0);
  EXPECT_DOUBLE_EQ(c.inverse(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(c.inverse(100.0), 20.0);
}

TEST(Curve, InverseOnFlatSegmentPicksSmallestX) {
  PiecewiseLinear c({0.0, 1.0, 2.0, 3.0}, {0.0, 4.0, 4.0, 8.0});
  EXPECT_LE(c.inverse(4.0), 1.0 + 1e-12);
}

TEST(Curve, FromDenseIndexesByPosition) {
  PiecewiseLinear c = PiecewiseLinear::from_dense({1.0, 3.0, 9.0});
  EXPECT_DOUBLE_EQ(c(1.0), 3.0);
  EXPECT_DOUBLE_EQ(c(1.5), 6.0);
}

TEST(Curve, RejectsNonIncreasingKnots) {
  EXPECT_THROW(PiecewiseLinear({0.0, 0.0}, {1.0, 2.0}), CheckError);
  EXPECT_THROW(PiecewiseLinear({1.0, 0.0}, {1.0, 2.0}), CheckError);
}

TEST(Curve, DownsampleKeepsEndpointsAndShape) {
  std::vector<double> ys(1001);
  for (std::size_t i = 0; i < ys.size(); ++i)
    ys[i] = static_cast<double>(i) * 0.5;
  PiecewiseLinear dense = PiecewiseLinear::from_dense(ys);
  PiecewiseLinear small = dense.downsample(11);
  EXPECT_LE(small.size(), 11u);
  EXPECT_DOUBLE_EQ(small.x_min(), 0.0);
  EXPECT_DOUBLE_EQ(small.x_max(), 1000.0);
  // Linear input survives downsampling exactly.
  EXPECT_NEAR(small(123.0), dense(123.0), 1e-9);
  EXPECT_NEAR(small(987.0), dense(987.0), 1e-9);
}

TEST(Curve, IsNonDecreasingDetects) {
  EXPECT_TRUE(PiecewiseLinear({0.0, 1.0}, {0.0, 1.0}).is_non_decreasing());
  EXPECT_FALSE(PiecewiseLinear({0.0, 1.0}, {1.0, 0.0}).is_non_decreasing());
}

TEST(Stats, SummaryBasics) {
  Summary s = summarize({3.0, 1.0, 2.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(Stats, MedianOfEvenCount) {
  Summary s = summarize({1.0, 2.0, 3.0, 10.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, EmptySummaryIsZero) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.0);
}

TEST(Stats, FractionAtLeast) {
  std::vector<double> xs = {0.05, 0.15, 0.25, 0.35};
  EXPECT_DOUBLE_EQ(fraction_at_least(xs, 0.10), 0.75);
  EXPECT_DOUBLE_EQ(fraction_at_least(xs, 0.20), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_least({}, 0.1), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> zs = {6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, zs), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVariance) {
  EXPECT_DOUBLE_EQ(pearson({1.0, 1.0}, {2.0, 3.0}), 0.0);
}

TEST(Table, AlignedOutputContainsCells) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, CsvEscapesQuotes) {
  TextTable t({"a"});
  t.add_row({"x\"y,z"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x\"\"y,z\""), std::string::npos);
}

TEST(Table, RowArityChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(Table, Formatting) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::pct(0.2635, 1), "26.4%");
}

TEST(Config, EnvIntFallback) {
  unsetenv("OCPS_TEST_INT");
  EXPECT_EQ(env_int("OCPS_TEST_INT", 7), 7);
  setenv("OCPS_TEST_INT", "123", 1);
  EXPECT_EQ(env_int("OCPS_TEST_INT", 7), 123);
  setenv("OCPS_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(env_int("OCPS_TEST_INT", 7), 7);
  unsetenv("OCPS_TEST_INT");
}

TEST(Config, EnvFlag) {
  setenv("OCPS_TEST_FLAG", "yes", 1);
  EXPECT_TRUE(env_flag("OCPS_TEST_FLAG"));
  setenv("OCPS_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("OCPS_TEST_FLAG"));
  unsetenv("OCPS_TEST_FLAG");
  EXPECT_TRUE(env_flag("OCPS_TEST_FLAG", true));
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  parallel_for(5, 5, [&](std::size_t) { FAIL(); });
}

TEST(Parallel, PropagatesException) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Fenwick, PrefixAndRange) {
  Fenwick f(10);
  f.add(0, 1);
  f.add(4, 2);
  f.add(9, 3);
  EXPECT_EQ(f.prefix(0), 1);
  EXPECT_EQ(f.prefix(4), 3);
  EXPECT_EQ(f.prefix(9), 6);
  EXPECT_EQ(f.range(1, 4), 2);
  EXPECT_EQ(f.range(5, 8), 0);
  EXPECT_EQ(f.range(5, 4), 0);  // empty range
}

TEST(Fenwick, SupportsNegativeDeltas) {
  Fenwick f(4);
  f.add(2, 5);
  f.add(2, -3);
  EXPECT_EQ(f.range(2, 2), 2);
}

TEST(Fenwick, OutOfRangeChecked) {
  Fenwick f(4);
  EXPECT_THROW(f.add(4, 1), CheckError);
  EXPECT_THROW(f.prefix(4), CheckError);
}

// --- util/json ------------------------------------------------------------

TEST(Json, ParsesScalarsAndContainers) {
  auto v = json::parse(
      R"({"s":"hi","n":-2.5,"i":42,"b":true,"z":null,"a":[1,2,3],)"
      R"("o":{"k":"v"}})");
  ASSERT_TRUE(v.ok()) << v.error().to_string();
  const json::Value& obj = v.value();
  EXPECT_EQ(obj.get_string("s", ""), "hi");
  EXPECT_DOUBLE_EQ(obj.get_number("n", 0.0), -2.5);
  EXPECT_DOUBLE_EQ(obj.get_number("i", 0.0), 42.0);
  EXPECT_TRUE(obj.get_bool("b", false));
  ASSERT_NE(obj.find("z"), nullptr);
  EXPECT_TRUE(obj.find("z")->is_null());
  ASSERT_NE(obj.find("a"), nullptr);
  EXPECT_EQ(obj.find("a")->as_array().size(), 3u);
  ASSERT_NE(obj.find("o"), nullptr);
  EXPECT_EQ(obj.find("o")->get_string("k", ""), "v");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(json::parse("").ok());
  EXPECT_FALSE(json::parse("{").ok());
  EXPECT_FALSE(json::parse("[1,]").ok());
  EXPECT_FALSE(json::parse(R"({"a":1,})").ok());
  EXPECT_FALSE(json::parse(R"({"a" 1})").ok());
  EXPECT_FALSE(json::parse("[1] trailing").ok());
  EXPECT_FALSE(json::parse("01").ok());      // leading zero
  EXPECT_FALSE(json::parse("+1").ok());      // no leading plus in JSON
  EXPECT_FALSE(json::parse("nul").ok());
  EXPECT_FALSE(json::parse(R"("unterminated)").ok());
  EXPECT_FALSE(json::parse("\"bad \x01 control\"").ok());
}

TEST(Json, DepthLimitStopsRecursion) {
  std::string deep(json::kMaxParseDepth + 1, '[');
  deep += std::string(json::kMaxParseDepth + 1, ']');
  EXPECT_FALSE(json::parse(deep).ok());
  std::string fine(json::kMaxParseDepth - 1, '[');
  fine += std::string(json::kMaxParseDepth - 1, ']');
  EXPECT_TRUE(json::parse(fine).ok());
}

TEST(Json, StringEscapesRoundTrip) {
  auto v = json::parse(R"(["a\"b", "tab\there", "Aé€"])");
  ASSERT_TRUE(v.ok()) << v.error().to_string();
  const json::Array& a = v.value().as_array();
  EXPECT_EQ(a[0].as_string(), "a\"b");
  EXPECT_EQ(a[1].as_string(), "tab\there");
  EXPECT_EQ(a[2].as_string(), "A\xc3\xa9\xe2\x82\xac");  // A é €
  // Surrogate pair -> 4-byte UTF-8.
  auto pair = json::parse(R"("😀")");
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair.value().as_string(), "\xf0\x9f\x98\x80");
  // Lone surrogate is an error.
  EXPECT_FALSE(json::parse(R"("\ud83d")").ok());
}

TEST(Json, DumpRoundTripsThroughParse) {
  json::Value obj;
  obj.set("name", json::Value(std::string("x\"y\n")));
  obj.set("count", json::Value(3.0));
  obj.set("ratio", json::Value(0.1));
  obj.set("flag", json::Value(false));
  json::Array arr;
  arr.emplace_back(1.0);
  arr.emplace_back(std::string("two"));
  obj.set("arr", json::Value(std::move(arr)));
  std::string text = obj.dump();
  auto back = json::parse(text);
  ASSERT_TRUE(back.ok()) << text;
  EXPECT_EQ(back.value().get_string("name", ""), "x\"y\n");
  EXPECT_DOUBLE_EQ(back.value().get_number("count", 0.0), 3.0);
  EXPECT_DOUBLE_EQ(back.value().get_number("ratio", 0.0), 0.1);
  // Integer-valued numbers print without a decimal point.
  EXPECT_NE(text.find("\"count\":3"), std::string::npos);
  // Insertion order is preserved.
  EXPECT_LT(text.find("name"), text.find("count"));
  // Non-finite numbers degrade to null rather than emitting bad JSON.
  json::Value inf;
  inf.set("v", json::Value(std::numeric_limits<double>::infinity()));
  EXPECT_EQ(inf.dump(), R"({"v":null})");
}

}  // namespace
}  // namespace ocps
