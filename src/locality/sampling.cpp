#include "locality/sampling.hpp"

#include <algorithm>

#include "locality/reuse_time.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ocps {

SampledFootprint sampled_footprint(const Trace& trace,
                                   const SamplingConfig& config) {
  OCPS_CHECK(config.burst_length >= 2, "burst too short to observe reuse");
  OCPS_CHECK(!trace.empty(), "empty trace");

  Rng rng(config.jitter_seed);
  const std::size_t n = trace.length();

  SampledFootprint out;
  // Accumulate per-burst dense footprints (all bursts share the burst
  // length, so curves align index-by-index).
  std::vector<double> sum;  // sum of fp values per window length
  std::size_t curve_len = 0;

  std::size_t pos = 0;
  while (pos < n) {
    std::size_t burst_end = std::min(n, pos + config.burst_length);
    if (burst_end - pos >= 2) {
      Trace burst;
      burst.accesses.assign(trace.accesses.begin() + static_cast<long>(pos),
                            trace.accesses.begin() +
                                static_cast<long>(burst_end));
      FootprintCurve fp = compute_footprint(burst);
      if (sum.empty()) {
        curve_len = fp.fp.size();
        sum.assign(curve_len, 0.0);
      }
      // Shorter trailing bursts still contribute to the windows they
      // cover; track contributions per index via implicit count below.
      std::size_t usable = std::min(curve_len, fp.fp.size());
      for (std::size_t w = 0; w < usable; ++w) sum[w] += fp.fp[w];
      ++out.bursts;
      out.profiled_accesses += burst_end - pos;
    }
    std::size_t gap = config.gap_length;
    if (config.jitter_seed != 0 && gap > 0) {
      double f = 0.5 + rng.uniform();
      gap = static_cast<std::size_t>(static_cast<double>(gap) * f);
    }
    pos = burst_end + gap;
  }
  OCPS_CHECK(out.bursts > 0, "schedule produced no bursts");

  // Average. (Trailing short bursts contribute only to the indices they
  // reach; dividing by the total burst count slightly underweights the
  // tail — acceptable: there is at most one short burst.)
  FootprintCurve fp;
  fp.fp.resize(curve_len);
  for (std::size_t w = 0; w < curve_len; ++w)
    fp.fp[w] = sum[w] / static_cast<double>(out.bursts);
  // Enforce the structural invariants averaging can perturb at the tail.
  for (std::size_t w = 1; w < curve_len; ++w)
    fp.fp[w] = std::max(fp.fp[w], fp.fp[w - 1]);
  fp.trace_length = curve_len > 0 ? curve_len - 1 : 0;
  fp.distinct = static_cast<std::uint64_t>(fp.fp.back() + 0.5);
  out.footprint = std::move(fp);
  out.sampling_fraction =
      static_cast<double>(out.profiled_accesses) / static_cast<double>(n);
  return out;
}

double footprint_max_error(const FootprintCurve& reference,
                           const FootprintCurve& sampled) {
  OCPS_CHECK(!reference.fp.empty() && !sampled.fp.empty(), "empty curve");
  double worst = 0.0;
  std::size_t limit = std::min(reference.fp.size(), sampled.fp.size());
  for (std::size_t w = 0; w < limit; ++w)
    worst = std::max(worst, std::abs(reference.fp[w] - sampled.fp[w]));
  return worst;
}

}  // namespace ocps
