#!/usr/bin/env bash
# End-to-end check of the observability layer: runs the controller with
# tracing on and validates the emitted Chrome trace and metrics JSON
# against a lightweight schema, then starts a serve daemon, drives it
# with trace-id-tagged queries, scrapes the live Prometheus endpoint,
# and validates the exposition format plus the cross-thread request
# trace trees. Intended as the CI observability job; usable locally the
# same way:
#
#   tools/run_observability_check.sh [build-dir]
#
# Exits non-zero when the CLI fails, an artifact is missing, or an
# artifact does not look like what docs/observability.md promises.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
ocps="$build_dir/tools/ocps"

if [[ ! -x "$ocps" ]]; then
  echo "building ocps CLI into $build_dir ..."
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j "$(nproc)" --target ocps_cli
fi

workdir="$(mktemp -d)"
serve_pid=""
fleet_pids=()
cleanup() {
  [[ -n "$serve_pid" ]] && kill "$serve_pid" 2> /dev/null || true
  for pid in ${fleet_pids[@]+"${fleet_pids[@]}"}; do
    kill "$pid" 2> /dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

# A small deterministic trace: two interleaved scans with different
# working sets, enough accesses for several controller epochs.
awk 'BEGIN { for (i = 0; i < 8000; i++) printf "%d\n", (i % 120) * 64 }' \
  > "$workdir/a.txt"
awk 'BEGIN { for (i = 0; i < 8000; i++) printf "%d\n", (i % 450) * 64 }' \
  > "$workdir/b.txt"

"$ocps" controller "$workdir/a.txt" "$workdir/b.txt" \
  --capacity 256 --epoch 2000 \
  --trace-out "$workdir/trace.json" \
  --metrics-out "$workdir/metrics.json"

for f in trace.json metrics.json; do
  [[ -s "$workdir/$f" ]] || { echo "FAIL: $f missing or empty"; exit 1; }
done

if command -v python3 > /dev/null; then
  python3 - "$workdir/trace.json" "$workdir/metrics.json" <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert isinstance(events, list) and events, "no trace events"
for e in events:
    for key in ("name", "cat", "ph", "pid", "tid", "ts"):
        assert key in e, f"event missing {key}: {e}"
    assert e["ph"] in ("X", "i"), f"unexpected phase {e['ph']}"
names = {e["name"] for e in events}
for stage in ("epoch", "estimate", "sanitize", "dp_solve", "apply"):
    assert stage in names, f"missing controller stage span '{stage}'"
spans = [e for e in events if e["ph"] == "X"]
assert all("dur" in e for e in spans), "span without duration"

metrics = json.load(open(sys.argv[2]))
for section in ("counters", "gauges", "histograms"):
    assert section in metrics, f"missing section {section}"
counters = metrics["counters"]
assert counters.get("controller.epochs", 0) > 0, "no epochs counted"
assert "controller.repairs" in counters, "missing health counter"
hist = metrics["histograms"].get("dp.solve_ns")
assert hist and hist["count"] > 0, "missing DP solve-latency histogram"
for bucket in hist["buckets"]:
    assert bucket["hi"] is None or bucket["hi"] > bucket["lo"]

print(f"OK: {len(events)} trace events, "
      f"{len(counters)} counters, "
      f"{counters['controller.epochs']} epochs traced")
EOF
else
  # Fallback schema check without python: look for the required keys.
  grep -q '"traceEvents"' "$workdir/trace.json"
  grep -q '"name":"epoch"' "$workdir/trace.json"
  grep -q '"name":"dp_solve"' "$workdir/trace.json"
  grep -q '"counters"' "$workdir/metrics.json"
  grep -q '"controller.epochs"' "$workdir/metrics.json"
  grep -q '"dp.solve_ns"' "$workdir/metrics.json"
  echo "OK (grep fallback): artifacts contain the required keys"
fi

# ---------------------------------------------------------------------------
# Decision quality under drift: a workload whose working set jumps
# mid-run. The epoch-k decision is made from epoch-k-1 behavior, so the
# first post-shift epochs mispredict, the |error| EWMA crosses the
# threshold, and exactly the edge-triggered alert rows promised by
# docs/observability.md must land in the audit trail.

awk 'BEGIN { for (i = 0; i < 16000; i++) {
       ws = (i < 8000) ? 150 : 900; printf "%d\n", (i % ws) * 64 } }' \
  > "$workdir/shift.txt"
"$ocps" controller "$workdir/a.txt" "$workdir/shift.txt" \
  --capacity 256 --epoch 2000 --drift-threshold 0.05 \
  --decisions-out "$workdir/decisions.json" > "$workdir/drift_run.txt"
grep -q 'drift alert #' "$workdir/drift_run.txt"
grep -q 'BREACHING' "$workdir/drift_run.txt"

if command -v python3 > /dev/null; then
  python3 - "$workdir/decisions.json" <<'EOF'
import json, sys

audit = json.load(open(sys.argv[1]))
decisions = {int(d["decision_id"]): d for d in audit["decisions"]}
assert decisions, "audit trail is empty"
assert all(d["reconciled"] for d in decisions.values()), \
    "controller left decisions unreconciled"
acc = audit["accuracy"]
assert acc["reconciled"] == acc["decisions_total"], acc
drift = audit["drift"]
assert drift["configured"] and drift["breaching"], drift
alerts = drift["alerts"]
assert alerts, "no drift alert despite the working-set shift"
for alert in alerts:
    rec = decisions.get(int(alert["decision_id"]))
    assert rec is not None, \
        f"alert names decision {alert['decision_id']} not in the trail"
    assert alert["ewma_abs_error"] > alert["threshold"], alert
    assert alert["tenant"] in rec["tenants"], alert
errors = [abs(e) for d in decisions.values()
          for e in (d.get("error") or []) if e is not None]
assert errors and max(errors) > drift["threshold"], \
    "no per-tenant error exceeds the breach threshold"
print(f"OK: {len(decisions)} audited decisions, "
      f"{len(alerts)} drift alert(s), worst |error| {max(errors):.4f}")
EOF
else
  grep -q '"alerts":\[{' "$workdir/decisions.json"
  grep -q '"breaching":true' "$workdir/decisions.json"
  echo "OK (grep fallback): drift alert present in the audit trail"
fi

# ---------------------------------------------------------------------------
# Live telemetry: a serve daemon under load, scraped over HTTP.

"$ocps" profile "$workdir/a.txt" --name a -o "$workdir/a.fp" > /dev/null
"$ocps" profile "$workdir/b.txt" --name b -o "$workdir/b.fp" > /dev/null

serve_log="$workdir/serve.log"
"$ocps" serve "$workdir/a.fp" "$workdir/b.fp" \
  --socket "$workdir/serve.sock" --capacity 256 \
  --metrics-port -1 --trace-out "$workdir/serve_trace.json" \
  --slo-p99-ms 500 --slo-availability 0.99 \
  > "$serve_log" 2>&1 &
serve_pid=$!

# The daemon binds an ephemeral metrics port and prints it at startup.
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's|^metrics on http://127.0.0.1:\([0-9]*\)/metrics$|\1|p' \
    "$serve_log")"
  [[ -n "$port" && -S "$workdir/serve.sock" ]] && break
  sleep 0.1
done
if [[ -z "$port" || ! -S "$workdir/serve.sock" ]]; then
  echo "FAIL: daemon did not come up"
  cat "$serve_log"
  exit 1
fi

# Traffic tagged with client trace ids, so the drain-time trace export
# must contain one multi-thread span tree per request.
for i in 1 2 3 4; do
  "$ocps" query --socket "$workdir/serve.sock" --op partition \
    --programs a,b --trace-id $((8000 + i)) > /dev/null
done
"$ocps" query --socket "$workdir/serve.sock" --op slowlog \
  > "$workdir/slowlog.json"
grep -q '"slowlog"' "$workdir/slowlog.json"

# Decision-quality plane: every partition answer minted a decision id;
# reconcile the first one so the prediction-error histogram and drift
# EWMA have samples before the scrape, then resolve the id both through
# the audit-trail listing and the `why` drill-down.
"$ocps" query --socket "$workdir/serve.sock" --op reconcile \
  --decision-id 1 --realized 0.4,0.6 > "$workdir/reconcile.json"
grep -q '"reconciled":true' "$workdir/reconcile.json"
grep -q '"error":\[' "$workdir/reconcile.json"
"$ocps" decisions --socket "$workdir/serve.sock" > "$workdir/decisions.txt"
grep -q '^1 ' "$workdir/decisions.txt"
grep -q 'accuracy: ' "$workdir/decisions.txt"
"$ocps" why 1 --socket "$workdir/serve.sock" > "$workdir/why.txt"
grep -q 'decision #1' "$workdir/why.txt"
grep -Eq '^a +' "$workdir/why.txt"   # per-tenant error rows resolve
grep -Eq '^b +' "$workdir/why.txt"
if ! "$ocps" why 9999 --socket "$workdir/serve.sock" \
  > "$workdir/why_missing.txt" 2>&1; then
  grep -q 'unknown decision id' "$workdir/why_missing.txt"
else
  echo "FAIL: why 9999 should have reported an unknown decision id"
  exit 1
fi

# Per-stage attribution: every slowlog row decomposes its latency into
# the five stages, and the stages must reconcile with the total.
check_slowlog_stages() {
  if command -v python3 > /dev/null; then
    python3 - "$1" <<'EOF'
import json, sys
stages = ("queue_wait_ms", "batch_linger_ms", "solve_ms",
          "serialize_ms", "network_ms")
rows = json.load(open(sys.argv[1]))["slowlog"]
assert rows, "slowlog is empty after tagged traffic"
for row in rows:
    for stage in stages:
        assert stage in row, f"slowlog row missing {stage}: {row}"
        assert row[stage] >= 0.0, f"negative stage time: {row}"
    total = sum(row[s] for s in stages)
    assert abs(total - row["latency_ms"]) < 1e-6, \
        f"stages sum {total} != latency {row['latency_ms']}: {row}"
print(f"OK: {len(rows)} slowlog rows with stage sums matching latency")
EOF
  else
    grep -q '"solve_ms"' "$1"
    grep -q '"queue_wait_ms"' "$1"
    echo "OK (grep fallback): slowlog rows carry per-stage fields"
  fi
}
check_slowlog_stages "$workdir/slowlog.json"

if command -v python3 > /dev/null; then
  python3 - "$port" "$workdir/metrics.prom" <<'EOF'
import sys, urllib.request
url = f"http://127.0.0.1:{sys.argv[1]}/metrics"
body = urllib.request.urlopen(url, timeout=10).read().decode()
open(sys.argv[2], "w").write(body)
print(f"scraped {len(body)} bytes from {url}")
EOF
  python3 "$repo_root/tools/check_prometheus_exposition.py" \
    "$workdir/metrics.prom" \
    serve_requests serve_request_latency_bucket serve_request_latency_p50 \
    serve_request_latency_p95 serve_request_latency_p99 \
    serve_request_latency_window_p50 serve_queue_depth obs_spans_dropped \
    serve_stage_queue_wait_bucket serve_stage_batch_linger_bucket \
    serve_stage_solve_bucket serve_stage_serialize_bucket \
    serve_stage_network_bucket serve_stage_solve_window_p99 \
    serve_slo_latency_target serve_slo_latency_burn_5m \
    serve_slo_latency_burn_1h serve_slo_availability_burn_5m \
    serve_slo_alerts_total \
    ocps_build_info dp_decisions dp_decision_total dp_decision_reconciled \
    dp_decision_mean_abs_error dp_decision_bias dp_drift_ewma_abs_error \
    dp_drift_breaching dp_drift_alerts_total dp_prediction_error_bucket \
    dp_prediction_error_window_p99
  # Tagged traffic must leave exemplars on the stage histograms.
  grep -Eq '^serve_stage_[a-z_]+_bucket\{le="[^"]*"\} [0-9]+ # \{trace_id="80[0-9]+"\}' \
    "$workdir/metrics.prom"
else
  "$ocps" stats --socket "$workdir/serve.sock" > "$workdir/metrics.prom"
  grep -q 'serve_request_latency_bucket{le="' "$workdir/metrics.prom"
  grep -q 'serve_request_latency_p50' "$workdir/metrics.prom"
  echo "OK (grep fallback): exposition contains the required series"
fi

# The socket-side views read the same registry.
"$ocps" stats --socket "$workdir/serve.sock" \
  | grep -q 'serve_request_latency_bucket{le="'
"$ocps" top --socket "$workdir/serve.sock" --iterations 1 --no-ansi \
  | grep -q "ocps top"

# Drain; the daemon writes its Chrome trace on the way out.
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""

if command -v python3 > /dev/null; then
  python3 - "$workdir/serve_trace.json" <<'EOF'
import collections, json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
assert events, "no daemon trace events"
threads_by_trace_id = collections.defaultdict(set)
for e in events:
    if e["ph"] == "X":
        assert "dur" in e, f"span without duration: {e}"
    tid = e.get("args", {}).get("trace_id")
    if tid:
        assert e.get("bind_id") == tid, f"bind_id != args.trace_id: {e}"
        threads_by_trace_id[tid].add(e["tid"])
linked = {t for t, tids in threads_by_trace_id.items() if len(tids) >= 2}
assert linked, ("no client trace id links spans across threads: "
                f"{dict(threads_by_trace_id)}")
print(f"OK: {len(events)} daemon trace events, "
      f"{len(linked)} request trees span multiple threads")
EOF
else
  grep -q '"bind_id":8001' "$workdir/serve_trace.json"
  echo "OK (grep fallback): daemon trace contains trace-id-linked spans"
fi

# ---------------------------------------------------------------------------
# Fleet: a router fronting two daemons. Tagged traffic through the router
# must stitch into one cross-process trace, and both tiers must answer
# the slo op with burn rates.

for i in 0 1; do
  "$ocps" serve "$workdir/a.fp" "$workdir/b.fp" \
    --socket "$workdir/backend$i.sock" --capacity 256 \
    --slo-p99-ms 500 --slo-availability 0.99 \
    > "$workdir/backend$i.log" 2>&1 &
  fleet_pids+=($!)
done
"$ocps" router --socket "$workdir/router.sock" \
  --backends "$workdir/backend0.sock,$workdir/backend1.sock" \
  --slo-p99-ms 500 --slo-availability 0.99 \
  > "$workdir/router.log" 2>&1 &
fleet_pids+=($!)

for _ in $(seq 1 100); do
  [[ -S "$workdir/router.sock" && -S "$workdir/backend0.sock" &&
     -S "$workdir/backend1.sock" ]] && break
  sleep 0.1
done
if [[ ! -S "$workdir/router.sock" ]]; then
  echo "FAIL: fleet did not come up"
  cat "$workdir/router.log" "$workdir"/backend?.log
  exit 1
fi

for i in 1 2 3 4; do
  "$ocps" query --socket "$workdir/router.sock" --op partition \
    --programs a,b --trace-id $((9100 + i)) > /dev/null
done

# Stitch the distributed trace for one tagged request. The router's
# forward span closes a hair after the client sees the response, so
# retry briefly until both tiers' spans are retained.
stitched="$workdir/stitched_trace.json"
stitch_ok=""
for _ in $(seq 1 50); do
  "$ocps" trace 9101 --socket "$workdir/router.sock" --out "$stitched" \
    > "$workdir/waterfall.txt" || true
  if grep -q 'serve.router.forward' "$workdir/waterfall.txt" &&
     grep -q 'serve.solve' "$workdir/waterfall.txt"; then
    stitch_ok=1
    break
  fi
  sleep 0.1
done
if [[ -z "$stitch_ok" ]]; then
  echo "FAIL: stitched trace never covered both tiers"
  cat "$workdir/waterfall.txt"
  exit 1
fi

if command -v python3 > /dev/null; then
  python3 - "$stitched" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
procs = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
names = set(procs.values())
assert "router" in names, f"no router process in stitched trace: {names}"
backends = {n for n in names if n.startswith("serve.")}
assert backends, f"no backend process in stitched trace: {names}"
spans = [e for e in events if e["ph"] in ("X", "i")]
assert spans, "stitched trace has no spans"
by_proc = {}
for e in spans:
    assert e["args"]["trace_id"] == 9101, f"wrong trace id: {e}"
    by_proc.setdefault(procs[e["pid"]], set()).add(e["name"])
assert "serve.router.forward" in by_proc.get("router", set()), \
    f"router spans missing forward: {by_proc}"
assert any("serve.solve" in by_proc.get(b, set()) for b in backends), \
    f"no backend solve span: {by_proc}"
print(f"OK: stitched trace covers {sorted(names)} "
      f"with {len(spans)} spans")
EOF
else
  grep -q '"name":"router"' "$stitched"
  grep -q '"name":"serve.router.forward"' "$stitched"
  grep -q '"name":"serve.solve"' "$stitched"
  echo "OK (grep fallback): stitched trace covers router and backend"
fi

# One-shot SLO views: both tiers are configured, so neither may answer
# "no SLOs configured", and both objectives must be listed.
"$ocps" slo --socket "$workdir/router.sock" > "$workdir/slo_router.txt"
grep -q 'latency' "$workdir/slo_router.txt"
grep -q 'availability' "$workdir/slo_router.txt"
"$ocps" slo --socket "$workdir/backend0.sock" > "$workdir/slo_backend.txt"
grep -q 'latency' "$workdir/slo_backend.txt"
for view in slo_router slo_backend; do
  if grep -q 'no SLOs configured' "$workdir/$view.txt"; then
    echo "FAIL: $view reports no SLOs configured"
    exit 1
  fi
done

# The backend that served the routed traffic must attribute its latency
# to stages just like the standalone daemon.
"$ocps" query --socket "$workdir/backend0.sock" --op partition \
  --programs a,b > /dev/null
"$ocps" query --socket "$workdir/backend0.sock" --op slowlog \
  > "$workdir/fleet_slowlog.json"
check_slowlog_stages "$workdir/fleet_slowlog.json"

# Keep the stitched trace when the caller wants an artifact (CI uploads
# it); the mktemp workdir is removed on exit.
if [[ -n "${OCPS_OBS_ARTIFACT_DIR:-}" ]]; then
  mkdir -p "$OCPS_OBS_ARTIFACT_DIR"
  cp "$stitched" "$workdir/waterfall.txt" "$OCPS_OBS_ARTIFACT_DIR/"
  echo "kept stitched trace in $OCPS_OBS_ARTIFACT_DIR"
fi

echo "observability check passed"
