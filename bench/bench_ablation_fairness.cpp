// Ablation: the optimal-vs-fair trade-off (§VI and the paper's closing
// discussion). Across co-run groups we compare, per solution: the group
// miss ratio (throughput), Jain fairness of speedups vs the equal
// partition, and how many members are made worse than each baseline
// ("losers"). Adds the minimax (QoS) objective the DP supports beyond the
// paper's two baselines.
#include <iostream>

#include "common.hpp"
#include "core/baselines.hpp"
#include "core/objectives.hpp"
#include "util/stats.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Evaluation eval = load_evaluation();
  const auto& models = eval.suite.models;
  const std::size_t capacity = eval.capacity;

  struct Agg {
    std::vector<double> group_mr, jain, worst_mr;
    std::vector<double> losers_vs_equal, losers_vs_natural;
  };
  const std::vector<Method> methods = {
      Method::kEqual, Method::kNatural, Method::kEqualBaseline,
      Method::kNaturalBaseline, Method::kOptimal, Method::kSttw};
  std::vector<Agg> agg(methods.size() + 1);  // +1 for minimax

  std::size_t stride =
      std::max<std::size_t>(1, eval.sweep.size() / 200);
  std::size_t used = 0;
  for (std::size_t gi = 0; gi < eval.sweep.size(); gi += stride) {
    const auto& g = eval.sweep[gi];
    std::vector<const ProgramModel*> ptrs;
    for (auto m : g.members) ptrs.push_back(&models[m]);
    CoRunGroup group(ptrs);
    ++used;

    const auto& equal_mr = g.of(Method::kEqual).per_program_mr;
    const auto& natural_mr = g.of(Method::kNatural).per_program_mr;

    auto account = [&](Agg& a, const std::vector<double>& mr,
                       double group_mr_value) {
      a.group_mr.push_back(group_mr_value);
      a.jain.push_back(jain_fairness_vs_equal(group, mr, capacity));
      double worst = 0.0;
      for (double v : mr) worst = std::max(worst, v);
      a.worst_mr.push_back(worst);
      a.losers_vs_equal.push_back(
          static_cast<double>(count_losers(mr, equal_mr, 1e-9)));
      a.losers_vs_natural.push_back(
          static_cast<double>(count_losers(mr, natural_mr, 1e-9)));
    };

    for (std::size_t mi = 0; mi < methods.size(); ++mi) {
      const auto& out = g.of(methods[mi]);
      account(agg[mi], out.per_program_mr, out.group_mr);
    }

    // Minimax (not part of the cached sweep).
    DpResult mm = optimize_minimax(group, capacity);
    std::vector<double> mm_mr;
    for (std::size_t k = 0; k < ptrs.size(); ++k)
      mm_mr.push_back(ptrs[k]->mrc.ratio(mm.alloc[k]));
    account(agg[methods.size()], mm_mr, group_miss_ratio(group, mm_mr));
  }

  std::cout << "=== Ablation: throughput vs fairness across solutions ("
            << used << " groups) ===\n\n";
  TextTable t({"solution", "avg group mr", "avg worst-member mr",
               "avg Jain (vs Equal)", "avg losers vs Equal",
               "avg losers vs Natural"});
  auto row = [&](const std::string& name, const Agg& a) {
    t.add_row({name, TextTable::num(mean_of(a.group_mr), 5),
               TextTable::num(mean_of(a.worst_mr), 5),
               TextTable::num(mean_of(a.jain), 4),
               TextTable::num(mean_of(a.losers_vs_equal), 2),
               TextTable::num(mean_of(a.losers_vs_natural), 2)});
  };
  for (std::size_t mi = 0; mi < methods.size(); ++mi)
    row(method_name(methods[mi]), agg[mi]);
  row("Minimax (QoS)", agg[methods.size()]);
  emit_table(t, "ablation_fairness");

  std::cout
      << "\nExpected trade-off (paper §VI-VII): Optimal has the lowest "
         "group mr but nonzero losers against both baselines (it is "
         "unfair); the two baseline optimizations have zero losers "
         "against their own baseline by construction; Equal-baseline "
         "recovers most of Optimal's gain over Equal, Natural-baseline "
         "recovers little over Natural; Minimax minimizes the worst "
         "member at a throughput cost.\n";
  return 0;
}
