#include "serve/client.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

namespace ocps::serve {

Result<Client> Client::connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    return Err(ErrorCode::kInvalidArgument,
               "socket path too long: " + socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0)
    return Err(ErrorCode::kIoError,
               std::string("socket(): ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return Err(ErrorCode::kIoError,
               "connect(" + socket_path + "): " + std::strerror(err));
  }
  return Ok(Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Result<Response> Client::call(const std::string& request_line,
                              std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Err(ErrorCode::kIoError, "client is not connected");

  std::string line = request_line;
  line.push_back('\n');
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    ssize_t n = ::send(fd_, data, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Err(ErrorCode::kIoError,
                 std::string("send(): ") + std::strerror(errno));
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }

  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string response = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      return parse_response(response);
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline)
      return Err(ErrorCode::kIoError, "timed out waiting for response");
    auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(std::max<long long>(
                                    1, wait.count())));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Err(ErrorCode::kIoError,
                 std::string("poll(): ") + std::strerror(errno));
    }
    if (ready == 0) continue;  // loop re-checks the deadline
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0)
      return Err(ErrorCode::kIoError, "daemon closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Err(ErrorCode::kIoError,
                 std::string("recv(): ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<Response> Client::call(const json::Value& request,
                              std::chrono::milliseconds timeout) {
  return call(request.dump(), timeout);
}

}  // namespace ocps::serve
