#include "cachesim/belady.hpp"

#include <set>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ocps {

BeladyResult simulate_belady(const Trace& trace, std::size_t capacity) {
  obs::ScopedSpan span("sim.belady", "cachesim");
  const std::size_t n = trace.length();
  OCPS_OBS_COUNT("sim.belady.accesses", n);
  BeladyResult result;
  result.accesses = n;
  if (n == 0) return result;
  if (capacity == 0) {
    result.misses = n;
    return result;
  }

  // next_use[t] = position of the next access to the same block, or n
  // (never again). Computed backwards.
  constexpr std::size_t kNever = ~static_cast<std::size_t>(0);
  std::vector<std::size_t> next_use(n);
  {
    std::unordered_map<Block, std::size_t> upcoming;
    upcoming.reserve(n / 4 + 16);
    for (std::size_t t = n; t-- > 0;) {
      auto [it, inserted] = upcoming.try_emplace(trace.accesses[t], kNever);
      next_use[t] = inserted ? kNever : it->second;
      it->second = t;
    }
  }

  // Resident set ordered by next use (largest first = eviction victim).
  // resident maps block -> its current next-use key in the set.
  std::set<std::pair<std::size_t, Block>, std::greater<>> by_next_use;
  std::unordered_map<Block, std::size_t> resident;
  resident.reserve(capacity * 2 + 16);

  for (std::size_t t = 0; t < n; ++t) {
    Block b = trace.accesses[t];
    auto it = resident.find(b);
    if (it != resident.end()) {
      // Hit: reschedule the block at its new next use.
      by_next_use.erase({it->second, b});
      it->second = next_use[t];
      by_next_use.emplace(next_use[t], b);
      continue;
    }
    ++result.misses;
    if (next_use[t] == kNever) continue;  // dead block: never cache it
    if (resident.size() >= capacity) {
      auto victim = by_next_use.begin();  // farthest next use
      // OPT refinement: if the incoming block's next use is farther than
      // every resident's, bypass instead of evicting.
      if (victim->first <= next_use[t]) continue;
      resident.erase(victim->second);
      by_next_use.erase(victim);
    }
    resident.emplace(b, next_use[t]);
    by_next_use.emplace(next_use[t], b);
  }
  return result;
}

}  // namespace ocps
