// Daemon implementation. Threading model (see server.hpp for the tour):
//
//   accept thread  --> one reader thread per connection --> bounded queue
//                                                        --> batching thread
//
// Every blocking wait in the daemon is a poll()/wait_for() loop of at
// most ~50 ms that re-checks stopping_, so request_stop() can be a pure
// atomic store (and therefore safe to call from a signal handler) while
// shutdown latency stays bounded. The drain ordering in stop() is what
// guarantees zero in-flight loss: producers are joined before
// producers_done_ lets the batching thread exit, so every admitted
// request is answered before the last thread dies.

#include "serve/server.hpp"

#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "combinatorics/enumerate.hpp"
#include "core/batch_engine.hpp"
#include "core/group_sweep.hpp"
#include "locality/footprint_io.hpp"
#include "locality/sanitize.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "runtime/fault_injection.hpp"
#include "serve/socket_util.hpp"
#include "util/check.hpp"

namespace ocps::serve {

namespace {

using Clock = std::chrono::steady_clock;

// A connection writing a line this long without a newline is not
// speaking the protocol; cut it off instead of buffering forever.
constexpr std::size_t kMaxLineBytes = 1 << 20;

// Poll interval bounding how long any thread can miss stopping_.
constexpr int kPollMs = 50;

double ms_since(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

// Stage names of the per-request latency decomposition, in pipeline
// order. Indexes match Telemetry::stage() and SlowEntry::stage_ms.
constexpr std::size_t kStageCount = 5;
constexpr const char* kStageNames[kStageCount] = {
    "queue_wait", "batch_linger", "solve", "serialize", "network"};

}  // namespace

// ---------------------------------------------------------------------------
// Profile sets.

std::size_t ProfileSet::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < models.size(); ++i)
    if (models[i].name == name) return i;
  return npos;
}

std::shared_ptr<const ProfileSet> make_profile_set(
    std::vector<ProgramModel> models, std::size_t capacity,
    std::uint64_t version) {
  auto set = std::make_shared<ProfileSet>();
  set->models = std::move(models);
  set->unit_costs = precompute_unit_cost_matrix(set->models, capacity);
  set->version = version;
  return set;
}

Result<ProgramModel> load_profile(const std::string& path,
                                  std::size_t capacity) {
  try {
    FootprintFile file = load_footprint_file(path);
    if (!std::isfinite(file.access_rate) || file.access_rate <= 0.0)
      return Err(ErrorCode::kCorruptData,
                 path + ": access rate must be positive and finite");
    RepairReport report;
    Result<PiecewiseLinear> knots = sanitize_footprint_knots(
        file.footprint.xs(), file.footprint.ys(), &report);
    if (!knots.ok())
      return Err(knots.error().code,
                 path + ": " + knots.error().message);
    file.footprint = std::move(knots.value());
    return Ok(model_from_footprint_file(file, capacity));
  } catch (const CheckError& e) {
    return Err(ErrorCode::kCorruptData, path + ": " + e.what());
  }
}

// ---------------------------------------------------------------------------
// Server plumbing types.

struct Server::AtomicCounters {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> deadline_exceeded{0};
  std::atomic<std::uint64_t> malformed{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> reloads{0};
  std::atomic<std::uint64_t> reload_rejected{0};
};

struct Server::Connection {
  int fd = -1;
  std::mutex write_mutex;  ///< reader (errors) and batcher both write
  const NetFaultInjector* faults = nullptr;  ///< chaos seam (may be null)
  std::chrono::milliseconds io_timeout{5000};
  /// A write that timed out or hit a peer error poisons the connection:
  /// further responses would interleave into a half-written line, so
  /// both the reader and later writers give up on it instead.
  std::atomic<bool> broken{false};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  // Appends the newline and writes the whole line. Accepted fds are
  // nonblocking; send_all retries EINTR, continues short writes, and
  // polls POLLOUT on EAGAIN bounded by io_timeout. MSG_NOSIGNAL inside:
  // a client that hung up must cost an error return, not a SIGPIPE.
  bool send_line(std::string line) {
    line.push_back('\n');
    std::lock_guard<std::mutex> guard(write_mutex);
    if (broken.load(std::memory_order_relaxed)) return false;

    NetFaultInjector::WriteFault fault = NetFaultInjector::WriteFault::kNone;
    if (faults) fault = faults->write_fault();
    if (fault == NetFaultInjector::WriteFault::kStall)
      std::this_thread::sleep_for(faults->stall_duration());
    if (fault == NetFaultInjector::WriteFault::kReset) {
      // Cut the response mid-line and tear the connection down: the
      // peer reads a partial frame and then EOF, exactly what a crashed
      // daemon looks like from the other side.
      (void)send_all(fd, line.data(), line.size() / 2, io_timeout);
      ::shutdown(fd, SHUT_RDWR);
      broken.store(true, std::memory_order_relaxed);
      return false;
    }
    if (fault == NetFaultInjector::WriteFault::kTrickle) {
      // Dribble the head out a byte at a time so the peer exercises its
      // partial-read reassembly; the tail goes out normally.
      std::size_t head = std::min<std::size_t>(line.size(), 32);
      for (std::size_t i = 0; i < head; ++i) {
        if (!send_all(fd, line.data() + i, 1, io_timeout)) {
          broken.store(true, std::memory_order_relaxed);
          return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (!send_all(fd, line.data() + head, line.size() - head,
                    io_timeout)) {
        broken.store(true, std::memory_order_relaxed);
        return false;
      }
      return true;
    }

    if (!send_all(fd, line.data(), line.size(), io_timeout)) {
      broken.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
};

// Daemon-side telemetry that is not a plain registry metric: the sliding
// latency window behind the `serve.request_latency.window.*` gauges and
// the bounded slow-request log behind the `slowlog` op. The log keeps the
// K slowest requests seen so far (evicting the fastest entry), so a 504
// spike hours ago stays attributable to its trace_id.
struct Server::Telemetry {
  struct SlowEntry {
    std::uint64_t trace_id = 0;
    std::int64_t id = 0;
    Op op = Op::kPartition;
    std::string objective;
    std::size_t group = 0;  ///< partition: member count; sweep: group_size
    double latency_ms = 0.0;
    double deadline_slack_ms = 0.0;  ///< NaN when the request had no deadline
    bool ok = false;
    /// Per-stage decomposition of latency_ms, indexed by kStageNames.
    /// The stages sum to latency_ms (respond() computes queue_wait as
    /// the remainder, so the identity holds by construction).
    double stage_ms[kStageCount] = {0.0, 0.0, 0.0, 0.0, 0.0};
  };

  obs::WindowedHistogram window;
  /// Per-stage sliding windows behind serve.stage.<name>.window.*
  /// gauges. Same window as the end-to-end one.
  obs::WindowedHistogram stage_queue_wait;
  obs::WindowedHistogram stage_batch_linger;
  obs::WindowedHistogram stage_solve;
  obs::WindowedHistogram stage_serialize;
  obs::WindowedHistogram stage_network;
  /// Sliding window of |prediction error| in ppm, fed by `reconcile`;
  /// behind the dp.prediction_error.window.* gauges.
  obs::WindowedHistogram window_prediction_error;
  std::mutex mu;
  std::vector<SlowEntry> entries;
  std::size_t capacity;

  Telemetry(unsigned window_s, std::size_t cap)
      : window(window_s),
        stage_queue_wait(window_s),
        stage_batch_linger(window_s),
        stage_solve(window_s),
        stage_serialize(window_s),
        stage_network(window_s),
        window_prediction_error(window_s),
        capacity(cap) {
    entries.reserve(cap);
  }

  obs::WindowedHistogram& stage(std::size_t i) {
    switch (i) {
      case 0: return stage_queue_wait;
      case 1: return stage_batch_linger;
      case 2: return stage_solve;
      case 3: return stage_serialize;
      default: return stage_network;
    }
  }

  void record(SlowEntry e) {
    if (capacity == 0) return;
    std::lock_guard<std::mutex> lock(mu);
    if (entries.size() < capacity) {
      entries.push_back(std::move(e));
      return;
    }
    std::size_t min_i = 0;  // K is small; a linear scan beats a heap here
    for (std::size_t i = 1; i < entries.size(); ++i)
      if (entries[i].latency_ms < entries[min_i].latency_ms) min_i = i;
    if (e.latency_ms > entries[min_i].latency_ms)
      entries[min_i] = std::move(e);
  }

  std::vector<SlowEntry> sorted() {
    std::vector<SlowEntry> out;
    {
      std::lock_guard<std::mutex> lock(mu);
      out = entries;
    }
    std::sort(out.begin(), out.end(),
              [](const SlowEntry& a, const SlowEntry& b) {
                return a.latency_ms > b.latency_ms;
              });
    return out;
  }
};

// Warm DP state owned by the batching thread: one prefix-sharing solver
// per objective, refreshed only when the profile version or the
// requested capacity changes. Holding the shared_ptr keeps the profile
// set (and thus the cost rows the solver points into) alive across
// batches even after a reload swaps the served set.
//
// A hot reload that keeps the table shape (same program count and
// capacity) goes through resolve_incremental: cached DP layers whose
// cost rows are bit-identical in the new set survive, so reloading one
// of N profiles costs O(suffix) layers on the next solve instead of a
// cold solver (obs: serve.solver_incremental_refreshes /
// dp.layers_invalidated).
struct Server::SolverState {
  struct Entry {
    PrefixDpSolver solver;
    std::shared_ptr<const ProfileSet> set;
    std::size_t capacity = 0;
  };
  Entry sum;
  Entry max;
  DpResult dp_buf;

  PrefixDpSolver& ensure(const std::shared_ptr<const ProfileSet>& set,
                         std::size_t capacity, DpObjective objective) {
    Entry& e = objective == DpObjective::kMaxCost ? max : sum;
    if (e.set != set || e.capacity != capacity) {
      const CostMatrixView view = set->unit_costs.view();
      const bool same_shape =
          e.set != nullptr && e.capacity == capacity &&
          e.set->unit_costs.view().rows() == view.rows() &&
          e.set->unit_costs.view().cols() == view.cols();
      if (same_shape) {
        e.solver.resolve_incremental(view);
        OCPS_OBS_COUNT("serve.solver_incremental_refreshes", 1);
      } else {
        e.solver.configure(view, capacity, objective);
      }
      e.set = set;
      e.capacity = capacity;
    }
    return e.solver;
  }
};

// ---------------------------------------------------------------------------
// Lifecycle.

Server::Server(ServeConfig config, std::vector<ProgramModel> models)
    : config_(std::move(config)),
      counters_(std::make_unique<AtomicCounters>()) {
  OCPS_CHECK(!config_.socket_path.empty() || !config_.listen_address.empty(),
             "serve: a listener is required (socket path and/or TCP address)");
  OCPS_CHECK(config_.capacity > 0, "serve: capacity must be positive");
  OCPS_CHECK(config_.max_batch > 0, "serve: max_batch must be positive");
  OCPS_CHECK(config_.queue_capacity > 0,
             "serve: queue_capacity must be positive");
  OCPS_CHECK(config_.linger.count() >= 0, "serve: linger must be >= 0");
  OCPS_CHECK(config_.default_deadline_ms >= 0.0 &&
                 std::isfinite(config_.default_deadline_ms),
             "serve: default_deadline_ms must be finite and >= 0");
  OCPS_CHECK(config_.metrics_port >= -1 && config_.metrics_port <= 65535,
             "serve: metrics_port must be in [-1, 65535]");
  OCPS_CHECK(config_.latency_window_s > 0,
             "serve: latency_window_s must be positive");
  OCPS_CHECK(config_.max_connections > 0,
             "serve: max_connections must be positive");
  OCPS_CHECK(config_.io_timeout.count() > 0,
             "serve: io_timeout must be positive");
  OCPS_CHECK(config_.slo_p99_ms >= 0.0 && std::isfinite(config_.slo_p99_ms),
             "serve: slo_p99_ms must be finite and >= 0");
  OCPS_CHECK(config_.slo_availability >= 0.0 &&
                 config_.slo_availability < 1.0,
             "serve: slo_availability must be in [0, 1)");
  OCPS_CHECK(config_.decision_log_capacity > 0,
             "serve: decision_log_capacity must be positive");
  OCPS_CHECK(config_.drift_alpha > 0.0 && config_.drift_alpha <= 1.0,
             "serve: drift_alpha must be in (0, 1]");
  OCPS_CHECK(config_.drift_threshold >= 0.0 &&
                 std::isfinite(config_.drift_threshold),
             "serve: drift_threshold must be finite and >= 0");
  telemetry_ = std::make_unique<Telemetry>(config_.latency_window_s,
                                           config_.slowlog_capacity);
  obs::SloConfig slo_config;
  slo_config.p99_ms = config_.slo_p99_ms;
  slo_config.availability = config_.slo_availability;
  slo_ = std::make_unique<obs::SloTracker>(slo_config);
  decisions_ = std::make_unique<obs::DecisionLog>(
      config_.decision_log_capacity);
  obs::DriftConfig drift_config;
  drift_config.alpha = config_.drift_alpha;
  drift_config.threshold = config_.drift_threshold;
  drift_ = std::make_unique<obs::DriftDetector>(drift_config);
  profiles_ = make_profile_set(std::move(models), config_.capacity, 1);
  last_decision_version_.store(profiles_->version);
}

Server::~Server() { stop(); }

Result<bool> Server::start() {
  OCPS_CHECK(!started_.exchange(true), "Server::start called twice");

  // Tears down every listener claimed so far; each failure path below
  // must leave no fd or lock file behind.
  auto teardown = [&] {
    if (http_fd_ >= 0) {
      ::close(http_fd_);
      http_fd_ = -1;
    }
    if (tcp_fd_ >= 0) {
      ::close(tcp_fd_);
      tcp_fd_ = -1;
    }
    UnixListener claimed{listen_fd_, lock_fd_};
    release_unix_socket(claimed, config_.socket_path);
    listen_fd_ = -1;
    lock_fd_ = -1;
  };

  // Race-safe claim of the Unix socket path (flock + connect probe; see
  // socket_util.hpp) — a clear "in use by live daemon" error instead of
  // two daemons silently stealing each other's socket. TCP-only daemons
  // skip it entirely.
  if (!config_.socket_path.empty()) {
    Result<UnixListener> claimed = claim_unix_socket(config_.socket_path, 64);
    if (!claimed.ok()) return claimed.error();
    listen_fd_ = claimed.value().fd;
    lock_fd_ = claimed.value().lock_fd;
  }

  // Optional TCP request listener sharing the same protocol + pipeline.
  if (!config_.listen_address.empty()) {
    Result<Endpoint> ep = parse_endpoint(config_.listen_address);
    if (!ep.ok()) {
      teardown();
      return ep.error();
    }
    if (!ep.value().is_tcp()) {
      teardown();
      return Err(ErrorCode::kInvalidArgument,
                 "--listen must be host:port, got: " +
                     config_.listen_address);
    }
    Result<int> fd = listen_tcp(ep.value().host, ep.value().port, 64);
    if (!fd.ok()) {
      teardown();
      return fd.error();
    }
    tcp_fd_ = fd.value();
    Result<std::uint16_t> port = bound_tcp_port(tcp_fd_);
    if (!port.ok()) {
      teardown();
      return port.error();
    }
    tcp_port_.store(port.value());
  }

  // Optional Prometheus exposition listener, loopback only. -1 asks the
  // kernel for an ephemeral port (tests); the bound port is read back.
  if (config_.metrics_port != 0) {
    auto fail = [&](const std::string& what) -> Result<bool> {
      int err = errno;
      teardown();
      return Err(ErrorCode::kIoError, what + ": " + std::strerror(err));
    };
    http_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (http_fd_ < 0) return fail("metrics socket()");
    int one = 1;
    ::setsockopt(http_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in http_addr{};
    http_addr.sin_family = AF_INET;
    http_addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    http_addr.sin_port =
        htons(config_.metrics_port > 0
                  ? static_cast<std::uint16_t>(config_.metrics_port)
                  : 0);
    if (::bind(http_fd_, reinterpret_cast<sockaddr*>(&http_addr),
               sizeof(http_addr)) != 0)
      return fail("metrics bind(127.0.0.1:" +
                  std::to_string(config_.metrics_port) + ")");
    if (::listen(http_fd_, 16) != 0) return fail("metrics listen()");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(http_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0)
      return fail("metrics getsockname()");
    http_port_.store(ntohs(bound.sin_port));
  }

  // Eager registration: the per-stage histograms and SLO gauges exist
  // from the first scrape (zero-valued before traffic) so dashboards and
  // the CI exposition checker see a stable series set.
  if (obs::enabled()) {
    for (const char* stage : kStageNames)
      obs::histogram(std::string("serve.stage.") + stage);
    obs::histogram("dp.prediction_error");
    obs::publish_decision_metrics(*decisions_, drift_.get(),
                                  &telemetry_->window_prediction_error,
                                  obs::DecisionLog::steady_now_ns());
    if (slo_->configured()) refresh_latency_gauges();
  }

  started_at_ = Clock::now();
  accept_thread_ = std::thread([this] { accept_loop(); });
  batch_thread_ = std::thread([this] { batch_loop(); });
  if (http_fd_ >= 0) http_thread_ = std::thread([this] { http_loop(); });
  return Ok(true);
}

void Server::stop() {
  stopping_.store(true);
  if (!started_.load() || joined_.exchange(true)) return;

  // 1. No new connections (the metrics listener is independent of the
  // request pipeline, so it goes down in the same phase).
  if (accept_thread_.joinable()) accept_thread_.join();
  if (http_thread_.joinable()) http_thread_.join();
  if (http_fd_ >= 0) {
    ::close(http_fd_);
    http_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  UnixListener claimed{listen_fd_, lock_fd_};
  release_unix_socket(claimed, config_.socket_path);
  listen_fd_ = -1;
  lock_fd_ = -1;

  // 2. No new requests: join every reader (each notices stopping_ within
  // one poll interval and finishes the line it was handling).
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> guard(conns_mutex_);
    readers.swap(reader_threads_);
  }
  for (std::thread& t : readers)
    if (t.joinable()) t.join();

  // 3. Only now may the batching thread exit on empty — everything that
  // made it into the queue gets answered first (zero in-flight loss).
  producers_done_.store(true);
  queue_cv_.notify_all();
  if (batch_thread_.joinable()) batch_thread_.join();

  std::lock_guard<std::mutex> guard(conns_mutex_);
  conns_.clear();
}

void Server::wait_until_stop_requested() const {
  while (!stopping_.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
}

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> guard(queue_mutex_);
  return queue_.size();
}

std::uint64_t Server::profile_version() const {
  return profiles()->version;
}

Server::Counters Server::counters() const {
  Counters c;
  c.requests = counters_->requests.load();
  c.answered = counters_->answered.load();
  c.shed = counters_->shed.load();
  c.deadline_exceeded = counters_->deadline_exceeded.load();
  c.malformed = counters_->malformed.load();
  c.batches = counters_->batches.load();
  c.reloads = counters_->reloads.load();
  c.reload_rejected = counters_->reload_rejected.load();
  return c;
}

std::shared_ptr<const ProfileSet> Server::profiles() const {
  std::lock_guard<std::mutex> guard(profiles_mutex_);
  return profiles_;
}

// ---------------------------------------------------------------------------
// Socket threads.

void Server::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfds[2];
    nfds_t nfds = 0;
    if (listen_fd_ >= 0) pfds[nfds++] = {listen_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) pfds[nfds++] = {tcp_fd_, POLLIN, 0};
    int ready = ::poll(pfds, nfds, kPollMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    for (nfds_t i = 0; i < nfds; ++i) {
      if (!(pfds[i].revents & POLLIN)) continue;
      // Accepted fds are nonblocking: every read/write below goes
      // through a poll-bounded loop, so a stalled peer can never wedge
      // a daemon thread in the kernel.
      int fd = ::accept4(pfds[i].fd, nullptr, nullptr,
                         SOCK_CLOEXEC | SOCK_NONBLOCK);
      if (fd < 0) continue;
      if (config_.net_faults && config_.net_faults->fail_accept()) {
        // Injected accept failure: the peer sees an immediate EOF, as
        // if the daemon ran out of fds and dropped the connection.
        ::close(fd);
        continue;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conn->faults = config_.net_faults;
      conn->io_timeout = config_.io_timeout;
      std::lock_guard<std::mutex> guard(conns_mutex_);
      if (stopping_.load()) continue;  // conn dtor closes the fd
      if (conns_.size() >= config_.max_connections) {
        // Explicit refusal beats letting the backlog time out: the
        // client gets a line it can parse and retry against a replica.
        OCPS_OBS_COUNT("serve.conn_limit_rejected", 1);
        conn->send_line(error_response(
            0, kCodeShuttingDown,
            "connection limit reached (" +
                std::to_string(config_.max_connections) + ")"));
        continue;  // conn dtor closes the fd
      }
      conns_.push_back(conn);
      reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
    }
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  Clock::time_point last_progress = Clock::now();
  while (!stopping_.load()) {
    if (conn->broken.load(std::memory_order_relaxed)) break;
    // A partial line that stops growing is a stalled or byte-trickling
    // peer; answer 400 and drop it rather than buffer a frame forever.
    if (!buffer.empty() &&
        Clock::now() - last_progress > config_.io_timeout) {
      counters_->malformed.fetch_add(1);
      OCPS_OBS_COUNT("serve.malformed", 1);
      conn->send_line(error_response(0, kCodeBadRequest,
                                     "request line stalled mid-frame"));
      break;
    }
    pollfd pfd{conn->fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;
    char chunk[4096];
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // client hung up
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    last_progress = Clock::now();
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(conn, line);
    }
    if (buffer.size() > kMaxLineBytes) {
      counters_->malformed.fetch_add(1);
      OCPS_OBS_COUNT("serve.malformed", 1);
      conn->send_line(
          error_response(0, kCodeBadRequest, "request line too long"));
      break;
    }
  }
  // Drop this connection from the server's set so a long-lived daemon
  // doesn't accumulate dead fds; Pending entries still holding the
  // shared_ptr keep the fd alive until their responses are written.
  std::lock_guard<std::mutex> guard(conns_mutex_);
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
               conns_.end());
}

// ---------------------------------------------------------------------------
// Prometheus HTTP listener. One short-lived connection per scrape,
// handled serially: a scrape every few seconds is the design load, and a
// stalled scraper can block no one but the next scraper.

void Server::http_loop() {
  while (!stopping_.load()) {
    pollfd pfd{http_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;
    int fd = ::accept4(http_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    // Shared responder (socket_util): same surface as the router's.
    handle_metrics_http_client(
        fd, [this] { return stopping_.load(); },
        [this] { refresh_latency_gauges(); });
    ::close(fd);
  }
}

// ---------------------------------------------------------------------------
// Request admission.

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  counters_->requests.fetch_add(1);
  OCPS_OBS_COUNT("serve.requests", 1);

  // Admission span on the reader thread; tagged with the client's
  // trace_id so the export links it to the solve span on the batching
  // thread into one per-request tree.
  obs::ScopedSpan admit("serve.admit", "serve");

  Result<Request> parsed = parse_request(line);
  if (!parsed.ok()) {
    counters_->malformed.fetch_add(1);
    OCPS_OBS_COUNT("serve.malformed", 1);
    conn->send_line(
        error_response(0, kCodeBadRequest, parsed.error().message));
    return;
  }
  Request req = std::move(parsed.value());
  admit.set_trace_id(req.trace_id);
  admit.set_arg("id", static_cast<std::uint64_t>(req.id));
  // Router-forwarded requests carry a trace context; record the parent
  // span nonce so a stitched fleet trace can pair this daemon's spans
  // with the router attempt that forwarded them.
  if (req.hop > 0)
    obs::instant_event("serve.hop", "serve", "parent_span", req.parent_span,
                       req.trace_id);

  if (req.capacity > config_.capacity) {
    counters_->malformed.fetch_add(1);
    OCPS_OBS_COUNT("serve.malformed", 1);
    conn->send_line(error_response(
        req.id, kCodeBadRequest,
        "capacity " + std::to_string(req.capacity) +
            " exceeds server capacity " + std::to_string(config_.capacity)));
    return;
  }

  switch (req.op) {
    case Op::kHealth:
      handle_health(conn, req);
      return;
    case Op::kReload:
      handle_reload(conn, req);
      return;
    case Op::kMetrics:
      handle_metrics(conn, req);
      return;
    case Op::kSlowlog:
      handle_slowlog(conn, req);
      return;
    case Op::kTrace:
      handle_trace(conn, req);
      return;
    case Op::kSlo:
      handle_slo(conn, req);
      return;
    case Op::kDecisions:
      handle_decisions(conn, req);
      return;
    case Op::kReconcile:
      handle_reconcile(conn, req);
      return;
    case Op::kPartition:
    case Op::kSweep:
      break;
  }

  if (stopping_.load()) {
    conn->send_line(
        error_response(req.id, kCodeShuttingDown, "daemon is draining"));
    return;
  }

  Pending p;
  p.req = std::move(req);
  p.conn = conn;
  p.enqueued = Clock::now();
  double deadline_ms = p.req.deadline_ms > 0.0 ? p.req.deadline_ms
                                               : config_.default_deadline_ms;
  p.deadline = deadline_ms > 0.0
                   ? p.enqueued +
                         std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 deadline_ms))
                   : Clock::time_point::max();

  bool admitted = false;
  {
    std::lock_guard<std::mutex> guard(queue_mutex_);
    if (queue_.size() < config_.queue_capacity) {
      queue_.push_back(std::move(p));
      OCPS_OBS_GAUGE("serve.queue_depth",
                     static_cast<double>(queue_.size()));
      admitted = true;
    }
  }
  if (admitted) {
    queue_cv_.notify_all();
  } else {
    counters_->shed.fetch_add(1);
    OCPS_OBS_COUNT("serve.shed", 1);
    conn->send_line(error_response(p.req.id, kCodeQueueFull, "queue full"));
  }
}

void Server::handle_health(const std::shared_ptr<Connection>& conn,
                           const Request& req) {
  auto set = profiles();
  json::Value body;
  body.set("uptime_ms", json::Value(ms_since(started_at_, Clock::now())));
  body.set("version", json::Value(static_cast<double>(set->version)));
  body.set("capacity", json::Value(static_cast<double>(config_.capacity)));
  json::Array names;
  names.reserve(set->models.size());
  for (const ProgramModel& m : set->models) names.emplace_back(m.name);
  body.set("programs", json::Value(std::move(names)));
  body.set("queue_depth",
           json::Value(static_cast<double>(queue_depth())));
  body.set("draining", json::Value(stopping_.load()));
  Counters c = counters();
  json::Value cnt;
  cnt.set("requests", json::Value(static_cast<double>(c.requests)));
  cnt.set("answered", json::Value(static_cast<double>(c.answered)));
  cnt.set("shed", json::Value(static_cast<double>(c.shed)));
  cnt.set("deadline_exceeded",
          json::Value(static_cast<double>(c.deadline_exceeded)));
  cnt.set("malformed", json::Value(static_cast<double>(c.malformed)));
  cnt.set("batches", json::Value(static_cast<double>(c.batches)));
  cnt.set("reloads", json::Value(static_cast<double>(c.reloads)));
  cnt.set("reload_rejected",
          json::Value(static_cast<double>(c.reload_rejected)));
  body.set("counters", std::move(cnt));
  conn->send_line(ok_response(req.id, std::move(body)));
}

void Server::handle_reload(const std::shared_ptr<Connection>& conn,
                           const Request& req) {
  std::lock_guard<std::mutex> reload_guard(reload_mutex_);

  auto reject = [&](const std::string& why) {
    counters_->reload_rejected.fetch_add(1);
    OCPS_OBS_COUNT("serve.reload_rejected", 1);
    conn->send_line(error_response(
        req.id, kCodeUnprocessable,
        "reload rejected, keeping profile set v" +
            std::to_string(profile_version()) + ": " + why));
  };

  // Build the complete candidate set first; nothing is swapped until
  // every file loads and sanitizes.
  std::vector<ProgramModel> models;
  models.reserve(req.paths.size());
  std::unordered_set<std::string> names;
  for (const std::string& path : req.paths) {
    Result<ProgramModel> model = load_profile(path, config_.capacity);
    if (!model.ok()) {
      reject(model.error().message);
      return;
    }
    if (!names.insert(model.value().name).second) {
      reject("duplicate program name \"" + model.value().name + "\"");
      return;
    }
    models.push_back(std::move(model.value()));
  }

  std::uint64_t next_version = profile_version() + 1;
  auto set = make_profile_set(std::move(models), config_.capacity,
                              next_version);
  {
    std::lock_guard<std::mutex> guard(profiles_mutex_);
    profiles_ = std::move(set);
  }
  counters_->reloads.fetch_add(1);
  OCPS_OBS_COUNT("serve.reloads", 1);
  json::Value body;
  body.set("version", json::Value(static_cast<double>(next_version)));
  body.set("programs",
           json::Value(static_cast<double>(req.paths.size())));
  conn->send_line(ok_response(req.id, std::move(body)));
}

// ---------------------------------------------------------------------------
// Telemetry ops (answered inline, like health).

void Server::refresh_latency_gauges() {
  obs::MetricsSnapshot snap = obs::metrics_snapshot();
  const obs::HistogramSnapshot* lifetime = nullptr;
  for (const auto& h : snap.histograms)
    if (h.name == "serve.request_latency") {
      lifetime = &h;
      break;
    }
  obs::HistogramSnapshot empty;
  const obs::HistogramSnapshot& life = lifetime ? *lifetime : empty;
  obs::HistogramSnapshot window =
      telemetry_->window.snapshot("serve.request_latency.window");

  // Derived gauges exist from the first scrape (value 0 before traffic)
  // so dashboards and the CI format checker see a stable series set.
  static constexpr double kQ[] = {0.5, 0.95, 0.99};
  static constexpr const char* kName[] = {"p50", "p95", "p99"};
  for (std::size_t i = 0; i < 3; ++i) {
    obs::gauge(std::string("serve.request_latency.") + kName[i])
        .set(obs::histogram_quantile(life, kQ[i]));
    obs::gauge(std::string("serve.request_latency.window.") + kName[i])
        .set(obs::histogram_quantile(window, kQ[i]));
  }
  obs::gauge("serve.latency_window_s")
      .set(static_cast<double>(config_.latency_window_s));

  // Per-stage windowed percentiles (the `ocps top` stage columns).
  for (std::size_t i = 0; i < kStageCount; ++i) {
    std::string base = std::string("serve.stage.") + kStageNames[i];
    obs::HistogramSnapshot stage_window =
        telemetry_->stage(i).snapshot(base + ".window");
    obs::gauge(base + ".window.p50")
        .set(obs::histogram_quantile(stage_window, 0.5));
    obs::gauge(base + ".window.p99")
        .set(obs::histogram_quantile(stage_window, 0.99));
  }

  // SLO burn rates, recomputed per scrape like the quantile gauges.
  if (slo_->configured()) {
    obs::SloTracker::Status slo =
        slo_->status(obs::SloTracker::steady_now_ns());
    for (const obs::SloTracker::Objective& o : slo.objectives) {
      std::string base = "serve.slo." + o.name;
      obs::gauge(base + ".target").set(o.target);
      obs::gauge(base + ".burn_5m").set(o.burn_short);
      obs::gauge(base + ".burn_1h").set(o.burn_long);
      obs::gauge(base + ".breaching").set(o.breaching ? 1.0 : 0.0);
    }
    obs::gauge("serve.slo.alerts_total")
        .set(static_cast<double>(slo.alerts_total));
  }

  // Decision-quality gauges (dp.decision.* / dp.drift.*), same
  // recompute-per-scrape contract as the quantile gauges above.
  obs::publish_decision_metrics(*decisions_, drift_.get(),
                                &telemetry_->window_prediction_error,
                                obs::DecisionLog::steady_now_ns());
}

void Server::handle_metrics(const std::shared_ptr<Connection>& conn,
                            const Request& req) {
  if (!obs::enabled()) {
    conn->send_line(error_response(
        req.id, kCodeObsDisabled,
        "observability disabled (compiled out or OCPS_OBS unset)"));
    return;
  }
  refresh_latency_gauges();
  std::ostringstream prom;
  obs::write_metrics_prometheus(prom);
  std::ostringstream js;
  obs::write_metrics_json(js);
  Result<json::Value> metrics = json::parse(js.str());

  json::Value body;
  body.set("version",
           json::Value(static_cast<double>(profile_version())));
  body.set("uptime_ms", json::Value(ms_since(started_at_, Clock::now())));
  body.set("window_s",
           json::Value(static_cast<double>(config_.latency_window_s)));
  if (metrics.ok()) body.set("metrics", std::move(metrics.value()));
  body.set("prometheus", json::Value(prom.str()));
  conn->send_line(ok_response(req.id, std::move(body)));
}

void Server::handle_slowlog(const std::shared_ptr<Connection>& conn,
                            const Request& req) {
  // The slow log is server-owned state, not an obs metric: it answers
  // even with the obs layer off (unlike `metrics`).
  json::Value body;
  body.set("capacity",
           json::Value(static_cast<double>(config_.slowlog_capacity)));
  json::Array rows;
  for (const Telemetry::SlowEntry& e : telemetry_->sorted()) {
    json::Value row;
    row.set("trace_id", json::Value(static_cast<double>(e.trace_id)));
    row.set("id", json::Value(static_cast<double>(e.id)));
    row.set("op", json::Value(op_name(e.op)));
    row.set("objective", json::Value(e.objective));
    row.set("groups", json::Value(static_cast<double>(e.group)));
    row.set("latency_ms", json::Value(e.latency_ms));
    // NaN (no deadline) serializes as null.
    row.set("deadline_slack_ms", json::Value(e.deadline_slack_ms));
    row.set("ok", json::Value(e.ok));
    // Per-stage breakdown (new fields appended; everything above is the
    // pre-existing row shape, unchanged for old consumers).
    for (std::size_t i = 0; i < kStageCount; ++i)
      row.set(std::string(kStageNames[i]) + "_ms",
              json::Value(e.stage_ms[i]));
    rows.push_back(std::move(row));
  }
  body.set("slowlog", json::Value(std::move(rows)));
  conn->send_line(ok_response(req.id, std::move(body)));
}

void Server::handle_trace(const std::shared_ptr<Connection>& conn,
                          const Request& req) {
  if (!obs::enabled()) {
    conn->send_line(error_response(
        req.id, kCodeObsDisabled,
        "observability disabled (compiled out or OCPS_OBS unset)"));
    return;
  }
  json::Value body;
  body.set("trace_id", json::Value(static_cast<double>(req.trace_id)));
  json::Array procs;
  procs.push_back(trace_proc_json("serve", req.trace_id));
  body.set("procs", json::Value(std::move(procs)));
  conn->send_line(ok_response(req.id, std::move(body)));
}

void Server::handle_slo(const std::shared_ptr<Connection>& conn,
                        const Request& req) {
  // Like slowlog, the SLO engine is server-owned state independent of
  // the obs registry: it answers even with obs compiled out.
  obs::SloTracker::Status slo =
      slo_->status(obs::SloTracker::steady_now_ns());
  json::Value body;
  body.set("configured", json::Value(slo_->configured()));
  json::Array objectives;
  for (const obs::SloTracker::Objective& o : slo.objectives) {
    json::Value row;
    row.set("name", json::Value(o.name));
    row.set("target", json::Value(o.target));
    row.set("budget", json::Value(o.budget));
    row.set("burn_5m", json::Value(o.burn_short));
    row.set("burn_1h", json::Value(o.burn_long));
    row.set("breaching", json::Value(o.breaching));
    objectives.push_back(std::move(row));
  }
  body.set("objectives", json::Value(std::move(objectives)));
  json::Array alerts;
  for (const obs::SloTracker::Alert& a : slo.alerts) {
    json::Value row;
    row.set("seq", json::Value(static_cast<double>(a.seq)));
    row.set("at_ns", json::Value(static_cast<double>(a.at_ns)));
    row.set("objective", json::Value(a.objective));
    row.set("burn_5m", json::Value(a.burn_short));
    row.set("burn_1h", json::Value(a.burn_long));
    alerts.push_back(std::move(row));
  }
  body.set("alerts", json::Value(std::move(alerts)));
  body.set("alerts_total",
           json::Value(static_cast<double>(slo.alerts_total)));
  conn->send_line(ok_response(req.id, std::move(body)));
}

void Server::handle_decisions(const std::shared_ptr<Connection>& conn,
                              const Request& req) {
  // Like slo/slowlog, the decision log is server-owned state independent
  // of the obs registry: it answers even with obs off or compiled out.
  json::Value body;
  if (req.decision_id != 0) {
    obs::DecisionRecord rec;
    if (!decisions_->find(req.decision_id, &rec)) {
      conn->send_line(error_response(
          req.id, kCodeNotFound,
          "unknown decision id " + std::to_string(req.decision_id) +
              " (never issued, or evicted from the audit ring)"));
      return;
    }
    body.set("decision", decision_json(rec));
    // The predecessor enables the `ocps why` allocation diff.
    obs::DecisionRecord prev;
    if (rec.id > 1 && decisions_->find(rec.id - 1, &prev))
      body.set("previous", decision_json(prev));
  } else {
    const std::size_t limit = req.limit == 0 ? 16 : req.limit;
    json::Array rows;
    for (const obs::DecisionRecord& rec : decisions_->recent(limit))
      rows.push_back(decision_json(rec));
    body.set("decisions", json::Value(std::move(rows)));
  }
  body.set("accuracy", decision_accuracy_json(decisions_->accuracy()));
  body.set("drift",
           drift_status_json(drift_->status(), drift_->alerts()));
  conn->send_line(ok_response(req.id, std::move(body)));
}

void Server::handle_reconcile(const std::shared_ptr<Connection>& conn,
                              const Request& req) {
  const std::uint64_t now = obs::DecisionLog::steady_now_ns();
  obs::DecisionRecord rec;
  switch (decisions_->reconcile(req.decision_id, req.realized,
                                /*partial=*/false, now, &rec)) {
    case obs::DecisionLog::ReconcileStatus::kUnknownId:
      conn->send_line(error_response(
          req.id, kCodeNotFound,
          "unknown decision id " + std::to_string(req.decision_id) +
              " (never issued, or evicted from the audit ring)"));
      return;
    case obs::DecisionLog::ReconcileStatus::kAlreadyReconciled:
      conn->send_line(error_response(
          req.id, kCodeUnprocessable,
          "decision " + std::to_string(req.decision_id) +
              " is already reconciled"));
      return;
    case obs::DecisionLog::ReconcileStatus::kSizeMismatch:
      decisions_->find(req.decision_id, &rec);  // fetch the tenant count
      conn->send_line(error_response(
          req.id, kCodeBadRequest,
          "realized has " + std::to_string(req.realized.size()) +
              " entries but decision " + std::to_string(req.decision_id) +
              " has " + std::to_string(rec.tenants.size()) + " tenants"));
      return;
    case obs::DecisionLog::ReconcileStatus::kOk:
      break;
  }
  obs::record_prediction_errors(rec, drift_.get(),
                                &telemetry_->window_prediction_error, now);
  obs::publish_decision_metrics(*decisions_, drift_.get(),
                                &telemetry_->window_prediction_error, now);
  json::Value body;
  body.set("decision", decision_json(rec));
  body.set("drift",
           drift_status_json(drift_->status(), drift_->alerts()));
  conn->send_line(ok_response(req.id, std::move(body)));
}

// ---------------------------------------------------------------------------
// Batching thread.

void Server::batch_loop() {
  SolverState solver;
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait_for(lock, std::chrono::milliseconds(kPollMs), [&] {
        return !queue_.empty() || producers_done_.load();
      });
      if (queue_.empty()) {
        if (producers_done_.load()) break;
        continue;
      }
      const bool draining = stopping_.load();
      // Test seam: admit but do not drain while held (never during the
      // shutdown drain, which must always make progress).
      if (!draining && config_.hold_batching &&
          config_.hold_batching->load()) {
        lock.unlock();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      // Stage attribution: [collect_start, collect_end] brackets the
      // deliberate linger; respond() charges it to batch_linger and
      // everything else a request waited to queue_wait.
      Clock::time_point collect_start = Clock::now();
      if (!draining) {
        // Linger: give the batch a chance to fill before solving, so
        // concurrent clients coalesce and the DP prefix reuse has
        // something to share.
        Clock::time_point linger_until = collect_start + config_.linger;
        while (!stopping_.load() && queue_.size() < config_.max_batch) {
          Clock::time_point now = Clock::now();
          if (now >= linger_until) break;
          queue_cv_.wait_until(
              lock, std::min(linger_until,
                             now + std::chrono::milliseconds(kPollMs)));
        }
      }
      Clock::time_point collect_end = Clock::now();
      std::size_t take = std::min(queue_.size(), config_.max_batch);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        batch.back().collect_start = collect_start;
        batch.back().collect_end = collect_end;
      }
      OCPS_OBS_GAUGE("serve.queue_depth",
                     static_cast<double>(queue_.size()));
    }
    if (!batch.empty()) process_batch(batch, solver);
  }
}

void Server::process_batch(std::vector<Pending>& batch,
                           SolverState& solver) {
  counters_->batches.fetch_add(1);
  OCPS_OBS_COUNT("serve.batches", 1);
  OCPS_OBS_HIST("serve.batch_size", static_cast<double>(batch.size()));
  obs::ScopedSpan span("serve.process_batch", "serve");
  span.set_arg("requests", batch.size());

  auto set = profiles();

  // Answer partitions grouped by (objective, capacity) so the warm
  // solver reconfigures at most once per distinct pair, keeping the DP
  // prefix cache effective across the batch; sweeps go last (they use
  // the thread pool, not the warm solver). stable_sort keeps arrival
  // order within each class.
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const Request& ra = batch[a].req;
                     const Request& rb = batch[b].req;
                     if (ra.op != rb.op) return ra.op == Op::kPartition;
                     if (ra.objective != rb.objective)
                       return ra.objective < rb.objective;
                     return ra.capacity < rb.capacity;
                   });

  for (std::size_t idx : order) {
    Pending& p = batch[idx];
    // Solve span on the batching thread: second leg of the per-request
    // tree started by serve.admit on the reader thread (same trace_id).
    obs::ScopedSpan req_span(
        p.req.op == Op::kPartition ? "serve.solve" : "serve.sweep", "serve");
    req_span.set_trace_id(p.req.trace_id);
    req_span.set_arg("id", static_cast<std::uint64_t>(p.req.id));
    // Stage stamps: answer paths move serialize_start to where the solve
    // actually ended; error paths that never solve leave it here so the
    // whole error turnaround is attributed to serialize.
    p.solve_start = Clock::now();
    p.serialize_start = p.solve_start;
    if (Clock::now() > p.deadline) {
      counters_->deadline_exceeded.fetch_add(1);
      OCPS_OBS_COUNT("serve.deadline_exceeded", 1);
      respond(p,
              error_response(p.req.id, kCodeDeadlineExceeded,
                             "deadline exceeded before solve"),
              false);
      continue;
    }
    try {
      if (p.req.op == Op::kPartition)
        answer_partition(p, set, solver);
      else
        answer_sweep(p, *set);
    } catch (const SweepDeadlineExceeded& e) {
      counters_->deadline_exceeded.fetch_add(1);
      OCPS_OBS_COUNT("serve.deadline_exceeded", 1);
      p.serialize_start = Clock::now();  // solve ran until the throw
      respond(p, error_response(p.req.id, kCodeDeadlineExceeded, e.what()),
              false);
    } catch (const std::exception& e) {
      p.serialize_start = Clock::now();
      respond(p, error_response(p.req.id, kCodeInternal, e.what()), false);
    }
  }
}

void Server::answer_partition(
    Pending& p, const std::shared_ptr<const ProfileSet>& set_ptr,
    SolverState& solver) {
  const ProfileSet& set = *set_ptr;
  const Request& req = p.req;
  const std::size_t capacity =
      req.capacity > 0 ? req.capacity : config_.capacity;
  const std::size_t n = req.programs.size();

  // Resolve names, then sort members ascending for DP layer reuse while
  // remembering each one's position in the request.
  std::vector<std::pair<std::uint32_t, std::size_t>> resolved;
  resolved.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t idx = set.index_of(req.programs[i]);
    if (idx == ProfileSet::npos) {
      respond(p,
              error_response(req.id, kCodeNotFound,
                             "unknown program \"" + req.programs[i] + "\""),
              false);
      return;
    }
    resolved.emplace_back(static_cast<std::uint32_t>(idx), i);
  }
  std::sort(resolved.begin(), resolved.end());
  std::vector<std::uint32_t> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = resolved[i].first;

  DpObjective objective = req.objective == "max" ? DpObjective::kMaxCost
                                                 : DpObjective::kSumCost;
  PrefixDpSolver& dp = solver.ensure(set_ptr, capacity, objective);
  dp.solve(members.data(), n, nullptr, solver.dp_buf);
  if (!solver.dp_buf.feasible) {
    respond(p,
            error_response(req.id, kCodeInternal,
                           "unconstrained DP reported infeasible"),
            false);
    return;
  }

  // Map the allocation back to request order and evaluate the solo MRCs.
  std::vector<double> alloc(n, 0.0);
  std::vector<double> mr(n, 0.0);
  double rate_sum = 0.0;
  double weighted_mr = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const ProgramModel& model = set.models[members[i]];
    std::size_t units = solver.dp_buf.alloc[i];
    double ratio = model.mrc.ratio(units);
    std::size_t pos = resolved[i].second;
    alloc[pos] = static_cast<double>(units);
    mr[pos] = ratio;
    rate_sum += model.access_rate;
    weighted_mr += model.access_rate * ratio;
  }
  p.serialize_start = Clock::now();  // DP + mapping done; body build next

  // Audit the decision. A serving daemon has no epoch clock, so the
  // trigger is kRequest — except for the first decision after a profile
  // reload, which is tagged kReload so `ocps decisions` shows where the
  // model changed under the clients. Realized ratios arrive later via
  // the `reconcile` op.
  obs::DecisionRecord decision;
  decision.at_ns = obs::DecisionLog::steady_now_ns();
  const std::uint64_t seen = last_decision_version_.exchange(set.version);
  decision.trigger = seen != set.version ? obs::DecisionTrigger::kReload
                                         : obs::DecisionTrigger::kRequest;
  decision.tenants.assign(req.programs.begin(), req.programs.end());
  decision.alloc.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    decision.alloc[i] = static_cast<std::size_t>(alloc[i]);
  decision.predicted_mr = mr;
  decision.tenant_degraded.assign(n, false);
  decision.solve_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(p.serialize_start -
                                                           p.solve_start)
          .count());
  decision.note = "serve: objective=" + req.objective +
                  " value=" + json::Value(solver.dp_buf.objective_value).dump();
  const std::uint64_t decision_id =
      decisions_->record(decision, decision.at_ns);
  OCPS_OBS_COUNT("dp.decisions", 1);

  json::Value body;
  json::Array programs;
  programs.reserve(n);
  for (const std::string& name : req.programs) programs.emplace_back(name);
  body.set("programs", json::Value(std::move(programs)));
  body.set("capacity", json::Value(static_cast<double>(capacity)));
  body.set("objective", json::Value(req.objective));
  json::Array alloc_arr(alloc.begin(), alloc.end());
  body.set("alloc", json::Value(std::move(alloc_arr)));
  json::Array mr_arr(mr.begin(), mr.end());
  body.set("miss_ratios", json::Value(std::move(mr_arr)));
  body.set("group_mr",
           json::Value(rate_sum > 0.0 ? weighted_mr / rate_sum : 0.0));
  body.set("objective_value", json::Value(solver.dp_buf.objective_value));
  body.set("version", json::Value(static_cast<double>(set.version)));
  body.set("decision_id",
           json::Value(static_cast<double>(decision_id)));
  respond(p, ok_response(req.id, std::move(body)), true);
}

void Server::answer_sweep(Pending& p, const ProfileSet& set) {
  const Request& req = p.req;
  const std::size_t capacity =
      req.capacity > 0 ? req.capacity : config_.capacity;

  std::vector<std::uint32_t> selected;
  if (req.programs.empty()) {
    selected.resize(set.models.size());
    std::iota(selected.begin(), selected.end(), 0u);
  } else {
    for (const std::string& name : req.programs) {
      std::size_t idx = set.index_of(name);
      if (idx == ProfileSet::npos) {
        respond(p,
                error_response(req.id, kCodeNotFound,
                               "unknown program \"" + name + "\""),
                false);
        return;
      }
      selected.push_back(static_cast<std::uint32_t>(idx));
    }
    std::sort(selected.begin(), selected.end());
    selected.erase(std::unique(selected.begin(), selected.end()),
                   selected.end());
  }
  const std::size_t n = selected.size();
  if (n == 0) {
    respond(p,
            error_response(req.id, kCodeNotFound, "no programs loaded"),
            false);
    return;
  }
  std::size_t k = req.group_size > 0 ? req.group_size
                                     : std::min<std::size_t>(4, n);
  if (k > n) {
    respond(p,
            error_response(req.id, kCodeBadRequest,
                           "group_size " + std::to_string(k) +
                               " exceeds program count " +
                               std::to_string(n)),
            false);
    return;
  }

  std::vector<std::vector<std::uint32_t>> groups = all_subsets(
      static_cast<std::uint32_t>(n), static_cast<std::uint32_t>(k));
  for (auto& group : groups)
    for (std::uint32_t& member : group) member = selected[member];

  SweepOptions options;
  options.capacity = capacity;
  options.threads = config_.threads;
  if (p.deadline != Clock::time_point::max()) options.deadline = p.deadline;

  // Throws SweepDeadlineExceeded past the deadline; process_batch maps
  // that to 504.
  std::vector<GroupEvaluation> sweep =
      sweep_groups(set.models, groups, options);
  p.serialize_start = Clock::now();  // sweep done; stats + body build next

  json::Value improvement;
  const Method baselines[] = {Method::kEqual, Method::kNatural,
                              Method::kEqualBaseline,
                              Method::kNaturalBaseline, Method::kSttw};
  for (Method m : baselines) {
    ImprovementStats stats = improvement_over(sweep, m);
    json::Value row;
    row.set("max", json::Value(stats.max));
    row.set("avg", json::Value(stats.avg));
    row.set("median", json::Value(stats.median));
    row.set("frac_ge_10", json::Value(stats.frac_ge_10));
    row.set("frac_ge_20", json::Value(stats.frac_ge_20));
    improvement.set(method_name(m), std::move(row));
  }

  json::Value body;
  body.set("groups", json::Value(static_cast<double>(groups.size())));
  body.set("group_size", json::Value(static_cast<double>(k)));
  body.set("capacity", json::Value(static_cast<double>(capacity)));
  body.set("version", json::Value(static_cast<double>(set.version)));
  body.set("improvement", std::move(improvement));
  respond(p, ok_response(req.id, std::move(body)), true);
}

void Server::respond(Pending& p, const std::string& line, bool answered) {
  Clock::time_point send_start = Clock::now();
  p.conn->send_line(line);
  Clock::time_point now = Clock::now();
  double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - p.enqueued)
          .count());
  OCPS_OBS_HIST("serve.request_ns", ns);
  double ms = ns / 1e6;
  // Milliseconds twin of request_ns: the log-bucket resolution (factor
  // of two) is what the exposition quantiles work from, and ms buckets
  // read naturally on a dashboard.
  OCPS_OBS_HIST("serve.request_latency", ms);
  if (obs::enabled()) telemetry_->window.observe(ms);

  // Stage decomposition. batch_linger is the deliberate coalescing wait
  // (bounded by --linger-ms); solve / serialize / network come straight
  // from the stamps; queue_wait is the remainder — queue backlog plus
  // intra-batch ordering — so the five stages sum to latency_ms exactly
  // (modulo floating rounding), which the tests pin within an epsilon.
  double stage_ms[kStageCount];
  stage_ms[1] = std::max(
      0.0, ms_since(std::max(p.enqueued, p.collect_start), p.collect_end));
  stage_ms[2] = std::max(0.0, ms_since(p.solve_start, p.serialize_start));
  stage_ms[3] = std::max(0.0, ms_since(p.serialize_start, send_start));
  stage_ms[4] = std::max(0.0, ms_since(send_start, now));
  stage_ms[0] = std::max(
      0.0, ms - stage_ms[1] - stage_ms[2] - stage_ms[3] - stage_ms[4]);
  if (obs::enabled()) {
    for (std::size_t i = 0; i < kStageCount; ++i) {
      std::string name = std::string("serve.stage.") + kStageNames[i];
      obs::histogram(name).observe(stage_ms[i]);
      obs::note_exemplar(name, stage_ms[i], p.req.trace_id);
      telemetry_->stage(i).observe(stage_ms[i]);
    }
    obs::note_exemplar("serve.request_latency", ms, p.req.trace_id);
  }

  // SLO accounting is obs-independent (the tracker carries its own
  // clock) so burn rates keep working in an OCPS_OBS_DISABLED build.
  slo_->record(ms, answered, obs::SloTracker::steady_now_ns());

  Telemetry::SlowEntry entry;
  entry.trace_id = p.req.trace_id;
  entry.id = p.req.id;
  entry.op = p.req.op;
  entry.objective = p.req.objective;
  entry.group = p.req.op == Op::kPartition ? p.req.programs.size()
                                           : p.req.group_size;
  entry.latency_ms = ms;
  entry.deadline_slack_ms =
      p.deadline == Clock::time_point::max()
          ? std::numeric_limits<double>::quiet_NaN()
          : ms_since(now, p.deadline);
  entry.ok = answered;
  for (std::size_t i = 0; i < kStageCount; ++i)
    entry.stage_ms[i] = stage_ms[i];
  telemetry_->record(std::move(entry));

  if (answered) {
    counters_->answered.fetch_add(1);
    OCPS_OBS_COUNT("serve.answered", 1);
  }
}

}  // namespace ocps::serve
