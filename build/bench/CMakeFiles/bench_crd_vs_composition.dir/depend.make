# Empty dependencies file for bench_crd_vs_composition.
# This may be replaced when dependencies are built.
