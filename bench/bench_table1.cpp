// Table I: improvement of the Optimal partition over Equal, Equal
// baseline, Natural, Natural baseline, and STTW across all 4-program
// co-run groups (Max / Avg / Median improvement and the fraction of groups
// improved by at least 10% / 20%).
#include <iostream>

#include "common.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Evaluation eval = load_evaluation();
  std::cout << "=== Table I: improvement of group performance by Optimal "
               "partition ===\n";
  std::cout << "groups: " << eval.sweep.size()
            << ", cache: " << eval.capacity << " units, programs: "
            << eval.suite.models.size() << "\n\n";

  TextTable t({"Methods of partitioning", "Max", "Avg", "Median",
               ">=10% improved", ">=20% improved"});
  for (Method m : {Method::kEqual, Method::kEqualBaseline, Method::kNatural,
                   Method::kNaturalBaseline, Method::kSttw}) {
    ImprovementStats s = improvement_over(eval.sweep, m);
    t.add_row({method_name(m), TextTable::pct(s.max, 2),
               TextTable::pct(s.avg, 2), TextTable::pct(s.median, 2),
               TextTable::pct(s.frac_ge_10, 2),
               TextTable::pct(s.frac_ge_20, 2)});
  }
  emit_table(t, "table1");

  std::cout
      << "\nPaper (Table I): Equal avg 125.25%, Equal-baseline 97.75%, "
         "Natural 26.35%, Natural-baseline 26.21%, STTW 33.68%;\n"
         "ordering to reproduce: Equal >> Equal-baseline >> STTW > Natural "
         "~ Natural-baseline, with STTW median near zero but a heavy "
         "non-convex tail.\n";
  return 0;
}
