// Resilience-layer tests: the pieces the chaos harness relies on, each
// driven deterministically — the consistent-hash ring, the circuit
// breaker on a fake timeline, the retry/backoff engine with scripted
// failures and an injected clock, the socket-layer fault injector's
// seeded schedule, the endpoint grammar and race-safe Unix socket
// claim, and finally a real Router in front of real Servers covering
// placement, failover, breaker ejection/recovery, reload fan-out, and
// the router's locally answered health/metrics ops.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "locality/footprint_io.hpp"
#include "obs/obs.hpp"
#include "runtime/fault_injection.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/socket_util.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ocps::serve {
namespace {

using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kCapacity = 64;

std::vector<ProgramModel> make_models(std::size_t count = 4) {
  std::vector<ProgramModel> models;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < count; ++i) {
    Trace t;
    switch (i % 4) {
      case 0: t = make_cyclic(n, 20 + 7 * i); break;
      case 1: t = make_zipf(n, 50 + 13 * i, 0.8, 100 + i); break;
      case 2: t = make_hot_cold(n, 4 + i, 40 + 9 * i, 0.85, 200 + i); break;
      default: t = make_sawtooth(n, 16 + 5 * i); break;
    }
    models.push_back(make_program_model("prog" + std::to_string(i),
                                        0.5 + 0.25 * i, compute_footprint(t),
                                        kCapacity));
  }
  return models;
}

std::string unique_socket_path(const char* tag) {
  static std::atomic<int> seq{0};
  return "/tmp/ocps_rtest_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(seq.fetch_add(1)) + ".sock";
}

std::string partition_line(std::int64_t id, double deadline_ms = 0.0) {
  Request req;
  req.id = id;
  req.op = Op::kPartition;
  req.programs = {"prog0", "prog1"};
  req.deadline_ms = deadline_ms;
  return encode_request(req);
}

/// Spins until `pred` holds or `budget` elapses; returns the final value.
bool wait_for(const std::function<bool()>& pred,
              milliseconds budget = milliseconds(5000)) {
  Clock::time_point deadline = Clock::now() + budget;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(10));
  }
  return pred();
}

class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset_metrics();
  }
  void TearDown() override { obs::set_enabled(true); }
};

// ---------------------------------------------------------------------------
// Endpoint grammar + Unix socket claim.

TEST_F(RouterTest, EndpointGrammar) {
  Result<Endpoint> unix_ep = parse_endpoint("/tmp/some.sock");
  ASSERT_TRUE(unix_ep.ok());
  EXPECT_FALSE(unix_ep.value().is_tcp());
  EXPECT_EQ(unix_ep.value().path, "/tmp/some.sock");

  Result<Endpoint> tcp = parse_endpoint("127.0.0.1:7070");
  ASSERT_TRUE(tcp.ok());
  EXPECT_TRUE(tcp.value().is_tcp());
  EXPECT_EQ(tcp.value().host, "127.0.0.1");
  EXPECT_EQ(tcp.value().port, 7070);

  Result<Endpoint> local = parse_endpoint("localhost:0");
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(local.value().is_tcp());
  EXPECT_EQ(local.value().port, 0);

  EXPECT_FALSE(parse_endpoint("").ok());
  EXPECT_FALSE(parse_endpoint("127.0.0.1:99999").ok());
  // A colon without an all-digit suffix is a Unix path, not TCP.
  Result<Endpoint> odd = parse_endpoint("/tmp/with:colon");
  ASSERT_TRUE(odd.ok());
  EXPECT_FALSE(odd.value().is_tcp());
}

TEST_F(RouterTest, UnixClaimGuardsLiveDaemonAndReclaimsStale) {
  std::string path = unique_socket_path("claim");

  Result<UnixListener> first = claim_unix_socket(path, 8);
  ASSERT_TRUE(first.ok());

  // A second claim while the first holder is alive must refuse with a
  // clear error and must NOT unlink the live socket.
  Result<UnixListener> second = claim_unix_socket(path, 8);
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.error().message.find("in use"), std::string::npos)
      << second.error().message;
  EXPECT_EQ(::access(path.c_str(), F_OK), 0);

  // Simulate a crash: close the fds without unlinking. The kernel drops
  // the flock, the socket file goes stale, and the next claim reclaims.
  ::close(first.value().fd);
  ::close(first.value().lock_fd);
  EXPECT_EQ(::access(path.c_str(), F_OK), 0);  // stale file left behind
  Result<UnixListener> third = claim_unix_socket(path, 8);
  ASSERT_TRUE(third.ok());
  UnixListener l = third.value();
  release_unix_socket(l, path);
  EXPECT_NE(::access(path.c_str(), F_OK), 0);  // cleanly removed
}

// ---------------------------------------------------------------------------
// Consistent-hash ring.

TEST_F(RouterTest, HashRingOrderIsDeterministicAndComplete) {
  HashRing ring(5);
  HashRing twin(5);
  for (int k = 0; k < 50; ++k) {
    std::string key = "tenant-" + std::to_string(k);
    std::vector<std::size_t> order = ring.order_for(key);
    // A permutation of all backends: failover always has somewhere to go.
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(), 5u);
    // Deterministic across instances (two routers agree on placement).
    EXPECT_EQ(order, twin.order_for(key));
    EXPECT_EQ(order.front(), ring.primary_for(key));
  }
}

TEST_F(RouterTest, HashRingSpreadsKeys) {
  HashRing ring(3);
  std::vector<int> hits(3, 0);
  for (int k = 0; k < 3000; ++k)
    hits[ring.primary_for("key-" + std::to_string(k))]++;
  for (int h : hits) {
    EXPECT_GT(h, 3000 / 10) << "a backend got <10% of the key space";
    EXPECT_LT(h, 3000 * 6 / 10) << "a backend got >60% of the key space";
  }
}

TEST_F(RouterTest, HashRingGrowthRemapsOnlyAFraction) {
  HashRing small(4);
  HashRing grown(5);
  int moved = 0;
  const int kKeys = 2000;
  for (int k = 0; k < kKeys; ++k) {
    std::string key = "key-" + std::to_string(k);
    if (small.primary_for(key) != grown.primary_for(key)) ++moved;
  }
  // Consistent hashing moves ~1/5 of keys when growing 4 -> 5; modulo
  // hashing would move ~4/5. Generous bound to stay vnode-layout-proof.
  EXPECT_LT(moved, kKeys * 45 / 100) << "growth remapped like mod-N hashing";
  EXPECT_GT(moved, 0);
}

// ---------------------------------------------------------------------------
// Circuit breaker on a fake timeline.

TEST_F(RouterTest, BreakerOpensAfterConsecutiveFailuresAndRecovers) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.cooldown = milliseconds(100);
  cfg.probe_successes = 1;
  CircuitBreaker b(cfg);
  Clock::time_point t0 = Clock::now();

  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.allow(t0));
  b.record_failure(t0);
  b.record_failure(t0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);  // 2 < threshold
  b.record_failure(t0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);

  // Open: nothing admitted until the cooldown has fully passed.
  EXPECT_FALSE(b.allow(t0));
  EXPECT_FALSE(b.allow(t0 + milliseconds(99)));

  // Cooled down: exactly one probe is admitted, the second caller is not.
  EXPECT_TRUE(b.allow(t0 + milliseconds(100)));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(b.allow(t0 + milliseconds(100)));

  // Probe succeeds: closed again, traffic flows.
  b.record_success(t0 + milliseconds(101));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.allow(t0 + milliseconds(101)));
}

TEST_F(RouterTest, BreakerProbeFailureRestartsCooldown) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown = milliseconds(100);
  CircuitBreaker b(cfg);
  Clock::time_point t0 = Clock::now();

  b.record_failure(t0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  ASSERT_TRUE(b.allow(t0 + milliseconds(100)));  // the probe
  b.record_failure(t0 + milliseconds(110));      // probe failed
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  // The cooldown restarted at the probe failure, not the original trip.
  EXPECT_FALSE(b.allow(t0 + milliseconds(205)));
  EXPECT_TRUE(b.allow(t0 + milliseconds(210)));
}

TEST_F(RouterTest, BreakerRequiresConfiguredProbeSuccesses) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.cooldown = milliseconds(10);
  cfg.probe_successes = 2;
  CircuitBreaker b(cfg);
  Clock::time_point t0 = Clock::now();

  b.record_failure(t0);
  ASSERT_TRUE(b.allow(t0 + milliseconds(10)));
  b.record_success(t0 + milliseconds(11));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);  // 1 of 2
  ASSERT_TRUE(b.allow(t0 + milliseconds(12)));  // next probe admitted
  b.record_success(t0 + milliseconds(13));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
}

TEST_F(RouterTest, BreakerSuccessResetsFailureStreak) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  CircuitBreaker b(cfg);
  Clock::time_point t0 = Clock::now();
  b.record_failure(t0);
  b.record_failure(t0);
  b.record_success(t0);  // streak broken
  b.record_failure(t0);
  b.record_failure(t0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  b.record_failure(t0);
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
}

// ---------------------------------------------------------------------------
// Backoff + retry engine (fake clock, scripted failures).

TEST_F(RouterTest, BackoffDelayIsJitteredBoundedDeterministic) {
  RetryPolicy policy;
  policy.base_delay = milliseconds(10);
  policy.max_delay = milliseconds(200);
  for (int attempt = 1; attempt <= 8; ++attempt) {
    milliseconds ceiling = policy.base_delay;
    for (int i = 1; i < attempt && ceiling < policy.max_delay; ++i)
      ceiling *= 2;
    ceiling = std::min(ceiling, policy.max_delay);
    milliseconds d = backoff_delay(policy, attempt, /*salt=*/7);
    EXPECT_GE(d.count(), 0);
    EXPECT_LE(d.count(), ceiling.count()) << "attempt " << attempt;
    // Pure function of (seed, attempt, salt).
    EXPECT_EQ(d, backoff_delay(policy, attempt, 7));
  }
  EXPECT_EQ(backoff_delay(policy, 0).count(), 0);

  // Different salts decorrelate the schedules (no thundering herd):
  // across several attempts at least one delay must differ.
  bool differs = false;
  for (int attempt = 1; attempt <= 8 && !differs; ++attempt)
    differs = backoff_delay(policy, attempt, 1) !=
              backoff_delay(policy, attempt, 2);
  EXPECT_TRUE(differs);
}

TEST_F(RouterTest, RetryClassifiers) {
  EXPECT_TRUE(retryable_op(Op::kPartition));
  EXPECT_TRUE(retryable_op(Op::kSweep));
  EXPECT_TRUE(retryable_op(Op::kHealth));
  EXPECT_TRUE(retryable_op(Op::kMetrics));
  EXPECT_TRUE(retryable_op(Op::kSlowlog));
  EXPECT_TRUE(retryable_op(Op::kTrace));
  EXPECT_TRUE(retryable_op(Op::kSlo));
  EXPECT_FALSE(retryable_op(Op::kReload));

  EXPECT_TRUE(retryable_code(kCodeQueueFull));
  EXPECT_TRUE(retryable_code(kCodeShuttingDown));
  EXPECT_TRUE(retryable_code(kCodeDeadlineExceeded));
  EXPECT_FALSE(retryable_code(kCodeBadRequest));
  EXPECT_FALSE(retryable_code(kCodeNotFound));
  EXPECT_FALSE(retryable_code(kCodeUnprocessable));
  EXPECT_FALSE(retryable_code(kCodeInternal));
}

/// A controllable timeline for run_with_retry: sleeps advance it, and
/// each attempt can be given a fixed cost.
struct FakeClock {
  Clock::time_point now = Clock::time_point{} + std::chrono::hours(1);
  std::vector<milliseconds> sleeps;

  std::function<Clock::time_point()> now_fn() {
    return [this] { return now; };
  }
  std::function<void(milliseconds)> sleep_fn() {
    return [this](milliseconds d) {
      sleeps.push_back(d);
      now += d;
    };
  }
};

Response failure(int code) {
  Response r;
  r.ok = false;
  r.code = code;
  r.error = "scripted";
  return r;
}

TEST_F(RouterTest, RetrySucceedsAfterTransportFailures) {
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 4;
  RetryStats stats;
  int calls = 0;
  Result<Response> out = run_with_retry(
      Op::kPartition, /*id=*/9, policy, /*budget=*/milliseconds(0),
      [&](int attempt) -> Result<Response> {
        EXPECT_EQ(attempt, calls);
        ++calls;
        if (calls < 3) return Err(ErrorCode::kIoError, "conn reset");
        Response ok;
        ok.ok = true;
        ok.id = 9;
        return Ok(std::move(ok));
      },
      clock.sleep_fn(), clock.now_fn(), &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().ok);
  EXPECT_EQ(stats.attempts, 3);
  ASSERT_EQ(clock.sleeps.size(), 2u);  // one backoff between each attempt
  milliseconds total(0);
  for (milliseconds d : clock.sleeps) total += d;
  EXPECT_EQ(stats.backoff_total, total);
}

TEST_F(RouterTest, RetryBudgetExhaustionYields504) {
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.base_delay = milliseconds(20);
  RetryStats stats;
  Result<Response> out = run_with_retry(
      Op::kPartition, 1, policy, /*budget=*/milliseconds(50),
      [&](int) -> Result<Response> {
        clock.now += milliseconds(30);  // each attempt burns 30ms
        return Ok(failure(kCodeShuttingDown));
      },
      clock.sleep_fn(), clock.now_fn(), &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().ok);
  EXPECT_EQ(out.value().code, kCodeDeadlineExceeded);
  EXPECT_LT(stats.attempts, 100);  // stopped by the budget, not the cap
}

TEST_F(RouterTest, RetryNeverRetriesReload) {
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryStats stats;
  int calls = 0;
  Result<Response> out = run_with_retry(
      Op::kReload, 1, policy, milliseconds(0),
      [&](int) -> Result<Response> {
        ++calls;
        return Ok(failure(kCodeShuttingDown));  // retryable code...
      },
      clock.sleep_fn(), clock.now_fn(), &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().code, kCodeShuttingDown);  // ...returned unchanged
  EXPECT_EQ(calls, 1);  // ...but the op is not idempotent
  EXPECT_TRUE(clock.sleeps.empty());
}

TEST_F(RouterTest, RetryReturnsDefinitiveCodeUnchanged) {
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  Result<Response> out = run_with_retry(
      Op::kPartition, 1, policy, milliseconds(0),
      [&](int) -> Result<Response> {
        ++calls;
        return Ok(failure(kCodeNotFound));
      },
      clock.sleep_fn(), clock.now_fn(), nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().code, kCodeNotFound);
  EXPECT_EQ(calls, 1);
}

TEST_F(RouterTest, RetryExhaustionReturnsLastFailureUnchanged) {
  FakeClock clock;
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryStats stats;
  // Scripted 429s forever: exhaustion hands back the last 429, so the
  // caller knows the daemon is alive but shedding.
  Result<Response> shed = run_with_retry(
      Op::kPartition, 1, policy, milliseconds(0),
      [&](int) { return Ok(failure(kCodeQueueFull)); }, clock.sleep_fn(),
      clock.now_fn(), &stats);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed.value().code, kCodeQueueFull);
  EXPECT_EQ(stats.attempts, 3);

  // Scripted transport errors forever: exhaustion stays an Err, so the
  // caller can distinguish "no daemon" from "daemon said no".
  Result<Response> dead = run_with_retry(
      Op::kPartition, 1, policy, milliseconds(0),
      [&](int) -> Result<Response> {
        return Err(ErrorCode::kIoError, "refused");
      },
      clock.sleep_fn(), clock.now_fn(), nullptr);
  EXPECT_FALSE(dead.ok());
}

// ---------------------------------------------------------------------------
// Socket-layer fault injector.

TEST_F(RouterTest, NetFaultScheduleIsSeededAndDeterministic) {
  NetFaultConfig cfg;
  cfg.accept_fail_rate = 0.3;
  cfg.reset_rate = 0.2;
  cfg.trickle_rate = 0.2;
  cfg.stall_rate = 0.2;
  cfg.seed = 1234;
  NetFaultInjector a(cfg);
  NetFaultInjector b(cfg);
  int accept_failures = 0;
  for (int i = 0; i < 400; ++i) {
    bool fa = a.fail_accept();
    EXPECT_EQ(fa, b.fail_accept()) << "accept draw " << i;
    EXPECT_EQ(a.write_fault(), b.write_fault()) << "write draw " << i;
    if (fa) ++accept_failures;
  }
  EXPECT_EQ(a.injected_accept_failures(),
            static_cast<std::size_t>(accept_failures));
  // ~30% of 400; generous bounds, but zero or all would mean a broken mix.
  EXPECT_GT(accept_failures, 40);
  EXPECT_LT(accept_failures, 360);
  EXPECT_GT(a.injected_total(), a.injected_accept_failures());

  NetFaultConfig other = cfg;
  other.seed = 4321;
  NetFaultInjector c(other);
  bool diverged = false;
  for (int i = 0; i < 400 && !diverged; ++i)
    diverged = c.fail_accept() != b.fail_accept();
  EXPECT_TRUE(diverged) << "different seeds produced identical schedules";
}

TEST_F(RouterTest, NetFaultRateEndpointsAreExact) {
  NetFaultInjector never(NetFaultConfig{});  // all rates 0
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.fail_accept());
    EXPECT_EQ(never.write_fault(), NetFaultInjector::WriteFault::kNone);
  }
  NetFaultInjector always(NetFaultConfig::uniform(1.0));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(always.fail_accept());
    // Reset wins the precedence order when every kind fires.
    EXPECT_EQ(always.write_fault(), NetFaultInjector::WriteFault::kReset);
  }
}

// ---------------------------------------------------------------------------
// Router integration: real servers, real sockets.

struct Fleet {
  std::vector<ServeConfig> configs;
  std::vector<std::unique_ptr<Server>> servers;

  explicit Fleet(std::size_t n, const char* tag) {
    for (std::size_t i = 0; i < n; ++i) {
      ServeConfig cfg;
      cfg.socket_path = unique_socket_path(tag);
      cfg.capacity = kCapacity;
      configs.push_back(cfg);
      servers.push_back(std::make_unique<Server>(cfg, make_models()));
    }
  }
  ~Fleet() {
    for (auto& s : servers)
      if (s) {
        s->request_stop();
        s->stop();
      }
  }
  std::vector<std::string> endpoints() const {
    std::vector<std::string> out;
    for (const ServeConfig& c : configs) out.push_back(c.socket_path);
    return out;
  }
  void start_all() {
    for (auto& s : servers) ASSERT_TRUE(s->start().ok());
  }
  void kill(std::size_t i) {
    servers[i]->request_stop();
    servers[i]->stop();
    servers[i].reset();
  }
};

RouterConfig fast_router_config(const Fleet& fleet, const char* tag) {
  RouterConfig cfg;
  cfg.socket_path = unique_socket_path(tag);
  cfg.backends = fleet.endpoints();
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown = milliseconds(200);
  cfg.connect_timeout = milliseconds(500);
  cfg.io_timeout = milliseconds(3000);
  cfg.health_interval = milliseconds(100);
  return cfg;
}

TEST_F(RouterTest, RouterForwardsWithStablePlacement) {
  Fleet fleet(2, "fwd");
  fleet.start_all();
  Router router(fast_router_config(fleet, "fwd_r"));
  ASSERT_TRUE(router.start().ok());

  Result<Client> client = Client::connect(router.config().socket_path);
  ASSERT_TRUE(client.ok());
  for (int i = 1; i <= 6; ++i) {
    Result<Response> resp = client.value().call(partition_line(i));
    ASSERT_TRUE(resp.ok()) << resp.error().message;
    EXPECT_TRUE(resp.value().ok) << resp.value().error;
    EXPECT_EQ(resp.value().id, i) << "relay must preserve the request id";
    const json::Value* alloc = resp.value().body.find("alloc");
    ASSERT_NE(alloc, nullptr);
  }
  // Same profile set -> same backend every time: exactly one backend's
  // request counter moved (health probes hit `metrics`, which the
  // daemon's serve.requests counter also counts, so compare deltas of
  // answered partitions instead).
  std::size_t answered_on = 0;
  for (auto& s : fleet.servers)
    if (s->counters().answered > 0) ++answered_on;
  EXPECT_EQ(answered_on, 1u) << "one tenant group spread over >1 backend";

  Router::Counters c = router.counters();
  EXPECT_GE(c.requests, 6u);
  EXPECT_GE(c.forwarded, 6u);
  EXPECT_EQ(c.no_backend, 0u);
  router.stop();
}

TEST_F(RouterTest, RouterFailsOverWhenBackendDies) {
  Fleet fleet(2, "fo");
  fleet.start_all();
  RouterConfig cfg = fast_router_config(fleet, "fo_r");
  Router router(cfg);
  ASSERT_TRUE(router.start().ok());
  Result<Client> client = Client::connect(cfg.socket_path);
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client.value().call(partition_line(1)).ok());

  // Kill the backend that answered; every request must keep succeeding
  // (failover to the survivor), with zero wrong answers.
  std::size_t victim =
      fleet.servers[0]->counters().answered > 0 ? 0 : 1;
  fleet.kill(victim);
  for (int i = 2; i <= 8; ++i) {
    Result<Response> resp = client.value().call(partition_line(i));
    ASSERT_TRUE(resp.ok()) << resp.error().message;
    EXPECT_TRUE(resp.value().ok) << resp.value().error;
    EXPECT_EQ(resp.value().id, i);
  }
  EXPECT_GE(router.counters().failovers, 1u);

  // The health prober ejects the corpse within a few intervals.
  EXPECT_TRUE(wait_for([&] {
    return router.breaker_state(victim) == CircuitBreaker::State::kOpen;
  })) << "breaker never opened for the dead backend";
  router.stop();
}

TEST_F(RouterTest, RouterRecoversWhenBackendReturns) {
  Fleet fleet(2, "rec");
  fleet.start_all();
  RouterConfig cfg = fast_router_config(fleet, "rec_r");
  Router router(cfg);
  ASSERT_TRUE(router.start().ok());

  std::size_t victim = 0;
  ServeConfig victim_cfg = fleet.configs[victim];
  fleet.kill(victim);
  ASSERT_TRUE(wait_for([&] {
    return router.breaker_state(victim) == CircuitBreaker::State::kOpen;
  }));

  // Resurrect on the same socket path (exercises stale-claim reclaim),
  // and the breaker must walk open -> half-open probe -> closed.
  fleet.servers[victim] =
      std::make_unique<Server>(victim_cfg, make_models());
  ASSERT_TRUE(fleet.servers[victim]->start().ok());
  EXPECT_TRUE(wait_for([&] {
    return router.breaker_state(victim) == CircuitBreaker::State::kClosed;
  })) << "breaker never re-closed after the backend came back";
  router.stop();
}

TEST_F(RouterTest, RouterAllBackendsDownGives502Then503) {
  // Backends that were never started: connects fail immediately.
  RouterConfig cfg;
  cfg.socket_path = unique_socket_path("down_r");
  cfg.backends = {unique_socket_path("ghost0"), unique_socket_path("ghost1")};
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown = milliseconds(60000);  // stays open for the test
  cfg.connect_timeout = milliseconds(200);
  cfg.health_interval = milliseconds(50);
  Router router(cfg);
  ASSERT_TRUE(router.start().ok());
  Result<Client> client = Client::connect(cfg.socket_path);
  ASSERT_TRUE(client.ok());

  // While breakers are still closed the walk tries (and fails) every
  // backend: 502. Once the prober has tripped both breakers: 503.
  Result<Response> early = client.value().call(partition_line(1));
  ASSERT_TRUE(early.ok());
  EXPECT_FALSE(early.value().ok);
  EXPECT_TRUE(early.value().code == kCodeBadGateway ||
              early.value().code == kCodeShuttingDown)
      << early.value().code;

  ASSERT_TRUE(wait_for([&] {
    return router.breaker_state(0) == CircuitBreaker::State::kOpen &&
           router.breaker_state(1) == CircuitBreaker::State::kOpen;
  }));
  Result<Response> late = client.value().call(partition_line(2));
  ASSERT_TRUE(late.ok());
  EXPECT_FALSE(late.value().ok);
  EXPECT_EQ(late.value().code, kCodeShuttingDown);
  Router::Counters c = router.counters();
  EXPECT_GE(c.all_open, 1u);
  router.stop();
}

TEST_F(RouterTest, RouterReloadFansOutToWholeFleet) {
  std::string fp_path = "/tmp/ocps_rtest_reload.fp";
  {
    std::vector<ProgramModel> fresh = make_models(1);
    FootprintFile file;
    file.name = "fresh0";
    file.access_rate = fresh[0].access_rate;
    file.trace_length = fresh[0].trace_length;
    file.distinct = fresh[0].distinct;
    file.footprint = fresh[0].footprint;
    save_footprint_file(file, fp_path);
  }
  Fleet fleet(2, "rl");
  fleet.start_all();
  RouterConfig cfg = fast_router_config(fleet, "rl_r");
  Router router(cfg);
  ASSERT_TRUE(router.start().ok());
  Result<Client> client = Client::connect(cfg.socket_path);
  ASSERT_TRUE(client.ok());

  Request reload;
  reload.id = 1;
  reload.op = Op::kReload;
  reload.paths = {fp_path};
  Result<Response> resp = client.value().call(encode_request(reload));
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.value().ok) << resp.value().error;
  // Both backends swapped to the new (1-program) profile set.
  for (auto& s : fleet.servers) EXPECT_EQ(s->profile_version(), 2u);

  // With one backend down, reload reports partial failure as 502 —
  // never "success" while part of the fleet serves stale profiles.
  fleet.kill(0);
  reload.id = 2;
  Result<Response> partial = client.value().call(encode_request(reload));
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(partial.value().ok);
  EXPECT_EQ(partial.value().code, kCodeBadGateway);
  std::remove(fp_path.c_str());
  router.stop();
}

TEST_F(RouterTest, RouterAnswersHealthAndMetricsLocally) {
  Fleet fleet(2, "hm");
  fleet.start_all();
  RouterConfig cfg = fast_router_config(fleet, "hm_r");
  Router router(cfg);
  ASSERT_TRUE(router.start().ok());

#ifndef OCPS_OBS_DISABLED
  // Eager registration: the full serve.router.* surface exists before
  // any traffic, so the first scrape already carries every series.
  obs::MetricsSnapshot snap = obs::metrics_snapshot();
  for (const char* name :
       {"serve.router.requests", "serve.router.forwarded",
        "serve.router.failovers", "serve.router.no_backend",
        "serve.router.all_open", "serve.router.health_probes",
        "serve.router.conn_limit_rejected"}) {
    bool found = false;
    for (const auto& [n, v] : snap.counters) found = found || n == name;
    EXPECT_TRUE(found) << name << " not registered at startup";
  }
#endif

  Result<Client> client = Client::connect(cfg.socket_path);
  ASSERT_TRUE(client.ok());
  Result<Response> health = client.value().call(R"({"id":1,"op":"health"})");
  ASSERT_TRUE(health.ok());
  ASSERT_TRUE(health.value().ok);
  const json::Value* role = health.value().body.find("role");
  ASSERT_NE(role, nullptr);
  const json::Value* rows = health.value().body.find("backends");
  ASSERT_NE(rows, nullptr);

  EXPECT_TRUE(wait_for([&] {
    Result<Response> h = client.value().call(R"({"id":2,"op":"health"})");
    return h.ok() && h.value().ok &&
           h.value().body.get_number("healthy", 0.0) == 2.0;
  })) << "prober never marked both backends up";

#ifndef OCPS_OBS_DISABLED
  Result<Response> metrics = client.value().call(R"({"id":3,"op":"metrics"})");
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(metrics.value().ok) << metrics.value().error;
  const json::Value* m = metrics.value().body.find("metrics");
  ASSERT_NE(m, nullptr);
  const json::Value* prom = metrics.value().body.find("prometheus");
  ASSERT_NE(prom, nullptr);
  // Fleet aggregates ingested from backend scrapes are present.
  const json::Value* gauges = m->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(gauges->find("serve.fleet.requests"), nullptr);
#endif
  router.stop();
}

TEST_F(RouterTest, RouterFrontTcpListener) {
  Fleet fleet(1, "tcp");
  fleet.start_all();
  RouterConfig cfg = fast_router_config(fleet, "tcp_r");
  cfg.socket_path.clear();
  cfg.listen_address = "127.0.0.1:0";
  Router router(cfg);
  ASSERT_TRUE(router.start().ok());
  ASSERT_GT(router.bound_listen_port(), 0);

  Result<Client> client = Client::connect(
      "127.0.0.1:" + std::to_string(router.bound_listen_port()));
  ASSERT_TRUE(client.ok()) << client.error().message;
  Result<Response> resp = client.value().call(partition_line(1));
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.value().ok) << resp.value().error;
  router.stop();
}

TEST_F(RouterTest, RouterDrainRefusesNewWork) {
  Fleet fleet(1, "drain");
  fleet.start_all();
  RouterConfig cfg = fast_router_config(fleet, "drain_r");
  Router router(cfg);
  ASSERT_TRUE(router.start().ok());
  Result<Client> client = Client::connect(cfg.socket_path);
  ASSERT_TRUE(client.ok());
  router.request_stop();
  Result<Response> resp =
      client.value().call(partition_line(1), milliseconds(1000));
  // Either the reader answered 503 before exiting or the connection is
  // torn down at stop(); both are clean refusals, never a wrong answer.
  if (resp.ok()) {
    EXPECT_FALSE(resp.value().ok);
    EXPECT_EQ(resp.value().code, kCodeShuttingDown);
  }
  router.stop();
}

// ---------------------------------------------------------------------------
// Distributed tracing through the router, per-backend latency series, and
// the router's own SLO engine.

#ifndef OCPS_OBS_DISABLED
TEST_F(RouterTest, RouterStampsTraceContextOnForwards) {
  obs::clear_trace_events();
  Fleet fleet(1, "trctx");
  fleet.start_all();
  RouterConfig cfg = fast_router_config(fleet, "trctx_r");
  Router router(cfg);
  ASSERT_TRUE(router.start().ok());
  Result<Client> client = Client::connect(cfg.socket_path);
  ASSERT_TRUE(client.ok());

  Request tagged;
  tagged.id = 1;
  tagged.op = Op::kPartition;
  tagged.programs = {"prog0", "prog1"};
  tagged.trace_id = 9001;
  Result<Response> resp = client.value().call(encode_request(tagged));
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(resp.value().ok) << resp.value().error;

  // Router and backends share this process's obs rings, so the whole
  // cross-tier span tree is visible here: the router's forward span, the
  // backend's hop marker (hop > 0, arg = the router's span nonce), and
  // the backend's solve — all under the client's trace id.
  bool fwd = false, hop = false, solve = false;
  std::uint64_t hop_parent = 0;
  for (int spin = 0; spin < 2000 && !(fwd && hop && solve); ++spin) {
    fwd = hop = solve = false;
    for (const obs::TraceEvent& e : obs::trace_events_for(9001)) {
      std::string name = e.name ? e.name : "";
      if (name == "serve.router.forward") fwd = true;
      if (name == "serve.hop") {
        hop = true;
        hop_parent = e.arg;
      }
      if (name == "serve.solve") solve = true;
    }
    if (!(fwd && hop && solve))
      std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_TRUE(fwd) << "router never recorded its forward span";
  EXPECT_TRUE(hop) << "backend never saw a hop > 0";
  EXPECT_TRUE(solve) << "backend solve span not linked to the trace";
  EXPECT_NE(hop_parent, 0u) << "hop marker lost the parent span nonce";

  // An untraced client request still gets a minted id: the backend's
  // slowlog row carries a non-zero trace_id the operator can query.
  ASSERT_TRUE(client.value().call(partition_line(2)).ok());
  Result<Client> direct = Client::connect(fleet.configs[0].socket_path);
  ASSERT_TRUE(direct.ok());
  Result<Response> slow = direct.value().call(R"({"id":3,"op":"slowlog"})");
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(slow.value().ok);
  const json::Value* rows = slow.value().body.find("slowlog");
  ASSERT_NE(rows, nullptr);
  ASSERT_FALSE(rows->as_array().empty());
  bool minted = false;
  for (const json::Value& row : rows->as_array()) {
    if (row.get_number("id", 0.0) == 2.0) {
      EXPECT_GT(row.get_number("trace_id", 0.0), 0.0)
          << "router forwarded hop without minting a trace id";
      minted = true;
    }
  }
  EXPECT_TRUE(minted) << "request 2 never reached the backend slowlog";
  router.stop();
}

TEST_F(RouterTest, RouterTraceOpStitchesRouterAndBackendProcs) {
  obs::clear_trace_events();
  Fleet fleet(2, "trfan");
  fleet.start_all();
  RouterConfig cfg = fast_router_config(fleet, "trfan_r");
  Router router(cfg);
  ASSERT_TRUE(router.start().ok());
  Result<Client> client = Client::connect(cfg.socket_path);
  ASSERT_TRUE(client.ok());

  Request tagged;
  tagged.id = 1;
  tagged.op = Op::kPartition;
  tagged.programs = {"prog0", "prog1"};
  tagged.trace_id = 9002;
  ASSERT_TRUE(client.value().call(encode_request(tagged)).ok());

  // The fan-out merges the router's own proc with every backend's,
  // replicas disambiguated as "serve.<slot>". Spans close asynchronously,
  // so poll until the backend's solve shows up in the merged timeline.
  Request query;
  query.id = 2;
  query.op = Op::kTrace;
  query.trace_id = 9002;
  bool router_fwd = false, backend_solve = false;
  json::Value last_body;
  for (int spin = 0; spin < 2000 && !(router_fwd && backend_solve);
       ++spin) {
    Result<Response> r = client.value().call(encode_request(query));
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().ok) << r.value().error;
    last_body = r.value().body;
    const json::Value* procs = last_body.find("procs");
    ASSERT_NE(procs, nullptr);
    router_fwd = backend_solve = false;
    for (const json::Value& proc : procs->as_array()) {
      std::string label = proc.get_string("proc", "");
      const json::Value* spans = proc.find("spans");
      ASSERT_NE(spans, nullptr);
      for (const json::Value& s : spans->as_array()) {
        std::string name = s.get_string("name", "");
        if (label == "router" && name == "serve.router.forward")
          router_fwd = true;
        if (label.rfind("serve.", 0) == 0 && name == "serve.solve")
          backend_solve = true;
      }
    }
    if (!(router_fwd && backend_solve))
      std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_TRUE(router_fwd) << "merged trace lost the router span";
  EXPECT_TRUE(backend_solve) << "merged trace lost the backend solve";

  // The router's own proc leads the list; every proc entry carries the
  // clock pair the stitcher aligns timelines with.
  EXPECT_EQ(last_body.get_number("trace_id", 0.0), 9002.0);
  const json::Value* procs = last_body.find("procs");
  ASSERT_GE(procs->as_array().size(), 2u);
  EXPECT_EQ(procs->as_array()[0].get_string("proc", ""), "router");
  for (const json::Value& proc : procs->as_array()) {
    EXPECT_GT(proc.get_number("mono_ns", 0.0), 0.0);
    EXPECT_GT(proc.get_number("wall_ns", 0.0), 0.0);
  }
  router.stop();
}

TEST_F(RouterTest, RouterRecordsPerBackendLatencySeries) {
  Fleet fleet(2, "blat");
  fleet.start_all();
  RouterConfig cfg = fast_router_config(fleet, "blat_r");
  Router router(cfg);
  ASSERT_TRUE(router.start().ok());

  // Eager registration: one latency histogram and windowed p99 gauge per
  // backend slot exist before any traffic.
  obs::MetricsSnapshot snap = obs::metrics_snapshot();
  for (const char* name :
       {"serve.router.backend_latency.0", "serve.router.backend_latency.1"}) {
    bool found = false;
    for (const auto& h : snap.histograms) found = found || h.name == name;
    EXPECT_TRUE(found) << name << " not registered at startup";
  }

  Result<Client> client = Client::connect(cfg.socket_path);
  ASSERT_TRUE(client.ok());
  for (int i = 1; i <= 4; ++i)
    ASSERT_TRUE(client.value().call(partition_line(i)).ok());

  // All four requests share a placement key, so exactly one backend's
  // histogram saw the attempts.
  snap = obs::metrics_snapshot();
  std::uint64_t attempts = 0;
  std::size_t backends_hit = 0;
  for (const auto& h : snap.histograms) {
    if (h.name.rfind("serve.router.backend_latency.", 0) != 0) continue;
    attempts += h.count;
    if (h.count > 0) ++backends_hit;
  }
  EXPECT_GE(attempts, 4u);
  EXPECT_EQ(backends_hit, 1u);

  // A metrics scrape refreshes the per-backend windowed p99 gauges.
  Result<Response> metrics =
      client.value().call(R"({"id":9,"op":"metrics"})");
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(metrics.value().ok) << metrics.value().error;
  const json::Value* gauges = metrics.value().body.find("metrics")->find(
      "gauges");
  ASSERT_NE(gauges, nullptr);
  double p99_0 =
      gauges->get_number("serve.router.backend_latency.0.window.p99", -1.0);
  double p99_1 =
      gauges->get_number("serve.router.backend_latency.1.window.p99", -1.0);
  EXPECT_GE(p99_0, 0.0);
  EXPECT_GE(p99_1, 0.0);
  EXPECT_GT(std::max(p99_0, p99_1), 0.0)
      << "no backend's windowed p99 moved after 4 forwards";
  router.stop();
}
#endif  // OCPS_OBS_DISABLED

TEST_F(RouterTest, RouterSloOpReportsFleetBurn) {
  Fleet fleet(1, "rslo");
  fleet.start_all();
  RouterConfig cfg = fast_router_config(fleet, "rslo_r");
  cfg.slo_p99_ms = 60000.0;  // everything is fast: never breaching
  Router router(cfg);
  ASSERT_TRUE(router.start().ok());
  Result<Client> client = Client::connect(cfg.socket_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().call(partition_line(1)).ok());

  // Answered locally by the router's own tracker (fleet-level burn over
  // forward outcomes), with the role marker distinguishing it from a
  // backend's answer. Obs-independent, like the daemon's `slo`.
  obs::set_enabled(false);
  Result<Response> r = client.value().call(R"({"id":2,"op":"slo"})");
  obs::set_enabled(true);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok) << r.value().error;
  EXPECT_EQ(r.value().body.get_string("role", ""), "router");
  EXPECT_TRUE(r.value().body.get_bool("configured", false));
  const json::Value* objectives = r.value().body.find("objectives");
  ASSERT_NE(objectives, nullptr);
  ASSERT_EQ(objectives->as_array().size(), 1u);
  const json::Value& latency = objectives->as_array()[0];
  EXPECT_EQ(latency.get_string("name", ""), "latency");
  EXPECT_DOUBLE_EQ(latency.get_number("target", 0.0), 60000.0);
  EXPECT_FALSE(latency.get_bool("breaching", true));
  EXPECT_EQ(r.value().body.get_number("alerts_total", -1.0), 0.0);
  router.stop();
}

TEST_F(RouterTest, RouterDecisionsFanOutAndReconcileFindsTheIssuer) {
  Fleet fleet(2, "dfan");
  fleet.start_all();
  RouterConfig cfg = fast_router_config(fleet, "dfan_r");
  Router router(cfg);
  ASSERT_TRUE(router.start().ok());
  Result<Client> client = Client::connect(cfg.socket_path);
  ASSERT_TRUE(client.ok());

  // One partition request lands on exactly one backend (stable
  // placement), minting decision id 1 there and nowhere else.
  Result<Response> part = client.value().call(partition_line(1));
  ASSERT_TRUE(part.ok());
  ASSERT_TRUE(part.value().ok) << part.value().error;
  EXPECT_EQ(part.value().body.get_number("decision_id", 0.0), 1.0);

  // `decisions` fans out breaker-blind: the fleet view is the union of
  // every backend's ring, each row tagged with its origin slot.
  Request list;
  list.id = 2;
  list.op = Op::kDecisions;
  Result<Response> listed = client.value().call(encode_request(list));
  ASSERT_TRUE(listed.ok());
  ASSERT_TRUE(listed.value().ok) << listed.value().error;
  EXPECT_EQ(listed.value().body.get_string("role", ""), "router");
  const json::Value* rows = listed.value().body.find("backends");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->as_array().size(), 2u);
  std::size_t total = 0;
  for (const json::Value& row : rows->as_array()) {
    EXPECT_GE(row.get_number("backend", -1.0), 0.0);
    EXPECT_FALSE(row.get_string("endpoint", "").empty());
    const json::Value* decs = row.find("decisions");
    ASSERT_NE(decs, nullptr);
    ASSERT_NE(row.find("accuracy"), nullptr);
    ASSERT_NE(row.find("drift"), nullptr);
    total += decs->as_array().size();
  }
  EXPECT_EQ(total, 1u);

  // Reconcile walks the fleet: the non-issuer answers 404 and is
  // skipped; the issuer's acceptance comes back tagged with its slot.
  Request rec;
  rec.id = 3;
  rec.op = Op::kReconcile;
  rec.decision_id = 1;
  rec.realized = {0.5, 0.5};
  Result<Response> applied = client.value().call(encode_request(rec));
  ASSERT_TRUE(applied.ok());
  ASSERT_TRUE(applied.value().ok) << applied.value().error;
  EXPECT_GE(applied.value().body.get_number("backend", -1.0), 0.0);
  const json::Value* decision = applied.value().body.find("decision");
  ASSERT_NE(decision, nullptr);
  EXPECT_TRUE(decision->get_bool("reconciled", false));

  // A second application is a definitive rejection (422) — relayed as
  // is, never retried on the other backend, where the same id could
  // collide with a different decision.
  rec.id = 4;
  Result<Response> again = client.value().call(encode_request(rec));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().ok);
  EXPECT_EQ(again.value().code, kCodeUnprocessable);

  // An id no backend ever issued is a fleet-wide 404.
  rec.id = 5;
  rec.decision_id = 99;
  Result<Response> unknown = client.value().call(encode_request(rec));
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(unknown.value().ok);
  EXPECT_EQ(unknown.value().code, kCodeNotFound);

  // Fetch-one through the router: only the issuer contributes a row,
  // and an id nobody knows is 404 rather than an empty union.
  Request one;
  one.id = 6;
  one.op = Op::kDecisions;
  one.decision_id = 1;
  Result<Response> fetched = client.value().call(encode_request(one));
  ASSERT_TRUE(fetched.ok());
  ASSERT_TRUE(fetched.value().ok) << fetched.value().error;
  const json::Value* hit = fetched.value().body.find("backends");
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->as_array().size(), 1u);
  ASSERT_NE(hit->as_array()[0].find("decision"), nullptr);

  one.id = 7;
  one.decision_id = 99;
  Result<Response> missing = client.value().call(encode_request(one));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value().ok);
  EXPECT_EQ(missing.value().code, kCodeNotFound);
  router.stop();
}

TEST_F(RouterTest, RouterConfigValidatesSloKnobs) {
  RouterConfig cfg;
  cfg.socket_path = unique_socket_path("badslo_r");
  cfg.backends = {unique_socket_path("ghost")};
  cfg.slo_p99_ms = -5.0;
  EXPECT_THROW(Router{cfg}, CheckError);
  cfg.slo_p99_ms = 0.0;
  cfg.slo_availability = 1.5;  // must be in [0, 1)
  EXPECT_THROW(Router{cfg}, CheckError);
}

}  // namespace
}  // namespace ocps::serve
