// Exact LRU stack distances (reuse distances) and the exact LRU miss-ratio
// curve.
//
// The stack distance of an access is its depth in the LRU stack: the number
// of distinct blocks touched since the previous access to the same block,
// counting the block itself. A fully-associative LRU cache of size c hits
// exactly the accesses with stack distance <= c, so one O(n log n) pass
// (Fenwick tree over last-access positions — the Olken/Bennett-Kruskal
// algorithm) yields the miss count for *every* cache size simultaneously.
// This is the library's ground truth for validating the HOTL estimate and
// the shared-cache simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "locality/mrc.hpp"
#include "trace/trace.hpp"

namespace ocps {

/// Stack-distance histogram of a trace.
struct StackDistanceHistogram {
  /// hist[d] = number of accesses with stack distance d (d >= 1).
  std::vector<std::uint64_t> hist;
  std::uint64_t cold_misses = 0;   ///< first-touch accesses (infinite sd)
  std::uint64_t trace_length = 0;

  /// Misses of a fully-associative LRU cache of size c.
  std::uint64_t misses_at(std::size_t c) const;
};

/// Computes the exact stack-distance histogram in O(n log n).
StackDistanceHistogram stack_distances(const Trace& trace);

/// Exact fully-associative LRU miss-ratio curve for sizes 0..capacity.
MissRatioCurve exact_lru_mrc(const Trace& trace, std::size_t capacity);

/// Exact MRC from a precomputed histogram (avoids reprofiling).
MissRatioCurve exact_lru_mrc(const StackDistanceHistogram& hist,
                             std::size_t capacity);

}  // namespace ocps
