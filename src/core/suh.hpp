// Suh-Rudolph-Devadas style segmented greedy partitioning (§IX related
// work: "Suh et al. gave a solution which divides MRC between non-convex
// points but concluded that the solution may be too expensive").
//
// The idea: split each program's miss-ratio curve at its non-convex
// points into convex segments; the greedy then allocates whole *segments*
// (not single units) by marginal utility — miss-count reduction per unit
// — so a cliff is either taken in full or not at all, fixing the classic
// STTW blindness without the DP's full O(P·C²) sweep. It is still a
// greedy (a knapsack heuristic), so the DP can beat it; the fig. 7
// variant ablation quantifies where each lands.
#pragma once

#include <vector>

#include "core/sttw.hpp"

namespace ocps {

/// Runs the segmented greedy on cost curves (same convention as
/// optimize_partition / sttw_partition).
SttwResult suh_partition(const std::vector<std::vector<double>>& cost,
                         std::size_t capacity);

}  // namespace ocps
