# Empty dependencies file for phase_partition_sharing.
# This may be replaced when dependencies are built.
