// Dispatch, parity, and edge-case coverage for the forward-layer DP
// kernels (core/dp_kernel.*), plus the incremental re-solve path of
// PrefixDpSolver.
//
// The contract under test is strict: the AVX2 kernel must be bit-for-bit
// identical to the pinned scalar reference — values, choice backtracks,
// AND the cell count — for every layer shape the solvers can produce
// (capacity 0, all-infinite prev columns, non-zero lower bounds, hi
// below capacity, every masked tail width 1..7, and the single-state
// final-layer form). Comparisons are memcmp, not ==, so a -0.0/0.0 or
// NaN divergence cannot hide.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/batch_engine.hpp"
#include "core/dp_kernel.hpp"
#include "core/dp_partition.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

using dp_detail::KernelKind;

constexpr double kInf = std::numeric_limits<double>::infinity();

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Restores automatic kernel dispatch even when a test fails mid-body.
struct KernelGuard {
  ~KernelGuard() { dp_detail::reset_kernel_for_testing(); }
};

// One forward-layer invocation's full output, with sentinel-filled
// next/choice so "left untouched outside [k_begin, k_end]" is checked
// bitwise too.
struct LayerRun {
  std::vector<double> next;
  std::vector<std::uint32_t> choice;
  std::uint64_t cells = 0;
};

LayerRun run_layer(bool avx2, DpObjective objective,
                   const std::vector<double>& cost_row, std::size_t lo,
                   std::size_t hi, std::size_t k_begin, std::size_t k_end,
                   bool prev_is_base, const std::vector<double>& prev) {
  LayerRun out;
  out.next.assign(cost_row.size(), -12345.5);
  out.choice.assign(cost_row.size(), 0xDEADBEEFu);
  const double* prev_ptr = prev_is_base ? nullptr : prev.data();
  out.cells = (avx2 ? dp_detail::forward_layer_avx2
                    : dp_detail::forward_layer_scalar)(
      objective, cost_row.data(), lo, hi, k_begin, k_end, prev_is_base,
      prev_ptr, out.next.data(), out.choice.data());
  return out;
}

void expect_layers_identical(const LayerRun& s, const LayerRun& a,
                             const char* what) {
  ASSERT_EQ(s.next.size(), a.next.size());
  EXPECT_EQ(s.cells, a.cells) << what << ": cell counts differ";
  EXPECT_EQ(0, std::memcmp(s.next.data(), a.next.data(),
                           s.next.size() * sizeof(double)))
      << what << ": next values differ";
  EXPECT_EQ(0, std::memcmp(s.choice.data(), a.choice.data(),
                           s.choice.size() * sizeof(std::uint32_t)))
      << what << ": choice backtracks differ";
}

// Runs one layer under both kernels and requires bitwise identity.
void check_parity(DpObjective objective, const std::vector<double>& cost_row,
                  std::size_t lo, std::size_t hi, std::size_t k_begin,
                  std::size_t k_end, bool prev_is_base,
                  const std::vector<double>& prev, const char* what) {
  LayerRun s = run_layer(false, objective, cost_row, lo, hi, k_begin, k_end,
                         prev_is_base, prev);
  LayerRun a = run_layer(true, objective, cost_row, lo, hi, k_begin, k_end,
                         prev_is_base, prev);
  expect_layers_identical(s, a, what);
}

std::vector<double> random_row(std::mt19937& rng, std::size_t n,
                               double inf_prob = 0.0) {
  std::uniform_real_distribution<double> dist(0.0, 10.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<double> row(n);
  for (double& v : row) v = coin(rng) < inf_prob ? kInf : dist(rng);
  return row;
}

// ------------------------------------------------------------ dispatch

TEST(DpKernelDispatch, TestOverrideForcesKernelAndResetRestoresAuto) {
  KernelGuard guard;
  dp_detail::set_kernel_for_testing(KernelKind::kScalar);
  EXPECT_EQ(dp_detail::active_kernel(), KernelKind::kScalar);

  dp_detail::set_kernel_for_testing(KernelKind::kAvx2);
  if (dp_detail::cpu_supports_avx2())
    EXPECT_EQ(dp_detail::active_kernel(), KernelKind::kAvx2);
  else
    // A forced AVX2 on a CPU without it degrades to scalar, not a fault.
    EXPECT_EQ(dp_detail::active_kernel(), KernelKind::kScalar);

  dp_detail::reset_kernel_for_testing();
  // Post-reset dispatch re-resolves; whatever it picks must be runnable.
  KernelKind k = dp_detail::active_kernel();
  if (!dp_detail::cpu_supports_avx2()) EXPECT_EQ(k, KernelKind::kScalar);
}

TEST(DpKernelDispatch, KernelNamesAreStable) {
  EXPECT_STREQ(dp_detail::kernel_name(KernelKind::kScalar), "scalar");
  EXPECT_STREQ(dp_detail::kernel_name(KernelKind::kAvx2), "avx2");
}

// ------------------------------------------------------- edge parity
//
// Each test exercises both kernels directly (forward_layer_scalar vs
// forward_layer_avx2). On a machine without AVX2 the avx2 entry point is
// a scalar passthrough, so the comparisons still compile and pass — the
// real cross-ISA check runs wherever AVX2 exists (CI dispatch-parity
// leg).

TEST(DpKernelParity, CapacityZeroSingleState) {
  for (DpObjective obj : {DpObjective::kSumCost, DpObjective::kMaxCost}) {
    std::vector<double> cost_row = {3.25};
    std::vector<double> prev = {1.5};
    check_parity(obj, cost_row, /*lo=*/0, /*hi=*/0, /*k_begin=*/0,
                 /*k_end=*/0, /*prev_is_base=*/false, prev, "capacity 0");

    // Semantics: the only candidate is c = 0.
    LayerRun r = run_layer(true, obj, cost_row, 0, 0, 0, 0, false, prev);
    double want = obj == DpObjective::kSumCost ? 1.5 + 3.25
                                               : std::max(1.5, 3.25);
    EXPECT_TRUE(same_bits(r.next[0], want));
    EXPECT_EQ(r.choice[0], 0u);
    EXPECT_EQ(r.cells, 1u);
  }
}

TEST(DpKernelParity, BaseLayerClosedForm) {
  std::mt19937 rng(7);
  for (DpObjective obj : {DpObjective::kSumCost, DpObjective::kMaxCost}) {
    std::vector<double> cost_row = random_row(rng, 33);
    std::vector<double> prev;  // unused when prev_is_base
    check_parity(obj, cost_row, /*lo=*/0, /*hi=*/32, /*k_begin=*/0,
                 /*k_end=*/32, /*prev_is_base=*/true, prev, "base layer");
    check_parity(obj, cost_row, /*lo=*/5, /*hi=*/20, /*k_begin=*/0,
                 /*k_end=*/32, /*prev_is_base=*/true, prev,
                 "base layer with bounds");
  }
}

TEST(DpKernelParity, AllInfinitePrevLeavesStatesInfeasible) {
  std::mt19937 rng(11);
  for (DpObjective obj : {DpObjective::kSumCost, DpObjective::kMaxCost}) {
    std::vector<double> cost_row = random_row(rng, 40);
    std::vector<double> prev(40, kInf);
    check_parity(obj, cost_row, 0, 39, 0, 39, false, prev, "all-inf prev");

    // Semantics: no live candidate anywhere — every state stays +inf
    // with choice pinned to 0, exactly like the scalar reference.
    LayerRun r = run_layer(true, obj, cost_row, 0, 39, 0, 39, false, prev);
    for (std::size_t k = 0; k <= 39; ++k) {
      EXPECT_TRUE(same_bits(r.next[k], kInf)) << "k=" << k;
      EXPECT_EQ(r.choice[k], 0u) << "k=" << k;
    }
  }
}

TEST(DpKernelParity, NonZeroLowerBound) {
  std::mt19937 rng(13);
  for (DpObjective obj : {DpObjective::kSumCost, DpObjective::kMaxCost}) {
    std::vector<double> cost_row = random_row(rng, 50);
    std::vector<double> prev = random_row(rng, 50, 0.15);
    for (std::size_t lo : {1u, 3u, 17u, 49u}) {
      check_parity(obj, cost_row, lo, 49, 0, 49, false, prev,
                   "non-zero lo");
      // States below lo have an empty candidate range: infeasible.
      LayerRun r =
          run_layer(true, obj, cost_row, lo, 49, 0, 49, false, prev);
      for (std::size_t k = 0; k < lo; ++k)
        EXPECT_TRUE(same_bits(r.next[k], kInf)) << "lo=" << lo << " k=" << k;
    }
  }
}

TEST(DpKernelParity, HiBelowCapacityCapsChoices) {
  std::mt19937 rng(17);
  for (DpObjective obj : {DpObjective::kSumCost, DpObjective::kMaxCost}) {
    std::vector<double> cost_row = random_row(rng, 60);
    std::vector<double> prev = random_row(rng, 60, 0.1);
    for (std::size_t hi : {0u, 1u, 7u, 8u, 9u, 31u}) {
      check_parity(obj, cost_row, 0, hi, 0, 59, false, prev,
                   "hi below capacity");
      LayerRun r =
          run_layer(true, obj, cost_row, 0, hi, 0, 59, false, prev);
      for (std::size_t k = 0; k <= 59; ++k)
        EXPECT_LE(r.choice[k], hi) << "hi=" << hi << " k=" << k;
    }
  }
}

TEST(DpKernelParity, EveryMaskedTailWidth) {
  // k-ranges of width 1..7 (pure tail block), 8 (one full block), and
  // 9..15 (full block + tail) — every mask the AVX2 kernel can load.
  std::mt19937 rng(19);
  for (DpObjective obj : {DpObjective::kSumCost, DpObjective::kMaxCost}) {
    std::vector<double> cost_row = random_row(rng, 64);
    std::vector<double> prev = random_row(rng, 64, 0.1);
    for (std::size_t width = 1; width <= 15; ++width) {
      for (std::size_t k_begin : {0u, 5u, 40u}) {
        std::size_t k_end = k_begin + width - 1;
        if (k_end > 63) continue;
        check_parity(obj, cost_row, 0, 63, k_begin, k_end, false, prev,
                     "masked tail width");
      }
    }
  }
}

TEST(DpKernelParity, SingleStateFinalLayerForm) {
  // The final layer of every PrefixDpSolver solve: k_begin == k_end ==
  // capacity. The AVX2 kernel vectorizes over c here with reversed
  // loads; the cross-lane reduction must keep the smallest-c tie-break.
  std::mt19937 rng(23);
  for (DpObjective obj : {DpObjective::kSumCost, DpObjective::kMaxCost}) {
    for (std::size_t cap : {1u, 2u, 7u, 8u, 9u, 16u, 33u, 57u}) {
      std::vector<double> cost_row = random_row(rng, cap + 1);
      std::vector<double> prev = random_row(rng, cap + 1, 0.2);
      for (std::size_t lo : {0u, 1u, 5u}) {
        if (lo > cap) continue;
        check_parity(obj, cost_row, lo, cap, cap, cap, false, prev,
                     "single-state final layer");
      }
    }
  }
}

TEST(DpKernelParity, TieBreaksTowardSmallestChoice) {
  // A constant cost row with constant prev makes every candidate tie;
  // both kernels must pick c = lo at every state.
  for (DpObjective obj : {DpObjective::kSumCost, DpObjective::kMaxCost}) {
    std::vector<double> cost_row(32, 2.0);
    std::vector<double> prev(32, 1.0);
    check_parity(obj, cost_row, 0, 31, 0, 31, false, prev, "all ties");
    LayerRun r = run_layer(true, obj, cost_row, 3, 31, 0, 31, false, prev);
    for (std::size_t k = 3; k <= 31; ++k) EXPECT_EQ(r.choice[k], 3u);
  }
}

TEST(DpKernelParity, FuzzRandomLayerShapes) {
  std::mt19937 rng(0xC0FFEE);
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t cap = rng() % 70;
    const DpObjective obj =
        rng() % 2 ? DpObjective::kMaxCost : DpObjective::kSumCost;
    std::vector<double> cost_row = random_row(rng, cap + 1);
    const double inf_prob = (trial % 5 == 0) ? 1.0 : 0.2;
    std::vector<double> prev = random_row(rng, cap + 1, inf_prob);
    std::size_t lo = rng() % (cap + 1);
    std::size_t hi = lo + rng() % (cap + 1 - lo);
    std::size_t k_begin = rng() % (cap + 1);
    std::size_t k_end = k_begin + rng() % (cap + 1 - k_begin);
    check_parity(obj, cost_row, lo, hi, k_begin, k_end, false, prev,
                 "fuzz layer");
  }
}

// --------------------------------------------------- whole-DP parity

TEST(DpKernelParity, FullSolveIdenticalAcrossKernels) {
  KernelGuard guard;
  std::mt19937 rng(31);
  const std::size_t p = 6, capacity = 48;
  CostMatrix costs(p, capacity);
  for (std::size_t i = 0; i < p; ++i) {
    std::vector<double> row = random_row(rng, capacity + 1);
    std::memcpy(costs.row(i), row.data(), row.size() * sizeof(double));
  }
  DpOptions options;
  options.min_alloc.assign(p, 2);
  options.max_alloc.assign(p, capacity - 4);

  dp_detail::set_kernel_for_testing(KernelKind::kScalar);
  DpResult scalar = optimize_partition(costs.view(), capacity, options);
  dp_detail::set_kernel_for_testing(KernelKind::kAvx2);
  DpResult simd = optimize_partition(costs.view(), capacity, options);

  ASSERT_TRUE(scalar.feasible);
  EXPECT_EQ(scalar.feasible, simd.feasible);
  EXPECT_EQ(scalar.alloc, simd.alloc);
  EXPECT_TRUE(same_bits(scalar.objective_value, simd.objective_value));
}

// ------------------------------------------------ incremental re-solve

class IncrementalResolveTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPrograms = 8;
  static constexpr std::size_t kCapacity = 40;

  void SetUp() override {
    std::mt19937 rng(37);
    costs_ = CostMatrix(kPrograms, kCapacity);
    for (std::size_t i = 0; i < kPrograms; ++i) {
      std::vector<double> row = random_row(rng, kCapacity + 1);
      std::memcpy(costs_.row(i), row.data(), row.size() * sizeof(double));
    }
    members_.resize(kPrograms);
    for (std::size_t i = 0; i < kPrograms; ++i)
      members_[i] = static_cast<std::uint32_t>(i);
  }

  // The ground truth an incremental refresh must match: a cold solver
  // configured directly on the current table.
  DpResult cold_solve() const {
    PrefixDpSolver fresh;
    fresh.configure(costs_.view(), kCapacity, DpObjective::kSumCost);
    DpResult out;
    fresh.solve(members_.data(), kPrograms, nullptr, out);
    return out;
  }

  static void expect_same_result(const DpResult& a, const DpResult& b) {
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    EXPECT_EQ(a.alloc, b.alloc);
    EXPECT_TRUE(same_bits(a.objective_value, b.objective_value));
  }

  CostMatrix costs_;
  std::vector<std::uint32_t> members_;
};

TEST_F(IncrementalResolveTest, FingerprintDiffInvalidatesOnlySuffix) {
  PrefixDpSolver solver;
  solver.configure(costs_.view(), kCapacity, DpObjective::kSumCost);
  DpResult result;
  solver.solve(members_.data(), kPrograms, nullptr, result);
  ASSERT_TRUE(result.feasible);
  // 7 non-final layers cached + the final single-state layer.
  EXPECT_EQ(solver.stats().layers_computed, kPrograms);

  // Mutate program 5's row in place (the controller's EWMA pattern).
  costs_.row(5)[kCapacity / 2] += 0.75;
  std::size_t invalidated = solver.resolve_incremental(costs_.view());
  // Layers 0..4 survive; layers 5 and 6 (prefixes through program 5)
  // are dropped. The final layer was never cached.
  EXPECT_EQ(invalidated, 2u);
  EXPECT_EQ(solver.stats().layers_invalidated, 2u);
  EXPECT_EQ(solver.stats().incremental_refreshes, 1u);

  const std::uint64_t before = solver.stats().layers_computed;
  solver.solve(members_.data(), kPrograms, nullptr, result);
  // Rebuilt: the two invalidated layers + the final layer. O(suffix).
  EXPECT_EQ(solver.stats().layers_computed - before, 3u);
  expect_same_result(result, cold_solve());
}

TEST_F(IncrementalResolveTest, ExplicitProgramIndexInvalidatesSameSuffix) {
  PrefixDpSolver solver;
  solver.configure(costs_.view(), kCapacity, DpObjective::kSumCost);
  DpResult result;
  solver.solve(members_.data(), kPrograms, nullptr, result);

  costs_.row(5)[3] = 9.25;
  // The view still points at the same storage; name the changed program
  // instead of diffing fingerprints.
  EXPECT_EQ(solver.resolve_incremental(std::uint32_t{5}), 2u);
  solver.solve(members_.data(), kPrograms, nullptr, result);
  expect_same_result(result, cold_solve());
}

TEST_F(IncrementalResolveTest, ChangeInLastProgramInvalidatesNoLayers) {
  PrefixDpSolver solver;
  solver.configure(costs_.view(), kCapacity, DpObjective::kSumCost);
  DpResult result;
  solver.solve(members_.data(), kPrograms, nullptr, result);

  // The final program's layer is never cached, so a change there costs
  // zero invalidations — but the next solve must still see the new row.
  costs_.row(kPrograms - 1)[7] += 2.0;
  EXPECT_EQ(solver.resolve_incremental(costs_.view()), 0u);
  const std::uint64_t before = solver.stats().layers_computed;
  solver.solve(members_.data(), kPrograms, nullptr, result);
  EXPECT_EQ(solver.stats().layers_computed - before, 1u);  // final only
  expect_same_result(result, cold_solve());
}

TEST_F(IncrementalResolveTest, UnchangedTableKeepsEveryLayer) {
  PrefixDpSolver solver;
  solver.configure(costs_.view(), kCapacity, DpObjective::kSumCost);
  DpResult result;
  solver.solve(members_.data(), kPrograms, nullptr, result);

  EXPECT_EQ(solver.resolve_incremental(costs_.view()), 0u);
  EXPECT_EQ(solver.stats().layers_invalidated, 0u);
  const std::uint64_t before = solver.stats().layers_computed;
  solver.solve(members_.data(), kPrograms, nullptr, result);
  EXPECT_EQ(solver.stats().layers_computed - before, 1u);
  expect_same_result(result, cold_solve());
}

TEST_F(IncrementalResolveTest, EveryChangePositionMatchesColdSolve) {
  // Sweep the change position across the whole chain: invalidation must
  // always be (cached layers from the first occurrence on) and results
  // must always match a cold solver.
  for (std::size_t changed = 0; changed < kPrograms; ++changed) {
    SetUp();  // fresh table
    PrefixDpSolver solver;
    solver.configure(costs_.view(), kCapacity, DpObjective::kSumCost);
    DpResult result;
    solver.solve(members_.data(), kPrograms, nullptr, result);

    costs_.row(changed)[1] += 0.5;
    std::size_t expect_invalidated =
        changed + 1 < kPrograms ? kPrograms - 1 - changed : 0;
    EXPECT_EQ(solver.resolve_incremental(costs_.view()), expect_invalidated)
        << "changed=" << changed;
    solver.solve(members_.data(), kPrograms, nullptr, result);
    expect_same_result(result, cold_solve());
  }
}

TEST_F(IncrementalResolveTest, RejectsShapeChangeAndNonFiniteRows) {
  PrefixDpSolver solver;
  solver.configure(costs_.view(), kCapacity, DpObjective::kSumCost);

  CostMatrix wrong_shape(kPrograms + 1, kCapacity);
  EXPECT_THROW(solver.resolve_incremental(wrong_shape.view()), CheckError);

  costs_.row(2)[4] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(solver.resolve_incremental(costs_.view()), CheckError);
}

}  // namespace
}  // namespace ocps
