#include "trace/trace.hpp"

#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"

namespace ocps {

std::size_t Trace::distinct_blocks() const {
  std::unordered_set<Block> seen;
  seen.reserve(accesses.size() / 4 + 16);
  for (Block b : accesses) seen.insert(b);
  return seen.size();
}

Trace Trace::relabeled(Block base) const {
  Trace out;
  out.accesses.reserve(accesses.size());
  std::unordered_map<Block, Block> remap;
  remap.reserve(accesses.size() / 4 + 16);
  Block next = base;
  for (Block b : accesses) {
    auto [it, inserted] = remap.try_emplace(b, next);
    if (inserted) ++next;
    out.accesses.push_back(it->second);
  }
  return out;
}

void Trace::append(const Trace& other) {
  accesses.insert(accesses.end(), other.accesses.begin(),
                  other.accesses.end());
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  s.length = trace.length();
  if (trace.empty()) return s;
  s.distinct = trace.distinct_blocks();
  s.min_block = trace.accesses.front();
  s.max_block = trace.accesses.front();
  for (Block b : trace.accesses) {
    s.min_block = std::min(s.min_block, b);
    s.max_block = std::max(s.max_block, b);
  }
  return s;
}

}  // namespace ocps
