// Trace persistence: a simple binary format plus a line-oriented text
// format for hand-written fixtures (the Fig. 1 and Fig. 3 example traces
// live in tests as text).
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace ocps {

/// Writes the trace as little-endian u64 block ids with a small header.
/// Throws CheckError on IO failure.
void save_trace_binary(const Trace& trace, const std::string& path);

/// Reads a trace written by save_trace_binary.
Trace load_trace_binary(const std::string& path);

/// Parses a whitespace-separated token trace, mapping each distinct token
/// to a dense block id in first-appearance order. Letters, words, and
/// numbers all work: "a a x b b y" gives blocks 0 0 1 2 2 3.
Trace parse_token_trace(const std::string& text);

/// Parses a line-oriented address trace: one memory address per line
/// (decimal or 0x-hex; an optional leading R/W/I token is ignored; blank
/// lines and lines starting with '#' are skipped). Addresses are mapped to
/// block ids by dividing by block_bytes — the format produced by simple
/// Pin/Valgrind tools.
Trace parse_address_trace(const std::string& text, std::uint64_t block_bytes);

/// Reads an address-trace file (same format) from disk.
Trace load_address_trace(const std::string& path, std::uint64_t block_bytes);

}  // namespace ocps
