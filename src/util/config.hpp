// Environment-variable configuration for bench binaries.
//
// The harness binaries are run as plain executables (`for b in bench/*; do
// $b; done`), so their knobs — group-count limits, cache size, trace length,
// CSV output — come from OCPS_* environment variables with safe defaults.
#pragma once

#include <cstdint>
#include <string>

namespace ocps {

/// Reads an integer env var; returns fallback when unset or malformed.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Reads a floating-point env var; returns fallback when unset or malformed.
double env_double(const std::string& name, double fallback);

/// Reads a string env var; returns fallback when unset.
std::string env_string(const std::string& name, const std::string& fallback);

/// True when the env var is set to a truthy value ("1", "true", "yes", "on").
bool env_flag(const std::string& name, bool fallback = false);

}  // namespace ocps
