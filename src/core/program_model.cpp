#include "core/program_model.hpp"

#include <algorithm>

#include "locality/hotl.hpp"
#include "util/check.hpp"

namespace ocps {

namespace {

// HOTL Eq. 10 evaluated on a (possibly downsampled) piecewise-linear
// footprint: mr(c) = fp(w*+1) - c with fp(w*) = c, floored at the cold-miss
// ratio and clamped into [0, 1].
MissRatioCurve mrc_from_curve(const PiecewiseLinear& fp, std::uint64_t n,
                              std::uint64_t m, std::size_t capacity) {
  OCPS_CHECK(n > 0, "model needs a non-empty trace");
  const double cold = static_cast<double>(m) / static_cast<double>(n);
  std::vector<double> ratios(capacity + 1, 0.0);
  for (std::size_t c = 0; c <= capacity; ++c) {
    double cs = static_cast<double>(c);
    double mr;
    if (c == 0) {
      mr = 1.0;
    } else if (cs >= static_cast<double>(m)) {
      mr = cold;
    } else {
      double w = fp.inverse(cs);
      mr = std::clamp(fp(w + 1.0) - cs, 0.0, 1.0);
      mr = std::max(mr, cold);
    }
    ratios[c] = mr;
  }
  MissRatioCurve mrc(std::move(ratios), n);
  return mrc.monotone_repaired();
}

}  // namespace

ProgramModel make_program_model(const std::string& name, double access_rate,
                                const FootprintCurve& fp,
                                std::size_t capacity,
                                std::size_t footprint_knots) {
  OCPS_CHECK(access_rate > 0.0, "access rate must be positive");
  ProgramModel model;
  model.name = name;
  model.access_rate = access_rate;
  model.trace_length = fp.trace_length;
  model.distinct = fp.distinct;
  model.footprint = fp.to_curve(footprint_knots);
  // Derive the MRC from the *dense* footprint for maximal fidelity; the
  // stored footprint may be downsampled for composition.
  model.mrc = hotl_mrc(fp, capacity);
  return model;
}

ProgramModel model_from_footprint_file(const FootprintFile& file,
                                       std::size_t capacity) {
  ProgramModel model;
  model.name = file.name;
  model.access_rate = file.access_rate;
  model.trace_length = file.trace_length;
  model.distinct = file.distinct;
  model.footprint = file.footprint;
  model.mrc = mrc_from_curve(file.footprint, file.trace_length, file.distinct,
                             capacity);
  return model;
}

}  // namespace ocps
