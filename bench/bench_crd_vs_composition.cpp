// Ablation (§IX "Concurrent Reuse Distance"): CRD vs footprint
// composition. CRD profiles the interleaved trace exactly — but must be
// re-measured for every group; composition profiles each program once and
// predicts any group. This bench measures both sides of the trade-off on
// a sample of pairs/quads: prediction error of composition against the
// exact CRD curve, and the analysis cost of each approach.
#include <iostream>

#include "combinatorics/enumerate.hpp"
#include "common.hpp"
#include "locality/crd.hpp"
#include "trace/interleave.hpp"
#include "util/config.hpp"
#include "util/stats.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Suite suite = load_suite();
  const std::size_t capacity = suite.options.capacity;
  const std::size_t mix_len = static_cast<std::size_t>(
      env_int("OCPS_SIM_LENGTH", 400000));
  std::size_t sample_count =
      static_cast<std::size_t>(env_int("OCPS_CRD_GROUPS", 10));

  auto pairs =
      all_subsets(static_cast<std::uint32_t>(suite.models.size()), 2);
  std::size_t stride = std::max<std::size_t>(1, pairs.size() / sample_count);

  std::cout << "=== CRD (exact, per-group) vs composition (per-program, "
               "composable) ===\n\n";
  TextTable t({"pair", "mean |CRD - composed| mr", "max |CRD - composed|",
               "CRD time", "composition time"});

  std::vector<double> all_errors;
  double crd_total = 0.0, comp_total = 0.0;
  for (std::size_t i = 0; i < pairs.size(); i += stride) {
    const auto& members = pairs[i];
    const ProgramModel& a = suite.models[members[0]];
    const ProgramModel& b = suite.models[members[1]];
    Trace ta = suite_trace(suite, members[0]);
    Trace tb = suite_trace(suite, members[1]);
    InterleavedTrace mix = interleave_proportional(
        {ta, tb}, {a.access_rate, b.access_rate}, mix_len);

    PhaseTimer crd_timer("crd.profile");
    CrdProfile crd = concurrent_reuse_distances(mix);
    MissRatioCurve exact = crd.group_mrc(capacity);
    double crd_s = crd_timer.stop();

    CoRunGroup group({&a, &b});
    PhaseTimer comp_timer("crd.composition");
    std::vector<double> composed(capacity + 1);
    for (std::size_t c = 0; c <= capacity; ++c)
      composed[c] = group_miss_ratio(
          group,
          predict_shared_miss_ratios(group, static_cast<double>(c)));
    double comp_s = comp_timer.stop();

    double worst = 0.0, sum = 0.0;
    for (std::size_t c = 1; c <= capacity; ++c) {
      double err = std::abs(exact.ratio(c) - composed[c]);
      worst = std::max(worst, err);
      sum += err;
      all_errors.push_back(err);
    }
    crd_total += crd_s;
    comp_total += comp_s;
    t.add_row({a.name + "+" + b.name,
               TextTable::num(sum / static_cast<double>(capacity), 5),
               TextTable::num(worst, 5),
               TextTable::num(crd_s * 1e3, 1) + " ms",
               TextTable::num(comp_s * 1e3, 1) + " ms"});
  }
  emit_table(t, "crd_vs_composition");

  Summary err = summarize(all_errors);
  std::cout << "\nacross all sampled sizes: mean error "
            << TextTable::num(err.mean, 5) << ", median "
            << TextTable::num(err.median, 5) << ", max "
            << TextTable::num(err.max, 5) << "\n";
  std::cout << "total analysis time: CRD " << TextTable::num(crd_total, 2)
            << " s (per group, not reusable) vs composition "
            << TextTable::num(comp_total, 2)
            << " s (from per-program profiles reusable across all "
            << "C(16,4)=1820 groups)\n";
  std::cout << "\nPaper §IX: 'CRD is for a given set of programs and must "
               "be measured again when the set changes. It cannot derive "
               "the optimal grouping' — composition can, at a small "
               "accuracy cost quantified above.\n";
  return 0;
}
