// Co-run scheduling onto multiple shared caches (§II scenario 1; the
// "optimal program symbiosis" problem of Wang et al. that the paper builds
// on).
//
// Given npr programs and nc identical caches of C units each, assign every
// program to a cache so that the overall (access-weighted) miss ratio is
// minimized. Each cache's performance is modelled by the composition
// theory: its resident programs share it free-for-all, i.e. the natural
// partition. The search space is the Stirling-number grouping space of
// Eq. 1; we provide an exhaustive optimizer for small npr and a greedy
// heuristic for larger instances.
#pragma once

#include <cstdint>
#include <vector>

#include "combinatorics/enumerate.hpp"
#include "core/program_model.hpp"

namespace ocps {

/// An assignment of programs to caches.
struct Schedule {
  /// cache_of[i] = cache index of program i (0..num_caches-1).
  std::vector<std::uint32_t> cache_of;
  double overall_mr = 0.0;             ///< access-weighted across programs
  std::vector<double> per_program_mr;
};

/// Predicted outcome of a fixed assignment.
Schedule evaluate_schedule(const std::vector<const ProgramModel*>& programs,
                           const std::vector<std::uint32_t>& cache_of,
                           std::size_t num_caches, std::size_t capacity);

/// Exhaustive optimizer over all ways to split the programs across at most
/// num_caches caches (empty caches allowed when programs < caches).
/// Exponential in the number of programs; fine for <= ~12.
Schedule best_schedule_exhaustive(
    const std::vector<const ProgramModel*>& programs, std::size_t num_caches,
    std::size_t capacity);

/// Greedy heuristic: programs in decreasing access-rate order, each placed
/// on the cache whose predicted overall miss ratio increases least.
Schedule best_schedule_greedy(const std::vector<const ProgramModel*>& programs,
                              std::size_t num_caches, std::size_t capacity);

/// The full §II problem: multiple caches, each *partitioned* among its
/// residents by the DP (rather than shared free-for-all). Exhaustively
/// searches groupings; within each cache runs optimize_partition. By the
/// reduction theorem this upper-bounds every sharing/partition-sharing
/// configuration of the same machine.
Schedule best_schedule_partitioned(
    const std::vector<const ProgramModel*>& programs, std::size_t num_caches,
    std::size_t capacity);

}  // namespace ocps
