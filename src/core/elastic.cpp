#include "core/elastic.hpp"

#include <numeric>

#include "util/check.hpp"

namespace ocps {

ElasticResult optimize_elastic(const CoRunGroup& group, CostMatrixView cost,
                               std::size_t capacity,
                               const std::vector<ElasticDemand>& demands) {
  OCPS_CHECK(demands.size() == group.size(),
             "need one demand per group member");
  OCPS_CHECK(cost.rows() == group.size(), "cost curves must match group");

  ElasticResult out;
  out.reserved.resize(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    std::size_t floor_units = demands[i].min_units;
    if (demands[i].max_miss_ratio) {
      double ceiling = *demands[i].max_miss_ratio;
      OCPS_CHECK(ceiling >= 0.0 && ceiling <= 1.0,
                 "miss-ratio ceiling out of [0,1]");
      std::size_t need = group[i].mrc.min_size_for_ratio(ceiling);
      if (group[i].mrc.ratio(need) > ceiling + 1e-12) {
        // Unattainable even with the whole cache.
        return out;
      }
      floor_units = std::max(floor_units, need);
    }
    out.reserved[i] = floor_units;
  }
  std::size_t total_reserved = std::accumulate(
      out.reserved.begin(), out.reserved.end(), static_cast<std::size_t>(0));
  if (total_reserved > capacity) return out;  // infeasible contracts
  out.elastic_units = capacity - total_reserved;

  DpOptions options;
  options.min_alloc = out.reserved;
  DpResult dp = optimize_partition(cost, capacity, options);
  if (!dp.feasible) return out;

  out.feasible = true;
  out.alloc = dp.alloc;
  double rate_sum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    rate_sum += group[i].access_rate;
    weighted += group[i].access_rate * group[i].mrc.ratio(dp.alloc[i]);
  }
  out.group_mr = rate_sum > 0.0 ? weighted / rate_sum : 0.0;
  return out;
}

}  // namespace ocps
