file(REMOVE_RECURSE
  "CMakeFiles/ocps_cachesim.dir/belady.cpp.o"
  "CMakeFiles/ocps_cachesim.dir/belady.cpp.o.d"
  "CMakeFiles/ocps_cachesim.dir/corun.cpp.o"
  "CMakeFiles/ocps_cachesim.dir/corun.cpp.o.d"
  "CMakeFiles/ocps_cachesim.dir/lru.cpp.o"
  "CMakeFiles/ocps_cachesim.dir/lru.cpp.o.d"
  "CMakeFiles/ocps_cachesim.dir/policies.cpp.o"
  "CMakeFiles/ocps_cachesim.dir/policies.cpp.o.d"
  "CMakeFiles/ocps_cachesim.dir/set_assoc.cpp.o"
  "CMakeFiles/ocps_cachesim.dir/set_assoc.cpp.o.d"
  "CMakeFiles/ocps_cachesim.dir/way_partitioned.cpp.o"
  "CMakeFiles/ocps_cachesim.dir/way_partitioned.cpp.o.d"
  "libocps_cachesim.a"
  "libocps_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocps_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
