#include "core/group_sweep.hpp"

#include <algorithm>

#include "core/baselines.hpp"
#include "core/dp_partition.hpp"
#include "core/sttw.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace ocps {

const char* method_name(Method m) {
  switch (m) {
    case Method::kEqual: return "Equal";
    case Method::kNatural: return "Natural";
    case Method::kEqualBaseline: return "Equal baseline";
    case Method::kNaturalBaseline: return "Natural baseline";
    case Method::kOptimal: return "Optimal";
    case Method::kSttw: return "STTW";
  }
  return "?";
}

std::vector<std::vector<double>> precompute_unit_costs(
    const std::vector<ProgramModel>& programs, std::size_t capacity) {
  std::vector<std::vector<double>> cost(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    cost[i].resize(capacity + 1);
    for (std::size_t c = 0; c <= capacity; ++c)
      cost[i][c] = programs[i].access_rate * programs[i].mrc.ratio(c);
  }
  return cost;
}

namespace {

// Fills a MethodOutcome from an integer allocation using the solo MRCs.
MethodOutcome outcome_from_alloc(const CoRunGroup& group,
                                 const std::vector<std::size_t>& alloc) {
  MethodOutcome out;
  out.alloc.assign(alloc.begin(), alloc.end());
  out.per_program_mr.resize(group.size());
  for (std::size_t i = 0; i < group.size(); ++i)
    out.per_program_mr[i] = group[i].mrc.ratio(alloc[i]);
  out.group_mr = group_miss_ratio(group, out.per_program_mr);
  return out;
}

}  // namespace

GroupEvaluation evaluate_group(
    const std::vector<ProgramModel>& programs,
    const std::vector<std::vector<double>>& unit_costs,
    const std::vector<std::uint32_t>& members, const SweepOptions& options) {
  OCPS_CHECK(!members.empty(), "empty group");
  obs::ScopedSpan span("sweep.evaluate_group", "core");
  span.set_arg("members", members.size());
  const std::size_t capacity = options.capacity;

  std::vector<const ProgramModel*> models;
  std::vector<std::vector<double>> cost;
  models.reserve(members.size());
  cost.reserve(members.size());
  for (std::uint32_t idx : members) {
    OCPS_CHECK(idx < programs.size(), "program index out of range: " << idx);
    OCPS_CHECK(unit_costs[idx].size() >= capacity + 1,
               "unit cost row " << idx << " shorter than capacity+1");
    models.push_back(&programs[idx]);
    cost.push_back(unit_costs[idx]);  // copy: DP reads it densely
  }
  CoRunGroup group(std::move(models));

  GroupEvaluation eval;
  eval.members = members;

  // Equal.
  auto equal = equal_partition(group.size(), capacity);
  eval.methods[static_cast<std::size_t>(Method::kEqual)] =
      outcome_from_alloc(group, equal);

  // Natural (free-for-all sharing): fractional occupancies.
  {
    MethodOutcome out;
    out.alloc = natural_partition(group, static_cast<double>(capacity));
    out.per_program_mr =
        predict_shared_miss_ratios(group, static_cast<double>(capacity));
    out.group_mr = group_miss_ratio(group, out.per_program_mr);
    eval.methods[static_cast<std::size_t>(Method::kNatural)] = std::move(out);
  }

  // Equal baseline.
  {
    DpResult dp = optimize_equal_baseline(group, cost, capacity);
    eval.methods[static_cast<std::size_t>(Method::kEqualBaseline)] =
        outcome_from_alloc(group, dp.alloc);
  }

  // Natural baseline.
  {
    DpResult dp = optimize_natural_baseline(group, cost, capacity);
    eval.methods[static_cast<std::size_t>(Method::kNaturalBaseline)] =
        outcome_from_alloc(group, dp.alloc);
  }

  // Optimal (unconstrained DP).
  {
    DpResult dp = optimize_partition(cost, capacity);
    OCPS_CHECK(dp.feasible, "unconstrained DP must be feasible");
    eval.methods[static_cast<std::size_t>(Method::kOptimal)] =
        outcome_from_alloc(group, dp.alloc);
  }

  // STTW.
  {
    SttwResult sttw = sttw_partition(cost, capacity);
    eval.methods[static_cast<std::size_t>(Method::kSttw)] =
        outcome_from_alloc(group, sttw.alloc);
  }

  OCPS_OBS_COUNT("sweep.groups_evaluated", 1);
  OCPS_OBS_HIST("sweep.group_eval_ns", span.elapsed_ns());
  return eval;
}

std::vector<GroupEvaluation> sweep_groups(
    const std::vector<ProgramModel>& programs,
    const std::vector<std::vector<std::uint32_t>>& groups,
    const SweepOptions& options) {
  obs::ScopedSpan span("sweep.sweep_groups", "core");
  span.set_arg("groups", groups.size());
  auto unit_costs = precompute_unit_costs(programs, options.capacity);
  std::vector<GroupEvaluation> out(groups.size());
  auto run = [&](std::size_t g) {
    out[g] = evaluate_group(programs, unit_costs, groups[g], options);
  };
  if (options.parallel) {
    parallel_for(0, groups.size(), run);
  } else {
    for (std::size_t g = 0; g < groups.size(); ++g) run(g);
  }
  return out;
}

ImprovementStats improvement_over(const std::vector<GroupEvaluation>& sweep,
                                  Method baseline) {
  std::vector<double> improvements;
  improvements.reserve(sweep.size());
  for (const auto& g : sweep) {
    double opt = g.of(Method::kOptimal).group_mr;
    double base = g.of(baseline).group_mr;
    // Degenerate all-hit groups contribute zero improvement.
    double imp = (opt > 0.0) ? (base - opt) / opt : 0.0;
    improvements.push_back(imp);
  }
  Summary s = summarize(improvements);
  ImprovementStats stats;
  stats.max = s.max;
  stats.avg = s.mean;
  stats.median = s.median;
  stats.frac_ge_10 = fraction_at_least(improvements, 0.10);
  stats.frac_ge_20 = fraction_at_least(improvements, 0.20);
  return stats;
}

}  // namespace ocps
