// Tests for the persistent work-stealing thread pool (util/thread_pool)
// and the parallel_for / parallel_for_with free functions built on it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace ocps {
namespace {

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(3);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  // Explicit width: auto would collapse to 1 on single-core machines and
  // never exercise the workers.
  pool.for_each(
      0, n, [&](std::size_t i) { hits[i].fetch_add(1); }, /*width=*/4);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.for_each(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  pool.for_each(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ZeroWorkerPoolRunsOnCaller) {
  ThreadPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> count{0};
  pool.for_each(0, 100, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 100);
  EXPECT_FALSE(pool.submit(ThreadPool::Job{}));
}

TEST(ThreadPool, WidthOnePinsTheLoopToTheCaller) {
  ThreadPool pool(3);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> count{0};
  pool.for_each(
      0, 500,
      [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        count.fetch_add(1);
      },
      /*width=*/1);
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_each(
                   0, 1000,
                   [&](std::size_t i) {
                     if (i == 617) throw std::runtime_error("boom");
                   },
                   /*width=*/3),
               std::runtime_error);
  // The pool survives and keeps working after the throw.
  std::atomic<int> count{0};
  pool.for_each(
      0, 64, [&](std::size_t) { count.fetch_add(1); }, /*width=*/3);
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedLoopsMakeProgress) {
  // A loop body issuing its own for_each must not deadlock even when all
  // workers are busy with the outer loop: the inner caller participates.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.for_each(
      0, 8,
      [&](std::size_t) {
        pool.for_each(
            0, 50, [&](std::size_t) { total.fetch_add(1); }, /*width=*/3);
      },
      /*width=*/3);
  EXPECT_EQ(total.load(), 8 * 50);
}

TEST(ThreadPool, ForEachWithBuildsOneStatePerThread) {
  ThreadPool pool(3);
  std::atomic<int> states_built{0};
  struct Counter {
    std::size_t seen = 0;
  };
  const std::size_t n = 4096;
  pool.for_each_with(
      0, n,
      [&] {
        states_built.fetch_add(1);
        return Counter{};
      },
      [](Counter& c, std::size_t) { ++c.seen; }, /*width=*/4);
  // At most one state per participating thread (pool width is capped at
  // workers()+1); exact count depends on how many threads claimed chunks.
  EXPECT_GE(states_built.load(), 1);
  EXPECT_LE(states_built.load(),
            static_cast<int>(pool.workers() + 1));
}

TEST(ThreadPool, ForEachWithSumsAreComplete) {
  ThreadPool pool(3);
  std::mutex mu;
  std::size_t total = 0;
  struct Acc {
    std::mutex* mu;
    std::size_t* total;
    std::size_t local = 0;
    ~Acc() {
      std::lock_guard<std::mutex> lock(*mu);
      *total += local;
    }
  };
  const std::size_t n = 20000;
  pool.for_each_with(
      0, n, [&] { return Acc{&mu, &total}; },
      [](Acc& a, std::size_t i) { a.local += i; }, /*width=*/4);
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ThreadPool, OcpsThreadsOnePinsGlobalLoopsSerial) {
  // OCPS_THREADS caps the loop width read per loop; with 1 the global
  // parallel_for must stay on the calling thread.
  ::setenv("OCPS_THREADS", "1", 1);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> count{0};
  parallel_for(0, 200, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    count.fetch_add(1);
  });
  ::unsetenv("OCPS_THREADS");
  EXPECT_EQ(count.load(), 200);
  EXPECT_GE(parallel_thread_count(), 1u);
}

TEST(ThreadPool, ParallelForWithPerThreadStateOnGlobalPool) {
  std::mutex mu;
  std::size_t total = 0;
  struct Acc {
    std::mutex* mu;
    std::size_t* total;
    std::size_t local = 0;
    ~Acc() {
      std::lock_guard<std::mutex> lock(*mu);
      *total += local;
    }
  };
  parallel_for_with(
      0, 5000, [&] { return Acc{&mu, &total}; },
      [](Acc& a, std::size_t) { ++a.local; });
  EXPECT_EQ(total, 5000u);
}

TEST(ThreadPool, ExceptionInStateFactoryPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.for_each_with(
                   0, 100,
                   []() -> int { throw std::runtime_error("make failed"); },
                   [](int&, std::size_t) {}, /*width=*/3),
               std::runtime_error);
}

}  // namespace
}  // namespace ocps
