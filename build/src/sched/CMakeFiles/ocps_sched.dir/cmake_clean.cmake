file(REMOVE_RECURSE
  "CMakeFiles/ocps_sched.dir/symbiosis.cpp.o"
  "CMakeFiles/ocps_sched.dir/symbiosis.cpp.o.d"
  "libocps_sched.a"
  "libocps_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocps_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
