#include "locality/phases.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.hpp"

namespace ocps {

std::vector<double> windowed_wss(const Trace& trace, std::size_t window) {
  OCPS_CHECK(window >= 1, "window must be non-empty");
  std::vector<double> wss;
  const std::size_t n = trace.length();
  std::unordered_set<Block> seen;
  seen.reserve(window);
  for (std::size_t start = 0; start < n; start += window) {
    std::size_t stop = std::min(n, start + window);
    seen.clear();
    for (std::size_t i = start; i < stop; ++i) seen.insert(trace.accesses[i]);
    // Scale a short trailing window up to the full-window equivalent so
    // its WSS is comparable (approximately) to the others.
    double value = static_cast<double>(seen.size());
    if (stop - start < window && stop - start > 0)
      value *= static_cast<double>(window) /
               static_cast<double>(stop - start);
    wss.push_back(value);
  }
  return wss;
}

std::vector<PhaseSegment> detect_phases(const Trace& trace,
                                        const PhaseDetectorConfig& config) {
  OCPS_CHECK(!trace.empty(), "empty trace");
  OCPS_CHECK(config.threshold > 0.0, "threshold must be positive");
  std::vector<double> wss = windowed_wss(trace, config.window);

  // Boundary wherever the relative WSS change exceeds the threshold.
  std::vector<std::size_t> starts = {0};  // in window units
  std::size_t run_start = 0;
  for (std::size_t k = 1; k < wss.size(); ++k) {
    double prev = wss[k - 1];
    double rel = std::abs(wss[k] - prev) / std::max(prev, 1.0);
    if (rel > config.threshold &&
        k - run_start >= config.min_phase_windows) {
      starts.push_back(k);
      run_start = k;
    }
  }

  std::vector<PhaseSegment> segments;
  for (std::size_t s = 0; s < starts.size(); ++s) {
    PhaseSegment seg;
    std::size_t first_window = starts[s];
    std::size_t last_window =
        (s + 1 < starts.size()) ? starts[s + 1] : wss.size();
    seg.begin = first_window * config.window;
    seg.end = std::min(trace.length(), last_window * config.window);
    double sum = 0.0;
    for (std::size_t k = first_window; k < last_window; ++k) sum += wss[k];
    seg.mean_wss =
        sum / static_cast<double>(std::max<std::size_t>(
                  1, last_window - first_window));
    segments.push_back(seg);
  }
  // Guarantee full coverage even for degenerate inputs.
  if (segments.empty())
    segments.push_back({0, trace.length(),
                        wss.empty() ? 0.0 : wss.front()});
  segments.back().end = trace.length();
  return segments;
}

std::size_t recommend_epoch_count(const std::vector<Trace>& traces,
                                  const PhaseDetectorConfig& config,
                                  std::size_t max_epochs) {
  OCPS_CHECK(!traces.empty(), "no traces");
  OCPS_CHECK(max_epochs >= 1, "need at least one epoch");
  std::size_t n = traces[0].length();
  std::size_t shortest = n;
  bool any_phased = false;
  for (const auto& t : traces) {
    OCPS_CHECK(t.length() == n, "traces must have equal length");
    auto phases = detect_phases(t, config);
    if (phases.size() > 1) any_phased = true;
    for (const auto& p : phases)
      shortest = std::min(shortest, std::max<std::size_t>(
                                        p.end - p.begin, config.window));
  }
  if (!any_phased) return 1;
  std::size_t epochs = std::max<std::size_t>(1, n / shortest);
  return std::min(epochs, max_epochs);
}

}  // namespace ocps
