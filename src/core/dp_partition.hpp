// Optimal cache partitioning by dynamic programming (§V-B, Eq. 15-16).
//
// Given per-program cost curves cost_i(c) over integer allocations
// c = 0..C, find the allocation (c_1..c_P) with Σ c_i = C minimizing the
// objective. Unlike STTW, no convexity is assumed: the DP examines the
// entire solution space in O(P·C²) time and O(P·C) space.
//
// Two objectives are built in, both associative-monotone so the same table
// recurrence applies:
//   * kSumCost     — Σ_i cost_i(c_i)      (throughput: total miss count)
//   * kMaxCost     — max_i cost_i(c_i)    (QoS: worst member)
//
// Per-program allocation bounds [min_alloc_i, max_alloc_i] express the
// baseline-fairness constraints of §VI (see baselines.hpp) and any QoS
// floor a caller wants.
//
// Cost curves are passed as a CostMatrixView (core/cost_matrix.hpp);
// build one with CostMatrix::from_rows when starting from nested
// vectors. Repeated solvers (the
// group sweep, the online controller) pass a DpScratch so the DP table
// never reallocates between solves; core/batch_engine.hpp additionally
// shares DP layers between solves whose program prefixes match.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cost_matrix.hpp"
#include "core/dp_kernel.hpp"
#include "locality/mrc.hpp"
#include "util/result.hpp"

namespace ocps {

/// Optimizer knobs. Empty bound vectors mean 0 / C for every program.
struct DpOptions {
  DpObjective objective = DpObjective::kSumCost;
  std::vector<std::size_t> min_alloc;  ///< per-program lower bounds
  std::vector<std::size_t> max_alloc;  ///< per-program upper bounds
};

/// Result of an optimization.
struct DpResult {
  bool feasible = false;
  std::vector<std::size_t> alloc;  ///< c_i per program, Σ = capacity
  double objective_value = 0.0;
};

/// Reusable solver arena: the DP table buffers, grown on demand and never
/// shrunk, so back-to-back solves of the same shape do zero heap
/// allocation in the hot loop. grow_events counts reallocation episodes
/// (mirrored in obs counter `dp.scratch_grow`): in a steady-state sweep
/// it stops increasing after the first solve per thread.
struct DpScratch {
  std::vector<double> best;
  std::vector<double> next;
  std::vector<std::uint32_t> choice;  ///< flat programs × (capacity+1)
  std::vector<std::size_t> lo;
  std::vector<std::size_t> hi;
  std::vector<const double*> row_ptrs;  ///< for gathered views
  std::uint64_t grow_events = 0;

  /// Ensures capacity for a (programs, capacity) solve.
  void reserve(std::size_t programs, std::size_t capacity);
};

/// Runs the DP. cost must have rows >= 1 and cols >= capacity+1;
/// cost(i, c) is the cost of giving program i exactly c units. Throws
/// CheckError on malformed input; returns feasible == false when the
/// bounds admit no allocation.
DpResult optimize_partition(CostMatrixView cost, std::size_t capacity,
                            const DpOptions& options = {});

/// Same, with caller-owned scratch (no table allocation once warm).
DpResult optimize_partition(CostMatrixView cost, std::size_t capacity,
                            const DpOptions& options, DpScratch& scratch);

/// Guarded entry point for the runtime path. Same optimization as
/// optimize_partition, but every failure mode — malformed cost curves
/// (wrong sizes, NaN/inf entries), infeasible bounds, or an unexpected
/// internal CheckError — comes back as an Error value instead of an
/// exception, so an online caller can hold its last-good allocation and
/// keep serving. Offline/batch callers should keep using
/// optimize_partition, where aborting on bad input is the right policy.
Result<DpResult> try_optimize_partition(CostMatrixView cost,
                                        std::size_t capacity,
                                        const DpOptions& options = {});

/// Exhaustive reference optimizer (enumerates every composition); used as
/// the test oracle for the DP. Exponential — small instances only.
DpResult optimize_partition_exhaustive(CostMatrixView cost,
                                       std::size_t capacity,
                                       const DpOptions& options = {});

// The forward-layer kernel shared between the per-solve DP and the
// prefix-memoized batch engine lives in core/dp_kernel.hpp (included
// above): dp_detail::forward_layer dispatches between the pinned scalar
// reference and the AVX2 kernel at runtime, and every kernel produces
// bit-identical tables.

}  // namespace ocps
