// Unit + property tests for src/combinatorics, including the paper's §II
// search-space numbers.
#include <gtest/gtest.h>

#include <set>

#include "combinatorics/counting.hpp"
#include "combinatorics/enumerate.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

std::uint64_t as_u64(std::optional<unsigned __int128> v) {
  EXPECT_TRUE(v.has_value());
  return static_cast<std::uint64_t>(*v);
}

TEST(Counting, BinomialKnownValues) {
  EXPECT_EQ(as_u64(binomial128(0, 0)), 1u);
  EXPECT_EQ(as_u64(binomial128(5, 2)), 10u);
  EXPECT_EQ(as_u64(binomial128(10, 10)), 1u);
  EXPECT_EQ(as_u64(binomial128(10, 11)), 0u);
  EXPECT_EQ(as_u64(binomial128(52, 5)), 2598960u);
}

TEST(Counting, BinomialSymmetry) {
  for (std::uint64_t n = 1; n <= 30; ++n)
    for (std::uint64_t k = 0; k <= n; ++k)
      EXPECT_EQ(as_u64(binomial128(n, k)), as_u64(binomial128(n, n - k)));
}

TEST(Counting, BinomialPascalRecurrence) {
  for (std::uint64_t n = 2; n <= 25; ++n)
    for (std::uint64_t k = 1; k < n; ++k)
      EXPECT_EQ(as_u64(binomial128(n, k)),
                as_u64(binomial128(n - 1, k)) +
                    as_u64(binomial128(n - 1, k - 1)));
}

TEST(Counting, BinomialDoubleMatchesExact) {
  EXPECT_DOUBLE_EQ(binomial_double(52, 5), 2598960.0);
  EXPECT_DOUBLE_EQ(binomial_double(5, 9), 0.0);
}

TEST(Counting, StirlingKnownValues) {
  // Triangle rows from OEIS A008277.
  EXPECT_EQ(as_u64(stirling2_128(0, 0)), 1u);
  EXPECT_EQ(as_u64(stirling2_128(4, 2)), 7u);
  EXPECT_EQ(as_u64(stirling2_128(5, 3)), 25u);
  EXPECT_EQ(as_u64(stirling2_128(7, 3)), 301u);
  EXPECT_EQ(as_u64(stirling2_128(10, 5)), 42525u);
  EXPECT_EQ(as_u64(stirling2_128(4, 0)), 0u);
  EXPECT_EQ(as_u64(stirling2_128(3, 5)), 0u);
}

TEST(Counting, StirlingRowSumsAreBellNumbers) {
  // Bell numbers: 1, 1, 2, 5, 15, 52, 203, 877, 4140.
  const std::uint64_t bell[] = {1, 1, 2, 5, 15, 52, 203, 877, 4140};
  for (std::uint64_t n = 1; n <= 8; ++n) {
    std::uint64_t sum = 0;
    for (std::uint64_t k = 1; k <= n; ++k) sum += as_u64(stirling2_128(n, k));
    EXPECT_EQ(sum, bell[n]) << "n=" << n;
  }
}

TEST(Counting, PaperSectionIINumbers) {
  // §II: npr = 4, C = 8MB / 64B = 131072.
  auto s2 = search_space_partition_sharing(4, 131072);
  auto s3 = search_space_partitioning(4, 131072);
  ASSERT_TRUE(s2.has_value());
  ASSERT_TRUE(s3.has_value());
  EXPECT_EQ(to_string_u128(*s2), "375368690761743");
  EXPECT_EQ(to_string_u128(*s3), "375317149057025");
  // "the solution set of partitioning-only covers 99.99% of the solution
  // set of partition-sharing"
  double coverage = static_cast<double>(*s3) / static_cast<double>(*s2);
  EXPECT_GT(coverage, 0.9998);
  EXPECT_LT(coverage, 1.0);
}

TEST(Counting, PaperSharingSpaceIsStirling) {
  // §II Eq. 1 with 4 programs and 2 caches: {4 \atop 2} = 7.
  EXPECT_EQ(as_u64(search_space_sharing(4, 2)), 7u);
}

TEST(Counting, Paper8KBGranularitySpace) {
  // §VII-A: ~180 million partitionings per 4-program group at 1024 units.
  auto s3 = search_space_partitioning(4, 1024);
  ASSERT_TRUE(s3.has_value());
  double v = static_cast<double>(*s3);
  EXPECT_GT(v, 1.7e8);
  EXPECT_LT(v, 1.9e8);
}

TEST(Enumerate, SetPartitionCountsMatchStirlingSums) {
  for (std::uint32_t n = 1; n <= 8; ++n) {
    std::uint64_t visited = 0;
    for_each_set_partition(n, 0, [&](const SetPartition&) {
      ++visited;
      return true;
    });
    EXPECT_EQ(visited, count_set_partitions(n, 0)) << "n=" << n;
  }
}

TEST(Enumerate, SetPartitionWithMaxGroups) {
  std::uint64_t visited = 0;
  for_each_set_partition(5, 2, [&](const SetPartition& p) {
    EXPECT_LE(p.size(), 2u);
    ++visited;
    return true;
  });
  // {5 1} + {5 2} = 1 + 15 = 16.
  EXPECT_EQ(visited, 16u);
}

TEST(Enumerate, SetPartitionsAreDistinctAndComplete) {
  std::set<std::vector<std::vector<std::uint32_t>>> seen;
  for_each_set_partition(6, 0, [&](const SetPartition& p) {
    std::size_t total = 0;
    for (const auto& g : p) total += g.size();
    EXPECT_EQ(total, 6u);  // every element in exactly one group
    EXPECT_TRUE(seen.insert(p).second) << "duplicate partition";
    return true;
  });
  EXPECT_EQ(seen.size(), 203u);  // Bell(6)
}

TEST(Enumerate, EarlyStopRespected) {
  std::uint64_t visited = 0;
  for_each_set_partition(7, 0, [&](const SetPartition&) {
    return ++visited < 5;
  });
  EXPECT_EQ(visited, 5u);
}

TEST(Enumerate, CompositionsCountAndSum) {
  std::uint64_t visited = 0;
  for_each_composition(3, 7, 0, [&](const std::vector<std::uint32_t>& c) {
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c[0] + c[1] + c[2], 7u);
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, count_compositions(3, 7, 0));
  EXPECT_EQ(visited, 36u);  // C(9, 2)
}

TEST(Enumerate, CompositionsWithMinimum) {
  std::uint64_t visited = 0;
  for_each_composition(3, 7, 2, [&](const std::vector<std::uint32_t>& c) {
    for (auto v : c) EXPECT_GE(v, 2u);
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, count_compositions(3, 7, 2));
  EXPECT_EQ(visited, 3u);  // compositions of 1 into 3 parts
}

TEST(Enumerate, CompositionInfeasibleMinimum) {
  std::uint64_t visited = 0;
  for_each_composition(4, 3, 1, [&](const std::vector<std::uint32_t>&) {
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 0u);
  EXPECT_EQ(count_compositions(4, 3, 1), 0u);
}

TEST(Enumerate, SubsetsLexicographicAndComplete) {
  std::vector<std::vector<std::uint32_t>> subsets = all_subsets(5, 3);
  EXPECT_EQ(subsets.size(), 10u);
  EXPECT_EQ(subsets.front(), (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(subsets.back(), (std::vector<std::uint32_t>{2, 3, 4}));
  for (const auto& s : subsets) {
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  }
}

TEST(Enumerate, PaperGroupCount) {
  // §VII-A: all 4-program subsets of 16 programs = 1820 groups.
  EXPECT_EQ(all_subsets(16, 4).size(), 1820u);
}

// Property sweep: enumeration count equals the closed-form count.
class CompositionCountProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CompositionCountProperty, EnumerationMatchesFormula) {
  auto [k, total, minimum] = GetParam();
  std::uint64_t visited = 0;
  for_each_composition(static_cast<std::uint32_t>(k),
                       static_cast<std::uint32_t>(total),
                       static_cast<std::uint32_t>(minimum),
                       [&](const std::vector<std::uint32_t>&) {
                         ++visited;
                         return true;
                       });
  EXPECT_EQ(visited,
            count_compositions(static_cast<std::uint32_t>(k),
                               static_cast<std::uint32_t>(total),
                               static_cast<std::uint32_t>(minimum)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompositionCountProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0, 1, 5, 9),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace ocps
