// Integration tests for the partition-service daemon: a real Server on a
// real Unix socket, driven through the blocking Client, covering the full
// fault matrix — happy path, malformed JSON, queue-full shedding,
// deadline expiry, reload-with-bad-profile keeping the last-good set, and
// the SIGTERM drain answering every admitted request — and asserting that
// the obs registry mirrors the server's own counters.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "locality/footprint_io.hpp"
#include "obs/obs.hpp"
#include "runtime/fault_injection.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ocps::serve {
namespace {

constexpr std::size_t kCapacity = 64;

std::vector<ProgramModel> make_models(std::size_t count = 4) {
  std::vector<ProgramModel> models;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < count; ++i) {
    Trace t;
    switch (i % 4) {
      case 0: t = make_cyclic(n, 20 + 7 * i); break;
      case 1: t = make_zipf(n, 50 + 13 * i, 0.8, 100 + i); break;
      case 2: t = make_hot_cold(n, 4 + i, 40 + 9 * i, 0.85, 200 + i); break;
      default: t = make_sawtooth(n, 16 + 5 * i); break;
    }
    models.push_back(make_program_model("prog" + std::to_string(i),
                                        0.5 + 0.25 * i, compute_footprint(t),
                                        kCapacity));
  }
  return models;
}

std::string unique_socket_path(const char* tag) {
  static std::atomic<int> seq{0};
  return "/tmp/ocps_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(seq.fetch_add(1)) + ".sock";
}

json::Value partition_request(std::int64_t id,
                              std::vector<std::string> programs,
                              double deadline_ms = 0.0) {
  json::Value req;
  req.set("id", json::Value(static_cast<double>(id)));
  req.set("op", json::Value(std::string("partition")));
  json::Array names;
  for (std::string& p : programs) names.emplace_back(std::move(p));
  req.set("programs", json::Value(std::move(names)));
  if (deadline_ms > 0.0) req.set("deadline_ms", json::Value(deadline_ms));
  return req;
}

#ifndef OCPS_OBS_DISABLED
std::uint64_t obs_counter(const obs::MetricsSnapshot& snap,
                          const std::string& name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  return 0;
}
#endif

/// Minimal HTTP/1.1 GET against the daemon's loopback metrics listener;
/// returns the whole response (status line + headers + body), or "" on
/// connect failure. The server closes after one exchange, so read to EOF.
std::string http_get(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ssize_t ignored = ::send(fd, req.data(), req.size(), 0);
  (void)ignored;
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset_metrics();
  }
  void TearDown() override { obs::set_enabled(true); }
};

TEST_F(ServeTest, PartitionHappyPathAndHealth) {
  ServeConfig config;
  config.socket_path = unique_socket_path("happy");
  config.capacity = kCapacity;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok()) << client.error().to_string();

  Result<Response> resp =
      client.value().call(partition_request(7, {"prog0", "prog1", "prog2"}));
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  const Response& r = resp.value();
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.id, 7);
  const json::Value* alloc = r.body.find("alloc");
  ASSERT_NE(alloc, nullptr);
  ASSERT_EQ(alloc->as_array().size(), 3u);
  double total = 0.0;
  for (const json::Value& units : alloc->as_array())
    total += units.as_number();
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kCapacity));
  EXPECT_GT(r.body.get_number("group_mr", -1.0), 0.0);

  // A second call on the same connection reuses the warm solver.
  Result<Response> again =
      client.value().call(partition_request(8, {"prog1", "prog3"}));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().ok);
  EXPECT_EQ(again.value().id, 8);

  json::Value health;
  health.set("op", json::Value(std::string("health")));
  Result<Response> h = client.value().call(health);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h.value().ok);
  EXPECT_EQ(h.value().body.get_number("version", 0.0), 1.0);
  const json::Value* counters = h.value().body.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->get_number("answered", -1.0), 2.0);

  server.request_stop();
  server.stop();
  Server::Counters c = server.counters();
  EXPECT_EQ(c.requests, 3u);
  EXPECT_EQ(c.answered, 2u);
  EXPECT_EQ(c.shed, 0u);
}

TEST_F(ServeTest, MalformedAndInvalidRequestsGet400) {
  ServeConfig config;
  config.socket_path = unique_socket_path("malformed");
  config.capacity = kCapacity;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());

  // Syntactically broken JSON.
  Result<Response> bad = client.value().call("{not json");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().ok);
  EXPECT_EQ(bad.value().code, kCodeBadRequest);

  // Well-formed JSON, invalid request.
  Result<Response> no_programs =
      client.value().call(R"({"id":3,"op":"partition"})");
  ASSERT_TRUE(no_programs.ok());
  EXPECT_FALSE(no_programs.value().ok);
  EXPECT_EQ(no_programs.value().code, kCodeBadRequest);

  // Unknown program -> 404, not 400.
  Result<Response> missing =
      client.value().call(partition_request(4, {"prog0", "nope"}));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value().ok);
  EXPECT_EQ(missing.value().code, kCodeNotFound);

  // Capacity beyond the server's table -> 400.
  Result<Response> too_big = client.value().call(
      R"({"id":5,"op":"partition","programs":["prog0"],"capacity":100000})");
  ASSERT_TRUE(too_big.ok());
  EXPECT_FALSE(too_big.value().ok);
  EXPECT_EQ(too_big.value().code, kCodeBadRequest);

  server.request_stop();
  server.stop();
  EXPECT_EQ(server.counters().malformed, 3u);
  EXPECT_EQ(server.counters().requests, 4u);
}

TEST_F(ServeTest, QueueFullShedsWith429) {
  std::atomic<bool> hold{true};
  ServeConfig config;
  config.socket_path = unique_socket_path("shed");
  config.capacity = kCapacity;
  config.queue_capacity = 2;
  config.hold_batching = &hold;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());

  // With the batcher held, the first two requests are admitted (no
  // response yet); the third must be shed synchronously with 429.
  std::string line1 = partition_request(1, {"prog0", "prog1"}).dump();
  std::string line2 = partition_request(2, {"prog0", "prog2"}).dump();
  ASSERT_TRUE(client.value()
                  .call(line1 + "\n" + line2 + "\n" +
                            partition_request(3, {"prog1", "prog2"}).dump(),
                        std::chrono::milliseconds(5000))
                  .ok());
  // The one response that arrived while holding must be the shed.
  // (call() returns the first response line: id 3, code 429.)
  // Re-read it via a fresh call is impossible; instead assert on state:
  EXPECT_EQ(server.queue_depth(), 2u);
  EXPECT_EQ(server.counters().shed, 1u);

  // Release the batcher and wait for the two admitted requests to drain
  // before sending more — otherwise request 4 races the batcher's next
  // poll and can be shed off the still-full queue.
  hold.store(false);
  for (int i = 0; i < 5000 && server.queue_depth() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(server.queue_depth(), 0u);
  // The responses to ids 1 and 2 arrive ahead of id 4's answer, and
  // call() reads one line per call, so read all three in order.
  Result<Response> r1 =
      client.value().call(partition_request(4, {"prog0", "prog3"}));
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1.value().ok);

  // r1 consumed the first buffered line (id 1's answer); id 4 may still
  // be in flight, so wait for it before shutting down.
  for (int i = 0; i < 5000 && server.counters().answered < 3; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  server.request_stop();
  server.stop();
  Server::Counters c = server.counters();
  EXPECT_EQ(c.shed, 1u);
  EXPECT_EQ(c.answered, 3u);  // ids 1, 2, 4

#ifndef OCPS_OBS_DISABLED
  obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_EQ(obs_counter(snap, "serve.shed"), c.shed);
  EXPECT_EQ(obs_counter(snap, "serve.requests"), c.requests);
#endif
}

TEST_F(ServeTest, DeadlineExceededGets504) {
  std::atomic<bool> hold{true};
  ServeConfig config;
  config.socket_path = unique_socket_path("deadline");
  config.capacity = kCapacity;
  config.hold_batching = &hold;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());

  // 5 ms deadline, batcher held for 50 ms: by the time the batch runs
  // the deadline has passed and the request must get 504, not a result.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    hold.store(false);
  });
  Result<Response> r = client.value().call(
      partition_request(9, {"prog0", "prog1"}, /*deadline_ms=*/5.0));
  releaser.join();
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_FALSE(r.value().ok);
  EXPECT_EQ(r.value().code, kCodeDeadlineExceeded);
  EXPECT_EQ(r.value().id, 9);

  // Without a deadline the same request succeeds.
  Result<Response> fine =
      client.value().call(partition_request(10, {"prog0", "prog1"}));
  ASSERT_TRUE(fine.ok());
  EXPECT_TRUE(fine.value().ok);

  server.request_stop();
  server.stop();
  EXPECT_EQ(server.counters().deadline_exceeded, 1u);
#ifndef OCPS_OBS_DISABLED
  obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_EQ(obs_counter(snap, "serve.deadline_exceeded"), 1u);
#endif
}

TEST_F(ServeTest, SweepAnswersAndHonorsDeadline) {
  ServeConfig config;
  config.socket_path = unique_socket_path("sweep");
  config.capacity = kCapacity;
  config.threads = 1;
  Server server(config, make_models(6));
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());

  Result<Response> r =
      client.value().call(R"({"id":1,"op":"sweep","group_size":3})");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().ok) << r.value().error;
  EXPECT_EQ(r.value().body.get_number("groups", 0.0), 20.0);  // C(6,3)
  const json::Value* improvement = r.value().body.find("improvement");
  ASSERT_NE(improvement, nullptr);
  EXPECT_NE(improvement->find("Equal"), nullptr);
  EXPECT_NE(improvement->find("STTW"), nullptr);

  // An already-expired deadline cannot produce a full sweep. Both
  // rejection points (pre-solve check, in-sweep per-group check) answer
  // 504; which one fires depends on timing.
  Result<Response> late = client.value().call(
      R"({"id":2,"op":"sweep","group_size":3,"deadline_ms":0.001})");
  ASSERT_TRUE(late.ok());
  EXPECT_FALSE(late.value().ok);
  EXPECT_EQ(late.value().code, kCodeDeadlineExceeded);

  server.request_stop();
  server.stop();
  EXPECT_EQ(server.counters().deadline_exceeded, 1u);
}

TEST_F(ServeTest, ReloadRejectsBadProfileKeepsLastGood) {
  std::string good_path = "/tmp/ocps_test_reload_good.fp";
  std::string bad_path = "/tmp/ocps_test_reload_bad.fp";
  {
    std::vector<ProgramModel> fresh = make_models(2);
    FootprintFile file;
    file.name = "fresh0";
    file.access_rate = fresh[0].access_rate;
    file.trace_length = fresh[0].trace_length;
    file.distinct = fresh[0].distinct;
    file.footprint = fresh[0].footprint;
    save_footprint_file(file, good_path);
    std::ofstream bad(bad_path, std::ios::trunc);
    bad << "this is not a footprint file\n";
  }

  ServeConfig config;
  config.socket_path = unique_socket_path("reload");
  config.capacity = kCapacity;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(server.profile_version(), 1u);

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());

  // One bad file rejects the whole reload; the last-good set keeps
  // serving at the old version.
  Result<Response> rejected = client.value().call(
      R"({"id":1,"op":"reload","paths":[")" + good_path + R"(",")" +
      bad_path + R"("]})");
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected.value().ok);
  EXPECT_EQ(rejected.value().code, kCodeUnprocessable);
  EXPECT_EQ(server.profile_version(), 1u);

  // The old programs still answer.
  Result<Response> still =
      client.value().call(partition_request(2, {"prog0", "prog1"}));
  ASSERT_TRUE(still.ok());
  EXPECT_TRUE(still.value().ok);

  // A fully-good reload swaps atomically and bumps the version.
  Result<Response> ok_reload = client.value().call(
      R"({"id":3,"op":"reload","paths":[")" + good_path + R"("]})");
  ASSERT_TRUE(ok_reload.ok());
  EXPECT_TRUE(ok_reload.value().ok) << ok_reload.value().error;
  EXPECT_EQ(server.profile_version(), 2u);

  // New set serves, old names are gone.
  Result<Response> new_prog =
      client.value().call(partition_request(4, {"fresh0"}));
  ASSERT_TRUE(new_prog.ok());
  EXPECT_TRUE(new_prog.value().ok);
  Result<Response> old_prog =
      client.value().call(partition_request(5, {"prog0"}));
  ASSERT_TRUE(old_prog.ok());
  EXPECT_EQ(old_prog.value().code, kCodeNotFound);

  server.request_stop();
  server.stop();
  EXPECT_EQ(server.counters().reloads, 1u);
  EXPECT_EQ(server.counters().reload_rejected, 1u);
  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

TEST_F(ServeTest, DrainAnswersEveryAdmittedRequest) {
  std::atomic<bool> hold{true};
  ServeConfig config;
  config.socket_path = unique_socket_path("drain");
  config.capacity = kCapacity;
  config.max_batch = 4;
  config.hold_batching = &hold;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());

  // Admit 10 requests while the batcher is held, then stop the server
  // WITHOUT releasing the hold: the drain overrides it and every admitted
  // request must be answered before stop() returns (zero in-flight loss).
  const int kRequests = 10;
  std::string lines;
  for (int i = 0; i < kRequests; ++i)
    lines += partition_request(100 + i, {"prog0", "prog1"}).dump() + "\n";
  // No response can arrive while the batcher is held, so this call times
  // out by design — its job is only to write all 10 lines.
  Result<Response> first = client.value().call(
      lines.substr(0, lines.size() - 1), std::chrono::milliseconds(200));
  EXPECT_FALSE(first.ok());

  // Wait until the reader has admitted every request, so the drain below
  // is what answers them.
  for (int spin = 0; spin < 200 && server.queue_depth() < 10; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(server.queue_depth(), 10u);

  server.request_stop();
  server.stop();
  Server::Counters c = server.counters();
  EXPECT_EQ(c.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(c.answered, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(c.shed, 0u);
  EXPECT_EQ(server.queue_depth(), 0u);

#ifndef OCPS_OBS_DISABLED
  obs::MetricsSnapshot snap = obs::metrics_snapshot();
  EXPECT_EQ(obs_counter(snap, "serve.requests"), c.requests);
  EXPECT_EQ(obs_counter(snap, "serve.answered"), c.answered);
  // Batch-size histogram saw every answered request.
  for (const auto& h : snap.histograms) {
    if (h.name == "serve.batch_size") {
      std::uint64_t total = 0;
      double sum = h.sum;
      for (const auto& [bucket, count] : h.buckets) total += count;
      EXPECT_EQ(sum, static_cast<double>(kRequests));
      EXPECT_GE(total, 1u);
    }
  }
#endif
}

TEST_F(ServeTest, RequestsDuringDrainGet503) {
  ServeConfig config;
  config.socket_path = unique_socket_path("draining503");
  config.capacity = kCapacity;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());

  server.request_stop();  // drain begins; readers still answer briefly
  Result<Response> r = client.value().call(
      partition_request(1, {"prog0"}), std::chrono::milliseconds(2000));
  // Either the reader already exited (connection closed -> error) or the
  // request is refused with 503; it must never be silently dropped while
  // the connection stays open.
  if (r.ok()) {
    EXPECT_FALSE(r.value().ok);
    EXPECT_EQ(r.value().code, kCodeShuttingDown);
  }
  server.stop();
}

TEST_F(ServeTest, StaleSocketFileIsReclaimed) {
  ServeConfig config;
  config.socket_path = unique_socket_path("stale");
  config.capacity = kCapacity;
  {
    Server first(config, make_models(2));
    ASSERT_TRUE(first.start().ok());
    first.request_stop();
    first.stop();
  }
  // Simulate a crashed daemon: a leftover file at the path with nothing
  // listening behind it. start() must reclaim it, not fail EADDRINUSE.
  std::ofstream leak(config.socket_path);
  leak.close();
  Server second(config, make_models(2));
  Result<bool> started = second.start();
  ASSERT_TRUE(started.ok()) << started.error().to_string();
  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  Result<Response> r = client.value().call(R"({"op":"health"})");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().ok);
  second.request_stop();
  second.stop();
}

TEST_F(ServeTest, ProtocolRoundTrip) {
  Result<Request> req = parse_request(
      R"({"id":12,"op":"partition","programs":["a","b"],"capacity":32,)"
      R"("objective":"max","deadline_ms":7.5})");
  ASSERT_TRUE(req.ok()) << req.error().to_string();
  EXPECT_EQ(req.value().id, 12);
  EXPECT_EQ(req.value().op, Op::kPartition);
  EXPECT_EQ(req.value().programs.size(), 2u);
  EXPECT_EQ(req.value().capacity, 32u);
  EXPECT_EQ(req.value().objective, "max");
  EXPECT_DOUBLE_EQ(req.value().deadline_ms, 7.5);

  EXPECT_FALSE(parse_request(R"({"op":"explode"})").ok());
  EXPECT_FALSE(parse_request(R"({"op":"partition"})").ok());
  EXPECT_FALSE(parse_request(R"({"op":"reload"})").ok());
  EXPECT_FALSE(
      parse_request(R"({"op":"sweep","objective":"best"})").ok());
  EXPECT_FALSE(
      parse_request(R"({"op":"sweep","deadline_ms":-1})").ok());

  std::string err = error_response(3, kCodeQueueFull, "queue full");
  Result<Response> decoded = parse_response(err);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().id, 3);
  EXPECT_FALSE(decoded.value().ok);
  EXPECT_EQ(decoded.value().code, kCodeQueueFull);
  EXPECT_EQ(decoded.value().error, "queue full");
}

TEST_F(ServeTest, ProtocolMetricsSlowlogAndTraceId) {
  Result<Request> metrics =
      parse_request(R"({"id":1,"op":"metrics","trace_id":99})");
  ASSERT_TRUE(metrics.ok()) << metrics.error().to_string();
  EXPECT_EQ(metrics.value().op, Op::kMetrics);
  EXPECT_EQ(metrics.value().trace_id, 99u);

  Result<Request> slowlog = parse_request(R"({"id":2,"op":"slowlog"})");
  ASSERT_TRUE(slowlog.ok());
  EXPECT_EQ(slowlog.value().op, Op::kSlowlog);
  EXPECT_EQ(slowlog.value().trace_id, 0u);

  EXPECT_FALSE(parse_request(R"({"op":"health","trace_id":-3})").ok());
  EXPECT_FALSE(parse_request(R"({"op":"health","trace_id":1.5})").ok());

  // encode_request is the client-side twin of parse_request.
  Request req;
  req.id = 12;
  req.op = Op::kPartition;
  req.programs = {"a", "b"};
  req.capacity = 32;
  req.objective = "max";
  req.deadline_ms = 7.5;
  req.trace_id = 41;
  Result<Request> round = parse_request(encode_request(req));
  ASSERT_TRUE(round.ok()) << round.error().to_string();
  EXPECT_EQ(round.value().id, req.id);
  EXPECT_EQ(round.value().op, req.op);
  EXPECT_EQ(round.value().programs, req.programs);
  EXPECT_EQ(round.value().capacity, req.capacity);
  EXPECT_EQ(round.value().objective, req.objective);
  EXPECT_DOUBLE_EQ(round.value().deadline_ms, req.deadline_ms);
  EXPECT_EQ(round.value().trace_id, req.trace_id);
}

TEST_F(ServeTest, MetricsOpExposesRegistryAndPercentiles) {
  ServeConfig config;
  config.socket_path = unique_socket_path("metrics");
  config.capacity = kCapacity;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()
                  .call(partition_request(1, {"prog0", "prog1"}))
                  .ok());
  ASSERT_TRUE(client.value()
                  .call(partition_request(2, {"prog1", "prog2"}))
                  .ok());

  Result<Response> r = client.value().call(R"({"id":3,"op":"metrics"})");
  ASSERT_TRUE(r.ok());
#ifdef OCPS_OBS_DISABLED
  // Compiled out, the op still answers the protocol — with the explicit
  // "obs disabled" status, never a broken or empty response.
  EXPECT_FALSE(r.value().ok);
  EXPECT_EQ(r.value().code, kCodeObsDisabled);
#else
  ASSERT_TRUE(r.value().ok) << r.value().error;
  EXPECT_EQ(r.value().id, 3);
  EXPECT_EQ(r.value().body.get_number("window_s", 0.0), 30.0);
  EXPECT_EQ(r.value().body.get_number("version", 0.0), 1.0);

  // Machine-readable registry: counters saw the two solves, and the
  // derived latency percentile gauges exist (lifetime and windowed).
  const json::Value* metrics = r.value().body.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const json::Value* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->get_number("serve.answered", -1.0), 2.0);
  const json::Value* gauges = metrics->find("gauges");
  ASSERT_NE(gauges, nullptr);
  for (const char* g :
       {"serve.request_latency.p50", "serve.request_latency.p95",
        "serve.request_latency.p99", "serve.request_latency.window.p50",
        "serve.request_latency.window.p95",
        "serve.request_latency.window.p99"})
    EXPECT_GE(gauges->get_number(g, -1.0), 0.0) << g;
  EXPECT_GT(gauges->get_number("serve.request_latency.p50", 0.0), 0.0);

  // Prometheus text rides along for `ocps stats --socket`.
  std::string prom = r.value().body.get_string("prometheus", "");
  EXPECT_NE(prom.find("# TYPE serve_request_latency histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("serve_request_latency_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(prom.find("serve_request_latency_count 2"), std::string::npos);
  EXPECT_NE(prom.find("serve_request_latency_p50"), std::string::npos);
  EXPECT_NE(prom.find("serve_request_latency_window_p99"),
            std::string::npos);
  EXPECT_NE(prom.find("obs_spans_dropped"), std::string::npos);

  // With obs off at runtime the op answers 501, not a broken protocol.
  obs::set_enabled(false);
  Result<Response> off = client.value().call(R"({"id":4,"op":"metrics"})");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off.value().ok);
  EXPECT_EQ(off.value().code, kCodeObsDisabled);
  obs::set_enabled(true);
#endif  // OCPS_OBS_DISABLED

  server.request_stop();
  server.stop();
}

TEST_F(ServeTest, SlowlogKeepsSlowestAnsweredRequests) {
  ServeConfig config;
  config.socket_path = unique_socket_path("slowlog");
  config.capacity = kCapacity;
  config.slowlog_capacity = 2;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  for (int i = 1; i <= 3; ++i) {
    std::string line = R"({"id":)" + std::to_string(i) +
                       R"(,"op":"partition","programs":["prog0","prog1"],)" +
                       R"("trace_id":)" + std::to_string(100 + i) + "}";
    Result<Response> r = client.value().call(line);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().ok) << r.value().error;
  }

  // The slow log is server-owned state: it answers even with obs off.
  obs::set_enabled(false);
  Result<Response> r = client.value().call(R"({"id":9,"op":"slowlog"})");
  obs::set_enabled(true);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok) << r.value().error;
  EXPECT_EQ(r.value().body.get_number("capacity", 0.0), 2.0);
  const json::Value* rows = r.value().body.find("slowlog");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  // Capacity 2: only the two slowest of the three survive, sorted
  // slowest-first, each row carrying its correlation fields.
  ASSERT_EQ(rows->as_array().size(), 2u);
  double prev = std::numeric_limits<double>::infinity();
  for (const json::Value& row : rows->as_array()) {
    EXPECT_EQ(row.get_string("op", ""), "partition");
    EXPECT_EQ(row.get_number("groups", 0.0), 2.0);
    EXPECT_TRUE(row.get_bool("ok", false));
    double latency = row.get_number("latency_ms", -1.0);
    EXPECT_GE(latency, 0.0);
    EXPECT_LE(latency, prev);
    prev = latency;
    double id = row.get_number("id", 0.0);
    EXPECT_EQ(row.get_number("trace_id", 0.0), 100.0 + id);
    // No deadline was set: slack serializes as null (NaN -> null).
    const json::Value* slack = row.find("deadline_slack_ms");
    ASSERT_NE(slack, nullptr);
    EXPECT_TRUE(slack->is_null());
  }

  server.request_stop();
  server.stop();
}

TEST_F(ServeTest, TraceIdLinksSpansAcrossThreads) {
  obs::clear_trace_events();
  ServeConfig config;
  config.socket_path = unique_socket_path("traceid");
  config.capacity = kCapacity;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  Request req;
  req.id = 5;
  req.op = Op::kPartition;
  req.programs = {"prog0", "prog1"};
  req.trace_id = 777;
  Result<Response> r = client.value().call(encode_request(req));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok) << r.value().error;

#ifndef OCPS_OBS_DISABLED
  // The solve span closes just after the reply is written; poll briefly.
  bool admit_seen = false, solve_seen = false;
  std::vector<std::uint32_t> tids;
  for (int spin = 0; spin < 2000 && !(admit_seen && solve_seen); ++spin) {
    admit_seen = solve_seen = false;
    tids.clear();
    for (const auto& e : obs::trace_events()) {
      if (e.trace_id != 777) continue;
      if (std::string(e.name) == "serve.admit") admit_seen = true;
      if (std::string(e.name) == "serve.solve") solve_seen = true;
      tids.push_back(e.tid);
    }
    if (!(admit_seen && solve_seen))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // One request, one tree: admission on the reader thread and the solve
  // on the batching thread share the client's trace id across threads.
  EXPECT_TRUE(admit_seen);
  EXPECT_TRUE(solve_seen);
  ASSERT_GE(tids.size(), 2u);
  std::sort(tids.begin(), tids.end());
  EXPECT_NE(tids.front(), tids.back());
#endif  // OCPS_OBS_DISABLED

  server.request_stop();
  server.stop();
}

TEST_F(ServeTest, HttpEndpointServesPrometheus) {
  ServeConfig config;
  config.socket_path = unique_socket_path("http");
  config.capacity = kCapacity;
  config.metrics_port = -1;  // ephemeral: read the real port back
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());
  int port = server.bound_metrics_port();
  ASSERT_GT(port, 0);

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()
                  .call(partition_request(1, {"prog0", "prog1"}))
                  .ok());

  std::string resp = http_get(port, "/metrics");
#ifdef OCPS_OBS_DISABLED
  // Compiled out, the listener still binds and answers an explicit 501.
  EXPECT_NE(resp.find("501 Not Implemented"), std::string::npos) << resp;
#else
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.find("# TYPE serve_requests counter"), std::string::npos);
  EXPECT_NE(resp.find("serve_request_latency_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(resp.find("serve_request_latency_p50"), std::string::npos);
#endif

  EXPECT_NE(http_get(port, "/nope").find("404 Not Found"),
            std::string::npos);

  // Runtime obs-off answers an explicit 501, not an empty page.
  obs::set_enabled(false);
  EXPECT_NE(http_get(port, "/metrics").find("501 Not Implemented"),
            std::string::npos);
  obs::set_enabled(true);

  server.request_stop();
  server.stop();

  // The listener is gone after stop().
  EXPECT_EQ(http_get(port, "/metrics"), "");
}

TEST_F(ServeTest, MetricsPortZeroMeansNoListener) {
  ServeConfig config;
  config.socket_path = unique_socket_path("nohttp");
  config.capacity = kCapacity;
  Server server(config, make_models(2));
  ASSERT_TRUE(server.start().ok());
  EXPECT_EQ(server.bound_metrics_port(), 0);
  server.request_stop();
  server.stop();
}

// ---------------------------------------------------------------------------
// TCP transport: the same protocol/admission/drain machinery behind a
// second listener.

TEST_F(ServeTest, TcpListenerAnswersSameProtocol) {
  ServeConfig config;
  config.socket_path = unique_socket_path("tcp");
  config.capacity = kCapacity;
  config.listen_address = "127.0.0.1:0";  // ephemeral, read back
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());
  ASSERT_GT(server.bound_listen_port(), 0);

  Result<Client> tcp = Client::connect(
      "127.0.0.1:" + std::to_string(server.bound_listen_port()));
  ASSERT_TRUE(tcp.ok()) << tcp.error().message;
  Result<Response> resp =
      tcp.value().call(partition_request(1, {"prog0", "prog1"}));
  ASSERT_TRUE(resp.ok()) << resp.error().message;
  EXPECT_TRUE(resp.value().ok) << resp.value().error;
  EXPECT_NE(resp.value().body.find("alloc"), nullptr);

  // Unix and TCP clients hit the same solver and profile set.
  Result<Client> unix_client = Client::connect(config.socket_path);
  ASSERT_TRUE(unix_client.ok());
  Result<Response> via_unix =
      unix_client.value().call(partition_request(2, {"prog0", "prog1"}));
  ASSERT_TRUE(via_unix.ok());
  const json::Value* a = resp.value().body.find("alloc");
  const json::Value* b = via_unix.value().body.find("alloc");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->dump(), b->dump());

  server.request_stop();
  server.stop();
  EXPECT_EQ(server.counters().answered, 2u);
}

TEST_F(ServeTest, TcpOnlyServerNeedsNoUnixSocket) {
  ServeConfig config;
  config.capacity = kCapacity;  // no socket_path at all
  config.listen_address = "127.0.0.1:0";
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());
  ASSERT_GT(server.bound_listen_port(), 0);

  Result<Client> tcp = Client::connect(
      "127.0.0.1:" + std::to_string(server.bound_listen_port()));
  ASSERT_TRUE(tcp.ok()) << tcp.error().message;
  Result<Response> resp =
      tcp.value().call(partition_request(1, {"prog0", "prog1"}));
  ASSERT_TRUE(resp.ok()) << resp.error().message;
  EXPECT_TRUE(resp.value().ok) << resp.value().error;

  server.request_stop();
  server.stop();
  EXPECT_EQ(server.counters().answered, 1u);
}

TEST_F(ServeTest, TcpConnectionLimitRefusesWith503) {
  ServeConfig config;
  config.socket_path = unique_socket_path("connlim");
  config.capacity = kCapacity;
  config.listen_address = "127.0.0.1:0";
  config.max_connections = 1;
  Server server(config, make_models(2));
  ASSERT_TRUE(server.start().ok());
  std::string addr = "127.0.0.1:" + std::to_string(server.bound_listen_port());

  Result<Client> first = Client::connect(addr);
  ASSERT_TRUE(first.ok());
  // Make sure the first connection is registered before the second
  // arrives (accept handling is asynchronous).
  ASSERT_TRUE(first.value().call(R"({"id":1,"op":"health"})").ok());

  Result<Client> second = Client::connect(addr);
  ASSERT_TRUE(second.ok());  // TCP connect succeeds; refusal is in-band
  Result<Response> refused =
      second.value().call(partition_request(2, {"prog0"}));
  ASSERT_TRUE(refused.ok()) << refused.error().message;
  EXPECT_FALSE(refused.value().ok);
  EXPECT_EQ(refused.value().code, kCodeShuttingDown);

  // The admitted connection keeps working at the limit.
  Result<Response> still =
      first.value().call(partition_request(3, {"prog0", "prog1"}));
  ASSERT_TRUE(still.ok());
  EXPECT_TRUE(still.value().ok);
  server.request_stop();
  server.stop();
}

TEST_F(ServeTest, StalledPartialFrameTimesOutWith400) {
  ServeConfig config;
  config.socket_path = unique_socket_path("stall");
  config.capacity = kCapacity;
  config.listen_address = "127.0.0.1:0";
  config.io_timeout = std::chrono::milliseconds(200);
  Server server(config, make_models(2));
  ASSERT_TRUE(server.start().ok());

  // A raw peer that writes half a request line and then goes silent: the
  // reader must give up after io_timeout with an in-band 400, not hold
  // the connection slot forever.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.bound_listen_port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char* half = R"({"id":1,"op":"par)";  // no newline, never finished
  ASSERT_GT(::send(fd, half, strlen(half), 0), 0);

  std::string out;
  char buf[512];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  EXPECT_NE(out.find("\"code\":400"), std::string::npos) << out;
  EXPECT_NE(out.find("stalled"), std::string::npos) << out;

  server.request_stop();
  server.stop();
  EXPECT_EQ(server.counters().malformed, 1u);
}

TEST_F(ServeTest, ChaosWriteFaultsKeepResponsesWellFormed) {
  // Trickle + stall mangle the write *pacing*, never the bytes: a client
  // must still read complete, well-formed responses.
  NetFaultConfig chaos;
  chaos.trickle_rate = 0.5;
  chaos.stall_rate = 0.5;
  chaos.stall = std::chrono::milliseconds(5);
  chaos.seed = 99;
  NetFaultInjector injector(chaos);

  ServeConfig config;
  config.socket_path = unique_socket_path("chaos");
  config.capacity = kCapacity;
  config.net_faults = &injector;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());
  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  for (int i = 1; i <= 8; ++i) {
    Result<Response> resp =
        client.value().call(partition_request(i, {"prog0", "prog1"}));
    ASSERT_TRUE(resp.ok()) << resp.error().message;
    EXPECT_TRUE(resp.value().ok) << resp.value().error;
    EXPECT_EQ(resp.value().id, i);
  }
  EXPECT_GT(injector.injected_total(), 0u)
      << "chaos config never fired; the test asserts nothing";
  server.request_stop();
  server.stop();
}

TEST_F(ServeTest, ChaosResetDropsConnectionButClientRetriesThrough) {
  NetFaultConfig chaos;
  chaos.reset_rate = 1.0;  // every response is cut mid-line
  NetFaultInjector injector(chaos);

  ServeConfig config;
  config.socket_path = unique_socket_path("reset");
  config.capacity = kCapacity;
  config.net_faults = &injector;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  // The plain call sees a transport error (half a JSON line then reset),
  // never a silently truncated "success".
  Result<Response> plain =
      client.value().call(partition_request(1, {"prog0"}));
  EXPECT_FALSE(plain.ok());
  EXPECT_GT(injector.injected_resets(), 0u);

  server.request_stop();
  server.stop();
}

// ---------------------------------------------------------------------------
// Per-stage latency attribution, distributed tracing, and SLOs.

constexpr const char* kStageFields[] = {"queue_wait_ms", "batch_linger_ms",
                                        "solve_ms", "serialize_ms",
                                        "network_ms"};

TEST_F(ServeTest, SlowlogRowsCarryStageDecompositionSummingToLatency) {
  ServeConfig config;
  config.socket_path = unique_socket_path("stages");
  config.capacity = kCapacity;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  for (int i = 1; i <= 3; ++i) {
    Result<Response> r =
        client.value().call(partition_request(i, {"prog0", "prog1"}));
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().ok) << r.value().error;
  }

  Result<Response> r = client.value().call(R"({"id":9,"op":"slowlog"})");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok) << r.value().error;
  const json::Value* rows = r.value().body.find("slowlog");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->as_array().size(), 3u);
  for (const json::Value& row : rows->as_array()) {
    // Old row shape intact…
    EXPECT_EQ(row.get_string("op", ""), "partition");
    double latency = row.get_number("latency_ms", -1.0);
    ASSERT_GE(latency, 0.0);
    // …with the five stage fields appended, each non-negative, and the
    // decomposition reconciling with the end-to-end latency: queue_wait
    // is computed as the remainder, so the identity is exact up to
    // floating rounding.
    double sum = 0.0;
    for (const char* field : kStageFields) {
      double v = row.get_number(field, -1.0);
      ASSERT_GE(v, 0.0) << field;
      sum += v;
    }
    EXPECT_NEAR(sum, latency, 1e-6);
  }

  server.request_stop();
  server.stop();
}

TEST_F(ServeTest, TraceOpReturnsRetainedSpansForId) {
  obs::clear_trace_events();
  ServeConfig config;
  config.socket_path = unique_socket_path("traceop");
  config.capacity = kCapacity;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());

  // trace without a trace_id is a protocol error, not an empty answer.
  Result<Response> no_id = client.value().call(R"({"id":1,"op":"trace"})");
  ASSERT_TRUE(no_id.ok());
  EXPECT_FALSE(no_id.value().ok);
  EXPECT_EQ(no_id.value().code, kCodeBadRequest);

  Request tagged;
  tagged.id = 2;
  tagged.op = Op::kPartition;
  tagged.programs = {"prog0", "prog1"};
  tagged.trace_id = 4242;
  ASSERT_TRUE(client.value().call(encode_request(tagged)).ok());

  Request query;
  query.id = 3;
  query.op = Op::kTrace;
  query.trace_id = 4242;
  Result<Response> r = client.value().call(encode_request(query));
  ASSERT_TRUE(r.ok());
#ifdef OCPS_OBS_DISABLED
  // Compiled out there are no retained spans; the op answers an explicit
  // 501, mirroring `metrics`.
  EXPECT_FALSE(r.value().ok);
  EXPECT_EQ(r.value().code, kCodeObsDisabled);
#else
  ASSERT_TRUE(r.value().ok) << r.value().error;
  EXPECT_EQ(r.value().body.get_number("trace_id", 0.0), 4242.0);
  const json::Value* procs = r.value().body.find("procs");
  ASSERT_NE(procs, nullptr);
  ASSERT_EQ(procs->as_array().size(), 1u);
  const json::Value& proc = procs->as_array()[0];
  EXPECT_EQ(proc.get_string("proc", ""), "serve");
  // The wall/mono clock pair is what lets `ocps trace` line up spans
  // from different processes on one timeline.
  EXPECT_GT(proc.get_number("mono_ns", 0.0), 0.0);
  EXPECT_GT(proc.get_number("wall_ns", 0.0), 0.0);
  const json::Value* spans = proc.find("spans");
  ASSERT_NE(spans, nullptr);
  // The solve span may close a hair after the response is written, so
  // poll: the tagged request's spans must become visible.
  bool solve_seen = false;
  for (int spin = 0; spin < 2000 && !solve_seen; ++spin) {
    Result<Response> again = client.value().call(encode_request(query));
    ASSERT_TRUE(again.ok());
    const json::Value* ps = again.value().body.find("procs");
    ASSERT_NE(ps, nullptr);
    for (const json::Value& s :
         ps->as_array()[0].find("spans")->as_array())
      if (s.get_string("name", "") == "serve.solve") solve_seen = true;
    if (!solve_seen)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(solve_seen);

  // Runtime obs-off: explicit 501, same contract as `metrics`.
  obs::set_enabled(false);
  Result<Response> off = client.value().call(encode_request(query));
  obs::set_enabled(true);
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off.value().ok);
  EXPECT_EQ(off.value().code, kCodeObsDisabled);
#endif  // OCPS_OBS_DISABLED

  server.request_stop();
  server.stop();
}

TEST_F(ServeTest, SloOpReportsBurnRatesEvenWithObsOff) {
  ServeConfig config;
  config.socket_path = unique_socket_path("sloop");
  config.capacity = kCapacity;
  config.slo_p99_ms = 60000.0;  // everything is fast: never breaching
  config.slo_availability = 0.5;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client.value().call(partition_request(1, {"prog0", "prog1"})).ok());

  // The SLO engine is server-owned state, independent of the obs
  // registry: it answers with obs off at runtime (and compiled out).
  obs::set_enabled(false);
  Result<Response> r = client.value().call(R"({"id":2,"op":"slo"})");
  obs::set_enabled(true);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok) << r.value().error;
  EXPECT_TRUE(r.value().body.get_bool("configured", false));
  const json::Value* objectives = r.value().body.find("objectives");
  ASSERT_NE(objectives, nullptr);
  ASSERT_EQ(objectives->as_array().size(), 2u);
  const json::Value& latency = objectives->as_array()[0];
  EXPECT_EQ(latency.get_string("name", ""), "latency");
  EXPECT_DOUBLE_EQ(latency.get_number("target", 0.0), 60000.0);
  EXPECT_DOUBLE_EQ(latency.get_number("budget", 0.0), 0.01);
  EXPECT_GE(latency.get_number("burn_5m", -1.0), 0.0);
  EXPECT_GE(latency.get_number("burn_1h", -1.0), 0.0);
  EXPECT_FALSE(latency.get_bool("breaching", true));
  const json::Value& avail = objectives->as_array()[1];
  EXPECT_EQ(avail.get_string("name", ""), "availability");
  EXPECT_DOUBLE_EQ(avail.get_number("target", 0.0), 0.5);
  const json::Value* alerts = r.value().body.find("alerts");
  ASSERT_NE(alerts, nullptr);
  EXPECT_TRUE(alerts->as_array().empty());
  EXPECT_EQ(r.value().body.get_number("alerts_total", -1.0), 0.0);

  server.request_stop();
  server.stop();
}

TEST_F(ServeTest, SloOpUnconfiguredSaysSo) {
  ServeConfig config;
  config.socket_path = unique_socket_path("slooff");
  config.capacity = kCapacity;
  Server server(config, make_models(2));
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  Result<Response> r = client.value().call(R"({"id":1,"op":"slo"})");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok) << r.value().error;
  EXPECT_FALSE(r.value().body.get_bool("configured", true));
  const json::Value* objectives = r.value().body.find("objectives");
  ASSERT_NE(objectives, nullptr);
  EXPECT_TRUE(objectives->as_array().empty());

  server.request_stop();
  server.stop();
}

#ifndef OCPS_OBS_DISABLED
TEST_F(ServeTest, MetricsExposeStageSeriesAndSloGauges) {
  ServeConfig config;
  config.socket_path = unique_socket_path("stagemetrics");
  config.capacity = kCapacity;
  config.slo_p99_ms = 60000.0;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());

  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  Request tagged;
  tagged.id = 1;
  tagged.op = Op::kPartition;
  tagged.programs = {"prog0", "prog1"};
  tagged.trace_id = 555;
  ASSERT_TRUE(client.value().call(encode_request(tagged)).ok());

  Result<Response> r = client.value().call(R"({"id":2,"op":"metrics"})");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok) << r.value().error;
  const json::Value* metrics = r.value().body.find("metrics");
  ASSERT_NE(metrics, nullptr);

  // Per-stage lifetime histograms (eagerly registered, fed by traffic)
  // and their windowed quantile gauges.
  const json::Value* hists = metrics->find("histograms");
  ASSERT_NE(hists, nullptr);
  for (const char* stage :
       {"serve.stage.queue_wait", "serve.stage.batch_linger",
        "serve.stage.solve", "serve.stage.serialize",
        "serve.stage.network"}) {
    const json::Value* h = hists->find(stage);
    ASSERT_NE(h, nullptr) << stage;
    EXPECT_EQ(h->get_number("count", 0.0), 1.0) << stage;
  }
  const json::Value* gauges = metrics->find("gauges");
  ASSERT_NE(gauges, nullptr);
  for (const char* g :
       {"serve.stage.solve.window.p50", "serve.stage.solve.window.p99",
        "serve.stage.network.window.p99", "serve.slo.latency.target",
        "serve.slo.latency.burn_5m", "serve.slo.latency.burn_1h",
        "serve.slo.latency.breaching", "serve.slo.alerts_total"})
    EXPECT_GE(gauges->get_number(g, -1.0), 0.0) << g;
  EXPECT_DOUBLE_EQ(gauges->get_number("serve.slo.latency.target", 0.0),
                   60000.0);

  // The tagged request left exemplars on the stage histograms, and the
  // Prometheus text carries them as OpenMetrics suffixes.
  std::string prom = r.value().body.get_string("prometheus", "");
  EXPECT_NE(prom.find("# TYPE serve_stage_solve histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("serve_slo_latency_burn_5m"), std::string::npos);
  EXPECT_NE(prom.find("# {trace_id=\"555\"}"), std::string::npos);

  server.request_stop();
  server.stop();
}
#endif  // OCPS_OBS_DISABLED

TEST_F(ServeTest, PartitionResponsesCarryDecisionIdsAndDecisionsOpListsThem) {
  ServeConfig config;
  config.socket_path = unique_socket_path("decisions");
  config.capacity = kCapacity;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());
  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());

  Result<Response> first =
      client.value().call(partition_request(1, {"prog0", "prog1"}));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().ok);
  EXPECT_EQ(first.value().body.get_number("decision_id", 0.0), 1.0);
  Result<Response> second =
      client.value().call(partition_request(2, {"prog2", "prog3"}));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value().ok);
  EXPECT_EQ(second.value().body.get_number("decision_id", 0.0), 2.0);

  Result<Response> audit =
      client.value().call(R"({"id":3,"op":"decisions"})");
  ASSERT_TRUE(audit.ok());
  ASSERT_TRUE(audit.value().ok) << audit.value().error;
  const json::Value& body = audit.value().body;
  const json::Value* rows = body.find("decisions");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->as_array().size(), 2u);
  // Newest first; the profile set never changed, so both are on-demand
  // request decisions with per-tenant predictions attached.
  const json::Value& newest = rows->as_array()[0];
  EXPECT_EQ(newest.get_number("decision_id", 0.0), 2.0);
  EXPECT_EQ(newest.get_string("trigger", ""), "request");
  EXPECT_FALSE(newest.get_bool("reconciled", true));
  const json::Value* predicted = newest.find("predicted_mr");
  ASSERT_NE(predicted, nullptr);
  ASSERT_EQ(predicted->as_array().size(), 2u);
  EXPECT_TRUE(predicted->as_array()[0].is_number());
  EXPECT_GT(newest.get_number("solve_ns", -1.0), 0.0);

  const json::Value* acc = body.find("accuracy");
  ASSERT_NE(acc, nullptr);
  EXPECT_EQ(acc->get_number("decisions_total", 0.0), 2.0);
  EXPECT_EQ(acc->get_number("reconciled", -1.0), 0.0);
  const json::Value* drift = body.find("drift");
  ASSERT_NE(drift, nullptr);
  EXPECT_FALSE(drift->get_bool("configured", true));

  // Fetch-one shape: the record plus its predecessor for the why-diff.
  Result<Response> one =
      client.value().call(R"({"id":4,"op":"decisions","decision_id":2})");
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(one.value().ok);
  ASSERT_NE(one.value().body.find("decision"), nullptr);
  ASSERT_NE(one.value().body.find("previous"), nullptr);
  EXPECT_EQ(one.value().body.find("previous")->get_number("decision_id", 0.0),
            1.0);

  Result<Response> missing =
      client.value().call(R"({"id":5,"op":"decisions","decision_id":99})");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value().ok);
  EXPECT_EQ(missing.value().code, kCodeNotFound);

  server.request_stop();
  server.stop();
}

TEST_F(ServeTest, ReconcileAttachesRealizedRatiosAndRejectsBadRequests) {
  ServeConfig config;
  config.socket_path = unique_socket_path("reconcile");
  config.capacity = kCapacity;
  config.drift_threshold = 0.01;  // make the detector alert-capable
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());
  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());

  Result<Response> part =
      client.value().call(partition_request(1, {"prog0", "prog1"}));
  ASSERT_TRUE(part.ok());
  ASSERT_TRUE(part.value().ok);
  const std::uint64_t id = static_cast<std::uint64_t>(
      part.value().body.get_number("decision_id", 0.0));
  ASSERT_EQ(id, 1u);

  // Realized ratios in tenant order; null = the tenant made no accesses.
  Result<Response> ok = client.value().call(
      R"({"id":2,"op":"reconcile","decision_id":1,"realized":[0.9,null]})");
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(ok.value().ok) << ok.value().error;
  const json::Value* rec = ok.value().body.find("decision");
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->get_bool("reconciled", false));
  const json::Value* err = rec->find("error");
  ASSERT_NE(err, nullptr);
  ASSERT_EQ(err->as_array().size(), 2u);
  EXPECT_TRUE(err->as_array()[0].is_number());
  EXPECT_TRUE(err->as_array()[1].is_null());  // NaN serializes as null
  const json::Value* drift = ok.value().body.find("drift");
  ASSERT_NE(drift, nullptr);
  EXPECT_EQ(drift->get_number("samples", 0.0), 1.0);

  // Double-reconcile -> 422; unknown id -> 404; size mismatch -> 400.
  Result<Response> twice = client.value().call(
      R"({"id":3,"op":"reconcile","decision_id":1,"realized":[0.9,0.1]})");
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice.value().code, kCodeUnprocessable);
  Result<Response> unknown = client.value().call(
      R"({"id":4,"op":"reconcile","decision_id":77,"realized":[0.5]})");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown.value().code, kCodeNotFound);
  Result<Response> part2 =
      client.value().call(partition_request(5, {"prog0", "prog1"}));
  ASSERT_TRUE(part2.ok());
  Result<Response> mismatch = client.value().call(
      R"({"id":6,"op":"reconcile","decision_id":2,"realized":[0.5]})");
  ASSERT_TRUE(mismatch.ok());
  EXPECT_EQ(mismatch.value().code, kCodeBadRequest);
  // A reconcile without realized ratios is malformed outright.
  Result<Response> empty = client.value().call(
      R"({"id":7,"op":"reconcile","decision_id":2})");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().code, kCodeBadRequest);

  server.request_stop();
  server.stop();
}

TEST_F(ServeTest, ReloadTagsTheNextDecision) {
  std::string fp_path = "/tmp/ocps_test_decision_reload.fp";
  {
    std::vector<ProgramModel> fresh = make_models(1);
    FootprintFile file;
    file.name = "fresh0";
    file.access_rate = fresh[0].access_rate;
    file.trace_length = fresh[0].trace_length;
    file.distinct = fresh[0].distinct;
    file.footprint = fresh[0].footprint;
    save_footprint_file(file, fp_path);
  }
  ServeConfig config;
  config.socket_path = unique_socket_path("decreload");
  config.capacity = kCapacity;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());
  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());

  Result<Response> before =
      client.value().call(partition_request(1, {"prog0"}));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before.value().ok);
  Result<Response> reload = client.value().call(
      R"({"id":2,"op":"reload","paths":[")" + fp_path + R"("]})");
  ASSERT_TRUE(reload.ok());
  ASSERT_TRUE(reload.value().ok) << reload.value().error;
  Result<Response> after =
      client.value().call(partition_request(3, {"fresh0"}));
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after.value().ok);
  Result<Response> after2 =
      client.value().call(partition_request(4, {"fresh0"}));
  ASSERT_TRUE(after2.ok());
  ASSERT_TRUE(after2.value().ok);

  Result<Response> audit =
      client.value().call(R"({"id":5,"op":"decisions"})");
  ASSERT_TRUE(audit.ok());
  const json::Value* rows = audit.value().body.find("decisions");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->as_array().size(), 3u);  // newest first: 3, 2, 1
  EXPECT_EQ(rows->as_array()[0].get_string("trigger", ""), "request");
  EXPECT_EQ(rows->as_array()[1].get_string("trigger", ""), "reload");
  EXPECT_EQ(rows->as_array()[2].get_string("trigger", ""), "request");

  server.request_stop();
  server.stop();
  std::remove(fp_path.c_str());
}

TEST_F(ServeTest, DecisionsOpAnswersWithObsOff) {
  obs::set_enabled(false);
  ServeConfig config;
  config.socket_path = unique_socket_path("decobsoff");
  config.capacity = kCapacity;
  Server server(config, make_models());
  ASSERT_TRUE(server.start().ok());
  Result<Client> client = Client::connect(config.socket_path);
  ASSERT_TRUE(client.ok());

  Result<Response> part =
      client.value().call(partition_request(1, {"prog0", "prog1"}));
  ASSERT_TRUE(part.ok());
  ASSERT_TRUE(part.value().ok);
  EXPECT_EQ(part.value().body.get_number("decision_id", 0.0), 1.0);

  // The audit trail is registry-independent: unlike `metrics`, the
  // decisions op answers with observability off.
  Result<Response> audit =
      client.value().call(R"({"id":2,"op":"decisions"})");
  ASSERT_TRUE(audit.ok());
  ASSERT_TRUE(audit.value().ok) << audit.value().error;
  const json::Value* rows = audit.value().body.find("decisions");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->as_array().size(), 1u);
  Result<Response> rec = client.value().call(
      R"({"id":3,"op":"reconcile","decision_id":1,"realized":[0.5,0.5]})");
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec.value().ok) << rec.value().error;

  server.request_stop();
  server.stop();
  obs::set_enabled(true);
}

TEST_F(ServeTest, ServeConfigRejectsBadDecisionKnobs) {
  std::vector<ProgramModel> models = make_models(2);
  {
    ServeConfig config;
    config.socket_path = unique_socket_path("baddec1");
    config.capacity = kCapacity;
    config.decision_log_capacity = 0;
    EXPECT_THROW(Server(config, models), CheckError);
  }
  {
    ServeConfig config;
    config.socket_path = unique_socket_path("baddec2");
    config.capacity = kCapacity;
    config.drift_alpha = 1.5;  // must be in (0, 1]
    EXPECT_THROW(Server(config, models), CheckError);
  }
  {
    ServeConfig config;
    config.socket_path = unique_socket_path("baddec3");
    config.capacity = kCapacity;
    config.drift_threshold = -0.1;
    EXPECT_THROW(Server(config, models), CheckError);
  }
}

TEST_F(ServeTest, ServeConfigRejectsBadSloKnobs) {
  std::vector<ProgramModel> models = make_models(2);
  {
    ServeConfig config;
    config.socket_path = unique_socket_path("badslo1");
    config.capacity = kCapacity;
    config.slo_p99_ms = -1.0;
    EXPECT_THROW(Server(config, models), CheckError);
  }
  {
    ServeConfig config;
    config.socket_path = unique_socket_path("badslo2");
    config.capacity = kCapacity;
    config.slo_availability = 1.0;  // must be < 1
    EXPECT_THROW(Server(config, models), CheckError);
  }
}

}  // namespace
}  // namespace ocps::serve
