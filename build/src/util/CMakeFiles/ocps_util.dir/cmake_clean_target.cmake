file(REMOVE_RECURSE
  "libocps_util.a"
)
