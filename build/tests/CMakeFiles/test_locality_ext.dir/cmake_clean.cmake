file(REMOVE_RECURSE
  "CMakeFiles/test_locality_ext.dir/test_locality_ext.cpp.o"
  "CMakeFiles/test_locality_ext.dir/test_locality_ext.cpp.o.d"
  "test_locality_ext"
  "test_locality_ext.pdb"
  "test_locality_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locality_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
