file(REMOVE_RECURSE
  "CMakeFiles/ocps_locality.dir/crd.cpp.o"
  "CMakeFiles/ocps_locality.dir/crd.cpp.o.d"
  "CMakeFiles/ocps_locality.dir/footprint.cpp.o"
  "CMakeFiles/ocps_locality.dir/footprint.cpp.o.d"
  "CMakeFiles/ocps_locality.dir/footprint_io.cpp.o"
  "CMakeFiles/ocps_locality.dir/footprint_io.cpp.o.d"
  "CMakeFiles/ocps_locality.dir/hotl.cpp.o"
  "CMakeFiles/ocps_locality.dir/hotl.cpp.o.d"
  "CMakeFiles/ocps_locality.dir/mrc.cpp.o"
  "CMakeFiles/ocps_locality.dir/mrc.cpp.o.d"
  "CMakeFiles/ocps_locality.dir/phases.cpp.o"
  "CMakeFiles/ocps_locality.dir/phases.cpp.o.d"
  "CMakeFiles/ocps_locality.dir/reuse_distance.cpp.o"
  "CMakeFiles/ocps_locality.dir/reuse_distance.cpp.o.d"
  "CMakeFiles/ocps_locality.dir/reuse_time.cpp.o"
  "CMakeFiles/ocps_locality.dir/reuse_time.cpp.o.d"
  "CMakeFiles/ocps_locality.dir/sampling.cpp.o"
  "CMakeFiles/ocps_locality.dir/sampling.cpp.o.d"
  "CMakeFiles/ocps_locality.dir/shards.cpp.o"
  "CMakeFiles/ocps_locality.dir/shards.cpp.o.d"
  "libocps_locality.a"
  "libocps_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocps_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
