# Empty compiler generated dependencies file for ocps_comb.
# This may be replaced when dependencies are built.
