#include "cachesim/set_assoc.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ocps {

namespace {
// Finalizer from splitmix64: spreads block ids across sets so that strided
// synthetic traces do not alias pathologically.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

SetAssociativeCache::SetAssociativeCache(std::size_t num_sets,
                                         std::size_t ways)
    : sets_(num_sets), ways_(ways), mask_(num_sets - 1) {
  OCPS_CHECK(num_sets >= 1 && (num_sets & (num_sets - 1)) == 0,
             "num_sets must be a power of two, got " << num_sets);
  OCPS_CHECK(ways >= 1, "ways must be >= 1");
  for (auto& s : sets_) s.lines.reserve(ways);
}

std::size_t SetAssociativeCache::set_index(Block b) const {
  return static_cast<std::size_t>(mix(b)) & mask_;
}

bool SetAssociativeCache::access(Block b) {
  OCPS_OBS_COUNT("sim.set_assoc.accesses", 1);
  Set& set = sets_[set_index(b)];
  auto& lines = set.lines;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i] == b) {
      ++hits_;
      OCPS_OBS_COUNT("sim.set_assoc.hits", 1);
      // Move to front (MRU).
      for (std::size_t j = i; j > 0; --j) lines[j] = lines[j - 1];
      lines[0] = b;
      return true;
    }
  }
  ++misses_;
  if (lines.size() < ways_) {
    lines.insert(lines.begin(), b);
  } else {
    OCPS_OBS_COUNT("sim.set_assoc.evictions", 1);
    for (std::size_t j = lines.size() - 1; j > 0; --j) lines[j] = lines[j - 1];
    lines[0] = b;
  }
  return false;
}

double SetAssociativeCache::miss_ratio() const {
  std::uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(misses_) / static_cast<double>(total);
}

void SetAssociativeCache::reset() {
  for (auto& s : sets_) s.lines.clear();
  hits_ = misses_ = 0;
}

}  // namespace ocps
