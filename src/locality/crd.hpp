// Concurrent reuse distance (CRD) analysis (§IX related work: Jiang et
// al., Schuff et al., Wu & Yeung).
//
// CRD profiles the *interleaved* trace of a co-run group: one stack-
// distance pass yields, for every cache size simultaneously, the exact
// shared-cache miss count of every member. It is the precise but
// per-group-priced alternative to the paper's composition theory: CRD must
// be re-measured for every group (and every interleaving ratio), while
// footprint composition predicts any group from per-program profiles.
// The library provides both so the trade-off can be quantified
// (bench_crd_vs_composition).
#pragma once

#include <cstdint>
#include <vector>

#include "locality/mrc.hpp"
#include "trace/interleave.hpp"

namespace ocps {

/// Per-program and group stack-distance statistics of an interleaved
/// trace.
struct CrdProfile {
  /// hist[p][d] = accesses of program p with concurrent stack distance d.
  std::vector<std::vector<std::uint64_t>> hist;
  std::vector<std::uint64_t> cold;      ///< per-program cold misses
  std::vector<std::uint64_t> accesses;  ///< per-program access counts
  std::uint64_t trace_length = 0;

  std::size_t num_programs() const { return hist.size(); }

  /// Shared-cache misses of program p at cache size c.
  std::uint64_t misses_at(std::size_t program, std::size_t c) const;

  /// Program p's shared-cache miss-ratio curve for sizes 0..capacity.
  MissRatioCurve program_mrc(std::size_t program,
                             std::size_t capacity) const;

  /// Group (all-access) miss-ratio curve for sizes 0..capacity.
  MissRatioCurve group_mrc(std::size_t capacity) const;
};

/// One O(n log n) pass over the interleaved trace.
CrdProfile concurrent_reuse_distances(const InterleavedTrace& trace);

}  // namespace ocps
