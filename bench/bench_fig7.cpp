// Fig. 7: STTW vs Optimal group miss ratio over all co-run groups (sorted
// by Optimal), plus the §VII-B statistics: in how many groups STTW is at
// least 10% / 20% worse than Optimal, and where STTW loses to plain
// free-for-all sharing (Natural) because of non-convex MRCs.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "common.hpp"
#include "core/sttw.hpp"
#include "core/suh.hpp"
#include "util/stats.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Evaluation eval = load_evaluation();

  std::vector<std::size_t> order(eval.sweep.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return eval.sweep[a].of(Method::kOptimal).group_mr <
           eval.sweep[b].of(Method::kOptimal).group_mr;
  });

  std::cout << "=== Fig. 7: group miss ratio, STTW vs Optimal (sorted by "
               "Optimal) ===\n\n";
  TextTable t({"rank", "group", "STTW", "Optimal", "STTW/Optimal"});
  std::size_t step = std::max<std::size_t>(1, order.size() / 40);
  for (std::size_t r = 0; r < order.size();
       r += (r + step < order.size() ? step : 1)) {
    const auto& g = eval.sweep[order[r]];
    std::string members;
    for (auto m : g.members) {
      if (!members.empty()) members += "+";
      members += eval.suite.models[m].name;
    }
    double sttw = g.of(Method::kSttw).group_mr;
    double opt = g.of(Method::kOptimal).group_mr;
    t.add_row({std::to_string(r), members, TextTable::num(sttw, 5),
               TextTable::num(opt, 5),
               opt > 0 ? TextTable::num(sttw / opt, 3) : "-"});
    if (r + 1 == order.size()) break;
  }
  emit_table(t, "fig7_decimated");

  TextTable full({"rank", "STTW", "Optimal"});
  for (std::size_t r = 0; r < order.size(); ++r) {
    const auto& g = eval.sweep[order[r]];
    full.add_row({std::to_string(r),
                  TextTable::num(g.of(Method::kSttw).group_mr, 6),
                  TextTable::num(g.of(Method::kOptimal).group_mr, 6)});
  }
  emit_csv_only(full, "fig7_full");

  // §VII-B statistics.
  std::size_t worse10 = 0, worse20 = 0, worse_than_natural = 0;
  std::vector<double> gaps;
  for (const auto& g : eval.sweep) {
    double sttw = g.of(Method::kSttw).group_mr;
    double opt = g.of(Method::kOptimal).group_mr;
    double natural = g.of(Method::kNatural).group_mr;
    double gap = opt > 0 ? (sttw - opt) / opt : 0.0;
    gaps.push_back(gap);
    if (gap >= 0.10) ++worse10;
    if (gap >= 0.20) ++worse20;
    if (sttw > natural + 1e-12) ++worse_than_natural;
  }
  Summary s = summarize(gaps);
  double n = static_cast<double>(eval.sweep.size());

  std::cout << "\nSTTW vs Optimal gap: mean " << TextTable::pct(s.mean, 2)
            << ", median " << TextTable::pct(s.median, 2) << ", max "
            << TextTable::pct(s.max, 2) << "\n";
  std::cout << "groups where STTW >= 10% worse than Optimal: "
            << TextTable::pct(static_cast<double>(worse10) / n, 2) << "\n";
  std::cout << "groups where STTW >= 20% worse than Optimal: "
            << TextTable::pct(static_cast<double>(worse20) / n, 2) << "\n";
  std::cout << "groups where STTW is worse than free-for-all sharing "
               "(Natural): "
            << TextTable::pct(static_cast<double>(worse_than_natural) / n, 2)
            << "\n";

  // Ablation: the faithful local-derivative STTW (used above) vs the
  // charitable convex-hull strengthening.
  {
    CostMatrix unit_costs =
        precompute_unit_cost_matrix(eval.suite.models, eval.capacity);
    double classic_gap = 0.0, hull_gap = 0.0, suh_gap = 0.0;
    for (const auto& g : eval.sweep) {
      std::vector<const double*> rows;
      CostMatrixView cost =
          unit_costs.gather(g.members.data(), g.members.size(), rows);
      // Suh's comparator still takes nested rows; copy once per group.
      std::vector<std::vector<double>> nested;
      double rate_sum = 0.0;
      for (auto m : g.members) {
        const double* row = unit_costs.row(m);
        nested.emplace_back(row, row + eval.capacity + 1);
        rate_sum += eval.suite.models[m].access_rate;
      }
      double opt = g.of(Method::kOptimal).group_mr;
      if (opt <= 0.0) continue;
      SttwResult hull =
          sttw_partition(cost, eval.capacity, SttwVariant::kConvexHull);
      SttwResult classic = sttw_partition(cost, eval.capacity,
                                          SttwVariant::kLocalDerivative);
      SttwResult suh = suh_partition(nested, eval.capacity);
      classic_gap += (classic.objective_value / rate_sum - opt) / opt;
      hull_gap += (hull.objective_value / rate_sum - opt) / opt;
      suh_gap += (suh.objective_value / rate_sum - opt) / opt;
    }
    double n_groups = static_cast<double>(eval.sweep.size());
    std::cout << "\nGreedy-variant ablation (mean gap to Optimal): classic "
                 "STTW local-derivative "
              << TextTable::pct(classic_gap / n_groups, 2)
              << ", convex-hull strengthening "
              << TextTable::pct(hull_gap / n_groups, 2)
              << ", Suh segmented greedy "
              << TextTable::pct(suh_gap / n_groups, 2)
              << " — the convexity assumption, not greediness itself, is "
                 "what breaks. Both repairs (hull chords, Suh's atomic "
                 "segments, §IX) close most of classic STTW's gap without "
                 "the DP; only the DP is exact.\n";
  }

  std::cout << "\nPaper (§VII-B): STTW at least 10% worse in 34% of "
               "groups, mostly at least 20% worse there; on average the "
               "Optimal improvement over STTW (33.68%) exceeds the one "
               "over Natural (26.35%) because non-convex MRCs break the "
               "convexity assumption.\n";
  return 0;
}
