
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/combinatorics/counting.cpp" "src/combinatorics/CMakeFiles/ocps_comb.dir/counting.cpp.o" "gcc" "src/combinatorics/CMakeFiles/ocps_comb.dir/counting.cpp.o.d"
  "/root/repo/src/combinatorics/enumerate.cpp" "src/combinatorics/CMakeFiles/ocps_comb.dir/enumerate.cpp.o" "gcc" "src/combinatorics/CMakeFiles/ocps_comb.dir/enumerate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ocps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
