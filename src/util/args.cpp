#include "util/args.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace ocps {

ArgParser::ArgParser(int argc, const char* const* argv,
                     const std::vector<std::string>& flags) {
  bool options_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (options_done || token.empty() || token[0] != '-' || token == "-") {
      positional_.push_back(token);
      continue;
    }
    if (token == "--") {
      options_done = true;
      continue;
    }
    std::string name = token;
    while (!name.empty() && name[0] == '-') name.erase(name.begin());
    // --key=value form.
    auto eq = name.find('=');
    if (eq != std::string::npos) {
      options_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    bool is_flag =
        std::find(flags.begin(), flags.end(), name) != flags.end();
    if (is_flag || i + 1 >= argc) {
      options_[name] = "";
    } else {
      options_[name] = argv[++i];
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  OCPS_CHECK(end && *end == '\0' && end != it->second.c_str(),
             "option --" << name << " expects an integer, got '"
                         << it->second << "'");
  return static_cast<std::int64_t>(v);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  OCPS_CHECK(end && *end == '\0' && end != it->second.c_str(),
             "option --" << name << " expects a number, got '" << it->second
                         << "'");
  return v;
}

std::vector<std::string> ArgParser::unknown_options(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_) {
    (void)value;
    if (std::find(known.begin(), known.end(), name) == known.end())
      out.push_back(name);
  }
  return out;
}

namespace {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      std::size_t next = std::min({row[j] + 1, row[j - 1] + 1,
                                   diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

}  // namespace

void ArgParser::reject_unknown(const std::vector<std::string>& known) const {
  reject_unknown(known, {});
}

void ArgParser::reject_unknown(
    const std::vector<std::string>& known,
    const std::map<std::string, std::string>& known_elsewhere) const {
  for (const std::string& bad : unknown_options(known)) {
    // A flag that belongs to a different subcommand is not a typo; say
    // where it applies instead of guessing at the nearest name.
    auto elsewhere = known_elsewhere.find(bad);
    if (elsewhere != known_elsewhere.end())
      throw CheckError("option --" + bad +
                       " is not accepted by this subcommand (valid for: " +
                       elsewhere->second + ")");
    // Suggest the closest known flag, but only when it is plausibly a
    // typo: within 3 edits or sharing a 3+ character prefix.
    std::string best;
    std::size_t best_dist = static_cast<std::size_t>(-1);
    for (const std::string& candidate : known) {
      std::size_t d = edit_distance(bad, candidate);
      if (d < best_dist) {
        best_dist = d;
        best = candidate;
      }
    }
    bool shares_prefix =
        !best.empty() && bad.size() >= 3 && best.compare(0, 3, bad, 0, 3) == 0;
    if (!best.empty() && (best_dist <= 3 || shares_prefix))
      throw CheckError("unknown option --" + bad + " (did you mean --" +
                       best + "?)");
    throw CheckError("unknown option --" + bad);
  }
}

}  // namespace ocps
