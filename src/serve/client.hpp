// Blocking client for the partition-service daemon.
//
// One connection, synchronous request/response: call() writes a single
// request line and blocks until the matching response line arrives (the
// daemon may answer a batch out of order across *connections*, but each
// call here waits for exactly one line, and the Request helpers stamp an
// id so callers can still sanity-check the echo). This is deliberately
// the simplest correct client — it backs the `ocps query` subcommand,
// the integration tests, and bench_serve's closed-loop workers; anything
// fancier (pipelining, multiplexing) belongs to callers speaking the
// protocol directly.
//
// Resilience layer (call_with_retry): bounded retries with exponential
// backoff + full jitter, applied only to idempotent ops and only to
// failures that plausibly clear on a second try (transport errors, 429
// shed, 503 unavailable, 504 timeout). The request deadline is the
// retry budget — when it runs out the caller gets an explicit 504, never
// a silent extra attempt past its own deadline. The decision loop is the
// pure function run_with_retry so tests drive it with a fake clock and
// scripted failures; the Client method plugs in the real socket, real
// sleep, and reconnect-on-transport-error.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "serve/protocol.hpp"
#include "util/result.hpp"

namespace ocps::serve {

/// Retry knobs for call_with_retry (CLI flags of `ocps query` map onto
/// these). Defaults suit a local fleet: 3 tries, 10ms..500ms backoff.
struct RetryPolicy {
  int max_attempts = 3;  ///< total tries including the first (>= 1)
  std::chrono::milliseconds base_delay{10};  ///< backoff before attempt 2
  std::chrono::milliseconds max_delay{500};  ///< backoff growth cap
  std::uint64_t seed = 0xB0FF;  ///< jitter schedule seed (deterministic)
};

/// Full-jitter backoff before attempt `attempt + 1` (attempt counts the
/// tries already made, so the first retry passes 1): uniform in
/// [0, min(max_delay, base_delay * 2^(attempt-1))], a pure function of
/// (seed, attempt, salt). `salt` decorrelates concurrent retriers (the
/// router salts with the request id) so a shed burst does not come back
/// as a synchronized thundering herd.
std::chrono::milliseconds backoff_delay(const RetryPolicy& policy,
                                        int attempt, std::uint64_t salt = 0);

/// Whether an op may be retried at all. Everything the daemon serves is
/// a pure read except `reload`, which swaps state — a reload whose
/// response was lost may have been applied, so it is never retried.
bool retryable_op(Op op);

/// Whether a response code is worth a second try: 429 (shed), 503
/// (unavailable/draining), 504 (deadline) clear when load drops or a
/// replica recovers; 400/404/422/500 are definitive and relayed as-is.
bool retryable_code(int code);

/// What the retry loop actually did, for telemetry and tests.
struct RetryStats {
  int attempts = 0;  ///< attempt_fn invocations
  std::chrono::milliseconds backoff_total{0};
};

/// The retry decision loop, time- and transport-free. Calls
/// `attempt_fn(attempt)` up to policy.max_attempts times, sleeping
/// `backoff_delay` between tries via `sleep_fn`, reading time from
/// `now_fn`. `budget` of zero means no deadline; otherwise the budget
/// starts at the first now_fn() call and its exhaustion yields an
/// explicit 504 response (ok() Result, Response.ok == false). A
/// non-retryable op or code returns the failure unchanged; exhausted
/// attempts return the last failure unchanged (a transport Err stays an
/// Err so callers can distinguish "daemon said no" from "no daemon").
Result<Response> run_with_retry(
    Op op, std::int64_t id, const RetryPolicy& policy,
    std::chrono::milliseconds budget,
    const std::function<Result<Response>(int attempt)>& attempt_fn,
    const std::function<void(std::chrono::milliseconds)>& sleep_fn,
    const std::function<std::chrono::steady_clock::time_point()>& now_fn,
    RetryStats* stats = nullptr);

class Client {
 public:
  /// Connects to a daemon endpoint — a Unix socket path or "host:port"
  /// (socket_util.hpp grammar) — within `connect_timeout`. kIoError when
  /// nothing is listening or the connect times out.
  static Result<Client> connect(const std::string& endpoint,
                                std::chrono::milliseconds connect_timeout =
                                    std::chrono::milliseconds(5000));

  Client() = default;  ///< disconnected; call() fails with kIoError
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }
  const std::string& endpoint() const { return endpoint_; }

  /// Sends one raw request line (no trailing newline) and blocks until
  /// one response line arrives or `timeout` passes (kIoError). The
  /// response is decoded but NOT interpreted: a shed/deadline/error
  /// reply is an ok() Result whose Response has ok == false.
  Result<Response> call(const std::string& request_line,
                        std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(30000));

  /// Serializes and sends a request object.
  Result<Response> call(const json::Value& request,
                        std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(30000));

  /// Literal overload: without it a `call("{...}")` would be ambiguous
  /// between the string and json::Value overloads (Value converts from
  /// const char*).
  Result<Response> call(const char* request_line,
                        std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(30000)) {
    return call(std::string(request_line), timeout);
  }

  /// call() wrapped in run_with_retry: req.deadline_ms is the retry
  /// budget (0 = none), a transport failure drops the connection and the
  /// next attempt reconnects to the same endpoint, and the jitter salt
  /// is req.id. Non-idempotent ops (`reload`) get exactly one attempt.
  Result<Response> call_with_retry(const Request& req,
                                   const RetryPolicy& policy = {},
                                   RetryStats* stats = nullptr);

 private:
  Client(int fd, std::string endpoint)
      : fd_(fd), endpoint_(std::move(endpoint)) {}

  void disconnect();

  int fd_ = -1;
  std::string endpoint_;  ///< for reconnect-on-retry; empty when default
  std::string buffer_;    ///< bytes read past the last returned line
};

}  // namespace ocps::serve
