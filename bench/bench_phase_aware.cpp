// Extension bench: phase-aware dynamic repartitioning recovers the Fig. 1
// partition-sharing advantage within a partitioning framework. We sweep
// phase alignments and epoch granularities and compare: free-for-all
// sharing, the best static partition (per-run DP on whole-trace models),
// and the per-epoch DP plan executed with resizable partitions.
#include <iostream>

#include "cachesim/corun.hpp"
#include "common.hpp"
#include "core/dp_partition.hpp"
#include "core/phase_aware.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "util/table.hpp"

using namespace ocps;
using namespace ocps::bench;

namespace {

Trace antiphase(std::size_t phase, std::size_t reps, std::size_t big,
                std::size_t small, bool flipped) {
  std::vector<Phase> phases;
  if (!flipped) {
    phases = {{phase, big, 0, false}, {phase, small, 0, false}};
  } else {
    phases = {{phase, small, 0, false}, {phase, big, 0, false}};
  }
  return make_phased(phases, reps);
}

}  // namespace

int main() {
  const std::size_t phase = 5000, reps = 12;
  const std::size_t C = 96;
  const std::size_t n_each = phase * 2 * reps;

  std::cout << "=== Extension: phase-aware repartitioning vs sharing vs "
               "static partitioning (C=" << C << ") ===\n\n";

  TextTable t({"scenario", "epochs", "free-for-all", "best static",
               "dynamic DP", "dynamic vs static"});

  for (bool aligned : {true, false}) {
    std::vector<Trace> traces = {
        antiphase(phase, reps, 80, 8, false),
        antiphase(phase, reps, 80, 8, aligned ? true : false)};
    InterleavedTrace mix =
        interleave_proportional(traces, {1.0, 1.0}, n_each * 2);

    CoRunResult shared = simulate_shared(mix, C);

    // Static optimum from whole-trace models via the DP.
    std::vector<ProgramModel> models;
    for (std::size_t p = 0; p < traces.size(); ++p)
      models.push_back(make_program_model("p" + std::to_string(p), 1.0,
                                          compute_footprint(traces[p]), C));
    CostMatrix cost(models.size(), C);
    for (std::size_t p = 0; p < models.size(); ++p) {
      double* row = cost.row(p);
      for (std::size_t c = 0; c <= C; ++c) row[c] = models[p].mrc.ratio(c);
    }
    DpResult statics = optimize_partition(cost.view(), C);
    CoRunResult static_sim = simulate_partitioned(mix, statics.alloc);

    for (std::size_t epochs : {2 * reps, std::size_t{4}}) {
      EpochProfile prof = profile_epochs(traces, {1.0, 1.0}, epochs, C);
      PhaseAwarePlan plan = phase_aware_optimize(prof, C);
      CoRunResult dynamic = simulate_dynamic_partitioned(mix, plan);
      double improvement =
          (static_sim.group_miss_ratio() - dynamic.group_miss_ratio()) /
          std::max(static_sim.group_miss_ratio(), 1e-9);
      t.add_row({aligned ? "antiphase" : "in-phase",
                 std::to_string(epochs),
                 TextTable::num(shared.group_miss_ratio(), 4),
                 TextTable::num(static_sim.group_miss_ratio(), 4),
                 TextTable::num(dynamic.group_miss_ratio(), 4),
                 TextTable::pct(improvement, 1)});
    }
  }
  emit_table(t, "phase_aware");

  std::cout << "\nExpected: on antiphase programs, per-phase epochs let "
               "the dynamic plan flip the split each phase and beat every "
               "static partition (recovering what Fig. 1 credits to "
               "partition-sharing, and matching free-for-all). In-phase, "
               "repartitioning still helps by serializing the peaks — the "
               "DP gives the whole cache to one contender per epoch "
               "instead of letting both thrash. With epochs coarser than "
               "the phases the advantage disappears: repartitioning only "
               "pays where the natural-partition assumption fails.\n";
  return 0;
}
