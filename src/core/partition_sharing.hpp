// Partition-sharing schemes (§II) and the reduction to partitioning (§V).
//
// A scheme groups programs and gives each group a private partition that
// its members share free-for-all. Under the Natural Partition Assumption a
// group sharing S units performs exactly like its natural partition of S
// units, so every scheme maps to a plain partitioning — which is why the
// optimal partitioning upper-bounds all of partition-sharing. The
// exhaustive search here walks the full scheme space (set partitions ×
// wall placements) on small instances to check that reduction and to size
// the search space against §II's S2/S3 numbers.
#pragma once

#include <vector>

#include "combinatorics/enumerate.hpp"
#include "core/composition.hpp"

namespace ocps {

/// One partition-sharing configuration.
struct SharingScheme {
  SetPartition groups;                  ///< program indices per group
  std::vector<std::size_t> group_sizes; ///< cache units per group

  std::size_t num_groups() const { return groups.size(); }
};

/// Model-predicted outcome of running a scheme.
struct SchemeOutcome {
  std::vector<double> per_program_mr;  ///< indexed like the co-run group
  double group_mr = 0.0;               ///< access-weighted
};

/// Evaluates a scheme under the composition model: each group's members
/// receive their natural occupancies within the group's partition.
SchemeOutcome evaluate_scheme(const CoRunGroup& corun,
                              const SharingScheme& scheme);

/// Exhaustively searches every scheme (every set partition of the programs
/// × every weak composition of `capacity` over the groups) and returns the
/// scheme minimizing the group miss ratio. Exponential: intended for
/// small capacities (the reduction-theorem bench and tests).
struct BestSchemeResult {
  SharingScheme scheme;
  SchemeOutcome outcome;
  std::uint64_t schemes_examined = 0;
};
BestSchemeResult best_partition_sharing(const CoRunGroup& corun,
                                        std::size_t capacity);

/// The partitioning-only restriction of the same search (singleton groups
/// only); equivalent to the DP's optimum and used to cross-check it.
BestSchemeResult best_partitioning_only(const CoRunGroup& corun,
                                        std::size_t capacity);

}  // namespace ocps
