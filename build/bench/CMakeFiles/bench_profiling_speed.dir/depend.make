# Empty dependencies file for bench_profiling_speed.
# This may be replaced when dependencies are built.
