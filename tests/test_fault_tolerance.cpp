// Tests for the fault-tolerance layer: Result<T>, the profile sanitizer,
// the guarded DP entry point, hardened loaders, the fault injector, and
// the controller's graceful degradation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/dp_partition.hpp"
#include "locality/footprint.hpp"
#include "locality/footprint_io.hpp"
#include "locality/sanitize.hpp"
#include "runtime/controller.hpp"
#include "runtime/fault_injection.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "trace/trace_io.hpp"
#include "util/check.hpp"
#include "util/result.hpp"

namespace ocps {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------- Result

TEST(Result, HoldsValueOrError) {
  Result<int> ok = Ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(7), 42);

  Result<int> err(ErrorCode::kInfeasible, "no partition");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, ErrorCode::kInfeasible);
  EXPECT_EQ(err.value_or(7), 7);
  EXPECT_EQ(err.error().to_string(), "infeasible: no partition");
}

TEST(Result, WrongSideAccessIsACheckFailure) {
  Result<int> ok = Ok(1);
  EXPECT_THROW(ok.error(), CheckError);
  Result<int> err(ErrorCode::kInternal, "boom");
  EXPECT_THROW(err.value(), CheckError);
}

// ------------------------------------------------------------- sanitizer

TEST(SanitizeMrc, CleanCurvePassesThroughBitIdentical) {
  std::vector<double> ratios = {1.0, 0.8, 0.5, 0.5, 0.25, 0.0};
  RepairReport report;
  Result<MissRatioCurve> r = sanitize_mrc(ratios, 100, 5, &report);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ratios(), ratios);
  EXPECT_EQ(report.total(), 0u);
}

TEST(SanitizeMrc, RepairsNaNByCarryingNeighbours) {
  RepairReport report;
  Result<MissRatioCurve> r =
      sanitize_mrc({kNaN, 0.9, kNaN, kNaN, 0.4}, 100, 4, &report);
  ASSERT_TRUE(r.ok());
  // Leading NaN takes the first finite value; interior NaNs carry left.
  std::vector<double> want = {0.9, 0.9, 0.9, 0.9, 0.4};
  EXPECT_EQ(r.value().ratios(), want);
  EXPECT_EQ(report.nonfinite, 3u);
}

TEST(SanitizeMrc, ClampsAndRestoresMonotonicity) {
  RepairReport report;
  Result<MissRatioCurve> r =
      sanitize_mrc({1.0, 0.6, 2.5, 0.3, -0.2}, 100, 4, &report);
  ASSERT_TRUE(r.ok());
  // 2.5 clamps to 1.0, then flattens to 0.6; -0.2 clamps to 0.0.
  std::vector<double> want = {1.0, 0.6, 0.6, 0.3, 0.0};
  EXPECT_EQ(r.value().ratios(), want);
  EXPECT_EQ(report.clamped, 2u);
  EXPECT_EQ(report.monotone, 1u);
}

TEST(SanitizeMrc, ExtendsTruncatedEstimates) {
  RepairReport report;
  Result<MissRatioCurve> r = sanitize_mrc({1.0, 0.5}, 100, 5, &report);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ratios().size(), 6u);
  EXPECT_DOUBLE_EQ(r.value().ratio(5), 0.5);
  EXPECT_EQ(report.extended, 4u);
}

TEST(SanitizeMrc, RejectsDegenerateProfiles) {
  EXPECT_FALSE(sanitize_mrc({}, 0, 4).ok());
  Result<MissRatioCurve> all_nan = sanitize_mrc({kNaN, kNaN}, 10, 4);
  ASSERT_FALSE(all_nan.ok());
  EXPECT_EQ(all_nan.error().code, ErrorCode::kDegenerateProfile);
}

TEST(SanitizeFootprint, DropsBadKnotsAndRepairsShape) {
  RepairReport report;
  Result<PiecewiseLinear> r = sanitize_footprint_knots(
      {0.0, 1.0, kNaN, 0.5, 2.0, 3.0}, {0.0, 2.0, 1.0, 9.0, -1.0, 1.5},
      &report);
  ASSERT_TRUE(r.ok());
  // Knot 2 (NaN x) and knot 3 (x not increasing) drop; knot 4's negative
  // y clamps to 0 then flattens up to 2.0; knot 5 flattens to 2.0.
  std::vector<double> want_x = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> want_y = {0.0, 2.0, 2.0, 2.0};
  EXPECT_EQ(r.value().xs(), want_x);
  EXPECT_EQ(r.value().ys(), want_y);
  EXPECT_EQ(report.dropped, 2u);
  EXPECT_GE(report.monotone, 1u);
}

TEST(SanitizeFootprint, RejectsWhenNothingSurvives) {
  Result<PiecewiseLinear> r =
      sanitize_footprint_knots({kNaN}, {1.0}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kDegenerateProfile);
  EXPECT_FALSE(sanitize_footprint_knots({1.0, 2.0}, {1.0}).ok());
}

// ------------------------------------------------------------- DP guard

TEST(TryOptimize, MatchesThrowingEntryPointOnCleanInput) {
  CostMatrix cost = CostMatrix::from_rows(
      {
          {1.0, 0.5, 0.2, 0.1, 0.05},
          {1.0, 0.9, 0.3, 0.2, 0.15},
      },
      4);
  Result<DpResult> guarded = try_optimize_partition(cost.view(), 4);
  DpResult plain = optimize_partition(cost.view(), 4);
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(guarded.value().alloc, plain.alloc);
  EXPECT_DOUBLE_EQ(guarded.value().objective_value, plain.objective_value);
}

TEST(TryOptimize, ErrorsInsteadOfThrowing) {
  std::vector<std::vector<double>> nan_cost = {{1.0, kNaN, 0.2}};
  Result<DpResult> corrupt =
      try_optimize_partition(CostMatrix::from_rows(nan_cost, 2).view(), 2);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.error().code, ErrorCode::kCorruptData);

  // A view narrower than capacity+1 must come back as an error value, not
  // unwind through the DP.
  std::vector<double> short_row = {1.0, 0.5};
  const double* short_rows[] = {short_row.data()};
  Result<DpResult> truncated = try_optimize_partition(
      CostMatrixView(short_rows, 1, short_row.size()), 5);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().code, ErrorCode::kInvalidArgument);

  CostMatrix cost = CostMatrix::from_rows(
      {{1.0, 0.5, 0.2}, {1.0, 0.5, 0.2}}, 2);
  DpOptions options;
  options.min_alloc = {2, 2};  // 4 > capacity 2
  Result<DpResult> infeasible =
      try_optimize_partition(cost.view(), 2, options);
  ASSERT_FALSE(infeasible.ok());
  EXPECT_EQ(infeasible.error().code, ErrorCode::kInfeasible);

  EXPECT_FALSE(try_optimize_partition(CostMatrixView(), 4).ok());
}

// ------------------------------------------------------ hardened loaders

TEST(CorruptFiles, TraceHeaderCountValidatedAgainstFileSize) {
  Trace t;
  for (Block b = 0; b < 100; ++b) t.accesses.push_back(b);
  std::string path = temp_path("ocps_ft_trace.bin");
  save_trace_binary(t, path);

  // Bit-flip the high byte of the count: claims ~2^59 accesses.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(15);  // last byte of the little-endian u64 count
    char high = 0x08;
    f.write(&high, 1);
  }
  try {
    load_trace_binary(path);
    FAIL() << "corrupt header count accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("claims"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(CorruptFiles, TruncatedTracePayloadRejected) {
  Trace t;
  for (Block b = 0; b < 100; ++b) t.accesses.push_back(b);
  std::string path = temp_path("ocps_ft_trace_trunc.bin");
  save_trace_binary(t, path);
  std::filesystem::resize_file(path, 16 + 50 * sizeof(Block));
  EXPECT_THROW(load_trace_binary(path), CheckError);
  std::remove(path.c_str());
}

FootprintFile sample_footprint() {
  Trace t = make_sawtooth(5000, 40);
  return make_footprint_file("ft", 1.0, compute_footprint(t));
}

TEST(CorruptFiles, FootprintRoundTripStillWorks) {
  std::string path = temp_path("ocps_ft_ok.fp");
  save_footprint_file(sample_footprint(), path);
  FootprintFile back = load_footprint_file(path);
  EXPECT_EQ(back.name, "ft");
  EXPECT_GE(back.footprint.size(), 2u);
  std::remove(path.c_str());
}

// Writes a footprint file with the knot block replaced by `knot_lines`.
std::string write_footprint_with_knots(const std::string& name,
                                       const std::string& knot_lines,
                                       std::size_t knots) {
  std::string path = temp_path(name);
  std::ofstream os(path);
  os << "ocps-footprint 1\nname bad\naccess_rate 1\ntrace_length 100\n"
     << "distinct 10\nknots " << knots << '\n'
     << knot_lines;
  return path;
}

TEST(CorruptFiles, FootprintRejectsNaNKnotNamingIndex) {
  std::string path = write_footprint_with_knots(
      "ocps_ft_nan.fp", "0 0\n1 nan\n2 8\n", 3);
  try {
    load_footprint_file(path);
    FAIL() << "NaN knot accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("knot 1"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(CorruptFiles, FootprintRejectsNegativeAndNonMonotoneKnots) {
  std::string neg = write_footprint_with_knots(
      "ocps_ft_neg.fp", "0 0\n1 -5\n2 8\n", 3);
  EXPECT_THROW(load_footprint_file(neg), CheckError);
  std::remove(neg.c_str());

  std::string nonmono_x = write_footprint_with_knots(
      "ocps_ft_nmx.fp", "0 0\n2 4\n1 8\n", 3);
  EXPECT_THROW(load_footprint_file(nonmono_x), CheckError);
  std::remove(nonmono_x.c_str());

  std::string nonmono_y = write_footprint_with_knots(
      "ocps_ft_nmy.fp", "0 0\n1 6\n2 4\n", 3);
  try {
    load_footprint_file(nonmono_y);
    FAIL() << "decreasing footprint accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("knot 2"), std::string::npos);
  }
  std::remove(nonmono_y.c_str());
}

TEST(CorruptFiles, FootprintKnotCountValidatedAgainstFileSize) {
  std::string path = write_footprint_with_knots(
      "ocps_ft_huge.fp", "0 0\n1 4\n", 4000000000ULL);
  try {
    load_footprint_file(path);
    FAIL() << "absurd knot count accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("claims"), std::string::npos);
  }
  std::remove(path.c_str());
}

// -------------------------------------------------------- fault injector

TEST(FaultInjector, ScheduleIsDeterministic) {
  FaultInjectionConfig config = FaultInjectionConfig::uniform(0.3, 99);
  FaultInjector a(config), b(config);
  for (std::size_t epoch = 0; epoch < 40; ++epoch) {
    EXPECT_EQ(a.fail_dp(epoch), b.fail_dp(epoch));
    for (std::size_t prog = 0; prog < 4; ++prog) {
      EXPECT_EQ(a.drop_estimate(epoch, prog), b.drop_estimate(epoch, prog));
      std::vector<double> ra(64, 0.5), rb(64, 0.5);
      a.corrupt_mrc(epoch, prog, ra);
      b.corrupt_mrc(epoch, prog, rb);
      bool equal = ra.size() == rb.size();
      for (std::size_t i = 0; equal && i < ra.size(); ++i)
        equal = (ra[i] == rb[i]) ||
                (std::isnan(ra[i]) && std::isnan(rb[i]));
      EXPECT_TRUE(equal);
    }
  }
  EXPECT_EQ(a.injected_total(), b.injected_total());
  EXPECT_GT(a.injected_total(), 0u);
}

TEST(FaultInjector, ZeroRatesAreInert) {
  FaultInjector injector{FaultInjectionConfig{}};
  std::vector<double> ratios = {1.0, 0.5, 0.2};
  std::vector<double> before = ratios;
  for (std::size_t epoch = 0; epoch < 20; ++epoch) {
    EXPECT_FALSE(injector.drop_estimate(epoch, 0));
    EXPECT_FALSE(injector.fail_dp(epoch));
    injector.corrupt_mrc(epoch, 0, ratios);
  }
  EXPECT_EQ(ratios, before);
  EXPECT_EQ(injector.injected_total(), 0u);
}

TEST(FaultInjector, RejectsBadRates) {
  FaultInjectionConfig config;
  config.nan_rate = 1.5;
  EXPECT_THROW(FaultInjector{config}, CheckError);
}

// ----------------------------------------------- controller degradation

InterleavedTrace controller_mix() {
  Trace hungry = make_cyclic(40000, 150);
  Trace small = make_sawtooth(40000, 20);
  return interleave_proportional({hungry, small}, {1.0, 1.0}, 80000);
}

ControllerConfig controller_config() {
  ControllerConfig config;
  config.capacity = 200;
  config.epoch_length = 10000;
  config.sampling_rate = 0.5;
  return config;
}

TEST(ControllerFaults, InertHooksMatchNoHooksBitForBit) {
  InterleavedTrace mix = controller_mix();
  ControllerConfig config = controller_config();
  ControllerResult plain = run_online_controller(mix, 2, config);
  FaultInjector injector(FaultInjectionConfig::uniform(0.0, 1));
  ControllerHooks hooks = injector.hooks();
  ControllerResult hooked = run_online_controller(mix, 2, config, hooks);
  EXPECT_EQ(plain.alloc_history, hooked.alloc_history);
  EXPECT_EQ(plain.sim.misses, hooked.sim.misses);
  EXPECT_EQ(plain.epochs_degraded, 0u);
  EXPECT_EQ(plain.repairs, 0u);
  EXPECT_EQ(plain.fallbacks, 0u);
}

TEST(ControllerFaults, AllEstimatesDroppedFallsBackToEqualPartition) {
  InterleavedTrace mix = controller_mix();
  ControllerHooks hooks;
  hooks.drop_estimate = [](std::size_t, std::size_t) { return true; };
  ControllerResult r =
      run_online_controller(mix, 2, controller_config(), hooks);
  ASSERT_GE(r.epochs, 2u);
  for (const auto& alloc : r.alloc_history) {
    EXPECT_EQ(alloc[0], 100u);
    EXPECT_EQ(alloc[1], 100u);
  }
  EXPECT_EQ(r.epochs_degraded, r.epochs);
  EXPECT_EQ(r.fallbacks, r.epochs);
  for (const auto& h : r.health) {
    EXPECT_EQ(h.degraded_programs, 2u);
    EXPECT_TRUE(h.held_allocation);
  }
}

TEST(ControllerFaults, DpFailureHoldsLastGoodAllocation) {
  InterleavedTrace mix = controller_mix();
  const std::size_t bad_epoch = 3;
  ControllerHooks hooks;
  hooks.fail_dp = [=](std::size_t epoch) { return epoch == bad_epoch; };
  ControllerResult r =
      run_online_controller(mix, 2, controller_config(), hooks);
  ASSERT_GT(r.epochs, bad_epoch + 1);
  // alloc_history[e+1] is the allocation decided at epoch e.
  EXPECT_EQ(r.alloc_history[bad_epoch + 1], r.alloc_history[bad_epoch]);
  EXPECT_EQ(r.epochs_degraded, 1u);
  EXPECT_EQ(r.fallbacks, 1u);
  EXPECT_TRUE(r.health[bad_epoch].dp_failed);
  EXPECT_TRUE(r.health[bad_epoch].held_allocation);
  // The learned skew survives the bad epoch (not reset to equal).
  EXPECT_GT(r.alloc_history.back()[0], 150u);
}

TEST(ControllerFaults, DroppedEpochHoldsLastGoodAndRecovers) {
  InterleavedTrace mix = controller_mix();
  const std::size_t bad_epoch = 2;
  ControllerHooks hooks;
  hooks.drop_estimate = [=](std::size_t epoch, std::size_t) {
    return epoch == bad_epoch;
  };
  ControllerResult r =
      run_online_controller(mix, 2, controller_config(), hooks);
  ASSERT_GT(r.epochs, bad_epoch + 1);
  EXPECT_EQ(r.health[bad_epoch].degraded_programs, 2u);
  EXPECT_EQ(r.epochs_degraded, 1u);
  // Later epochs re-optimize: the run still ends strongly skewed.
  EXPECT_GT(r.alloc_history.back()[0], 150u);
}

TEST(ControllerFaults, CorruptedEstimatesAreRepairedInFlight) {
  InterleavedTrace mix = controller_mix();
  ControllerHooks hooks;
  hooks.corrupt_mrc = [](std::size_t, std::size_t,
                         std::vector<double>& ratios) {
    ratios[ratios.size() / 2] = kNaN;  // one NaN every estimate
    ratios[ratios.size() / 3] = 7.5;   // and one spike
  };
  ControllerResult r =
      run_online_controller(mix, 2, controller_config(), hooks);
  EXPECT_GT(r.repairs, 0u);
  // Repairs are not degradation: every epoch still ran the DP.
  EXPECT_EQ(r.epochs_degraded, 0u);
  EXPECT_EQ(r.fallbacks, 0u);
  EXPECT_GT(r.alloc_history.back()[0], 150u);
}

TEST(ControllerFaults, HysteresisCapBoundsPerEpochChange) {
  InterleavedTrace mix = controller_mix();
  ControllerConfig config = controller_config();
  config.max_delta_units = 8;
  ControllerResult r = run_online_controller(mix, 2, config);
  for (std::size_t e = 1; e < r.alloc_history.size(); ++e) {
    std::size_t moved = 0, total = 0;
    for (std::size_t i = 0; i < 2; ++i) {
      const auto& prev = r.alloc_history[e - 1];
      const auto& cur = r.alloc_history[e];
      moved += cur[i] > prev[i] ? cur[i] - prev[i] : 0;
      total += cur[i];
    }
    EXPECT_LE(moved, 8u);
    EXPECT_EQ(total, config.capacity);
  }
}

TEST(ControllerFaults, RestartPolicyResetsToEqualAndCompletes) {
  InterleavedTrace mix = controller_mix();
  const std::size_t bad_epoch = 3;
  ControllerConfig config = controller_config();
  config.fault_policy = FaultPolicy::kRestartOnError;
  ControllerHooks hooks;
  hooks.drop_estimate = [=](std::size_t epoch, std::size_t) {
    return epoch == bad_epoch;
  };
  ControllerResult r = run_online_controller(mix, 2, config, hooks);
  ASSERT_GT(r.epochs, bad_epoch + 1);
  EXPECT_TRUE(r.health[bad_epoch].restarted);
  EXPECT_EQ(r.alloc_history[bad_epoch + 1],
            std::vector<std::size_t>({100, 100}));
  // It still finishes the run and re-learns afterwards.
  EXPECT_GT(r.alloc_history.back()[0], 150u);
}

TEST(ControllerFaults, GracefulBeatsRestartUnderSustainedFaults) {
  InterleavedTrace mix = controller_mix();
  ControllerConfig graceful = controller_config();
  ControllerConfig restart = controller_config();
  restart.fault_policy = FaultPolicy::kRestartOnError;

  FaultInjector a(FaultInjectionConfig::uniform(0.15, 7));
  ControllerHooks ha = a.hooks();
  ControllerResult rg = run_online_controller(mix, 2, graceful, ha);
  FaultInjector b(FaultInjectionConfig::uniform(0.15, 7));
  ControllerHooks hb = b.hooks();
  ControllerResult rr = run_online_controller(mix, 2, restart, hb);

  // The estimate-side fault exposure is identical across policies (the
  // schedule is a pure function of seed/epoch/program); only the DP hook
  // may be consulted a different number of times.
  EXPECT_EQ(a.injected_nan(), b.injected_nan());
  EXPECT_EQ(a.injected_spikes(), b.injected_spikes());
  EXPECT_EQ(a.injected_truncations(), b.injected_truncations());
  EXPECT_EQ(a.injected_drops(), b.injected_drops());
  EXPECT_LE(rg.sim.group_miss_ratio(), rr.sim.group_miss_ratio());
}

}  // namespace
}  // namespace ocps
