// Shared socket plumbing for the serving plane.
//
// The daemon (server.cpp), the blocking client (client.cpp), and the
// router front tier (router.cpp) all speak the same two transports — a
// Unix domain stream socket or a TCP stream — so the address grammar,
// the bind/connect rituals, and the tiny HTTP responder for Prometheus
// scrapes live here once.
//
// Endpoint grammar (one string, used by every CLI flag and config field):
//   "/run/ocps.sock"        a Unix domain socket path
//   "127.0.0.1:7070"        a TCP host:port (numeric IPv4 or "localhost")
//   "localhost:0"           TCP with an ephemeral port (read the bound
//                           port back after listen)
// A spec is TCP iff it contains a ':' whose suffix is all digits; Unix
// socket paths with colons are not supported (they never were).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "util/result.hpp"

namespace ocps::serve {

/// A parsed transport address.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< Unix: socket file path
  std::string host;  ///< TCP: numeric IPv4 or "localhost"
  std::uint16_t port = 0;

  bool is_tcp() const { return kind == Kind::kTcp; }
  /// Human-readable form ("path" or "host:port").
  std::string display() const;
};

/// Parses the endpoint grammar above. kInvalidArgument on an empty spec,
/// an out-of-range port, or an unresolvable TCP host.
Result<Endpoint> parse_endpoint(const std::string& spec);

/// Binds + listens a TCP socket on `host:port`. Port 0 binds an
/// ephemeral port; read it back with bound_tcp_port(). SO_REUSEADDR is
/// set so a restarted daemon can reclaim a port in TIME_WAIT — the chaos
/// harness kills and restarts backends on fixed ports. Returns the fd.
Result<int> listen_tcp(const std::string& host, std::uint16_t port,
                       int backlog);

/// Port a bound TCP socket actually landed on (ephemeral-port readback).
Result<std::uint16_t> bound_tcp_port(int fd);

/// A claimed Unix listening socket plus the flock-held lock file that
/// made the claim race-safe.
struct UnixListener {
  int fd = -1;
  int lock_fd = -1;
};

/// Binds + listens on a Unix socket path with race-safe stale-socket
/// reclaim. The flock on `path + ".lock"` is the mutual-exclusion token:
/// a connect probe alone has a window where two daemons both see a stale
/// socket and both unlink-and-rebind, silently stealing each other's
/// path. Only the lock holder may reclaim; a connectable socket always
/// means a live daemon and yields a clear "address in use by live
/// daemon" kIoError. The kernel drops the flock on any death, so a
/// crashed daemon never wedges the path.
Result<UnixListener> claim_unix_socket(const std::string& path, int backlog);

/// Closes the listener, releases the flock, and removes the socket +
/// lock files. Safe on a default-constructed (or already released)
/// UnixListener.
void release_unix_socket(UnixListener& listener, const std::string& path);

/// Connects to an endpoint with a bounded wait: the socket is put in
/// nonblocking mode, connect(2) is polled until `timeout`, and the fd is
/// returned still nonblocking (callers poll before every read/write
/// anyway). kIoError on refusal, timeout, or resolution failure.
Result<int> connect_endpoint(const Endpoint& ep,
                             std::chrono::milliseconds timeout);

/// Writes all of `data` to a blocking-or-nonblocking fd, retrying EINTR
/// and polling POLLOUT on EAGAIN until `timeout` elapses. Short writes
/// are continued, never treated as errors. Returns false on peer error
/// or timeout.
bool send_all(int fd, const char* data, std::size_t len,
              std::chrono::milliseconds timeout);

/// Minimal HTTP/1.1 responder for the loopback Prometheus listener: one
/// short-lived connection per scrape. Reads the request head (bounded),
/// then answers the 405/404/501/200 ladder; `refresh` runs before a 200
/// scrape so derived gauges are current. Shared by the daemon and the
/// router so both expose the identical surface.
void handle_metrics_http_client(int fd, const std::function<bool()>& stop,
                                const std::function<void()>& refresh);

}  // namespace ocps::serve
