#include "common.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "combinatorics/enumerate.hpp"
#include "util/check.hpp"
#include "util/config.hpp"

namespace ocps::bench {

PhaseTimer::PhaseTimer(const char* name)
    : name_(name), start_(std::chrono::steady_clock::now()) {
  span_.emplace(name, "bench");
}

PhaseTimer::~PhaseTimer() { stop(); }

double PhaseTimer::seconds() const {
  if (stopped_seconds_ >= 0.0) return stopped_seconds_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double PhaseTimer::stop() {
  if (stopped_seconds_ < 0.0) {
    stopped_seconds_ = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
    if (obs::enabled())
      obs::histogram(std::string("bench.") + name_ + "_ns")
          .observe(stopped_seconds_ * 1e9);
    span_.reset();
  }
  return stopped_seconds_;
}

void emit_metrics_snapshot_if_enabled() {
  static bool emitted = false;
  if (emitted || !obs::enabled()) return;
  emitted = true;
  std::string path = env_string("OCPS_METRICS_OUT", "");
  if (path.empty()) {
    std::cout << "[ocps] metrics snapshot:\n";
    obs::write_metrics_json(std::cout);
    std::cout << std::endl;
  } else {
    std::ofstream os(path, std::ios::trunc);
    OCPS_CHECK(os.good(), "cannot write metrics snapshot " << path);
    obs::write_metrics_json(os);
    std::cerr << "[ocps] metrics snapshot written to " << path << "\n";
  }
}

namespace {

// Emits the snapshot when the bench binary exits through main's return
// path; explicit early calls take precedence via the idempotence flag.
struct SnapshotAtExit {
  ~SnapshotAtExit() { emit_metrics_snapshot_if_enabled(); }
} snapshot_at_exit;

}  // namespace

namespace {

std::string cache_dir() {
  return env_string("OCPS_SUITE_CACHE", "./ocps_cache");
}

constexpr std::uint64_t kSweepMagic = 0x4f435053'53575031ULL;  // "OCPSSWP1"

void write_u64(std::ofstream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint64_t read_u64(std::ifstream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  OCPS_CHECK(is.good(), "truncated sweep cache");
  return v;
}
void write_doubles(std::ofstream& os, const std::vector<double>& v) {
  write_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(double)));
}
std::vector<double> read_doubles(std::ifstream& is) {
  std::vector<double> v(read_u64(is));
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(double)));
  OCPS_CHECK(is.good(), "truncated sweep cache");
  return v;
}

}  // namespace

Suite load_suite() {
  SuiteOptions options = suite_options_from_env();
  if (options.cache_dir.empty()) options.cache_dir = cache_dir();
  return build_spec2006_suite(options);
}

void save_sweep(const std::vector<GroupEvaluation>& sweep,
                const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  OCPS_CHECK(os.good(), "cannot write sweep cache " << path);
  write_u64(os, kSweepMagic);
  write_u64(os, sweep.size());
  for (const auto& g : sweep) {
    write_u64(os, g.members.size());
    for (auto m : g.members) write_u64(os, m);
    for (const auto& method : g.methods) {
      write_doubles(os, method.alloc);
      write_doubles(os, method.per_program_mr);
      os.write(reinterpret_cast<const char*>(&method.group_mr),
               sizeof(double));
    }
  }
  OCPS_CHECK(os.good(), "sweep cache write failed");
}

std::vector<GroupEvaluation> load_sweep(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  OCPS_CHECK(is.good(), "cannot read sweep cache " << path);
  OCPS_CHECK(read_u64(is) == kSweepMagic, "bad sweep cache magic");
  std::vector<GroupEvaluation> sweep(read_u64(is));
  for (auto& g : sweep) {
    g.members.resize(read_u64(is));
    for (auto& m : g.members)
      m = static_cast<std::uint32_t>(read_u64(is));
    for (auto& method : g.methods) {
      method.alloc = read_doubles(is);
      method.per_program_mr = read_doubles(is);
      is.read(reinterpret_cast<char*>(&method.group_mr), sizeof(double));
      OCPS_CHECK(is.good(), "truncated sweep cache");
    }
  }
  return sweep;
}

Evaluation load_evaluation() {
  Evaluation eval;
  eval.suite = load_suite();
  eval.capacity = eval.suite.options.capacity;

  auto groups = all_subsets(
      static_cast<std::uint32_t>(eval.suite.models.size()), 4);
  std::int64_t limit =
      env_int("OCPS_GROUP_LIMIT", static_cast<std::int64_t>(groups.size()));
  if (limit > 0 && static_cast<std::size_t>(limit) < groups.size())
    groups.resize(static_cast<std::size_t>(limit));
  eval.groups = groups;

  std::ostringstream name;
  name << cache_dir() << "/sweep_C" << eval.capacity << "_n"
       << eval.suite.options.trace_length << "_g" << groups.size() << ".bin";
  if (std::filesystem::exists(name.str())) {
    eval.sweep = load_sweep(name.str());
    if (eval.sweep.size() == groups.size()) {
      std::cerr << "[ocps] loaded sweep cache (" << eval.sweep.size()
                << " groups) from " << name.str() << "\n";
      return eval;
    }
  }

  SweepOptions sweep_options;
  sweep_options.capacity = eval.capacity;
  PhaseTimer timer("load_evaluation.sweep");
  eval.sweep = sweep_groups(eval.suite.models, groups, sweep_options);
  double elapsed = timer.stop();
  std::cerr << "[ocps] swept " << eval.sweep.size() << " groups in "
            << elapsed << " s ("
            << elapsed / static_cast<double>(eval.sweep.size())
            << " s/group)\n";
  std::filesystem::create_directories(cache_dir());
  save_sweep(eval.sweep, name.str());
  return eval;
}

void emit_csv_only(const TextTable& table, const std::string& name) {
  std::string dir = env_string("OCPS_CSV_DIR", "");
  if (dir.empty()) return;
  std::filesystem::create_directories(dir);
  std::ofstream os(dir + "/" + name + ".csv", std::ios::trunc);
  table.print_csv(os);
  std::cout << "(full series csv written to " << dir << "/" << name
            << ".csv)\n";
}

void emit_table(const TextTable& table, const std::string& name) {
  table.print(std::cout);
  std::string dir = env_string("OCPS_CSV_DIR", "");
  if (!dir.empty()) {
    std::filesystem::create_directories(dir);
    std::ofstream os(dir + "/" + name + ".csv", std::ios::trunc);
    table.print_csv(os);
    std::cout << "(csv written to " << dir << "/" << name << ".csv)\n";
  }
}

}  // namespace ocps::bench
