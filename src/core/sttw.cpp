#include "core/sttw.hpp"

#include <queue>

#include "util/check.hpp"

namespace ocps {

namespace {

// Greatest convex non-increasing minorant of a cost vector (monotone-chain
// lower hull over (c, cost)). Mirrors MissRatioCurve::convex_minorant but
// works on raw cost arrays so STTW composes with any objective weights.
std::vector<double> convex_minorant(const std::vector<double>& cost) {
  const std::size_t n = cost.size();
  if (n <= 2) return cost;
  std::vector<std::size_t> hull;
  for (std::size_t c = 0; c < n; ++c) {
    while (hull.size() >= 2) {
      std::size_t a = hull[hull.size() - 2];
      std::size_t b = hull[hull.size() - 1];
      double lhs = (cost[b] - cost[a]) * static_cast<double>(c - a);
      double rhs = (cost[c] - cost[a]) * static_cast<double>(b - a);
      if (lhs >= rhs) {
        hull.pop_back();
      } else {
        break;
      }
    }
    hull.push_back(c);
  }
  std::vector<double> out(n);
  for (std::size_t seg = 0; seg + 1 < hull.size(); ++seg) {
    std::size_t a = hull[seg], b = hull[seg + 1];
    for (std::size_t c = a; c <= b; ++c) {
      double t = (b == a)
                     ? 0.0
                     : static_cast<double>(c - a) / static_cast<double>(b - a);
      out[c] = cost[a] + t * (cost[b] - cost[a]);
    }
  }
  if (hull.size() == 1) out[hull[0]] = cost[hull[0]];
  return out;
}

}  // namespace

SttwResult sttw_partition(CostMatrixView cost, std::size_t capacity,
                          SttwVariant variant) {
  const std::size_t p = cost.rows();
  OCPS_CHECK(p >= 1, "need at least one program");
  OCPS_CHECK(cost.cols() >= capacity + 1,
             "cost curves shorter than capacity+1");

  // The curve the greedy believes in: raw (faithful Stone et al.) or the
  // convex minorant (charitable variant).
  std::vector<std::vector<double>> believed(p);
  for (std::size_t i = 0; i < p; ++i) {
    const double* row = cost.row(i);
    std::vector<double> window(row, row + capacity + 1);
    believed[i] = (variant == SttwVariant::kConvexHull)
                      ? convex_minorant(window)
                      : std::move(window);
  }

  // Max-heap of (marginal gain of the next unit, program). For convex
  // believed-curves marginals are non-increasing per program, so the
  // greedy is exact on them; for raw non-convex curves this IS the classic
  // algorithm's blind spot: a plateau yields zero marginal and the cliff
  // behind it is never discovered.
  struct Entry {
    double gain;
    std::size_t program;
    bool operator<(const Entry& other) const { return gain < other.gain; }
  };
  std::priority_queue<Entry> heap;
  std::vector<std::size_t> alloc(p, 0);
  for (std::size_t i = 0; i < p; ++i) {
    if (capacity >= 1) heap.push({believed[i][0] - believed[i][1], i});
  }
  std::size_t remaining = capacity;
  while (remaining > 0 && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    std::size_t i = top.program;
    ++alloc[i];
    --remaining;
    std::size_t c = alloc[i];
    if (c + 1 <= capacity) heap.push({believed[i][c] - believed[i][c + 1], i});
  }
  // All marginals exhausted (heap empty) with units left: park the rest on
  // program 0 — the believed costs are flat there.
  alloc[0] += remaining;

  SttwResult result;
  result.alloc = std::move(alloc);
  for (std::size_t i = 0; i < p; ++i) {
    result.objective_value += cost(i, result.alloc[i]);
    result.believed_objective_value += believed[i][result.alloc[i]];
  }
  return result;
}

}  // namespace ocps
