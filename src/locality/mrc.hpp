// Miss-ratio curves.
//
// A MissRatioCurve stores the miss ratio of one program at every integer
// cache size 0..capacity (in allocation units / blocks), together with the
// program's access count so that miss *counts* — the DP's additive cost —
// can be derived. Utilities include the convexity test and convex minorant
// that the STTW comparator depends on (§V-B), and monotone repair (the LRU
// inclusion property guarantees non-increasing miss ratios; estimates are
// clamped to respect it).
#pragma once

#include <cstdint>
#include <vector>

namespace ocps {

/// Miss ratio as a function of cache size in allocation units.
class MissRatioCurve {
 public:
  MissRatioCurve() = default;

  /// ratios[c] is the miss ratio at cache size c; accesses is the number of
  /// memory accesses the ratios refer to (per unit time or per run).
  MissRatioCurve(std::vector<double> ratios, std::uint64_t accesses);

  /// Largest cache size represented.
  std::size_t capacity() const { return ratios_.empty() ? 0 : ratios_.size() - 1; }
  std::uint64_t accesses() const { return accesses_; }
  bool empty() const { return ratios_.empty(); }

  /// Miss ratio at integer cache size c; sizes beyond capacity clamp to the
  /// last value (the curve has flattened by construction).
  double ratio(std::size_t c) const;

  /// Miss ratio at a fractional cache size (linear interpolation between
  /// integer sizes; clamped at the ends). Natural-partition occupancies are
  /// fractional, so shared-cache evaluation uses this form.
  double ratio_at(double c) const;

  /// Expected miss count at cache size c (ratio * accesses).
  double miss_count(std::size_t c) const;

  const std::vector<double>& ratios() const { return ratios_; }

  /// True iff the curve is non-increasing within tolerance eps.
  bool is_non_increasing(double eps = 1e-12) const;

  /// True iff the curve is convex within tolerance eps (the STTW
  /// assumption; cyclic/phased workloads violate it).
  bool is_convex(double eps = 1e-9) const;

  /// Returns a new curve clamped to be non-increasing (running minimum).
  MissRatioCurve monotone_repaired() const;

  /// Greatest convex non-increasing minorant (lower convex hull of the
  /// points (c, ratio(c))). This is the curve STTW effectively optimizes.
  MissRatioCurve convex_minorant() const;

  /// Smallest cache size whose miss ratio is <= target + eps; returns
  /// capacity() when the target is unattainable. Requires a non-increasing
  /// curve (callers repair first). Baseline constraints (§VI) reduce to
  /// this query thanks to LRU inclusion.
  std::size_t min_size_for_ratio(double target, double eps = 1e-12) const;

 private:
  std::vector<double> ratios_;
  std::uint64_t accesses_ = 0;
};

}  // namespace ocps
