# Empty compiler generated dependencies file for test_shards.
# This may be replaced when dependencies are built.
