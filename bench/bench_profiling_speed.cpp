// Profiling-cost microbenchmarks: full-trace reuse-time + footprint
// analysis (the paper cites ~23x slowdown for full-trace footprint
// profiling and uses it for reproducibility), the exact stack-distance
// pass, and the shared-cache simulator — the costs that motivate doing
// optimization on composable per-program models instead of simulating
// every co-run.
#include <benchmark/benchmark.h>

#include "common.hpp"

#include "cachesim/corun.hpp"
#include "locality/footprint.hpp"
#include "locality/reuse_distance.hpp"
#include "locality/reuse_time.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"

namespace {

using namespace ocps;

Trace bench_trace(std::size_t n) { return make_zipf(n, 2000, 0.9, 7); }

void BM_ReuseProfile(benchmark::State& state) {
  Trace t = bench_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ReuseProfile p = profile_reuse(t);
    benchmark::DoNotOptimize(p.distinct);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_FootprintFromProfile(benchmark::State& state) {
  Trace t = bench_trace(static_cast<std::size_t>(state.range(0)));
  ReuseProfile p = profile_reuse(t);
  for (auto _ : state) {
    FootprintCurve fp = footprint_from_profile(p);
    benchmark::DoNotOptimize(fp.fp.back());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_StackDistances(benchmark::State& state) {
  Trace t = bench_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    StackDistanceHistogram h = stack_distances(t);
    benchmark::DoNotOptimize(h.cold_misses);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SharedCacheSim(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Trace a = make_zipf(n / 2, 1500, 0.9, 8);
  Trace b = make_cyclic(n / 2, 900);
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, n);
  for (auto _ : state) {
    CoRunResult r = simulate_shared(mix, 1024);
    benchmark::DoNotOptimize(r.total_misses());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_LruSimSingleSize(benchmark::State& state) {
  Trace t = bench_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    LruCache cache(1024);
    for (Block b : t.accesses) cache.access(b);
    benchmark::DoNotOptimize(cache.misses());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_ReuseProfile)->Arg(100000)->Arg(400000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FootprintFromProfile)->Arg(100000)->Arg(400000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StackDistances)->Arg(100000)->Arg(400000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SharedCacheSim)->Arg(200000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LruSimSingleSize)->Arg(200000)->Unit(benchmark::kMillisecond);

// Custom main (instead of BENCHMARK_MAIN) so the observability snapshot
// is emitted like every other bench binary when OCPS_OBS is on.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  ocps::bench::emit_metrics_snapshot_if_enabled();
  return 0;
}
