#include "obs/slo.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

namespace ocps::obs {

namespace {
constexpr std::uint64_t kEmptySecond =
    std::numeric_limits<std::uint64_t>::max();
}  // namespace

SloTracker::SloTracker(SloConfig config) : config_(config) {
  // Same lazy-recycling ring as WindowedHistogram: window + 1 per-second
  // slots so an in-window second is never evicted by a newer one.
  slots_.assign(kLongWindowSeconds + 1, Slot{kEmptySecond, 0, 0, 0});
}

bool SloTracker::configured() const noexcept {
  return config_.p99_ms > 0.0 || config_.availability > 0.0;
}

std::uint64_t SloTracker::steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SloTracker::record(double latency_ms, bool ok, std::uint64_t now_ns) {
  if (!configured()) return;
  std::uint64_t sec = now_ns / 1000000000ULL;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[sec % slots_.size()];
  if (s.second != sec) {
    s.second = sec;
    s.total = 0;
    s.fast = 0;
    s.good = 0;
  }
  ++s.total;
  if (config_.p99_ms <= 0.0 || latency_ms <= config_.p99_ms) ++s.fast;
  if (ok) ++s.good;
}

SloTracker::WindowCounts SloTracker::window_counts(std::uint64_t sec,
                                                   unsigned window) const {
  std::uint64_t oldest = sec >= window ? sec - window + 1 : 0;
  WindowCounts w;
  for (const Slot& s : slots_) {
    if (s.second == kEmptySecond || s.second < oldest || s.second > sec)
      continue;
    w.total += s.total;
    w.fast += s.fast;
    w.good += s.good;
  }
  return w;
}

SloTracker::Status SloTracker::status(std::uint64_t now_ns) {
  Status out;
  std::uint64_t sec = now_ns / 1000000000ULL;
  std::lock_guard<std::mutex> lock(mu_);
  WindowCounts sw = window_counts(sec, kShortWindowSeconds);
  WindowCounts lw = window_counts(sec, kLongWindowSeconds);

  auto burn = [](std::uint64_t bad, std::uint64_t total, double budget) {
    if (total == 0 || budget <= 0.0) return 0.0;
    return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
  };
  auto evaluate = [&](const char* name, double target, double budget,
                      std::uint64_t sw_bad, std::uint64_t lw_bad,
                      bool* latched) {
    Objective o;
    o.name = name;
    o.target = target;
    o.budget = budget;
    o.burn_short = burn(sw_bad, sw.total, budget);
    o.burn_long = burn(lw_bad, lw.total, budget);
    o.breaching = sw.total > 0 && lw.total > 0 &&
                  o.burn_short >= config_.burn_threshold &&
                  o.burn_long >= config_.burn_threshold;
    if (o.breaching && !*latched) {
      ++alerts_total_;
      alerts_.push_back(Alert{alerts_total_, now_ns, o.name, o.burn_short,
                              o.burn_long});
      if (alerts_.size() > config_.alert_capacity)
        alerts_.erase(alerts_.begin(),
                      alerts_.begin() +
                          static_cast<std::ptrdiff_t>(alerts_.size() -
                                                      config_.alert_capacity));
    }
    *latched = o.breaching;
    out.objectives.push_back(std::move(o));
  };

  if (config_.p99_ms > 0.0) {
    // A p99 objective allows 1% of requests over target: budget 0.01.
    evaluate("latency", config_.p99_ms, 0.01, sw.total - sw.fast,
             lw.total - lw.fast, &latency_breaching_);
  }
  if (config_.availability > 0.0) {
    double budget = std::max(1.0 - config_.availability, 1e-9);
    evaluate("availability", config_.availability, budget,
             sw.total - sw.good, lw.total - lw.good,
             &availability_breaching_);
  }
  out.alerts = alerts_;
  out.alerts_total = alerts_total_;
  return out;
}

}  // namespace ocps::obs
