# Empty compiler generated dependencies file for ocps_bench_common.
# This may be replaced when dependencies are built.
