#include "locality/crd.hpp"

#include <unordered_map>

#include "util/check.hpp"
#include "util/fenwick.hpp"

namespace ocps {

std::uint64_t CrdProfile::misses_at(std::size_t program,
                                    std::size_t c) const {
  OCPS_CHECK(program < hist.size(), "program index out of range");
  std::uint64_t misses = cold[program];
  const auto& h = hist[program];
  for (std::size_t d = c + 1; d < h.size(); ++d) misses += h[d];
  return misses;
}

MissRatioCurve CrdProfile::program_mrc(std::size_t program,
                                       std::size_t capacity) const {
  OCPS_CHECK(program < hist.size(), "program index out of range");
  OCPS_CHECK(accesses[program] > 0, "program has no accesses");
  const auto& h = hist[program];
  std::vector<double> ratios(capacity + 1, 0.0);
  std::uint64_t tail = 0;
  for (std::size_t d = capacity + 1; d < h.size(); ++d) tail += h[d];
  std::uint64_t misses = cold[program] + tail;
  const double n = static_cast<double>(accesses[program]);
  for (std::size_t c = capacity + 1; c-- > 0;) {
    ratios[c] = static_cast<double>(misses) / n;
    if (c >= 1 && c < h.size()) misses += h[c];
  }
  ratios[0] = 1.0;
  return MissRatioCurve(std::move(ratios), accesses[program]);
}

MissRatioCurve CrdProfile::group_mrc(std::size_t capacity) const {
  OCPS_CHECK(trace_length > 0, "empty profile");
  std::vector<double> ratios(capacity + 1, 0.0);
  for (std::size_t c = 0; c <= capacity; ++c) {
    std::uint64_t misses = 0;
    for (std::size_t p = 0; p < hist.size(); ++p) misses += misses_at(p, c);
    ratios[c] = static_cast<double>(misses) /
                static_cast<double>(trace_length);
  }
  return MissRatioCurve(std::move(ratios), trace_length);
}

CrdProfile concurrent_reuse_distances(const InterleavedTrace& trace) {
  const std::size_t n = trace.length();
  std::uint32_t programs = 0;
  for (auto o : trace.owners) programs = std::max(programs, o + 1);

  CrdProfile out;
  out.trace_length = n;
  out.hist.assign(programs, std::vector<std::uint64_t>(n + 1, 0));
  out.cold.assign(programs, 0);
  out.accesses.assign(programs, 0);
  if (n == 0) return out;

  // Same Fenwick-over-last-positions algorithm as the solo profiler, with
  // the histogram bucketed by the accessing program. Owners never share
  // blocks (interleaving disjointifies id spaces), so the owner of a reuse
  // is the owner of both endpoints.
  Fenwick marks(n);
  std::unordered_map<Block, std::size_t> last;
  last.reserve(n / 4 + 16);
  for (std::size_t t = 0; t < n; ++t) {
    Block b = trace.blocks[t];
    std::uint32_t who = trace.owners[t];
    ++out.accesses[who];
    auto it = last.find(b);
    if (it == last.end()) {
      ++out.cold[who];
      last.emplace(b, t);
    } else {
      std::size_t p = it->second;
      std::int64_t between = marks.range(p + 1, t == 0 ? 0 : t - 1);
      std::size_t depth = static_cast<std::size_t>(between) + 1;
      ++out.hist[who][depth];
      marks.add(p, -1);
      it->second = t;
    }
    marks.add(t, +1);
  }
  return out;
}

}  // namespace ocps
