// Average footprint fp(w) (§III of the paper; Xiang et al. PACT'11 /
// ASPLOS'13 linear-time algorithm).
//
// fp(w) is the average number of distinct blocks in a window of w
// consecutive accesses (Eq. 5). The linear-time formula counts, for every
// datum k, the windows of length w that contain no access to k: those lie
// entirely inside the leading gap (length f_k - 1), an inter-access gap
// (length rt - 2 for a reuse pair with reuse time rt), or the trailing gap
// (length n - l_k). Hence
//
//   fp(w) = m - 1/(n-w+1) * [ Σ_{rt >= w+2} (rt-1-w) freq(rt)
//                             + Σ_k max(0, f_k - w)
//                             + Σ_k max(0, n - l_k + 1 - w) ],
//
// evaluated for all w in O(n) with suffix sums. The brute-force definition
// (averaging WSS(i, w) over all windows) is provided as a test oracle.
#pragma once

#include <vector>

#include "locality/reuse_time.hpp"
#include "trace/trace.hpp"
#include "util/curve.hpp"

namespace ocps {

/// Dense average-footprint function: value at index w is fp(w), for
/// w = 0..trace_length, with fp(0) = 0 and fp(n) = m.
struct FootprintCurve {
  std::vector<double> fp;          ///< fp[w], w = 0..n
  std::uint64_t trace_length = 0;  ///< n
  std::uint64_t distinct = 0;      ///< m

  double operator()(double w) const;  ///< linear interpolation, clamped

  /// Smallest (real) window length with fp(w) >= target. fp is
  /// non-decreasing, so this is the fill-time inverse used by HOTL.
  double inverse(double target) const;

  /// Compact piecewise-linear form (for footprint files / composition).
  PiecewiseLinear to_curve(std::size_t max_knots = 0) const;
};

/// Linear-time footprint from a reuse profile.
FootprintCurve footprint_from_profile(const ReuseProfile& profile);

/// Convenience: profile + footprint in one call.
FootprintCurve compute_footprint(const Trace& trace);

/// O(n * w_max) definitional footprint (sliding-window distinct counting);
/// test oracle only.
std::vector<double> footprint_brute_force(const Trace& trace,
                                          std::size_t w_max);

}  // namespace ocps
