// Example: when is partition-sharing actually better? (Fig. 1 and §VIII.)
//
// The reduction theorem says partitioning is optimal whenever phases
// interact randomly — but *synchronized antiphase* programs are the
// exception. This example builds two programs whose working sets alternate
// in antiphase, simulates every scheme class (sharing / partitioning /
// partition-sharing with two polluting streams fenced off), and then shows
// that as the phase alignment is randomized, the partition-sharing
// advantage disappears — Robert Frost's fence goes back up.
#include <iostream>

#include "ocps.hpp"

using namespace ocps;

namespace {

// Phased trace with per-phase working sets taken from `pattern`, starting
// at phase `offset` — offset 1 with a two-entry pattern is exact antiphase.
Trace phased_from(const std::vector<std::size_t>& pattern,
                  std::size_t phase_len, std::size_t reps,
                  std::size_t offset) {
  std::vector<Phase> phases;
  for (std::size_t k = 0; k < pattern.size(); ++k) {
    Phase p;
    p.length = phase_len;
    p.wss = pattern[(k + offset) % pattern.size()];
    phases.push_back(p);
  }
  return make_phased(phases, reps);
}

// Randomly jittered phases: each phase picks its working set at random —
// the paper's "random phase interaction" assumption (§VIII).
Trace phased_random(const std::vector<std::size_t>& pattern,
                    std::size_t phase_len, std::size_t count,
                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Phase> phases;
  for (std::size_t k = 0; k < count; ++k) {
    Phase p;
    p.length = phase_len;
    p.wss = pattern[rng.below(pattern.size())];
    phases.push_back(p);
  }
  return make_phased(phases, 1);
}

struct Outcome {
  double shared, partitioned, partition_sharing;
};

Outcome run(const Trace& a, const Trace& b, std::size_t total_len) {
  Trace s1 = make_stream(total_len / 4);
  Trace s2 = make_stream(total_len / 4);
  InterleavedTrace mix =
      interleave_proportional({s1, s2, a, b}, {1, 1, 1, 1}, total_len);
  const std::size_t C = 64;
  Outcome o;
  o.shared = simulate_shared(mix, C).group_miss_ratio();
  o.partitioned =
      simulate_partitioned(mix, {4, 4, 28, 28}).group_miss_ratio();
  o.partition_sharing =
      simulate_partition_sharing(mix, {0, 1, 2, 2}, {4, 4, 56})
          .group_miss_ratio();
  return o;
}

}  // namespace

int main() {
  const std::vector<std::size_t> pattern = {48, 4};
  const std::size_t phase_len = 400, reps = 40;
  const std::size_t total = phase_len * pattern.size() * reps * 4;

  std::cout << "=== When partition-sharing wins: phase alignment ===\n\n";
  TextTable t({"phase interaction", "free-for-all", "partitioning",
               "partition-sharing", "best"});

  auto add = [&](const std::string& name, const Outcome& o) {
    std::string best = "partition-sharing";
    if (o.partitioned <= o.shared && o.partitioned <= o.partition_sharing)
      best = "partitioning";
    else if (o.shared < o.partition_sharing)
      best = "free-for-all";
    t.add_row({name, TextTable::num(o.shared, 4),
               TextTable::num(o.partitioned, 4),
               TextTable::num(o.partition_sharing, 4), best});
  };

  // Synchronized antiphase: working sets dovetail perfectly.
  add("antiphase (synchronized)",
      run(phased_from(pattern, phase_len, reps, 0),
          phased_from(pattern, phase_len, reps, 1), total));

  // Synchronized in-phase: both need the big set at once — nothing helps.
  add("in-phase (synchronized)",
      run(phased_from(pattern, phase_len, reps, 0),
          phased_from(pattern, phase_len, reps, 0), total));

  // Random phases: statistical multiplexing still helps, but less than
  // perfect antiphase.
  for (std::uint64_t seed : {21, 22, 23})
    add("random alignment #" + std::to_string(seed - 20),
        run(phased_random(pattern, phase_len, reps * 2, seed),
            phased_random(pattern, phase_len, reps * 2, seed + 100),
            total));

  // Phase-free control: stationary programs with the same working-set
  // size. Sharing a partition gives each the same effective space as a
  // static split — the advantage vanishes, which is the NPA regime where
  // the paper's reduction makes partitioning optimal.
  add("phase-free (stationary)",
      run(make_uniform(total / 4, 48, 31), make_uniform(total / 4, 48, 32),
          total));

  t.print(std::cout);

  std::cout
      << "\nReading: with synchronized antiphase working sets the shared "
         "partition serves both peaks and partition-sharing wins — the "
         "Fig. 1 scenario. Programs with strong phase behaviour keep part "
         "of that advantage even when unsynchronized (this is exactly the "
         "NPA caveat of §VIII). For stationary, phase-free programs the "
         "advantage vanishes and the paper's reduction applies: leave the "
         "fences up and partition.\n";
  return 0;
}
