file(REMOVE_RECURSE
  "libocps_bench_common.a"
)
