#include "runtime/controller.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <string>
#include <utility>

#include "cachesim/lru.hpp"
#include "core/baselines.hpp"
#include "core/batch_engine.hpp"
#include "core/dp_partition.hpp"
#include "locality/sanitize.hpp"
#include "locality/shards.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/result.hpp"

namespace ocps {

namespace {

/// Limits how many units change hands between two allocations: returns an
/// allocation between `from` and `to` component-wise, with the same total,
/// whose distance from `from` (half the L1 norm) is at most `cap`. The
/// largest movers win the budget, so the cap preserves the direction of
/// the DP's decision while damping its magnitude. cap == 0 disables the
/// limit (bit-identical pass-through of `to`).
std::vector<std::size_t> cap_allocation_change(
    const std::vector<std::size_t>& from, const std::vector<std::size_t>& to,
    std::size_t cap) {
  if (cap == 0) return to;
  const std::size_t p = from.size();
  std::size_t moved = 0;
  for (std::size_t i = 0; i < p; ++i)
    if (to[i] > from[i]) moved += to[i] - from[i];
  if (moved <= cap) return to;

  std::vector<std::size_t> order(p);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    auto delta = [&](std::size_t i) {
      return to[i] > from[i] ? to[i] - from[i] : from[i] - to[i];
    };
    return delta(a) > delta(b);
  });

  // Growers: proportional floor share of the budget, then one extra unit
  // each (largest first) until the budget is spent.
  std::vector<std::size_t> out = from;
  std::size_t budget = cap;
  for (std::size_t i : order) {
    if (to[i] <= from[i]) continue;
    std::size_t give = (to[i] - from[i]) * cap / moved;
    out[i] += give;
    budget -= give;
  }
  for (std::size_t i : order) {
    if (budget == 0) break;
    if (to[i] > from[i] && out[i] < to[i]) {
      ++out[i];
      --budget;
    }
  }
  // Shrinkers give up exactly what the growers received, largest first,
  // never dropping below their own target.
  std::size_t need = cap - budget;
  for (std::size_t i : order) {
    if (need == 0) break;
    if (to[i] < from[i]) {
      std::size_t take = std::min(need, from[i] - to[i]);
      out[i] -= take;
      need -= take;
    }
  }
  OCPS_CHECK(need == 0, "hysteresis cap could not balance the transfer");
  return out;
}

}  // namespace

ControllerResult run_online_controller(const InterleavedTrace& trace,
                                       std::size_t num_programs,
                                       const ControllerConfig& config,
                                       const ControllerHooks& hooks) {
  OCPS_CHECK(num_programs >= 1, "need at least one program");
  OCPS_CHECK(config.capacity >= num_programs,
             "capacity too small for one unit per program");
  OCPS_CHECK(config.epoch_length >= 1, "epoch must be non-empty");
  OCPS_CHECK(config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0,
             "ewma_alpha must be in (0, 1]");
  OCPS_CHECK(config.min_units * num_programs <= config.capacity,
             "per-program floors exceed capacity");
  for (auto o : trace.owners)
    OCPS_CHECK(o < num_programs, "owner id out of range");

  const std::size_t p = num_programs;
  const std::vector<std::size_t> equal = equal_partition(p, config.capacity);

  // Start from the equal partition: the controller knows nothing yet.
  std::vector<std::size_t> alloc = equal;
  std::vector<LruCache> partitions;
  partitions.reserve(p);
  for (std::size_t i = 0; i < p; ++i) partitions.emplace_back(alloc[i]);

  // One sampled profiler per program; reset every epoch so the estimate
  // tracks the current phase. The EWMA blends successive epoch estimates.
  std::vector<ShardsProfiler> profilers;
  profilers.reserve(p);
  for (std::size_t i = 0; i < p; ++i)
    profilers.emplace_back(config.sampling_rate,
                           config.sampling_seed + i * 1315423911ULL);

  CostMatrix ewma_cost(p, config.capacity);
  // A program with no valid estimate yet has a meaningless cost row; the
  // DP only runs once every program has reported at least once.
  std::vector<bool> have_estimate(p, false);
  // Unweighted miss-*ratio* EWMA, blended exactly like ewma_cost. The
  // cost rows are access-weighted and useless as predictions; this
  // matrix is what the decision log quotes as the model's forecast at
  // the chosen allocation. It feeds nothing back into the DP.
  CostMatrix ewma_ratio(p, config.capacity);

  // Persistent prefix solver across epochs. Each epoch refreshes it with
  // resolve_incremental: cost rows that did not change this epoch (held
  // estimates, faulted programs, quiet phases) keep their cached DP
  // layers, so the per-epoch re-solve costs only the layers from the
  // first changed program onward — same bits as a cold
  // optimize_partition, enforced by tests.
  PrefixDpSolver dp_solver;
  bool dp_solver_ready = false;
  std::vector<std::uint32_t> dp_members(p);
  std::iota(dp_members.begin(), dp_members.end(), 0U);
  std::vector<std::size_t> dp_lo;
  if (config.min_units > 0) dp_lo.assign(p, config.min_units);
  DpResult dp_buf;

  ControllerResult out;
  out.sim.accesses.assign(p, 0);
  out.sim.misses.assign(p, 0);
  out.alloc_history.push_back(alloc);

  std::vector<std::uint64_t> epoch_accesses(p, 0);
  std::vector<std::uint64_t> epoch_misses(p, 0);
  std::uint64_t sampled_total = 0;

  // Decision-quality plane: every allocation decision goes on the audit
  // trail with its predicted miss ratios; one epoch later the realized
  // ratios reconcile it and the signed errors feed the drift detector.
  // All of it is independent of the metrics registry (and of OCPS_OBS),
  // and none of it touches the allocation math above.
  out.decisions =
      std::make_shared<obs::DecisionLog>(config.decision_log_capacity);
  obs::DriftConfig drift_config;
  drift_config.alpha = config.drift_alpha;
  drift_config.threshold = config.drift_threshold;
  obs::DriftDetector drift(drift_config);
  obs::WindowedHistogram error_window(30);
  std::uint64_t pending_decision = 0;
  std::vector<std::string> tenant_names(p);
  for (std::size_t i = 0; i < p; ++i)
    tenant_names[i] = "p" + std::to_string(i);

  // Attaches the just-finished segment's realized miss ratios to the
  // decision that governed it. Zero-access programs get NaN (undefined
  // ratio, skipped by the accuracy/drift stats, never synthesized as 0).
  auto reconcile_pending = [&](bool partial) {
    if (pending_decision == 0) return;
    const std::uint64_t id = pending_decision;
    pending_decision = 0;
    std::vector<double> realized(p, std::nan(""));
    for (std::size_t i = 0; i < p; ++i)
      if (epoch_accesses[i] > 0)
        realized[i] = static_cast<double>(epoch_misses[i]) /
                      static_cast<double>(epoch_accesses[i]);
    const std::uint64_t now = obs::DecisionLog::steady_now_ns();
    obs::DecisionRecord rec;
    if (out.decisions->reconcile(id, realized, partial, now, &rec) ==
        obs::DecisionLog::ReconcileStatus::kOk)
      obs::record_prediction_errors(rec, &drift, &error_window, now);
  };

  auto restart_from_scratch = [&]() {
    alloc = equal;
    for (std::size_t i = 0; i < p; ++i) {
      partitions[i].set_capacity(alloc[i]);
      double* row = ewma_cost.row(i);
      std::fill(row, row + config.capacity + 1, 0.0);
      double* ratio_row = ewma_ratio.row(i);
      std::fill(ratio_row, ratio_row + config.capacity + 1, 0.0);
      have_estimate[i] = false;
    }
  };

  auto end_epoch = [&]() {
    const std::size_t epoch_index = out.epochs;
    ++out.epochs;
    EpochHealth health;
    obs::ScopedSpan epoch_span("epoch", "controller");
    epoch_span.set_arg("epoch", epoch_index);

    // Phase 0 — reconcile: the epoch that just ended is the one the
    // pending decision governed; attach its realized miss ratios before
    // the counters are reset below.
    reconcile_pending(/*partial=*/false);

    // Phase 1a — estimate: pull every program's sampled MRC for the
    // epoch. Estimation is per-program pure, so splitting it from the
    // sanitize pass below changes nothing but gives each stage its own
    // trace span.
    std::vector<std::vector<double>> raw(p);
    std::vector<bool> usable(p, false);
    {
      obs::ScopedSpan span("estimate", "controller");
      for (std::size_t i = 0; i < p; ++i) {
        usable[i] =
            !(hooks.drop_estimate && hooks.drop_estimate(epoch_index, i));
        if (usable[i]) {
          raw[i] = profilers[i].estimate_mrc(config.capacity).ratios();
          if (hooks.corrupt_mrc) hooks.corrupt_mrc(epoch_index, i, raw[i]);
        } else {
          obs::instant_event("estimate_dropped", "controller", "program", i);
        }
        sampled_total += profilers[i].sampled_accesses();
      }
    }

    // Phase 1b — sanitize: repair what is repairable; a program whose
    // estimate is unusable keeps its previous cost row (hold).
    {
      obs::ScopedSpan span("sanitize", "controller");
      for (std::size_t i = 0; i < p; ++i) {
        const double weight = static_cast<double>(epoch_accesses[i]);
        MissRatioCurve mrc;
        if (usable[i]) {
          RepairReport report;
          Result<MissRatioCurve> sanitized =
              sanitize_mrc(std::move(raw[i]), profilers[i].accesses(),
                           config.capacity, &report);
          health.repairs += report.total();
          if (sanitized.ok()) {
            mrc = std::move(sanitized.value());
          } else {
            usable[i] = false;
            obs::instant_event(
                "estimate_degraded", "controller", "error_code",
                static_cast<std::uint64_t>(sanitized.error().code));
          }
        }
        if (usable[i]) {
          double* row = ewma_cost.row(i);
          double* ratio_row = ewma_ratio.row(i);
          for (std::size_t c = 0; c <= config.capacity; ++c) {
            double fresh = weight * mrc.ratio(c);
            row[c] = have_estimate[i]
                         ? config.ewma_alpha * fresh +
                               (1.0 - config.ewma_alpha) * row[c]
                         : fresh;
            ratio_row[c] = have_estimate[i]
                               ? config.ewma_alpha * mrc.ratio(c) +
                                     (1.0 - config.ewma_alpha) * ratio_row[c]
                               : mrc.ratio(c);
          }
          have_estimate[i] = true;
        } else {
          ++health.degraded_programs;
        }
        profilers[i].reset();
        epoch_accesses[i] = 0;
        epoch_misses[i] = 0;
      }
    }

    // Phase 2 — decide. The naive baseline restarts on any fault; the
    // graceful ladder holds what it has.
    bool all_have = std::all_of(have_estimate.begin(), have_estimate.end(),
                                [](bool b) { return b; });
    std::uint64_t solve_ns = 0;        // decision-log bookkeeping only
    bool solve_incremental = false;
    std::string decision_note;
    if (config.fault_policy == FaultPolicy::kRestartOnError &&
        health.degraded_programs > 0) {
      restart_from_scratch();
      health.restarted = true;
      decision_note = "restart: " +
                      std::to_string(health.degraded_programs) +
                      " degraded estimate(s)";
      obs::instant_event("restart", "controller", "epoch", epoch_index);
    } else if (!all_have) {
      // First-epoch failure: nothing was ever learned for some program,
      // so there is no basis to run the DP — stay on the current
      // allocation (the startup equal partition).
      health.held_allocation = true;
      decision_note = "hold: awaiting first estimates";
      obs::instant_event("hold", "controller", "epoch", epoch_index);
    } else {
      const bool was_ready = dp_solver_ready;
      const auto solve_start = std::chrono::steady_clock::now();
      Result<DpResult> dp = [&]() -> Result<DpResult> {
        obs::ScopedSpan span("dp_solve", "controller");
        if (hooks.fail_dp && hooks.fail_dp(epoch_index))
          return Result<DpResult>(ErrorCode::kInternal, "injected DP fault");
        // Same guarantees as try_optimize_partition — every failure mode
        // comes back as an Error value — but through the persistent
        // incremental solver instead of a cold DP table.
        try {
          if (!dp_solver_ready) {
            dp_solver.configure(ewma_cost.view(), config.capacity,
                                DpObjective::kSumCost);
            dp_solver_ready = true;
          } else {
            dp_solver.resolve_incremental(ewma_cost.view());
          }
          dp_solver.solve(dp_members.data(), p,
                          dp_lo.empty() ? nullptr : dp_lo.data(), dp_buf);
          OCPS_OBS_COUNT("dp.solves", 1);
          OCPS_OBS_HIST("dp.solve_ns", span.elapsed_ns());
        } catch (const CheckError& e) {
          OCPS_OBS_COUNT("dp.errors", 1);
          return Result<DpResult>(ErrorCode::kInternal, e.what());
        }
        if (!dp_buf.feasible) {
          OCPS_OBS_COUNT("dp.errors", 1);
          return Result<DpResult>(
              ErrorCode::kInfeasible,
              "allocation bounds admit no partition of capacity " +
                  std::to_string(config.capacity));
        }
        return Ok(dp_buf);
      }();
      solve_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - solve_start)
              .count());
      solve_incremental = was_ready;
      if (dp.ok()) {
        obs::ScopedSpan span("apply", "controller");
        alloc = cap_allocation_change(alloc, dp.value().alloc,
                                      config.max_delta_units);
        for (std::size_t i = 0; i < p; ++i)
          partitions[i].set_capacity(alloc[i]);
      } else if (config.fault_policy == FaultPolicy::kRestartOnError) {
        restart_from_scratch();
        health.dp_failed = true;
        health.restarted = true;
        decision_note = "restart: dp failed: " + dp.error().message;
        obs::instant_event("dp_failed", "controller", "error_code",
                           static_cast<std::uint64_t>(dp.error().code));
      } else {
        // Hold the last-good allocation; next epoch gets a fresh try.
        health.dp_failed = true;
        health.held_allocation = true;
        decision_note = "hold: dp failed: " + dp.error().message;
        obs::instant_event("dp_failed", "controller", "error_code",
                           static_cast<std::uint64_t>(dp.error().code));
      }
    }
    out.alloc_history.push_back(alloc);

    // Log the decision that will govern the next epoch. The predicted
    // ratio is the ratio-EWMA evaluated at the chosen allocation; a
    // program with no estimate yet predicts NaN (excluded from accuracy
    // stats rather than faked as 0).
    {
      obs::DecisionRecord rec;
      rec.epoch = out.epochs;
      rec.trigger = (health.restarted || health.held_allocation)
                        ? obs::DecisionTrigger::kFallback
                        : obs::DecisionTrigger::kEpoch;
      rec.tenants = tenant_names;
      rec.alloc = alloc;
      rec.predicted_mr.resize(p, std::nan(""));
      rec.tenant_degraded.resize(p, false);
      for (std::size_t i = 0; i < p; ++i) {
        if (have_estimate[i])
          rec.predicted_mr[i] = ewma_ratio.row(i)[alloc[i]];
        rec.tenant_degraded[i] = !usable[i] || !have_estimate[i];
      }
      rec.solve_ns = solve_ns;
      rec.incremental = solve_incremental;
      rec.note = std::move(decision_note);
      pending_decision = out.decisions->record(
          std::move(rec), obs::DecisionLog::steady_now_ns());
      OCPS_OBS_COUNT("dp.decisions", 1);
    }
    obs::publish_decision_metrics(*out.decisions, &drift, &error_window,
                                  obs::DecisionLog::steady_now_ns());

    if (health.degraded_programs > 0 || health.dp_failed)
      ++out.epochs_degraded;
    if (health.held_allocation || health.restarted) ++out.fallbacks;
    out.repairs += health.repairs;
    out.health.push_back(health);

    // Mirror the health record into the metrics registry: the same
    // counters back `ocps stats`, `--metrics-out`, and the bench
    // snapshots, so health reporting has one source of truth.
    // Adding 0 still registers the metric, so every health counter shows
    // up in snapshots even for a fault-free run.
    OCPS_OBS_COUNT("controller.epochs", 1);
    OCPS_OBS_COUNT("controller.repairs", health.repairs);
    OCPS_OBS_COUNT("controller.degraded_programs", health.degraded_programs);
    OCPS_OBS_COUNT("controller.epochs_degraded",
                   (health.degraded_programs > 0 || health.dp_failed) ? 1
                                                                      : 0);
    OCPS_OBS_COUNT("controller.fallbacks",
                   (health.held_allocation || health.restarted) ? 1 : 0);
    OCPS_OBS_COUNT("controller.dp_failures", health.dp_failed ? 1 : 0);
    OCPS_OBS_COUNT("controller.restarts", health.restarted ? 1 : 0);
    OCPS_OBS_HIST("controller.epoch_ns", epoch_span.elapsed_ns());
  };

  // Decision #1: the startup equal partition. It predicts nothing (the
  // model knows nothing yet) but gives the first epoch's realized
  // ratios a decision to attach to, and `ocps why` a baseline to diff
  // the first real DP decision against.
  {
    obs::DecisionRecord rec;
    rec.epoch = 0;
    rec.trigger = obs::DecisionTrigger::kEpoch;
    rec.tenants = tenant_names;
    rec.alloc = alloc;
    rec.note = "startup equal partition";
    pending_decision = out.decisions->record(
        std::move(rec), obs::DecisionLog::steady_now_ns());
  }

  std::uint64_t segment_start_ns = obs::now_ns();
  for (std::size_t t = 0; t < trace.length(); ++t) {
    if (t > 0 && (t % config.epoch_length) == 0) {
      end_epoch();
      segment_start_ns = obs::now_ns();
    }
    std::uint32_t who = trace.owners[t];
    Block b = trace.blocks[t];
    profilers[who].observe(b);
    ++epoch_accesses[who];
    bool hit = partitions[who].access(b);
    ++out.sim.accesses[who];
    if (!hit) {
      ++out.sim.misses[who];
      ++epoch_misses[who];
    }
  }
  // Account for the (partial) final epoch's sampling too.
  for (const auto& profiler : profilers)
    sampled_total += profiler.sampled_accesses();
  out.sampled_fraction =
      trace.length() == 0
          ? 0.0
          : static_cast<double>(sampled_total) /
                static_cast<double>(trace.length());

  // The loop only fires end_epoch at *interior* boundaries, so the
  // trailing segment — a full epoch when the length divides evenly,
  // the partial remainder otherwise — never reaches it. Reconcile the
  // pending decision against what that segment realized, and mirror
  // the health counters + epoch latency so runs shorter than one epoch
  // are not invisible in metrics.
  if (trace.length() > 0) {
    const bool partial = (trace.length() % config.epoch_length) != 0;
    reconcile_pending(partial);
    OCPS_OBS_COUNT("controller.epochs", 0);
    OCPS_OBS_COUNT("controller.partial_epochs", partial ? 1 : 0);
    OCPS_OBS_COUNT("controller.repairs", 0);
    OCPS_OBS_COUNT("controller.degraded_programs", 0);
    OCPS_OBS_COUNT("controller.epochs_degraded", 0);
    OCPS_OBS_COUNT("controller.fallbacks", 0);
    OCPS_OBS_COUNT("controller.dp_failures", 0);
    OCPS_OBS_COUNT("controller.restarts", 0);
    OCPS_OBS_HIST("controller.epoch_ns", obs::now_ns() - segment_start_ns);
    obs::publish_decision_metrics(*out.decisions, &drift, &error_window,
                                  obs::DecisionLog::steady_now_ns());
  }
  out.drift = drift.status();
  out.drift_alerts = drift.alerts();
  return out;
}

}  // namespace ocps
