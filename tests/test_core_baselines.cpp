// Tests for baseline-constrained (fair) optimization (§VI) and the
// additional objectives.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/composition.hpp"
#include "core/dp_partition.hpp"
#include "core/group_sweep.hpp"
#include "core/objectives.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

ProgramModel model_of(const std::string& name, const Trace& trace,
                      double rate, std::size_t capacity) {
  return make_program_model(name, rate, compute_footprint(trace), capacity);
}

struct Fixture {
  std::vector<ProgramModel> models;
  std::size_t capacity = 120;

  Fixture() {
    models.push_back(model_of("zipf", make_zipf(40000, 200, 0.9, 71), 2.0,
                              capacity));
    models.push_back(
        model_of("cliff", make_cyclic(40000, 80), 1.5, capacity));
    models.push_back(
        model_of("small", make_sawtooth(40000, 30), 0.8, capacity));
    models.push_back(model_of(
        "hotcold", make_hot_cold(40000, 20, 150, 0.7, 72), 1.2, capacity));
  }

  CoRunGroup group() const {
    return CoRunGroup(
        {&models[0], &models[1], &models[2], &models[3]});
  }

  CostMatrix costs() const {
    std::vector<const MissRatioCurve*> curves;
    std::vector<double> weights;
    for (const auto& m : models) {
      curves.push_back(&m.mrc);
      weights.push_back(m.access_rate);
    }
    return weighted_cost_matrix(curves, weights, capacity);
  }
};

TEST(EqualPartition, SplitsWithRemainder) {
  EXPECT_EQ(equal_partition(4, 8), (std::vector<std::size_t>{2, 2, 2, 2}));
  EXPECT_EQ(equal_partition(3, 8), (std::vector<std::size_t>{3, 3, 2}));
  EXPECT_EQ(equal_partition(1, 5), (std::vector<std::size_t>{5}));
}

TEST(BaselineMinAllocs, ThresholdsAreSufficientAndTight) {
  Fixture f;
  CoRunGroup g = f.group();
  auto equal = equal_partition(4, f.capacity);
  std::vector<double> baseline(equal.begin(), equal.end());
  auto mins = baseline_min_allocs(g, baseline);
  for (std::size_t i = 0; i < 4; ++i) {
    // Sufficient: at min_alloc the program is at least as good as baseline.
    EXPECT_LE(g[i].mrc.ratio(mins[i]),
              g[i].mrc.ratio(equal[i]) + 1e-9);
    // Tight: one unit less would be worse (or min is 0).
    if (mins[i] > 0) {
      EXPECT_GT(g[i].mrc.ratio(mins[i] - 1),
                g[i].mrc.ratio(equal[i]) + 1e-12);
    }
    // Never demands more than the baseline itself.
    EXPECT_LE(mins[i], equal[i]);
  }
}

TEST(BaselineOpt, EqualBaselineNeverHurtsAnyone) {
  Fixture f;
  CoRunGroup g = f.group();
  CostMatrix cost = f.costs();
  DpResult r = optimize_equal_baseline(g, cost.view(), f.capacity);
  ASSERT_TRUE(r.feasible);
  auto equal = equal_partition(4, f.capacity);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_LE(g[i].mrc.ratio(r.alloc[i]),
              g[i].mrc.ratio(equal[i]) + 1e-9)
        << "program " << i;
}

TEST(BaselineOpt, NaturalBaselineNeverHurtsAnyone) {
  Fixture f;
  CoRunGroup g = f.group();
  CostMatrix cost = f.costs();
  DpResult r = optimize_natural_baseline(g, cost.view(), f.capacity);
  ASSERT_TRUE(r.feasible);
  auto natural = natural_partition(g, static_cast<double>(f.capacity));
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_LE(g[i].mrc.ratio(r.alloc[i]),
              g[i].mrc.ratio_at(natural[i]) + 1e-9)
        << "program " << i;
}

TEST(BaselineOpt, ConstrainedBetweenBaselineAndOptimal) {
  Fixture f;
  CoRunGroup g = f.group();
  CostMatrix cost = f.costs();

  DpResult optimal = optimize_partition(cost.view(), f.capacity);
  DpResult eq_base = optimize_equal_baseline(g, cost.view(), f.capacity);

  auto equal = equal_partition(4, f.capacity);
  double equal_cost = 0.0;
  for (std::size_t i = 0; i < 4; ++i) equal_cost += cost(i, equal[i]);

  // Optimal <= constrained <= plain-baseline cost.
  EXPECT_LE(optimal.objective_value, eq_base.objective_value + 1e-12);
  EXPECT_LE(eq_base.objective_value, equal_cost + 1e-12);
}

TEST(BaselineOpt, OrderingHoldsAcrossRandomGroups) {
  // Property over several random 3-program groups: Optimal <= NaturalBase
  // <= Natural(cost); Optimal <= EqualBase <= Equal(cost).
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    std::size_t cap = 90;
    std::vector<ProgramModel> models;
    models.push_back(model_of(
        "z", make_zipf(30000, 150 + 20 * seed, 0.8 + 0.05 * seed, seed), 1.0,
        cap));
    models.push_back(model_of(
        "c", make_cyclic(30000, 40 + 10 * seed), 1.5, cap));
    models.push_back(model_of(
        "h", make_hot_cold(30000, 15, 120, 0.6, seed + 500), 2.0, cap));
    CoRunGroup g({&models[0], &models[1], &models[2]});
    std::vector<const MissRatioCurve*> curves;
    std::vector<double> weights;
    for (const auto& m : models) {
      curves.push_back(&m.mrc);
      weights.push_back(m.access_rate);
    }
    CostMatrix cost = weighted_cost_matrix(curves, weights, cap);

    DpResult optimal = optimize_partition(cost.view(), cap);
    DpResult nat_base = optimize_natural_baseline(g, cost.view(), cap);
    DpResult eq_base = optimize_equal_baseline(g, cost.view(), cap);
    ASSERT_TRUE(optimal.feasible);
    ASSERT_TRUE(nat_base.feasible);
    ASSERT_TRUE(eq_base.feasible);
    EXPECT_LE(optimal.objective_value, nat_base.objective_value + 1e-12);
    EXPECT_LE(optimal.objective_value, eq_base.objective_value + 1e-12);
  }
}

TEST(Objectives, MinimaxNeverWorseThanSumOnWorstMember) {
  Fixture f;
  CoRunGroup g = f.group();
  CostMatrix cost = f.costs();
  DpResult sum_opt = optimize_partition(cost.view(), f.capacity);
  DpResult minimax = optimize_minimax(g, f.capacity);
  ASSERT_TRUE(minimax.feasible);
  auto worst = [&](const std::vector<std::size_t>& alloc) {
    double w = 0.0;
    for (std::size_t i = 0; i < 4; ++i)
      w = std::max(w, g[i].mrc.ratio(alloc[i]));
    return w;
  };
  EXPECT_LE(worst(minimax.alloc), worst(sum_opt.alloc) + 1e-12);
}

TEST(Objectives, QosFloorsRespected) {
  Fixture f;
  CoRunGroup g = f.group();
  CostMatrix cost = f.costs();
  // Demand each program do at least as well as with a third of the cache.
  std::vector<double> ceilings;
  for (std::size_t i = 0; i < 4; ++i)
    ceilings.push_back(g[i].mrc.ratio(f.capacity / 3));
  DpResult r = optimize_with_qos(g, cost.view(), f.capacity, ceilings);
  if (r.feasible) {
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_LE(g[i].mrc.ratio(r.alloc[i]), ceilings[i] + 1e-9);
  }
}

TEST(Objectives, QosUnattainableReportsInfeasible) {
  Fixture f;
  CoRunGroup g = f.group();
  CostMatrix cost = f.costs();
  std::vector<double> impossible(4, -1.0);  // below any achievable ratio
  DpResult r = optimize_with_qos(g, cost.view(), f.capacity, impossible);
  EXPECT_FALSE(r.feasible);
}

TEST(Objectives, JainIndexBounds) {
  Fixture f;
  CoRunGroup g = f.group();
  auto equal = equal_partition(4, f.capacity);
  std::vector<double> equal_mr;
  for (std::size_t i = 0; i < 4; ++i)
    equal_mr.push_back(g[i].mrc.ratio(equal[i]));
  double j = jain_fairness_vs_equal(g, equal_mr, f.capacity);
  EXPECT_NEAR(j, 1.0, 1e-9);  // equal partition is perfectly fair vs itself
  double j2 = jain_fairness_vs_equal(g, {1.0, 0.001, 0.5, 0.2}, f.capacity);
  EXPECT_GE(j2, 0.25 - 1e-9);
  EXPECT_LE(j2, 1.0 + 1e-9);
}

TEST(Objectives, CountLosers) {
  EXPECT_EQ(count_losers({0.5, 0.2, 0.3}, {0.4, 0.2, 0.4}), 1u);
  EXPECT_EQ(count_losers({0.1, 0.1}, {0.2, 0.2}), 0u);
  EXPECT_THROW(count_losers({0.1}, {0.1, 0.2}), CheckError);
}

}  // namespace
}  // namespace ocps
