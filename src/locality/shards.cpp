#include "locality/shards.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ocps {

namespace {
// splitmix64 finalizer as the sampling hash: uniform over blocks,
// independent of block-id structure (sequential ids, region offsets).
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

ShardsProfiler::ShardsProfiler(double rate, std::uint64_t seed)
    : rate_(rate), salt_(seed) {
  OCPS_CHECK(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
  // threshold = rate * 2^64, saturating.
  long double scaled = static_cast<long double>(rate) * 18446744073709551616.0L;
  threshold_ = (scaled >= 18446744073709551615.0L)
                   ? ~0ULL
                   : static_cast<std::uint64_t>(scaled);
}

bool ShardsProfiler::sampled(Block b) const {
  if (rate_ >= 1.0) return true;
  return mix(b ^ salt_) < threshold_;
}

void ShardsProfiler::observe(Block b) {
  ++accesses_;
  distinct_.insert(b);
  if (sampled(b)) sampled_trace_.push_back(b);
}

double ShardsProfiler::effective_rate() const {
  if (distinct_.empty()) return rate_;
  const StackDistanceHistogram& h = histogram();
  double sampled_distinct = static_cast<double>(h.cold_misses);
  if (sampled_distinct <= 0.0) return rate_;
  return sampled_distinct / static_cast<double>(distinct_.size());
}

const StackDistanceHistogram& ShardsProfiler::histogram() const {
  if (hist_valid_for_ != sampled_trace_.size()) {
    Trace t;
    t.accesses = sampled_trace_;
    hist_ = stack_distances(t);
    hist_valid_for_ = sampled_trace_.size();
  }
  return hist_;
}

MissRatioCurve ShardsProfiler::estimate_mrc(std::size_t capacity) const {
  if (sampled_trace_.empty()) {
    // Nothing observed: conservatively predict all-miss.
    return MissRatioCurve(std::vector<double>(capacity + 1, 1.0),
                          std::max<std::uint64_t>(accesses_, 1));
  }
  const StackDistanceHistogram& h = histogram();
  const double n = static_cast<double>(sampled_trace_.size());
  const double eff = effective_rate();

  // Cumulative sampled-domain misses: misses_at in suffix-sum form.
  const std::size_t max_d = h.hist.size();
  std::vector<double> suffix(max_d + 1, 0.0);
  for (std::size_t d = max_d; d-- > 1;)
    suffix[d] = suffix[d + 1] + static_cast<double>(h.hist[d]);

  std::vector<double> ratios(capacity + 1, 0.0);
  for (std::size_t c = 0; c <= capacity; ++c) {
    // A true cache of c blocks holds ~c * f sampled blocks, with f the
    // measured per-block sampling fraction.
    double scaled = static_cast<double>(c) * eff;
    std::size_t d0 = static_cast<std::size_t>(std::floor(scaled)) + 1;
    double tail = (d0 < suffix.size()) ? suffix[d0] : 0.0;
    double miss = (static_cast<double>(h.cold_misses) + tail) / n;
    ratios[c] = std::clamp(miss, 0.0, 1.0);
  }
  ratios[0] = 1.0;
  MissRatioCurve mrc(std::move(ratios),
                     std::max<std::uint64_t>(accesses_, 1));
  return mrc.monotone_repaired();
}

void ShardsProfiler::reset() {
  accesses_ = 0;
  sampled_trace_.clear();
  distinct_.clear();
  hist_ = StackDistanceHistogram{};
  hist_valid_for_ = 0;
}

MissRatioCurve shards_mrc(const Trace& trace, double rate,
                          std::size_t capacity, std::uint64_t seed) {
  ShardsProfiler profiler(rate, seed);
  for (Block b : trace.accesses) profiler.observe(b);
  return profiler.estimate_mrc(capacity);
}

}  // namespace ocps
