file(REMOVE_RECURSE
  "libocps_cachesim.a"
)
