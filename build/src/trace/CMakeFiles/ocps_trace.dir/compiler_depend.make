# Empty compiler generated dependencies file for ocps_trace.
# This may be replaced when dependencies are built.
