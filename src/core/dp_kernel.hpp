// The forward-layer min-plus kernel behind the partitioning DP, with
// runtime SIMD dispatch.
//
// Every DP in the repo — optimize_partition, the prefix-memoized
// PrefixDpSolver, and everything layered on them — funnels through one
// inner recurrence:
//
//   next[k] = min over c in [lo, min(hi, k)] of
//             combine(prev[k - c], cost_row[c]),   ties -> smallest c
//
// a min-plus (or min-max) scan over contiguous CostMatrix rows. Two
// implementations exist:
//
//   * scalar — the original loop, kept bit-for-bit as written; this is
//     the pinned reference every other kernel must match exactly.
//   * avx2   — 8 doubles per iteration (two 256-bit lanes) with masked
//     tail blocks; compiled in its own -mavx2 translation unit and only
//     ever called after a CPUID check.
//
// Both kernels evaluate the same candidates in the same order with the
// same IEEE operations, so their outputs (values AND choice backtracks)
// are bit-for-bit identical — enforced by tests/test_dp_kernel.cpp and
// the CI dispatch-parity leg, not assumed.
//
// Dispatch resolves once per process from the OCPS_SIMD environment
// variable (`scalar`, `avx2`, or `auto`; unset = auto = best supported)
// and CPUID. `OCPS_SIMD=avx2` on a machine without AVX2 warns once on
// stderr and falls back to scalar rather than faulting. Tests can force
// a kernel in-process via set_kernel_for_testing().
#pragma once

#include <cstddef>
#include <cstdint>

namespace ocps {

/// Objective combined across programs (mirrored in dp_partition.hpp's
/// include of this header; defined here so the kernel TUs need nothing
/// above them).
enum class DpObjective {
  kSumCost,  ///< minimize Σ cost_i(c_i)
  kMaxCost,  ///< minimize max_i cost_i(c_i)
};

namespace dp_detail {

/// Which forward-layer implementation a solve runs on.
enum class KernelKind {
  kScalar,  ///< portable reference loop (the pinned fallback)
  kAvx2,    ///< AVX2, 8-wide over DP states with masked tails
};

/// Short stable name ("scalar" / "avx2") for logs, obs, and benches.
const char* kernel_name(KernelKind kind);

/// True when the running CPU reports AVX2 (always false off x86-64).
bool cpu_supports_avx2();

/// The kernel forward_layer() dispatches to: resolved once from
/// OCPS_SIMD + CPUID, cached for the process, overridable for tests.
KernelKind active_kernel();

/// Forces the dispatch for this process (tests and benches only; not a
/// production knob — production uses OCPS_SIMD). A forced kAvx2 on a
/// CPU without AVX2 is ignored and scalar stays active.
void set_kernel_for_testing(KernelKind kind);

/// Clears a set_kernel_for_testing() override; the next dispatch
/// re-resolves from OCPS_SIMD + CPUID.
void reset_kernel_for_testing();

/// Computes next[k] / choice[k] for k in [k_begin, k_end] (inclusive)
/// from the previous layer: next[k] = min over c in [lo, min(hi, k)] of
/// combine(prev[k-c], cost_row[c]), ties broken toward the smallest c.
/// Entries outside [k_begin, k_end] are left untouched (callers pre-fill
/// with +inf where later layers will read them). When prev_is_base the
/// previous layer is the DP base (prev[0] = 0, +inf elsewhere) and the
/// layer collapses to the closed form next[k] = combine(0, cost_row[k])
/// for k in [lo, hi] — same arithmetic, O(C) instead of O(C²).
/// Returns the number of (k, c) cells examined (for obs).
///
/// Dispatches to active_kernel(); every kernel returns bit-identical
/// next/choice/cell counts.
std::uint64_t forward_layer(DpObjective objective, const double* cost_row,
                            std::size_t lo, std::size_t hi,
                            std::size_t k_begin, std::size_t k_end,
                            bool prev_is_base, const double* prev,
                            double* next, std::uint32_t* choice);

/// The pinned portable reference kernel (identical semantics and bits to
/// the pre-SIMD forward_layer). Callable directly by parity tests.
std::uint64_t forward_layer_scalar(DpObjective objective,
                                   const double* cost_row, std::size_t lo,
                                   std::size_t hi, std::size_t k_begin,
                                   std::size_t k_end, bool prev_is_base,
                                   const double* prev, double* next,
                                   std::uint32_t* choice);

/// The AVX2 kernel. Must only be called when cpu_supports_avx2() is
/// true (the dispatcher guarantees this); on builds without AVX2
/// codegen support it compiles to a scalar passthrough.
std::uint64_t forward_layer_avx2(DpObjective objective,
                                 const double* cost_row, std::size_t lo,
                                 std::size_t hi, std::size_t k_begin,
                                 std::size_t k_end, bool prev_is_base,
                                 const double* prev, double* next,
                                 std::uint32_t* choice);

}  // namespace dp_detail

}  // namespace ocps
