# Empty compiler generated dependencies file for ocps_workloads.
# This may be replaced when dependencies are built.
