#include "util/curve.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ocps {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs,
                                 std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  OCPS_CHECK(xs_.size() == ys_.size(), "knot vectors must be parallel");
  OCPS_CHECK(!xs_.empty(), "curve needs at least one knot");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    OCPS_CHECK(xs_[i] > xs_[i - 1],
               "knot x must be strictly increasing at index " << i);
  }
}

PiecewiseLinear PiecewiseLinear::from_dense(std::vector<double> ys) {
  std::vector<double> xs(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  return PiecewiseLinear(std::move(xs), std::move(ys));
}

double PiecewiseLinear::operator()(double x) const {
  OCPS_CHECK(!xs_.empty(), "evaluating an empty curve");
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  // First knot strictly greater than x.
  auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  std::size_t lo = hi - 1;
  double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

double PiecewiseLinear::inverse(double y) const {
  OCPS_CHECK(!xs_.empty(), "inverting an empty curve");
  if (y <= ys_.front()) return xs_.front();
  if (y >= ys_.back()) return xs_.back();
  // Binary search over knots for the first knot with ys_ >= y. The curve is
  // non-decreasing by contract so std::lower_bound on ys_ is valid.
  auto it = std::lower_bound(ys_.begin(), ys_.end(), y);
  std::size_t hi = static_cast<std::size_t>(it - ys_.begin());
  OCPS_CHECK(hi > 0 && hi < ys_.size(), "inverse: search out of range");
  std::size_t lo = hi - 1;
  double dy = ys_[hi] - ys_[lo];
  if (dy <= 0) return xs_[hi];  // flat segment: smallest x attaining y
  double t = (y - ys_[lo]) / dy;
  return xs_[lo] + t * (xs_[hi] - xs_[lo]);
}

double PiecewiseLinear::x_min() const {
  OCPS_CHECK(!xs_.empty(), "empty curve");
  return xs_.front();
}

double PiecewiseLinear::x_max() const {
  OCPS_CHECK(!xs_.empty(), "empty curve");
  return xs_.back();
}

double PiecewiseLinear::y_front() const {
  OCPS_CHECK(!ys_.empty(), "empty curve");
  return ys_.front();
}

double PiecewiseLinear::y_back() const {
  OCPS_CHECK(!ys_.empty(), "empty curve");
  return ys_.back();
}

bool PiecewiseLinear::is_non_decreasing(double eps) const {
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    if (ys_[i] + eps < ys_[i - 1]) return false;
  }
  return true;
}

PiecewiseLinear PiecewiseLinear::simplify(double epsilon) const {
  OCPS_CHECK(epsilon >= 0.0, "negative simplify tolerance");
  const std::size_t n = xs_.size();
  if (n <= 2) return *this;
  std::vector<bool> keep(n, false);
  keep.front() = keep.back() = true;
  // Iterative Douglas-Peucker with vertical deviation (x is monotone, so
  // vertical distance to the chord is the interpolation error bound).
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, n - 1}};
  while (!stack.empty()) {
    auto [lo, hi] = stack.back();
    stack.pop_back();
    if (hi <= lo + 1) continue;
    double x0 = xs_[lo], y0 = ys_[lo];
    double slope = (ys_[hi] - y0) / (xs_[hi] - x0);
    double worst = epsilon;
    std::size_t worst_i = 0;
    for (std::size_t i = lo + 1; i < hi; ++i) {
      double d = std::abs(ys_[i] - (y0 + slope * (xs_[i] - x0)));
      if (d > worst) {
        worst = d;
        worst_i = i;
      }
    }
    if (worst_i != 0) {
      keep[worst_i] = true;
      stack.push_back({lo, worst_i});
      stack.push_back({worst_i, hi});
    }
  }
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) {
      xs.push_back(xs_[i]);
      ys.push_back(ys_[i]);
    }
  }
  return PiecewiseLinear(std::move(xs), std::move(ys));
}

PiecewiseLinear PiecewiseLinear::simplify_to(double epsilon,
                                             std::size_t max_knots) const {
  OCPS_CHECK(max_knots >= 2, "need at least two knots");
  PiecewiseLinear out = simplify(epsilon);
  while (out.size() > max_knots) {
    epsilon = std::max(epsilon * 2.0, 1e-9);
    out = simplify(epsilon);
  }
  return out;
}

PiecewiseLinear PiecewiseLinear::downsample(std::size_t max_knots) const {
  OCPS_CHECK(max_knots >= 2, "downsample needs at least 2 knots");
  if (xs_.size() <= max_knots) return *this;
  std::vector<double> xs, ys;
  xs.reserve(max_knots);
  ys.reserve(max_knots);
  const std::size_t n = xs_.size();
  for (std::size_t k = 0; k < max_knots; ++k) {
    // Even index spacing; endpoints exact.
    std::size_t i = (k * (n - 1)) / (max_knots - 1);
    if (!xs.empty() && xs_[i] <= xs.back()) continue;
    xs.push_back(xs_[i]);
    ys.push_back(ys_[i]);
  }
  return PiecewiseLinear(std::move(xs), std::move(ys));
}

}  // namespace ocps
