
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locality/crd.cpp" "src/locality/CMakeFiles/ocps_locality.dir/crd.cpp.o" "gcc" "src/locality/CMakeFiles/ocps_locality.dir/crd.cpp.o.d"
  "/root/repo/src/locality/footprint.cpp" "src/locality/CMakeFiles/ocps_locality.dir/footprint.cpp.o" "gcc" "src/locality/CMakeFiles/ocps_locality.dir/footprint.cpp.o.d"
  "/root/repo/src/locality/footprint_io.cpp" "src/locality/CMakeFiles/ocps_locality.dir/footprint_io.cpp.o" "gcc" "src/locality/CMakeFiles/ocps_locality.dir/footprint_io.cpp.o.d"
  "/root/repo/src/locality/hotl.cpp" "src/locality/CMakeFiles/ocps_locality.dir/hotl.cpp.o" "gcc" "src/locality/CMakeFiles/ocps_locality.dir/hotl.cpp.o.d"
  "/root/repo/src/locality/mrc.cpp" "src/locality/CMakeFiles/ocps_locality.dir/mrc.cpp.o" "gcc" "src/locality/CMakeFiles/ocps_locality.dir/mrc.cpp.o.d"
  "/root/repo/src/locality/phases.cpp" "src/locality/CMakeFiles/ocps_locality.dir/phases.cpp.o" "gcc" "src/locality/CMakeFiles/ocps_locality.dir/phases.cpp.o.d"
  "/root/repo/src/locality/reuse_distance.cpp" "src/locality/CMakeFiles/ocps_locality.dir/reuse_distance.cpp.o" "gcc" "src/locality/CMakeFiles/ocps_locality.dir/reuse_distance.cpp.o.d"
  "/root/repo/src/locality/reuse_time.cpp" "src/locality/CMakeFiles/ocps_locality.dir/reuse_time.cpp.o" "gcc" "src/locality/CMakeFiles/ocps_locality.dir/reuse_time.cpp.o.d"
  "/root/repo/src/locality/sampling.cpp" "src/locality/CMakeFiles/ocps_locality.dir/sampling.cpp.o" "gcc" "src/locality/CMakeFiles/ocps_locality.dir/sampling.cpp.o.d"
  "/root/repo/src/locality/shards.cpp" "src/locality/CMakeFiles/ocps_locality.dir/shards.cpp.o" "gcc" "src/locality/CMakeFiles/ocps_locality.dir/shards.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ocps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ocps_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
