# Empty compiler generated dependencies file for memcached_lama.
# This may be replaced when dependencies are built.
