// Tests for the DP optimal partitioner and the STTW comparator.
#include <gtest/gtest.h>

#include "core/dp_partition.hpp"
#include "core/sttw.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ocps {
namespace {

// Random non-increasing cost curve in [0, 1] with occasional cliffs.
std::vector<double> random_cost_curve(Rng& rng, std::size_t capacity,
                                      bool with_cliffs) {
  std::vector<double> cost(capacity + 1);
  double v = 1.0;
  for (std::size_t c = 0; c <= capacity; ++c) {
    cost[c] = v;
    double step = rng.uniform() * 0.1;
    if (with_cliffs && rng.chance(0.15)) step += rng.uniform() * 0.4;
    v = std::max(0.0, v - step);
  }
  return cost;
}

CostMatrix random_cost_matrix(Rng& rng, std::size_t programs,
                              std::size_t capacity, bool with_cliffs) {
  CostMatrix cost(programs, capacity);
  for (std::size_t i = 0; i < programs; ++i) {
    auto row = random_cost_curve(rng, capacity, with_cliffs);
    std::copy(row.begin(), row.end(), cost.row(i));
  }
  return cost;
}

CostMatrix make_cost(const std::vector<std::vector<double>>& rows) {
  return CostMatrix::from_rows(rows, rows.front().size() - 1);
}

double sum_cost(CostMatrixView cost, const std::vector<std::size_t>& alloc) {
  double s = 0.0;
  for (std::size_t i = 0; i < cost.rows(); ++i) s += cost(i, alloc[i]);
  return s;
}

TEST(Dp, TrivialSingleProgramTakesWholeCache) {
  CostMatrix cost = make_cost({{1.0, 0.5, 0.2, 0.1}});
  DpResult r = optimize_partition(cost.view(), 3);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.alloc, (std::vector<std::size_t>{3}));
  EXPECT_DOUBLE_EQ(r.objective_value, 0.1);
}

TEST(Dp, PicksTheCliffOverTheSlope) {
  // Program 0: no benefit from cache. Program 1: cliff at 3.
  CostMatrix cost = make_cost({
      {1.0, 0.99, 0.98, 0.97},
      {1.0, 1.0, 1.0, 0.0},
  });
  DpResult r = optimize_partition(cost.view(), 3);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.alloc, (std::vector<std::size_t>{0, 3}));
  EXPECT_DOUBLE_EQ(r.objective_value, 1.0);
}

TEST(Dp, AllocationAlwaysSumsToCapacity) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t p = 2 + rng.below(4);
    std::size_t cap = 5 + rng.below(30);
    CostMatrix cost = random_cost_matrix(rng, p, cap, true);
    DpResult r = optimize_partition(cost.view(), cap);
    ASSERT_TRUE(r.feasible);
    std::size_t total = 0;
    for (auto c : r.alloc) total += c;
    EXPECT_EQ(total, cap);
    EXPECT_NEAR(r.objective_value, sum_cost(cost.view(), r.alloc), 1e-12);
  }
}

// Property: DP equals the exhaustive optimum across random instances, with
// and without cliffs, sum and max objectives.
class DpOracleProperty
    : public ::testing::TestWithParam<std::tuple<int, bool, DpObjective>> {};

TEST_P(DpOracleProperty, MatchesExhaustiveSearch) {
  auto [seed, cliffs, objective] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  std::size_t p = 2 + rng.below(3);   // 2..4 programs
  std::size_t cap = 4 + rng.below(9); // 4..12 units
  CostMatrix cost = random_cost_matrix(rng, p, cap, cliffs);

  DpOptions opt;
  opt.objective = objective;
  DpResult dp = optimize_partition(cost.view(), cap, opt);
  DpResult brute = optimize_partition_exhaustive(cost.view(), cap, opt);
  ASSERT_TRUE(dp.feasible);
  ASSERT_TRUE(brute.feasible);
  EXPECT_NEAR(dp.objective_value, brute.objective_value, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DpOracleProperty,
    ::testing::Combine(::testing::Range(0, 12), ::testing::Bool(),
                       ::testing::Values(DpObjective::kSumCost,
                                         DpObjective::kMaxCost)));

TEST(Dp, RespectsLowerAndUpperBounds) {
  Rng rng(5);
  CostMatrix cost = random_cost_matrix(rng, 3, 12, true);
  DpOptions opt;
  opt.min_alloc = {2, 0, 3};
  opt.max_alloc = {5, 4, 12};
  DpResult r = optimize_partition(cost.view(), 12, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.alloc[0], 2u);
  EXPECT_LE(r.alloc[0], 5u);
  EXPECT_LE(r.alloc[1], 4u);
  EXPECT_GE(r.alloc[2], 3u);
  DpResult brute = optimize_partition_exhaustive(cost.view(), 12, opt);
  EXPECT_NEAR(r.objective_value, brute.objective_value, 1e-12);
}

TEST(Dp, ReportsInfeasibleBounds) {
  CostMatrix cost = make_cost({{1.0, 0.5}, {1.0, 0.5}});
  DpOptions opt;
  opt.min_alloc = {1, 1};  // needs 2 units, capacity is 1
  DpResult r = optimize_partition(cost.view(), 1, opt);
  EXPECT_FALSE(r.feasible);
  opt.min_alloc = {2, 0};  // lower bound above capacity
  EXPECT_FALSE(optimize_partition(cost.view(), 1, opt).feasible);
}

TEST(Dp, ScratchReuseMatchesFreshSolves) {
  // A shared scratch across back-to-back solves of assorted shapes must
  // not change any result, and must stop growing once warm.
  Rng rng(17);
  DpScratch scratch;
  for (int trial = 0; trial < 10; ++trial) {
    std::size_t p = 1 + rng.below(4);
    std::size_t cap = 4 + rng.below(12);
    CostMatrix cost = random_cost_matrix(rng, p, cap, true);
    DpResult fresh = optimize_partition(cost.view(), cap);
    DpResult reused = optimize_partition(cost.view(), cap, {}, scratch);
    ASSERT_EQ(fresh.feasible, reused.feasible);
    EXPECT_EQ(fresh.alloc, reused.alloc);
    EXPECT_EQ(fresh.objective_value, reused.objective_value);
  }
  std::uint64_t grown = scratch.grow_events;
  Rng rng2(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::size_t p = 1 + rng2.below(4);
    std::size_t cap = 4 + rng2.below(12);
    CostMatrix cost = random_cost_matrix(rng2, p, cap, true);
    optimize_partition(cost.view(), cap, {}, scratch);
  }
  EXPECT_EQ(scratch.grow_events, grown);  // warm arena: no reallocation
}

TEST(Dp, MaxObjectiveBalancesWorstCase) {
  // Sum objective starves program 0 (its curve is flat); max objective
  // must not.
  CostMatrix cost = make_cost({
      {0.5, 0.45, 0.4, 0.35, 0.3},
      {1.0, 0.1, 0.05, 0.01, 0.0},
  });
  DpOptions max_opt;
  max_opt.objective = DpObjective::kMaxCost;
  DpResult r = optimize_partition(cost.view(), 4, max_opt);
  ASSERT_TRUE(r.feasible);
  // Giving everything to program 1 leaves max = 0.5; optimum gives program
  // 0 most units: alloc {3,1} -> max(0.35, 0.1) = 0.35.
  EXPECT_NEAR(r.objective_value, 0.35, 1e-12);
}

TEST(Dp, WeightedCostMatrix) {
  MissRatioCurve a({1.0, 0.5, 0.25}, 100);
  MissRatioCurve b({1.0, 0.8, 0.6}, 100);
  CostMatrix cost = weighted_cost_matrix({&a, &b}, {2.0, 1.0}, 2);
  EXPECT_DOUBLE_EQ(cost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(cost(1, 2), 0.6);
  EXPECT_THROW(weighted_cost_matrix({&a}, {1.0, 2.0}, 2), CheckError);
}

TEST(Dp, RejectsShortCostCurves) {
  CostMatrix cost = make_cost({{1.0, 0.5}});
  EXPECT_THROW(optimize_partition(cost.view(), 5), CheckError);
}

TEST(Dp, GatheredViewMatchesContiguous) {
  // A gathered view over out-of-order rows of a bigger table must solve
  // exactly like a contiguous copy of those rows.
  Rng rng(71);
  CostMatrix table = random_cost_matrix(rng, 6, 10, true);
  std::vector<std::uint32_t> members = {4, 1, 5};
  std::vector<const double*> ptrs;
  CostMatrixView gathered = table.gather(members.data(), members.size(), ptrs);
  CostMatrix copied(members.size(), 10);
  for (std::size_t i = 0; i < members.size(); ++i)
    std::copy(table.row(members[i]), table.row(members[i]) + 11,
              copied.row(i));
  DpResult a = optimize_partition(gathered, 10);
  DpResult b = optimize_partition(copied.view(), 10);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.alloc, b.alloc);
  EXPECT_EQ(a.objective_value, b.objective_value);
}

// CostMatrix::from_rows is the migration path for nested-vector callers
// (the deprecated shims were removed as announced); pin its semantics.
TEST(Dp, FromRowsMatchesWeightedCostMatrix) {
  MissRatioCurve a({1.0, 0.5, 0.25}, 100);
  MissRatioCurve b({1.0, 0.8, 0.6}, 100);
  CostMatrix matrix = weighted_cost_matrix({&a, &b}, {2.0, 1.0}, 2);
  std::vector<std::vector<double>> nested(2);
  for (std::size_t i = 0; i < 2; ++i) {
    const MissRatioCurve& mrc = i == 0 ? a : b;
    double w = i == 0 ? 2.0 : 1.0;
    for (std::size_t c = 0; c <= 2; ++c)
      nested[i].push_back(w * mrc.ratio(c));
  }
  CostMatrix from_rows = CostMatrix::from_rows(nested, 2);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t c = 0; c <= 2; ++c)
      EXPECT_EQ(from_rows(i, c), matrix(i, c));

  // Rows longer than capacity+1 are truncated, shorter ones rejected.
  EXPECT_NO_THROW(CostMatrix::from_rows({{1.0, 0.5, 0.2, 0.1}}, 2));
  EXPECT_THROW(CostMatrix::from_rows({{1.0, 0.5}}, 2), CheckError);
}

TEST(Sttw, EqualsDpOnConvexCurves) {
  // Strictly convex curves: the greedy is provably optimal — in both
  // variants (the hull of a convex curve is itself).
  auto convex = [](double scale, std::size_t cap) {
    std::vector<double> cost(cap + 1);
    for (std::size_t c = 0; c <= cap; ++c)
      cost[c] = scale / (1.0 + static_cast<double>(c));
    return cost;
  };
  for (std::size_t cap : {5u, 10u, 20u}) {
    CostMatrix cost = make_cost(
        {convex(1.0, cap), convex(2.0, cap), convex(0.5, cap)});
    DpResult dp = optimize_partition(cost.view(), cap);
    for (SttwVariant v :
         {SttwVariant::kLocalDerivative, SttwVariant::kConvexHull}) {
      SttwResult sttw = sttw_partition(cost.view(), cap, v);
      EXPECT_NEAR(sttw.objective_value, dp.objective_value, 1e-9)
          << "cap=" << cap;
    }
  }
}

TEST(Sttw, NeverBeatsDp) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    std::size_t p = 2 + rng.below(3);
    std::size_t cap = 4 + rng.below(12);
    CostMatrix cost = random_cost_matrix(rng, p, cap, true);
    DpResult dp = optimize_partition(cost.view(), cap);
    for (SttwVariant v :
         {SttwVariant::kLocalDerivative, SttwVariant::kConvexHull}) {
      SttwResult sttw = sttw_partition(cost.view(), cap, v);
      EXPECT_GE(sttw.objective_value + 1e-12, dp.objective_value);
    }
  }
}

TEST(Sttw, LocalDerivativeIsBlindToCliffsBehindPlateaus) {
  // The faithful Stone et al. rule: program 1's plateau shows zero local
  // marginal, so the greedy starves it even though the cliff at 4 is the
  // single best investment. The hull variant sees the chord and fills it.
  CostMatrix cost = make_cost({
      {1.0, 0.95, 0.91, 0.88, 0.86},
      {1.0, 1.0, 1.0, 1.0, 0.0},
  });
  SttwResult classic =
      sttw_partition(cost.view(), 4, SttwVariant::kLocalDerivative);
  EXPECT_EQ(classic.alloc[1], 0u);  // cliff never discovered
  SttwResult hull = sttw_partition(cost.view(), 4, SttwVariant::kConvexHull);
  EXPECT_EQ(hull.alloc[1], 4u);  // hull chord slope 0.25 beats 0.05
  DpResult dp = optimize_partition(cost.view(), 4);
  EXPECT_NEAR(hull.objective_value, dp.objective_value, 1e-12);
  EXPECT_GT(classic.objective_value, dp.objective_value + 0.5);
}

TEST(Sttw, LosesOnCliffCurves) {
  // The paper's headline failure: a cliff the hull smooths away. Program 1
  // has a cliff at 4; program 0 has a gentle convex slope that the greedy
  // (looking at hulls) over-feeds.
  CostMatrix cost = make_cost({
      {1.0, 0.70, 0.45, 0.25, 0.10},
      {1.0, 1.0, 1.0, 1.0, 0.0},
  });
  DpResult dp = optimize_partition(cost.view(), 4);
  // DP grabs the cliff: alloc {0,4}, objective 1.0.
  EXPECT_NEAR(dp.objective_value, 1.0, 1e-12);
  // Both variants miss it here: the classic rule sees a zero marginal on
  // the plateau; the hull variant's chord (0.25/unit) ties program 0's
  // early marginals and the budget runs out mid-chord.
  for (SttwVariant v :
       {SttwVariant::kLocalDerivative, SttwVariant::kConvexHull}) {
    SttwResult sttw = sttw_partition(cost.view(), 4, v);
    EXPECT_GT(sttw.objective_value, dp.objective_value + 0.05);
  }
}

TEST(Sttw, AllocSumsToCapacity) {
  Rng rng(99);
  CostMatrix cost = random_cost_matrix(rng, 4, 16, true);
  SttwResult r = sttw_partition(cost.view(), 16);
  std::size_t total = 0;
  for (auto c : r.alloc) total += c;
  EXPECT_EQ(total, 16u);
}

TEST(Sttw, BelievedObjectiveLowerBoundsTrueObjective) {
  Rng rng(123);
  CostMatrix cost = random_cost_matrix(rng, 3, 10, true);
  SttwResult hull = sttw_partition(cost.view(), 10, SttwVariant::kConvexHull);
  EXPECT_LE(hull.believed_objective_value, hull.objective_value + 1e-12);
  // The classic rule believes the raw curve, so belief == truth.
  SttwResult classic =
      sttw_partition(cost.view(), 10, SttwVariant::kLocalDerivative);
  EXPECT_NEAR(classic.believed_objective_value, classic.objective_value,
              1e-12);
}

}  // namespace
}  // namespace ocps
