// Example: co-run scheduling onto multiple caches (§II scenario 1 — the
// "program symbiosis" problem). Eight programs from the SPEC-like suite
// must be placed on two sockets, each with its own shared cache. The
// composition theory predicts every grouping's miss ratio from per-program
// profiles alone, so the scheduler needs 8 profiles, not C(8,4) co-run
// measurements.
#include <iostream>

#include "ocps.hpp"

using namespace ocps;

int main() {
  SuiteOptions options = suite_options_from_env();
  options.trace_length = std::min<std::size_t>(options.trace_length, 200000);
  Suite suite = build_spec2006_suite(options);

  const std::vector<std::string> chosen = {"lbm",   "mcf",    "omnetpp",
                                           "namd",  "povray", "sphinx3",
                                           "sjeng", "hmmer"};
  std::vector<const ProgramModel*> programs;
  for (const auto& name : chosen) programs.push_back(&suite.by_name(name));

  const std::size_t caches = 2;
  const std::size_t capacity = options.capacity;

  auto s1 = search_space_sharing(chosen.size(), caches);
  std::cout << "Scheduling " << chosen.size() << " programs on " << caches
            << " caches of " << capacity << " units ("
            << (s1 ? to_string_u128(*s1) : std::string("?"))
            << " non-empty groupings, Eq. 1).\n\n";

  Schedule best = best_schedule_exhaustive(programs, caches, capacity);
  Schedule greedy = best_schedule_greedy(programs, caches, capacity);
  Schedule partitioned = best_schedule_partitioned(programs, caches, capacity);

  // A deliberately bad schedule for contrast: all heavy programs together.
  std::vector<std::uint32_t> naive = {0, 0, 0, 1, 1, 0, 1, 1};
  Schedule bad = evaluate_schedule(programs, naive, caches, capacity);

  TextTable t({"schedule", "overall mr", "cache 0", "cache 1"});
  auto describe = [&](const Schedule& s) {
    std::string by_cache[2];
    for (std::size_t i = 0; i < chosen.size(); ++i) {
      auto& slot = by_cache[s.cache_of[i]];
      if (!slot.empty()) slot += "+";
      slot += chosen[i];
    }
    return std::pair{by_cache[0], by_cache[1]};
  };
  auto add = [&](const std::string& name, const Schedule& s) {
    auto [c0, c1] = describe(s);
    t.add_row({name, TextTable::num(s.overall_mr, 5), c0, c1});
  };
  add("exhaustive optimum (shared caches)", best);
  add("greedy heuristic (shared caches)", greedy);
  add("exhaustive + per-cache DP partitions", partitioned);
  add("naive (heavy together)", bad);
  t.print(std::cout);

  std::cout << "\nPer-program predicted miss ratios (optimum):\n";
  for (std::size_t i = 0; i < chosen.size(); ++i)
    std::cout << "  " << chosen[i] << " -> cache " << best.cache_of[i]
              << ", mr " << TextTable::num(best.per_program_mr[i], 4)
              << "\n";
  std::cout << "\nThe optimum separates the cache-hungry programs (lbm, "
               "sphinx3, mcf, omnetpp) across sockets and pairs them with "
               "small-footprint programs — the symbiosis the paper's "
               "composition theory makes computable.\n";
  return 0;
}
