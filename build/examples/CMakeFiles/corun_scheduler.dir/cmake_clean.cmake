file(REMOVE_RECURSE
  "CMakeFiles/corun_scheduler.dir/corun_scheduler.cpp.o"
  "CMakeFiles/corun_scheduler.dir/corun_scheduler.cpp.o.d"
  "corun_scheduler"
  "corun_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corun_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
