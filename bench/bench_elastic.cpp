// Extension bench (the paper's [18], RECU): elastic cache utility. Every
// program in a co-run group receives a QoS contract — a miss-ratio
// ceiling equal to (1 + slack) times its miss ratio at a fair share — and
// the optimizer maximizes group throughput over the remaining elastic
// space. Sweeping the slack traces the guarantee/throughput frontier
// between strict per-program protection (slack 0) and the unconstrained
// optimum (slack infinity).
#include <iostream>

#include "combinatorics/enumerate.hpp"
#include "common.hpp"
#include "core/elastic.hpp"
#include "util/stats.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Suite suite = load_suite();
  const std::size_t capacity = suite.options.capacity;
  CostMatrix unit_costs = precompute_unit_cost_matrix(suite.models, capacity);
  auto groups =
      all_subsets(static_cast<std::uint32_t>(suite.models.size()), 4);
  std::size_t stride = std::max<std::size_t>(1, groups.size() / 150);

  std::cout << "=== Extension: elastic cache utility (RECU-style QoS "
               "contracts), C=" << capacity << " ===\n\n";
  TextTable t({"QoS slack", "feasible groups", "avg group mr",
               "avg elastic units", "avg reserved units"});

  const double slacks[] = {0.0, 0.05, 0.2, 0.5, 1.0, 1e9};
  for (double slack : slacks) {
    std::size_t feasible = 0, total = 0;
    std::vector<double> mrs, elastic_units, reserved_units;
    for (std::size_t gi = 0; gi < groups.size(); gi += stride) {
      const auto& members = groups[gi];
      std::vector<const ProgramModel*> ptrs;
      std::vector<const double*> rows;
      for (auto m : members) ptrs.push_back(&suite.models[m]);
      CostMatrixView cost =
          unit_costs.gather(members.data(), members.size(), rows);
      CoRunGroup group(ptrs);
      ++total;

      std::vector<ElasticDemand> demands(group.size());
      std::size_t fair = capacity / group.size();
      for (std::size_t i = 0; i < group.size(); ++i) {
        double fair_mr = group[i].mrc.ratio(fair);
        demands[i].max_miss_ratio =
            std::min(1.0, fair_mr * (1.0 + slack));
      }
      ElasticResult r = optimize_elastic(group, cost, capacity, demands);
      if (!r.feasible) continue;
      ++feasible;
      mrs.push_back(r.group_mr);
      elastic_units.push_back(static_cast<double>(r.elastic_units));
      double reserved = 0.0;
      for (auto u : r.reserved) reserved += static_cast<double>(u);
      reserved_units.push_back(reserved);
    }
    std::string label = slack >= 1e8 ? "unlimited" :
        TextTable::pct(slack, 0) + " above fair-share mr";
    t.add_row({label,
               std::to_string(feasible) + "/" + std::to_string(total),
               TextTable::num(mean_of(mrs), 5),
               TextTable::num(mean_of(elastic_units), 0),
               TextTable::num(mean_of(reserved_units), 0)});
  }
  emit_table(t, "elastic");

  std::cout << "\nExpected: tighter contracts reserve more units and cost "
               "throughput; the unlimited row equals the unconstrained "
               "Optimal. The frontier between them is the elastic-utility "
               "trade-off RECU exploits (paper §IX, citation [18]).\n";
  return 0;
}
