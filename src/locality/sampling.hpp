// Bursty footprint sampling, after Wang et al.'s adaptive bursty footprint
// (ABF) profiling (§VII-A: full-trace profiling costs ~23x slowdown; ABF
// takes ~0.09s per program).
//
// Instead of profiling the whole trace, the sampler alternates bursts
// (windows it profiles) with gaps (windows it skips). Each burst yields an
// independent reuse/footprint estimate; averaging the per-burst footprint
// curves estimates the full-trace footprint at a fraction of the cost.
// The estimate is exact for stationary workloads as burst length grows;
// the bench (bench_ablation_sampling) quantifies the accuracy/cost
// trade-off that justifies the paper's use of full traces only "to have
// reproducible results".
#pragma once

#include <cstdint>

#include "locality/footprint.hpp"
#include "trace/trace.hpp"

namespace ocps {

/// Burst/gap schedule.
struct SamplingConfig {
  std::size_t burst_length = 20000;  ///< accesses profiled per burst
  std::size_t gap_length = 80000;    ///< accesses skipped between bursts
  /// Jitter the gap lengths (uniform in [0.5, 1.5] * gap_length) to avoid
  /// aliasing with periodic program phases; 0 disables.
  std::uint64_t jitter_seed = 0;
};

/// Result of a sampled profile.
struct SampledFootprint {
  FootprintCurve footprint;       ///< averaged over bursts; window range
                                  ///  limited to the burst length
  std::size_t bursts = 0;         ///< bursts taken
  std::size_t profiled_accesses = 0;  ///< total accesses actually profiled
  double sampling_fraction = 0.0;     ///< profiled / trace length
};

/// Profiles the trace under the burst schedule. The returned footprint is
/// defined for windows up to the burst length (longer windows cannot be
/// observed inside a burst). Throws CheckError on a degenerate schedule.
SampledFootprint sampled_footprint(const Trace& trace,
                                   const SamplingConfig& config);

/// Convenience: maximum absolute footprint error vs a reference curve,
/// evaluated on the sampled curve's window range. Used by tests and the
/// ablation bench.
double footprint_max_error(const FootprintCurve& reference,
                           const FootprintCurve& sampled);

}  // namespace ocps
