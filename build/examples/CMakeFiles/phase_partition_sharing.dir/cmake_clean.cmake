file(REMOVE_RECURSE
  "CMakeFiles/phase_partition_sharing.dir/phase_partition_sharing.cpp.o"
  "CMakeFiles/phase_partition_sharing.dir/phase_partition_sharing.cpp.o.d"
  "phase_partition_sharing"
  "phase_partition_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_partition_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
