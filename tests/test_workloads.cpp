// Tests for the SPEC-like workload suite and suite profiling.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "workloads/spec_like.hpp"
#include "workloads/suite.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

SuiteOptions small_options() {
  SuiteOptions opt;
  opt.trace_length = 30000;
  opt.capacity = 256;
  return opt;
}

TEST(SpecLike, SixteenProgramsWithUniqueNames) {
  const auto& suite = spec2006_suite();
  EXPECT_EQ(suite.size(), 16u);
  std::set<std::string> names;
  for (const auto& s : suite) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_GT(s.access_rate, 0.0);
  }
  // The paper's §VII-A listing.
  for (const char* name :
       {"perlbench", "bzip2", "mcf", "zeusmp", "namd", "dealII", "soplex",
        "povray", "hmmer", "sjeng", "h264ref", "tonto", "lbm", "omnetpp",
        "wrf", "sphinx3"})
    EXPECT_EQ(names.count(name), 1u) << name;
}

TEST(SpecLike, FindWorkloadByName) {
  EXPECT_EQ(find_workload("mcf").name, "mcf");
  EXPECT_THROW(find_workload("nonexistent"), CheckError);
}

TEST(SpecLike, GeneratorsAreDeterministic) {
  for (const auto& spec : spec2006_suite()) {
    Trace a = spec.generate(5000);
    Trace b = spec.generate(5000);
    EXPECT_EQ(a.accesses, b.accesses) << spec.name;
    EXPECT_GT(a.length(), 0u) << spec.name;
  }
}

TEST(Suite, BuildsModelsForAllPrograms) {
  Suite suite = build_spec2006_suite(small_options());
  ASSERT_EQ(suite.models.size(), 16u);
  for (const auto& m : suite.models) {
    EXPECT_GT(m.trace_length, 0u) << m.name;
    EXPECT_GT(m.distinct, 0u) << m.name;
    EXPECT_TRUE(m.mrc.is_non_increasing(1e-9)) << m.name;
    EXPECT_DOUBLE_EQ(m.mrc.ratio(0), 1.0) << m.name;
    EXPECT_EQ(m.mrc.capacity(), small_options().capacity) << m.name;
  }
}

TEST(Suite, LookupByName) {
  Suite suite = build_spec2006_suite(small_options());
  EXPECT_EQ(suite.by_name("lbm").name, "lbm");
  EXPECT_EQ(suite.index_of("perlbench"), 0u);
  EXPECT_THROW(suite.index_of("missing"), CheckError);
}

TEST(Suite, LocalityClassesComeOutAsDesigned) {
  SuiteOptions opt;
  opt.trace_length = 60000;
  opt.capacity = 1024;
  Suite suite = build_spec2006_suite(opt);

  // mcf is a hot set plus a long background scan: a miss-ratio plateau
  // with a hard non-convex drop near 920 units (the STTW breaker).
  const auto& mcf = suite.by_name("mcf").mrc;
  EXPECT_FALSE(mcf.is_convex(1e-6));
  EXPECT_GT(mcf.ratio(300), 0.07);               // on the plateau
  EXPECT_LT(mcf.ratio(1000), mcf.ratio(300) / 2);  // past the cliff

  // povray's tiny working set is near-zero miss ratio at modest sizes.
  EXPECT_LT(suite.by_name("povray").mrc.ratio(128), 0.01);

  // lbm keeps missing even with a large share (big data, long tail) and
  // its MRC keeps decreasing — the classic sharing gainer.
  const auto& lbm = suite.by_name("lbm").mrc;
  EXPECT_GT(lbm.ratio(256), 0.04);
  EXPECT_GT(lbm.ratio(256), lbm.ratio(1024) + 0.01);

  // soplex has two scans: two distinct plateau drops (multi-cliff). The
  // first scan's stack distance includes the other components it
  // interleaves with (240 own + 90 hot + ~240 of the second scan), so the
  // cliffs land near 570 and 950 units.
  const auto& soplex = suite.by_name("soplex").mrc;
  EXPECT_GT(soplex.ratio(500), soplex.ratio(640) + 0.03);
  EXPECT_GT(soplex.ratio(640), soplex.ratio(1010) + 0.03);
}

TEST(Suite, TraceRegenerationMatchesModels) {
  SuiteOptions opt = small_options();
  Suite suite = build_spec2006_suite(opt);
  Trace t = suite_trace(suite, suite.index_of("mcf"));
  EXPECT_EQ(t.length() > 0, true);
  // Regenerated trace has the same distinct count the model recorded.
  EXPECT_EQ(t.distinct_blocks(), suite.by_name("mcf").distinct);
}

TEST(Suite, DiskCacheRoundTrips) {
  SuiteOptions opt = small_options();
  opt.cache_dir =
      (std::filesystem::temp_directory_path() / "ocps_suite_cache").string();
  std::filesystem::remove_all(opt.cache_dir);

  Suite first = build_spec2006_suite(opt);   // writes cache
  Suite second = build_spec2006_suite(opt);  // reads cache
  ASSERT_EQ(first.models.size(), second.models.size());
  for (std::size_t i = 0; i < first.models.size(); ++i) {
    const auto& a = first.models[i];
    const auto& b = second.models[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.distinct, b.distinct);
    // The cached model re-derives its MRC from the 4096-knot footprint
    // file, so cliffy curves pick up a little downsampling smoothing.
    for (std::size_t c = 0; c <= opt.capacity; c += 16)
      EXPECT_NEAR(a.mrc.ratio(c), b.mrc.ratio(c), 0.03)
          << a.name << " c=" << c;
  }
  std::filesystem::remove_all(opt.cache_dir);
}

TEST(Suite, EnvOptionsParsed) {
  setenv("OCPS_TRACE_LENGTH", "12345", 1);
  setenv("OCPS_CAPACITY", "77", 1);
  SuiteOptions opt = suite_options_from_env();
  EXPECT_EQ(opt.trace_length, 12345u);
  EXPECT_EQ(opt.capacity, 77u);
  unsetenv("OCPS_TRACE_LENGTH");
  unsetenv("OCPS_CAPACITY");
}

}  // namespace
}  // namespace ocps
