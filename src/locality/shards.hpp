// Spatially-sampled stack distances (the SHARDS technique: sampled
// hash-based reuse distance analysis).
//
// Full stack-distance profiling touches every access. Spatial sampling
// instead tracks only the blocks whose hash falls under a threshold
// (sampling rate R): references to sampled blocks are an R-fraction of
// all references in expectation, and the sampled stack holds ~R times the
// true distinct count, so a sampled depth d estimates a true depth d / R.
// Miss ratios follow without knowing R's normalization:
//
//   mr(c) ~= (sampled cold + #{sampled accesses with depth > c*R})
//            / (# sampled accesses).
//
// This is the tunable-cost online MRC estimator behind the paper's
// "we assume the data can be collected in real time" (§VIII Practicality)
// and the estimator the online repartitioning controller uses.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "locality/mrc.hpp"
#include "locality/reuse_distance.hpp"
#include "trace/trace.hpp"

namespace ocps {

/// Streaming sampled stack-distance profiler. Feed accesses with
/// observe(); read an MRC estimate at any time (lazy O(s log s) over the
/// s sampled accesses, amortized by caching).
class ShardsProfiler {
 public:
  /// rate in (0, 1]: the fraction of blocks tracked. rate == 1 reproduces
  /// exact stack distances.
  explicit ShardsProfiler(double rate, std::uint64_t seed = 0xCAFE);

  /// Processes one access (cheap: one hash; a push if sampled).
  void observe(Block b);

  /// Number of accesses observed so far (sampled or not).
  std::uint64_t accesses() const { return accesses_; }
  /// Accesses that hit the sample set (cost proxy).
  std::uint64_t sampled_accesses() const { return sampled_trace_.size(); }
  double rate() const { return rate_; }
  /// Measured per-block sampling fraction (falls back to the nominal rate
  /// before anything distinct is seen).
  double effective_rate() const;

  /// Estimated miss-ratio curve for cache sizes 0..capacity (true-block
  /// units). Returns an all-miss curve when nothing was sampled yet.
  MissRatioCurve estimate_mrc(std::size_t capacity) const;

  /// Resets all state (e.g. at an epoch boundary).
  void reset();

 private:
  bool sampled(Block b) const;
  const StackDistanceHistogram& histogram() const;

  double rate_;
  std::uint64_t threshold_;
  std::uint64_t salt_;
  std::uint64_t accesses_ = 0;
  std::vector<Block> sampled_trace_;
  // Exact distinct-block tracking: the estimator scales sampled depths by
  // the *measured* per-block sampling fraction (sampled distinct / total
  // distinct) rather than the nominal rate, which removes the bias the
  // nominal rate has when the block population is small.
  std::unordered_set<Block> distinct_;

  // Lazy histogram cache.
  mutable StackDistanceHistogram hist_;
  mutable std::size_t hist_valid_for_ = 0;
};

/// One-shot convenience: sampled MRC of a whole trace.
MissRatioCurve shards_mrc(const Trace& trace, double rate,
                          std::size_t capacity, std::uint64_t seed = 0xCAFE);

}  // namespace ocps
