// Miss-ratio composition (§IV) and the Natural Cache Partition (§V-A).
//
// When programs interleave, each program's footprint is horizontally
// stretched by its share of the access stream (Eq. 9):
//
//   fp_group(w) = Σ_i fp_i(w · r_i / Σr).
//
// The Natural Cache Partition is the vector of steady-state occupancies:
// pick the window length w* at which the group footprint equals the cache
// size C; program i's occupancy is its stretched footprint there
// (Fig. 4). Under the Natural Partition Assumption each program's miss
// ratio in the shared cache equals its solo miss ratio at its natural
// occupancy, which reduces partition-sharing to partitioning (§V).
#pragma once

#include <vector>

#include "core/program_model.hpp"

namespace ocps {

/// A co-run group: non-owning view over program models.
struct CoRunGroup {
  std::vector<const ProgramModel*> members;

  explicit CoRunGroup(std::vector<const ProgramModel*> m);

  std::size_t size() const { return members.size(); }
  const ProgramModel& operator[](std::size_t i) const { return *members[i]; }

  /// Access-rate share f_i = r_i / Σr of each member.
  std::vector<double> rate_shares() const;

  /// Group footprint at interleaved window length w (Eq. 9).
  double footprint(double w) const;

  /// Smallest interleaved window length with group footprint >= target;
  /// saturates at the longest stretched window when the target exceeds the
  /// combined data size.
  double window_for_footprint(double target) const;
};

/// The natural partition: per-member fractional occupancies c_i at the
/// window where the group footprint equals cache_size. Occupancies sum to
/// min(cache_size, Σ m_i): a cache bigger than the combined data is not
/// fully occupied, in which case every program holds all its data.
std::vector<double> natural_partition(const CoRunGroup& group,
                                      double cache_size);

/// Rounds fractional occupancies to integers summing to `capacity` units
/// (largest-remainder apportionment), e.g. to drive the partitioned-cache
/// simulator. When the fractional sum is below capacity the leftover units
/// are given to the largest occupant (they are unused anyway).
std::vector<std::size_t> integerize_partition(const std::vector<double>& c,
                                              std::size_t capacity);

/// Per-program shared-cache miss ratios under the Natural Partition
/// Assumption: mr_i(c_i^natural) from each solo MRC.
std::vector<double> predict_shared_miss_ratios(const CoRunGroup& group,
                                               double cache_size);

/// Group (access-weighted) miss ratio from per-program ratios.
double group_miss_ratio(const CoRunGroup& group,
                        const std::vector<double>& per_program_mr);

/// Direct Eq. 11 group miss ratio: fp_group(w*+1) - C at fp_group(w*) = C,
/// floored at the group cold-miss ratio. Agrees with the occupancy route
/// up to interpolation error; exposed for validation.
double predict_group_miss_ratio_direct(const CoRunGroup& group,
                                       double cache_size);

}  // namespace ocps
