// Fault-tolerant front tier for a fleet of partition-service daemons
// (`ocps router`).
//
// One daemon is a single point of failure; the ROADMAP north-star is a
// fleet. The router speaks the exact same line-delimited JSON protocol
// as the daemons on its front listeners (Unix socket and/or TCP), so
// every existing client works unchanged, and spreads the work across N
// backends:
//
//   * Placement: consistent hashing with virtual nodes over the
//     request's profile-set id (its sorted program list), so a tenant's
//     queries keep landing on the same backend (warm DP prefix state)
//     and adding a backend only remaps ~1/N of the key space.
//   * Health: a prober thread scrapes every backend's `metrics` op on a
//     fixed interval, feeding the same per-backend circuit breaker the
//     request path uses — a dead backend is ejected within a few probe
//     intervals even with zero traffic.
//   * Failure handling: per-backend circuit breaker
//     (closed → open on consecutive failures, open → half-open after a
//     cooldown, half-open admits one probe at a time and re-closes on
//     success); the request path walks the ring's failover order,
//     skipping open breakers, and fails over to the next replica on
//     transport errors and retryable statuses (429/503/504). Definitive
//     answers (ok, 400, 404, 422, 500) are relayed verbatim. When every
//     breaker is open the client gets 503; when every attempt failed in
//     transport it gets 502.
//   * `reload` fans out to every backend (never retried — a lost
//     response may mean the swap already happened) and succeeds only if
//     the whole fleet succeeded.
//   * `health` and `metrics` are answered by the router itself:
//     router-level health lists per-backend breaker state, and the
//     metrics registry carries `serve.router.*` counters, per-backend
//     `serve.router.backend_latency.<i>` histograms, and
//     `serve.fleet.*` aggregates ingested from backend scrapes. The
//     optional loopback HTTP listener exposes the same registry to
//     Prometheus (shared responder in socket_util).
//   * Tracing: every forwarded request carries a trace context —
//     the client's trace_id (or one the router mints), parent_span
//     (the router's forward-span nonce) and hop+1 — and the router
//     records its own spans (placement, failovers, breaker skips).
//     `trace` fans out to the backends and returns one merged
//     per-process span list; `slo` reports the router's own
//     multi-window burn rates over forward outcomes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/result.hpp"

namespace ocps {
class NetFaultInjector;  // runtime/fault_injection.hpp
}

namespace ocps::obs {
class SloTracker;  // obs/slo.hpp
}

namespace ocps::serve {

// ---------------------------------------------------------------------------
// Consistent-hash ring.

/// Maps string keys to backends via consistent hashing with virtual
/// nodes. order_for() yields the failover sequence: every backend
/// exactly once, starting at the key's ring successor — so replica
/// choice under failure is deterministic, and two routers with the same
/// backend list agree on placement.
class HashRing {
 public:
  /// `backends` must be >= 1; `vnodes` points per backend smooth the
  /// key-space split (64 keeps the max/min load ratio near 1.2 for
  /// small fleets).
  explicit HashRing(std::size_t backends, std::size_t vnodes = 64);

  std::size_t backends() const { return backends_; }
  std::size_t primary_for(const std::string& key) const;
  std::vector<std::size_t> order_for(const std::string& key) const;

  /// FNV-1a 64-bit — the ring's key hash, exposed for tests.
  static std::uint64_t hash_key(const std::string& key);

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t backend;
  };
  std::vector<Point> ring_;  ///< sorted by hash
  std::size_t backends_;
};

// ---------------------------------------------------------------------------
// Circuit breaker.

struct CircuitBreakerConfig {
  int failure_threshold = 3;  ///< consecutive failures: closed → open
  std::chrono::milliseconds cooldown{1000};  ///< open → half-open delay
  int probe_successes = 1;  ///< half-open successes to re-close
};

/// Per-backend circuit breaker. Deterministic: time is a parameter, not
/// an ambient clock, so unit tests drive the full state machine with a
/// fake timeline. Thread-safe — the request path and the health prober
/// feed the same instance.
///
/// States: kClosed admits everything and counts consecutive failures;
/// at `failure_threshold` it opens. kOpen admits nothing until
/// `cooldown` has passed, then the next allow() becomes the half-open
/// probe. kHalfOpen admits one in-flight probe at a time;
/// `probe_successes` successes re-close, any failure re-opens (and
/// restarts the cooldown).
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit CircuitBreaker(const CircuitBreakerConfig& config);

  /// May a request be sent now? In half-open this acquires the single
  /// probe token; callers that got `true` MUST report the outcome via
  /// record_success/record_failure.
  bool allow(TimePoint now);
  void record_success(TimePoint now);
  void record_failure(TimePoint now);

  State state() const;
  static const char* state_name(State s);

 private:
  CircuitBreakerConfig config_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  TimePoint opened_at_{};
};

// ---------------------------------------------------------------------------
// The router.

/// Router knobs (CLI flags of `ocps router` map 1:1 onto these). At
/// least one front listener (socket_path / listen_address) is required,
/// plus one or more backend endpoints.
struct RouterConfig {
  std::string socket_path;     ///< Unix front listener ("" = off)
  std::string listen_address;  ///< TCP front listener ("" = off)
  std::vector<std::string> backends;  ///< daemon endpoints (>= 1)

  std::size_t vnodes = 64;
  CircuitBreakerConfig breaker;
  std::chrono::milliseconds connect_timeout{1000};
  std::chrono::milliseconds io_timeout{5000};
  std::chrono::milliseconds health_interval{500};
  double default_deadline_ms = 0.0;  ///< forward budget when none given
  std::size_t max_connections = 256;

  /// Prometheus exposition over HTTP on 127.0.0.1 (same contract as
  /// ServeConfig::metrics_port: 0 = off, -1 = ephemeral).
  int metrics_port = 0;

  /// Fleet-level SLOs evaluated on forward outcomes (what clients of the
  /// router actually experienced, failovers included). Same semantics as
  /// the ServeConfig twins: 0 disables the objective.
  double slo_p99_ms = 0.0;
  double slo_availability = 0.0;

  /// Chaos seam for the router's own front listeners (accept faults
  /// only; response faults are injected at the backends).
  const NetFaultInjector* net_faults = nullptr;
};

/// The front-tier daemon. Same lifecycle contract as serve::Server:
/// construction validates config, start() binds and spawns threads,
/// stop() drains and joins, single-use.
class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  Result<bool> start();
  void request_stop() noexcept { stopping_.store(true); }
  void stop();
  void wait_until_stop_requested() const;
  bool stop_requested() const { return stopping_.load(); }

  const RouterConfig& config() const { return config_; }
  int bound_metrics_port() const { return http_port_.load(); }
  int bound_listen_port() const { return tcp_port_.load(); }

  /// Breaker state of backend `i` (for tests and `health`).
  CircuitBreaker::State breaker_state(std::size_t i) const;

  struct Counters {
    std::uint64_t requests = 0;        ///< lines received on the front
    std::uint64_t forwarded = 0;       ///< answered from a backend
    std::uint64_t failovers = 0;       ///< backend attempts that failed over
    std::uint64_t relayed_errors = 0;  ///< definitive backend errors relayed
    std::uint64_t no_backend = 0;      ///< 502: every attempt failed
    std::uint64_t all_open = 0;        ///< 503: every breaker open
    std::uint64_t malformed = 0;       ///< 400 parse failures
    std::uint64_t reloads = 0;         ///< fleet-wide reload fan-outs
    std::uint64_t deadline_exceeded = 0;  ///< 504s synthesized mid-walk
    std::uint64_t health_probes = 0;
    std::uint64_t health_failures = 0;
  };
  Counters counters() const;

  /// The placement key for a request: its sorted program list (the
  /// profile-set id), or an op-derived key when no programs are named.
  /// Exposed for tests asserting placement stability.
  static std::string route_key(const Request& req);

 private:
  struct Connection;
  struct Backend;

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void health_loop();
  void http_loop();

  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void handle_health_local(const std::shared_ptr<Connection>& conn,
                           const Request& req);
  void handle_metrics_local(const std::shared_ptr<Connection>& conn,
                            const Request& req);
  /// Fans a `trace` request out to every reachable backend and merges
  /// their proc entries with the router's own (one stitched timeline).
  void handle_trace_local(const std::shared_ptr<Connection>& conn,
                          const Request& req);
  /// Answers `slo` from the router's own tracker (fleet-level burn).
  void handle_slo_local(const std::shared_ptr<Connection>& conn,
                        const Request& req);
  /// Fans a `decisions` request out to every reachable backend
  /// (breaker-blind, like trace — the audit trail must be readable while
  /// the fleet misbehaves) and returns one "backends" array of the
  /// per-daemon audit views.
  void handle_decisions_local(const std::shared_ptr<Connection>& conn,
                              const Request& req);
  /// Fans a `reconcile` out and relays the first backend that accepts
  /// it; decision ids are per-daemon counters, so only the issuing
  /// backend (in id order of the walk) reconciles successfully.
  void handle_reconcile_local(const std::shared_ptr<Connection>& conn,
                              const Request& req);
  /// forward() re-encodes the request with trace context stamped on
  /// (trace_id minted when absent, parent_span = this forward's span
  /// nonce, hop+1) — the relayed response stays verbatim.
  void forward(const std::shared_ptr<Connection>& conn, const Request& req);
  void fan_out_reload(const std::shared_ptr<Connection>& conn,
                      const Request& req, const std::string& line);
  void refresh_gauges();
  void record_backend_latency(std::size_t idx, double ms);
  std::uint64_t next_trace_nonce();

  RouterConfig config_;
  std::unique_ptr<HashRing> ring_;
  std::vector<std::unique_ptr<Backend>> backends_;

  int listen_fd_ = -1;  ///< Unix front listener
  int lock_fd_ = -1;
  int tcp_fd_ = -1;
  std::atomic<int> tcp_port_{0};
  int http_fd_ = -1;
  std::atomic<int> http_port_{0};

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> joined_{false};

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> reader_threads_;
  std::thread accept_thread_;
  std::thread health_thread_;
  std::thread http_thread_;

  std::chrono::steady_clock::time_point started_at_;

  struct AtomicCounters;
  std::unique_ptr<AtomicCounters> counters_;

  /// Fleet SLO tracker, fed by forward() outcomes (always constructed;
  /// objectives may be unset). Lives behind a pointer so the header
  /// needs only a forward declaration.
  std::unique_ptr<obs::SloTracker> slo_;

  /// Nonce stream for minted trace ids and forward-span ids: a counter
  /// whitened through splitmix64 and seeded with the construction time,
  /// so two routers do not mint colliding ids.
  std::uint64_t trace_seed_ = 0;
  std::atomic<std::uint64_t> trace_counter_{0};
};

}  // namespace ocps::serve
