# Empty dependencies file for ocps_core.
# This may be replaced when dependencies are built.
