# Empty compiler generated dependencies file for bench_dp_speed.
# This may be replaced when dependencies are built.
