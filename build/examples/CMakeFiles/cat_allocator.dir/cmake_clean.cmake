file(REMOVE_RECURSE
  "CMakeFiles/cat_allocator.dir/cat_allocator.cpp.o"
  "CMakeFiles/cat_allocator.dir/cat_allocator.cpp.o.d"
  "cat_allocator"
  "cat_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cat_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
