// Exact and log-space counting used by §II of the paper.
//
// The paper sizes the partition-sharing search space with binomial
// coefficients ("balls in bins" wall placement) and Stirling numbers of the
// second kind (grouping programs into non-empty shared partitions):
//
//   S1 = { npr \atop nc }                                     (Eq. 1)
//   S2 = Σ_{npa=1..npr} { npr \atop npa } · C(C+npa-1, npa-1)  (Eq. 2)
//   S3 = C(C+npr-1, npr-1)                                     (Eq. 3)
//
// For the paper's headline numbers (npr = 4, C = 131072) the results fit in
// 64 bits; we compute with 128-bit intermediates and report overflow
// explicitly instead of wrapping.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ocps {

/// Exact binomial coefficient C(n, k). Returns nullopt on unsigned 128-bit
/// overflow (never for the paper's parameters).
std::optional<unsigned __int128> binomial128(std::uint64_t n, std::uint64_t k);

/// Binomial coefficient as a double (exact until ~2^53, then best-effort).
double binomial_double(std::uint64_t n, std::uint64_t k);

/// Exact Stirling number of the second kind { n \atop k } via the triangular
/// recurrence. Returns nullopt on overflow. n, k <= 64 is plenty here.
std::optional<unsigned __int128> stirling2_128(std::uint64_t n, std::uint64_t k);

/// Stirling number of the second kind as a double.
double stirling2_double(std::uint64_t n, std::uint64_t k);

/// Formats an unsigned 128-bit integer in base 10.
struct U128 { unsigned __int128 value; };
std::string to_string_u128(unsigned __int128 v);

/// §II Eq. 1: number of ways to share nc caches among npr programs with
/// every cache used (Stirling number of the second kind).
std::optional<unsigned __int128> search_space_sharing(std::uint64_t npr,
                                                      std::uint64_t nc);

/// §II Eq. 2: size of the partition-sharing search space for one cache of
/// C units shared by npr programs.
std::optional<unsigned __int128> search_space_partition_sharing(
    std::uint64_t npr, std::uint64_t cache_units);

/// §II Eq. 3: size of the partitioning-only search space.
std::optional<unsigned __int128> search_space_partitioning(
    std::uint64_t npr, std::uint64_t cache_units);

}  // namespace ocps
