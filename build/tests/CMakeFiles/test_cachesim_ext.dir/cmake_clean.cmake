file(REMOVE_RECURSE
  "CMakeFiles/test_cachesim_ext.dir/test_cachesim_ext.cpp.o"
  "CMakeFiles/test_cachesim_ext.dir/test_cachesim_ext.cpp.o.d"
  "test_cachesim_ext"
  "test_cachesim_ext.pdb"
  "test_cachesim_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cachesim_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
