// Tests for SHARDS-style sampled stack distances.
#include <gtest/gtest.h>

#include "locality/reuse_distance.hpp"
#include "locality/shards.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

TEST(Shards, RateOneIsExact) {
  Trace t = make_zipf(20000, 150, 1.0, 91);
  MissRatioCurve exact = exact_lru_mrc(t, 200);
  MissRatioCurve sampled = shards_mrc(t, 1.0, 200);
  for (std::size_t c = 0; c <= 200; c += 10)
    EXPECT_NEAR(sampled.ratio(c), exact.ratio(c), 1e-12) << "c=" << c;
}

TEST(Shards, RejectsBadRate) {
  EXPECT_THROW(ShardsProfiler(0.0), CheckError);
  EXPECT_THROW(ShardsProfiler(1.5), CheckError);
}

TEST(Shards, SamplesRoughlyTheConfiguredFraction) {
  ShardsProfiler profiler(0.1, 7);
  Trace t = make_uniform(100000, 5000, 92);
  for (Block b : t.accesses) profiler.observe(b);
  double frac = static_cast<double>(profiler.sampled_accesses()) /
                static_cast<double>(profiler.accesses());
  EXPECT_NEAR(frac, 0.1, 0.02);
}

// Property: the sampled MRC tracks the exact one across workload shapes
// and sampling rates.
class ShardsAccuracy
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ShardsAccuracy, TracksExactMrc) {
  // Spatial sampling needs a block population large enough that the
  // hottest blocks' inclusion is not all-or-nothing — its design regime.
  auto [shape, rate] = GetParam();
  Trace t;
  std::size_t cap = 0;
  switch (shape) {
    case 0: t = make_zipf(400000, 5000, 0.9, 93); cap = 5500; break;
    case 1: t = make_uniform(300000, 3000, 94); cap = 3400; break;
    case 2: t = make_hot_cold(400000, 300, 8000, 0.8, 95); cap = 8500; break;
    default: FAIL();
  }
  MissRatioCurve exact = exact_lru_mrc(t, cap);
  MissRatioCurve sampled = shards_mrc(t, rate, cap);
  double worst = 0.0, sum = 0.0;
  std::size_t count = 0;
  for (std::size_t c = 50; c <= cap; c += 25) {
    double e = std::abs(exact.ratio(c) - sampled.ratio(c));
    worst = std::max(worst, e);
    sum += e;
    ++count;
  }
  double mean = sum / static_cast<double>(count);
  // Uniform popularity: tight. Skewed popularity (Zipf concentrates ~8%
  // of accesses on the hottest block; hot-cold puts 80% on 300 blocks)
  // carries irreducible access-mix variance in spatial sampling — only
  // the average stays tight there.
  double worst_tol = (shape == 1) ? (rate >= 0.2 ? 0.03 : 0.06)
                                  : (shape == 0 ? 0.12 : 0.08);
  double mean_tol = (shape == 1) ? 0.02 : 0.05;
  EXPECT_LT(worst, worst_tol) << "rate=" << rate;
  EXPECT_LT(mean, mean_tol) << "rate=" << rate;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardsAccuracy,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Values(0.05, 0.2)));

TEST(Shards, EstimateIsMonotoneAndBounded) {
  Trace t = make_zipf(50000, 300, 1.0, 96);
  MissRatioCurve mrc = shards_mrc(t, 0.1, 400);
  EXPECT_TRUE(mrc.is_non_increasing(1e-12));
  EXPECT_DOUBLE_EQ(mrc.ratio(0), 1.0);
  for (std::size_t c = 0; c <= 400; c += 25) {
    EXPECT_GE(mrc.ratio(c), 0.0);
    EXPECT_LE(mrc.ratio(c), 1.0);
  }
}

TEST(Shards, EmptyProfilerPredictsAllMiss) {
  ShardsProfiler profiler(0.5);
  MissRatioCurve mrc = profiler.estimate_mrc(10);
  EXPECT_DOUBLE_EQ(mrc.ratio(5), 1.0);
}

TEST(Shards, ResetClearsState) {
  ShardsProfiler profiler(1.0);
  for (Block b : {1, 2, 3, 1, 2, 3}) profiler.observe(b);
  EXPECT_GT(profiler.sampled_accesses(), 0u);
  profiler.reset();
  EXPECT_EQ(profiler.accesses(), 0u);
  EXPECT_EQ(profiler.sampled_accesses(), 0u);
}

TEST(Shards, CheaperThanExactInWorkTouched) {
  // The cost proxy: at rate 0.05 only ~5% of accesses reach the stack
  // machinery.
  Trace t = make_uniform(50000, 2000, 97);
  ShardsProfiler profiler(0.05, 11);
  for (Block b : t.accesses) profiler.observe(b);
  EXPECT_LT(profiler.sampled_accesses(), t.length() / 10);
}

}  // namespace
}  // namespace ocps
