// §V reduction theorem, empirically: the optimal partitioning-only
// solution equals the optimal partition-sharing solution under the
// natural-partition model. We exhaustively search the *entire* scheme
// space (every program grouping x every wall placement, §II Eq. 2) on
// small instances and compare against the partitioning-only optimum and
// the DP.
#include <iostream>

#include "combinatorics/counting.hpp"
#include "core/dp_partition.hpp"
#include "core/partition_sharing.hpp"
#include "locality/footprint.hpp"
#include "trace/generators.hpp"
#include "util/table.hpp"

using namespace ocps;

namespace {

ProgramModel model_of(const std::string& name, const Trace& trace,
                      double rate, std::size_t capacity) {
  return make_program_model(name, rate, compute_footprint(trace), capacity);
}

std::string describe(const SharingScheme& s,
                     const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t g = 0; g < s.groups.size(); ++g) {
    out += "{";
    for (std::size_t k = 0; k < s.groups[g].size(); ++k) {
      if (k) out += ",";
      out += names[s.groups[g][k]];
    }
    out += ":" + std::to_string(s.group_sizes[g]) + "}";
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== §V reduction: optimal partitioning == optimal "
               "partition-sharing (exhaustive) ===\n\n";

  TextTable t({"instance", "C", "schemes searched", "S2 formula",
               "best sharing mr", "best partitioning mr", "DP mr",
               "best scheme"});

  for (int instance = 0; instance < 4; ++instance) {
    std::size_t capacity = 14 + 4 * static_cast<std::size_t>(instance);
    std::vector<ProgramModel> models;
    std::vector<std::string> names;
    std::uint64_t seed = 400 + 10 * static_cast<std::uint64_t>(instance);
    models.push_back(model_of("zipf", make_zipf(20000, 25, 1.0, seed), 1.0,
                              capacity + 10));
    models.push_back(model_of(
        "cliff",
        make_cyclic(20000, 8 + 2 * static_cast<std::size_t>(instance)), 1.6,
        capacity + 10));
    models.push_back(model_of("hot",
                              make_hot_cold(20000, 4, 20, 0.75, seed + 1),
                              0.8, capacity + 10));
    for (const auto& m : models) names.push_back(m.name);
    CoRunGroup group({&models[0], &models[1], &models[2]});

    BestSchemeResult sharing = best_partition_sharing(group, capacity);
    BestSchemeResult partitioning = best_partitioning_only(group, capacity);

    auto shares = group.rate_shares();
    std::vector<const MissRatioCurve*> curves;
    std::vector<double> weights;
    for (std::size_t i = 0; i < 3; ++i) {
      curves.push_back(&group[i].mrc);
      weights.push_back(shares[i]);
    }
    DpResult dp = optimize_partition(
        weighted_cost_matrix(curves, weights, capacity).view(), capacity);

    auto s2 = search_space_partition_sharing(3, capacity);
    t.add_row({"3 programs #" + std::to_string(instance),
               std::to_string(capacity),
               std::to_string(sharing.schemes_examined),
               s2 ? to_string_u128(*s2) : "-",
               TextTable::num(sharing.outcome.group_mr, 6),
               TextTable::num(partitioning.outcome.group_mr, 6),
               TextTable::num(dp.objective_value, 6),
               describe(sharing.scheme, names)});
  }
  t.print(std::cout);

  std::cout << "\nExpected: the three miss-ratio columns coincide in every "
               "row (the best scheme can always be realized as a pure "
               "partitioning), and 'schemes searched' matches Eq. 2's S2 "
               "exactly.\n";
  return 0;
}
