// Validation and repair of estimated locality profiles.
//
// Sampled/online estimates are noisy by construction: a SHARDS epoch can
// come back NaN-laced (arithmetic on an empty sample), spiked above 1
// (hash collisions on a tiny sample), truncated (a dropped message in a
// distributed profiler), or non-monotone (sampling error breaking the LRU
// inclusion property). The offline loaders reject such data loudly; the
// online controller instead routes every estimate through this pass,
// which repairs what is repairable, reports exactly what it changed, and
// returns an Error only when no usable signal remains.
//
// Repairs are conservative and idempotent: a profile that is already
// valid passes through bit-identical with a zero report, which is what
// lets the hardened controller reproduce the pre-hardening allocations
// exactly on clean inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "locality/mrc.hpp"
#include "util/curve.hpp"
#include "util/result.hpp"

namespace ocps {

/// What a sanitization pass changed. total() == 0 means the input was
/// already valid and came through untouched.
struct RepairReport {
  std::size_t nonfinite = 0;   ///< NaN/inf entries replaced
  std::size_t clamped = 0;     ///< values clamped into range
  std::size_t monotone = 0;    ///< monotonicity violations flattened
  std::size_t dropped = 0;     ///< knots dropped (footprint curves)
  std::size_t extended = 0;    ///< entries appended to a truncated curve

  std::size_t total() const {
    return nonfinite + clamped + monotone + dropped + extended;
  }
  RepairReport& operator+=(const RepairReport& o) {
    nonfinite += o.nonfinite;
    clamped += o.clamped;
    monotone += o.monotone;
    dropped += o.dropped;
    extended += o.extended;
    return *this;
  }
};

/// Validates and repairs raw miss-ratio samples for cache sizes
/// 0..capacity. Repairs, in order: truncation (extend with the last
/// value), non-finite entries (carry the nearest finite neighbour),
/// range (clamp into [0,1]), monotonicity (running minimum — LRU
/// inclusion guarantees non-increasing miss ratios). Returns
/// kDegenerateProfile when the input is empty or contains no finite
/// entry at all; such a profile has no signal worth repairing.
Result<MissRatioCurve> sanitize_mrc(std::vector<double> ratios,
                                    std::uint64_t accesses,
                                    std::size_t capacity,
                                    RepairReport* report = nullptr);

/// Validates and repairs footprint knots: drops knots with non-finite
/// coordinates or non-increasing x, clamps negative footprints to 0, and
/// flattens decreasing y (footprints are non-decreasing in window
/// length). Returns kDegenerateProfile when fewer than one usable knot
/// survives.
Result<PiecewiseLinear> sanitize_footprint_knots(
    std::vector<double> xs, std::vector<double> ys,
    RepairReport* report = nullptr);

}  // namespace ocps
