#include "serve/protocol.hpp"

#include <chrono>
#include <cmath>

#include "obs/obs.hpp"

namespace ocps::serve {

const char* op_name(Op op) {
  switch (op) {
    case Op::kPartition: return "partition";
    case Op::kSweep: return "sweep";
    case Op::kHealth: return "health";
    case Op::kReload: return "reload";
    case Op::kMetrics: return "metrics";
    case Op::kSlowlog: return "slowlog";
    case Op::kTrace: return "trace";
    case Op::kSlo: return "slo";
  }
  return "?";
}

namespace {

Result<std::vector<std::string>> string_list(const json::Value& obj,
                                             std::string_view key) {
  std::vector<std::string> out;
  const json::Value* v = obj.find(key);
  if (!v) return Ok(std::move(out));
  if (!v->is_array())
    return Err(ErrorCode::kInvalidArgument,
               std::string(key) + " must be an array of strings");
  for (const json::Value& item : v->as_array()) {
    if (!item.is_string())
      return Err(ErrorCode::kInvalidArgument,
                 std::string(key) + " must be an array of strings");
    out.push_back(item.as_string());
  }
  return Ok(std::move(out));
}

Result<std::size_t> size_field(const json::Value& obj, std::string_view key,
                               std::size_t fallback) {
  const json::Value* v = obj.find(key);
  if (!v) return Ok(std::move(fallback));
  if (!v->is_number() || v->as_number() < 0 ||
      v->as_number() != std::floor(v->as_number()))
    return Err(ErrorCode::kInvalidArgument,
               std::string(key) + " must be a non-negative integer");
  return Ok(static_cast<std::size_t>(v->as_number()));
}

}  // namespace

Result<Request> parse_request(const std::string& line) {
  Result<json::Value> parsed = json::parse(line);
  if (!parsed.ok()) return parsed.error();
  const json::Value& obj = parsed.value();
  if (!obj.is_object())
    return Err(ErrorCode::kInvalidArgument, "request must be a JSON object");

  Request req;
  double id = obj.get_number("id", 0.0);
  req.id = static_cast<std::int64_t>(id);

  std::string op = obj.get_string("op", "");
  if (op == "partition") req.op = Op::kPartition;
  else if (op == "sweep") req.op = Op::kSweep;
  else if (op == "health") req.op = Op::kHealth;
  else if (op == "reload") req.op = Op::kReload;
  else if (op == "metrics") req.op = Op::kMetrics;
  else if (op == "slowlog") req.op = Op::kSlowlog;
  else if (op == "trace") req.op = Op::kTrace;
  else if (op == "slo") req.op = Op::kSlo;
  else
    return Err(ErrorCode::kInvalidArgument,
               op.empty() ? "missing \"op\"" : "unknown op \"" + op + "\"");

  auto programs = string_list(obj, "programs");
  if (!programs.ok()) return programs.error();
  req.programs = std::move(programs.value());

  auto paths = string_list(obj, "paths");
  if (!paths.ok()) return paths.error();
  req.paths = std::move(paths.value());

  auto capacity = size_field(obj, "capacity", 0);
  if (!capacity.ok()) return capacity.error();
  req.capacity = capacity.value();

  auto group_size = size_field(obj, "group_size", 0);
  if (!group_size.ok()) return group_size.error();
  req.group_size = group_size.value();

  req.objective = obj.get_string("objective", "sum");
  if (req.objective != "sum" && req.objective != "max")
    return Err(ErrorCode::kInvalidArgument,
               "objective must be \"sum\" or \"max\"");

  req.deadline_ms = obj.get_number("deadline_ms", 0.0);
  if (!(req.deadline_ms >= 0.0) || !std::isfinite(req.deadline_ms))
    return Err(ErrorCode::kInvalidArgument,
               "deadline_ms must be a non-negative number");

  auto trace_id = size_field(obj, "trace_id", 0);
  if (!trace_id.ok()) return trace_id.error();
  req.trace_id = static_cast<std::uint64_t>(trace_id.value());

  auto parent_span = size_field(obj, "parent_span", 0);
  if (!parent_span.ok()) return parent_span.error();
  req.parent_span = static_cast<std::uint64_t>(parent_span.value());

  auto hop = size_field(obj, "hop", 0);
  if (!hop.ok()) return hop.error();
  req.hop = hop.value();

  switch (req.op) {
    case Op::kPartition:
      if (req.programs.empty())
        return Err(ErrorCode::kInvalidArgument,
                   "partition needs a non-empty \"programs\" list");
      break;
    case Op::kReload:
      if (req.paths.empty())
        return Err(ErrorCode::kInvalidArgument,
                   "reload needs a non-empty \"paths\" list");
      break;
    case Op::kTrace:
      if (req.trace_id == 0)
        return Err(ErrorCode::kInvalidArgument,
                   "trace needs a non-zero \"trace_id\"");
      break;
    case Op::kSweep:
    case Op::kHealth:
    case Op::kMetrics:
    case Op::kSlowlog:
    case Op::kSlo:
      break;
  }
  return Ok(std::move(req));
}

std::string encode_request(const Request& req) {
  json::Value out;
  out.set("id", json::Value(static_cast<double>(req.id)));
  out.set("op", json::Value(op_name(req.op)));
  if (!req.programs.empty()) {
    json::Array programs;
    programs.reserve(req.programs.size());
    for (const std::string& name : req.programs) programs.emplace_back(name);
    out.set("programs", json::Value(std::move(programs)));
  }
  if (!req.paths.empty()) {
    json::Array paths;
    paths.reserve(req.paths.size());
    for (const std::string& path : req.paths) paths.emplace_back(path);
    out.set("paths", json::Value(std::move(paths)));
  }
  if (req.capacity > 0)
    out.set("capacity", json::Value(static_cast<double>(req.capacity)));
  if (req.group_size > 0)
    out.set("group_size", json::Value(static_cast<double>(req.group_size)));
  if (req.objective != "sum") out.set("objective", json::Value(req.objective));
  if (req.deadline_ms > 0.0)
    out.set("deadline_ms", json::Value(req.deadline_ms));
  if (req.trace_id != 0)
    out.set("trace_id", json::Value(static_cast<double>(req.trace_id)));
  if (req.parent_span != 0)
    out.set("parent_span", json::Value(static_cast<double>(req.parent_span)));
  if (req.hop != 0) out.set("hop", json::Value(static_cast<double>(req.hop)));
  return out.dump();
}

std::string error_response(std::int64_t id, int code,
                           const std::string& message) {
  json::Value out;
  out.set("id", json::Value(static_cast<double>(id)));
  out.set("ok", json::Value(false));
  out.set("code", json::Value(static_cast<double>(code)));
  out.set("error", json::Value(message));
  return out.dump();
}

std::string ok_response(std::int64_t id, json::Value body) {
  json::Value out;
  out.set("id", json::Value(static_cast<double>(id)));
  out.set("ok", json::Value(true));
  if (body.is_object())
    for (const auto& [k, v] : body.as_object()) out.set(k, v);
  return out.dump();
}

json::Value trace_proc_json(const std::string& proc_label,
                            std::uint64_t trace_id) {
  json::Value proc;
  proc.set("proc", json::Value(proc_label));
  proc.set("mono_ns", json::Value(static_cast<double>(obs::now_ns())));
  proc.set("wall_ns",
           json::Value(static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count())));
  json::Array spans;
  for (const obs::TraceEvent& e : obs::trace_events_for(trace_id)) {
    json::Value row;
    row.set("name", json::Value(e.name ? e.name : ""));
    row.set("cat", json::Value(e.cat ? e.cat : "ocps"));
    row.set("ts_ns", json::Value(static_cast<double>(e.ts_ns)));
    row.set("dur_ns", json::Value(static_cast<double>(e.dur_ns)));
    row.set("tid", json::Value(static_cast<double>(e.tid)));
    row.set("instant", json::Value(e.instant));
    if (e.arg_name) {
      row.set("arg_name", json::Value(e.arg_name));
      row.set("arg", json::Value(static_cast<double>(e.arg)));
    }
    spans.push_back(std::move(row));
  }
  proc.set("spans", json::Value(std::move(spans)));
  return proc;
}

Result<Response> parse_response(const std::string& line) {
  Result<json::Value> parsed = json::parse(line);
  if (!parsed.ok()) return parsed.error();
  if (!parsed.value().is_object())
    return Err(ErrorCode::kCorruptData, "response must be a JSON object");
  Response r;
  r.body = std::move(parsed.value());
  r.id = static_cast<std::int64_t>(r.body.get_number("id", 0.0));
  r.ok = r.body.get_bool("ok", false);
  r.code = static_cast<int>(r.body.get_number("code", 0.0));
  r.error = r.body.get_string("error", "");
  return Ok(std::move(r));
}

}  // namespace ocps::serve
