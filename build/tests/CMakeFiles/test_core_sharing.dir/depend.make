# Empty dependencies file for test_core_sharing.
# This may be replaced when dependencies are built.
