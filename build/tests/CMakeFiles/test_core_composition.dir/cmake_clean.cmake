file(REMOVE_RECURSE
  "CMakeFiles/test_core_composition.dir/test_core_composition.cpp.o"
  "CMakeFiles/test_core_composition.dir/test_core_composition.cpp.o.d"
  "test_core_composition"
  "test_core_composition.pdb"
  "test_core_composition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
