#include "util/rng.hpp"

#include "util/check.hpp"

namespace ocps {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro must not be seeded with an all-zero state; splitmix64 of any
  // seed (including 0) yields a non-degenerate state.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  OCPS_CHECK(bound > 0, "Rng::below requires a positive bound");
  // Lemire's method: unbiased without a modulo in the common case.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  OCPS_CHECK(lo <= hi, "Rng::range requires lo <= hi");
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace ocps
