
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5.cpp" "bench/CMakeFiles/bench_fig5.dir/bench_fig5.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5.dir/bench_fig5.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ocps_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/ocps_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ocps_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ocps_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ocps_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ocps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/combinatorics/CMakeFiles/ocps_comb.dir/DependInfo.cmake"
  "/root/repo/build/src/locality/CMakeFiles/ocps_locality.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ocps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ocps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
