// Tests for partition-sharing schemes, the reduction theorem (§V), and the
// group-sweep evaluation engine (§VII).
#include <gtest/gtest.h>

#include <numeric>

#include "combinatorics/counting.hpp"
#include "core/dp_partition.hpp"
#include "core/group_sweep.hpp"
#include "core/partition_sharing.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

ProgramModel model_of(const std::string& name, const Trace& trace,
                      double rate, std::size_t capacity) {
  return make_program_model(name, rate, compute_footprint(trace), capacity);
}

struct SmallWorld {
  std::vector<ProgramModel> models;
  std::size_t capacity = 18;

  SmallWorld() {
    models.push_back(
        model_of("zipf", make_zipf(20000, 25, 1.0, 81), 1.0, capacity + 8));
    models.push_back(
        model_of("cliff", make_cyclic(20000, 12), 1.6, capacity + 8));
    models.push_back(model_of("hot", make_hot_cold(20000, 4, 20, 0.75, 82),
                              0.8, capacity + 8));
  }

  CoRunGroup group() const {
    return CoRunGroup({&models[0], &models[1], &models[2]});
  }
};

TEST(Scheme, EvaluateCoversEveryProgramOnce) {
  SmallWorld w;
  CoRunGroup g = w.group();
  SharingScheme scheme;
  scheme.groups = {{0, 2}, {1}};
  scheme.group_sizes = {10, 8};
  SchemeOutcome out = evaluate_scheme(g, scheme);
  EXPECT_EQ(out.per_program_mr.size(), 3u);
  for (double mr : out.per_program_mr) {
    EXPECT_GE(mr, 0.0);
    EXPECT_LE(mr, 1.0);
  }
}

TEST(Scheme, SingletonSchemeMatchesSoloMrcs) {
  SmallWorld w;
  CoRunGroup g = w.group();
  SharingScheme scheme;
  scheme.groups = {{0}, {1}, {2}};
  scheme.group_sizes = {6, 6, 6};
  SchemeOutcome out = evaluate_scheme(g, scheme);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(out.per_program_mr[i], g[i].mrc.ratio_at(6.0), 0.02)
        << "program " << i;
}

TEST(Scheme, RejectsIncompleteOrOverlappingGroups) {
  SmallWorld w;
  CoRunGroup g = w.group();
  SharingScheme missing;
  missing.groups = {{0, 1}};
  missing.group_sizes = {10};
  EXPECT_THROW(evaluate_scheme(g, missing), CheckError);
  SharingScheme dup;
  dup.groups = {{0, 1}, {1, 2}};
  dup.group_sizes = {9, 9};
  EXPECT_THROW(evaluate_scheme(g, dup), CheckError);
}

TEST(Reduction, SchemeCountMatchesSectionIIFormula) {
  SmallWorld w;
  CoRunGroup g = w.group();
  BestSchemeResult best = best_partition_sharing(g, w.capacity);
  auto expected = search_space_partition_sharing(3, w.capacity);
  ASSERT_TRUE(expected.has_value());
  EXPECT_EQ(best.schemes_examined,
            static_cast<std::uint64_t>(*expected));
}

TEST(Reduction, OptimalPartitioningMatchesOptimalPartitionSharing) {
  // §V: under the natural-partition model the best partitioning-only
  // solution equals the best partition-sharing solution.
  SmallWorld w;
  CoRunGroup g = w.group();
  BestSchemeResult sharing = best_partition_sharing(g, w.capacity);
  BestSchemeResult partitioning = best_partitioning_only(g, w.capacity);
  EXPECT_NEAR(sharing.outcome.group_mr, partitioning.outcome.group_mr, 1e-6);
}

TEST(Reduction, ExhaustivePartitioningMatchesDp) {
  SmallWorld w;
  CoRunGroup g = w.group();
  BestSchemeResult partitioning = best_partitioning_only(g, w.capacity);

  std::vector<const MissRatioCurve*> curves;
  std::vector<double> weights;
  auto shares = g.rate_shares();
  for (std::size_t i = 0; i < 3; ++i) {
    curves.push_back(&g[i].mrc);
    weights.push_back(shares[i]);
  }
  CostMatrix cost = weighted_cost_matrix(curves, weights, w.capacity);
  DpResult dp = optimize_partition(cost.view(), w.capacity);
  ASSERT_TRUE(dp.feasible);
  // The DP objective is exactly the group miss ratio under the same model.
  EXPECT_NEAR(dp.objective_value, partitioning.outcome.group_mr, 1e-6);
}

TEST(Sweep, MethodNamesAreStable) {
  EXPECT_STREQ(method_name(Method::kEqual), "Equal");
  EXPECT_STREQ(method_name(Method::kSttw), "STTW");
}

struct SweepWorld {
  std::vector<ProgramModel> models;
  std::size_t capacity = 96;

  SweepWorld() {
    models.push_back(
        model_of("p0", make_zipf(30000, 150, 0.9, 91), 2.0, capacity));
    models.push_back(model_of("p1", make_cyclic(30000, 60), 1.4, capacity));
    models.push_back(
        model_of("p2", make_sawtooth(30000, 35), 0.8, capacity));
    models.push_back(model_of("p3", make_hot_cold(30000, 12, 120, 0.7, 92),
                              1.1, capacity));
    models.push_back(
        model_of("p4", make_uniform(30000, 110, 93), 1.7, capacity));
  }
};

TEST(Sweep, EvaluatesAllMethodsOnEveryGroup) {
  SweepWorld w;
  SweepOptions opt;
  opt.capacity = w.capacity;
  auto groups = all_subsets(5, 3);
  auto sweep = sweep_groups(w.models, groups, opt);
  ASSERT_EQ(sweep.size(), 10u);
  for (const auto& g : sweep) {
    for (std::size_t m = 0; m < kNumMethods; ++m) {
      const MethodOutcome& out = g.methods[m];
      EXPECT_EQ(out.per_program_mr.size(), 3u);
      EXPECT_GE(out.group_mr, 0.0);
      EXPECT_LE(out.group_mr, 1.0);
    }
  }
}

TEST(Sweep, OptimalIsBestMethodInEveryGroup) {
  SweepWorld w;
  SweepOptions opt;
  opt.capacity = w.capacity;
  auto sweep = sweep_groups(w.models, all_subsets(5, 4), opt);
  for (const auto& g : sweep) {
    double opt_mr = g.of(Method::kOptimal).group_mr;
    for (Method m : {Method::kEqual, Method::kNatural, Method::kEqualBaseline,
                     Method::kNaturalBaseline, Method::kSttw}) {
      EXPECT_LE(opt_mr, g.of(m).group_mr + 1e-9)
          << method_name(m) << " beat Optimal";
    }
  }
}

TEST(Sweep, BaselineMethodsRespectTheirBaselines) {
  SweepWorld w;
  SweepOptions opt;
  opt.capacity = w.capacity;
  auto sweep = sweep_groups(w.models, all_subsets(5, 4), opt);
  for (const auto& g : sweep) {
    const auto& eq = g.of(Method::kEqual);
    const auto& eqb = g.of(Method::kEqualBaseline);
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_LE(eqb.per_program_mr[i], eq.per_program_mr[i] + 1e-9);
    // Baseline optimization can only improve the group metric.
    EXPECT_LE(eqb.group_mr, eq.group_mr + 1e-9);
  }
}

TEST(Sweep, SerialAndParallelAgree) {
  SweepWorld w;
  SweepOptions par, ser;
  par.capacity = ser.capacity = w.capacity;
  par.threads = 0;  // auto: pool width from OCPS_THREADS / hardware
  ser.threads = 1;  // pinned serial
  auto groups = all_subsets(5, 3);
  auto a = sweep_groups(w.models, groups, par);
  auto b = sweep_groups(w.models, groups, ser);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g)
    for (std::size_t m = 0; m < kNumMethods; ++m)
      EXPECT_DOUBLE_EQ(a[g].methods[m].group_mr, b[g].methods[m].group_mr);
}

TEST(Sweep, ImprovementStatsAreConsistent) {
  SweepWorld w;
  SweepOptions opt;
  opt.capacity = w.capacity;
  auto sweep = sweep_groups(w.models, all_subsets(5, 4), opt);
  ImprovementStats s = improvement_over(sweep, Method::kEqual);
  EXPECT_GE(s.max, s.median);
  EXPECT_GE(s.max, 0.0);
  EXPECT_GE(s.frac_ge_10, s.frac_ge_20);
  EXPECT_GE(s.avg, 0.0);  // Optimal never loses to Equal
}

TEST(Sweep, AllocationsSumToCapacityForPartitionMethods) {
  SweepWorld w;
  SweepOptions opt;
  opt.capacity = w.capacity;
  auto sweep = sweep_groups(w.models, all_subsets(5, 4), opt);
  for (const auto& g : sweep) {
    for (Method m : {Method::kEqual, Method::kEqualBaseline,
                     Method::kNaturalBaseline, Method::kOptimal,
                     Method::kSttw}) {
      double total = std::accumulate(g.of(m).alloc.begin(),
                                     g.of(m).alloc.end(), 0.0);
      EXPECT_NEAR(total, static_cast<double>(w.capacity), 1e-9)
          << method_name(m);
    }
  }
}

}  // namespace
}  // namespace ocps
