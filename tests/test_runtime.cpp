// Tests for the Suh segmented comparator, elastic (RECU-style) allocation,
// and the online repartitioning controller.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cachesim/corun.hpp"
#include "core/elastic.hpp"
#include "core/dp_partition.hpp"
#include "core/suh.hpp"
#include "locality/footprint.hpp"
#include "runtime/controller.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ocps {
namespace {

ProgramModel model_of(const std::string& name, const Trace& trace,
                      double rate, std::size_t capacity) {
  return make_program_model(name, rate, compute_footprint(trace), capacity);
}

std::vector<double> random_cost_curve(Rng& rng, std::size_t capacity) {
  std::vector<double> cost(capacity + 1);
  double v = 1.0;
  for (std::size_t c = 0; c <= capacity; ++c) {
    cost[c] = v;
    double step = rng.uniform() * 0.08;
    if (rng.chance(0.12)) step += rng.uniform() * 0.35;
    v = std::max(0.0, v - step);
  }
  return cost;
}

TEST(Suh, SeesCliffsBehindPlateaus) {
  // The case the classic STTW misses entirely: Suh's segment greedy takes
  // the whole cliff atomically.
  std::vector<std::vector<double>> cost = {
      {1.0, 0.95, 0.91, 0.88, 0.86},
      {1.0, 1.0, 1.0, 1.0, 0.0},
  };
  SttwResult suh = suh_partition(cost, 4);
  EXPECT_EQ(suh.alloc[1], 4u);
  DpResult dp = optimize_partition(CostMatrix::from_rows(cost, 4).view(), 4);
  EXPECT_NEAR(suh.objective_value, dp.objective_value, 1e-12);
}

TEST(Suh, NeverBeatsDpAndUsuallyBeatsClassicSttw) {
  Rng rng(911);
  double suh_total = 0.0, classic_total = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    std::size_t p = 2 + rng.below(3);
    std::size_t cap = 6 + rng.below(14);
    std::vector<std::vector<double>> cost(p);
    for (auto& row : cost) row = random_cost_curve(rng, cap);
    CostMatrix flat = CostMatrix::from_rows(cost, cap);
    DpResult dp = optimize_partition(flat.view(), cap);
    SttwResult suh = suh_partition(cost, cap);
    SttwResult classic =
        sttw_partition(flat.view(), cap, SttwVariant::kLocalDerivative);
    EXPECT_GE(suh.objective_value + 1e-12, dp.objective_value);
    suh_total += suh.objective_value;
    classic_total += classic.objective_value;
  }
  EXPECT_LE(suh_total, classic_total + 1e-9);
}

TEST(Suh, AllocSumsToCapacity) {
  Rng rng(913);
  std::vector<std::vector<double>> cost(4);
  for (auto& row : cost) row = random_cost_curve(rng, 20);
  SttwResult r = suh_partition(cost, 20);
  std::size_t total = 0;
  for (auto c : r.alloc) total += c;
  EXPECT_EQ(total, 20u);
}

struct ElasticFixture {
  std::vector<ProgramModel> models;
  std::size_t capacity = 120;

  ElasticFixture() {
    models.push_back(
        model_of("zipf", make_zipf(30000, 200, 0.9, 121), 2.0, capacity));
    models.push_back(
        model_of("cliff", make_cyclic(30000, 70), 1.2, capacity));
    models.push_back(
        model_of("small", make_sawtooth(30000, 25), 0.8, capacity));
  }
  CoRunGroup group() const {
    return CoRunGroup({&models[0], &models[1], &models[2]});
  }
  CostMatrix costs() const {
    CostMatrix cost(models.size(), capacity);
    for (std::size_t i = 0; i < models.size(); ++i) {
      double* row = cost.row(i);
      for (std::size_t c = 0; c <= capacity; ++c)
        row[c] = models[i].access_rate * models[i].mrc.ratio(c);
    }
    return cost;
  }
};

TEST(Elastic, NoDemandsEqualsPlainOptimal) {
  ElasticFixture f;
  CoRunGroup g = f.group();
  CostMatrix cost = f.costs();
  ElasticResult elastic = optimize_elastic(
      g, cost.view(), f.capacity, std::vector<ElasticDemand>(3));
  DpResult plain = optimize_partition(cost.view(), f.capacity);
  ASSERT_TRUE(elastic.feasible);
  EXPECT_EQ(elastic.alloc, plain.alloc);
  EXPECT_EQ(elastic.elastic_units, f.capacity);
}

TEST(Elastic, CeilingsBecomeFloorsAndAreMet) {
  ElasticFixture f;
  CoRunGroup g = f.group();
  CostMatrix cost = f.costs();
  std::vector<ElasticDemand> demands(3);
  demands[2].max_miss_ratio = g[2].mrc.ratio(30);  // small program QoS
  ElasticResult r = optimize_elastic(g, cost.view(), f.capacity, demands);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.alloc[2], r.reserved[2]);
  EXPECT_LE(g[2].mrc.ratio(r.alloc[2]), *demands[2].max_miss_ratio + 1e-9);
}

TEST(Elastic, MinUnitsRespected) {
  ElasticFixture f;
  CoRunGroup g = f.group();
  std::vector<ElasticDemand> demands(3);
  demands[0].min_units = 50;
  ElasticResult r =
      optimize_elastic(g, f.costs().view(), f.capacity, demands);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.alloc[0], 50u);
  EXPECT_EQ(r.elastic_units, f.capacity - 50);
}

TEST(Elastic, InfeasibleContractsReported) {
  ElasticFixture f;
  CoRunGroup g = f.group();
  std::vector<ElasticDemand> demands(3);
  demands[0].min_units = 80;
  demands[1].min_units = 80;  // 160 > 120
  ElasticResult r =
      optimize_elastic(g, f.costs().view(), f.capacity, demands);
  EXPECT_FALSE(r.feasible);
  std::vector<ElasticDemand> impossible(3);
  impossible[1].max_miss_ratio = 0.0;  // cyclic program never reaches 0
  EXPECT_FALSE(
      optimize_elastic(g, f.costs().view(), f.capacity, impossible).feasible);
}

TEST(Controller, RunsAndConservesCapacity) {
  Trace a = make_zipf(40000, 200, 0.9, 131);
  Trace b = make_cyclic(40000, 120);
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 80000);
  ControllerConfig config;
  config.capacity = 256;
  config.epoch_length = 10000;
  config.sampling_rate = 0.2;
  ControllerResult r = run_online_controller(mix, 2, config);
  EXPECT_EQ(r.sim.total_accesses(), mix.length());
  EXPECT_GE(r.epochs, 6u);
  for (const auto& alloc : r.alloc_history) {
    std::size_t total = 0;
    for (auto c : alloc) total += c;
    EXPECT_EQ(total, config.capacity);
  }
  EXPECT_GT(r.sampled_fraction, 0.05);
  EXPECT_LT(r.sampled_fraction, 0.5);
}

TEST(Controller, BeatsEqualPartitioningOnSkewedPair) {
  // A cache-hungry loop vs a small program: equal split starves the loop;
  // the controller should discover the skewed split online.
  Trace hungry = make_cyclic(60000, 150);
  Trace small = make_sawtooth(60000, 20);
  InterleavedTrace mix =
      interleave_proportional({hungry, small}, {1.0, 1.0}, 120000);
  const std::size_t C = 200;

  CoRunResult equal = simulate_partitioned(mix, {100, 100});
  ControllerConfig config;
  config.capacity = C;
  config.epoch_length = 12000;
  config.sampling_rate = 0.5;
  ControllerResult online = run_online_controller(mix, 2, config);

  EXPECT_LT(online.sim.group_miss_ratio(),
            equal.group_miss_ratio() * 0.5);
  // The final allocation strongly favours the loop.
  const auto& last = online.alloc_history.back();
  EXPECT_GT(last[0], 150u);
}

TEST(Controller, TracksAMidRunBehaviourShift) {
  // Programs swap roles halfway: the controller's allocation must flip.
  Trace first_half_hungry = make_cyclic(30000, 150);
  Trace first_half_small = make_sawtooth(30000, 20);
  Trace a = first_half_hungry;
  a.append(make_sawtooth(30000, 20));
  Trace b = first_half_small;
  b.append(make_cyclic(30000, 150).relabeled(1000));
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 120000);

  ControllerConfig config;
  config.capacity = 200;
  config.epoch_length = 10000;
  config.sampling_rate = 0.5;
  ControllerResult r = run_online_controller(mix, 2, config);
  ASSERT_GE(r.alloc_history.size(), 10u);
  // Early epochs favour program 0; late epochs favour program 1.
  const auto& early = r.alloc_history[3];
  const auto& late = r.alloc_history.back();
  EXPECT_GT(early[0], early[1]);
  EXPECT_GT(late[1], late[0]);
}

TEST(Controller, RespectsQosFloors) {
  Trace a = make_cyclic(30000, 150);
  Trace b = make_sawtooth(30000, 20);
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 60000);
  ControllerConfig config;
  config.capacity = 200;
  config.epoch_length = 10000;
  config.min_units = 40;
  ControllerResult r = run_online_controller(mix, 2, config);
  for (const auto& alloc : r.alloc_history)
    for (auto units : alloc) EXPECT_GE(units, 40u);
}

TEST(Controller, LogsAndReconcilesEveryDecision) {
  Trace a = make_zipf(40000, 200, 0.9, 131);
  Trace b = make_cyclic(40000, 120);
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 80000);
  ControllerConfig config;
  config.capacity = 256;
  config.epoch_length = 10000;
  config.sampling_rate = 0.2;
  ControllerResult r = run_online_controller(mix, 2, config);

  ASSERT_NE(r.decisions, nullptr);
  obs::DecisionAccuracy acc = r.decisions->accuracy();
  // Startup decision + one per epoch; every one reconciled (the trailing
  // full epoch reconciles the last).
  EXPECT_EQ(acc.decisions_total, r.epochs + 1);
  EXPECT_EQ(acc.reconciled_total, acc.decisions_total);
  EXPECT_GT(acc.error_samples, 0u);
  EXPECT_TRUE(std::isfinite(acc.mean_abs_error));
  EXPECT_LE(acc.mean_abs_error, 1.0);

  // The audit ring mirrors alloc_history, newest first.
  std::vector<obs::DecisionRecord> recent = r.decisions->recent(4);
  ASSERT_GE(recent.size(), 2u);
  EXPECT_EQ(recent.front().id, r.decisions->last_id());
  EXPECT_EQ(recent.front().alloc, r.alloc_history.back());
  EXPECT_EQ(recent.front().tenants.size(), 2u);
  // 80000 % 10000 == 0: the trailing segment is a full epoch.
  EXPECT_FALSE(recent.front().partial);
  // The startup decision is the equal partition, trigger kFallback is
  // wrong for it — it must be recorded before the first epoch learns.
  obs::DecisionRecord first;
  ASSERT_TRUE(r.decisions->find(1, &first));
  EXPECT_EQ(first.epoch, 0u);
  for (std::size_t units : first.alloc) EXPECT_EQ(units, 128u);
}

TEST(Controller, TrailingPartialEpochReconcilesAsPartial) {
  Trace a = make_zipf(25000, 200, 0.9, 7);
  Trace b = make_cyclic(25000, 120);
  // 50000 total, epoch 12000: trailing 2000-access segment is partial.
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 50000);
  ControllerConfig config;
  config.capacity = 256;
  config.epoch_length = 12000;
  config.sampling_rate = 0.2;
  ControllerResult r = run_online_controller(mix, 2, config);

  std::vector<obs::DecisionRecord> recent = r.decisions->recent(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_TRUE(recent.front().reconciled);
  EXPECT_TRUE(recent.front().partial);
  EXPECT_EQ(r.decisions->accuracy().reconciled_total,
            r.decisions->accuracy().decisions_total);
}

TEST(Controller, FallbackDecisionsAreTaggedWithANote) {
  Trace a = make_zipf(40000, 200, 0.9, 131);
  Trace b = make_cyclic(40000, 120);
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 80000);
  ControllerConfig config;
  config.capacity = 256;
  config.epoch_length = 10000;
  config.sampling_rate = 0.2;
  ControllerHooks hooks;
  hooks.fail_dp = [](std::size_t epoch) { return epoch == 2; };
  ControllerResult r = run_online_controller(mix, 2, config, hooks);

  // Decision ids: 1 = startup, 1+k = epoch k's decision.
  obs::DecisionRecord held;
  ASSERT_TRUE(r.decisions->find(1 + 3, &held));  // epoch index 2
  EXPECT_EQ(held.trigger, obs::DecisionTrigger::kFallback);
  EXPECT_NE(held.note.find("dp failed"), std::string::npos);
  obs::DecisionRecord normal;
  ASSERT_TRUE(r.decisions->find(1 + 4, &normal));
  EXPECT_EQ(normal.trigger, obs::DecisionTrigger::kEpoch);
}

TEST(Controller, DriftDetectorFlagsAMidRunShift) {
  // Same role-swap workload as TracksAMidRunBehaviourShift: the epoch
  // after the swap, predictions built on the old behaviour miss badly,
  // so the |error| EWMA breaches and the alert names the decision.
  Trace a = make_cyclic(30000, 150);
  a.append(make_sawtooth(30000, 20));
  Trace b = make_sawtooth(30000, 20);
  b.append(make_cyclic(30000, 150).relabeled(1000));
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 120000);

  ControllerConfig config;
  config.capacity = 200;
  config.epoch_length = 10000;
  config.sampling_rate = 0.5;
  config.drift_threshold = 0.08;
  ControllerResult r = run_online_controller(mix, 2, config);

  EXPECT_TRUE(r.drift.configured);
  ASSERT_GE(r.drift_alerts.size(), 1u);
  const obs::DriftAlert& alert = r.drift_alerts.front();
  EXPECT_GT(alert.ewma_abs, config.drift_threshold);
  EXPECT_NE(alert.decision_id, 0u);
  EXPECT_FALSE(alert.tenant.empty());
  // The breach happens around the swap (~epoch 6 of 12), not at startup.
  EXPECT_GT(alert.decision_id, 3u);
}

TEST(Controller, DecisionPlaneDoesNotPerturbAllocations) {
  // OCPS_OBS=0 contract: with the registry disabled the solver outputs
  // must be bit-for-bit identical — the audit trail is passive.
  Trace a = make_zipf(30000, 200, 0.9, 99);
  Trace b = make_cyclic(30000, 120);
  InterleavedTrace mix = interleave_proportional({a, b}, {1.0, 1.0}, 60000);
  ControllerConfig config;
  config.capacity = 256;
  config.epoch_length = 8000;
  config.sampling_rate = 0.3;
  config.drift_threshold = 0.05;

  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  ControllerResult on = run_online_controller(mix, 2, config);
  obs::set_enabled(false);
  ControllerResult off = run_online_controller(mix, 2, config);
  obs::set_enabled(was_enabled);

  EXPECT_EQ(on.alloc_history, off.alloc_history);
  EXPECT_EQ(on.sim.misses, off.sim.misses);
  EXPECT_EQ(on.decisions->last_id(), off.decisions->last_id());
  EXPECT_EQ(on.drift_alerts.size(), off.drift_alerts.size());
}

TEST(Controller, RejectsBadConfig) {
  InterleavedTrace mix = interleave_proportional(
      {make_cyclic(100, 5)}, {1.0}, 100);
  ControllerConfig config;
  config.capacity = 0;
  EXPECT_THROW(run_online_controller(mix, 1, config), CheckError);
  config.capacity = 10;
  config.min_units = 20;
  EXPECT_THROW(run_online_controller(mix, 1, config), CheckError);
}

}  // namespace
}  // namespace ocps
