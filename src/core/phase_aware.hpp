// Phase-aware (dynamic) repartitioning — the extension the paper's Fig. 1
// points to.
//
// The one case where partition-sharing beats every static partition is
// synchronized phase behaviour: programs whose working sets alternate so
// a shared partition serves each peak in turn (§II, §VIII). A static
// partitioner cannot express that — but a *dynamic* one can: profile each
// program per epoch, run the same DP per epoch, and resize the partitions
// at epoch boundaries. This module implements that pipeline and a
// simulator hook (simulate_dynamic_partitioned) so the recovered benefit
// can be measured against free-for-all sharing and the best static
// partition (bench_phase_aware).
#pragma once

#include <vector>

#include "cachesim/corun.hpp"
#include "core/program_model.hpp"

namespace ocps {

/// Per-epoch, per-program models. epoch_models[e][p] is program p's model
/// profiled over epoch e of its trace.
struct EpochProfile {
  std::size_t epoch_length = 0;  ///< accesses per program per epoch
  std::vector<std::vector<ProgramModel>> epoch_models;

  std::size_t num_epochs() const { return epoch_models.size(); }
};

/// Splits each trace into `epochs` equal slices and profiles every slice.
/// All traces must have the same length.
EpochProfile profile_epochs(const std::vector<Trace>& traces,
                            const std::vector<double>& rates,
                            std::size_t epochs, std::size_t capacity);

/// Variable-length epochs: boundaries[k] is the first access index of
/// epoch k+1 (0 and the trace length are implicit). Typically produced by
/// merging the programs' detected phase boundaries (locality/phases).
/// The returned profile records per-epoch lengths in epoch_starts.
struct VariableEpochProfile {
  std::vector<std::size_t> epoch_starts;  ///< starts, incl. 0; size = epochs
  std::vector<std::vector<ProgramModel>> epoch_models;

  std::size_t num_epochs() const { return epoch_models.size(); }
};
VariableEpochProfile profile_epochs_at(const std::vector<Trace>& traces,
                                       const std::vector<double>& rates,
                                       const std::vector<std::size_t>& boundaries,
                                       std::size_t capacity);

/// Per-epoch DP over a variable-epoch profile. The plan's epoch k applies
/// from epoch_starts[k] (per-program access index).
struct VariablePhasePlan {
  std::vector<std::size_t> epoch_starts;
  std::vector<std::vector<std::size_t>> alloc_per_epoch;
};
VariablePhasePlan phase_aware_optimize_at(const VariableEpochProfile& profile,
                                          std::size_t capacity);

/// Simulates resizable per-program partitions switching at the
/// *interleaved-trace* positions corresponding to the per-program epoch
/// starts (start * num_programs, under proportional interleave of
/// equal-length traces).
CoRunResult simulate_variable_partitioned(const InterleavedTrace& trace,
                                          const VariablePhasePlan& plan,
                                          std::size_t num_programs,
                                          const CoRunOptions& options = {});

/// A dynamic partitioning plan: one allocation per epoch.
struct PhaseAwarePlan {
  std::vector<std::vector<std::size_t>> alloc_per_epoch;
  double predicted_group_mr = 0.0;  ///< model-predicted, averaged over epochs
};

/// Runs the DP independently per epoch (each epoch's cost curves come from
/// that epoch's models).
PhaseAwarePlan phase_aware_optimize(const EpochProfile& profile,
                                    std::size_t capacity);

/// Simulates per-program LRU partitions that are resized (LRU-evicting on
/// shrink) at the interleaved-trace positions corresponding to epoch
/// boundaries. plan.alloc_per_epoch[e][p] is program p's partition in
/// epoch e; epochs divide the interleaved trace evenly.
CoRunResult simulate_dynamic_partitioned(const InterleavedTrace& trace,
                                         const PhaseAwarePlan& plan,
                                         const CoRunOptions& options = {});

}  // namespace ocps
