// Fixed-width text tables and CSV output for the benchmark harness.
//
// Every bench binary prints the paper's table/figure data both as an
// aligned human-readable table (stdout) and, when asked, as CSV so the
// series can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ocps {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
 public:
  /// Sets the header row. Column count is fixed by the header.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);
  /// Formats a ratio as a percentage string, e.g. 0.264 -> "26.40%".
  static std::string pct(double v, int precision = 2);

  /// Writes the aligned table to os.
  void print(std::ostream& os) const;

  /// Writes the table as CSV to os.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ocps
