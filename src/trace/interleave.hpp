// Rate-proportional interleaving of per-program traces into one shared
// trace.
//
// The composition theory (§IV) treats a co-run as a single interleaved
// trace in which program i contributes a fraction r_i / Σr of the accesses.
// The shared-cache simulator consumes the interleaved trace; its per-access
// owner tags let us attribute misses and sample occupancies per program.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace ocps {

/// An interleaved multi-program trace: blocks plus the owning program id
/// for each access. Block id spaces of the inputs are disjointified first.
struct InterleavedTrace {
  std::vector<Block> blocks;
  std::vector<std::uint32_t> owners;

  std::size_t length() const { return blocks.size(); }
};

/// Deterministic proportional interleave: programs are merged so that after
/// k total accesses, program i has contributed ~ k * r_i / Σr accesses
/// (largest-remainder / Bresenham schedule). Each input trace is consumed
/// cyclically until `total_length` accesses are emitted, so short traces
/// wrap around — matching the paper's steady-state model. Rates must be
/// positive; traces must be non-empty.
InterleavedTrace interleave_proportional(const std::vector<Trace>& traces,
                                         const std::vector<double>& rates,
                                         std::size_t total_length);

/// Stochastic interleave: at every step, program i is chosen with
/// probability r_i / Σr. Models the paper's "random phase interaction"
/// assumption (§VIII). Deterministic given the seed.
InterleavedTrace interleave_stochastic(const std::vector<Trace>& traces,
                                       const std::vector<double>& rates,
                                       std::size_t total_length,
                                       std::uint64_t seed);

}  // namespace ocps
