#include "workloads/spec_like.hpp"

#include "util/check.hpp"

namespace ocps {

Trace WorkloadSpec::generate(std::size_t length) const {
  switch (kind) {
    case Kind::kCyclic:
      return make_cyclic(length, param0);
    case Kind::kSawtooth:
      return make_sawtooth(length, param0);
    case Kind::kZipf:
      return make_zipf(length, param0, fparam, seed);
    case Kind::kUniform:
      return make_uniform(length, param0, seed);
    case Kind::kHotCold:
      return make_hot_cold(length, param0, param1, fparam, seed);
    case Kind::kScanMix:
      return make_scan_mix(length, param0, fparam, scans, seed);
    case Kind::kPhased: {
      // Three cyclic phases over the same block region (nested working
      // sets), repeated four times: a multi-cliff, non-convex MRC with the
      // strong phase behaviour of §II / Fig. 1.
      std::size_t phase_len = std::max<std::size_t>(1, length / 12);
      std::vector<Phase> phases = {
          {phase_len, param0, 0, false},
          {phase_len, param1, 0, false},
          {phase_len, fparam >= 1.0 ? static_cast<std::size_t>(fparam)
                                    : param0,
           0, false},
      };
      return make_phased(phases, 4);
    }
  }
  OCPS_CHECK(false, "unknown workload kind");
  return {};
}

namespace {

std::vector<WorkloadSpec> build_suite() {
  // The 16 SPEC CPU2006 stand-ins, calibrated so that at the paper's
  // configuration (C = 1024 units, equal share 256) the equal-partition
  // miss ratios span ~0.01%..7% like the paper's Fig. 5, with
  //  * gainers: big-data programs with gradually decreasing MRCs and high
  //    access rates (lbm, sphinx3, omnetpp, bzip2, plus low-miss hmmer and
  //    tonto — the paper's exceptions),
  //  * losers: hot-set programs whose natural occupancy under sharing
  //    drops below their equal share (perlbench, sjeng, h264ref, namd,
  //    povray),
  //  * non-convex cliffed programs that break STTW (mcf, soplex, zeusmp,
  //    dealII, wrf): a small hot set plus cyclic background scans gives a
  //    miss-ratio plateau with a hard drop where a scan starts to fit.
  // Rates are relative access frequencies (the paper's ar_i, §IV); seeds
  // fix every stochastic generator.
  std::vector<WorkloadSpec> suite;
  auto add = [&](const std::string& name, double rate, WorkloadSpec::Kind kind,
                 std::size_t p0, std::size_t p1, double fp, std::uint64_t seed,
                 std::vector<ScanComponent> scans = {}) {
    WorkloadSpec s;
    s.name = name;
    s.access_rate = rate;
    s.kind = kind;
    s.param0 = p0;
    s.param1 = p1;
    s.fparam = fp;
    s.seed = seed;
    s.scans = std::move(scans);
    suite.push_back(std::move(s));
  };
  using K = WorkloadSpec::Kind;

  // The paper's listing order (§VII-A).
  add("perlbench", 0.9, K::kZipf, 300, 0, 1.00, 101);  // hot set, loser
  add("bzip2", 1.8, K::kScanMix, 140, 0, 0.70, 102,
      {{1400, 0.012}});                                // gentle tail, gainer
  add("mcf", 2.0, K::kScanMix, 120, 0, 0.80, 103,
      {{800, 0.100}});                                 // cliff ~920
  add("zeusmp", 1.5, K::kScanMix, 80, 0, 0.70, 104,
      {{150, 0.030}, {520, 0.040}});                   // multi-cliff
  add("namd", 0.7, K::kSawtooth, 130, 0, 0.0, 105);    // tiny set, loser
  add("dealII", 1.3, K::kScanMix, 100, 0, 0.90, 106,
      {{400, 0.060}});                                 // cliff ~500
  add("soplex", 1.4, K::kScanMix, 90, 0, 0.80, 107,
      {{240, 0.050}, {620, 0.050}});                   // multi-cliff
  add("povray", 0.6, K::kZipf, 70, 0, 1.30, 108);      // near-zero mr
  add("hmmer", 1.2, K::kHotCold, 50, 900, 0.990, 109); // low mr, gains
  add("sjeng", 0.8, K::kZipf, 250, 0, 1.10, 110);      // small, loser
  add("h264ref", 1.1, K::kZipf, 300, 0, 1.30, 111);    // convex, low mr
  add("tonto", 1.0, K::kHotCold, 60, 1100, 0.994, 112);// low mr, gains
  add("lbm", 3.0, K::kHotCold, 100, 2000, 0.925, 113); // streaming gainer
  add("omnetpp", 2.0, K::kZipf, 1100, 0, 1.35, 114);   // big smooth gainer
  add("wrf", 1.2, K::kScanMix, 80, 0, 0.70, 115,
      {{180, 0.030}, {600, 0.040}});                   // multi-cliff
  add("sphinx3", 2.6, K::kHotCold, 110, 1500, 0.955, 116); // streaming
  return suite;
}

}  // namespace

const std::vector<WorkloadSpec>& spec2006_suite() {
  static const std::vector<WorkloadSpec> suite = build_suite();
  return suite;
}

const WorkloadSpec& find_workload(const std::string& name) {
  for (const auto& s : spec2006_suite())
    if (s.name == name) return s;
  OCPS_CHECK(false, "no workload named '" << name << "'");
  // Unreachable; OCPS_CHECK throws.
  return spec2006_suite().front();
}

}  // namespace ocps
