# Empty dependencies file for test_belady_ways.
# This may be replaced when dependencies are built.
