// Quickstart: the whole pipeline on two programs, in ~60 lines of API.
//
//   trace -> reuse profile -> footprint -> miss-ratio curve  (per program)
//   models -> co-run prediction -> natural partition          (composition)
//   models -> optimal / fair partitions                       (DP, §V-§VI)
//
// Build and run:  ./build/examples/quickstart
#include <iostream>

#include "ocps.hpp"

using namespace ocps;

int main() {
  const std::size_t kCache = 256;  // shared cache size in blocks

  // 1. Get memory traces. Here: a Zipfian pointer-chaser and a scan-heavy
  //    program with a working-set cliff. In a real deployment these come
  //    from a binary-instrumentation or sampling profiler.
  Trace t_zipf = make_zipf(300000, 400, 1.0, /*seed=*/1);
  Trace t_scan = make_scan_mix(300000, 60, 0.8, {{180, 0.08}}, /*seed=*/2);

  // 2. Profile each trace once: reuse times -> average footprint fp(w),
  //    then the HOTL miss-ratio curve mr(c) (Eq. 10). access_rate is the
  //    program's relative access frequency (accesses per unit time).
  ProgramModel zipfy =
      make_program_model("zipfy", /*access_rate=*/1.0,
                         compute_footprint(t_zipf), kCache);
  ProgramModel scanner =
      make_program_model("scanner", /*access_rate=*/2.0,
                         compute_footprint(t_scan), kCache);

  // 3. Predict the co-run. The natural partition (§V-A) is the steady-
  //    state occupancy split under free-for-all sharing; each program's
  //    shared-cache miss ratio is its solo miss ratio at that occupancy.
  CoRunGroup group({&zipfy, &scanner});
  auto occupancy = natural_partition(group, kCache);
  auto shared_mr = predict_shared_miss_ratios(group, kCache);
  std::cout << "Free-for-all sharing (predicted):\n";
  for (std::size_t i = 0; i < group.size(); ++i)
    std::cout << "  " << group[i].name << ": occupancy "
              << TextTable::num(occupancy[i], 1) << " blocks, miss ratio "
              << TextTable::num(shared_mr[i], 4) << "\n";
  std::cout << "  group miss ratio "
            << TextTable::num(group_miss_ratio(group, shared_mr), 4)
            << "\n\n";

  // 4. Optimize. Cost curves weight each program's miss ratio by its
  //    access rate, so minimizing the sum minimizes the group miss ratio.
  auto shares = group.rate_shares();
  CostMatrix cost = weighted_cost_matrix({&zipfy.mrc, &scanner.mrc},
                                         {shares[0], shares[1]}, kCache);
  DpResult optimal = optimize_partition(cost.view(), kCache);
  std::cout << "Optimal partition: " << zipfy.name << "="
            << optimal.alloc[0] << ", " << scanner.name << "="
            << optimal.alloc[1] << "  (group mr "
            << TextTable::num(optimal.objective_value, 4) << ")\n";

  // 5. Fairness: the same DP with baseline constraints (§VI) — optimize
  //    the group without making any program worse than equal partitioning.
  DpResult fair = optimize_equal_baseline(group, cost.view(), kCache);
  std::cout << "Equal-baseline partition: " << zipfy.name << "="
            << fair.alloc[0] << ", " << scanner.name << "=" << fair.alloc[1]
            << "  (group mr " << TextTable::num(fair.objective_value, 4)
            << ")\n";

  auto equal = equal_partition(2, kCache);
  double equal_mr =
      shares[0] * zipfy.mrc.ratio(equal[0]) +
      shares[1] * scanner.mrc.ratio(equal[1]);
  std::cout << "Equal partition (" << equal[0] << "/" << equal[1]
            << "): group mr " << TextTable::num(equal_mr, 4) << "\n";
  return 0;
}
