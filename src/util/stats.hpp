// Summary statistics used by the evaluation harness (Table I reports Max /
// Avg / Median improvements and the fraction of groups improved by at least
// a threshold).
#pragma once

#include <cstddef>
#include <vector>

namespace ocps {

/// Summary of a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
};

/// Computes min/max/mean/median/stddev of xs. Empty input yields a
/// zero-initialized Summary with count == 0.
Summary summarize(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty xs.
double percentile(std::vector<double> xs, double p);

/// Fraction of xs (in [0,1]) that are >= threshold. Zero for empty input.
double fraction_at_least(const std::vector<double>& xs, double threshold);

/// Arithmetic mean; zero for empty input.
double mean_of(const std::vector<double>& xs);

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample has zero variance.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace ocps
