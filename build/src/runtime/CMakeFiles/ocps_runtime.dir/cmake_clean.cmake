file(REMOVE_RECURSE
  "CMakeFiles/ocps_runtime.dir/controller.cpp.o"
  "CMakeFiles/ocps_runtime.dir/controller.cpp.o.d"
  "libocps_runtime.a"
  "libocps_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocps_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
