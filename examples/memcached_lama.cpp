// Example: LAMA-style memory allocation for a key-value cache (Hu et al.,
// USENIX ATC'15 — cited in §IX as an independent application of the same
// footprint theory). A memcached-like server divides memory among slab
// classes; each class serves its own key population. Treating each class
// as a "program" and memory as the "cache", the identical pipeline —
// footprint -> MRC -> DP — computes the optimal per-class memory split,
// and the natural partition predicts what memcached's default
// (demand-driven, free-for-all) allocation converges to.
#include <iostream>

#include "ocps.hpp"

using namespace ocps;

int main() {
  // Memory in 1MB pages; each slab class stores objects of one size, so a
  // page holds a class-specific number of objects. We model each class's
  // *object-granularity* footprint and convert pages -> objects.
  const std::size_t kPagesTotal = 512;

  struct SlabClass {
    std::string name;
    std::size_t objects_per_page;
    double request_rate;   // requests/second share
    Trace trace;           // key-access trace (object granularity)
  };
  // Key populations sized so that full residency would need ~3x the
  // available memory (234 + 312 + 500 + 625 pages) — real contention.
  std::vector<SlabClass> classes;
  classes.push_back(
      {"64B-values", 512, 6.0, make_zipf(400000, 120000, 1.05, 11)});
  classes.push_back(
      {"1KB-values", 64, 3.0, make_zipf(400000, 20000, 0.95, 12)});
  classes.push_back(
      {"16KB-values", 16, 1.0, make_hot_cold(400000, 500, 7500, 0.85, 13)});
  classes.push_back(
      {"128KB-values", 4, 0.3, make_uniform(400000, 2500, 14)});

  // Profile each class and express its MRC in *pages* by sampling the
  // object-granularity miss ratio at c_pages * objects_per_page.
  std::vector<ProgramModel> models;
  CostMatrix cost(classes.size(), kPagesTotal);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const auto& sc = classes[i];
    // The dense MRC only needs to reach the class's data size — beyond it
    // the curve is flat at the cold-miss ratio (ratio_at clamps there).
    FootprintCurve fp = compute_footprint(sc.trace);
    std::size_t mrc_cap = std::min<std::size_t>(
        kPagesTotal * sc.objects_per_page,
        static_cast<std::size_t>(fp.distinct) + 1);
    ProgramModel object_model =
        make_program_model(sc.name, sc.request_rate, fp, mrc_cap);
    double* row = cost.row(i);
    for (std::size_t pages = 0; pages <= kPagesTotal; ++pages) {
      double objects = static_cast<double>(pages) *
                       static_cast<double>(sc.objects_per_page);
      row[pages] = sc.request_rate * object_model.mrc.ratio_at(objects);
    }
    models.push_back(std::move(object_model));
  }

  double rate_sum = 0.0;
  for (const auto& sc : classes) rate_sum += sc.request_rate;

  // Default memcached behaviour ~ proportional to demand (request rate).
  std::vector<std::size_t> demand_split(classes.size());
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    demand_split[i] = static_cast<std::size_t>(
        static_cast<double>(kPagesTotal) * classes[i].request_rate /
        rate_sum);
    assigned += demand_split[i];
  }
  demand_split[0] += kPagesTotal - assigned;

  // LAMA: the DP optimal split over the composed miss-ratio curves.
  DpResult lama = optimize_partition(cost.view(), kPagesTotal);

  TextTable t({"slab class", "demand-prop pages", "LAMA pages",
               "demand-prop miss", "LAMA miss"});
  double demand_mr = 0.0, lama_mr = 0.0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    double d = cost(i, demand_split[i]) / classes[i].request_rate;
    double l = cost(i, lama.alloc[i]) / classes[i].request_rate;
    demand_mr += classes[i].request_rate / rate_sum * d;
    lama_mr += classes[i].request_rate / rate_sum * l;
    t.add_row({classes[i].name, std::to_string(demand_split[i]),
               std::to_string(lama.alloc[i]), TextTable::num(d, 4),
               TextTable::num(l, 4)});
  }
  std::cout << "=== LAMA-style slab memory allocation (" << kPagesTotal
            << " pages) ===\n\n";
  t.print(std::cout);
  std::cout << "\noverall miss ratio: demand-proportional "
            << TextTable::num(demand_mr, 4) << " vs LAMA/DP "
            << TextTable::num(lama_mr, 4) << " ("
            << TextTable::pct((demand_mr - lama_mr) / std::max(lama_mr, 1e-9),
                              1)
            << " improvement)\n";
  std::cout << "\nSame theory, different resource: the paper's cache-"
               "partitioning DP is LAMA's memory allocator (§IX).\n";
  return 0;
}
