// §VII-C validation: HOTL co-run prediction vs measurement. The paper
// leans on Xiang et al.'s 190-pair hardware-counter validation (Fig. 9 of
// [16]); our measurement substrate is the exact shared-cache LRU simulator
// over interleaved traces. For every program pair we compare the predicted
// per-program shared-cache miss ratio (Eq. 11 via natural occupancies)
// against simulation, and report the error distribution and correlation
// (paper cites a locality-performance correlation of 0.938).
#include <iostream>

#include "cachesim/corun.hpp"
#include "combinatorics/enumerate.hpp"
#include "common.hpp"
#include "trace/interleave.hpp"
#include "util/config.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Suite suite = load_suite();
  const std::size_t capacity = suite.options.capacity;
  const std::size_t sim_len = static_cast<std::size_t>(
      env_int("OCPS_SIM_LENGTH", 600000));
  const std::size_t warmup = sim_len / 4;

  auto pairs = all_subsets(
      static_cast<std::uint32_t>(suite.models.size()), 2);
  std::int64_t limit =
      env_int("OCPS_PAIR_LIMIT", static_cast<std::int64_t>(pairs.size()));
  if (limit > 0 && static_cast<std::size_t>(limit) < pairs.size())
    pairs.resize(static_cast<std::size_t>(limit));

  std::cout << "=== §VII-C validation: predicted vs simulated shared-cache "
               "miss ratios, "
            << pairs.size() << " pairs, C=" << capacity << " ===\n\n";

  struct Row {
    std::string name;
    double predicted[2];
    double simulated[2];
  };
  std::vector<Row> rows(pairs.size());

  parallel_for(0, pairs.size(), [&](std::size_t i) {
    const auto& pr = pairs[i];
    const ProgramModel& a = suite.models[pr[0]];
    const ProgramModel& b = suite.models[pr[1]];
    CoRunGroup group({&a, &b});
    auto predicted =
        predict_shared_miss_ratios(group, static_cast<double>(capacity));

    Trace ta = suite_trace(suite, pr[0]);
    Trace tb = suite_trace(suite, pr[1]);
    InterleavedTrace mix = interleave_proportional(
        {ta, tb}, {a.access_rate, b.access_rate}, sim_len);
    CoRunOptions opt;
    opt.warmup = warmup;
    CoRunResult sim = simulate_shared(mix, capacity, opt);

    rows[i] = Row{a.name + "+" + b.name,
                  {predicted[0], predicted[1]},
                  {sim.miss_ratio(0), sim.miss_ratio(1)}};
  });

  std::vector<double> pred_all, sim_all, abs_err;
  for (const auto& r : rows) {
    for (int k = 0; k < 2; ++k) {
      pred_all.push_back(r.predicted[k]);
      sim_all.push_back(r.simulated[k]);
      abs_err.push_back(std::abs(r.predicted[k] - r.simulated[k]));
    }
  }
  Summary err = summarize(abs_err);

  TextTable t({"pair", "pred_0", "sim_0", "pred_1", "sim_1"});
  std::size_t step = std::max<std::size_t>(1, rows.size() / 24);
  for (std::size_t i = 0; i < rows.size(); i += step)
    t.add_row({rows[i].name, TextTable::num(rows[i].predicted[0], 4),
               TextTable::num(rows[i].simulated[0], 4),
               TextTable::num(rows[i].predicted[1], 4),
               TextTable::num(rows[i].simulated[1], 4)});
  emit_table(t, "validation_hotl_sample");

  TextTable full({"pair", "program", "predicted", "simulated"});
  for (const auto& r : rows)
    for (int k = 0; k < 2; ++k)
      full.add_row({r.name, std::to_string(k),
                    TextTable::num(r.predicted[k], 6),
                    TextTable::num(r.simulated[k], 6)});
  emit_csv_only(full, "validation_hotl_full");

  std::cout << "\n" << 2 * rows.size() << " per-program miss ratios:\n";
  std::cout << "  mean abs error:   " << TextTable::num(err.mean, 5) << "\n";
  std::cout << "  median abs error: " << TextTable::num(err.median, 5)
            << "\n";
  std::cout << "  max abs error:    " << TextTable::num(err.max, 5) << "\n";
  std::cout << "  pred-vs-sim correlation: "
            << TextTable::num(pearson(pred_all, sim_all), 4) << "\n";
  std::cout << "\nPaper: prediction 'accurate or nearly accurate for all "
               "but two' of 380 measured miss ratios; correlation with "
               "performance 0.938. A high correlation (>0.9) and small "
               "median error validate the Natural Partition Assumption "
               "here.\n";
  return 0;
}
