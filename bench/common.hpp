// Shared plumbing for the bench harness binaries.
//
// Every table/figure binary needs the profiled 16-program suite and most
// need the full 1820-group six-method sweep. Both are cached on disk
// (directory OCPS_SUITE_CACHE, default ./ocps_cache) so that running all
// bench binaries back to back profiles and sweeps only once — mirroring
// the paper's persisted footprint files.
//
// Environment knobs:
//   OCPS_TRACE_LENGTH  accesses per program           (default 400000)
//   OCPS_CAPACITY      cache size in 8KB-like units   (default 1024)
//   OCPS_GROUP_LIMIT   cap on number of co-run groups (default all 1820)
//   OCPS_SUITE_CACHE   cache directory                (default ./ocps_cache)
//   OCPS_CSV_DIR       when set, figure series are also written as CSV
#pragma once

#include <string>
#include <vector>

#include "core/group_sweep.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

namespace ocps::bench {

/// Suite + sweep bundle used by the Table I / Fig 5-7 binaries.
struct Evaluation {
  Suite suite;
  std::vector<std::vector<std::uint32_t>> groups;
  std::vector<GroupEvaluation> sweep;
  std::size_t capacity = 0;
};

/// Builds the suite from env options (with on-disk footprint cache).
Suite load_suite();

/// Builds the suite and runs (or loads from cache) the full group sweep.
Evaluation load_evaluation();

/// Writes a table to stdout, and to `<OCPS_CSV_DIR>/<name>.csv` when the
/// env var is set.
void emit_table(const TextTable& table, const std::string& name);

/// Writes a table only to `<OCPS_CSV_DIR>/<name>.csv` (no stdout); used for
/// full figure series too long to print.
void emit_csv_only(const TextTable& table, const std::string& name);

/// Serialization of sweeps (exposed for tests of the cache layer).
void save_sweep(const std::vector<GroupEvaluation>& sweep,
                const std::string& path);
std::vector<GroupEvaluation> load_sweep(const std::string& path);

}  // namespace ocps::bench
