#include "cachesim/corun.hpp"

#include <unordered_map>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ocps {

double CoRunResult::miss_ratio(std::size_t program) const {
  OCPS_CHECK(program < accesses.size(), "program index out of range");
  return accesses[program] == 0
             ? 0.0
             : static_cast<double>(misses[program]) /
                   static_cast<double>(accesses[program]);
}

double CoRunResult::group_miss_ratio() const {
  std::uint64_t a = total_accesses();
  return a == 0 ? 0.0
                : static_cast<double>(total_misses()) / static_cast<double>(a);
}

std::uint64_t CoRunResult::total_accesses() const {
  std::uint64_t s = 0;
  for (auto a : accesses) s += a;
  return s;
}

std::uint64_t CoRunResult::total_misses() const {
  std::uint64_t s = 0;
  for (auto m : misses) s += m;
  return s;
}

namespace {

std::size_t num_programs(const InterleavedTrace& trace) {
  std::uint32_t p = 0;
  for (auto o : trace.owners) p = std::max(p, o + 1);
  return p;
}

}  // namespace

CoRunResult simulate_shared(const InterleavedTrace& trace,
                            std::size_t capacity,
                            const CoRunOptions& options) {
  obs::ScopedSpan span("sim.shared_corun", "cachesim");
  span.set_arg("accesses", trace.length());
  const std::size_t p = num_programs(trace);
  CoRunResult out;
  out.accesses.assign(p, 0);
  out.misses.assign(p, 0);

  LruCache cache(capacity);
  // Owner of each resident block, for occupancy accounting.
  std::unordered_map<Block, std::uint32_t> owner_of;
  owner_of.reserve(capacity * 2 + 16);
  std::vector<std::uint64_t> occupancy(p, 0);
  std::vector<double> occ_sum(p, 0.0);
  std::uint64_t occ_samples = 0;

  for (std::size_t t = 0; t < trace.length(); ++t) {
    Block b = trace.blocks[t];
    std::uint32_t who = trace.owners[t];
    bool hit = cache.access(b);
    if (!hit && capacity > 0) {
      Block victim;
      if (cache.last_eviction(&victim)) {
        auto it = owner_of.find(victim);
        OCPS_CHECK(it != owner_of.end(), "evicted block without owner");
        --occupancy[it->second];
        owner_of.erase(it);
      }
      owner_of.emplace(b, who);
      ++occupancy[who];
    }
    if (t >= options.warmup) {
      ++out.accesses[who];
      if (!hit) ++out.misses[who];
      if (options.occupancy_period > 0 &&
          (t % options.occupancy_period) == 0) {
        for (std::size_t i = 0; i < p; ++i)
          occ_sum[i] += static_cast<double>(occupancy[i]);
        ++occ_samples;
      }
    }
  }
  if (occ_samples > 0) {
    out.mean_occupancy.resize(p);
    for (std::size_t i = 0; i < p; ++i)
      out.mean_occupancy[i] = occ_sum[i] / static_cast<double>(occ_samples);
  }
  return out;
}

CoRunResult simulate_partition_sharing(
    const InterleavedTrace& trace, const std::vector<std::uint32_t>& group_of,
    const std::vector<std::size_t>& group_sizes,
    const CoRunOptions& options) {
  obs::ScopedSpan span("sim.partitioned_corun", "cachesim");
  span.set_arg("accesses", trace.length());
  const std::size_t p = num_programs(trace);
  OCPS_CHECK(group_of.size() >= p,
             "group_of must cover all " << p << " programs");
  for (std::size_t i = 0; i < p; ++i)
    OCPS_CHECK(group_of[i] < group_sizes.size(),
               "program " << i << " mapped to missing group " << group_of[i]);

  std::vector<LruCache> partitions;
  partitions.reserve(group_sizes.size());
  for (std::size_t s : group_sizes) partitions.emplace_back(s);

  CoRunResult out;
  out.accesses.assign(p, 0);
  out.misses.assign(p, 0);
  for (std::size_t t = 0; t < trace.length(); ++t) {
    std::uint32_t who = trace.owners[t];
    bool hit = partitions[group_of[who]].access(trace.blocks[t]);
    if (t >= options.warmup) {
      ++out.accesses[who];
      if (!hit) ++out.misses[who];
    }
  }
  return out;
}

CoRunResult simulate_partitioned(
    const InterleavedTrace& trace,
    const std::vector<std::size_t>& partition_sizes,
    const CoRunOptions& options) {
  std::vector<std::uint32_t> identity(partition_sizes.size());
  for (std::size_t i = 0; i < identity.size(); ++i)
    identity[i] = static_cast<std::uint32_t>(i);
  return simulate_partition_sharing(trace, identity, partition_sizes, options);
}

}  // namespace ocps
