// HOTL conversions (§III Eq. 6-8, Eq. 10): footprint → fill time →
// inter-miss time → miss ratio.
//
// The key derived quantity is the miss-ratio curve: for a fully-associative
// LRU cache of size c, choose the window length w with fp(w) = c; then
//
//   mr(c) = fp(w + 1) - c                                   (Eq. 10)
//
// i.e. the expected number of *new* blocks brought in by extending the
// average window by one access, which is exactly the probability that the
// next access misses. The result is floored at the cold-miss ratio m/n
// (compulsory misses never go away) and clamped into [0, 1].
#pragma once

#include "locality/footprint.hpp"
#include "locality/mrc.hpp"

namespace ocps {

/// Fill time ft(c): expected number of accesses to touch c distinct blocks
/// (the inverse footprint, Eq. 6). c may be fractional.
double fill_time(const FootprintCurve& fp, double c);

/// Inter-miss time im(c) = ft(c+1) - ft(c) (Eq. 7).
double inter_miss_time(const FootprintCurve& fp, double c);

/// Miss ratio at a single (possibly fractional) cache size via Eq. 10.
double hotl_miss_ratio(const FootprintCurve& fp, double cache_size);

/// Dense miss-ratio curve for cache sizes 0..capacity units.
/// `accesses` defaults to the profiled trace length.
MissRatioCurve hotl_mrc(const FootprintCurve& fp, std::size_t capacity);

}  // namespace ocps
