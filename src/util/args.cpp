#include "util/args.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace ocps {

ArgParser::ArgParser(int argc, const char* const* argv,
                     const std::vector<std::string>& flags) {
  bool options_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (options_done || token.empty() || token[0] != '-' || token == "-") {
      positional_.push_back(token);
      continue;
    }
    if (token == "--") {
      options_done = true;
      continue;
    }
    std::string name = token;
    while (!name.empty() && name[0] == '-') name.erase(name.begin());
    // --key=value form.
    auto eq = name.find('=');
    if (eq != std::string::npos) {
      options_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    bool is_flag =
        std::find(flags.begin(), flags.end(), name) != flags.end();
    if (is_flag || i + 1 >= argc) {
      options_[name] = "";
    } else {
      options_[name] = argv[++i];
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  OCPS_CHECK(end && *end == '\0' && end != it->second.c_str(),
             "option --" << name << " expects an integer, got '"
                         << it->second << "'");
  return static_cast<std::int64_t>(v);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  OCPS_CHECK(end && *end == '\0' && end != it->second.c_str(),
             "option --" << name << " expects a number, got '" << it->second
                         << "'");
  return v;
}

std::vector<std::string> ArgParser::unknown_options(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_) {
    (void)value;
    if (std::find(known.begin(), known.end(), name) == known.end())
      out.push_back(name);
  }
  return out;
}

}  // namespace ocps
