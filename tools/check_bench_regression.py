#!/usr/bin/env python3
"""Gate CI on bench_dp_speed regressions against the committed baseline.

Compares a google-benchmark JSON output file (produced by
``bench_dp_speed --benchmark_out=... --benchmark_out_format=json``)
against ``BENCH_dp_speed.json``'s ``microbenchmarks_after_ms`` table and

* **fails** (exit 1) when a gated benchmark — by default the batched-sweep
  ones, the whole point of the PR 3 engine — is more than ``--threshold``
  (default 25%) slower than its committed baseline, and
* **degrades to warn-only** when the run looks noisy: with
  ``--benchmark_repetitions`` the spread between a benchmark's fastest and
  slowest repetition is computed, and if any gated benchmark's spread
  exceeds ``--noise-threshold`` (default 10%) the runner is deemed too
  noisy to gate hard — regressions are printed but the exit code stays 0.

Absolute times move with the runner's CPU, so the gate also checks a
machine-independent anchor: the *ratio* of the batched sweep to the
per-group sweep. The committed baseline has batched ≈ 2× faster; if the
measured ratio loses more than ``--threshold`` of that advantage, the
batching engine itself regressed no matter how fast the runner is.

Usage:
    tools/check_bench_regression.py bench_dp_speed_ci.json \
        [--baseline BENCH_dp_speed.json] [--threshold 0.25] \
        [--noise-threshold 0.10] [--gate-prefix BM_GroupSweep]

Only Python 3 stdlib is used.
"""

from __future__ import annotations

import argparse
import json
import re
import sys


def normalise(run_name: str) -> str:
    """Strips runtime-option suffixes (``/iterations:1``, ``/repeats:3``,
    ``/real_time`` ...) so names match the baseline's plain keys."""
    return re.sub(r"/(iterations|repeats|min_time|min_warmup_time"
                  r"|process_time|real_time|manual_time)(:[^/]*)?", "",
                  run_name)


def load_measurements(path: str) -> tuple[dict[str, float], dict[str, float]]:
    """Returns (mean ms per benchmark, max relative spread per benchmark).

    With --benchmark_repetitions google-benchmark emits one entry per
    repetition plus ``_mean``/``_median``/``_stddev`` aggregates; without,
    a single entry per benchmark. Handles both. Times are normalised to
    milliseconds.
    """
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)

    unit_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
    reps: dict[str, list[float]] = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        name = normalise(entry.get("run_name", entry["name"]))
        scale = unit_ms.get(entry.get("time_unit", "ns"))
        if scale is None:
            raise SystemExit(f"unknown time_unit in {path}: {entry}")
        reps.setdefault(name, []).append(float(entry["real_time"]) * scale)

    means = {name: sum(ts) / len(ts) for name, ts in reps.items()}
    spreads = {}
    for name, ts in reps.items():
        lo, hi = min(ts), max(ts)
        spreads[name] = (hi - lo) / lo if len(ts) > 1 and lo > 0 else 0.0
    return means, spreads


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="google-benchmark JSON output")
    parser.add_argument("--baseline", default="BENCH_dp_speed.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative slowdown that fails the gate")
    parser.add_argument("--noise-threshold", type=float, default=0.10,
                        help="repetition spread above which the gate "
                             "only warns")
    parser.add_argument("--gate-prefix", default="BM_GroupSweep",
                        help="benchmarks whose regressions fail the build; "
                             "others are reported informationally")
    args = parser.parse_args()

    with open(args.baseline, "r", encoding="utf-8") as f:
        baseline = json.load(f)["microbenchmarks_after_ms"]

    measured, spreads = load_measurements(args.results)

    noisy = [name for name in measured
             if name.startswith(args.gate_prefix)
             and spreads.get(name, 0.0) > args.noise_threshold]
    if noisy:
        print(f"NOISY RUNNER: repetition spread exceeds "
              f"{args.noise_threshold:.0%} for {', '.join(sorted(noisy))}; "
              f"gate degraded to warn-only")

    failures: list[str] = []
    warnings: list[str] = []
    print(f"{'benchmark':<40} {'baseline ms':>12} {'measured ms':>12} "
          f"{'ratio':>7}")
    for name in sorted(baseline):
        base_ms = baseline[name]
        if name not in measured:
            warnings.append(f"{name}: missing from results (filtered run?)")
            continue
        ratio = measured[name] / base_ms
        gated = name.startswith(args.gate_prefix)
        marker = ""
        if ratio > 1.0 + args.threshold:
            msg = (f"{name}: {measured[name]:.3f} ms vs baseline "
                   f"{base_ms:.3f} ms ({ratio:.2f}x)")
            if gated:
                failures.append(msg)
                marker = "  <-- REGRESSION"
            else:
                warnings.append(msg)
                marker = "  (ungated)"
        print(f"{name:<40} {base_ms:>12.3f} {measured[name]:>12.3f} "
              f"{ratio:>6.2f}x{marker}")

    # Machine-independent anchor: batched must keep (most of) its edge
    # over the per-group path measured on the same host, same run.
    batched, pergroup = "BM_GroupSweepBatched/256", "BM_GroupSweepPerGroup/256"
    if batched in measured and pergroup in measured \
            and batched in baseline and pergroup in baseline:
        base_ratio = baseline[batched] / baseline[pergroup]
        run_ratio = measured[batched] / measured[pergroup]
        print(f"{'batched/per-group ratio':<40} {base_ratio:>12.3f} "
              f"{run_ratio:>12.3f}")
        if run_ratio > base_ratio * (1.0 + args.threshold):
            failures.append(
                f"batched/per-group ratio {run_ratio:.3f} vs baseline "
                f"{base_ratio:.3f}: the batching advantage itself regressed")

    for msg in warnings:
        print(f"WARN: {msg}")
    if failures:
        for msg in failures:
            print(f"{'WARN' if noisy else 'FAIL'}: {msg}")
        if noisy:
            print("exit 0: noisy runner, regressions reported as warnings")
            return 0
        return 1
    print("OK: no gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
