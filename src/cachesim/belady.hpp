// Belady's optimal offline replacement (OPT / MIN).
//
// OPT evicts the block whose next use is farthest in the future; no
// online policy can miss less. It is the universal lower bound we report
// next to LRU/CLOCK/FIFO/Random in the assumptions ablation: the distance
// from LRU to OPT bounds how much any replacement-policy cleverness —
// which the paper's theory deliberately abstracts away — could possibly
// recover.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace ocps {

/// Result of an OPT simulation.
struct BeladyResult {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;

  double miss_ratio() const {
    return accesses == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

/// Simulates a fully-associative cache of `capacity` blocks under OPT.
/// Two passes: next-use precomputation, then a sweep with an ordered set
/// keyed by next-use time — O(n log C).
BeladyResult simulate_belady(const Trace& trace, std::size_t capacity);

}  // namespace ocps
