// Tests for the decision-quality plane (obs/decision_log.hpp): the
// bounded decision audit ring, predicted-vs-realized reconciliation,
// the EWMA drift detector's edge-triggered alerts, and the registry
// helpers' handling of the edge cases the issue calls out — zero-access
// tenants (NaN, skipped), non-finite errors (bucket 0), and id->entry
// consistency across ring wraparound.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/decision_log.hpp"
#include "obs/obs.hpp"

namespace ocps {
namespace {

using obs::DecisionAccuracy;
using obs::DecisionLog;
using obs::DecisionRecord;
using obs::DecisionTrigger;
using obs::DriftAlert;
using obs::DriftConfig;
using obs::DriftDetector;
using obs::DriftStatus;

DecisionRecord make_record(std::vector<double> predicted) {
  DecisionRecord rec;
  rec.tenants.resize(predicted.size());
  rec.alloc.resize(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    rec.tenants[i] = "t" + std::to_string(i);
    rec.alloc[i] = 100 + i;
  }
  rec.predicted_mr = std::move(predicted);
  return rec;
}

// ------------------------------------------------------------ DecisionLog

TEST(DecisionLogTest, AssignsMonotonicIdsAndFindsRecords) {
  DecisionLog log(8);
  EXPECT_EQ(log.last_id(), 0u);
  std::uint64_t a = log.record(make_record({0.5, 0.25}), 10);
  std::uint64_t b = log.record(make_record({0.4, 0.2}), 20);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(log.last_id(), 2u);

  DecisionRecord rec;
  ASSERT_TRUE(log.find(a, &rec));
  EXPECT_EQ(rec.id, a);
  EXPECT_EQ(rec.at_ns, 10u);
  EXPECT_EQ(rec.tenants.size(), 2u);
  EXPECT_FALSE(rec.reconciled);
  EXPECT_FALSE(log.find(99, &rec));
  EXPECT_FALSE(log.find(0, &rec));
}

TEST(DecisionLogTest, NormalizesShortTenantVectors) {
  DecisionLog log(4);
  DecisionRecord in;
  in.tenants = {"a", "b", "c"};
  in.alloc = {1, 2, 3};
  in.predicted_mr = {0.5};  // too short: padded with NaN
  std::uint64_t id = log.record(in, 1);
  DecisionRecord rec;
  ASSERT_TRUE(log.find(id, &rec));
  ASSERT_EQ(rec.predicted_mr.size(), 3u);
  EXPECT_DOUBLE_EQ(rec.predicted_mr[0], 0.5);
  EXPECT_TRUE(std::isnan(rec.predicted_mr[1]));
  EXPECT_TRUE(std::isnan(rec.predicted_mr[2]));
  EXPECT_EQ(rec.tenant_degraded.size(), 3u);
}

TEST(DecisionLogTest, RingWraparoundKeepsIdEntryConsistency) {
  constexpr std::size_t kCap = 4;
  DecisionLog log(kCap);
  for (int i = 0; i < 10; ++i)
    log.record(make_record({0.1 * i}), static_cast<std::uint64_t>(i));
  EXPECT_EQ(log.last_id(), 10u);

  // Ids 1..6 were evicted; 7..10 survive, and each slot's stored id must
  // match the id used for lookup (no aliased stale entries).
  DecisionRecord rec;
  for (std::uint64_t id = 1; id <= 6; ++id)
    EXPECT_FALSE(log.find(id, &rec)) << "id " << id;
  for (std::uint64_t id = 7; id <= 10; ++id) {
    ASSERT_TRUE(log.find(id, &rec)) << "id " << id;
    EXPECT_EQ(rec.id, id);
    EXPECT_EQ(rec.at_ns, id - 1);
  }

  // recent() is newest-first and bounded by what the ring still holds.
  std::vector<DecisionRecord> recent = log.recent(100);
  ASSERT_EQ(recent.size(), kCap);
  EXPECT_EQ(recent.front().id, 10u);
  EXPECT_EQ(recent.back().id, 7u);
  EXPECT_EQ(log.recent(2).size(), 2u);
}

TEST(DecisionLogTest, ReconcileComputesSignedErrors) {
  DecisionLog log(8);
  std::uint64_t id = log.record(make_record({0.5, 0.2}), 1);
  DecisionRecord rec;
  ASSERT_EQ(log.reconcile(id, {0.4, 0.3}, /*partial=*/false, 2, &rec),
            DecisionLog::ReconcileStatus::kOk);
  EXPECT_TRUE(rec.reconciled);
  EXPECT_FALSE(rec.partial);
  EXPECT_EQ(rec.reconciled_at_ns, 2u);
  ASSERT_EQ(rec.error.size(), 2u);
  // error = predicted - realized; positive = over-prediction.
  EXPECT_NEAR(rec.error[0], 0.1, 1e-12);
  EXPECT_NEAR(rec.error[1], -0.1, 1e-12);

  DecisionAccuracy acc = log.accuracy();
  EXPECT_EQ(acc.decisions_total, 1u);
  EXPECT_EQ(acc.reconciled_total, 1u);
  EXPECT_EQ(acc.error_samples, 2u);
  EXPECT_NEAR(acc.mean_abs_error, 0.1, 1e-12);
  EXPECT_NEAR(acc.max_abs_error, 0.1, 1e-12);
  EXPECT_NEAR(acc.mean_signed_error, 0.0, 1e-12);
}

TEST(DecisionLogTest, ReconcileRejectsBadIdsSizesAndDoubleReconcile) {
  DecisionLog log(8);
  std::uint64_t id = log.record(make_record({0.5}), 1);
  EXPECT_EQ(log.reconcile(id + 1, {0.4}, false, 2),
            DecisionLog::ReconcileStatus::kUnknownId);
  EXPECT_EQ(log.reconcile(id, {0.4, 0.5}, false, 2),
            DecisionLog::ReconcileStatus::kSizeMismatch);
  EXPECT_EQ(log.reconcile(id, {0.4}, false, 2),
            DecisionLog::ReconcileStatus::kOk);
  EXPECT_EQ(log.reconcile(id, {0.4}, false, 3),
            DecisionLog::ReconcileStatus::kAlreadyReconciled);
  // The rejected attempts must not have polluted the accuracy totals.
  EXPECT_EQ(log.accuracy().reconciled_total, 1u);
}

TEST(DecisionLogTest, ZeroAccessTenantsAreSkippedNotNan) {
  DecisionLog log(8);
  std::uint64_t id = log.record(make_record({0.5, 0.2, 0.3}), 1);
  // Tenant 1 made no accesses: realized NaN. Tenant 2 had no prediction.
  DecisionRecord in = make_record({0.5, 0.2, std::nan("")});
  DecisionLog log2(8);
  std::uint64_t id2 = log2.record(in, 1);

  DecisionRecord rec;
  ASSERT_EQ(log.reconcile(id, {0.4, std::nan(""), 0.3}, false, 2, &rec),
            DecisionLog::ReconcileStatus::kOk);
  EXPECT_TRUE(std::isnan(rec.error[1]));
  DecisionAccuracy acc = log.accuracy();
  EXPECT_EQ(acc.error_samples, 2u);  // NaN tenant skipped
  EXPECT_FALSE(std::isnan(acc.mean_abs_error));
  EXPECT_FALSE(std::isnan(acc.mean_signed_error));

  // A missing prediction also yields a NaN error, also skipped.
  ASSERT_EQ(log2.reconcile(id2, {0.4, 0.2, 0.3}, false, 2, &rec),
            DecisionLog::ReconcileStatus::kOk);
  EXPECT_TRUE(std::isnan(rec.error[2]));
  EXPECT_EQ(log2.accuracy().error_samples, 2u);
}

TEST(DecisionLogTest, LifetimeAccuracySurvivesRingEviction) {
  DecisionLog log(2);
  for (int i = 0; i < 6; ++i) {
    std::uint64_t id = log.record(make_record({0.5}), 1);
    ASSERT_EQ(log.reconcile(id, {0.4}, false, 2),
              DecisionLog::ReconcileStatus::kOk);
  }
  DecisionAccuracy acc = log.accuracy();
  EXPECT_EQ(acc.decisions_total, 6u);
  EXPECT_EQ(acc.reconciled_total, 6u);
  EXPECT_EQ(acc.error_samples, 6u);
  EXPECT_NEAR(acc.mean_abs_error, 0.1, 1e-12);
}

// ---------------------------------------------------------- DriftDetector

DecisionRecord reconciled_record(DecisionLog& log, double predicted,
                                 double realized) {
  std::uint64_t id = log.record(make_record({predicted}), 1);
  DecisionRecord rec;
  EXPECT_EQ(log.reconcile(id, {realized}, false, 2, &rec),
            DecisionLog::ReconcileStatus::kOk);
  return rec;
}

TEST(DriftDetectorTest, EwmaTracksAbsAndSignedError) {
  DriftConfig cfg;
  cfg.alpha = 0.5;
  DriftDetector drift(cfg);
  DecisionLog log(16);

  // First sample initializes the EWMA; later samples blend.
  drift.observe(reconciled_record(log, 0.5, 0.4), 10);  // err +0.1
  DriftStatus s = drift.status();
  EXPECT_NEAR(s.ewma_abs, 0.1, 1e-12);
  EXPECT_NEAR(s.bias, 0.1, 1e-12);
  EXPECT_EQ(s.samples, 1u);

  drift.observe(reconciled_record(log, 0.2, 0.5), 20);  // err -0.3
  s = drift.status();
  EXPECT_NEAR(s.ewma_abs, 0.5 * 0.1 + 0.5 * 0.3, 1e-12);
  EXPECT_NEAR(s.bias, 0.5 * 0.1 + 0.5 * -0.3, 1e-12);
  EXPECT_EQ(s.samples, 2u);

  ASSERT_EQ(s.tenants.size(), 1u);
  EXPECT_EQ(s.tenants[0].tenant, "t0");
  EXPECT_EQ(s.tenants[0].samples, 2u);
}

TEST(DriftDetectorTest, NonFiniteErrorsDoNotPoisonTheEwma) {
  DriftDetector drift(DriftConfig{});
  DecisionLog log(16);
  std::uint64_t id = log.record(make_record({0.5, std::nan("")}), 1);
  DecisionRecord rec;
  ASSERT_EQ(log.reconcile(id, {0.4, std::nan("")}, false, 2, &rec),
            DecisionLog::ReconcileStatus::kOk);
  drift.observe(rec, 10);
  DriftStatus s = drift.status();
  EXPECT_EQ(s.samples, 1u);  // only the finite error counted
  EXPECT_FALSE(std::isnan(s.ewma_abs));
}

TEST(DriftDetectorTest, AlertsAreEdgeTriggeredOnceAndRearm) {
  DriftConfig cfg;
  cfg.alpha = 1.0;  // EWMA = latest sample, easy to steer
  cfg.threshold = 0.05;
  DriftDetector drift(cfg);
  DecisionLog log(32);

  // Below threshold: no alert.
  drift.observe(reconciled_record(log, 0.50, 0.49), 10);
  EXPECT_EQ(drift.alerts_total(), 0u);
  EXPECT_FALSE(drift.status().breaching);

  // Crossing fires exactly one alert; staying above does not re-fire.
  drift.observe(reconciled_record(log, 0.50, 0.30), 20);
  drift.observe(reconciled_record(log, 0.50, 0.20), 30);
  drift.observe(reconciled_record(log, 0.50, 0.25), 40);
  EXPECT_EQ(drift.alerts_total(), 1u);
  EXPECT_TRUE(drift.status().breaching);

  // Dropping below re-arms; the next excursion fires one more.
  drift.observe(reconciled_record(log, 0.50, 0.50), 50);
  EXPECT_FALSE(drift.status().breaching);
  drift.observe(reconciled_record(log, 0.50, 0.10), 60);
  EXPECT_EQ(drift.alerts_total(), 2u);

  std::vector<DriftAlert> alerts = drift.alerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].seq, 1u);
  EXPECT_EQ(alerts[1].seq, 2u);
  EXPECT_EQ(alerts[0].at_ns, 20u);
  EXPECT_EQ(alerts[1].at_ns, 60u);
  EXPECT_EQ(alerts[0].tenant, "t0");
  EXPECT_GT(alerts[0].ewma_abs, alerts[0].threshold);
}

TEST(DriftDetectorTest, ZeroThresholdNeverAlertsButStillTracks) {
  DriftDetector drift(DriftConfig{});  // threshold 0 = alerting off
  DecisionLog log(16);
  drift.observe(reconciled_record(log, 0.9, 0.1), 10);
  EXPECT_EQ(drift.alerts_total(), 0u);
  DriftStatus s = drift.status();
  EXPECT_FALSE(s.configured);
  EXPECT_FALSE(s.breaching);
  EXPECT_NEAR(s.ewma_abs, 0.8, 1e-12);
}

TEST(DriftDetectorTest, AlertAttributesWorstTenant) {
  DriftConfig cfg;
  cfg.alpha = 1.0;
  cfg.threshold = 0.05;
  DriftDetector drift(cfg);
  DecisionLog log(16);
  std::uint64_t id = log.record(make_record({0.5, 0.5}), 1);
  DecisionRecord rec;
  // t1's error (0.4) dwarfs t0's (0.01): the alert names t1.
  ASSERT_EQ(log.reconcile(id, {0.49, 0.1}, false, 2, &rec),
            DecisionLog::ReconcileStatus::kOk);
  drift.observe(rec, 10);
  std::vector<DriftAlert> alerts = drift.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].tenant, "t1");
  EXPECT_EQ(alerts[0].decision_id, rec.id);
}

// ------------------------------------------------------- registry helpers

#ifndef OCPS_OBS_DISABLED

class DecisionMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset_metrics();
  }
  void TearDown() override { obs::set_enabled(false); }
};

TEST_F(DecisionMetricsTest, NonFinitePredictionErrorLandsInBucketZero) {
  // The registry convention the issue pins down: non-finite observations
  // land in bucket 0 (as does anything < 1).
  EXPECT_EQ(obs::Histogram::bucket_index(
                std::numeric_limits<double>::infinity()),
            0u);
  EXPECT_EQ(obs::Histogram::bucket_index(std::nan("")), 0u);

  DecisionLog log(8);
  std::uint64_t id =
      log.record(make_record({std::numeric_limits<double>::infinity(),
                              0.5, 0.2}),
                 1);
  DecisionRecord rec;
  // Errors: +inf (observed raw -> bucket 0), NaN (skipped), 0.3 finite
  // (scaled to ppm).
  ASSERT_EQ(log.reconcile(id, {0.4, std::nan(""), -0.1}, false, 2, &rec),
            DecisionLog::ReconcileStatus::kOk);
  obs::record_prediction_errors(rec, nullptr, nullptr, 2);

  obs::Histogram& h = obs::histogram("dp.prediction_error");
  EXPECT_EQ(h.count(), 2u);  // inf + finite; the NaN tenant is skipped
  EXPECT_EQ(h.bucket(0), 1u);
  // 0.3 * 1e6 ppm lands in the bucket holding 300000.
  EXPECT_EQ(h.bucket(obs::Histogram::bucket_index(0.3 * obs::kErrorScale)),
            1u);
}

TEST_F(DecisionMetricsTest, PublishesDecisionAndDriftGauges) {
  DecisionLog log(8);
  DriftConfig cfg;
  cfg.threshold = 0.01;
  DriftDetector drift(cfg);
  std::uint64_t id = log.record(make_record({0.5}), 1);
  DecisionRecord rec;
  ASSERT_EQ(log.reconcile(id, {0.4}, false, 2, &rec),
            DecisionLog::ReconcileStatus::kOk);
  obs::record_prediction_errors(rec, &drift, nullptr, 2);
  obs::publish_decision_metrics(log, &drift, nullptr, 2);

  EXPECT_DOUBLE_EQ(obs::gauge("dp.decision.total").value(), 1.0);
  EXPECT_DOUBLE_EQ(obs::gauge("dp.decision.reconciled").value(), 1.0);
  EXPECT_DOUBLE_EQ(obs::gauge("dp.decision.last_id").value(), 1.0);
  EXPECT_NEAR(obs::gauge("dp.decision.mean_abs_error").value(), 0.1, 1e-12);
  EXPECT_NEAR(obs::gauge("dp.drift.ewma_abs_error").value(), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(obs::gauge("dp.drift.breaching").value(), 1.0);
  EXPECT_DOUBLE_EQ(obs::gauge("dp.drift.alerts_total").value(), 1.0);
}

TEST_F(DecisionMetricsTest, BuildInfoIsAlwaysPresent) {
  obs::BuildInfo info = obs::build_info();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.simd_kernel.empty());

  // Both expositions carry it, enabled or not.
  std::ostringstream prom;
  obs::write_metrics_prometheus(prom);
  EXPECT_NE(prom.str().find("ocps_build_info{"), std::string::npos);
  std::ostringstream js;
  obs::write_metrics_json(js);
  EXPECT_NE(js.str().find("\"build_info\""), std::string::npos);
}

#endif  // OCPS_OBS_DISABLED

}  // namespace
}  // namespace ocps
