// Checked assertions used across the ocps library.
//
// OCPS_CHECK is always on (including release builds): the library is a
// research instrument and silent corruption of a result is worse than an
// abort. Failures throw ocps::CheckError carrying file/line and a formatted
// message, so tests can assert on them and harness binaries can report them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ocps {

/// Error thrown when an OCPS_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "OCPS_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace ocps

/// Always-on invariant check. Usage: OCPS_CHECK(x > 0, "x=" << x);
#define OCPS_CHECK(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream ocps_check_os_;                                   \
      ocps_check_os_ << "" __VA_ARGS__;                                    \
      ::ocps::detail::check_failed(#cond, __FILE__, __LINE__,              \
                                   ocps_check_os_.str());                  \
    }                                                                      \
  } while (0)
