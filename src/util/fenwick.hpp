// Fenwick (binary indexed) tree over integer positions, used by the exact
// stack-distance profiler: marking last-access positions and counting marks
// in a range gives the number of distinct blocks touched between two
// accesses in O(log n).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace ocps {

/// Fenwick tree of int64 counters over positions [0, size).
class Fenwick {
 public:
  explicit Fenwick(std::size_t size) : tree_(size + 1, 0) {}

  std::size_t size() const { return tree_.size() - 1; }

  /// Adds delta at position i.
  void add(std::size_t i, std::int64_t delta) {
    OCPS_CHECK(i < size(), "Fenwick add out of range: " << i);
    for (std::size_t x = i + 1; x < tree_.size(); x += x & (~x + 1))
      tree_[x] += delta;
  }

  /// Sum of positions [0, i] inclusive.
  std::int64_t prefix(std::size_t i) const {
    OCPS_CHECK(i < size(), "Fenwick prefix out of range: " << i);
    std::int64_t s = 0;
    for (std::size_t x = i + 1; x > 0; x -= x & (~x + 1)) s += tree_[x];
    return s;
  }

  /// Sum of positions [lo, hi] inclusive; zero when lo > hi.
  std::int64_t range(std::size_t lo, std::size_t hi) const {
    if (lo > hi) return 0;
    std::int64_t s = prefix(hi);
    if (lo > 0) s -= prefix(lo - 1);
    return s;
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace ocps
