// Ablation (§VIII "Fully Associative LRU Cache"): how far do realistic
// caches drift from the fully-associative LRU the theory models? For each
// suite program we compare, at several cache sizes: the HOTL model, exact
// FA-LRU (stack distances), set-associative LRU (8- and 16-way), CLOCK,
// FIFO and Random replacement. Small drift justifies optimizing against
// the FA-LRU model (the paper's position, citing Smith and Sen & Wood).
#include <iostream>

#include "cachesim/belady.hpp"
#include "cachesim/policies.hpp"
#include "cachesim/set_assoc.hpp"
#include "common.hpp"
#include "locality/reuse_distance.hpp"
#include "util/stats.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Suite suite = load_suite();
  const std::size_t capacity = suite.options.capacity;
  const std::size_t sizes[] = {capacity / 4, capacity / 2, capacity};

  std::cout << "=== Ablation: FA-LRU model vs realistic caches ===\n\n";
  TextTable t({"program", "C", "HOTL model", "FA-LRU exact", "8-way LRU",
               "16-way LRU", "CLOCK", "FIFO", "Random", "OPT (Belady)"});

  std::vector<double> err_hotl, err_assoc8, err_assoc16, err_clock,
      err_fifo, err_random, opt_headroom;

  for (std::size_t p = 0; p < suite.models.size(); ++p) {
    const ProgramModel& model = suite.models[p];
    Trace trace = suite_trace(suite, p);
    StackDistanceHistogram sd = stack_distances(trace);
    for (std::size_t c : sizes) {
      double exact = static_cast<double>(sd.misses_at(c)) /
                     static_cast<double>(trace.length());
      double hotl = model.mrc.ratio(c);

      // Round sets to a power of two for indexing; total capacity is the
      // largest power-of-two multiple of `ways` not exceeding c.
      auto pow2_sets = [&](std::size_t ways) {
        std::size_t sets = 1;
        while (sets * 2 * ways <= c) sets *= 2;
        return sets;
      };
      SetAssociativeCache sa8(pow2_sets(8), 8);
      SetAssociativeCache sa16(pow2_sets(16), 16);
      for (Block b : trace.accesses) {
        sa8.access(b);
        sa16.access(b);
      }
      double clock = policy_miss_ratio(Policy::kClock, trace, c);
      double fifo = policy_miss_ratio(Policy::kFifo, trace, c);
      double random = policy_miss_ratio(Policy::kRandom, trace, c, 7);
      double opt = simulate_belady(trace, c).miss_ratio();

      err_hotl.push_back(std::abs(hotl - exact));
      err_assoc8.push_back(std::abs(sa8.miss_ratio() - exact));
      err_assoc16.push_back(std::abs(sa16.miss_ratio() - exact));
      err_clock.push_back(std::abs(clock - exact));
      err_fifo.push_back(std::abs(fifo - exact));
      err_random.push_back(std::abs(random - exact));
      opt_headroom.push_back(exact - opt);

      if (c == capacity / 4) {
        t.add_row({model.name, std::to_string(c), TextTable::num(hotl, 4),
                   TextTable::num(exact, 4),
                   TextTable::num(sa8.miss_ratio(), 4),
                   TextTable::num(sa16.miss_ratio(), 4),
                   TextTable::num(clock, 4), TextTable::num(fifo, 4),
                   TextTable::num(random, 4), TextTable::num(opt, 4)});
      }
    }
  }
  emit_table(t, "ablation_assumptions");

  std::cout << "\nMean |miss ratio - FA-LRU exact| across programs and "
               "sizes:\n";
  TextTable s({"model/cache", "mean abs deviation", "max abs deviation"});
  auto row = [&](const char* name, const std::vector<double>& e) {
    Summary sm = summarize(e);
    s.add_row({name, TextTable::num(sm.mean, 5), TextTable::num(sm.max, 5)});
  };
  row("HOTL model", err_hotl);
  row("8-way set-assoc LRU", err_assoc8);
  row("16-way set-assoc LRU", err_assoc16);
  row("CLOCK", err_clock);
  row("FIFO", err_fifo);
  row("Random", err_random);
  s.print(std::cout);

  Summary head = summarize(opt_headroom);
  std::cout << "\nLRU-to-OPT headroom (what any replacement policy could "
               "still recover): mean " << TextTable::num(head.mean, 5)
            << ", max " << TextTable::num(head.max, 5) << "\n";

  std::cout << "\nExpected (§VIII): associativity >= 8 ways and CLOCK stay "
               "close to FA-LRU on most programs; FIFO/Random diverge on "
               "scan-heavy ones (they break the LRU cliff both ways). The "
               "optimizer's FA-LRU model is a faithful proxy for "
               "set-associative hardware.\n";
  return 0;
}
