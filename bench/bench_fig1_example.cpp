// Fig. 1: the motivating 4-core example where partition-sharing beats both
// free-for-all sharing and pure partitioning. Cores 1-2 run streaming
// programs (pure pollution); cores 3-4 alternate large and small working
// sets in antiphase, so a shared partition lets each use the space when
// the other does not. We simulate the paper's literal 12-access toy trace
// at cache size 6 and a scaled-up version, reporting capacity misses per
// scheme.
#include <iostream>

#include "cachesim/corun.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "trace/trace_io.hpp"
#include "util/table.hpp"

using namespace ocps;

namespace {

void report(const std::string& title,
            const std::vector<std::pair<std::string, CoRunResult>>& rows) {
  std::cout << title << "\n";
  TextTable t({"scheme", "total misses", "group miss ratio", "per-core mr"});
  for (const auto& [name, r] : rows) {
    std::string per;
    for (std::size_t i = 0; i < r.accesses.size(); ++i) {
      if (!per.empty()) per += " / ";
      per += TextTable::num(r.miss_ratio(i), 3);
    }
    t.add_row({name, std::to_string(r.total_misses()),
               TextTable::num(r.group_miss_ratio(), 4), per});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Fig. 1: partition-sharing motivating example ===\n\n";

  // --- The paper's literal traces (Fig. 1), cache size 6. ---
  // Core 1, 2: streams. Core 3: a b c a b c a a a a a a.
  // Core 4: x x x x x x x y z x y z.
  Trace c1 = parse_token_trace("A B C D E F G H I J K L");
  Trace c2 = parse_token_trace("O P Q R S T U V W X Y Z");
  Trace c3 = parse_token_trace("a b c a b c a a a a a a");
  Trace c4 = parse_token_trace("x x x x x x x y z x y z");
  InterleavedTrace toy =
      interleave_proportional({c1, c2, c3, c4}, {1, 1, 1, 1}, 48);

  report("Toy trace (cache = 6 blocks, 48 interleaved accesses):",
         {{"free-for-all sharing", simulate_shared(toy, 6)},
          {"partitioning {1,1,2,2}",
           simulate_partitioned(toy, {1, 1, 2, 2})},
          {"partitioning {1,1,3,1}",
           simulate_partitioned(toy, {1, 1, 3, 1})},
          {"partition-sharing {1}{1}{3+4: 4}",
           simulate_partition_sharing(toy, {0, 1, 2, 2}, {1, 1, 4})}});

  // --- Scaled-up version with strong antiphase behaviour. ---
  const std::size_t phase = 400, reps = 40;
  std::vector<Phase> big_small = {{phase, 48, 0, false},
                                  {phase, 4, 0, false}};
  std::vector<Phase> small_big = {{phase, 4, 0, false},
                                  {phase, 48, 0, false}};
  Trace s3 = make_phased(big_small, reps);
  Trace s4 = make_phased(small_big, reps);
  Trace s1 = make_stream(phase * reps * 2);
  Trace s2 = make_stream(phase * reps * 2);
  InterleavedTrace mix = interleave_proportional(
      {s1, s2, s3, s4}, {1, 1, 1, 1}, phase * reps * 8);

  const std::size_t C = 64;
  report(
      "Scaled trace (cache = 64 blocks, antiphase working sets 48/4):",
      {{"free-for-all sharing", simulate_shared(mix, C)},
       {"equal partitioning {16,16,16,16}",
        simulate_partitioned(mix, {16, 16, 16, 16})},
       {"best static partitioning {4,4,28,28}",
        simulate_partitioned(mix, {4, 4, 28, 28})},
       {"partition-sharing {1}{2}{3+4 share 56}",
        simulate_partition_sharing(mix, {0, 1, 2, 2}, {4, 4, 56})}});

  std::cout << "Expected (paper Fig. 1): streams must be fenced off, and "
               "cores 3+4 sharing one partition beat any static split of "
               "the same space — the one case where partition-sharing wins "
               "is synchronized antiphase behaviour (§VIII).\n";
  return 0;
}
