// Recoverable errors as values.
//
// OCPS_CHECK (check.hpp) guards true invariants: a failure means the
// library itself is wrong and the run must abort. The profiling/DP
// boundary of the *online* path is different — a NaN-laced sampled MRC, a
// truncated estimate, or an infeasible DP instance are expected runtime
// weather, and the controller must be able to inspect the failure and
// degrade gracefully instead of unwinding. Result<T> carries either a
// value or an ocps::Error (code + message) for exactly those seams.
//
// Policy (see docs/fault_tolerance.md): a function returns Result<T> when
// a caller can meaningfully recover (hold last-good state, fall back,
// retry with repaired input); it throws CheckError when the condition can
// only arise from a bug in the calling code.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "util/check.hpp"

namespace ocps {

/// Machine-inspectable failure categories for recoverable errors.
enum class ErrorCode {
  kInvalidArgument,    ///< malformed input (wrong sizes, bad values)
  kDegenerateProfile,  ///< a profile carries no usable signal
  kInfeasible,         ///< constraints admit no solution
  kCorruptData,        ///< data failed validation (NaN, out of range)
  kIoError,            ///< file could not be read/written
  kInternal,           ///< wrapped unexpected failure (e.g. CheckError)
};

/// Human-readable name of an error code (stable, for logs and tests).
inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kDegenerateProfile: return "degenerate_profile";
    case ErrorCode::kInfeasible: return "infeasible";
    case ErrorCode::kCorruptData: return "corrupt_data";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// A recoverable failure: code for dispatch, message for humans.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  std::string to_string() const {
    return std::string(error_code_name(code)) + ": " + message;
  }
};

/// Either a T or an Error. Deliberately tiny — no monadic combinators,
/// just the accessors the controller needs.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT
  Result(ErrorCode code, std::string message)
      : error_(Error{code, std::move(message)}) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The value; OCPS_CHECKs ok() (calling value() on an error is a bug).
  T& value() {
    OCPS_CHECK(ok(), "Result::value() on error: " << error_->to_string());
    return *value_;
  }
  const T& value() const {
    OCPS_CHECK(ok(), "Result::value() on error: " << error_->to_string());
    return *value_;
  }

  /// The error; OCPS_CHECKs !ok().
  const Error& error() const {
    OCPS_CHECK(!ok(), "Result::error() on a success value");
    return *error_;
  }

  /// Value or a fallback, never throws.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Convenience factories mirroring the usual expected<> idiom.
template <typename T>
Result<T> Ok(T value) {
  return Result<T>(std::move(value));
}

inline Error Err(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace ocps
