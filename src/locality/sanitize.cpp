#include "locality/sanitize.hpp"

#include <algorithm>
#include <cmath>

namespace ocps {

Result<MissRatioCurve> sanitize_mrc(std::vector<double> ratios,
                                    std::uint64_t accesses,
                                    std::size_t capacity,
                                    RepairReport* report) {
  RepairReport local;
  RepairReport& r = report ? *report : local;

  if (ratios.empty())
    return Err(ErrorCode::kDegenerateProfile, "empty miss-ratio estimate");

  bool any_finite = false;
  for (double v : ratios)
    if (std::isfinite(v)) {
      any_finite = true;
      break;
    }
  if (!any_finite)
    return Err(ErrorCode::kDegenerateProfile,
               "miss-ratio estimate has no finite entry");

  // Truncated estimate: extend with the final value (the curve has
  // flattened by the time an estimator stops emitting sizes).
  if (ratios.size() < capacity + 1) {
    r.extended += capacity + 1 - ratios.size();
    ratios.resize(capacity + 1, ratios.back());
  }

  // Non-finite entries: carry the previous finite value forward; leading
  // non-finite entries take the first finite value instead.
  std::size_t first_finite = 0;
  while (!std::isfinite(ratios[first_finite])) ++first_finite;
  double carry = ratios[first_finite];
  for (std::size_t c = 0; c < ratios.size(); ++c) {
    if (std::isfinite(ratios[c])) {
      carry = ratios[c];
    } else {
      ratios[c] = carry;
      ++r.nonfinite;
    }
  }

  // Range: miss ratios live in [0,1].
  for (double& v : ratios) {
    double clamped = std::clamp(v, 0.0, 1.0);
    if (clamped != v) {
      v = clamped;
      ++r.clamped;
    }
  }

  // Monotonicity: LRU inclusion makes true curves non-increasing.
  for (std::size_t c = 1; c < ratios.size(); ++c) {
    if (ratios[c] > ratios[c - 1]) {
      ratios[c] = ratios[c - 1];
      ++r.monotone;
    }
  }

  return Ok(MissRatioCurve(std::move(ratios), accesses));
}

Result<PiecewiseLinear> sanitize_footprint_knots(std::vector<double> xs,
                                                 std::vector<double> ys,
                                                 RepairReport* report) {
  RepairReport local;
  RepairReport& r = report ? *report : local;

  if (xs.size() != ys.size())
    return Err(ErrorCode::kInvalidArgument,
               "footprint knot vectors differ in length");

  std::vector<double> out_x, out_y;
  out_x.reserve(xs.size());
  out_y.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double x = xs[i], y = ys[i];
    if (!std::isfinite(x) || !std::isfinite(y)) {
      ++r.dropped;
      continue;
    }
    if (!out_x.empty() && x <= out_x.back()) {
      ++r.dropped;  // non-increasing window coordinate
      continue;
    }
    if (y < 0.0) {
      y = 0.0;
      ++r.clamped;
    }
    if (!out_y.empty() && y < out_y.back()) {
      y = out_y.back();  // footprints are non-decreasing
      ++r.monotone;
    }
    out_x.push_back(x);
    out_y.push_back(y);
  }

  if (out_x.empty())
    return Err(ErrorCode::kDegenerateProfile,
               "no usable footprint knot survives sanitization");
  return Ok(PiecewiseLinear(std::move(out_x), std::move(out_y)));
}

}  // namespace ocps
