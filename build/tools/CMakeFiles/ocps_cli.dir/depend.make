# Empty dependencies file for ocps_cli.
# This may be replaced when dependencies are built.
