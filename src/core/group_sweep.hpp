// The evaluation engine behind §VII: for every co-run group, model all six
// cache-sharing solutions the paper compares —
//
//   Equal            2MB-each partitioning (socialist),
//   Natural          free-for-all sharing == natural partition (capitalist),
//   Equal baseline   group-optimal, no one worse than Equal,
//   Natural baseline group-optimal, no one worse than Natural,
//   Optimal          unconstrained DP optimum,
//   STTW             classic convex greedy,
//
// and summarize improvements in Table I's format. Groups are independent,
// so the sweep parallelizes across groups on the persistent thread pool;
// within each thread, a PrefixDpSolver (core/batch_engine.hpp) shares DP
// layers between groups with a common member prefix, so the batched sweep
// is several times faster than per-group evaluation while producing
// bit-for-bit identical results.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/composition.hpp"
#include "core/cost_matrix.hpp"
#include "util/check.hpp"

namespace ocps {

/// The six solutions compared in §VII-A.
enum class Method : std::size_t {
  kEqual = 0,
  kNatural = 1,
  kEqualBaseline = 2,
  kNaturalBaseline = 3,
  kOptimal = 4,
  kSttw = 5,
};
inline constexpr std::size_t kNumMethods = 6;
const char* method_name(Method m);

/// Outcome of one method on one group.
struct MethodOutcome {
  std::vector<double> alloc;           ///< units per member (occupancies
                                       ///  for Natural; partitions otherwise)
  std::vector<double> per_program_mr;  ///< solo-MRC miss ratio per member
  double group_mr = 0.0;               ///< access-weighted group miss ratio
};

/// All six methods on one group.
struct GroupEvaluation {
  std::vector<std::uint32_t> members;  ///< indices into the program table
  std::array<MethodOutcome, kNumMethods> methods;

  const MethodOutcome& of(Method m) const {
    return methods[static_cast<std::size_t>(m)];
  }
};

/// Sweep knobs.
///
/// Thread-count precedence: `threads` > 0 pins the sweep to exactly that
/// many threads (1 = serial); `threads` == 0 defers to the environment —
/// OCPS_THREADS if set, hardware concurrency otherwise. Either way the
/// width is capped by the persistent pool's size, which is fixed from the
/// environment when the first parallel loop runs.
struct SweepOptions {
  std::size_t capacity = 1024;  ///< shared cache size in units
  std::size_t threads = 0;      ///< sweep width; 0 = auto (see above)

  /// Cooperative deadline. When set (anything other than the default
  /// time_point::max()), sweep_groups checks the clock before each group
  /// and throws SweepDeadlineExceeded once the deadline has passed. The
  /// check is per group, not per DP cell, so overshoot is bounded by one
  /// group evaluation per worker. Callers that need partial results must
  /// split the sweep themselves; a deadline abandons the whole call.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Thrown by sweep_groups when SweepOptions::deadline passes mid-sweep.
/// Derives from CheckError so existing catch sites keep working; callers
/// that care (the serve daemon's 504 path) catch this type first.
class SweepDeadlineExceeded : public CheckError {
 public:
  explicit SweepDeadlineExceeded(const std::string& what) : CheckError(what) {}
};

/// Evaluates every method on one group. `unit_costs(i, c)` must hold
/// access_rate_i * mr_i(c) for every program i in the table (precompute
/// once with precompute_unit_cost_matrix). Batch callers should prefer
/// sweep_groups, which additionally shares DP work between groups.
GroupEvaluation evaluate_group(const std::vector<ProgramModel>& programs,
                               CostMatrixView unit_costs,
                               const std::vector<std::uint32_t>& members,
                               const SweepOptions& options);

/// Rate-weighted miss-count cost curves for all programs, flat storage.
CostMatrix precompute_unit_cost_matrix(
    const std::vector<ProgramModel>& programs, std::size_t capacity);

/// Runs the batched evaluation over every listed group: parallel across
/// groups, prefix-shared DP within each thread. Results are identical to
/// calling evaluate_group per group (enumerate groups in lexicographic
/// member order for the best layer reuse).
std::vector<GroupEvaluation> sweep_groups(
    const std::vector<ProgramModel>& programs,
    const std::vector<std::vector<std::uint32_t>>& groups,
    const SweepOptions& options);

/// Table I row: improvement of Optimal over `baseline` across groups.
/// Improvement per group = (mr_baseline - mr_optimal) / mr_optimal.
struct ImprovementStats {
  double max = 0.0;
  double avg = 0.0;
  double median = 0.0;
  double frac_ge_10 = 0.0;  ///< fraction of groups improved >= 10%
  double frac_ge_20 = 0.0;  ///< fraction of groups improved >= 20%
};
ImprovementStats improvement_over(const std::vector<GroupEvaluation>& sweep,
                                  Method baseline);

}  // namespace ocps
