#include "util/thread_pool.hpp"

#include "obs/obs.hpp"
#include "util/config.hpp"

namespace ocps {

std::size_t parallel_thread_count() {
  std::int64_t forced = env_int("OCPS_THREADS", 0);
  if (forced > 0) return static_cast<std::size_t>(forced);
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t workers) {
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
  OCPS_OBS_GAUGE("pool.threads", workers + 1);  // + the calling thread
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(parallel_thread_count() > 0
                             ? parallel_thread_count() - 1
                             : 0);
  return pool;
}

std::size_t ThreadPool::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& q : queues_) {
    std::lock_guard<std::mutex> lock(q->mutex);
    depth += q->jobs.size();
  }
  return depth;
}

bool ThreadPool::submit(Job job) {
  if (queues_.empty()) return false;
  std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->jobs.push_back(job);
  }
  pending_.fetch_add(1, std::memory_order_release);
  OCPS_OBS_GAUGE("pool.queue_depth",
                 pending_.load(std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_one();
  }
  return true;
}

std::size_t ThreadPool::cancel(void* ctx) {
  std::size_t removed = 0;
  for (auto& q : queues_) {
    std::lock_guard<std::mutex> lock(q->mutex);
    for (auto it = q->jobs.begin(); it != q->jobs.end();) {
      if (it->ctx == ctx) {
        it = q->jobs.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  if (removed > 0) pending_.fetch_sub(removed, std::memory_order_release);
  return removed;
}

bool ThreadPool::try_pop(std::size_t self, Job& out) {
  // Own queue first, newest job (LIFO: best locality for nested loops)...
  {
    auto& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.jobs.empty()) {
      out = q.jobs.back();
      q.jobs.pop_back();
      pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  // ... then steal the oldest job from the other queues (FIFO end), which
  // tends to grab whole loops rather than their tails.
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    auto& q = *queues_[(self + off) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.jobs.empty()) {
      out = q.jobs.front();
      q.jobs.pop_front();
      pending_.fetch_sub(1, std::memory_order_release);
      OCPS_OBS_COUNT("pool.jobs_stolen", 1);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    Job job;
    if (try_pop(self, job)) {
      job.run(job.ctx);
      OCPS_OBS_COUNT("pool.jobs_executed", 1);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0)
      return;
  }
}

}  // namespace ocps
