# Empty compiler generated dependencies file for ocps_util.
# This may be replaced when dependencies are built.
