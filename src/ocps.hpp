// Umbrella header: the whole public OCPS API in one include.
//
//   #include "ocps.hpp"
//
// Applications (see examples/) should include only this header; the
// per-subsystem headers below remain available for builds that want
// finer-grained dependencies, but their layout is an implementation
// detail and may shift between releases.
#pragma once

// Utilities: error checking, Result<T>, RNG, config, stats, tables,
// and the persistent thread pool behind every parallel loop.
#include "util/args.hpp"
#include "util/check.hpp"
#include "util/config.hpp"
#include "util/curve.hpp"
#include "util/parallel.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

// Observability: metrics registry, trace spans, profiling hooks.
#include "obs/obs.hpp"

// Traces and synthetic workload generators.
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

// Locality theory: reuse distance, footprint, MRC and friends.
#include "locality/crd.hpp"
#include "locality/footprint.hpp"
#include "locality/footprint_io.hpp"
#include "locality/hotl.hpp"
#include "locality/mrc.hpp"
#include "locality/phases.hpp"
#include "locality/reuse_distance.hpp"
#include "locality/reuse_time.hpp"
#include "locality/sampling.hpp"
#include "locality/sanitize.hpp"
#include "locality/shards.hpp"

// Combinatorics of groups and schemes.
#include "combinatorics/counting.hpp"
#include "combinatorics/enumerate.hpp"

// Core optimizers: cost matrices, the DP, baselines, comparators, the
// batched group-sweep engine, and the paper's extensions.
#include "core/baselines.hpp"
#include "core/batch_engine.hpp"
#include "core/composition.hpp"
#include "core/cost_matrix.hpp"
#include "core/dp_partition.hpp"
#include "core/elastic.hpp"
#include "core/group_sweep.hpp"
#include "core/objectives.hpp"
#include "core/partition_sharing.hpp"
#include "core/performance.hpp"
#include "core/phase_aware.hpp"
#include "core/program_model.hpp"
#include "core/sttw.hpp"
#include "core/suh.hpp"

// Cache simulators for validation.
#include "cachesim/belady.hpp"
#include "cachesim/corun.hpp"
#include "cachesim/lru.hpp"
#include "cachesim/policies.hpp"
#include "cachesim/set_assoc.hpp"
#include "cachesim/way_partitioned.hpp"

// Scheduling, online control, and workload suites.
#include "runtime/controller.hpp"
#include "runtime/fault_injection.hpp"
#include "sched/symbiosis.hpp"
#include "workloads/spec_like.hpp"
#include "workloads/suite.hpp"
