#!/usr/bin/env python3
"""Gate CI on bench_dp_speed regressions against the committed baseline.

Compares a google-benchmark JSON output file (produced by
``bench_dp_speed --benchmark_out=... --benchmark_out_format=json``)
against ``BENCH_dp_speed.json``'s ``microbenchmarks_after_ms`` table and

* **fails** (exit 1) when a gated benchmark — by default the batched-sweep
  ones, the whole point of the PR 3 engine — is more than ``--threshold``
  (default 25%) slower than its committed baseline,
* **fails** when a baseline series is missing from the results entirely
  (a renamed or silently dropped benchmark must not pass the gate; a
  benchmark the runner skipped with an explicit error, e.g. the AVX2
  kernel on a CPU without AVX2, is exempt and reported), and
* **degrades to warn-only** when the run looks noisy: with
  ``--benchmark_repetitions`` the spread between a benchmark's fastest and
  slowest repetition is computed, and if any gated benchmark's spread
  exceeds ``--noise-threshold`` (default 10%) the runner is deemed too
  noisy to gate hard — regressions are printed but the exit code stays 0.

Malformed input — truncated or non-JSON results, a baseline without the
expected tables — exits 1 with a one-line diagnosis, never a traceback.

Absolute times move with the runner's CPU, so the gate also checks two
machine-independent anchors measured within the same run:

* the *ratio* of the batched sweep to the per-group sweep (the committed
  baseline has batched ≈ 2× faster), and
* the *ratio* of the AVX2 forward-layer kernel to the scalar reference
  (baseline ≈ 3.4× faster).

If a measured ratio loses more than ``--threshold`` of the committed
advantage, the engine (or kernel) itself regressed no matter how fast
the runner is.

Usage:
    tools/check_bench_regression.py bench_dp_speed_ci.json \
        [--baseline BENCH_dp_speed.json] [--threshold 0.25] \
        [--noise-threshold 0.10] [--gate-prefix BM_GroupSweep]

Only Python 3 stdlib is used.
"""

from __future__ import annotations

import argparse
import json
import re
import sys


def normalise(run_name: str) -> str:
    """Strips runtime-option suffixes (``/iterations:1``, ``/repeats:3``,
    ``/real_time`` ...) so names match the baseline's plain keys."""
    return re.sub(r"/(iterations|repeats|min_time|min_warmup_time"
                  r"|process_time|real_time|manual_time)(:[^/]*)?", "",
                  run_name)


def load_json(path: str, what: str) -> dict:
    """Loads a JSON object, turning every malformed-input failure mode —
    missing file, truncated write, non-JSON bytes, a non-object top level
    — into a one-line SystemExit instead of a traceback."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except OSError as e:
        raise SystemExit(f"cannot read {what} {path}: {e}")
    except json.JSONDecodeError as e:
        raise SystemExit(
            f"{what} {path} is not valid JSON (truncated write?): "
            f"{e.msg} at line {e.lineno} column {e.colno}")
    if not isinstance(data, dict):
        raise SystemExit(
            f"{what} {path}: expected a JSON object at the top level, "
            f"got {type(data).__name__}")
    return data


def load_measurements(
        path: str) -> tuple[dict[str, float], dict[str, float], set[str]]:
    """Returns (mean ms per benchmark, max relative spread per benchmark,
    names the runner skipped with an explicit error).

    With --benchmark_repetitions google-benchmark emits one entry per
    repetition plus ``_mean``/``_median``/``_stddev`` aggregates; without,
    a single entry per benchmark. Handles both. Times are normalised to
    milliseconds.
    """
    data = load_json(path, "results file")
    if "benchmarks" not in data:
        raise SystemExit(
            f"results file {path} has no 'benchmarks' array — not a "
            f"google-benchmark --benchmark_out JSON?")

    unit_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
    reps: dict[str, list[float]] = {}
    skipped: set[str] = set()
    for entry in data["benchmarks"]:
        try:
            if entry.get("run_type") == "aggregate":
                continue
            name = normalise(entry.get("run_name", entry["name"]))
            if entry.get("error_occurred"):
                # SkipWithError (e.g. the AVX2 kernel bench on a CPU
                # without AVX2): recorded so the missing-series check can
                # tell "skipped on purpose" from "silently dropped".
                skipped.add(name)
                continue
            scale = unit_ms.get(entry.get("time_unit", "ns"))
            if scale is None:
                raise SystemExit(f"unknown time_unit in {path}: {entry}")
            reps.setdefault(name, []).append(
                float(entry["real_time"]) * scale)
        except (KeyError, TypeError, ValueError) as e:
            raise SystemExit(
                f"results file {path}: malformed benchmark entry "
                f"{entry!r}: {e}")

    means = {name: sum(ts) / len(ts) for name, ts in reps.items()}
    spreads = {}
    for name, ts in reps.items():
        lo, hi = min(ts), max(ts)
        spreads[name] = (hi - lo) / lo if len(ts) > 1 and lo > 0 else 0.0
    return means, spreads, skipped


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="google-benchmark JSON output")
    parser.add_argument("--baseline", default="BENCH_dp_speed.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative slowdown that fails the gate")
    parser.add_argument("--noise-threshold", type=float, default=0.10,
                        help="repetition spread above which the gate "
                             "only warns")
    parser.add_argument("--gate-prefix", default="BM_GroupSweep",
                        help="benchmarks whose regressions fail the build; "
                             "others are reported informationally")
    args = parser.parse_args()

    baseline_doc = load_json(args.baseline, "baseline")
    baseline = baseline_doc.get("microbenchmarks_after_ms")
    if not isinstance(baseline, dict) or not baseline:
        raise SystemExit(
            f"baseline {args.baseline} has no 'microbenchmarks_after_ms' "
            f"table — wrong or truncated baseline file?")

    measured, spreads, skipped = load_measurements(args.results)

    noisy = [name for name in measured
             if name.startswith(args.gate_prefix)
             and spreads.get(name, 0.0) > args.noise_threshold]
    if noisy:
        print(f"NOISY RUNNER: repetition spread exceeds "
              f"{args.noise_threshold:.0%} for {', '.join(sorted(noisy))}; "
              f"gate degraded to warn-only")

    failures: list[str] = []
    warnings: list[str] = []
    print(f"{'benchmark':<40} {'baseline ms':>12} {'measured ms':>12} "
          f"{'ratio':>7}")
    for name in sorted(baseline):
        try:
            base_ms = float(baseline[name])
        except (TypeError, ValueError):
            raise SystemExit(
                f"baseline {args.baseline}: non-numeric entry for {name}: "
                f"{baseline[name]!r}")
        if name not in measured:
            if name in skipped:
                warnings.append(
                    f"{name}: skipped by the runner (SkipWithError)")
            else:
                # A series the baseline expects but the run never
                # produced: renamed, dropped, or a filtered run. Passing
                # silently here is how a deleted benchmark sneaks through
                # the gate, so this is a hard failure.
                failures.append(
                    f"{name}: expected series missing from results "
                    f"(renamed, dropped, or filtered run?)")
            continue
        ratio = measured[name] / base_ms
        gated = name.startswith(args.gate_prefix)
        marker = ""
        if ratio > 1.0 + args.threshold:
            msg = (f"{name}: {measured[name]:.3f} ms vs baseline "
                   f"{base_ms:.3f} ms ({ratio:.2f}x)")
            if gated:
                failures.append(msg)
                marker = "  <-- REGRESSION"
            else:
                warnings.append(msg)
                marker = "  (ungated)"
        print(f"{name:<40} {base_ms:>12.3f} {measured[name]:>12.3f} "
              f"{ratio:>6.2f}x{marker}")

    # Machine-independent anchors: each is a ratio of two series measured
    # on the same host in the same run, so absolute runner speed cancels.
    # If the measured ratio loses more than --threshold of the committed
    # advantage, the engine (or kernel) itself regressed.
    anchors = [
        ("batched/per-group ratio",
         "BM_GroupSweepBatched/256", "BM_GroupSweepPerGroup/256",
         "the batching advantage itself regressed"),
        ("avx2/scalar kernel ratio",
         "BM_ForwardLayerAvx2/1024", "BM_ForwardLayerScalar/1024",
         "the SIMD kernel advantage itself regressed"),
    ]
    for label, num, den, blame in anchors:
        if num in skipped or den in skipped:
            print(f"{label:<40} {'(skipped)':>12}")
            continue
        if not (num in measured and den in measured
                and num in baseline and den in baseline):
            continue
        base_ratio = float(baseline[num]) / float(baseline[den])
        run_ratio = measured[num] / measured[den]
        print(f"{label:<40} {base_ratio:>12.3f} {run_ratio:>12.3f}")
        if run_ratio > base_ratio * (1.0 + args.threshold):
            failures.append(
                f"{label} {run_ratio:.3f} vs baseline "
                f"{base_ratio:.3f}: {blame}")

    for msg in warnings:
        print(f"WARN: {msg}")
    if failures:
        for msg in failures:
            print(f"{'WARN' if noisy else 'FAIL'}: {msg}")
        if noisy:
            print("exit 0: noisy runner, regressions reported as warnings")
            return 0
        return 1
    print("OK: no gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
