file(REMOVE_RECURSE
  "CMakeFiles/ocps_cli.dir/ocps.cpp.o"
  "CMakeFiles/ocps_cli.dir/ocps.cpp.o.d"
  "ocps"
  "ocps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocps_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
