// Tests for WSS-based phase detection.
#include <gtest/gtest.h>

#include "locality/phases.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

TEST(WindowedWss, CountsDistinctPerWindow) {
  Trace t;
  // Two windows of 4: {0,1,2,0} -> 3 distinct, {5,5,5,5} -> 1 distinct.
  t.accesses = {0, 1, 2, 0, 5, 5, 5, 5};
  auto wss = windowed_wss(t, 4);
  ASSERT_EQ(wss.size(), 2u);
  EXPECT_DOUBLE_EQ(wss[0], 3.0);
  EXPECT_DOUBLE_EQ(wss[1], 1.0);
}

TEST(WindowedWss, ScalesTrailingWindow) {
  Trace t;
  t.accesses = {0, 1, 2, 3, 7, 8};  // window 4: full {0..3}, trailing {7,8}
  auto wss = windowed_wss(t, 4);
  ASSERT_EQ(wss.size(), 2u);
  EXPECT_DOUBLE_EQ(wss[0], 4.0);
  EXPECT_DOUBLE_EQ(wss[1], 4.0);  // 2 distinct in half a window -> 4
}

TEST(DetectPhases, StationaryTraceIsOnePhase) {
  Trace t = make_uniform(40000, 100, 501);
  auto phases = detect_phases(t);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].begin, 0u);
  EXPECT_EQ(phases[0].end, t.length());
  EXPECT_NEAR(phases[0].mean_wss, 100.0, 15.0);
}

TEST(DetectPhases, FindsAlternatingWorkingSets) {
  // Four phases of 20000 accesses: wss 200, 10, 200, 10.
  std::vector<Phase> pattern = {{20000, 200, 0, false},
                                {20000, 10, 0, false}};
  Trace t = make_phased(pattern, 2);
  PhaseDetectorConfig config;
  config.window = 2000;
  auto phases = detect_phases(t, config);
  ASSERT_EQ(phases.size(), 4u);
  // Boundaries land on the true 20000-access phase edges (within one
  // window).
  EXPECT_NEAR(static_cast<double>(phases[1].begin), 20000.0, 2000.0);
  EXPECT_NEAR(static_cast<double>(phases[2].begin), 40000.0, 2000.0);
  // Alternating working-set magnitudes.
  EXPECT_GT(phases[0].mean_wss, phases[1].mean_wss * 5);
  EXPECT_GT(phases[2].mean_wss, phases[3].mean_wss * 5);
}

TEST(DetectPhases, CoversWholeTraceContiguously) {
  std::vector<Phase> pattern = {{7000, 150, 0, false},
                                {9000, 12, 0, false},
                                {5000, 80, 0, false}};
  Trace t = make_phased(pattern, 2);
  auto phases = detect_phases(t);
  EXPECT_EQ(phases.front().begin, 0u);
  EXPECT_EQ(phases.back().end, t.length());
  for (std::size_t s = 1; s < phases.size(); ++s)
    EXPECT_EQ(phases[s].begin, phases[s - 1].end);
}

TEST(DetectPhases, MinPhaseLengthSuppressesJitter) {
  // A noisy uniform trace must not fragment into many phases when the
  // minimum phase length is generous.
  Trace t = make_zipf(60000, 300, 0.8, 502);
  PhaseDetectorConfig config;
  config.window = 1000;
  config.threshold = 0.15;
  config.min_phase_windows = 10;
  auto phases = detect_phases(t, config);
  EXPECT_LE(phases.size(), 4u);
}

TEST(RecommendEpochs, OneForStationaryTraces) {
  std::vector<Trace> traces = {make_uniform(30000, 80, 503),
                               make_zipf(30000, 120, 1.0, 504)};
  EXPECT_EQ(recommend_epoch_count(traces), 1u);
}

TEST(RecommendEpochs, MatchesPhaseGranularity) {
  // 20000-access phases in a 80000-access trace -> ~4 epochs.
  std::vector<Phase> pattern = {{20000, 200, 0, false},
                                {20000, 10, 0, false}};
  std::vector<Trace> traces = {make_phased(pattern, 2),
                               make_uniform(80000, 50, 505)};
  std::size_t epochs = recommend_epoch_count(traces);
  EXPECT_GE(epochs, 3u);
  EXPECT_LE(epochs, 8u);
}

TEST(RecommendEpochs, RespectsCap) {
  std::vector<Phase> pattern = {{2000, 150, 0, false},
                                {2000, 8, 0, false}};
  std::vector<Trace> traces = {make_phased(pattern, 20)};
  EXPECT_LE(recommend_epoch_count(traces, {}, 16), 16u);
}

TEST(DetectPhases, RejectsBadInput) {
  EXPECT_THROW(detect_phases(Trace{}), CheckError);
  Trace t = make_cyclic(100, 5);
  EXPECT_THROW(windowed_wss(t, 0), CheckError);
}

}  // namespace
}  // namespace ocps
