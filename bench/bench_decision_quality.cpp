// Decision-quality bench: predicted-vs-realized miss-ratio accounting
// under a mid-run workload shift.
//
// Two programs swap roles at the midpoint of the run (a tight scan
// becomes a large cyclic walk and vice versa). Every epoch-k partition
// decision is made from epoch-k-1 behavior, so the first post-swap
// epochs mispredict badly: the audit trail's signed errors spike, the
// |error| EWMA breaches the configured threshold, and the drift
// detector logs an edge-triggered alert naming the offending decision
// and its worst tenant. The flagged decision is then explained the way
// `ocps why` would: allocation diff vs the previous decision plus the
// per-tenant prediction errors.
//
// Sanity anchors, checked at exit (non-zero exit on violation):
//  * the post-swap error p99 is visibly worse than the pre-swap p99;
//  * exactly one edge-triggered drift alert fires, after the swap;
//  * with the obs registry disabled (the OCPS_OBS=0 path) the
//    allocations are bit-for-bit identical and the audit trail still
//    records and reconciles every decision.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "obs/obs.hpp"
#include "runtime/controller.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "util/table.hpp"

using namespace ocps;
using namespace ocps::bench;

namespace {

InterleavedTrace make_shifting_workload(std::size_t n_half) {
  Trace a = make_cyclic(n_half, 150);
  a.append(make_sawtooth(n_half, 20));
  Trace b = make_sawtooth(n_half, 20);
  b.append(make_cyclic(n_half, 150).relabeled(1000));
  return interleave_proportional({a, b}, {1.0, 1.0}, 4 * n_half);
}

ControllerConfig make_config() {
  ControllerConfig config;
  config.capacity = 200;
  config.epoch_length = 10000;
  config.sampling_rate = 0.5;
  config.drift_threshold = 0.10;
  return config;
}

/// Finite |error| samples of every reconciled decision in [lo, hi].
std::vector<double> abs_errors(const std::vector<obs::DecisionRecord>& trail,
                               std::uint64_t lo, std::uint64_t hi) {
  std::vector<double> out;
  for (const obs::DecisionRecord& rec : trail) {
    if (rec.id < lo || rec.id > hi) continue;
    for (double e : rec.error)
      if (std::isfinite(e)) out.push_back(std::fabs(e));
  }
  return out;
}

double p99(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(0.99 * (v.size() - 1))];
}

std::string join_alloc(const std::vector<std::size_t>& alloc) {
  std::string out;
  for (std::size_t a : alloc) out += (out.empty() ? "" : "/") + std::to_string(a);
  return out;
}

}  // namespace

int main() {
  const std::size_t n_half = 100000;
  InterleavedTrace mix = make_shifting_workload(n_half);
  ControllerConfig config = make_config();

  std::cout << "=== Decision quality: audit trail and drift detection "
               "under a mid-run role swap ===\n"
               "(C=" << config.capacity << ", 2 programs, " << mix.length()
            << " accesses, swap at the midpoint, |error| EWMA threshold "
            << config.drift_threshold << ")\n\n";

  ControllerResult r = run_online_controller(mix, 2, config);

  // Oldest-first audit trail (recent() walks newest-first).
  std::vector<obs::DecisionRecord> trail =
      r.decisions->recent(r.decisions->capacity());
  std::reverse(trail.begin(), trail.end());

  TextTable t({"decision", "epoch", "trigger", "alloc", "p0 error",
               "p1 error", "alert"});
  for (const obs::DecisionRecord& rec : trail) {
    std::string alert;
    for (const obs::DriftAlert& a : r.drift_alerts)
      if (a.decision_id == rec.id)
        alert = "DRIFT (" + a.tenant + ", EWMA " +
                TextTable::num(a.ewma_abs, 3) + ")";
    auto err = [&](std::size_t i) {
      return i < rec.error.size() && std::isfinite(rec.error[i])
                 ? TextTable::num(rec.error[i], 4)
                 : std::string("-");
    };
    t.add_row({std::to_string(rec.id), std::to_string(rec.epoch),
               obs::decision_trigger_name(rec.trigger), join_alloc(rec.alloc), err(0),
               err(1), alert});
  }
  emit_table(t, "decision_quality");

  // The swap lands at decision floor(trail/2): decisions are epochs
  // shifted by the startup record, so split the trail at the midpoint.
  const std::uint64_t mid = trail[trail.size() / 2].id;
  const double pre = p99(abs_errors(trail, 1, mid - 1));
  const double post = p99(abs_errors(trail, mid, mid + 3));
  const obs::DecisionAccuracy acc = r.decisions->accuracy();
  std::cout << "\naccuracy: " << acc.decisions_total << " decisions, "
            << acc.reconciled_total << " reconciled, mean |error| "
            << TextTable::num(acc.mean_abs_error, 4) << ", bias "
            << TextTable::num(acc.mean_signed_error, 4) << "\n"
            << "prediction |error| p99: pre-swap "
            << TextTable::num(pre, 4) << " -> first post-swap epochs "
            << TextTable::num(post, 4) << "\n";

  bool ok = true;
  if (!(post > 2.0 * pre && post > config.drift_threshold)) {
    std::cout << "FAIL: the swap did not visibly degrade the error p99\n";
    ok = false;
  }
  if (r.drift_alerts.size() != 1) {
    std::cout << "FAIL: expected exactly one edge-triggered alert, got "
              << r.drift_alerts.size() << "\n";
    ok = false;
  }

  if (!r.drift_alerts.empty()) {
    // The `ocps why` view of the flagged decision: what changed vs the
    // previous allocation, and which tenants' errors drove the alert.
    const obs::DriftAlert& alert = r.drift_alerts.front();
    obs::DecisionRecord rec, prev;
    if (alert.decision_id < mid) {
      std::cout << "FAIL: drift alert fired before the swap (decision "
                << alert.decision_id << ")\n";
      ok = false;
    }
    if (r.decisions->find(alert.decision_id, &rec) &&
        r.decisions->find(alert.decision_id - 1, &prev)) {
      std::cout << "\nwhy decision #" << rec.id << " — trigger "
                << obs::decision_trigger_name(rec.trigger) << " — epoch " << rec.epoch
                << "\n";
      TextTable why({"tenant", "prev", "blocks", "predicted", "realized",
                     "error"});
      for (std::size_t i = 0; i < rec.tenants.size(); ++i)
        why.add_row({rec.tenants[i], std::to_string(prev.alloc[i]),
                     std::to_string(rec.alloc[i]),
                     TextTable::num(rec.predicted_mr[i], 4),
                     TextTable::num(rec.realized_mr[i], 4),
                     TextTable::num(rec.error[i], 4)});
      why.print(std::cout);
    } else {
      std::cout << "FAIL: alerted decision fell off the audit ring\n";
      ok = false;
    }
  }

  // OCPS_OBS=0 contract: the decision plane is passive. Disabling the
  // registry must not move a single allocation, and the audit trail
  // (server-owned state, like the slowlog) keeps recording regardless.
  const bool was_enabled = obs::enabled();
  obs::set_enabled(false);
  ControllerResult off = run_online_controller(mix, 2, config);
  obs::set_enabled(was_enabled);
  if (off.alloc_history != r.alloc_history) {
    std::cout << "FAIL: disabling obs changed the allocation decisions\n";
    ok = false;
  }
  const obs::DecisionAccuracy off_acc = off.decisions->accuracy();
  if (off_acc.decisions_total != acc.decisions_total ||
      off_acc.reconciled_total != acc.reconciled_total) {
    std::cout << "FAIL: audit trail stopped recording with obs disabled\n";
    ok = false;
  }
  std::cout << "\nobs disabled: allocations bit-for-bit identical, "
            << off_acc.decisions_total << " decisions still audited\n";

  std::cout << "\nExpected: pre-swap errors settle near zero as the model "
               "learns; the first post-swap epochs mispredict (the model "
               "still describes the old roles), the |error| EWMA breaches "
               "once, and the alert names the post-swap decision whose "
               "tenants mispredicted worst.\n";
  return ok ? 0 : 1;
}
