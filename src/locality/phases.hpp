// Phase detection from windowed working-set sizes.
//
// The phase-aware repartitioner (core/phase_aware) and the Fig. 1
// discussion need epoch boundaries aligned with program phases. Rather
// than guessing an epoch count, this detector slides a window over the
// trace, records the working-set size per window, and reports boundaries
// where consecutive windows' WSS changes by more than a relative
// threshold — the classic WSS-delta phase heuristic.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/trace.hpp"

namespace ocps {

/// Detector knobs.
struct PhaseDetectorConfig {
  std::size_t window = 2000;      ///< accesses per WSS sample
  double threshold = 0.30;        ///< relative WSS change that opens a phase
  std::size_t min_phase_windows = 2;  ///< suppress shorter phases
};

/// One detected phase.
struct PhaseSegment {
  std::size_t begin = 0;   ///< first access index (inclusive)
  std::size_t end = 0;     ///< last access index (exclusive)
  double mean_wss = 0.0;   ///< average windowed WSS inside the phase
};

/// Windowed working-set sizes: wss[k] = distinct blocks in accesses
/// [k*window, (k+1)*window).
std::vector<double> windowed_wss(const Trace& trace, std::size_t window);

/// Segments the trace into phases. Always returns at least one segment
/// covering the whole trace.
std::vector<PhaseSegment> detect_phases(const Trace& trace,
                                        const PhaseDetectorConfig& config = {});

/// Recommends a uniform epoch count for phase-aware repartitioning
/// (core/phase_aware): enough epochs that every detected phase of every
/// program spans at least one epoch, capped at max_epochs. Returns 1 when
/// all traces are single-phase.
std::size_t recommend_epoch_count(const std::vector<Trace>& traces,
                                  const PhaseDetectorConfig& config = {},
                                  std::size_t max_epochs = 64);

}  // namespace ocps
