// Decision-quality plane: partition decision audit trail + model drift.
//
// The DP pipeline turns *predicted* per-tenant miss ratios into an
// allocation, applies it, and moves on — nothing ever checks the
// prediction against what the cache then actually did. This module
// closes that loop:
//
//  * DecisionLog — a bounded, thread-safe ring of DecisionRecords, one
//    per partition decision (controller epoch, serve request, reload or
//    fallback), each with a stable monotonically-increasing id. One
//    epoch later the caller reconciles the record with realized
//    per-tenant miss ratios; the signed gap `predicted - realized`
//    (positive = the model over-predicted misses) is the prediction
//    error the whole plane is built around.
//  * DriftDetector — an EWMA of the absolute prediction error with a
//    configurable breach threshold and an edge-triggered bounded alert
//    log (same shape as SloTracker's). When the paper's independence
//    assumption stops holding — shared footprints, phase changes — the
//    EWMA climbs and exactly one alert fires per excursion.
//
// Like SloTracker, both classes are deliberately independent of the
// metrics registry and of the OCPS_OBS runtime flag: they cost a mutex
// + a few vectors, they work in OCPS_OBS_DISABLED builds, and the
// `decisions` serve op answers from them even with observability off.
// Only the helper functions at the bottom (histograms, gauges,
// exemplars) touch the registry, and those gate on obs::enabled().
//
// Units: miss-ratio errors live in [-1, 1], which would collapse into
// bucket 0 of the power-of-two log histograms. dp.prediction_error
// histograms therefore record |error| in parts-per-million
// (kErrorScale); non-finite errors are passed through raw so they land
// in bucket 0 by the registry's own convention. Gauges stay in ratio
// units. See docs/observability.md, "Decision quality and model drift".
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace ocps::obs {

/// Histogram scaling: ratio error -> parts-per-million.
inline constexpr double kErrorScale = 1e6;

/// What prompted a partition decision.
enum class DecisionTrigger {
  kEpoch,     ///< controller epoch boundary, DP re-solved
  kReload,    ///< first decision after a profile-set hot reload
  kFallback,  ///< degradation ladder engaged (held / equal / restart)
  kRequest,   ///< on-demand solve for a serve `partition` request
};

const char* decision_trigger_name(DecisionTrigger t);

/// One partition decision and, once reconciled, its realized outcome.
/// `predicted_mr[i]` is the model's miss-ratio forecast for tenant i at
/// the chosen allocation (NaN = the model had no estimate);
/// `realized_mr[i]` is misses/accesses observed over the following
/// epoch (NaN = the tenant made no accesses, skipped in accuracy
/// stats); `error[i] = predicted_mr[i] - realized_mr[i]`.
struct DecisionRecord {
  std::uint64_t id = 0;  ///< 1-based, assigned by DecisionLog; 0 = invalid
  std::uint64_t epoch = 0;
  std::uint64_t at_ns = 0;
  DecisionTrigger trigger = DecisionTrigger::kEpoch;
  std::vector<std::string> tenants;
  std::vector<std::size_t> alloc;      ///< chosen units per tenant
  std::vector<double> predicted_mr;
  std::vector<bool> tenant_degraded;   ///< estimate repaired/dropped
  std::uint64_t solve_ns = 0;          ///< DP wall time (0 = no solve)
  bool incremental = false;            ///< suffix-only DP re-solve
  std::string note;                    ///< human reason (fallback cause)
  // Reconciliation (one epoch later).
  bool reconciled = false;
  bool partial = false;  ///< realized over a truncated trailing epoch
  std::uint64_t reconciled_at_ns = 0;
  std::vector<double> realized_mr;
  std::vector<double> error;
};

/// Lifetime accuracy summary over every reconciled decision (not just
/// those still in the ring). `mean_signed_error` is the bias: positive
/// means the model systematically over-predicts miss ratios.
struct DecisionAccuracy {
  std::uint64_t decisions_total = 0;
  std::uint64_t reconciled_total = 0;
  std::uint64_t error_samples = 0;  ///< finite per-tenant errors
  double mean_abs_error = 0.0;
  double max_abs_error = 0.0;
  double mean_signed_error = 0.0;
};

/// Bounded thread-safe audit trail of partition decisions. Ids are
/// stable and monotonically increasing; the ring keeps the most recent
/// `capacity` records and lookup stays O(1) across wraparound (slot
/// (id-1) % capacity, validated against the stored id).
class DecisionLog {
 public:
  enum class ReconcileStatus {
    kOk,
    kUnknownId,          ///< never issued, or already evicted
    kAlreadyReconciled,
    kSizeMismatch,       ///< realized vector != tenant count
  };

  explicit DecisionLog(std::size_t capacity = 128);

  /// Stamps `rec` with the next id and `now_ns`, stores it, returns the
  /// id. Tenant-indexed vectors the caller left empty are normalized to
  /// tenants.size() (predicted_mr padded with NaN).
  std::uint64_t record(DecisionRecord rec, std::uint64_t now_ns);

  /// Attaches realized miss ratios to decision `id` and computes the
  /// signed errors. On kOk, `*out` (if non-null) receives the updated
  /// record. NaN entries in `realized` mark zero-access tenants; their
  /// error is NaN and excluded from accuracy totals.
  ReconcileStatus reconcile(std::uint64_t id,
                            const std::vector<double>& realized,
                            bool partial, std::uint64_t now_ns,
                            DecisionRecord* out = nullptr);

  /// O(1) id lookup; false when the id was never issued or has been
  /// overwritten by ring wraparound.
  bool find(std::uint64_t id, DecisionRecord* out) const;

  /// Up to `limit` most recent records, newest first.
  std::vector<DecisionRecord> recent(std::size_t limit) const;

  DecisionAccuracy accuracy() const;
  std::uint64_t last_id() const;
  std::size_t capacity() const { return capacity_; }

  /// Steady-clock nanoseconds for callers without their own clock.
  static std::uint64_t steady_now_ns();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<DecisionRecord> ring_;
  std::uint64_t next_id_ = 0;  ///< last issued id
  // Lifetime accuracy accumulators (survive ring eviction).
  std::uint64_t reconciled_total_ = 0;
  std::uint64_t error_samples_ = 0;
  double sum_abs_error_ = 0.0;
  double max_abs_error_ = 0.0;
  double sum_signed_error_ = 0.0;
};

/// DriftDetector tuning. `threshold` compares against the EWMA of the
/// absolute prediction error (ratio units); 0 disables alerting but
/// the EWMAs are still tracked for status views.
struct DriftConfig {
  double alpha = 0.25;          ///< EWMA weight of the newest sample
  double threshold = 0.0;
  std::size_t alert_capacity = 64;
};

/// One edge-triggered drift breach (same shape as SloTracker::Alert).
/// `tenant` names the worst offender (highest per-tenant EWMA) at the
/// moment of the breach; `decision_id` is the reconciled decision whose
/// errors tipped the aggregate over.
struct DriftAlert {
  std::uint64_t seq = 0;
  std::uint64_t at_ns = 0;
  std::uint64_t decision_id = 0;
  std::string tenant;
  double ewma_abs = 0.0;
  double threshold = 0.0;
};

struct DriftTenantStatus {
  std::string tenant;
  double ewma_abs = 0.0;
  double bias = 0.0;  ///< EWMA of the signed error
  std::uint64_t samples = 0;
};

struct DriftStatus {
  bool configured = false;  ///< threshold > 0
  double alpha = 0.0;
  double threshold = 0.0;
  double ewma_abs = 0.0;    ///< aggregate |error| EWMA
  double bias = 0.0;        ///< aggregate signed-error EWMA
  std::uint64_t samples = 0;
  bool breaching = false;
  std::uint64_t alerts_total = 0;
  std::vector<DriftTenantStatus> tenants;  ///< sorted by tenant name
};

/// EWMA model-drift monitor. Feed every reconciled decision through
/// observe(); alerts are edge-triggered on the *aggregate* EWMA
/// crossing the threshold (re-armed when it drops back below), so one
/// sustained excursion logs exactly one alert. Per-tenant EWMAs are
/// kept for attribution (`ocps why`, status views) but do not alert on
/// their own. Thread-safe; registry-independent like DecisionLog.
class DriftDetector {
 public:
  explicit DriftDetector(DriftConfig config = {});

  /// Folds the record's finite errors into the EWMAs. Non-finite
  /// errors (no prediction / zero-access tenants) are skipped. May
  /// append one alert.
  void observe(const DecisionRecord& rec, std::uint64_t now_ns);

  DriftStatus status() const;
  std::vector<DriftAlert> alerts() const;  ///< bounded, oldest dropped
  std::uint64_t alerts_total() const;
  const DriftConfig& config() const { return config_; }

 private:
  struct Ewma {
    double abs = 0.0;
    double bias = 0.0;
    std::uint64_t samples = 0;
  };
  void fold(Ewma& e, double err) const;

  const DriftConfig config_;
  mutable std::mutex mu_;
  Ewma aggregate_;
  std::vector<std::pair<std::string, Ewma>> tenants_;  ///< sorted by name
  bool breaching_ = false;
  std::uint64_t alerts_total_ = 0;
  std::vector<DriftAlert> alerts_;
};

/// Feeds one freshly-reconciled record into the metrics plane: the
/// drift detector (always, it is registry-independent), and — only
/// when obs::enabled() — the dp.prediction_error lifetime histograms
/// (aggregate + per-tenant, ppm), the optional windowed histogram, and
/// per-bucket exemplars keyed by the decision id. Call immediately
/// after DecisionLog::reconcile returns kOk.
void record_prediction_errors(const DecisionRecord& rec,
                              DriftDetector* drift,
                              WindowedHistogram* window,
                              std::uint64_t now_ns);

/// Publishes the dp.decision.* / dp.drift.* gauge families from the
/// current log + detector state (ratio units), plus windowed
/// dp.prediction_error quantile gauges when `window` is given. No-op
/// when obs::enabled() is false. Call on scrape.
void publish_decision_metrics(const DecisionLog& log,
                              const DriftDetector* drift,
                              const WindowedHistogram* window,
                              std::uint64_t now_ns);

}  // namespace ocps::obs
