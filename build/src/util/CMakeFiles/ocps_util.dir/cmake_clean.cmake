file(REMOVE_RECURSE
  "CMakeFiles/ocps_util.dir/args.cpp.o"
  "CMakeFiles/ocps_util.dir/args.cpp.o.d"
  "CMakeFiles/ocps_util.dir/config.cpp.o"
  "CMakeFiles/ocps_util.dir/config.cpp.o.d"
  "CMakeFiles/ocps_util.dir/curve.cpp.o"
  "CMakeFiles/ocps_util.dir/curve.cpp.o.d"
  "CMakeFiles/ocps_util.dir/parallel.cpp.o"
  "CMakeFiles/ocps_util.dir/parallel.cpp.o.d"
  "CMakeFiles/ocps_util.dir/rng.cpp.o"
  "CMakeFiles/ocps_util.dir/rng.cpp.o.d"
  "CMakeFiles/ocps_util.dir/stats.cpp.o"
  "CMakeFiles/ocps_util.dir/stats.cpp.o.d"
  "CMakeFiles/ocps_util.dir/table.cpp.o"
  "CMakeFiles/ocps_util.dir/table.cpp.o.d"
  "libocps_util.a"
  "libocps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
