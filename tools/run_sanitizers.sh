#!/usr/bin/env bash
# Builds the repo with sanitizers and runs tests under them.
# Intended as the CI sanitizer jobs; usable locally the same way:
#
#   tools/run_sanitizers.sh [mode] [build-dir] [ctest-args...]
#
# Modes:
#   asan  (default)  ASan+UBSan over the full tier-1 suite
#   tsan             ThreadSanitizer over the concurrency-heavy tests
#                    (thread pool, batched sweep, serve daemon, router +
#                    retry/breaker layer incl. the TCP suites). OCPS_THREADS
#                    is forced to 4 so the pool actually runs multi-threaded
#                    even on single-core CI runners — without it TSan
#                    coverage of the sweep path would be vacuous there.
#
# The first argument is optional for backward compatibility: anything that
# is not a known mode is treated as the build dir for asan mode.
#
# Exits non-zero on any build failure, test failure, or sanitizer report.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

mode="asan"
case "${1:-}" in
  asan|tsan)
    mode="$1"
    shift
    ;;
esac
build_dir="${1:-$repo_root/build-sanitize-$mode}"
shift || true

case "$mode" in
  asan)
    sanitize="address,undefined"
    ;;
  tsan)
    sanitize="thread"
    ;;
esac

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DOCPS_SANITIZE="$sanitize"
cmake --build "$build_dir" -j "$(nproc)"

if [[ "$mode" == "tsan" ]]; then
  # halt_on_error: a data-race report fails the run instead of just logging.
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  # Force real pool parallelism regardless of the runner's core count.
  export OCPS_THREADS=4
  ctest --test-dir "$build_dir" --output-on-failure -j 1 \
    -R 'ThreadPool|BatchSweep|Serve|Router' "$@"
else
  # halt_on_error makes UBSan findings fail the run instead of just logging.
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  export ASAN_OPTIONS="detect_leaks=1"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "$@"
fi
