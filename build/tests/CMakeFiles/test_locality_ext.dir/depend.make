# Empty dependencies file for test_locality_ext.
# This may be replaced when dependencies are built.
