#!/usr/bin/env bash
# Builds the repo with ASan+UBSan and runs the tier-1 test suite.
# Intended as the CI sanitizer job; usable locally the same way:
#
#   tools/run_sanitizers.sh [build-dir] [ctest-args...]
#
# Exits non-zero on any build failure, test failure, or sanitizer report.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-sanitize}"
shift || true

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DOCPS_SANITIZE=address,undefined
cmake --build "$build_dir" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "$@"
