// Tests for replacement policies (FIFO / Random / CLOCK) and resizable
// LRU partitions.
#include <gtest/gtest.h>

#include "cachesim/lru.hpp"
#include "cachesim/policies.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

TEST(Policies, NamesAreStable) {
  EXPECT_STREQ(policy_name(Policy::kFifo), "FIFO");
  EXPECT_STREQ(policy_name(Policy::kRandom), "Random");
  EXPECT_STREQ(policy_name(Policy::kClock), "CLOCK");
}

TEST(Policies, HitsWhenWorkingSetFits) {
  // Any policy is perfect when the data fits: only cold misses.
  Trace t = make_cyclic(5000, 40);
  for (Policy p : {Policy::kFifo, Policy::kRandom, Policy::kClock}) {
    PolicyCache cache(p, 64);
    for (Block b : t.accesses) cache.access(b);
    EXPECT_EQ(cache.misses(), 40u) << policy_name(p);
  }
}

TEST(Policies, ZeroCapacityAlwaysMisses) {
  for (Policy p : {Policy::kFifo, Policy::kRandom, Policy::kClock}) {
    PolicyCache cache(p, 0);
    EXPECT_FALSE(cache.access(1));
    EXPECT_FALSE(cache.access(1));
    EXPECT_EQ(cache.misses(), 2u) << policy_name(p);
  }
}

TEST(Policies, SizeBoundedByCapacity) {
  Trace t = make_uniform(20000, 500, 71);
  for (Policy p : {Policy::kFifo, Policy::kRandom, Policy::kClock}) {
    PolicyCache cache(p, 100);
    for (Block b : t.accesses) cache.access(b);
    EXPECT_LE(cache.size(), 100u) << policy_name(p);
  }
}

TEST(Policies, FifoByExample) {
  // Capacity 2, insert 1,2 -> access 1 (hit, but FIFO does not promote)
  // -> insert 3 evicts 1 (oldest), not 2.
  PolicyCache cache(Policy::kFifo, 2);
  cache.access(1);
  cache.access(2);
  EXPECT_TRUE(cache.access(1));
  cache.access(3);                  // evicts 1
  EXPECT_FALSE(cache.access(1));    // 1 is gone (would hit under LRU)
}

TEST(Policies, ClockApproximatesLruOnSkewedAccesses) {
  Trace t = make_zipf(60000, 400, 1.0, 72);
  LruCache lru(128);
  PolicyCache clock(Policy::kClock, 128);
  for (Block b : t.accesses) {
    lru.access(b);
    clock.access(b);
  }
  EXPECT_NEAR(clock.miss_ratio(), lru.miss_ratio(), 0.03);
}

TEST(Policies, RandomBeatsLruOnCyclicScan) {
  // On a cyclic scan slightly bigger than the cache, LRU misses everything
  // (it always evicts the block about to be reused); Random keeps most of
  // the loop resident and does far better.
  Trace t = make_cyclic(50000, 130);
  LruCache lru(128);
  PolicyCache rnd(Policy::kRandom, 128, 99);
  for (Block b : t.accesses) {
    lru.access(b);
    rnd.access(b);
  }
  EXPECT_GT(lru.miss_ratio(), 0.99);
  EXPECT_LT(rnd.miss_ratio(), 0.5);
}

TEST(Policies, RandomIsSeedDeterministic) {
  Trace t = make_uniform(20000, 300, 73);
  double a = policy_miss_ratio(Policy::kRandom, t, 100, 5);
  double b = policy_miss_ratio(Policy::kRandom, t, 100, 5);
  double c = policy_miss_ratio(Policy::kRandom, t, 100, 6);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(a, c);  // different seed, different evictions (overwhelmingly)
}

TEST(ResizableLru, ShrinkEvictsLruFirst) {
  LruCache cache(4);
  for (Block b : {1, 2, 3, 4}) cache.access(b);
  cache.access(1);  // order (MRU->LRU): 1 4 3 2
  cache.set_capacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_FALSE(cache.contains(3));
}

TEST(ResizableLru, GrowKeepsContents) {
  LruCache cache(2);
  cache.access(1);
  cache.access(2);
  cache.set_capacity(5);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  cache.access(3);
  cache.access(4);
  cache.access(5);
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_TRUE(cache.contains(1));
}

TEST(ResizableLru, ShrinkToZero) {
  LruCache cache(3);
  cache.access(1);
  cache.set_capacity(0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.access(1));
}

}  // namespace
}  // namespace ocps
