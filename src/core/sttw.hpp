// Stone-Thiebaut-Turek-Wolf cache partitioning (§V-B, Eq. 12-14).
//
// The classic 1992 algorithm allocates the cache greedily: give the next
// unit to the program with the steepest miss-count decrease, equalizing
// the (rate-weighted) miss-ratio derivatives (Eq. 14). It is optimal when
// every curve is convex and can fail badly otherwise — the paper's Fig. 7 /
// Table I comparison.
//
// Two variants are provided:
//  * kLocalDerivative — the faithful Stone et al. rule: the marginal gain
//    is the raw curve's next-unit decrease. On a non-convex plateau the
//    local derivative is ~zero, so the greedy never "sees" a cliff behind
//    it and starves cliff programs entirely; this is the failure mode the
//    paper measures (STTW sometimes worse than free-for-all sharing).
//  * kConvexHull — a charitable strengthening used by later work (cf. Suh
//    et al.): run the greedy on each curve's greatest convex minorant,
//    then charge true costs. It can still straddle a cliff when the cache
//    runs out mid-chord, but never ignores one.
#pragma once

#include <vector>

#include "core/dp_partition.hpp"

namespace ocps {

/// Which marginal the greedy consumes.
enum class SttwVariant {
  kLocalDerivative,  ///< faithful Stone et al. (default)
  kConvexHull,       ///< hull-smoothed marginals
};

/// Result of the STTW allocation.
struct SttwResult {
  std::vector<std::size_t> alloc;  ///< per-program units, Σ = capacity
  double objective_value = 0.0;    ///< true Σ cost_i(alloc_i)
  /// Σ of the curve the greedy believed in (hull for kConvexHull, raw for
  /// kLocalDerivative); a lower bound on objective_value.
  double believed_objective_value = 0.0;
};

/// Runs STTW on cost curves (same convention as optimize_partition:
/// cost(i, c) for c = 0..capacity; lower is better; typically the
/// rate-weighted miss ratio).
SttwResult sttw_partition(CostMatrixView cost, std::size_t capacity,
                          SttwVariant variant = SttwVariant::kLocalDerivative);

}  // namespace ocps
