// Shared-memory parallel loops for the evaluation sweeps.
//
// Facade over util/thread_pool: parallel_for keeps its historical
// free-function shape (dynamic contiguous chunks, first exception
// rethrown on the caller, serial degradation on one core) but now runs
// on the persistent work-stealing pool instead of spawning threads per
// call, and is a template over the callable so per-index dispatch
// inlines. See thread_pool.hpp for the pool itself, per-thread-state
// loops (parallel_for_with), and the OCPS_THREADS contract.
#pragma once

#include "util/thread_pool.hpp"
