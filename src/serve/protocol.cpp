#include "serve/protocol.hpp"

#include <chrono>
#include <cmath>

#include "obs/obs.hpp"

namespace ocps::serve {

const char* op_name(Op op) {
  switch (op) {
    case Op::kPartition: return "partition";
    case Op::kSweep: return "sweep";
    case Op::kHealth: return "health";
    case Op::kReload: return "reload";
    case Op::kMetrics: return "metrics";
    case Op::kSlowlog: return "slowlog";
    case Op::kTrace: return "trace";
    case Op::kSlo: return "slo";
    case Op::kDecisions: return "decisions";
    case Op::kReconcile: return "reconcile";
  }
  return "?";
}

namespace {

Result<std::vector<std::string>> string_list(const json::Value& obj,
                                             std::string_view key) {
  std::vector<std::string> out;
  const json::Value* v = obj.find(key);
  if (!v) return Ok(std::move(out));
  if (!v->is_array())
    return Err(ErrorCode::kInvalidArgument,
               std::string(key) + " must be an array of strings");
  for (const json::Value& item : v->as_array()) {
    if (!item.is_string())
      return Err(ErrorCode::kInvalidArgument,
                 std::string(key) + " must be an array of strings");
    out.push_back(item.as_string());
  }
  return Ok(std::move(out));
}

Result<std::size_t> size_field(const json::Value& obj, std::string_view key,
                               std::size_t fallback) {
  const json::Value* v = obj.find(key);
  if (!v) return Ok(std::move(fallback));
  if (!v->is_number() || v->as_number() < 0 ||
      v->as_number() != std::floor(v->as_number()))
    return Err(ErrorCode::kInvalidArgument,
               std::string(key) + " must be a non-negative integer");
  return Ok(static_cast<std::size_t>(v->as_number()));
}

}  // namespace

Result<Request> parse_request(const std::string& line) {
  Result<json::Value> parsed = json::parse(line);
  if (!parsed.ok()) return parsed.error();
  const json::Value& obj = parsed.value();
  if (!obj.is_object())
    return Err(ErrorCode::kInvalidArgument, "request must be a JSON object");

  Request req;
  double id = obj.get_number("id", 0.0);
  req.id = static_cast<std::int64_t>(id);

  std::string op = obj.get_string("op", "");
  if (op == "partition") req.op = Op::kPartition;
  else if (op == "sweep") req.op = Op::kSweep;
  else if (op == "health") req.op = Op::kHealth;
  else if (op == "reload") req.op = Op::kReload;
  else if (op == "metrics") req.op = Op::kMetrics;
  else if (op == "slowlog") req.op = Op::kSlowlog;
  else if (op == "trace") req.op = Op::kTrace;
  else if (op == "slo") req.op = Op::kSlo;
  else if (op == "decisions") req.op = Op::kDecisions;
  else if (op == "reconcile") req.op = Op::kReconcile;
  else
    return Err(ErrorCode::kInvalidArgument,
               op.empty() ? "missing \"op\"" : "unknown op \"" + op + "\"");

  auto programs = string_list(obj, "programs");
  if (!programs.ok()) return programs.error();
  req.programs = std::move(programs.value());

  auto paths = string_list(obj, "paths");
  if (!paths.ok()) return paths.error();
  req.paths = std::move(paths.value());

  auto capacity = size_field(obj, "capacity", 0);
  if (!capacity.ok()) return capacity.error();
  req.capacity = capacity.value();

  auto group_size = size_field(obj, "group_size", 0);
  if (!group_size.ok()) return group_size.error();
  req.group_size = group_size.value();

  req.objective = obj.get_string("objective", "sum");
  if (req.objective != "sum" && req.objective != "max")
    return Err(ErrorCode::kInvalidArgument,
               "objective must be \"sum\" or \"max\"");

  req.deadline_ms = obj.get_number("deadline_ms", 0.0);
  if (!(req.deadline_ms >= 0.0) || !std::isfinite(req.deadline_ms))
    return Err(ErrorCode::kInvalidArgument,
               "deadline_ms must be a non-negative number");

  auto trace_id = size_field(obj, "trace_id", 0);
  if (!trace_id.ok()) return trace_id.error();
  req.trace_id = static_cast<std::uint64_t>(trace_id.value());

  auto parent_span = size_field(obj, "parent_span", 0);
  if (!parent_span.ok()) return parent_span.error();
  req.parent_span = static_cast<std::uint64_t>(parent_span.value());

  auto hop = size_field(obj, "hop", 0);
  if (!hop.ok()) return hop.error();
  req.hop = hop.value();

  auto decision_id = size_field(obj, "decision_id", 0);
  if (!decision_id.ok()) return decision_id.error();
  req.decision_id = static_cast<std::uint64_t>(decision_id.value());

  auto limit = size_field(obj, "limit", 0);
  if (!limit.ok()) return limit.error();
  req.limit = limit.value();

  if (const json::Value* realized = obj.find("realized")) {
    if (!realized->is_array())
      return Err(ErrorCode::kInvalidArgument,
                 "realized must be an array of numbers or nulls");
    for (const json::Value& item : realized->as_array()) {
      if (item.is_number())
        req.realized.push_back(item.as_number());
      else if (item.is_null())
        req.realized.push_back(std::nan(""));  // zero-access tenant
      else
        return Err(ErrorCode::kInvalidArgument,
                   "realized must be an array of numbers or nulls");
    }
  }

  switch (req.op) {
    case Op::kPartition:
      if (req.programs.empty())
        return Err(ErrorCode::kInvalidArgument,
                   "partition needs a non-empty \"programs\" list");
      break;
    case Op::kReload:
      if (req.paths.empty())
        return Err(ErrorCode::kInvalidArgument,
                   "reload needs a non-empty \"paths\" list");
      break;
    case Op::kTrace:
      if (req.trace_id == 0)
        return Err(ErrorCode::kInvalidArgument,
                   "trace needs a non-zero \"trace_id\"");
      break;
    case Op::kReconcile:
      if (req.decision_id == 0)
        return Err(ErrorCode::kInvalidArgument,
                   "reconcile needs a non-zero \"decision_id\"");
      if (req.realized.empty())
        return Err(ErrorCode::kInvalidArgument,
                   "reconcile needs a non-empty \"realized\" array");
      break;
    case Op::kSweep:
    case Op::kHealth:
    case Op::kMetrics:
    case Op::kSlowlog:
    case Op::kSlo:
    case Op::kDecisions:
      break;
  }
  return Ok(std::move(req));
}

std::string encode_request(const Request& req) {
  json::Value out;
  out.set("id", json::Value(static_cast<double>(req.id)));
  out.set("op", json::Value(op_name(req.op)));
  if (!req.programs.empty()) {
    json::Array programs;
    programs.reserve(req.programs.size());
    for (const std::string& name : req.programs) programs.emplace_back(name);
    out.set("programs", json::Value(std::move(programs)));
  }
  if (!req.paths.empty()) {
    json::Array paths;
    paths.reserve(req.paths.size());
    for (const std::string& path : req.paths) paths.emplace_back(path);
    out.set("paths", json::Value(std::move(paths)));
  }
  if (req.capacity > 0)
    out.set("capacity", json::Value(static_cast<double>(req.capacity)));
  if (req.group_size > 0)
    out.set("group_size", json::Value(static_cast<double>(req.group_size)));
  if (req.objective != "sum") out.set("objective", json::Value(req.objective));
  if (req.deadline_ms > 0.0)
    out.set("deadline_ms", json::Value(req.deadline_ms));
  if (req.trace_id != 0)
    out.set("trace_id", json::Value(static_cast<double>(req.trace_id)));
  if (req.parent_span != 0)
    out.set("parent_span", json::Value(static_cast<double>(req.parent_span)));
  if (req.hop != 0) out.set("hop", json::Value(static_cast<double>(req.hop)));
  if (req.decision_id != 0)
    out.set("decision_id",
            json::Value(static_cast<double>(req.decision_id)));
  if (req.limit != 0)
    out.set("limit", json::Value(static_cast<double>(req.limit)));
  if (!req.realized.empty()) {
    json::Array realized;
    realized.reserve(req.realized.size());
    // Non-finite entries dump as null and parse back to NaN.
    for (double v : req.realized) realized.emplace_back(v);
    out.set("realized", json::Value(std::move(realized)));
  }
  return out.dump();
}

std::string error_response(std::int64_t id, int code,
                           const std::string& message) {
  json::Value out;
  out.set("id", json::Value(static_cast<double>(id)));
  out.set("ok", json::Value(false));
  out.set("code", json::Value(static_cast<double>(code)));
  out.set("error", json::Value(message));
  return out.dump();
}

std::string ok_response(std::int64_t id, json::Value body) {
  json::Value out;
  out.set("id", json::Value(static_cast<double>(id)));
  out.set("ok", json::Value(true));
  if (body.is_object())
    for (const auto& [k, v] : body.as_object()) out.set(k, v);
  return out.dump();
}

json::Value trace_proc_json(const std::string& proc_label,
                            std::uint64_t trace_id) {
  json::Value proc;
  proc.set("proc", json::Value(proc_label));
  proc.set("mono_ns", json::Value(static_cast<double>(obs::now_ns())));
  proc.set("wall_ns",
           json::Value(static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count())));
  json::Array spans;
  for (const obs::TraceEvent& e : obs::trace_events_for(trace_id)) {
    json::Value row;
    row.set("name", json::Value(e.name ? e.name : ""));
    row.set("cat", json::Value(e.cat ? e.cat : "ocps"));
    row.set("ts_ns", json::Value(static_cast<double>(e.ts_ns)));
    row.set("dur_ns", json::Value(static_cast<double>(e.dur_ns)));
    row.set("tid", json::Value(static_cast<double>(e.tid)));
    row.set("instant", json::Value(e.instant));
    if (e.arg_name) {
      row.set("arg_name", json::Value(e.arg_name));
      row.set("arg", json::Value(static_cast<double>(e.arg)));
    }
    spans.push_back(std::move(row));
  }
  proc.set("spans", json::Value(std::move(spans)));
  return proc;
}

json::Value decision_json(const obs::DecisionRecord& rec) {
  json::Value out;
  out.set("decision_id", json::Value(static_cast<double>(rec.id)));
  out.set("epoch", json::Value(static_cast<double>(rec.epoch)));
  out.set("trigger", json::Value(obs::decision_trigger_name(rec.trigger)));
  json::Array tenants, alloc, predicted, degraded;
  tenants.reserve(rec.tenants.size());
  for (const std::string& t : rec.tenants) tenants.emplace_back(t);
  alloc.reserve(rec.alloc.size());
  for (std::size_t units : rec.alloc)
    alloc.emplace_back(static_cast<double>(units));
  predicted.reserve(rec.predicted_mr.size());
  for (double v : rec.predicted_mr) predicted.emplace_back(v);
  degraded.reserve(rec.tenant_degraded.size());
  for (bool d : rec.tenant_degraded) degraded.emplace_back(d);
  out.set("tenants", json::Value(std::move(tenants)));
  out.set("alloc", json::Value(std::move(alloc)));
  out.set("predicted_mr", json::Value(std::move(predicted)));
  out.set("tenant_degraded", json::Value(std::move(degraded)));
  out.set("solve_ns", json::Value(static_cast<double>(rec.solve_ns)));
  out.set("incremental", json::Value(rec.incremental));
  if (!rec.note.empty()) out.set("note", json::Value(rec.note));
  out.set("reconciled", json::Value(rec.reconciled));
  if (rec.reconciled) {
    if (rec.partial) out.set("partial", json::Value(true));
    json::Array realized, error;
    realized.reserve(rec.realized_mr.size());
    for (double v : rec.realized_mr) realized.emplace_back(v);
    error.reserve(rec.error.size());
    for (double v : rec.error) error.emplace_back(v);
    out.set("realized_mr", json::Value(std::move(realized)));
    out.set("error", json::Value(std::move(error)));
  }
  return out;
}

json::Value decision_accuracy_json(const obs::DecisionAccuracy& acc) {
  json::Value out;
  out.set("decisions_total",
          json::Value(static_cast<double>(acc.decisions_total)));
  out.set("reconciled",
          json::Value(static_cast<double>(acc.reconciled_total)));
  out.set("error_samples",
          json::Value(static_cast<double>(acc.error_samples)));
  out.set("mean_abs_error", json::Value(acc.mean_abs_error));
  out.set("max_abs_error", json::Value(acc.max_abs_error));
  out.set("bias", json::Value(acc.mean_signed_error));
  return out;
}

json::Value drift_status_json(const obs::DriftStatus& status,
                              const std::vector<obs::DriftAlert>& alerts) {
  json::Value out;
  out.set("configured", json::Value(status.configured));
  out.set("alpha", json::Value(status.alpha));
  out.set("threshold", json::Value(status.threshold));
  out.set("ewma_abs_error", json::Value(status.ewma_abs));
  out.set("bias", json::Value(status.bias));
  out.set("samples", json::Value(static_cast<double>(status.samples)));
  out.set("breaching", json::Value(status.breaching));
  out.set("alerts_total",
          json::Value(static_cast<double>(status.alerts_total)));
  json::Array tenants;
  tenants.reserve(status.tenants.size());
  for (const obs::DriftTenantStatus& t : status.tenants) {
    json::Value row;
    row.set("tenant", json::Value(t.tenant));
    row.set("ewma_abs_error", json::Value(t.ewma_abs));
    row.set("bias", json::Value(t.bias));
    row.set("samples", json::Value(static_cast<double>(t.samples)));
    tenants.push_back(std::move(row));
  }
  out.set("tenants", json::Value(std::move(tenants)));
  json::Array rows;
  rows.reserve(alerts.size());
  for (const obs::DriftAlert& a : alerts) {
    json::Value row;
    row.set("seq", json::Value(static_cast<double>(a.seq)));
    row.set("at_ns", json::Value(static_cast<double>(a.at_ns)));
    row.set("decision_id",
            json::Value(static_cast<double>(a.decision_id)));
    row.set("tenant", json::Value(a.tenant));
    row.set("ewma_abs_error", json::Value(a.ewma_abs));
    row.set("threshold", json::Value(a.threshold));
    rows.push_back(std::move(row));
  }
  out.set("alerts", json::Value(std::move(rows)));
  return out;
}

Result<Response> parse_response(const std::string& line) {
  Result<json::Value> parsed = json::parse(line);
  if (!parsed.ok()) return parsed.error();
  if (!parsed.value().is_object())
    return Err(ErrorCode::kCorruptData, "response must be a JSON object");
  Response r;
  r.body = std::move(parsed.value());
  r.id = static_cast<std::int64_t>(r.body.get_number("id", 0.0));
  r.ok = r.body.get_bool("ok", false);
  r.code = static_cast<int>(r.body.get_number("code", 0.0));
  r.error = r.body.get_string("error", "");
  return Ok(std::move(r));
}

}  // namespace ocps::serve
