// Shared-memory parallel loops for the evaluation sweeps.
//
// The group sweep evaluates 1,820 independent co-run groups; each group's
// DP is independent, so the sweep is embarrassingly parallel. We implement a
// chunked parallel_for over an index range with std::thread workers (the
// OpenMP `parallel for schedule(dynamic)` idiom, without requiring OpenMP).
// On a single-core host it degrades to a serial loop with no thread spawn.
#pragma once

#include <cstddef>
#include <functional>

namespace ocps {

/// Number of worker threads used by parallel_for: hardware_concurrency,
/// overridable with OCPS_THREADS.
std::size_t parallel_thread_count();

/// Runs fn(i) for every i in [begin, end), distributing dynamically-sized
/// chunks across worker threads. fn must be safe to call concurrently for
/// distinct i. Exceptions thrown by fn are captured and the first one is
/// rethrown on the calling thread after all workers join.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ocps
