#!/usr/bin/env bash
# End-to-end check of the observability layer: runs the controller with
# tracing on, then validates the emitted Chrome trace and metrics JSON
# against a lightweight schema. Intended as the CI observability job;
# usable locally the same way:
#
#   tools/run_observability_check.sh [build-dir]
#
# Exits non-zero when the CLI fails, an artifact is missing, or either
# JSON file does not look like what docs/observability.md promises.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
ocps="$build_dir/tools/ocps"

if [[ ! -x "$ocps" ]]; then
  echo "building ocps CLI into $build_dir ..."
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$build_dir" -j "$(nproc)" --target ocps_cli
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# A small deterministic trace: two interleaved scans with different
# working sets, enough accesses for several controller epochs.
awk 'BEGIN { for (i = 0; i < 8000; i++) printf "%d\n", (i % 120) * 64 }' \
  > "$workdir/a.txt"
awk 'BEGIN { for (i = 0; i < 8000; i++) printf "%d\n", (i % 450) * 64 }' \
  > "$workdir/b.txt"

"$ocps" controller "$workdir/a.txt" "$workdir/b.txt" \
  --capacity 256 --epoch 2000 \
  --trace-out "$workdir/trace.json" \
  --metrics-out "$workdir/metrics.json"

for f in trace.json metrics.json; do
  [[ -s "$workdir/$f" ]] || { echo "FAIL: $f missing or empty"; exit 1; }
done

if command -v python3 > /dev/null; then
  python3 - "$workdir/trace.json" "$workdir/metrics.json" <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert isinstance(events, list) and events, "no trace events"
for e in events:
    for key in ("name", "cat", "ph", "pid", "tid", "ts"):
        assert key in e, f"event missing {key}: {e}"
    assert e["ph"] in ("X", "i"), f"unexpected phase {e['ph']}"
names = {e["name"] for e in events}
for stage in ("epoch", "estimate", "sanitize", "dp_solve", "apply"):
    assert stage in names, f"missing controller stage span '{stage}'"
spans = [e for e in events if e["ph"] == "X"]
assert all("dur" in e for e in spans), "span without duration"

metrics = json.load(open(sys.argv[2]))
for section in ("counters", "gauges", "histograms"):
    assert section in metrics, f"missing section {section}"
counters = metrics["counters"]
assert counters.get("controller.epochs", 0) > 0, "no epochs counted"
assert "controller.repairs" in counters, "missing health counter"
hist = metrics["histograms"].get("dp.solve_ns")
assert hist and hist["count"] > 0, "missing DP solve-latency histogram"
for bucket in hist["buckets"]:
    assert bucket["hi"] is None or bucket["hi"] > bucket["lo"]

print(f"OK: {len(events)} trace events, "
      f"{len(counters)} counters, "
      f"{counters['controller.epochs']} epochs traced")
EOF
else
  # Fallback schema check without python: look for the required keys.
  grep -q '"traceEvents"' "$workdir/trace.json"
  grep -q '"name":"epoch"' "$workdir/trace.json"
  grep -q '"name":"dp_solve"' "$workdir/trace.json"
  grep -q '"counters"' "$workdir/metrics.json"
  grep -q '"controller.epochs"' "$workdir/metrics.json"
  grep -q '"dp.solve_ns"' "$workdir/metrics.json"
  echo "OK (grep fallback): artifacts contain the required keys"
fi

echo "observability check passed"
