file(REMOVE_RECURSE
  "CMakeFiles/bench_online_controller.dir/bench_online_controller.cpp.o"
  "CMakeFiles/bench_online_controller.dir/bench_online_controller.cpp.o.d"
  "bench_online_controller"
  "bench_online_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
