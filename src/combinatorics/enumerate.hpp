// Enumeration of the partition-sharing configuration space (§II, Fig. 2).
//
// A partition-sharing scheme is (a) a set partition of the programs into
// groups and (b) an assignment of cache units to each group. These
// enumerators drive the exhaustive small-scale searches that validate the
// reduction theorem (optimal partitioning == optimal partition-sharing
// under the natural partition assumption) and the DP optimizer.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace ocps {

/// A set partition of {0..n-1} represented as a list of groups, each group a
/// sorted list of element indices. Groups appear in order of their smallest
/// element (canonical restricted-growth order).
using SetPartition = std::vector<std::vector<std::uint32_t>>;

/// Calls visit for every set partition of {0..n-1}. When max_groups > 0 only
/// partitions with at most max_groups groups are visited. The visit callback
/// may return false to stop enumeration early.
void for_each_set_partition(
    std::uint32_t n, std::uint32_t max_groups,
    const std::function<bool(const SetPartition&)>& visit);

/// Number of set partitions that would be visited (Bell number, or the sum
/// of Stirling numbers up to max_groups).
std::uint64_t count_set_partitions(std::uint32_t n, std::uint32_t max_groups);

/// Calls visit for every weak composition (c_0..c_{k-1}) with Σ c_i = total
/// and c_i >= minimum. The visit callback may return false to stop early.
void for_each_composition(
    std::uint32_t k, std::uint32_t total, std::uint32_t minimum,
    const std::function<bool(const std::vector<std::uint32_t>&)>& visit);

/// Number of weak compositions of `total` into k parts each >= minimum.
std::uint64_t count_compositions(std::uint32_t k, std::uint32_t total,
                                 std::uint32_t minimum);

/// Calls visit for every k-element subset of {0..n-1} in lexicographic
/// order. Used to enumerate the 1820 4-program co-run groups.
void for_each_subset(
    std::uint32_t n, std::uint32_t k,
    const std::function<bool(const std::vector<std::uint32_t>&)>& visit);

/// Collects all k-element subsets of {0..n-1}.
std::vector<std::vector<std::uint32_t>> all_subsets(std::uint32_t n,
                                                    std::uint32_t k);

}  // namespace ocps
