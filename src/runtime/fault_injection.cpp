#include "runtime/fault_injection.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ocps {

namespace {

// Distinguishes the independent per-(epoch, program) decisions.
enum Kind : std::uint64_t {
  kNan = 1,
  kSpike = 2,
  kTruncate = 3,
  kDrop = 4,
  kDpFail = 5,
  kPosition = 6,  ///< where inside the curve a fault lands
};

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a ^ (b * 0x9E3779B97F4A7C15ULL);
  return splitmix64(state);
}

}  // namespace

FaultInjectionConfig FaultInjectionConfig::uniform(double r,
                                                   std::uint64_t seed) {
  FaultInjectionConfig c;
  c.nan_rate = c.spike_rate = c.truncate_rate = c.drop_rate = c.dp_fail_rate =
      r;
  c.seed = seed;
  return c;
}

FaultInjector::FaultInjector(const FaultInjectionConfig& config)
    : config_(config) {
  auto valid_rate = [](double r) { return r >= 0.0 && r <= 1.0; };
  OCPS_CHECK(valid_rate(config.nan_rate) && valid_rate(config.spike_rate) &&
                 valid_rate(config.truncate_rate) &&
                 valid_rate(config.drop_rate) &&
                 valid_rate(config.dp_fail_rate),
             "fault rates must be in [0, 1]");
}

double FaultInjector::draw(std::uint64_t kind, std::size_t epoch,
                           std::size_t program) const {
  std::uint64_t h = mix(mix(config_.seed, kind),
                        mix(static_cast<std::uint64_t>(epoch) << 20,
                            static_cast<std::uint64_t>(program)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void FaultInjector::corrupt_mrc(std::size_t epoch, std::size_t program,
                                std::vector<double>& ratios) {
  if (ratios.empty()) return;
  const std::size_t n = ratios.size();
  // Position draws reuse one hash, sliced, so each kind stays a pure
  // function of (seed, epoch, program).
  std::uint64_t pos = mix(mix(config_.seed, kPosition),
                          mix(static_cast<std::uint64_t>(epoch) << 20,
                              static_cast<std::uint64_t>(program)));

  if (config_.nan_rate > 0.0 && draw(kNan, epoch, program) < config_.nan_rate) {
    // A run of NaNs somewhere inside the curve.
    std::size_t start = static_cast<std::size_t>(pos % n);
    std::size_t len = 1 + static_cast<std::size_t>((pos >> 17) % (n / 4 + 1));
    for (std::size_t i = start; i < std::min(n, start + len); ++i)
      ratios[i] = std::numeric_limits<double>::quiet_NaN();
    ++nan_;
  }
  if (config_.spike_rate > 0.0 &&
      draw(kSpike, epoch, program) < config_.spike_rate) {
    // A spike well above 1.0: breaks both range and monotonicity.
    std::size_t at = static_cast<std::size_t>((pos >> 7) % n);
    ratios[at] = 2.0 + static_cast<double>((pos >> 40) % 1000) / 100.0;
    ++spikes_;
  }
  if (config_.truncate_rate > 0.0 &&
      draw(kTruncate, epoch, program) < config_.truncate_rate) {
    // The estimate stops early; keep at least one entry.
    std::size_t keep = 1 + static_cast<std::size_t>((pos >> 23) % n);
    if (keep < n) {
      ratios.resize(keep);
      ++truncations_;
    }
  }
}

bool FaultInjector::drop_estimate(std::size_t epoch, std::size_t program) {
  if (config_.drop_rate > 0.0 &&
      draw(kDrop, epoch, program) < config_.drop_rate) {
    ++drops_;
    return true;
  }
  return false;
}

bool FaultInjector::fail_dp(std::size_t epoch) {
  if (config_.dp_fail_rate > 0.0 &&
      draw(kDpFail, epoch, /*program=*/0) < config_.dp_fail_rate) {
    ++dp_failures_;
    return true;
  }
  return false;
}

ControllerHooks FaultInjector::hooks() {
  ControllerHooks h;
  h.corrupt_mrc = [this](std::size_t epoch, std::size_t program,
                         std::vector<double>& ratios) {
    corrupt_mrc(epoch, program, ratios);
  };
  h.drop_estimate = [this](std::size_t epoch, std::size_t program) {
    return drop_estimate(epoch, program);
  };
  h.fail_dp = [this](std::size_t epoch) { return fail_dp(epoch); };
  return h;
}

void FaultInjector::reset_counts() {
  nan_ = spikes_ = truncations_ = drops_ = dp_failures_ = 0;
}

// ---------------------------------------------------------------------------
// Socket-layer faults.

namespace {

// Kind tags for the network injector, disjoint from the controller's.
enum NetKind : std::uint64_t {
  kAcceptFail = 101,
  kReset = 102,
  kTrickle = 103,
  kStall = 104,
};

}  // namespace

NetFaultConfig NetFaultConfig::uniform(double r, std::uint64_t seed) {
  NetFaultConfig c;
  c.accept_fail_rate = c.reset_rate = c.trickle_rate = c.stall_rate = r;
  c.seed = seed;
  return c;
}

NetFaultInjector::NetFaultInjector(const NetFaultConfig& config)
    : config_(config) {
  auto valid_rate = [](double r) { return r >= 0.0 && r <= 1.0; };
  OCPS_CHECK(valid_rate(config.accept_fail_rate) &&
                 valid_rate(config.reset_rate) &&
                 valid_rate(config.trickle_rate) &&
                 valid_rate(config.stall_rate),
             "net fault rates must be in [0, 1]");
  OCPS_CHECK(config.stall.count() >= 0, "net fault stall must be >= 0");
}

double NetFaultInjector::draw(std::uint64_t kind, std::uint64_t seq) const {
  std::uint64_t h = mix(mix(config_.seed, kind), seq + 1);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool NetFaultInjector::fail_accept() const {
  std::uint64_t seq = accept_seq_.fetch_add(1, std::memory_order_relaxed);
  if (config_.accept_fail_rate > 0.0 &&
      draw(kAcceptFail, seq) < config_.accept_fail_rate) {
    accept_failures_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

NetFaultInjector::WriteFault NetFaultInjector::write_fault() const {
  std::uint64_t seq = write_seq_.fetch_add(1, std::memory_order_relaxed);
  if (config_.reset_rate > 0.0 && draw(kReset, seq) < config_.reset_rate) {
    resets_.fetch_add(1, std::memory_order_relaxed);
    return WriteFault::kReset;
  }
  if (config_.trickle_rate > 0.0 &&
      draw(kTrickle, seq) < config_.trickle_rate) {
    trickles_.fetch_add(1, std::memory_order_relaxed);
    return WriteFault::kTrickle;
  }
  if (config_.stall_rate > 0.0 && draw(kStall, seq) < config_.stall_rate) {
    stalls_.fetch_add(1, std::memory_order_relaxed);
    return WriteFault::kStall;
  }
  return WriteFault::kNone;
}

}  // namespace ocps
