file(REMOVE_RECURSE
  "CMakeFiles/ocps_trace.dir/generators.cpp.o"
  "CMakeFiles/ocps_trace.dir/generators.cpp.o.d"
  "CMakeFiles/ocps_trace.dir/interleave.cpp.o"
  "CMakeFiles/ocps_trace.dir/interleave.cpp.o.d"
  "CMakeFiles/ocps_trace.dir/trace.cpp.o"
  "CMakeFiles/ocps_trace.dir/trace.cpp.o.d"
  "CMakeFiles/ocps_trace.dir/trace_io.cpp.o"
  "CMakeFiles/ocps_trace.dir/trace_io.cpp.o.d"
  "libocps_trace.a"
  "libocps_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocps_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
