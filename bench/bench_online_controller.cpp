// Extension bench: the closed-loop online controller (SHARDS sampling +
// per-epoch DP + resizable partitions) vs the offline alternatives. Two
// scenarios:
//  (a) stationary co-run of four suite programs — the controller should
//      converge to the offline-oracle static DP partition;
//  (b) a mid-run behaviour shift (two programs swap working sets) — no
//      static partition can serve both halves, only the controller (and
//      free-for-all sharing) can follow.
#include <iostream>

#include "cachesim/corun.hpp"
#include "common.hpp"
#include "core/baselines.hpp"
#include "core/dp_partition.hpp"
#include "locality/footprint.hpp"
#include "runtime/controller.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "util/table.hpp"

using namespace ocps;
using namespace ocps::bench;

namespace {

struct Row {
  std::string scenario;
  double shared, equal, oracle, online;
  double sampled_fraction;
};

Row run_scenario(const std::string& name, const std::vector<Trace>& traces,
                 std::size_t capacity) {
  const std::size_t total = traces[0].length() * traces.size();
  std::vector<double> rates(traces.size(), 1.0);
  InterleavedTrace mix = interleave_proportional(traces, rates, total);

  CoRunResult shared = simulate_shared(mix, capacity);
  CoRunResult equal = simulate_partitioned(
      mix, equal_partition(traces.size(), capacity));

  // Offline oracle: whole-trace models -> static DP.
  CostMatrix cost(traces.size(), capacity);
  for (std::size_t p = 0; p < traces.size(); ++p) {
    ProgramModel m = make_program_model(
        "p" + std::to_string(p), 1.0, compute_footprint(traces[p]), capacity);
    double* row = cost.row(p);
    for (std::size_t c = 0; c <= capacity; ++c) row[c] = m.mrc.ratio(c);
  }
  DpResult oracle = optimize_partition(cost.view(), capacity);
  CoRunResult oracle_sim = simulate_partitioned(mix, oracle.alloc);

  ControllerConfig config;
  config.capacity = capacity;
  config.epoch_length = std::max<std::size_t>(20000, total / 24);
  config.sampling_rate = 0.1;
  ControllerResult online = run_online_controller(
      mix, traces.size(), config);

  return Row{name, shared.group_miss_ratio(), equal.group_miss_ratio(),
             oracle_sim.group_miss_ratio(), online.sim.group_miss_ratio(),
             online.sampled_fraction};
}

}  // namespace

int main() {
  const std::size_t capacity = 512;
  const std::size_t n_each = 240000;

  std::cout << "=== Extension: online repartitioning controller (C="
            << capacity << ", 10% SHARDS sampling) ===\n\n";
  TextTable t({"scenario", "free-for-all", "equal", "offline-oracle DP",
               "online controller", "profiling cost"});

  // (a) Stationary: four fixed-behaviour programs.
  {
    std::vector<Trace> traces = {
        make_zipf(n_each, 700, 0.9, 201),
        make_cyclic(n_each, 300),
        make_hot_cold(n_each, 40, 900, 0.8, 202),
        make_sawtooth(n_each, 60),
    };
    Row r = run_scenario("stationary quad", traces, capacity);
    t.add_row({r.scenario, TextTable::num(r.shared, 4),
               TextTable::num(r.equal, 4), TextTable::num(r.oracle, 4),
               TextTable::num(r.online, 4),
               TextTable::pct(r.sampled_fraction, 1)});
  }

  // (b) Behaviour shift: two programs swap hungry/small roles mid-run.
  {
    Trace a = make_cyclic(n_each / 2, 350);
    a.append(make_sawtooth(n_each / 2, 40).relabeled(5000));
    Trace b = make_sawtooth(n_each / 2, 40);
    b.append(make_cyclic(n_each / 2, 350).relabeled(6000));
    std::vector<Trace> traces = {a, b,
                                 make_zipf(n_each, 500, 1.0, 203),
                                 make_hot_cold(n_each, 30, 600, 0.85, 204)};
    Row r = run_scenario("mid-run swap", traces, capacity);
    t.add_row({r.scenario, TextTable::num(r.shared, 4),
               TextTable::num(r.equal, 4), TextTable::num(r.oracle, 4),
               TextTable::num(r.online, 4),
               TextTable::pct(r.sampled_fraction, 1)});
  }
  emit_table(t, "online_controller");

  std::cout << "\nExpected: stationary — the controller lands within a few "
               "percent of the offline oracle at ~10% profiling cost; "
               "mid-run swap — the static oracle (one partition for the "
               "whole run) degrades while the controller re-optimizes "
               "after the shift and beats it.\n";
  return 0;
}
