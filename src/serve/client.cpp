#include "serve/client.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <utility>

#include "serve/socket_util.hpp"
#include "util/rng.hpp"

namespace ocps::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a ^ (b * 0x9E3779B97F4A7C15ULL);
  return splitmix64(state);
}

}  // namespace

// ---------------------------------------------------------------------------
// Retry policy (pure functions; the Client method wires in the socket).

std::chrono::milliseconds backoff_delay(const RetryPolicy& policy,
                                        int attempt, std::uint64_t salt) {
  if (attempt <= 0) return std::chrono::milliseconds(0);
  // Ceiling: base * 2^(attempt-1), clamped to max_delay without
  // overflowing (attempt is caller-bounded but shifts are not).
  long long ceiling = policy.base_delay.count();
  for (int i = 1; i < attempt && ceiling < policy.max_delay.count(); ++i)
    ceiling *= 2;
  ceiling = std::min<long long>(ceiling, policy.max_delay.count());
  if (ceiling <= 0) return std::chrono::milliseconds(0);
  // Full jitter: uniform in [0, ceiling], deterministic per
  // (seed, attempt, salt) so tests can assert exact schedules.
  std::uint64_t h =
      mix(mix(policy.seed, static_cast<std::uint64_t>(attempt)), salt);
  return std::chrono::milliseconds(
      static_cast<long long>(h % (static_cast<std::uint64_t>(ceiling) + 1)));
}

bool retryable_op(Op op) { return op != Op::kReload; }

bool retryable_code(int code) {
  return code == kCodeQueueFull || code == kCodeShuttingDown ||
         code == kCodeDeadlineExceeded;
}

Result<Response> run_with_retry(
    Op op, std::int64_t id, const RetryPolicy& policy,
    std::chrono::milliseconds budget,
    const std::function<Result<Response>(int attempt)>& attempt_fn,
    const std::function<void(std::chrono::milliseconds)>& sleep_fn,
    const std::function<Clock::time_point()>& now_fn,
    RetryStats* stats) {
  const int attempts = std::max(1, policy.max_attempts);
  const bool bounded = budget.count() > 0;
  const Clock::time_point deadline = now_fn() + budget;

  auto budget_exhausted = [&]() -> Result<Response> {
    Response r;
    r.id = id;
    r.ok = false;
    r.code = kCodeDeadlineExceeded;
    r.error = "retry budget exhausted";
    return Ok(std::move(r));
  };

  Result<Response> last = Err(ErrorCode::kIoError, "no attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (bounded && now_fn() >= deadline) return budget_exhausted();
    if (stats) ++stats->attempts;
    last = attempt_fn(attempt);
    if (last.ok() && last.value().ok) return last;
    // Definitive failures are relayed unchanged: a 400/404/422/500 will
    // not improve on a second try, and `reload` must never get one —
    // a lost response may mean the swap already happened.
    if (!retryable_op(op)) return last;
    if (last.ok() && !retryable_code(last.value().code)) return last;
    if (attempt + 1 >= attempts) break;
    std::chrono::milliseconds delay = backoff_delay(
        policy, attempt + 1, static_cast<std::uint64_t>(id));
    if (bounded) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now_fn());
      if (left.count() <= 0) return budget_exhausted();
      delay = std::min(delay, left);
    }
    if (delay.count() > 0) {
      sleep_fn(delay);
      if (stats) stats->backoff_total += delay;
    }
  }
  return last;
}

// ---------------------------------------------------------------------------
// The blocking client.

Result<Client> Client::connect(const std::string& endpoint,
                               std::chrono::milliseconds connect_timeout) {
  Result<Endpoint> ep = parse_endpoint(endpoint);
  if (!ep.ok()) return ep.error();
  Result<int> fd = connect_endpoint(ep.value(), connect_timeout);
  if (!fd.ok()) return fd.error();
  return Ok(Client(fd.value(), endpoint));
}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      endpoint_(std::move(other.endpoint_)),
      buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    endpoint_ = std::move(other.endpoint_);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Result<Response> Client::call(const std::string& request_line,
                              std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Err(ErrorCode::kIoError, "client is not connected");

  // The fd is nonblocking (connect_endpoint leaves it that way):
  // send_all retries EINTR, polls out EAGAIN, and continues short
  // writes — all bounded by the call timeout.
  std::string line = request_line;
  line.push_back('\n');
  if (!send_all(fd_, line.data(), line.size(), timeout))
    return Err(ErrorCode::kIoError, "send(): connection lost or timed out");

  const auto deadline = Clock::now() + timeout;
  for (;;) {
    std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string response = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      return parse_response(response);
    }
    auto now = Clock::now();
    if (now >= deadline)
      return Err(ErrorCode::kIoError, "timed out waiting for response");
    auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(std::max<long long>(
                                    1, wait.count())));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Err(ErrorCode::kIoError,
                 std::string("poll(): ") + std::strerror(errno));
    }
    if (ready == 0) continue;  // loop re-checks the deadline
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0)
      return Err(ErrorCode::kIoError, "daemon closed the connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Err(ErrorCode::kIoError,
                 std::string("recv(): ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<Response> Client::call(const json::Value& request,
                              std::chrono::milliseconds timeout) {
  return call(request.dump(), timeout);
}

Result<Response> Client::call_with_retry(const Request& req,
                                         const RetryPolicy& policy,
                                         RetryStats* stats) {
  const std::string line = encode_request(req);
  const std::chrono::milliseconds budget(
      static_cast<long long>(req.deadline_ms));
  const Clock::time_point deadline = Clock::now() + budget;

  auto attempt = [&](int) -> Result<Response> {
    // Per-attempt timeout: whatever is left of the budget, or a generous
    // default when the request carries no deadline.
    std::chrono::milliseconds per_call(30000);
    if (budget.count() > 0) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      per_call = std::max(std::chrono::milliseconds(1), left);
    }
    if (fd_ < 0) {
      if (endpoint_.empty())
        return Err(ErrorCode::kIoError, "client is not connected");
      Result<Client> fresh = Client::connect(endpoint_, per_call);
      if (!fresh.ok()) return fresh.error();
      *this = std::move(fresh.value());
    }
    Result<Response> r = call(line, per_call);
    // A transport failure poisons the stream (a response could still be
    // in flight and would mis-pair with the next request): reconnect on
    // the next attempt instead.
    if (!r.ok()) disconnect();
    return r;
  };

  return run_with_retry(
      req.op, req.id, policy, budget, attempt,
      [](std::chrono::milliseconds d) { std::this_thread::sleep_for(d); },
      [] { return Clock::now(); }, stats);
}

}  // namespace ocps::serve
