// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (trace generators, stochastic
// interleaving) is seeded explicitly so that the whole evaluation is
// reproducible bit-for-bit. We use xoshiro256** seeded via splitmix64 —
// fast, high quality, and independent of the standard library's
// implementation-defined engines.
#pragma once

#include <cstdint>

namespace ocps {

/// splitmix64 step; used for seeding and cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace ocps
