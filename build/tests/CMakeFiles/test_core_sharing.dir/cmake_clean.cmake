file(REMOVE_RECURSE
  "CMakeFiles/test_core_sharing.dir/test_core_sharing.cpp.o"
  "CMakeFiles/test_core_sharing.dir/test_core_sharing.cpp.o.d"
  "test_core_sharing"
  "test_core_sharing.pdb"
  "test_core_sharing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
