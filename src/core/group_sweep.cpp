#include "core/group_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/baselines.hpp"
#include "core/batch_engine.hpp"
#include "core/dp_partition.hpp"
#include "core/sttw.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace ocps {

const char* method_name(Method m) {
  switch (m) {
    case Method::kEqual: return "Equal";
    case Method::kNatural: return "Natural";
    case Method::kEqualBaseline: return "Equal baseline";
    case Method::kNaturalBaseline: return "Natural baseline";
    case Method::kOptimal: return "Optimal";
    case Method::kSttw: return "STTW";
  }
  return "?";
}

CostMatrix precompute_unit_cost_matrix(
    const std::vector<ProgramModel>& programs, std::size_t capacity) {
  CostMatrix cost(programs.size(), capacity);
  for (std::size_t i = 0; i < programs.size(); ++i) {
    double* row = cost.row(i);
    for (std::size_t c = 0; c <= capacity; ++c)
      row[c] = programs[i].access_rate * programs[i].mrc.ratio(c);
  }
  return cost;
}

namespace {

// Fills a MethodOutcome from an integer allocation using the solo MRCs.
MethodOutcome outcome_from_alloc(const CoRunGroup& group,
                                 const std::vector<std::size_t>& alloc) {
  MethodOutcome out;
  out.alloc.assign(alloc.begin(), alloc.end());
  out.per_program_mr.resize(group.size());
  for (std::size_t i = 0; i < group.size(); ++i)
    out.per_program_mr[i] = group[i].mrc.ratio(alloc[i]);
  out.group_mr = group_miss_ratio(group, out.per_program_mr);
  return out;
}

// Per-thread sweep state: the prefix-sharing DP solvers, the
// natural-baseline scratch, and every reusable buffer, so steady-state
// group evaluation performs no DP-table allocation. Destroyed at loop
// end; the destructor flushes the layer-sharing counters to obs.
struct BatchContext {
  const std::vector<ProgramModel>& programs;
  const CostMatrix& unit_costs;
  std::size_t capacity;

  PrefixDpSolver optimal;
  PrefixDpSolver equal_baseline;
  DpScratch nb_scratch;
  DpResult dp_buf;
  std::vector<const double*> row_ptrs;
  std::vector<std::size_t> lo_buf;
  // Equal-baseline lower bounds depend only on (program, position) for a
  // given group size, so the whole table is computed once per size seen.
  // Keyed by group size; value is a flat programs × size table.
  std::map<std::size_t, std::vector<std::size_t>> equal_lo;

  BatchContext(const std::vector<ProgramModel>& programs_,
               const CostMatrix& unit_costs_, std::size_t capacity_)
      : programs(programs_), unit_costs(unit_costs_), capacity(capacity_) {
    optimal.configure(unit_costs.view(), capacity, DpObjective::kSumCost);
    equal_baseline.configure(unit_costs.view(), capacity,
                             DpObjective::kSumCost);
  }

  ~BatchContext() {
    std::uint64_t computed = optimal.stats().layers_computed +
                             equal_baseline.stats().layers_computed;
    std::uint64_t reused =
        optimal.stats().layers_reused + equal_baseline.stats().layers_reused;
    if (computed > 0) OCPS_OBS_COUNT("sweep.dp_layers_computed", computed);
    if (reused > 0) OCPS_OBS_COUNT("sweep.dp_layers_reused", reused);
  }

  // Lower bounds implied by the equal-partition baseline, position by
  // position. Same arithmetic as baseline_min_allocs: the equal share of
  // position j depends only on the group size, so the bound is a pure
  // (program, position) function — shareable across every group of that
  // size, unlike the natural baseline whose shares depend on the whole
  // group.
  const std::vector<std::size_t>& equal_lo_table(std::size_t group_size) {
    auto it = equal_lo.find(group_size);
    if (it != equal_lo.end()) return it->second;
    auto shares = equal_partition(group_size, capacity);
    std::vector<std::size_t> table(programs.size() * group_size);
    for (std::size_t m = 0; m < programs.size(); ++m) {
      const auto& mrc = programs[m].mrc;
      for (std::size_t j = 0; j < group_size; ++j) {
        double share = static_cast<double>(shares[j]);
        double baseline_mr = mrc.ratio_at(share);
        std::size_t min_alloc = mrc.min_size_for_ratio(baseline_mr, 1e-12);
        std::size_t ceil_base =
            static_cast<std::size_t>(std::ceil(share - 1e-9));
        table[m * group_size + j] = std::min(min_alloc, ceil_base);
      }
    }
    return equal_lo.emplace(group_size, std::move(table)).first->second;
  }
};

// The six-method evaluation, batched: identical computations (and
// results) to the standalone evaluate_group, but Optimal and
// Equal-baseline go through the prefix-sharing solvers and every view is
// gathered from the flat table instead of copied.
GroupEvaluation evaluate_group_batched(
    BatchContext& ctx, const std::vector<std::uint32_t>& members) {
  OCPS_CHECK(!members.empty(), "empty group");
  obs::ScopedSpan span("sweep.evaluate_group", "core");
  span.set_arg("members", members.size());
  const std::size_t capacity = ctx.capacity;
  const std::size_t p = members.size();

  std::vector<const ProgramModel*> models;
  models.reserve(p);
  for (std::uint32_t idx : members) {
    OCPS_CHECK(idx < ctx.programs.size(),
               "program index out of range: " << idx);
    models.push_back(&ctx.programs[idx]);
  }
  CoRunGroup group(std::move(models));
  CostMatrixView cost =
      ctx.unit_costs.gather(members.data(), p, ctx.row_ptrs);

  GroupEvaluation eval;
  eval.members = members;

  // Equal.
  auto equal = equal_partition(group.size(), capacity);
  eval.methods[static_cast<std::size_t>(Method::kEqual)] =
      outcome_from_alloc(group, equal);

  // Natural (free-for-all sharing): fractional occupancies.
  {
    MethodOutcome out;
    out.alloc = natural_partition(group, static_cast<double>(capacity));
    out.per_program_mr =
        predict_shared_miss_ratios(group, static_cast<double>(capacity));
    out.group_mr = group_miss_ratio(group, out.per_program_mr);
    eval.methods[static_cast<std::size_t>(Method::kNatural)] = std::move(out);
  }

  // Equal baseline: lower bounds from the per-(program, position) table,
  // prefix-shared DP.
  {
    const auto& lo_table = ctx.equal_lo_table(p);
    ctx.lo_buf.resize(p);
    for (std::size_t j = 0; j < p; ++j)
      ctx.lo_buf[j] = lo_table[members[j] * p + j];
    ctx.equal_baseline.solve(members.data(), p, ctx.lo_buf.data(),
                             ctx.dp_buf);
    OCPS_CHECK(ctx.dp_buf.feasible,
               "baseline-constrained DP infeasible; baseline sums beyond C?");
    eval.methods[static_cast<std::size_t>(Method::kEqualBaseline)] =
        outcome_from_alloc(group, ctx.dp_buf.alloc);
  }

  // Natural baseline: bounds depend on the whole group, so no prefix
  // sharing — but the DP table comes from the per-thread scratch.
  {
    DpResult dp =
        optimize_natural_baseline(group, cost, capacity, &ctx.nb_scratch);
    eval.methods[static_cast<std::size_t>(Method::kNaturalBaseline)] =
        outcome_from_alloc(group, dp.alloc);
  }

  // Optimal (unconstrained DP), prefix-shared.
  {
    ctx.optimal.solve(members.data(), p, nullptr, ctx.dp_buf);
    OCPS_CHECK(ctx.dp_buf.feasible, "unconstrained DP must be feasible");
    eval.methods[static_cast<std::size_t>(Method::kOptimal)] =
        outcome_from_alloc(group, ctx.dp_buf.alloc);
  }

  // STTW.
  {
    SttwResult sttw = sttw_partition(cost, capacity);
    eval.methods[static_cast<std::size_t>(Method::kSttw)] =
        outcome_from_alloc(group, sttw.alloc);
  }

  OCPS_OBS_COUNT("sweep.groups_evaluated", 1);
  OCPS_OBS_HIST("sweep.group_eval_ns", span.elapsed_ns());
  return eval;
}

}  // namespace

GroupEvaluation evaluate_group(const std::vector<ProgramModel>& programs,
                               CostMatrixView unit_costs,
                               const std::vector<std::uint32_t>& members,
                               const SweepOptions& options) {
  OCPS_CHECK(!members.empty(), "empty group");
  obs::ScopedSpan span("sweep.evaluate_group", "core");
  span.set_arg("members", members.size());
  const std::size_t capacity = options.capacity;
  OCPS_CHECK(unit_costs.cols() >= capacity + 1,
             "unit cost table shorter than capacity+1");

  std::vector<const ProgramModel*> models;
  std::vector<const double*> row_ptrs;
  models.reserve(members.size());
  row_ptrs.reserve(members.size());
  for (std::uint32_t idx : members) {
    OCPS_CHECK(idx < programs.size(), "program index out of range: " << idx);
    OCPS_CHECK(idx < unit_costs.rows(),
               "unit cost table has no row " << idx);
    models.push_back(&programs[idx]);
    row_ptrs.push_back(unit_costs.row(idx));
  }
  CoRunGroup group(std::move(models));
  CostMatrixView cost(row_ptrs.data(), members.size(), unit_costs.cols());

  GroupEvaluation eval;
  eval.members = members;

  // Equal.
  auto equal = equal_partition(group.size(), capacity);
  eval.methods[static_cast<std::size_t>(Method::kEqual)] =
      outcome_from_alloc(group, equal);

  // Natural (free-for-all sharing): fractional occupancies.
  {
    MethodOutcome out;
    out.alloc = natural_partition(group, static_cast<double>(capacity));
    out.per_program_mr =
        predict_shared_miss_ratios(group, static_cast<double>(capacity));
    out.group_mr = group_miss_ratio(group, out.per_program_mr);
    eval.methods[static_cast<std::size_t>(Method::kNatural)] = std::move(out);
  }

  // Equal baseline.
  {
    DpResult dp = optimize_equal_baseline(group, cost, capacity);
    eval.methods[static_cast<std::size_t>(Method::kEqualBaseline)] =
        outcome_from_alloc(group, dp.alloc);
  }

  // Natural baseline.
  {
    DpResult dp = optimize_natural_baseline(group, cost, capacity);
    eval.methods[static_cast<std::size_t>(Method::kNaturalBaseline)] =
        outcome_from_alloc(group, dp.alloc);
  }

  // Optimal (unconstrained DP).
  {
    DpResult dp = optimize_partition(cost, capacity);
    OCPS_CHECK(dp.feasible, "unconstrained DP must be feasible");
    eval.methods[static_cast<std::size_t>(Method::kOptimal)] =
        outcome_from_alloc(group, dp.alloc);
  }

  // STTW.
  {
    SttwResult sttw = sttw_partition(cost, capacity);
    eval.methods[static_cast<std::size_t>(Method::kSttw)] =
        outcome_from_alloc(group, sttw.alloc);
  }

  OCPS_OBS_COUNT("sweep.groups_evaluated", 1);
  OCPS_OBS_HIST("sweep.group_eval_ns", span.elapsed_ns());
  return eval;
}

std::vector<GroupEvaluation> sweep_groups(
    const std::vector<ProgramModel>& programs,
    const std::vector<std::vector<std::uint32_t>>& groups,
    const SweepOptions& options) {
  obs::ScopedSpan span("sweep.sweep_groups", "core");
  span.set_arg("groups", groups.size());
  CostMatrix unit_costs =
      precompute_unit_cost_matrix(programs, options.capacity);
  const bool has_deadline =
      options.deadline != std::chrono::steady_clock::time_point::max();
  std::vector<GroupEvaluation> out(groups.size());
  parallel_for_with(
      0, groups.size(),
      [&] { return BatchContext(programs, unit_costs, options.capacity); },
      [&](BatchContext& ctx, std::size_t g) {
        if (has_deadline &&
            std::chrono::steady_clock::now() > options.deadline) {
          OCPS_OBS_COUNT("sweep.deadline_exceeded", 1);
          throw SweepDeadlineExceeded("sweep deadline exceeded with group " +
                                      std::to_string(g) + " of " +
                                      std::to_string(groups.size()) +
                                      " pending");
        }
        out[g] = evaluate_group_batched(ctx, groups[g]);
      },
      options.threads);
  return out;
}

ImprovementStats improvement_over(const std::vector<GroupEvaluation>& sweep,
                                  Method baseline) {
  std::vector<double> improvements;
  improvements.reserve(sweep.size());
  for (const auto& g : sweep) {
    double opt = g.of(Method::kOptimal).group_mr;
    double base = g.of(baseline).group_mr;
    // Degenerate all-hit groups contribute zero improvement.
    double imp = (opt > 0.0) ? (base - opt) / opt : 0.0;
    improvements.push_back(imp);
  }
  Summary s = summarize(improvements);
  ImprovementStats stats;
  stats.max = s.max;
  stats.avg = s.mean;
  stats.median = s.median;
  stats.frac_ge_10 = fraction_at_least(improvements, 0.10);
  stats.frac_ge_20 = fraction_at_least(improvements, 0.20);
  return stats;
}

}  // namespace ocps
