// The per-program model consumed by the composition theory and the
// optimizers: a name, an access rate, the average footprint fp(w), and the
// solo miss-ratio curve mr(c).
//
// This mirrors exactly what the paper's pipeline profiles per program
// (§VII-A): the footprint file plus the derived MRC. Everything downstream
// — natural partitions, DP, STTW, baselines, the group sweep — consumes
// ProgramModel and never the raw trace, which is what makes the
// 1820-group evaluation cheap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "locality/footprint.hpp"
#include "locality/footprint_io.hpp"
#include "locality/mrc.hpp"
#include "util/curve.hpp"

namespace ocps {

/// Profiled model of a single program.
struct ProgramModel {
  std::string name;
  double access_rate = 1.0;        ///< accesses per unit time (§IV)
  std::uint64_t trace_length = 0;  ///< n
  std::uint64_t distinct = 0;      ///< m
  PiecewiseLinear footprint;       ///< fp(w), w in accesses
  MissRatioCurve mrc;              ///< solo miss ratio over cache sizes

  /// fp evaluated at (possibly fractional) window length w.
  double fp(double w) const { return footprint(w); }

  /// Smallest window with footprint >= target (fill time, Eq. 6).
  double fp_inverse(double target) const { return footprint.inverse(target); }
};

/// Builds a model from a profiled footprint curve: the MRC is derived via
/// HOTL (Eq. 10) for cache sizes 0..capacity.
ProgramModel make_program_model(const std::string& name, double access_rate,
                                const FootprintCurve& fp,
                                std::size_t capacity,
                                std::size_t footprint_knots = 4096);

/// Builds a model from a footprint file (the paper's on-disk form). The
/// MRC is re-derived from the stored footprint knots.
ProgramModel model_from_footprint_file(const FootprintFile& file,
                                       std::size_t capacity);

}  // namespace ocps
