file(REMOVE_RECURSE
  "libocps_locality.a"
)
