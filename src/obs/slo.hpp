// Declarative SLOs evaluated as multi-window burn rates.
//
// An objective says "99% of requests finish under X ms" (latency) or
// "99.9% of requests succeed" (availability). The complement of the
// target is the error budget; the burn rate is how fast the service is
// spending it — observed bad fraction divided by budget, so burn 1.0
// means "exactly on budget" and burn 10 means "the monthly budget is
// gone in three days". Following the standard multi-window practice, a
// breach requires BOTH a short window (5 m, fast detection) and a long
// window (1 h, de-flapping) to burn above threshold; breach edges are
// appended to a bounded alert log.
//
// This module is deliberately independent of the obs registry and clock:
// every method takes `now_ns` explicitly (deterministic tests drive a
// synthetic clock, production callers pass steady_now_ns()), and nothing
// here is compiled out under OCPS_OBS_DISABLED — the serve daemon's
// `slo` op answers even in a metrics-free build, exactly like `slowlog`.
// Exporting burn rates as serve.slo.* gauges is the caller's job and is
// what the obs kill switches gate.
//
// Thread safety: all methods lock an internal mutex; record() is O(1)
// and status() is O(window seconds), called at scrape rate.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ocps::obs {

/// Objectives and alerting knobs. A target of 0 disables that objective.
struct SloConfig {
  double p99_ms = 0.0;  ///< latency objective: p99 under this many ms
  double availability = 0.0;  ///< success-rate objective, e.g. 0.999
  /// Both windows must burn at or above this rate to count as a breach.
  /// 1.0 = burning the error budget exactly as fast as it accrues.
  double burn_threshold = 1.0;
  std::size_t alert_capacity = 64;  ///< bounded alert log (oldest evicted)
};

/// Deterministic multi-window burn-rate tracker (see file comment).
class SloTracker {
 public:
  static constexpr unsigned kShortWindowSeconds = 300;   // 5 m
  static constexpr unsigned kLongWindowSeconds = 3600;   // 1 h

  explicit SloTracker(SloConfig config = {});

  /// True when at least one objective is set.
  bool configured() const noexcept;

  /// Feed one finished request: its end-to-end latency and whether it
  /// succeeded (ok == the response the client saw was a success).
  void record(double latency_ms, bool ok, std::uint64_t now_ns);

  /// One objective's evaluation at a point in time.
  struct Objective {
    std::string name;     ///< "latency" or "availability"
    double target = 0.0;  ///< p99_ms or availability as configured
    double budget = 0.0;  ///< allowed bad fraction (0.01 for a p99 SLO)
    double burn_short = 0.0;  ///< 5 m burn rate (0 when window empty)
    double burn_long = 0.0;   ///< 1 h burn rate
    bool breaching = false;
  };

  /// One appended breach-edge record.
  struct Alert {
    std::uint64_t seq = 0;  ///< monotonically increasing, never reused
    std::uint64_t at_ns = 0;
    std::string objective;
    double burn_short = 0.0;
    double burn_long = 0.0;
  };

  struct Status {
    std::vector<Objective> objectives;  ///< only configured ones
    std::vector<Alert> alerts;          ///< bounded, oldest first
    std::uint64_t alerts_total = 0;     ///< edges ever seen (incl evicted)
  };

  /// Evaluates both windows at `now_ns` and latches breach edges into
  /// the alert log (edge-triggered: one alert per transition into
  /// breach, re-armed when the objective recovers).
  Status status(std::uint64_t now_ns);

  /// Steady-clock nanoseconds for production callers. Lives here (not
  /// obs::now_ns) so the tracker works in OCPS_OBS_DISABLED builds.
  static std::uint64_t steady_now_ns();

 private:
  struct Slot {
    std::uint64_t second;
    std::uint64_t total;
    std::uint64_t fast;  ///< latency under target (counted only if set)
    std::uint64_t good;  ///< ok == true
  };

  struct WindowCounts {
    std::uint64_t total = 0;
    std::uint64_t fast = 0;
    std::uint64_t good = 0;
  };
  WindowCounts window_counts(std::uint64_t sec, unsigned window) const;

  SloConfig config_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;  ///< one per second, kLongWindowSeconds + 1
  std::vector<Alert> alerts_;
  std::uint64_t alerts_total_ = 0;
  bool latency_breaching_ = false;
  bool availability_breaching_ = false;
};

}  // namespace ocps::obs
