// Minimal JSON value type, parser, and writer.
//
// The serve daemon speaks line-delimited JSON over a Unix socket
// (src/serve), which makes malformed input expected runtime weather, not
// a caller bug — so parsing returns Result<Value> (util/result.hpp)
// instead of throwing, and the parser enforces a nesting-depth limit so a
// hostile request cannot overflow the recursive descent. The writer is
// the inverse: dump() emits compact RFC 8259 JSON with full string
// escaping, and numbers round-trip through the shortest representation
// that restores the double exactly.
//
// Deliberately small: no streaming, no comments, no NaN/Infinity
// extensions (non-finite numbers serialize as null, matching
// obs::write_metrics_json). Objects preserve insertion order and use
// linear lookup — protocol messages have a handful of keys.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.hpp"

namespace ocps::json {

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered key/value pairs; duplicate keys keep the first.
using Object = std::vector<std::pair<std::string, Value>>;

/// One JSON value (tagged union over the seven RFC 8259 kinds, with all
/// numbers held as double).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  Value(double d) : type_(Type::kNumber), number_(d) {}          // NOLINT
  Value(int i) : type_(Type::kNumber), number_(i) {}             // NOLINT
  Value(std::int64_t i)                                          // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Value(std::size_t u)                                           // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {}     // NOLINT
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; OCPS_CHECK on kind mismatch (a mismatch is a caller
  /// bug — protocol code must test the kind or use the get_* helpers).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Tolerant object getters: fallback when the key is absent or the
  /// member has the wrong kind.
  double get_number(std::string_view key, double fallback) const;
  std::string get_string(std::string_view key,
                         const std::string& fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

  /// Sets a member (object value only; OCPS_CHECKs the kind): replaces
  /// an existing member with the same key in place, appends otherwise —
  /// an object never carries duplicate keys. `set` on a
  /// default-constructed null turns it into an object first.
  void set(std::string key, Value v);

  /// Compact serialization. Non-finite numbers emit null.
  std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Maximum array/object nesting the parser accepts.
inline constexpr std::size_t kMaxParseDepth = 64;

/// Parses exactly one JSON document (leading/trailing whitespace allowed;
/// anything else after the value is an error). Errors come back as
/// kCorruptData with a byte offset in the message.
Result<Value> parse(std::string_view text);

/// Escapes `s` as a JSON string literal, including the quotes.
std::string quote(std::string_view s);

}  // namespace ocps::json
