// Elastic cache utility allocation (RECU — Ye, Brock, Ding, Jin, NPC'15,
// the paper's citation [18] and its stated motivation for supporting
// "optimization with constraints").
//
// Each program declares a *reserved* minimum (its QoS floor, expressed as
// a miss-ratio ceiling or directly in units) and the rest of the cache is
// *elastic*: the optimizer hands it out for group throughput. This is the
// DP with per-program lower bounds, plus the policy layer that derives
// sound bounds and reports how much elasticity was available.
#pragma once

#include <optional>
#include <vector>

#include "core/composition.hpp"
#include "core/dp_partition.hpp"

namespace ocps {

/// Per-program elasticity contract.
struct ElasticDemand {
  /// Miss-ratio ceiling the program must not exceed (QoS guarantee);
  /// unset means no guarantee.
  std::optional<double> max_miss_ratio;
  /// Hard minimum units, independent of the miss-ratio ceiling.
  std::size_t min_units = 0;
};

/// Outcome of an elastic allocation.
struct ElasticResult {
  bool feasible = false;
  std::vector<std::size_t> alloc;
  std::vector<std::size_t> reserved;  ///< per-program bound actually used
  std::size_t elastic_units = 0;      ///< capacity - Σ reserved
  double group_mr = 0.0;
};

/// Computes the reserved floor per program (max of min_units and the
/// units needed to meet the miss-ratio ceiling), then optimizes the group
/// miss ratio over the elastic remainder. Infeasible when reserves exceed
/// the capacity.
ElasticResult optimize_elastic(const CoRunGroup& group, CostMatrixView cost,
                               std::size_t capacity,
                               const std::vector<ElasticDemand>& demands);

}  // namespace ocps
