// Co-run cache simulation: shared, partitioned, and partition-sharing.
//
// These simulators consume an interleaved multi-program trace and attribute
// hits/misses to the owning program. The shared simulator additionally
// samples per-program cache occupancy, which is how the Natural Cache
// Partition prediction (§V-A) is validated: in steady state the measured
// mean occupancies should match the stretched-footprint prediction.
//
// A partition-sharing scheme (§II) assigns each program to a group and each
// group to a private LRU partition; partitioning-only (singleton groups)
// and free-for-all sharing (one group) are the two edge cases.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/lru.hpp"
#include "trace/interleave.hpp"

namespace ocps {

/// Per-program outcome of a co-run simulation.
struct CoRunResult {
  std::vector<std::uint64_t> accesses;      ///< per program
  std::vector<std::uint64_t> misses;        ///< per program
  std::vector<double> mean_occupancy;       ///< blocks; empty if not sampled

  double miss_ratio(std::size_t program) const;
  /// Group miss ratio: total misses / total accesses (the paper's group
  /// objective).
  double group_miss_ratio() const;
  std::uint64_t total_accesses() const;
  std::uint64_t total_misses() const;
};

/// Options shared by the co-run simulators.
struct CoRunOptions {
  /// Accesses excluded from statistics at the start (cache warm-up).
  std::size_t warmup = 0;
  /// Occupancy is sampled every `occupancy_period` accesses (0 disables).
  std::size_t occupancy_period = 0;
};

/// All programs share one LRU cache of `capacity` blocks.
CoRunResult simulate_shared(const InterleavedTrace& trace,
                            std::size_t capacity,
                            const CoRunOptions& options = {});

/// Program i runs in a private partition of partition_sizes[i] blocks.
CoRunResult simulate_partitioned(const InterleavedTrace& trace,
                                 const std::vector<std::size_t>& partition_sizes,
                                 const CoRunOptions& options = {});

/// General partition-sharing: program p belongs to group group_of[p]; group
/// g is an LRU partition of group_sizes[g] blocks.
CoRunResult simulate_partition_sharing(
    const InterleavedTrace& trace, const std::vector<std::uint32_t>& group_of,
    const std::vector<std::size_t>& group_sizes,
    const CoRunOptions& options = {});

}  // namespace ocps
