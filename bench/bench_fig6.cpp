// Fig. 6: group miss ratio of the five partitioning methods (Natural,
// Equal, Natural baseline, Equal baseline, Optimal) over all 4-program
// co-run groups, sorted by the Optimal miss ratio. The full series goes to
// CSV; stdout shows a decimated view plus distribution summaries.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "common.hpp"
#include "util/stats.hpp"

using namespace ocps;
using namespace ocps::bench;

int main() {
  Evaluation eval = load_evaluation();

  // Sort groups by Optimal group miss ratio (the paper's x-axis).
  std::vector<std::size_t> order(eval.sweep.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return eval.sweep[a].of(Method::kOptimal).group_mr <
           eval.sweep[b].of(Method::kOptimal).group_mr;
  });

  const std::vector<Method> series = {Method::kNatural, Method::kEqual,
                                      Method::kNaturalBaseline,
                                      Method::kEqualBaseline,
                                      Method::kOptimal};

  std::cout << "=== Fig. 6: group miss ratio of five partitioning methods "
               "(sorted by Optimal) ===\n\n";
  TextTable t({"rank", "group", "Natural", "Equal", "NaturalBase",
               "EqualBase", "Optimal"});
  std::size_t step = std::max<std::size_t>(1, order.size() / 40);
  for (std::size_t r = 0; r < order.size();
       r += (r + step < order.size() ? step : 1)) {
    const auto& g = eval.sweep[order[r]];
    std::string members;
    for (auto m : g.members) {
      if (!members.empty()) members += "+";
      members += eval.suite.models[m].name;
    }
    std::vector<std::string> row = {std::to_string(r), members};
    for (Method m : series)
      row.push_back(TextTable::num(g.of(m).group_mr, 5));
    t.add_row(std::move(row));
    if (r + 1 == order.size()) break;
  }
  emit_table(t, "fig6_decimated");

  // Full-series CSV for re-plotting.
  TextTable full({"rank", "Natural", "Equal", "NaturalBase", "EqualBase",
                  "Optimal"});
  for (std::size_t r = 0; r < order.size(); ++r) {
    const auto& g = eval.sweep[order[r]];
    std::vector<std::string> row = {std::to_string(r)};
    for (Method m : series)
      row.push_back(TextTable::num(g.of(m).group_mr, 6));
    full.add_row(std::move(row));
  }
  emit_csv_only(full, "fig6_full");

  std::cout << "\nDistribution of group miss ratios per method:\n";
  TextTable summary({"method", "min", "median", "mean", "max"});
  for (Method m : series) {
    std::vector<double> mrs;
    for (const auto& g : eval.sweep) mrs.push_back(g.of(m).group_mr);
    Summary s = summarize(std::move(mrs));
    summary.add_row({method_name(m), TextTable::num(s.min, 5),
                     TextTable::num(s.median, 5), TextTable::num(s.mean, 5),
                     TextTable::num(s.max, 5)});
  }
  emit_table(summary, "fig6_summary");

  std::cout << "\nShape to reproduce (paper Fig. 6): Equal is the top "
               "(worst) curve over most of the range; Natural and Natural "
               "baseline nearly coincide; Equal baseline sits between "
               "Equal and Optimal; Optimal is the lower envelope.\n";
  return 0;
}
