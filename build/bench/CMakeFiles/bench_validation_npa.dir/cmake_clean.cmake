file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_npa.dir/bench_validation_npa.cpp.o"
  "CMakeFiles/bench_validation_npa.dir/bench_validation_npa.cpp.o.d"
  "bench_validation_npa"
  "bench_validation_npa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_npa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
