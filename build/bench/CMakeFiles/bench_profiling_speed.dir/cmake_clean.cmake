file(REMOVE_RECURSE
  "CMakeFiles/bench_profiling_speed.dir/bench_profiling_speed.cpp.o"
  "CMakeFiles/bench_profiling_speed.dir/bench_profiling_speed.cpp.o.d"
  "bench_profiling_speed"
  "bench_profiling_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profiling_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
