# Empty dependencies file for ocps_cachesim.
# This may be replaced when dependencies are built.
