# Empty dependencies file for ocps_sched.
# This may be replaced when dependencies are built.
