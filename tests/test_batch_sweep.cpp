// Golden equivalence for the batched evaluation engine: the prefix-shared
// batched sweep must be bit-for-bit identical to independent per-group
// evaluation, for all six methods, across every C(16,4) = 1820 group of
// the Table I-style synthetic suite (at reduced capacity so the test
// stays fast).
#include <gtest/gtest.h>

#include <cstring>

#include "combinatorics/enumerate.hpp"
#include "core/batch_engine.hpp"
#include "core/group_sweep.hpp"
#include "trace/generators.hpp"

namespace ocps {
namespace {

std::vector<ProgramModel> make_suite(std::size_t capacity) {
  std::vector<ProgramModel> models;
  const std::size_t n = 30000;
  for (int i = 0; i < 16; ++i) {
    Trace t;
    std::string name = "p" + std::to_string(i);
    switch (i % 4) {
      case 0: t = make_zipf(n, 40 + 11 * i, 0.8 + 0.05 * i, 100 + i); break;
      case 1: t = make_cyclic(n, 24 + 9 * i); break;
      case 2: t = make_hot_cold(n, 6 + i, 60 + 13 * i, 0.8, 200 + i); break;
      default: t = make_sawtooth(n, 30 + 7 * i); break;
    }
    models.push_back(make_program_model(name, 0.5 + 0.1 * i,
                                        compute_footprint(t), capacity + 16));
  }
  return models;
}

// Bitwise equality: batched evaluation must not perturb even the last ulp
// (NaNs would also compare equal, unlike ==).
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool same_vector_bits(const std::vector<double>& a,
                      const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!same_bits(a[i], b[i])) return false;
  return true;
}

void expect_identical(const GroupEvaluation& a, const GroupEvaluation& b) {
  ASSERT_EQ(a.members, b.members);
  for (std::size_t m = 0; m < kNumMethods; ++m) {
    const MethodOutcome& x = a.methods[m];
    const MethodOutcome& y = b.methods[m];
    EXPECT_TRUE(same_vector_bits(x.alloc, y.alloc))
        << method_name(static_cast<Method>(m)) << " alloc differs";
    EXPECT_TRUE(same_vector_bits(x.per_program_mr, y.per_program_mr))
        << method_name(static_cast<Method>(m)) << " per_program_mr differs";
    EXPECT_TRUE(same_bits(x.group_mr, y.group_mr))
        << method_name(static_cast<Method>(m)) << " group_mr differs";
  }
}

TEST(BatchSweep, BitForBitIdenticalToPerGroupEvaluation) {
  const std::size_t capacity = 64;
  auto models = make_suite(capacity);
  auto groups = all_subsets(16, 4);
  ASSERT_EQ(groups.size(), 1820u);

  SweepOptions opt;
  opt.capacity = capacity;
  auto batched = sweep_groups(models, groups, opt);
  ASSERT_EQ(batched.size(), groups.size());

  CostMatrix unit_costs = precompute_unit_cost_matrix(models, capacity);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    GroupEvaluation per_group =
        evaluate_group(models, unit_costs.view(), groups[g], opt);
    expect_identical(batched[g], per_group);
    if (::testing::Test::HasFailure()) {
      FAIL() << "first divergence at group " << g;
    }
  }
}

TEST(BatchSweep, SerialAndAutoWidthProduceIdenticalResults) {
  const std::size_t capacity = 48;
  auto models = make_suite(capacity);
  auto groups = all_subsets(16, 3);  // 560 groups

  SweepOptions serial, wide;
  serial.capacity = wide.capacity = capacity;
  serial.threads = 1;
  wide.threads = 4;  // capped by the pool; exercises chunked scheduling
  auto a = sweep_groups(models, groups, serial);
  auto b = sweep_groups(models, groups, wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) expect_identical(a[g], b[g]);
}

TEST(BatchSweep, FullSweepBitForBitIdenticalAcrossKernels) {
  // The dispatch-parity gate: the entire C(16,4) = 1820-group sweep run
  // on the scalar kernel must memcmp-equal the same sweep on the AVX2
  // kernel — every allocation, per-program miss ratio, and group miss
  // ratio, for all methods. On a machine without AVX2 the forced-AVX2
  // dispatch degrades to scalar and the test is a tautology; CI runs it
  // on AVX2 hardware.
  const std::size_t capacity = 64;
  auto models = make_suite(capacity);
  auto groups = all_subsets(16, 4);
  SweepOptions opt;
  opt.capacity = capacity;

  dp_detail::set_kernel_for_testing(dp_detail::KernelKind::kScalar);
  auto scalar = sweep_groups(models, groups, opt);
  dp_detail::set_kernel_for_testing(dp_detail::KernelKind::kAvx2);
  auto simd = sweep_groups(models, groups, opt);
  dp_detail::reset_kernel_for_testing();

  ASSERT_EQ(scalar.size(), simd.size());
  for (std::size_t g = 0; g < scalar.size(); ++g) {
    expect_identical(scalar[g], simd[g]);
    if (::testing::Test::HasFailure()) {
      FAIL() << "first kernel divergence at group " << g;
    }
  }
}

TEST(BatchSweep, PrefixSolverSharesLayersAcrossLexOrderedGroups) {
  const std::size_t capacity = 32;
  auto models = make_suite(capacity);
  CostMatrix unit_costs = precompute_unit_cost_matrix(models, capacity);

  PrefixDpSolver solver;
  solver.configure(unit_costs.view(), capacity, DpObjective::kSumCost);
  auto groups = all_subsets(16, 4);
  std::vector<std::size_t> lo(4, 0);
  DpResult out;
  for (const auto& members : groups) {
    solver.solve(members.data(), members.size(), lo.data(), out);
    ASSERT_TRUE(out.feasible);
  }
  const PrefixDpSolver::Stats& stats = solver.stats();
  EXPECT_EQ(stats.solves, groups.size());
  // Lexicographic enumeration shares the first three of four layers
  // whenever consecutive groups agree on a member prefix. The distinct
  // prefixes of ascending 4-subsets of 16: 13 of length 1 (m0 <= 12),
  // C(14,2) = 91 of length 2, C(15,3) = 455 of length 3 — plus one
  // uncached final layer per group.
  const std::size_t expected_layers = 13 + 91 + 455 + 1820;
  EXPECT_EQ(stats.layers_computed, expected_layers);
  EXPECT_EQ(stats.layers_reused,
            groups.size() * 4 - expected_layers);
}

}  // namespace
}  // namespace ocps
