# Empty compiler generated dependencies file for ocps_locality.
# This may be replaced when dependencies are built.
