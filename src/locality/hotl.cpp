#include "locality/hotl.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ocps {

double fill_time(const FootprintCurve& fp, double c) {
  return fp.inverse(c);
}

double inter_miss_time(const FootprintCurve& fp, double c) {
  return fill_time(fp, c + 1.0) - fill_time(fp, c);
}

double hotl_miss_ratio(const FootprintCurve& fp, double cache_size) {
  OCPS_CHECK(cache_size >= 0.0, "negative cache size");
  const double n = static_cast<double>(fp.trace_length);
  const double m = static_cast<double>(fp.distinct);
  if (fp.trace_length == 0) return 0.0;
  const double cold = m / n;
  if (cache_size <= 0.0) return 1.0;
  if (cache_size >= m) return cold;  // everything fits: compulsory only
  double w = fp.inverse(cache_size);
  double mr = fp(w + 1.0) - cache_size;
  mr = std::clamp(mr, 0.0, 1.0);
  return std::max(mr, cold);
}

MissRatioCurve hotl_mrc(const FootprintCurve& fp, std::size_t capacity) {
  std::vector<double> ratios(capacity + 1, 0.0);
  for (std::size_t c = 0; c <= capacity; ++c)
    ratios[c] = hotl_miss_ratio(fp, static_cast<double>(c));
  // The HOTL estimate is non-increasing in exact arithmetic; repair any
  // interpolation noise so downstream code can rely on LRU inclusion.
  MissRatioCurve mrc(std::move(ratios), fp.trace_length);
  return mrc.monotone_repaired();
}

}  // namespace ocps
