// Tests for the CLI plumbing: argument parsing and address-trace formats.
#include <gtest/gtest.h>

#include "trace/trace_io.hpp"
#include "util/args.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

ArgParser parse(std::vector<const char*> argv,
                const std::vector<std::string>& flags = {}) {
  argv.insert(argv.begin(), "prog");
  return ArgParser(static_cast<int>(argv.size()), argv.data(), flags);
}

TEST(Args, PositionalsAndOptions) {
  ArgParser a = parse({"optimize", "a.fp", "b.fp", "--capacity", "512"});
  ASSERT_EQ(a.positionals().size(), 3u);
  EXPECT_EQ(a.positionals()[0], "optimize");
  EXPECT_EQ(a.get_int("capacity", 0), 512);
  EXPECT_EQ(a.get_int("missing", 7), 7);
}

TEST(Args, EqualsSyntax) {
  ArgParser a = parse({"--capacity=64", "--rate=2.5"});
  EXPECT_EQ(a.get_int("capacity", 0), 64);
  EXPECT_DOUBLE_EQ(a.get_double("rate", 0.0), 2.5);
}

TEST(Args, BooleanFlagsDontConsumeValues) {
  ArgParser a = parse({"--binary", "trace.bin"}, {"binary"});
  EXPECT_TRUE(a.has("binary"));
  ASSERT_EQ(a.positionals().size(), 1u);
  EXPECT_EQ(a.positionals()[0], "trace.bin");
}

TEST(Args, DoubleDashEndsOptions) {
  ArgParser a = parse({"--x", "1", "--", "--not-an-option"});
  EXPECT_EQ(a.get_int("x", 0), 1);
  ASSERT_EQ(a.positionals().size(), 1u);
  EXPECT_EQ(a.positionals()[0], "--not-an-option");
}

TEST(Args, BadNumberThrows) {
  ArgParser a = parse({"--capacity", "lots"});
  EXPECT_THROW(a.get_int("capacity", 0), CheckError);
}

TEST(Args, UnknownOptionsDetected) {
  ArgParser a = parse({"--capcity", "512", "--rate", "1"});
  auto unknown = a.unknown_options({"capacity", "rate"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "capcity");
}

TEST(Args, RejectUnknownAcceptsKnownFlags) {
  ArgParser a = parse({"--capacity", "512", "--rate", "1"});
  EXPECT_NO_THROW(a.reject_unknown({"capacity", "rate", "epoch"}));
}

TEST(Args, RejectUnknownThrowsWithSuggestion) {
  ArgParser a = parse({"--fault-rat", "0.1"});
  try {
    a.reject_unknown({"fault-rate", "fault-seed", "capacity"});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("--fault-rat"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean --fault-rate?"), std::string::npos)
        << msg;
  }
}

TEST(Args, RejectUnknownWithoutCloseMatchOmitsSuggestion) {
  ArgParser a = parse({"--zzzzzzzzzz", "1"});
  try {
    a.reject_unknown({"capacity", "rate"});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("--zzzzzzzzzz"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
  }
}

TEST(Args, RejectUnknownMessagesAreClean) {
  // The error must read like a CLI diagnostic, not an assertion dump.
  ArgParser a = parse({"--fault-rat", "0.1"});
  try {
    a.reject_unknown({"fault-rate", "capacity"});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    std::string msg = e.what();
    EXPECT_EQ(msg.find("OCPS_CHECK"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("args.cpp"), std::string::npos) << msg;
  }
}

TEST(Args, RejectUnknownRoutesFlagsKnownElsewhere) {
  // A flag that belongs to another subcommand names where it applies
  // instead of guessing at the nearest typo.
  ArgParser a = parse({"--threads", "4"});
  try {
    a.reject_unknown({"capacity"}, {{"threads", "serve, sweep"}});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("--threads"), std::string::npos) << msg;
    EXPECT_NE(msg.find("valid for: serve, sweep"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
  }
  // Flags in `known` are unaffected by the routing table.
  ArgParser b = parse({"--capacity", "64"});
  EXPECT_NO_THROW(
      b.reject_unknown({"capacity"}, {{"threads", "serve, sweep"}}));
}

TEST(AddressTrace, ParsesDecimalAndHex) {
  Trace t = parse_address_trace("0\n64\n0x80\n64\n", 64);
  EXPECT_EQ(t.accesses, (std::vector<Block>{0, 1, 2, 1}));
}

TEST(AddressTrace, SkipsCommentsAndTypePrefixes) {
  Trace t = parse_address_trace(
      "# header\n"
      "R 0x100\n"
      "W 0x140\n"
      "\n"
      "I 0x100  # trailing comment\n",
      64);
  EXPECT_EQ(t.accesses, (std::vector<Block>{4, 5, 4}));
}

TEST(AddressTrace, BlockGranularityMatters) {
  Trace fine = parse_address_trace("0\n32\n64\n", 32);
  Trace coarse = parse_address_trace("0\n32\n64\n", 64);
  EXPECT_EQ(fine.distinct_blocks(), 3u);
  EXPECT_EQ(coarse.distinct_blocks(), 2u);
}

TEST(AddressTrace, RejectsGarbage) {
  EXPECT_THROW(parse_address_trace("not-an-address\n", 64), CheckError);
  EXPECT_THROW(parse_address_trace("R\n", 64), CheckError);
}

}  // namespace
}  // namespace ocps
