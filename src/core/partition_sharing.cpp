#include "core/partition_sharing.hpp"

#include <limits>

#include "util/check.hpp"

namespace ocps {

SchemeOutcome evaluate_scheme(const CoRunGroup& corun,
                              const SharingScheme& scheme) {
  OCPS_CHECK(scheme.groups.size() == scheme.group_sizes.size(),
             "every group needs a partition size");
  const std::size_t p = corun.size();
  SchemeOutcome out;
  out.per_program_mr.assign(p, -1.0);

  for (std::size_t g = 0; g < scheme.groups.size(); ++g) {
    const auto& members = scheme.groups[g];
    OCPS_CHECK(!members.empty(), "empty group " << g);
    std::vector<const ProgramModel*> models;
    models.reserve(members.size());
    for (std::uint32_t idx : members) {
      OCPS_CHECK(idx < p, "member index out of range: " << idx);
      models.push_back(corun.members[idx]);
    }
    CoRunGroup subgroup(std::move(models));
    auto mrs = predict_shared_miss_ratios(
        subgroup, static_cast<double>(scheme.group_sizes[g]));
    for (std::size_t k = 0; k < members.size(); ++k) {
      OCPS_CHECK(out.per_program_mr[members[k]] < 0.0,
                 "program " << members[k] << " in two groups");
      out.per_program_mr[members[k]] = mrs[k];
    }
  }
  for (std::size_t i = 0; i < p; ++i)
    OCPS_CHECK(out.per_program_mr[i] >= 0.0,
               "program " << i << " not covered by any group");
  out.group_mr = group_miss_ratio(corun, out.per_program_mr);
  return out;
}

namespace {

BestSchemeResult search_schemes(const CoRunGroup& corun, std::size_t capacity,
                                bool singletons_only) {
  const std::size_t p = corun.size();
  BestSchemeResult best;
  best.outcome.group_mr = std::numeric_limits<double>::infinity();

  for_each_set_partition(
      static_cast<std::uint32_t>(p), 0, [&](const SetPartition& groups) {
        if (singletons_only && groups.size() != p) return true;
        for_each_composition(
            static_cast<std::uint32_t>(groups.size()),
            static_cast<std::uint32_t>(capacity), 0,
            [&](const std::vector<std::uint32_t>& sizes) {
              SharingScheme scheme;
              scheme.groups = groups;
              scheme.group_sizes.assign(sizes.begin(), sizes.end());
              SchemeOutcome outcome = evaluate_scheme(corun, scheme);
              ++best.schemes_examined;
              if (outcome.group_mr < best.outcome.group_mr) {
                best.scheme = std::move(scheme);
                best.outcome = std::move(outcome);
              }
              return true;
            });
        return true;
      });
  OCPS_CHECK(best.schemes_examined > 0, "no scheme examined");
  return best;
}

}  // namespace

BestSchemeResult best_partition_sharing(const CoRunGroup& corun,
                                        std::size_t capacity) {
  return search_schemes(corun, capacity, /*singletons_only=*/false);
}

BestSchemeResult best_partitioning_only(const CoRunGroup& corun,
                                        std::size_t capacity) {
  return search_schemes(corun, capacity, /*singletons_only=*/true);
}

}  // namespace ocps
