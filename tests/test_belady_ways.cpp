// Tests for Belady/OPT and the way-partitioned (CAT-style) cache.
#include <gtest/gtest.h>

#include "cachesim/belady.hpp"
#include "cachesim/lru.hpp"
#include "cachesim/way_partitioned.hpp"
#include "trace/generators.hpp"
#include "trace/interleave.hpp"
#include "util/check.hpp"

namespace ocps {
namespace {

TEST(Belady, ClassicExample) {
  // a b c a b c, C=2. OPT: a(miss) b(miss) c(miss, bypassed — its next
  // use is farther than both residents') a(hit) b(hit) c(miss).
  Trace t;
  t.accesses = {0, 1, 2, 0, 1, 2};
  BeladyResult r = simulate_belady(t, 2);
  EXPECT_EQ(r.misses, 4u);
}

TEST(Belady, ZeroCapacityMissesAll) {
  Trace t = make_cyclic(100, 5);
  BeladyResult r = simulate_belady(t, 0);
  EXPECT_EQ(r.misses, 100u);
}

TEST(Belady, PerfectWhenEverythingFits) {
  Trace t = make_cyclic(1000, 10);
  BeladyResult r = simulate_belady(t, 10);
  EXPECT_EQ(r.misses, 10u);  // compulsory only
}

TEST(Belady, CyclicScanHalfCacheHitRatio) {
  // Cyclic over W blocks with capacity c: OPT retains c-1 loop blocks,
  // hit ratio ~ (c-1)/W in steady state (vs LRU's zero).
  const std::size_t W = 100, c = 50;
  Trace t = make_cyclic(100000, W);
  BeladyResult opt = simulate_belady(t, c);
  LruCache lru(c);
  for (Block b : t.accesses) lru.access(b);
  EXPECT_GT(lru.miss_ratio(), 0.99);
  EXPECT_NEAR(opt.miss_ratio(), 1.0 - (static_cast<double>(c - 1) / W),
              0.02);
}

// Property: OPT never misses more than LRU (it is the offline optimum).
class BeladyDominates : public ::testing::TestWithParam<int> {};

TEST_P(BeladyDominates, NeverWorseThanLru) {
  Trace t;
  switch (GetParam()) {
    case 0: t = make_zipf(30000, 300, 0.9, 101); break;
    case 1: t = make_uniform(30000, 250, 102); break;
    case 2: t = make_cyclic(30000, 200); break;
    case 3: t = make_hot_cold(30000, 20, 300, 0.7, 103); break;
    case 4: t = make_sawtooth(30000, 180); break;
    default: FAIL();
  }
  for (std::size_t c : {16u, 64u, 150u}) {
    BeladyResult opt = simulate_belady(t, c);
    LruCache lru(c);
    for (Block b : t.accesses) lru.access(b);
    EXPECT_LE(opt.misses, lru.misses()) << "c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BeladyDominates, ::testing::Range(0, 5));

TEST(WayPartitioned, QuotaLimitsOccupancy) {
  // Program 0 with quota 1 of 4 ways cannot keep 2 blocks that collide in
  // one set; with a 1-set cache every block collides.
  WayPartitionedCache cache(1, 4, {1, 3});
  cache.access(10, 0);
  cache.access(20, 0);  // evicts 10 (own quota 1)
  EXPECT_FALSE(cache.access(10, 0));
  // Program 1 can hold 3.
  cache.access(1, 1);
  cache.access(2, 1);
  cache.access(3, 1);
  EXPECT_TRUE(cache.access(1, 1));
  EXPECT_TRUE(cache.access(2, 1));
  EXPECT_TRUE(cache.access(3, 1));
}

TEST(WayPartitioned, ZeroQuotaBypasses) {
  WayPartitionedCache cache(1, 2, {0, 2});
  EXPECT_FALSE(cache.access(5, 0));
  EXPECT_FALSE(cache.access(5, 0));  // never cached
  EXPECT_EQ(cache.misses(0), 2u);
}

TEST(WayPartitioned, RejectsOvercommittedQuotas) {
  EXPECT_THROW(WayPartitionedCache(4, 4, {3, 3}), CheckError);
  EXPECT_THROW(WayPartitionedCache(3, 4, {2, 2}), CheckError);  // not pow2
}

TEST(WayPartitioned, IsolatesPrograms) {
  // A thrashing neighbour cannot evict a quota-protected program's data.
  Trace small = make_cyclic(4000, 8);
  Trace thrash = make_stream(4000);
  InterleavedTrace mix =
      interleave_proportional({small, thrash}, {1.0, 1.0}, 8000);
  WayPartitionResult r =
      simulate_way_partitioned(mix, 16, 8, {4, 4}, /*warmup=*/1000);
  // 16 sets x 4 ways = 64 lines for program 0 >> its 8 blocks.
  EXPECT_LT(r.per_program_mr[0], 0.02);
  EXPECT_GT(r.per_program_mr[1], 0.98);
}

TEST(WaysFromAlloc, LargestRemainderAndFloors) {
  auto ways = ways_from_alloc({512, 256, 256, 0}, 1024, 16);
  EXPECT_EQ(ways[0], 8u);
  EXPECT_EQ(ways[1], 4u);
  EXPECT_EQ(ways[2], 4u);
  EXPECT_EQ(ways[3], 0u);
  // A tiny but nonzero allocation still gets one way.
  auto ways2 = ways_from_alloc({1000, 20, 4}, 1024, 16);
  std::size_t total = ways2[0] + ways2[1] + ways2[2];
  EXPECT_LE(total, 16u);
  EXPECT_GE(ways2[1], 1u);
  EXPECT_GE(ways2[2], 1u);
}

}  // namespace
}  // namespace ocps
