# Empty dependencies file for bench_validation_npa.
# This may be replaced when dependencies are built.
