#include "cachesim/lru.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ocps {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  map_.reserve(capacity * 2 + 16);
}

bool LruCache::access(Block b) {
  evicted_valid_ = false;
  OCPS_OBS_COUNT("sim.lru.accesses", 1);
  auto it = map_.find(b);
  if (it != map_.end()) {
    ++hits_;
    OCPS_OBS_COUNT("sim.lru.hits", 1);
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++misses_;
  if (capacity_ == 0) return false;
  if (map_.size() >= capacity_) {
    Block victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    evicted_ = victim;
    evicted_valid_ = true;
    OCPS_OBS_COUNT("sim.lru.evictions", 1);
  }
  lru_.push_front(b);
  map_.emplace(b, lru_.begin());
  return false;
}

bool LruCache::contains(Block b) const { return map_.count(b) != 0; }

double LruCache::miss_ratio() const {
  std::uint64_t total = accesses();
  return total == 0 ? 0.0
                    : static_cast<double>(misses_) / static_cast<double>(total);
}

void LruCache::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  while (map_.size() > capacity_) {
    Block victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
}

void LruCache::reset() {
  lru_.clear();
  map_.clear();
  hits_ = misses_ = 0;
  evicted_valid_ = false;
}

bool LruCache::last_eviction(Block* out) const {
  OCPS_CHECK(out != nullptr, "null out pointer");
  if (!evicted_valid_) return false;
  *out = evicted_;
  return true;
}

}  // namespace ocps
