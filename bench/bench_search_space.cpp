// §II search-space accounting: reproduces the paper's partition-sharing
// problem sizes (Eq. 1-3) including the headline numbers
// S2 = 375,368,690,761,743 and S3 = 375,317,149,057,025 for 4 programs on
// an 8MB cache in 64B units, and the ~180 million partitionings per
// 4-program group at the 8KB evaluation granularity.
#include <iostream>

#include "combinatorics/counting.hpp"
#include "util/table.hpp"

using namespace ocps;

namespace {

std::string fmt(const std::optional<unsigned __int128>& v) {
  return v ? to_string_u128(*v) : std::string("overflow");
}

}  // namespace

int main() {
  std::cout << "=== §II Partition-sharing search spaces ===\n\n";

  // Scenario 1 (Eq. 1): sharing only, multiple caches.
  {
    TextTable t({"programs", "caches", "S1 = Stirling2(npr, nc)"});
    for (std::uint64_t npr : {4, 8, 16})
      for (std::uint64_t nc : {2, 4})
        t.add_row({std::to_string(npr), std::to_string(nc),
                   fmt(search_space_sharing(npr, nc))});
    t.print(std::cout);
    std::cout << '\n';
  }

  // Scenarios 2 and 3 (Eq. 2-3): one cache, partition-sharing vs
  // partitioning only.
  {
    TextTable t({"programs", "cache units", "S2 (partition-sharing)",
                 "S3 (partitioning)", "S3/S2 coverage"});
    struct Case {
      std::uint64_t npr, units;
      const char* note;
    };
    for (const Case& c :
         {Case{4, 131072, "paper: 8MB / 64B blocks"},
          Case{4, 1024, "paper: 8MB / 8KB units (evaluation grain)"},
          Case{4, 64, ""}, Case{8, 1024, ""}}) {
      auto s2 = search_space_partition_sharing(c.npr, c.units);
      auto s3 = search_space_partitioning(c.npr, c.units);
      std::string coverage = "-";
      if (s2 && s3)
        coverage = TextTable::pct(
            static_cast<double>(*s3) / static_cast<double>(*s2), 4);
      t.add_row({std::to_string(c.npr), std::to_string(c.units), fmt(s2),
                 fmt(s3), coverage});
      (void)c.note;
    }
    t.print(std::cout);
  }

  std::cout << "\nPaper check: S2 = 375,368,690,761,743 and S3 = "
               "375,317,149,057,025 for npr=4, C=131072;\n"
               "partitioning-only covers 99.99% of the partition-sharing "
               "space, and the 8KB grain leaves ~1.8e8 partitionings per "
               "4-program group.\n";
  return 0;
}
