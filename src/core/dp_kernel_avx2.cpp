// AVX2 forward-layer kernel. This translation unit is compiled with
// -mavx2 (see src/core/CMakeLists.txt) and must contain nothing that
// runs before the dispatcher's CPUID check; when the toolchain cannot
// target AVX2 at all, it degrades to a scalar passthrough.
//
// Bit-for-bit contract with the scalar kernel (the pinned reference):
// every DP state k examines the same candidates c in the same ascending
// order, each candidate value is computed with the same IEEE operation
// (one add for kSumCost; for kMaxCost, _mm256_max_pd(cost, prev) which
// returns its second operand on ties exactly like std::max(prev, cost)),
// and selection uses strict less-than, so the first minimum — the
// smallest c — wins in both kernels. The only differences are memory
// access shape (8 states per iteration, masked tail blocks) and where
// the tie-break reduction happens (cross-lane at the end of a scan,
// still resolving to the smallest c among equal minima).
#include "core/dp_kernel.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <limits>

namespace ocps::dp_detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Maskload/maskstore masks for partial blocks: lane l of a block of n is
// active iff l < n, which is table[8 - n + l] here.
alignas(32) constexpr long long kLaneMask[16] = {
    -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};

// Lane indices within a 4-wide vector, as int64 (lane 0 first).
inline __m256i iota4(long long base) {
  return _mm256_set_epi64x(base + 3, base + 2, base + 1, base + 0);
}

// Reverses the four doubles of v (lane 0 <-> lane 3, lane 1 <-> lane 2).
inline __m256d reverse4(__m256d v) {
  return _mm256_permute4x64_pd(v, 0x1B);
}

template <DpObjective Obj>
inline __m256d combine(__m256d prev, __m256d cost) {
  // kSumCost: prev + cost, same add as the scalar kernel. kMaxCost:
  // max(cost, prev) returns prev on ties — the bit pattern std::max(prev,
  // cost) produces, including the (+0, -0) corner.
  return Obj == DpObjective::kSumCost ? _mm256_add_pd(prev, cost)
                                      : _mm256_max_pd(cost, prev);
}

template <DpObjective Obj>
inline double combine1(double prev, double cost) {
  return Obj == DpObjective::kSumCost ? prev + cost
                                      : std::max(prev, cost);
}

// min over c in [lo, c_max] of combine(prev[k - c], cost_row[c]) for one
// state k, vectorized along c with reversed prev loads. Requires
// lo <= c_max <= k. Writes next[k] / choice[k].
template <DpObjective Obj>
void single_state(const double* cost_row, std::size_t lo,
                  std::size_t c_max, std::size_t k, const double* prev,
                  double* next, std::uint32_t* choice) {
  double best_val = kInf;
  std::size_t best_c = 0;
  std::size_t c = lo;
  if (c_max - lo + 1 >= 8) {
    __m256d b0 = _mm256_set1_pd(kInf), b1 = b0;
    __m256i bc0 = _mm256_setzero_si256(), bc1 = bc0;
    for (; c + 7 <= c_max; c += 8) {
      const __m256d cost0 = _mm256_loadu_pd(cost_row + c);
      const __m256d cost1 = _mm256_loadu_pd(cost_row + c + 4);
      // Lane l wants prev[k - (c + l)]: descending addresses, so load
      // the 4 doubles ending at k - c and reverse.
      const __m256d p0 = reverse4(_mm256_loadu_pd(prev + (k - c - 3)));
      const __m256d p1 = reverse4(_mm256_loadu_pd(prev + (k - c - 7)));
      const __m256d v0 = combine<Obj>(p0, cost0);
      const __m256d v1 = combine<Obj>(p1, cost1);
      const __m256d m0 = _mm256_cmp_pd(v0, b0, _CMP_LT_OQ);
      const __m256d m1 = _mm256_cmp_pd(v1, b1, _CMP_LT_OQ);
      b0 = _mm256_blendv_pd(b0, v0, m0);
      b1 = _mm256_blendv_pd(b1, v1, m1);
      const long long cc = static_cast<long long>(c);
      bc0 = _mm256_blendv_epi8(bc0, iota4(cc),
                               _mm256_castpd_si256(m0));
      bc1 = _mm256_blendv_epi8(bc1, iota4(cc + 4),
                               _mm256_castpd_si256(m1));
    }
    // Cross-lane reduction: smallest value wins; equal values resolve to
    // the smallest c, matching the scalar first-minimum scan. A lane
    // still at +inf never had a live candidate and must not donate its
    // c (scalar leaves choice at 0 in that case).
    alignas(32) double vb[8];
    alignas(32) long long vc[8];
    _mm256_store_pd(vb, b0);
    _mm256_store_pd(vb + 4, b1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(vc), bc0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(vc + 4), bc1);
    for (int l = 0; l < 8; ++l) {
      const std::size_t lane_c = static_cast<std::size_t>(vc[l]);
      if (vb[l] < best_val) {
        best_val = vb[l];
        best_c = lane_c;
      } else if (vb[l] == best_val && vb[l] != kInf && lane_c < best_c) {
        best_c = lane_c;
      }
    }
  }
  // Tail candidates have larger c than every vector candidate, so the
  // scalar strict-less update preserves the global smallest-c tie-break.
  for (; c <= c_max; ++c) {
    const double prev_v = prev[k - c];
    if (prev_v == kInf) continue;
    const double val = combine1<Obj>(prev_v, cost_row[c]);
    if (val < best_val) {
      best_val = val;
      best_c = c;
    }
  }
  next[k] = best_val;
  choice[k] = static_cast<std::uint32_t>(best_c);
}

template <DpObjective Obj>
std::uint64_t forward_layer_avx2_impl(const double* cost_row,
                                      std::size_t lo, std::size_t hi,
                                      std::size_t k_begin,
                                      std::size_t k_end,
                                      const double* prev, double* next,
                                      std::uint32_t* choice) {
  // Cell accounting replicates the scalar kernel exactly.
  std::uint64_t cells = 0;
  for (std::size_t k = k_begin; k <= k_end; ++k) {
    const std::size_t c_max = std::min(hi, k);
    if (c_max >= lo) cells += c_max - lo + 1;
  }

  if (k_begin == k_end) {
    const std::size_t k = k_begin;
    const std::size_t c_max = std::min(hi, k);
    if (c_max >= lo) {
      single_state<Obj>(cost_row, lo, c_max, k, prev, next, choice);
    } else {
      next[k] = kInf;
      choice[k] = 0;
    }
    return cells;
  }

  // General layer: 8 states k..k+7 per block, vectorized along k. For
  // c <= kb every lane has k >= c, so prev[k - c] is a plain ascending
  // load; the up-to-7 candidates with c > kb (the ragged corner where
  // only the higher lanes admit them) run scalar on the spilled lanes.
  for (std::size_t kb = k_begin; kb <= k_end; kb += 8) {
    const std::size_t n = std::min<std::size_t>(8, k_end - kb + 1);
    __m256d b0 = _mm256_set1_pd(kInf), b1 = b0;
    __m256i bc0 = _mm256_setzero_si256(), bc1 = bc0;
    const std::size_t c_vec_end = std::min(hi, kb);  // inclusive
    if (lo <= c_vec_end) {
      if (n == 8) {
        for (std::size_t c = lo; c <= c_vec_end; ++c) {
          const __m256d cost = _mm256_set1_pd(cost_row[c]);
          const __m256d p0 = _mm256_loadu_pd(prev + (kb - c));
          const __m256d p1 = _mm256_loadu_pd(prev + (kb - c) + 4);
          const __m256d v0 = combine<Obj>(p0, cost);
          const __m256d v1 = combine<Obj>(p1, cost);
          const __m256d m0 = _mm256_cmp_pd(v0, b0, _CMP_LT_OQ);
          const __m256d m1 = _mm256_cmp_pd(v1, b1, _CMP_LT_OQ);
          b0 = _mm256_blendv_pd(b0, v0, m0);
          b1 = _mm256_blendv_pd(b1, v1, m1);
          const __m256i cv =
              _mm256_set1_epi64x(static_cast<long long>(c));
          bc0 = _mm256_blendv_epi8(bc0, cv, _mm256_castpd_si256(m0));
          bc1 = _mm256_blendv_epi8(bc1, cv, _mm256_castpd_si256(m1));
        }
      } else {
        // Masked tail block: lanes >= n would read prev beyond k_end;
        // maskload guarantees those lanes touch no memory, and their
        // (garbage-fed) results are never stored.
        const __m256i mask0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(kLaneMask + (8 - n)));
        const __m256i mask1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(kLaneMask + (8 - n) + 4));
        for (std::size_t c = lo; c <= c_vec_end; ++c) {
          const __m256d cost = _mm256_set1_pd(cost_row[c]);
          const __m256d p0 =
              _mm256_maskload_pd(prev + (kb - c), mask0);
          const __m256d p1 =
              _mm256_maskload_pd(prev + (kb - c) + 4, mask1);
          const __m256d v0 = combine<Obj>(p0, cost);
          const __m256d v1 = combine<Obj>(p1, cost);
          const __m256d m0 = _mm256_cmp_pd(v0, b0, _CMP_LT_OQ);
          const __m256d m1 = _mm256_cmp_pd(v1, b1, _CMP_LT_OQ);
          b0 = _mm256_blendv_pd(b0, v0, m0);
          b1 = _mm256_blendv_pd(b1, v1, m1);
          const __m256i cv =
              _mm256_set1_epi64x(static_cast<long long>(c));
          bc0 = _mm256_blendv_epi8(bc0, cv, _mm256_castpd_si256(m0));
          bc1 = _mm256_blendv_epi8(bc1, cv, _mm256_castpd_si256(m1));
        }
      }
    }
    alignas(32) double bb[8];
    alignas(32) long long bc[8];
    _mm256_store_pd(bb, b0);
    _mm256_store_pd(bb + 4, b1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(bc), bc0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(bc + 4), bc1);

    // Ragged corner: candidates with kb < c <= min(hi, kb + n - 1),
    // admitted only by lanes l >= c - kb (i.e. states k >= c). These
    // come after every vector candidate in c order, so the strict-less
    // update keeps the smallest-c tie-break intact per lane.
    const std::size_t rag_lo = std::max(lo, kb + 1);
    const std::size_t rag_hi = std::min(hi, kb + n - 1);
    for (std::size_t c = rag_lo; c <= rag_hi; ++c) {
      const double cost_c = cost_row[c];
      for (std::size_t l = c - kb; l < n; ++l) {
        const double prev_v = prev[kb + l - c];
        if (prev_v == kInf) continue;
        const double val = combine1<Obj>(prev_v, cost_c);
        if (val < bb[l]) {
          bb[l] = val;
          bc[l] = static_cast<long long>(c);
        }
      }
    }

    for (std::size_t l = 0; l < n; ++l) {
      next[kb + l] = bb[l];
      choice[kb + l] = static_cast<std::uint32_t>(bc[l]);
    }
  }
  return cells;
}

}  // namespace

std::uint64_t forward_layer_avx2(DpObjective objective,
                                 const double* cost_row, std::size_t lo,
                                 std::size_t hi, std::size_t k_begin,
                                 std::size_t k_end, bool prev_is_base,
                                 const double* prev, double* next,
                                 std::uint32_t* choice) {
  // The closed-form base layer is O(C) and shared with the scalar
  // kernel; dispatching it here keeps forward_layer_avx2 callable
  // directly by parity tests on any layer shape.
  if (prev_is_base)
    return forward_layer_scalar(objective, cost_row, lo, hi, k_begin,
                                k_end, prev_is_base, prev, next, choice);
  return objective == DpObjective::kSumCost
             ? forward_layer_avx2_impl<DpObjective::kSumCost>(
                   cost_row, lo, hi, k_begin, k_end, prev, next, choice)
             : forward_layer_avx2_impl<DpObjective::kMaxCost>(
                   cost_row, lo, hi, k_begin, k_end, prev, next, choice);
}

}  // namespace ocps::dp_detail

#else  // !defined(__AVX2__)

namespace ocps::dp_detail {

// Toolchain cannot emit AVX2 (non-x86 target or the -mavx2 probe
// failed): the dispatcher never selects kAvx2 because
// cpu_supports_avx2() is false there, but keep the symbol defined and
// correct for direct callers.
std::uint64_t forward_layer_avx2(DpObjective objective,
                                 const double* cost_row, std::size_t lo,
                                 std::size_t hi, std::size_t k_begin,
                                 std::size_t k_end, bool prev_is_base,
                                 const double* prev, double* next,
                                 std::uint32_t* choice) {
  return forward_layer_scalar(objective, cost_row, lo, hi, k_begin,
                              k_end, prev_is_base, prev, next, choice);
}

}  // namespace ocps::dp_detail

#endif
